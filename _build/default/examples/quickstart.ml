(* Quickstart: open a bLSM tree, write, read, scan, delete, recover.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A store = simulated device + pages + buffer pool + logs. Profiles
     model the paper's two RAID-0 arrays; costs accrue on a simulated
     clock so every run is deterministic. *)
  let store =
    Pagestore.Store.create
      ~config:
        {
          Pagestore.Store.cfg_page_size = 4096;
          cfg_buffer_pages = 2048;
          cfg_durability = Pagestore.Wal.Full;
        }
      Simdisk.Profile.ssd_raid0
  in
  let config =
    { Blsm.Config.default with Blsm.Config.c0_bytes = 1024 * 1024 }
  in
  let tree = Blsm.Tree.create ~config store in

  (* Blind writes: zero seeks, insert-or-overwrite. *)
  Blsm.Tree.put tree "user:alice" "alice@example.com";
  Blsm.Tree.put tree "user:bob" "bob@example.com";
  Blsm.Tree.put tree "user:carol" "carol@example.com";

  (* Point reads stop at the first base record (early termination). *)
  (match Blsm.Tree.get tree "user:bob" with
  | Some v -> Printf.printf "get user:bob -> %s\n" v
  | None -> print_endline "user:bob missing?!");

  (* Deltas are zero-seek patches, resolved lazily by reads and merges. *)
  Blsm.Tree.apply_delta tree "user:alice" " (verified)";
  Printf.printf "after delta    -> %s\n"
    (Option.value (Blsm.Tree.get tree "user:alice") ~default:"<none>");

  (* Insert-if-not-exists: the Bloom filters answer the existence check
     without touching disk. *)
  let inserted = Blsm.Tree.insert_if_absent tree "user:bob" "imposter" in
  Printf.printf "insert_if_absent user:bob -> %b (original kept)\n" inserted;

  (* Ordered scans merge all tree components. *)
  print_endline "scan user: ..";
  List.iter
    (fun (k, v) -> Printf.printf "  %-12s %s\n" k v)
    (Blsm.Tree.scan tree "user:" 10);

  Blsm.Tree.delete tree "user:carol";
  Printf.printf "after delete, carol = %s\n"
    (Option.value (Blsm.Tree.get tree "user:carol") ~default:"<gone>");

  (* Atomic multi-key batch: one log record, all-or-nothing at crash. *)
  Blsm.Tree.write_batch tree
    [
      ("acct:alice", Kv.Entry.Base "90");
      ("acct:bob", Kv.Entry.Base "110");
      ("ledger", Kv.Entry.Delta [ ";alice->bob:10" ]);
    ];
  Printf.printf "after batch transfer: alice=%s bob=%s\n"
    (Option.value (Blsm.Tree.get tree "acct:alice") ~default:"?")
    (Option.value (Blsm.Tree.get tree "acct:bob") ~default:"?");

  (* Write enough to push data through the merge pipeline. *)
  for i = 0 to 5_000 do
    Blsm.Tree.put tree
      (Printf.sprintf "bulk:%06d" i)
      (String.make 200 (Char.chr (97 + (i mod 26))))
  done;
  Blsm.Tree.flush tree;
  let s = Blsm.Tree.stats tree in
  Printf.printf "stats: %d puts, %d merges (C0:C1), %d merges (C1':C2)\n"
    s.Blsm.Tree.puts s.Blsm.Tree.merge1_completions s.Blsm.Tree.merge2_completions;
  print_endline "tree levels after 5k bulk writes (flushed):";
  List.iter
    (fun l ->
      Printf.printf "  %-4s %8d records %10d bytes\n" l.Blsm.Tree.level
        l.Blsm.Tree.records l.Blsm.Tree.bytes)
    (Blsm.Tree.levels tree);

  (* Crash and recover: committed components + WAL replay. *)
  let tree = Blsm.Tree.crash_and_recover tree in
  Printf.printf "after crash+recovery: alice = %s, bulk:004999 intact = %b\n"
    (Option.value (Blsm.Tree.get tree "user:alice") ~default:"<lost!>")
    (Blsm.Tree.get tree "bulk:004999" <> None);

  Printf.printf "simulated time elapsed: %.2f ms\n"
    (Pagestore.Store.now_us store /. 1000.)
