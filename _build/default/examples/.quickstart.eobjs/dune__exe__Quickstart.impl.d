examples/quickstart.ml: Blsm Char Kv List Option Pagestore Printf Simdisk String
