examples/replication.mli:
