examples/analytics_scan.mli:
