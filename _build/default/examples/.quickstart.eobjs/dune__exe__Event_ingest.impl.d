examples/event_ingest.ml: Blsm Fmt Hashtbl List Option Pagestore Printf Repro_util Simdisk String
