examples/analytics_scan.ml: Array Blsm List Pagestore Printf Repro_util Scanf Simdisk String
