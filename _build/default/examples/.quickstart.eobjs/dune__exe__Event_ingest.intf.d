examples/event_ingest.mli:
