examples/session_store.ml: Blsm Option Pagestore Printf Repro_util Simdisk String
