examples/multi_tenant.ml: Array Blsm Fmt List Pagestore Printf Repro_util Simdisk String
