examples/replication.ml: Blsm Char List Option Pagestore Printf Simdisk String
