examples/quickstart.mli:
