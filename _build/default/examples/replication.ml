(* Geo-replication: the PNUTS deployment pattern.

   bLSM was built as backing storage for PNUTS, Yahoo!'s geographically
   distributed serving store, and its logical log exists partly to feed
   replication (§4.4.2; Rose, bLSM's substrate, was a log-structured
   replication target). This example runs a primary and a follower:
   log-shipped catch-up, a follower that fell behind and needs a snapshot
   bootstrap, a follower power-failure, and a failover.

   Run with:  dune exec examples/replication.exe *)

let mk_store () =
  Pagestore.Store.create
    ~config:
      {
        Pagestore.Store.cfg_page_size = 4096;
        cfg_buffer_pages = 1024;
        cfg_durability = Pagestore.Wal.Full;
      }
    Simdisk.Profile.ssd_raid0

let config =
  { Blsm.Config.default with Blsm.Config.c0_bytes = 1024 * 1024 }

let () =
  let primary = Blsm.Tree.create ~config (mk_store ()) in
  let follower = Blsm.Replication.follower ~config (mk_store ()) in

  (* Live traffic on the primary; the follower tails the log. *)
  Blsm.Tree.put primary "user:alice" "sunnyvale";
  Blsm.Tree.put primary "user:bob" "bangalore";
  Blsm.Tree.apply_delta primary "user:alice" ";lastlogin=t1";
  (match Blsm.Replication.catch_up follower ~primary with
  | `Applied n -> Printf.printf "catch-up: applied %d log records\n" n
  | `Snapshot_needed -> assert false);
  Printf.printf "follower reads user:alice -> %s\n"
    (Option.value
       (Blsm.Tree.get (Blsm.Replication.tree follower) "user:alice")
       ~default:"<missing>");

  (* The follower disconnects; the primary churns enough that merges
     truncate its log past the follower's position. *)
  for i = 0 to 4_999 do
    Blsm.Tree.put primary
      (Printf.sprintf "event:%08d" i)
      (String.make 150 (Char.chr (97 + (i mod 26))))
  done;
  Blsm.Tree.flush primary;
  (match Blsm.Replication.catch_up follower ~primary with
  | `Snapshot_needed ->
      Printf.printf
        "follower fell behind (log truncated): bootstrapping snapshot...\n";
      Blsm.Replication.resync follower ~primary
  | `Applied n -> Printf.printf "(caught up with %d records)\n" n);
  Printf.printf "follower has %d rows after bootstrap\n"
    (List.length (Blsm.Tree.scan (Blsm.Replication.tree follower) "event:" 100_000));

  (* Incremental tailing resumes after the bootstrap. *)
  Blsm.Tree.put primary "user:carol" "tokyo";
  (match Blsm.Replication.catch_up follower ~primary with
  | `Applied n -> Printf.printf "tailing again: %d record(s)\n" n
  | `Snapshot_needed -> assert false);

  (* Power-fail the follower: its position recovers with its data, so
     nothing is lost or double-applied. *)
  let follower = Blsm.Replication.crash_and_recover follower in
  Printf.printf "follower recovered at lsn %d, lag %d\n"
    (Blsm.Replication.applied_lsn follower)
    (Blsm.Replication.lag follower ~primary);

  (* Failover: the follower is a full tree — just start writing. *)
  let new_primary = Blsm.Replication.tree follower in
  Blsm.Tree.put new_primary "user:dave" "promoted-write";
  Printf.printf "after failover: carol=%s dave=%s\n"
    (Option.value (Blsm.Tree.get new_primary "user:carol") ~default:"<lost>")
    (Option.value (Blsm.Tree.get new_primary "user:dave") ~default:"<lost>")
