(* Serving-store example: a PNUTS-style user-session workload.

   The paper positions bLSM as backing storage for PNUTS, Yahoo!'s
   key-value serving platform: interactive traffic is point reads,
   updates, and occasional short scans, under strict latency SLAs. This
   example compares the two ways to update a session record:

   - read-modify-write: fetch the session, append the activity, write it
     back (1 seek on bLSM; what a B-Tree must do, at 2 seeks);
   - delta (blind) writes: append the activity as a zero-seek delta and
     let reads and merges resolve it (§2.3, §3.1.1).

   It also demonstrates why delta chains are bounded in practice: reads
   that encounter deltas can immediately write back the merged tuple
   ("read repair", §5.6's suggestion).

   Run with:  dune exec examples/session_store.exe *)

let mk_tree () =
  let store =
    Pagestore.Store.create
      ~config:
        {
          Pagestore.Store.cfg_page_size = 4096;
          cfg_buffer_pages = 1024;
          cfg_durability = Pagestore.Wal.Full;
        }
      Simdisk.Profile.hdd_raid0
  in
  Blsm.Tree.create
    ~config:{ Blsm.Config.default with Blsm.Config.c0_bytes = 2 * 1024 * 1024 }
    store

let sessions = 5_000
let updates = 15_000

let setup tree prng =
  for i = 0 to sessions - 1 do
    Blsm.Tree.put tree
      (Printf.sprintf "session:%08d" i)
      (Printf.sprintf "start=0;ua=%s" (Repro_util.Keygen.value prng 120))
  done;
  Blsm.Tree.flush tree

let run_phase name tree f =
  let disk = Blsm.Tree.disk tree in
  let lat = Repro_util.Histogram.create () in
  let before = Simdisk.Disk.snapshot disk in
  let prng = Repro_util.Prng.of_int 7 in
  for i = 0 to updates - 1 do
    let session = Repro_util.Prng.int prng sessions in
    let t0 = Simdisk.Disk.now_us disk in
    f i (Printf.sprintf "session:%08d" session);
    Repro_util.Histogram.add lat (int_of_float (Simdisk.Disk.now_us disk -. t0))
  done;
  let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
  Printf.printf "%-24s %9.0f ops/s  %5.2f seeks/op  p99 %6.2fms  max %6.2fms\n"
    name
    (float_of_int updates /. d.Simdisk.Disk.at_us *. 1e6)
    (float_of_int d.Simdisk.Disk.seeks /. float_of_int updates)
    (float_of_int (Repro_util.Histogram.percentile lat 99.0) /. 1000.)
    (float_of_int (Repro_util.Histogram.max_value lat) /. 1000.)

let () =
  let prng = Repro_util.Prng.of_int 1 in
  Printf.printf "session store: %d sessions, %d updates per strategy (hdd)\n\n"
    sessions updates;

  (* Strategy 1: read-modify-write *)
  let t1 = mk_tree () in
  setup t1 prng;
  run_phase "read-modify-write" t1 (fun i key ->
      Blsm.Tree.read_modify_write t1 key (fun v ->
          Option.value v ~default:"" ^ Printf.sprintf ";act%d" i));

  (* Strategy 2: blind delta writes *)
  let t2 = mk_tree () in
  setup t2 prng;
  run_phase "blind delta writes" t2 (fun i key ->
      Blsm.Tree.apply_delta t2 key (Printf.sprintf ";act%d" i));

  (* Reads against the delta-updated store still see merged sessions. *)
  let v = Blsm.Tree.get t2 "session:00000042" in
  Printf.printf "\nsample session after deltas: %s...\n"
    (String.sub (Option.value v ~default:"<missing>") 0 40);

  (* Strategy 3: deltas + read-repair on the read path *)
  let t3 = mk_tree () in
  setup t3 prng;
  run_phase "deltas + read-repair" t3 (fun i key ->
      if i mod 10 = 9 then
        (* every 10th access is a read that folds pending deltas back in *)
        match Blsm.Tree.get t3 key with
        | Some merged -> Blsm.Tree.put t3 key merged
        | None -> ()
      else Blsm.Tree.apply_delta t3 key (Printf.sprintf ";act%d" i));
  print_newline ();
  Printf.printf
    "deltas win on write-heavy session traffic (0 seeks/update); RMW pays one\n\
     seek per update; read-repair bounds delta-chain length for readers.\n"
