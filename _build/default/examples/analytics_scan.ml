(* Analytical workload: bulk load, long scans, and targeted probes.

   The second half of the paper's motivating split: "analytical
   processing consists of bulk writes and scans." One bLSM store absorbs
   an unsorted bulk load at sequential-ish bandwidth, then serves both
   full-table scans (aggregation) and targeted point queries — the
   workloads that traditionally forced two separate storage systems.

   Run with:  dune exec examples/analytics_scan.exe *)

let () =
  let store =
    Pagestore.Store.create
      ~config:
        {
          Pagestore.Store.cfg_page_size = 4096;
          cfg_buffer_pages = 2048;
          cfg_durability = Pagestore.Wal.Degraded;
          (* bulk pipelines often accept degraded durability (§4.4.2) *)
        }
      Simdisk.Profile.hdd_raid0
  in
  let tree =
    Blsm.Tree.create
      ~config:{ Blsm.Config.default with Blsm.Config.c0_bytes = 4 * 1024 * 1024 }
      store
  in
  let disk = Pagestore.Store.disk store in
  let prng = Repro_util.Prng.of_int 11 in

  (* 1. Unsorted bulk load of an orders table. *)
  let orders = 40_000 in
  Printf.printf "loading %d orders (unsorted arrival)...\n" orders;
  let t0 = Simdisk.Disk.now_us disk in
  for i = 0 to orders - 1 do
    let region = Repro_util.Prng.int prng 8 in
    let amount = 1 + Repro_util.Prng.int prng 999 in
    Blsm.Tree.put tree
      (Printf.sprintf "order:%s" (Repro_util.Keygen.key_of_id i))
      (Printf.sprintf "region=%d;amount=%d;pad=%s" region amount
         (Repro_util.Keygen.value prng 160))
  done;
  Blsm.Tree.flush tree;
  let load_s = (Simdisk.Disk.now_us disk -. t0) /. 1e6 in
  Printf.printf "loaded in %.2fs simulated (%.1f MB/s)\n" load_s
    (float_of_int (orders * 200) /. load_s /. 1e6);

  (* 2. Full-table scan: revenue by region. *)
  let t1 = Simdisk.Disk.now_us disk in
  let revenue = Array.make 8 0 in
  let scanned = ref 0 in
  let rec scan_all cursor =
    match Blsm.Tree.scan tree cursor 1_000 with
    | [] -> ()
    | rows ->
        List.iter
          (fun (k, v) ->
            if String.length k > 6 && String.sub k 0 6 = "order:" then begin
              incr scanned;
              Scanf.sscanf v "region=%d;amount=%d" (fun r a ->
                  revenue.(r) <- revenue.(r) + a)
            end)
          rows;
        let last, _ = List.nth rows (List.length rows - 1) in
        scan_all (last ^ "\000")
  in
  scan_all "order:";
  let scan_s = (Simdisk.Disk.now_us disk -. t1) /. 1e6 in
  Printf.printf "\nfull scan of %d rows in %.2fs simulated:\n" !scanned scan_s;
  Array.iteri (fun r total -> Printf.printf "  region %d: %8d\n" r total) revenue;

  (* 3. Targeted point probes against the same store. *)
  let probes = 2_000 in
  let before = Simdisk.Disk.snapshot disk in
  let found = ref 0 in
  for _ = 1 to probes do
    let id = Repro_util.Prng.int prng orders in
    if
      Blsm.Tree.get tree
        (Printf.sprintf "order:%s" (Repro_util.Keygen.key_of_id id))
      <> None
    then incr found
  done;
  let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
  Printf.printf
    "\n%d targeted probes: %d found, %.2f seeks/probe, %.2fms avg latency\n"
    probes !found
    (float_of_int d.Simdisk.Disk.seeks /. float_of_int probes)
    (d.Simdisk.Disk.at_us /. float_of_int probes /. 1000.);
  Printf.printf
    "one store served bulk ingest at bandwidth, scans at bandwidth, and\n\
     probes at ~1 seek — no separate fast-path / analytics split needed.\n"
