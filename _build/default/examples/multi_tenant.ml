(* Multi-tenant store on partitioned bLSM: the Walnut scenario.

   Walnut, the paper's other target system (§1), is an elastic cloud
   object store hosting many tenants with wildly different write rates.
   Range partitioning (the paper's §4.2.2 future work, implemented in
   Blsm.Partitioned) keeps one tenant's write burst from dragging every
   other tenant through its merges: each partition paces its own
   spring-and-gear scheduler, and merge I/O concentrates on the ranges
   actually being written (Figure 3's motivation).

   Run with:  dune exec examples/multi_tenant.exe *)

let () =
  let store =
    Pagestore.Store.create
      ~config:
        {
          Pagestore.Store.cfg_page_size = 4096;
          cfg_buffer_pages = 2048;
          cfg_durability = Pagestore.Wal.Full;
        }
      Simdisk.Profile.hdd_raid0
  in
  let tenants = [ "ads"; "mail"; "news"; "social" ] in
  let t =
    Blsm.Partitioned.create
      ~config:{ Blsm.Config.default with Blsm.Config.c0_bytes = 4 * 1024 * 1024 }
      ~c0_share:`Shared
      ~boundaries:[ "mail/"; "news/"; "social/" ]
      store
  in
  let disk = Blsm.Partitioned.disk t in
  let prng = Repro_util.Prng.of_int 5 in

  (* Steady trickle for every tenant. *)
  List.iter
    (fun tenant ->
      for i = 0 to 499 do
        Blsm.Partitioned.put t
          (Printf.sprintf "%s/obj%06d" tenant i)
          (Repro_util.Keygen.value prng 300)
      done)
    tenants;

  (* One tenant bursts: 20x everyone else's traffic. *)
  Printf.printf "tenant 'social' bursts with 10k writes...\n";
  let lat = Repro_util.Histogram.create () in
  for i = 500 to 10_499 do
    let t0 = Simdisk.Disk.now_us disk in
    Blsm.Partitioned.put t
      (Printf.sprintf "social/obj%06d" i)
      (Repro_util.Keygen.value prng 300);
    (* an interactive tenant keeps reading during the burst *)
    if i mod 50 = 0 then
      ignore (Blsm.Partitioned.get t (Printf.sprintf "mail/obj%06d" (i mod 500)));
    Repro_util.Histogram.add lat (int_of_float (Simdisk.Disk.now_us disk -. t0))
  done;
  Fmt.pr "burst write latency (us): %a@." Repro_util.Histogram.pp lat;

  (* Merge activity concentrated where the writes went. *)
  Blsm.Partitioned.flush t;
  let bytes = Blsm.Partitioned.partition_bytes t in
  List.iteri
    (fun i tenant ->
      Printf.printf "  partition %-8s %8.1f KiB on disk\n" tenant
        (float_of_int bytes.(i) /. 1024.))
    tenants;

  (* Tenant-scoped scans never cross partitions. *)
  let rows = Blsm.Partitioned.scan t "news/" 5 in
  Printf.printf "first news objects: %s\n"
    (String.concat ", " (List.map fst rows));
  Printf.printf "total merges across partitions: %d; hard stalls: %d\n"
    (Blsm.Partitioned.total_merges t)
    (Blsm.Partitioned.total_hard_stalls t)
