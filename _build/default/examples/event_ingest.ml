(* Event-log ingestion: the workload from the paper's introduction.

   Applications "ingest event logs (such as user clicks and mobile device
   sensor readings), and later mine the data by issuing long scans, or
   targeted point queries" — while demanding that updates be synchronously
   visible. This example ingests a click stream with duplicate
   suppression (insert-if-not-exists, §3.1.2), interleaves live point
   queries against the fresh data, and finishes with an analytical scan —
   all on one store, which is the paper's core pitch.

   Run with:  dune exec examples/event_ingest.exe *)

let () =
  let store =
    Pagestore.Store.create
      ~config:
        {
          Pagestore.Store.cfg_page_size = 4096;
          cfg_buffer_pages = 4096;
          cfg_durability = Pagestore.Wal.Full;
        }
      Simdisk.Profile.hdd_raid0
  in
  let config =
    { Blsm.Config.default with Blsm.Config.c0_bytes = 4 * 1024 * 1024 }
  in
  let tree = Blsm.Tree.create ~config store in
  let disk = Pagestore.Store.disk store in
  let prng = Repro_util.Prng.of_int 2024 in

  let events = 30_000 in
  let users = 2_000 in
  let duplicates = ref 0 in
  let lat = Repro_util.Histogram.create () in
  Printf.printf "ingesting %d click events (%d users, ~10%% duplicate ids)...\n"
    events users;
  let t0 = Simdisk.Disk.now_us disk in
  for i = 0 to events - 1 do
    (* event id with injected duplicates, e.g. retried deliveries *)
    let event_id =
      if Repro_util.Prng.int prng 10 = 0 && i > 0 then Repro_util.Prng.int prng i
      else i
    in
    let user = Repro_util.Prng.int prng users in
    let key = Printf.sprintf "click:%012d" event_id in
    let payload =
      Printf.sprintf "{user:%05d, page:/item/%d, ts:%d, blob:%s}" user
        (Repro_util.Prng.int prng 500)
        i
        (Repro_util.Keygen.value prng 180)
    in
    let a = Simdisk.Disk.now_us disk in
    if not (Blsm.Tree.insert_if_absent tree key payload) then incr duplicates;
    (* a live dashboard probes recent events as they stream in *)
    if i mod 100 = 0 && i > 0 then
      ignore (Blsm.Tree.get tree (Printf.sprintf "click:%012d" (i - 50)));
    Repro_util.Histogram.add lat (int_of_float (Simdisk.Disk.now_us disk -. a))
  done;
  let dt = (Simdisk.Disk.now_us disk -. t0) /. 1e6 in
  Printf.printf
    "ingested in %.2fs simulated: %.0f events/s; %d duplicates suppressed\n" dt
    (float_of_int events /. dt)
    !duplicates;
  let s = Blsm.Tree.stats tree in
  Printf.printf "dedup checks answered seek-free by Bloom filters: %d/%d\n"
    s.Blsm.Tree.checked_insert_seekfree s.Blsm.Tree.checked_inserts;
  Fmt.pr "ingest latency (us): %a@." Repro_util.Histogram.pp lat;

  (* analytical pass: a long range scan over a time window *)
  let t1 = Simdisk.Disk.now_us disk in
  let window = Blsm.Tree.scan tree "click:000000010000" 2_000 in
  let clicks_by_page = Hashtbl.create 64 in
  List.iter
    (fun (_, v) ->
      match String.index_opt v '/' with
      | Some i ->
          let page = String.sub v i (min 12 (String.length v - i)) in
          Hashtbl.replace clicks_by_page page
            (1 + Option.value (Hashtbl.find_opt clicks_by_page page) ~default:0)
      | None -> ())
    window;
  Printf.printf
    "analytical scan: %d events in %.2fms simulated, %d distinct pages\n"
    (List.length window)
    ((Simdisk.Disk.now_us disk -. t1) /. 1000.)
    (Hashtbl.length clicks_by_page)
