(* blsm_cli: interactive shell over a bLSM tree.

   A REPL for poking at the data structure: writes, reads, scans, deltas,
   crash/recovery, merge forcing, and live introspection of levels, I/O
   counters and scheduler state. The store is an in-memory simulation, so
   a session is ephemeral by design — `crash` + implicit recovery shows
   exactly what would survive on a real device.

   Run with:  dune exec bin/blsm_cli.exe -- [--disk hdd|ssd] [--c0-kb N]
              [--scheduler naive|gear|spring] *)

let usage = {|commands:
  put <key> <value>        blind write (insert or overwrite)
  get <key>                point lookup
  del <key>                delete (tombstone write)
  delta <key> <patch>      zero-seek delta write (append semantics)
  ifabsent <key> <value>   insert if not exists
  rmw <key> <suffix>       read-modify-write: append <suffix>
  scan <key> <n>           up to n records with key >= <key>
  fill <n> [<bytes>]       bulk-insert n synthetic records
  flush                    drain C0 and all merges to disk
  crash                    power-fail and recover (WAL replay)
  levels                   component sizes and timestamps
  stats                    operation counters and merge activity
  io                       simulated disk counters and clock
  help                     this text
  quit                     exit|}

let parse_args () =
  let disk = ref Simdisk.Profile.ssd_raid0 in
  let c0_kb = ref 1024 in
  let scheduler = ref Blsm.Config.Spring in
  let rec go = function
    | [] -> ()
    | "--disk" :: "hdd" :: rest ->
        disk := Simdisk.Profile.hdd_raid0;
        go rest
    | "--disk" :: "ssd" :: rest ->
        disk := Simdisk.Profile.ssd_raid0;
        go rest
    | "--c0-kb" :: v :: rest ->
        c0_kb := int_of_string v;
        go rest
    | "--scheduler" :: s :: rest ->
        (scheduler :=
           match s with
           | "naive" -> Blsm.Config.Naive
           | "gear" -> Blsm.Config.Gear
           | "spring" -> Blsm.Config.Spring
           | _ -> failwith ("unknown scheduler " ^ s));
        go rest
    | a :: _ -> failwith ("unknown argument " ^ a)
  in
  go (List.tl (Array.to_list Sys.argv));
  (!disk, !c0_kb * 1024, !scheduler)

let () =
  let profile, c0_bytes, scheduler = parse_args () in
  let store =
    Pagestore.Store.create
      ~config:
        {
          Pagestore.Store.cfg_page_size = 4096;
          cfg_buffer_pages = 2048;
          cfg_durability = Pagestore.Wal.Full;
        }
      profile
  in
  let config =
    {
      Blsm.Config.default with
      Blsm.Config.c0_bytes;
      scheduler;
      snowshovel = scheduler <> Blsm.Config.Gear;
    }
  in
  let tree = ref (Blsm.Tree.create ~config store) in
  let prng = Repro_util.Prng.of_int 99 in
  Printf.printf "bLSM shell — %s, C0 = %d KiB, %s scheduler. Type `help`.\n"
    profile.Simdisk.Profile.name (c0_bytes / 1024)
    (Blsm.Config.scheduler_name scheduler);
  let running = ref true in
  while !running do
    print_string "blsm> ";
    match In_channel.input_line In_channel.stdin with
    | None -> running := false
    | Some line -> (
        let words =
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> s <> "")
        in
        try
          match words with
          | [] -> ()
          | [ "quit" ] | [ "exit" ] -> running := false
          | [ "help" ] -> print_endline usage
          | [ "put"; k; v ] -> Blsm.Tree.put !tree k v
          | [ "get"; k ] ->
              print_endline
                (match Blsm.Tree.get !tree k with
                | Some v -> v
                | None -> "(not found)")
          | [ "del"; k ] -> Blsm.Tree.delete !tree k
          | [ "delta"; k; d ] -> Blsm.Tree.apply_delta !tree k d
          | [ "ifabsent"; k; v ] ->
              Printf.printf "%s\n"
                (if Blsm.Tree.insert_if_absent !tree k v then "inserted"
                 else "exists, kept")
          | [ "rmw"; k; suffix ] ->
              Blsm.Tree.read_modify_write !tree k (fun v ->
                  Option.value v ~default:"" ^ suffix)
          | [ "scan"; k; n ] ->
              List.iter
                (fun (key, v) -> Printf.printf "  %-24s %s\n" key v)
                (Blsm.Tree.scan !tree k (int_of_string n))
          | [ "fill"; n ] | [ "fill"; n; _ ] ->
              let bytes =
                match words with [ _; _; b ] -> int_of_string b | _ -> 100
              in
              let n = int_of_string n in
              for _ = 1 to n do
                Blsm.Tree.put !tree
                  (Repro_util.Keygen.key_of_id (Repro_util.Prng.int prng 1_000_000))
                  (Repro_util.Keygen.value prng bytes)
              done;
              Printf.printf "inserted %d records\n" n
          | [ "flush" ] ->
              Blsm.Tree.flush !tree;
              print_endline "flushed"
          | [ "crash" ] ->
              tree := Blsm.Tree.crash_and_recover !tree;
              print_endline "crashed and recovered (C0 rebuilt from WAL)"
          | [ "levels" ] ->
              List.iter
                (fun l ->
                  Printf.printf "  %-4s %10d records %12d bytes  ts=%d\n"
                    l.Blsm.Tree.level l.Blsm.Tree.records l.Blsm.Tree.bytes
                    l.Blsm.Tree.level_timestamp)
                (Blsm.Tree.levels !tree)
          | [ "stats" ] ->
              let s = Blsm.Tree.stats !tree in
              Printf.printf
                "  puts=%d gets=%d dels=%d deltas=%d rmws=%d scans=%d\n\
                \  checked-inserts=%d (seek-free %d)\n\
                \  merges: C0:C1=%d C1':C2=%d promotions=%d hard-stalls=%d\n\
                \  write stall: %s\n"
                s.Blsm.Tree.puts s.Blsm.Tree.gets s.Blsm.Tree.deletes
                s.Blsm.Tree.deltas s.Blsm.Tree.rmws s.Blsm.Tree.scans
                s.Blsm.Tree.checked_inserts s.Blsm.Tree.checked_insert_seekfree
                s.Blsm.Tree.merge1_completions s.Blsm.Tree.merge2_completions
                s.Blsm.Tree.promotions s.Blsm.Tree.hard_stalls
                (Fmt.str "%a" Repro_util.Histogram.pp s.Blsm.Tree.stall_us)
          | [ "io" ] ->
              let d = Simdisk.Disk.snapshot (Blsm.Tree.disk !tree) in
              Printf.printf
                "  t=%.3fms seeks=%d random-writes=%d seqR=%.1fKiB seqW=%.1fKiB\n"
                (d.Simdisk.Disk.at_us /. 1000.)
                d.Simdisk.Disk.seeks d.Simdisk.Disk.random_writes
                (float_of_int d.Simdisk.Disk.seq_read_bytes /. 1024.)
                (float_of_int d.Simdisk.Disk.seq_write_bytes /. 1024.)
          | cmd :: _ -> Printf.printf "unknown command %S (try `help`)\n" cmd
        with
        | Failure m -> Printf.printf "error: %s\n" m
        | Invalid_argument m -> Printf.printf "error: %s\n" m)
  done
