(** Figure 7 — random-order insert timeseries: bLSM (left) vs LevelDB
    (right). The paper's claim: both load the same data; bLSM's
    throughput is predictable and it finishes earlier; LevelDB shows
    collapsing throughput and second-scale latency spikes.

    Printed as one row per simulated-time bucket: ops/sec, mean and max
    insert latency. Empty buckets (ops/sec = 0) are full write stalls. *)

let print_timeseries label (r : Ycsb.Runner.result) =
  Printf.printf "\n[%s]  total: %d ops in %.1fs -> %.0f ops/s, max latency %.1fms\n"
    label r.Ycsb.Runner.ops
    (r.Ycsb.Runner.elapsed_us /. 1e6)
    r.Ycsb.Runner.ops_per_sec
    (float_of_int (Repro_util.Histogram.max_value r.Ycsb.Runner.latency) /. 1000.);
  Printf.printf "%8s %12s %12s %12s\n" "t(s)" "ops/sec" "mean-lat(ms)" "max-lat(ms)";
  List.iter
    (fun (row : Repro_util.Timeseries.row) ->
      Printf.printf "%8.1f %12.0f %12.2f %12.2f\n" row.Repro_util.Timeseries.t_sec
        row.Repro_util.Timeseries.ops_per_sec row.Repro_util.Timeseries.mean_latency_ms
        row.Repro_util.Timeseries.max_latency_ms)
    (Repro_util.Timeseries.rows r.Ycsb.Runner.timeseries)

let run scale profile =
  Scale.section
    (Printf.sprintf "Figure 7: random-order insert timeseries (%s)"
       profile.Simdisk.Profile.name);
  let n = scale.Scale.records in
  let bucket_us =
    (* aim for ~20 buckets over the expected bLSM load duration *)
    max 200_000
      (n * scale.Scale.value_bytes / 24 (* rough bytes/us at HDD speed *) / 20)
  in
  let blsm = Scale.blsm_engine scale profile in
  let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes:scale.Scale.value_bytes in
  let r_blsm =
    Ycsb.Runner.load blsm ks ~n ~timeseries_bucket_us:bucket_us ~seed:scale.Scale.seed ()
  in
  print_timeseries "bLSM (spring-and-gear)" r_blsm;
  let ldb = Scale.leveldb_engine scale profile in
  let ks2 = Ycsb.Runner.keyspace ~records:0 ~value_bytes:scale.Scale.value_bytes in
  let r_ldb =
    Ycsb.Runner.load ldb ks2 ~n ~timeseries_bucket_us:bucket_us ~seed:scale.Scale.seed ()
  in
  print_timeseries "LevelDB (partition scheduler)" r_ldb;
  Printf.printf
    "\nShape check: bLSM max-latency %.1fms vs LevelDB max-latency %.1fms; \
     bLSM finished %.1fx %s\n"
    (float_of_int (Repro_util.Histogram.max_value r_blsm.Ycsb.Runner.latency) /. 1000.)
    (float_of_int (Repro_util.Histogram.max_value r_ldb.Ycsb.Runner.latency) /. 1000.)
    (r_ldb.Ycsb.Runner.elapsed_us /. r_blsm.Ycsb.Runner.elapsed_us)
    (if r_ldb.Ycsb.Runner.elapsed_us > r_blsm.Ycsb.Runner.elapsed_us then "faster"
     else "slower")
