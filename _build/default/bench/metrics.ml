(** §2.1 metrics — read amplification, write amplification, read fanout —
    measured for all three engines.

    The paper argues these three numbers characterize real-world indexes
    better than asymptotics or price/performance:

    - read amplification = worst-case seeks per index probe;
    - write amplification = total sequential I/O for an object divided by
      its size (including deferred merge/compaction I/O);
    - read fanout = data size / RAM the index needs for that read
      amplification (approximated, as in the paper, by the RAM that pins
      the bottom-most index layer — plus C0 and Bloom filters for the
      LSMs).

    Each row is measured: write amplification over a full random load
    (all flushes, merges, compactions, and log I/O included), read
    amplification over scattered uncached probes, and read fanout from
    the structures' actual footprints. The paper's §2.2 arithmetic says a
    B-Tree's effective write amplification on 1000-byte tuples is ~1000
    (two seeks at 5 ms vs 10 µs of streaming); we report the same
    "effective" number by converting each engine's per-write time cost to
    equivalent sequential bytes. *)

let run scale profile =
  Scale.section
    (Printf.sprintf "Section 2.1 metrics: amplification and fanout (%s)"
       profile.Simdisk.Profile.name);
  Printf.printf "%-10s %12s %14s %14s %12s %12s\n" "engine" "write-amp"
    "eff-write-amp" "read-amp(seeks)" "read-fanout" "space-amp";
  let user_bytes = scale.Scale.records * scale.Scale.value_bytes in
  let measure name store (engine : Kv.Kv_intf.engine) ~index_ram =
    let disk = engine.Kv.Kv_intf.disk in
    (* --- write amplification: load everything, settle, count I/O --- *)
    let before = Simdisk.Disk.snapshot disk in
    let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes:scale.Scale.value_bytes in
    ignore (Ycsb.Runner.load engine ks ~n:scale.Scale.records ~seed:scale.Scale.seed ());
    engine.Kv.Kv_intf.maintenance ();
    let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
    let write_bytes = d.Simdisk.Disk.seq_write_bytes + d.Simdisk.Disk.random_write_bytes in
    let write_amp = float_of_int write_bytes /. float_of_int user_bytes in
    (* effective write amp: total time cost of the load expressed as
       sequential bandwidth (the paper's §2.2 convention, which is how a
       5 ms seek becomes "1000x amplification" for a 1 KB tuple) *)
    let eff_write_amp =
      d.Simdisk.Disk.at_us /. 1e6
      *. profile.Simdisk.Profile.write_mb_per_s *. 1e6
      /. float_of_int user_bytes
    in
    (* --- read amplification: scattered uncached probes --- *)
    let prng = Repro_util.Prng.of_int 31 in
    let n = 400 in
    let before = Simdisk.Disk.snapshot disk in
    for _ = 1 to n do
      ignore
        (engine.Kv.Kv_intf.get
           (Repro_util.Keygen.key_of_id (Repro_util.Prng.int prng ks.Ycsb.Runner.records)))
    done;
    let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
    let read_amp = float_of_int d.Simdisk.Disk.seeks /. float_of_int n in
    (* --- read fanout: data / index RAM --- *)
    let fanout = float_of_int user_bytes /. float_of_int (max 1 (index_ram ())) in
    (* --- space amplification: durable bytes / user bytes (§3.2 warns
       that merge workarounds can make this unbounded) --- *)
    let space_amp =
      float_of_int (Pagestore.Store.stored_bytes store) /. float_of_int user_bytes
    in
    Printf.printf "%-10s %12.2f %14.1f %14.2f %12.1f %12.2f\n" name write_amp
      eff_write_amp read_amp fanout space_amp
  in
  (* bLSM: index RAM = C0 budget + Bloom filters + per-component page
     indexes (key + position per data page) *)
  let blsm_tree = Scale.blsm scale profile in
  measure "bLSM" (Blsm.Tree.store blsm_tree) (Blsm.Tree.engine blsm_tree)
    ~index_ram:(fun () ->
      let index_ram =
        List.fold_left
          (fun acc l ->
            if l.Blsm.Tree.level = "C0" then acc + l.Blsm.Tree.bytes
            else acc + (l.Blsm.Tree.bytes / 4096 * 32))
          0 (Blsm.Tree.levels blsm_tree)
      in
      index_ram + Blsm.Tree.bloom_bytes blsm_tree);
  (* B-Tree: internal nodes must stay in RAM for 1-seek reads *)
  let bt = Scale.btree scale profile in
  measure "B-Tree" (Btree_baseline.Btree.store bt) (Btree_baseline.Btree.engine bt)
    ~index_ram:(fun () ->
      let internal, _ = Btree_baseline.Btree.node_counts bt in
      internal * 16 * 1024);
  (* LevelDB: memtable + per-file indexes; no Bloom filters *)
  let ldb = Scale.leveldb scale profile in
  measure "LevelDB" (Leveldb_sim.Leveldb.store ldb) (Leveldb_sim.Leveldb.engine ldb)
    ~index_ram:(fun () ->
      let cfg = Leveldb_sim.Leveldb.config ldb in
      List.fold_left
        (fun acc li -> acc + (li.Leveldb_sim.Leveldb.li_bytes / 4096 * 32))
        cfg.Leveldb_sim.Leveldb.memtable_bytes
        (Leveldb_sim.Leveldb.levels ldb));
  Printf.printf
    "\n(eff-write-amp converts each engine's total load time to equivalent\n\
    \ sequential bytes, the paper's SS2.2 convention: ~1000 for B-Trees on\n\
    \ hard disks, low for log-structured writes.)\n"
