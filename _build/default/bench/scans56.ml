(** §5.6 — scans: InnoDB vs bLSM.

    Short scans (1-4 rows): InnoDB reads one leaf; bLSM touches all three
    tree components — the sole experiment InnoDB wins (paper: 608 vs 385
    scans/s, ~1.6:1). Long scans (1-100 rows) after the stores have been
    fragmented by the read-write workloads: InnoDB seeks per leaf, bLSM
    streams — bLSM wins (paper: 165 vs 86, ~1.9:1). The scan experiment
    runs last, after a fragmenting update phase, exactly as in the paper. *)

let run scale profile =
  Scale.section
    (Printf.sprintf "Section 5.6: scans after fragmentation (%s)"
       profile.Simdisk.Profile.name);
  let engines =
    [
      ("InnoDB", Scale.btree_engine scale profile);
      ("bLSM", Scale.blsm_engine scale profile);
    ]
  in
  let prepared =
    List.map
      (fun (name, e) ->
        let ks, _ = Scale.loaded_engine scale e in
        (* fragment: uniform random overwrites (the prior read-write tests
           of §5) *)
        ignore
          (Ycsb.Runner.run e ks ~label:"fragment"
             ~mix:[ (Ycsb.Runner.Read, 0.5); (Ycsb.Runner.Blind_update, 0.5) ]
             ~ops:scale.Scale.ops
             ~dist:(Ycsb.Generator.uniform ~seed:11) ());
        e.Kv.Kv_intf.maintenance ();
        (name, e, ks))
      engines
  in
  let scan_phase label max_len =
    Printf.printf "\n%s:\n%-10s %12s %14s %12s\n" label "engine" "scans/s"
      "mean-lat(ms)" "seeks/scan";
    List.iter
      (fun (name, (e : Kv.Kv_intf.engine), ks) ->
        let before = Simdisk.Disk.snapshot e.Kv.Kv_intf.disk in
        let r =
          Ycsb.Runner.run e ks ~label:name
            ~mix:[ (Ycsb.Runner.Scan max_len, 1.0) ]
            ~ops:(max 500 (scale.Scale.ops / 4))
            ~dist:(Ycsb.Generator.uniform ~seed:12) ()
        in
        let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot e.Kv.Kv_intf.disk) in
        Printf.printf "%-10s %12.0f %14.2f %12.2f\n" name r.Ycsb.Runner.ops_per_sec
          (Repro_util.Histogram.mean r.Ycsb.Runner.latency /. 1000.)
          (float_of_int d.Simdisk.Disk.seeks /. float_of_int r.Ycsb.Runner.ops))
      prepared
  in
  scan_phase "Short scans (1-4 rows)" 4;
  scan_phase "Long scans (1-100 rows)" 100
