(** Figure 2 — read amplification vs data size: fractional cascading at
    fixed R versus a three-level tree with Bloom filters.

    Left panel: seeks per uncached lookup. A fractional-cascading tree
    with ratio R has ceil(log_R(data/RAM)) on-disk levels and performs one
    disk access per level (the cascade pointers land on cold pages).
    Bloom filters instead make lookups cost 1 + levels * fp_rate seeks —
    1.03 for the paper's two filtered on-disk levels at ~1% fp.

    Right panel: bandwidth amplification — bytes transferred per byte of
    record read. Each cascade step transfers one page.

    The Bloom line is additionally *measured* on a real bLSM instance at
    several data sizes to validate the model. *)

let levels ~r ~multiple =
  if multiple <= 1.0 then 1
  else int_of_float (Float.ceil (log multiple /. log r))

let model_seeks ~r ~multiple = float_of_int (levels ~r ~multiple)

let bloom_seeks = 1.0 +. (2.0 *. 0.015) (* two filtered levels, ~1.5% fp *)

let model_bandwidth ~page ~value ~r ~multiple =
  float_of_int (levels ~r ~multiple * page) /. float_of_int value

let bloom_bandwidth ~page ~value =
  bloom_seeks *. float_of_int page /. float_of_int value

let run scale profile =
  let page = 4096 and value = scale.Scale.value_bytes in
  Scale.section "Figure 2 (left): read amplification in seeks vs data size";
  let multiples = [ 1.; 2.; 4.; 6.; 8.; 10.; 12.; 14.; 16. ] in
  Printf.printf "%-18s" "data (x RAM)";
  List.iter (fun m -> Printf.printf " %6.0f" m) multiples;
  print_newline ();
  Printf.printf "%-18s" "Bloom (ours)";
  List.iter (fun _ -> Printf.printf " %6.2f" bloom_seeks) multiples;
  print_newline ();
  List.iter
    (fun r ->
      Printf.printf "R=%-16.0f" r;
      List.iter
        (fun m -> Printf.printf " %6.2f" (model_seeks ~r ~multiple:m))
        multiples;
      print_newline ())
    [ 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. ];

  Scale.section "Figure 2 (right): read amplification in bandwidth vs data size";
  Printf.printf "%-18s" "data (x RAM)";
  List.iter (fun m -> Printf.printf " %6.0f" m) multiples;
  print_newline ();
  Printf.printf "%-18s" "Bloom (ours)";
  List.iter (fun _ -> Printf.printf " %6.2f" (bloom_bandwidth ~page ~value)) multiples;
  print_newline ();
  List.iter
    (fun r ->
      Printf.printf "R=%-16.0f" r;
      List.iter
        (fun m -> Printf.printf " %6.2f" (model_bandwidth ~page ~value ~r ~multiple:m))
        multiples;
      print_newline ())
    [ 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. ];

  (* validation: measured seeks per uncached read on a live bLSM at
     growing data:C0 ratios *)
  Scale.section "Figure 2 (validation): measured bLSM read amplification";
  Printf.printf "%-14s %10s %12s\n" "data (x C0)" "records" "seeks/read";
  List.iter
    (fun mult ->
      let s =
        { scale with Scale.records = scale.Scale.records * mult / 4 }
      in
      let tree =
        Scale.blsm
          ~config_tweak:(fun c ->
            {
              c with
              Blsm.Config.c0_bytes = Scale.data_bytes s / mult;
            })
          s profile
      in
      let e = Blsm.Tree.engine tree in
      let ks, _ = Scale.loaded_engine s e in
      let prng = Repro_util.Prng.of_int 5 in
      let n = 400 in
      let before = Simdisk.Disk.snapshot (Blsm.Tree.disk tree) in
      for _ = 1 to n do
        ignore
          (e.Kv.Kv_intf.get
             (Repro_util.Keygen.key_of_id
                (Repro_util.Prng.int prng ks.Ycsb.Runner.records)))
      done;
      let d =
        Simdisk.Disk.diff before (Simdisk.Disk.snapshot (Blsm.Tree.disk tree))
      in
      Printf.printf "%-14d %10d %12.2f\n" mult s.Scale.records
        (float_of_int d.Simdisk.Disk.seeks /. float_of_int n))
    [ 2; 4; 8 ]
