(** Ablations over the design choices DESIGN.md calls out.

    (a) merge scheduler: naive vs gear vs spring-and-gear — insert-latency
        tails and hard-stall counts under saturated uniform inserts (§4);
    (b) Bloom filters on/off — seeks for present and absent lookups (§3.1);
    (c) snowshoveling on/off — effective run length and write throughput
        (§4.2: x4 effective C0 claim);
    (d) early termination on/off — read seeks for frequently-updated keys
        (§3.1.1);
    (e) adversarial workload — reverse-sorted inserts after a forward-
        sorted phase: the §4.2.2 / §5.5 caveat that, without partitioning,
        distribution mismatch stalls even a well-paced tree. *)

let insert_run scale profile ~tweak =
  let tree = Scale.blsm ~config_tweak:tweak scale profile in
  let e = Blsm.Tree.engine tree in
  let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes:scale.Scale.value_bytes in
  let r = Ycsb.Runner.load e ks ~n:scale.Scale.records ~seed:scale.Scale.seed () in
  (tree, r)

let scheduler_ablation scale profile =
  Scale.section "Ablation (a): merge scheduler vs insert latency";
  Printf.printf "%-10s %10s %10s %12s %12s %12s %12s\n" "scheduler" "ops/s"
    "p50(us)" "p99(us)" "p99.9(us)" "max(ms)" "hard-stalls";
  List.iter
    (fun (name, sched, snow) ->
      let tree, r =
        insert_run scale profile ~tweak:(fun c ->
            { c with Blsm.Config.scheduler = sched; snowshovel = snow })
      in
      let h = r.Ycsb.Runner.latency in
      Printf.printf "%-10s %10.0f %10d %10d %12d %12.2f %12d\n" name
        r.Ycsb.Runner.ops_per_sec
        (Repro_util.Histogram.percentile h 50.0)
        (Repro_util.Histogram.percentile h 99.0)
        (Repro_util.Histogram.percentile h 99.9)
        (float_of_int (Repro_util.Histogram.max_value h) /. 1000.)
        (Blsm.Tree.stats tree).Blsm.Tree.hard_stalls)
    [
      ("naive", Blsm.Config.Naive, true);
      ("gear", Blsm.Config.Gear, false);
      ("spring", Blsm.Config.Spring, true);
    ]

let bloom_ablation scale profile =
  Scale.section "Ablation (b): Bloom filters vs read seeks";
  Printf.printf "%-10s %16s %16s %18s\n" "bloom" "seeks/read(hit)"
    "seeks/read(miss)" "checked-ins seeks";
  List.iter
    (fun (name, bits) ->
      let tree, _ =
        insert_run scale profile ~tweak:(fun c ->
            { c with Blsm.Config.bloom_bits_per_key = bits })
      in
      let e = Blsm.Tree.engine tree in
      e.Kv.Kv_intf.maintenance ();
      let prng = Repro_util.Prng.of_int 3 in
      let probe f n =
        let before = Simdisk.Disk.snapshot (Blsm.Tree.disk tree) in
        for i = 0 to n - 1 do
          f i
        done;
        let d =
          Simdisk.Disk.diff before (Simdisk.Disk.snapshot (Blsm.Tree.disk tree))
        in
        float_of_int d.Simdisk.Disk.seeks /. float_of_int n
      in
      let n = 400 in
      let hit =
        probe
          (fun _ ->
            ignore
              (e.Kv.Kv_intf.get
                 (Repro_util.Keygen.key_of_id
                    (Repro_util.Prng.int prng scale.Scale.records))))
          n
      in
      let miss =
        probe (fun i -> ignore (e.Kv.Kv_intf.get (Printf.sprintf "absent%08d" i))) n
      in
      let checked =
        probe
          (fun i ->
            ignore
              (e.Kv.Kv_intf.insert_if_absent
                 (Repro_util.Keygen.key_of_id (10_000_000 + i))
                 "v"))
          n
      in
      Printf.printf "%-10s %16.2f %16.2f %18.2f\n" name hit miss checked)
    [ ("on(10b)", 10); ("off", 0) ]

let snowshovel_ablation scale profile =
  Scale.section "Ablation (c): snowshoveling vs run length and throughput";
  Printf.printf "%-14s %10s %14s %16s\n" "snowshovel" "ops/s" "C0:C1 merges"
    "bytes-moved/merge";
  List.iter
    (fun (name, snow, sched) ->
      let tree, r =
        insert_run scale profile ~tweak:(fun c ->
            { c with Blsm.Config.snowshovel = snow; scheduler = sched })
      in
      let s = Blsm.Tree.stats tree in
      let merges = max 1 s.Blsm.Tree.merge1_completions in
      Printf.printf "%-14s %10.0f %14d %16d\n" name r.Ycsb.Runner.ops_per_sec
        s.Blsm.Tree.merge1_completions
        (s.Blsm.Tree.user_bytes_written / merges))
    [ ("on(spring)", true, Blsm.Config.Spring); ("off(gear)", false, Blsm.Config.Gear) ]

let early_termination_ablation scale profile =
  Scale.section "Ablation (d): early termination vs seeks for hot keys";
  Printf.printf "%-16s %14s\n" "early-term" "seeks/read(hot)";
  List.iter
    (fun (name, early) ->
      let tree, _ =
        insert_run scale profile ~tweak:(fun c ->
            { c with Blsm.Config.early_termination = early })
      in
      let e = Blsm.Tree.engine tree in
      (* update a hot set repeatedly so versions exist at every level *)
      let hot = 64 in
      for round = 0 to 40 do
        for i = 0 to hot - 1 do
          e.Kv.Kv_intf.put
            (Repro_util.Keygen.key_of_id i)
            (Printf.sprintf "round%d-%s" round (String.make 200 'h'))
        done;
        (* interleave filler so merges spread versions across levels *)
        for i = 0 to 127 do
          e.Kv.Kv_intf.put
            (Repro_util.Keygen.key_of_id (1000 + (round * 128) + i))
            (String.make scale.Scale.value_bytes 'f')
        done
      done;
      let prng = Repro_util.Prng.of_int 9 in
      let n = 400 in
      let before = Simdisk.Disk.snapshot (Blsm.Tree.disk tree) in
      for _ = 1 to n do
        ignore (e.Kv.Kv_intf.get (Repro_util.Keygen.key_of_id (Repro_util.Prng.int prng hot)))
      done;
      let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot (Blsm.Tree.disk tree)) in
      Printf.printf "%-16s %14.2f\n" name
        (float_of_int d.Simdisk.Disk.seeks /. float_of_int n))
    [ ("on", true); ("off", false) ]

let adversarial_ablation scale profile =
  Scale.section
    "Ablation (e): adversarial distribution shift, fixed by partitioning (§4.2.2)";
  Printf.printf "%-14s %-22s %12s %12s\n" "tree" "phase" "ops/s" "max-lat(ms)";
  let v = String.make scale.Scale.value_bytes 'a' in
  let half = scale.Scale.records / 2 in
  let run_phase ~disk label name f n =
    let lat = Repro_util.Histogram.create () in
    let t0 = Simdisk.Disk.now_us disk in
    for i = 0 to n - 1 do
      let a = Simdisk.Disk.now_us disk in
      f i;
      Repro_util.Histogram.add lat (int_of_float (Simdisk.Disk.now_us disk -. a))
    done;
    let dt = Simdisk.Disk.now_us disk -. t0 in
    Printf.printf "%-14s %-22s %12.0f %12.2f\n" name label
      (float_of_int n /. dt *. 1e6)
      (float_of_int (Repro_util.Histogram.max_value lat) /. 1000.)
  in
  (* monolithic tree: the shifted phase rewrites disjoint cold data *)
  let tree = Scale.blsm scale profile in
  let disk = Blsm.Tree.disk tree in
  run_phase ~disk "ascending inserts" "monolithic"
    (fun i -> Blsm.Tree.put tree (Repro_util.Keygen.ordered_key_of_id i) v)
    half;
  run_phase ~disk "shifted-range inserts" "monolithic"
    (fun i -> Blsm.Tree.put tree (Printf.sprintf "early%012d" (1_000_000_000 - i)) v)
    half;
  (* partitioned tree (the paper's future work, lib/core/partitioned.ml):
     the shifted range lands in its own partition with its own scheduler *)
  let c0 = int_of_float (Scale.blsm_c0_fraction *. float_of_int (Scale.data_bytes scale)) in
  let cache = int_of_float (Scale.blsm_cache_fraction *. float_of_int (Scale.data_bytes scale)) in
  let part =
    Blsm.Partitioned.create
      ~config:{ Blsm.Config.default with Blsm.Config.c0_bytes = c0 }
      ~c0_share:`Shared (* hot ranges get the whole write pool, PE-file style *)
      ~boundaries:[ "f" ]
      (Scale.store ~cache_bytes:cache profile)
  in
  let disk = Blsm.Partitioned.disk part in
  run_phase ~disk "ascending inserts" "partitioned"
    (fun i -> Blsm.Partitioned.put part (Repro_util.Keygen.ordered_key_of_id i) v)
    half;
  run_phase ~disk "shifted-range inserts" "partitioned"
    (fun i ->
      Blsm.Partitioned.put part (Printf.sprintf "early%012d" (1_000_000_000 - i)) v)
    half

let r_sweep_ablation scale profile =
  (* §2.3.1: the size-ratio optimization. For a 3-level tree the write-
     amplification optimum is R1 = R2 = sqrt(|data|/|C0|); fixed Rs on
     either side pay more, and the adaptive policy should track the
     best fixed choice. *)
  Scale.section "Ablation (f): size ratio R vs write amplification (§2.3.1)";
  Printf.printf "%-12s %12s %12s %14s
" "R" "ops/s" "write-amp" "merges(1/2)";
  let user_bytes = scale.Scale.records * scale.Scale.value_bytes in
  List.iter
    (fun (name, ratio) ->
      let tree, r =
        insert_run scale profile ~tweak:(fun c ->
            { c with Blsm.Config.size_ratio = ratio })
      in
      Blsm.Tree.flush tree;
      let d = Simdisk.Disk.snapshot (Blsm.Tree.disk tree) in
      let s = Blsm.Tree.stats tree in
      Printf.printf "%-12s %12.0f %12.2f %9d/%d
" name r.Ycsb.Runner.ops_per_sec
        (float_of_int (d.Simdisk.Disk.seq_write_bytes + d.Simdisk.Disk.random_write_bytes)
        /. float_of_int user_bytes)
        s.Blsm.Tree.merge1_completions s.Blsm.Tree.merge2_completions)
    [
      ("2", Blsm.Config.Fixed 2.0);
      ("3", Blsm.Config.Fixed 3.0);
      ("4", Blsm.Config.Fixed 4.0);
      ("6", Blsm.Config.Fixed 6.0);
      ("10", Blsm.Config.Fixed 10.0);
      ("adaptive", Blsm.Config.Adaptive);
    ]

let skew_ablation scale profile =
  (* §2.3.1-2.3.2: "B-Trees naturally leverage skewed writes" (hot leaves
     absorb updates in the buffer pool) while the base LSM pays full
     merge freight per write; range partitioning lets the LSM leverage
     skew too. Unscrambled Zipfian over ordered keys = a hot key *range*. *)
  Scale.section
    "Ablation (g): write skew and write amplification (§2.3.1-2.3.2)";
  Printf.printf "%-18s %16s %16s
" "engine" "uniform w-amp" "zipfian w-amp";
  let measure (e : Kv.Kv_intf.engine) dist =
    let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes:scale.Scale.value_bytes in
    ignore
      (Ycsb.Runner.run e ks ~label:"preload"
         ~mix:[ (Ycsb.Runner.Insert, 1.0) ]
         ~ops:scale.Scale.records
         ~dist:(Ycsb.Generator.uniform ~seed:1) ~ordered_keys:true ());
    e.Kv.Kv_intf.maintenance ();
    let before = Simdisk.Disk.snapshot e.Kv.Kv_intf.disk in
    let r =
      Ycsb.Runner.run e ks ~label:"updates"
        ~mix:[ (Ycsb.Runner.Blind_update, 1.0) ]
        ~ops:scale.Scale.ops ~dist ~ordered_keys:true ()
    in
    e.Kv.Kv_intf.maintenance ();
    let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot e.Kv.Kv_intf.disk) in
    float_of_int (d.Simdisk.Disk.seq_write_bytes + d.Simdisk.Disk.random_write_bytes)
    /. float_of_int (r.Ycsb.Runner.ops * scale.Scale.value_bytes)
  in
  let engines () =
    let c0 = int_of_float (Scale.blsm_c0_fraction *. float_of_int (Scale.data_bytes scale)) in
    let cache = int_of_float (Scale.blsm_cache_fraction *. float_of_int (Scale.data_bytes scale)) in
    [
      ("bLSM (mono)", fun () -> Scale.blsm_engine scale profile);
      ( "bLSM (partitioned)",
        fun () ->
          Blsm.Partitioned.engine
            (Blsm.Partitioned.create
               ~config:{ Blsm.Config.default with Blsm.Config.c0_bytes = c0 }
               (* Static division: uniform load keeps every partition hot,
                  so the write pool must not be overcommitted here *)
               ~c0_share:`Static
               ~boundaries:
                 (List.init 7 (fun i ->
                      Repro_util.Keygen.ordered_key_of_id
                        ((i + 1) * scale.Scale.records / 8)))
               (Scale.store ~cache_bytes:cache profile)) );
      ("B-Tree", fun () -> Scale.btree_engine scale profile);
    ]
  in
  List.iter
    (fun (name, mk) ->
      let uniform = measure (mk ()) (Ycsb.Generator.uniform ~seed:21) in
      let zipf =
        measure (mk ())
          (Ycsb.Generator.zipfian ~scrambled:false ~seed:22 ~n:scale.Scale.records ())
      in
      Printf.printf "%-18s %16.2f %16.2f
" name uniform zipf)
    (engines ())

let run scale profile =
  scheduler_ablation scale profile;
  bloom_ablation scale profile;
  snowshovel_ablation scale profile;
  early_termination_ablation scale profile;
  adversarial_ablation scale profile;
  r_sweep_ablation scale profile;
  skew_ablation scale profile
