(** Table 2 / Appendix A — RAM required to cache B-Tree index nodes for a
    read amplification of one, per device class and access frequency.

    Reproduces the paper's arithmetic (100-byte keys, 1000-byte values,
    4096-byte pages, ~4 records per leaf, key+pointer = 108 bytes per
    cached index entry):

    - when data is hot enough that the device is seek-bound, only
      [reads_per_sec * period] records can live on one drive, each needing
      its own cached leaf pointer;
    - when the device is capacity-bound (cold data), leaves pack 4 records
      per page, so the cache is a quarter the size;
    - "-" marks frequencies where the hot-data requirement meets or
      exceeds the full-disk one (the device has gone capacity-bound).

    Also prints the Bloom-filter overhead note: 1.25 bytes/key over all
    keys = 4 * 1.25 / 100 = 5% of index-cache RAM. *)

let key_bytes = 100.
let value_bytes = 1000.
let pointer_bytes = 8.
let records_per_leaf = 4.

let frequencies =
  [
    ("Minute", 60.);
    ("Five minute", 300.);
    ("Half hour", 1800.);
    ("Hour", 3600.);
    ("Day", 86400.);
    ("Week", 604800.);
    ("Month", 2592000.);
  ]

let gib b = b /. (1024. *. 1024. *. 1024.)

let full_disk_cache_bytes (d : Simdisk.Profile.device_class) =
  let records = d.Simdisk.Profile.capacity_gb *. 1e9 /. (key_bytes +. value_bytes) in
  records /. records_per_leaf *. (key_bytes +. pointer_bytes)

let hot_cache_bytes (d : Simdisk.Profile.device_class) period =
  let records = d.Simdisk.Profile.reads_per_sec *. period in
  records *. (key_bytes +. pointer_bytes)

let run () =
  Scale.section
    "Table 2: GB of B-Tree index cache per drive (read amplification = 1)";
  let devices = Simdisk.Profile.table2_devices in
  Printf.printf "%-14s" "";
  List.iter
    (fun (d : Simdisk.Profile.device_class) ->
      Printf.printf " %10s" d.Simdisk.Profile.class_name)
    devices;
  print_newline ();
  Printf.printf "%-14s" "Capacity (GB)";
  List.iter
    (fun (d : Simdisk.Profile.device_class) ->
      Printf.printf " %10.0f" d.Simdisk.Profile.capacity_gb)
    devices;
  print_newline ();
  Printf.printf "%-14s" "Reads/second";
  List.iter
    (fun (d : Simdisk.Profile.device_class) ->
      Printf.printf " %10.0f" d.Simdisk.Profile.reads_per_sec)
    devices;
  print_newline ();
  List.iter
    (fun (name, period) ->
      Printf.printf "%-14s" name;
      List.iter
        (fun d ->
          let hot = hot_cache_bytes d period in
          let full = full_disk_cache_bytes d in
          if hot >= full then Printf.printf " %10s" "-"
          else Printf.printf " %10.3f" (gib hot))
        devices;
      print_newline ())
    frequencies;
  Printf.printf "%-14s" "Full disk";
  List.iter
    (fun d -> Printf.printf " %10.2f" (gib (full_disk_cache_bytes d)))
    devices;
  print_newline ();
  Printf.printf
    "\nBloom filters: 1.25 B/key over all keys; %g records/leaf -> %.0f%% \
     overhead atop leaf-pointer cache (Appendix A).\n"
    records_per_leaf
    (records_per_leaf *. 1.25 /. key_bytes *. 100.)
