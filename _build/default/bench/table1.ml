(** Table 1 — Summary of results: seeks per operation and insert-latency
    boundedness for bLSM vs B-Tree vs LevelDB.

    Each cell is measured: a settled, loaded store; a batch of operations
    of that class; seeks (and random writes, for update-in-place
    writeback) divided by the batch size. The paper's table is analytic;
    the measured values should land on it: bLSM reads 1, RMW 1, blind
    writes 0; B-Tree reads 1, updates 2; LevelDB reads O(levels). *)

let run scale profile =
  Scale.section
    (Printf.sprintf "Table 1: seeks per operation (%s, %d records x %dB)"
       profile.Simdisk.Profile.name scale.Scale.records scale.Scale.value_bytes);
  let engines =
    [
      ("bLSM", Scale.blsm_engine scale profile);
      ("B-Tree", Scale.btree_engine scale profile);
      ("LevelDB", Scale.leveldb_engine scale profile);
    ]
  in
  let loaded =
    List.map
      (fun (name, e) ->
        let ks, _ = Scale.loaded_engine scale e in
        (name, e, ks))
      engines
  in
  let prng = Repro_util.Prng.of_int 7 in
  let batch = max 200 (scale.Scale.ops / 10) in
  (* measure seeks + random writes per op; flush dirties afterwards so
     update-in-place writebacks are attributed to their op class *)
  let measure (e : Kv.Kv_intf.engine) ks f =
    e.Kv.Kv_intf.maintenance ();
    let before = Simdisk.Disk.snapshot e.Kv.Kv_intf.disk in
    for i = 0 to batch - 1 do
      let id = Repro_util.Prng.int prng ks.Ycsb.Runner.records in
      f i (Repro_util.Keygen.key_of_id id)
    done;
    e.Kv.Kv_intf.maintenance ();
    let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot e.Kv.Kv_intf.disk) in
    float_of_int (d.Simdisk.Disk.seeks + d.Simdisk.Disk.random_writes)
    /. float_of_int batch
  in
  let value () = String.make scale.Scale.value_bytes 'w' in
  let ops (e : Kv.Kv_intf.engine) ks =
    [
      ("Point lookup", measure e ks (fun _ k -> ignore (e.Kv.Kv_intf.get k)));
      ( "Read-modify-write",
        measure e ks (fun _ k ->
            e.Kv.Kv_intf.read_modify_write k (function
              | Some v -> v
              | None -> value ())) );
      ( "Apply delta",
        measure e ks (fun _ k -> e.Kv.Kv_intf.apply_delta k "+1") );
      ( "Insert or overwrite",
        measure e ks (fun _ k -> e.Kv.Kv_intf.put k (value ())) );
      ( "Short scan (<=1 page)",
        measure e ks (fun _ k -> ignore (e.Kv.Kv_intf.scan k 3)) );
      ( "Long scan (100 rows)",
        measure e ks (fun _ k -> ignore (e.Kv.Kv_intf.scan k 100)) );
    ]
  in
  let results = List.map (fun (name, e, ks) -> (name, ops e ks)) loaded in
  let rows = List.map fst (snd (List.hd results)) in
  Printf.printf "%-24s" "Operation (I/Os/op)";
  List.iter (fun (name, _) -> Printf.printf " %12s" name) results;
  print_newline ();
  List.iter
    (fun row ->
      Printf.printf "%-24s" row;
      List.iter
        (fun (_, cells) -> Printf.printf " %12.2f" (List.assoc row cells))
        results;
      print_newline ())
    rows;
  (* insert-latency boundedness: saturated uniform inserts, report tails *)
  Scale.section "Table 1 (cont.): uniform random insert latency";
  Printf.printf "%-12s %12s %12s %12s %12s\n" "engine" "p50(us)" "p99(us)"
    "p99.9(us)" "max(us)";
  List.iter
    (fun (name, mk) ->
      let e : Kv.Kv_intf.engine = mk () in
      let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes:scale.Scale.value_bytes in
      let r = Ycsb.Runner.load e ks ~n:scale.Scale.records () in
      let h = r.Ycsb.Runner.latency in
      Printf.printf "%-12s %12d %12d %12d %12d\n" name
        (Repro_util.Histogram.percentile h 50.0)
        (Repro_util.Histogram.percentile h 99.0)
        (Repro_util.Histogram.percentile h 99.9)
        (Repro_util.Histogram.max_value h))
    [
      ("bLSM", fun () -> Scale.blsm_engine scale profile);
      ("B-Tree", fun () -> Scale.btree_engine scale profile);
      ("LevelDB", fun () -> Scale.leveldb_engine scale profile);
    ]
