(** Figure 9 — workload shift: bLSM saturated with 100% uniform blind
    writes, switching at t=0 to an 80% read / 20% blind-write Zipfian mix
    (SSD). Expected shape (§5.5): throughput ramps up while internal index
    and hot data pages warm the cache, then levels off with occasional
    small merge hiccups; latency stays in the low-millisecond range. *)

let run scale profile =
  Scale.section
    (Printf.sprintf
       "Figure 9: shift from 100%% uniform writes to 80/20 Zipfian (%s)"
       profile.Simdisk.Profile.name);
  let e = Scale.blsm_engine scale profile in
  let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes:scale.Scale.value_bytes in
  (* phase 0: load, then saturate with uniform writes for a while *)
  ignore (Ycsb.Runner.load e ks ~n:scale.Scale.records ~seed:scale.Scale.seed ());
  ignore
    (Ycsb.Runner.run e ks ~label:"saturate"
       ~mix:[ (Ycsb.Runner.Blind_update, 1.0) ]
       ~ops:(scale.Scale.ops / 2)
       ~dist:(Ycsb.Generator.uniform ~seed:3) ());
  (* t = 0: switch to the serving mix *)
  let r =
    Ycsb.Runner.run e ks ~label:"80/20 zipfian"
      ~mix:[ (Ycsb.Runner.Read, 0.8); (Ycsb.Runner.Blind_update, 0.2) ]
      ~ops:(scale.Scale.ops * 8)
      ~dist:(Ycsb.Generator.zipfian ~seed:4 ~n:ks.Ycsb.Runner.records ())
      ~timeseries_bucket_us:100_000 ()
  in
  Printf.printf "%8s %12s %12s %12s %14s\n" "t(s)" "ops/sec" "mean-lat(ms)"
    "p99-lat(ms)" "READ/UPDATE mix";
  List.iter
    (fun (row : Repro_util.Timeseries.row) ->
      Printf.printf "%8.2f %12.0f %12.2f %12.2f\n" row.Repro_util.Timeseries.t_sec
        row.Repro_util.Timeseries.ops_per_sec
        row.Repro_util.Timeseries.mean_latency_ms
        row.Repro_util.Timeseries.p99_latency_ms)
    (Repro_util.Timeseries.rows r.Ycsb.Runner.timeseries);
  Printf.printf
    "\nSteady state: %.0f ops/s; read lat mean %.2fms; update lat mean %.2fms\n"
    r.Ycsb.Runner.ops_per_sec
    (Repro_util.Histogram.mean r.Ycsb.Runner.read_latency /. 1000.)
    (Repro_util.Histogram.mean r.Ycsb.Runner.write_latency /. 1000.)
