bench/micro.ml: Analyze Bechamel Benchmark Bloom Blsm Buffer Hashtbl Instance Kv List Measure Memtable Pagestore Printf Repro_util Scale Simdisk Sstable Staged String Test Time Toolkit Ycsb
