bench/table1.ml: Kv List Printf Repro_util Scale Simdisk String Ycsb
