bench/ycsb_suite.ml: Kv List Printf Scale Simdisk String Ycsb
