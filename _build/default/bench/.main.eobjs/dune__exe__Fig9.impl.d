bench/fig9.ml: List Printf Repro_util Scale Simdisk Ycsb
