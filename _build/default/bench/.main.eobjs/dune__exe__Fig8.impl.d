bench/fig8.ml: Kv List Printf Scale Simdisk Ycsb
