bench/metrics.ml: Blsm Btree_baseline Kv Leveldb_sim List Pagestore Printf Repro_util Scale Simdisk Ycsb
