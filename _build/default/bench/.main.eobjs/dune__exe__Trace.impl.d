bench/trace.ml: Blsm Float Printf Repro_util Scale Simdisk
