bench/table2.ml: List Printf Scale Simdisk
