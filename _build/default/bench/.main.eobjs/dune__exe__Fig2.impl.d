bench/fig2.ml: Blsm Float Kv List Printf Repro_util Scale Simdisk Ycsb
