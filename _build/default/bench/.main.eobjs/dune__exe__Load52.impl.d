bench/load52.ml: Blsm Printf Repro_util Scale Simdisk Ycsb
