bench/ablation.ml: Blsm Kv List Printf Repro_util Scale Simdisk String Ycsb
