bench/fig7.ml: List Printf Repro_util Scale Simdisk Ycsb
