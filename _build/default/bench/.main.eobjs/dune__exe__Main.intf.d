bench/main.mli:
