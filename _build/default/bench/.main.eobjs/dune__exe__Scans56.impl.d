bench/scans56.ml: Kv List Printf Repro_util Scale Simdisk Ycsb
