bench/scale.ml: Blsm Btree_baseline Fun Kv Leveldb_sim Option Pagestore Printf String Ycsb
