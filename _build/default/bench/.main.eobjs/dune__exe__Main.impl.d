bench/main.ml: Ablation Array Fig2 Fig7 Fig8 Fig9 List Load52 Metrics Micro Option Printf Scale Scans56 Simdisk Sys Table1 Table2 Trace Unix Ycsb_suite
