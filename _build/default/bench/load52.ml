(** §5.2 — raw insert performance: the strongest fast-insert semantics
    each system can sustain.

    - InnoDB requires *pre-sorted* input for reasonable throughput;
    - LevelDB sustains random inserts but only as *blind* writes, with
      long pauses as load commences;
    - bLSM sustains random inserts while checking each tuple for
      pre-existence ("insert if not exists") — the strongest semantics —
      with steady throughput.

    We run all five combinations and report throughput, tail latency, and
    the fraction of checked inserts that needed zero seeks. *)

let run scale profile =
  Scale.section
    (Printf.sprintf "Section 5.2: bulk load, strongest semantics (%s)"
       profile.Simdisk.Profile.name);
  Printf.printf "%-28s %10s %10s %12s %12s\n" "system (load mode)" "ops/s"
    "MB/s" "p99(ms)" "max(ms)";
  let report (r : Ycsb.Runner.result) =
    Printf.printf "%-28s %10.0f %10.1f %12.2f %12.2f\n" r.Ycsb.Runner.label
      r.Ycsb.Runner.ops_per_sec
      (r.Ycsb.Runner.ops_per_sec *. float_of_int scale.Scale.value_bytes /. 1e6)
      (float_of_int (Repro_util.Histogram.percentile r.Ycsb.Runner.latency 99.0)
      /. 1000.)
      (float_of_int (Repro_util.Histogram.max_value r.Ycsb.Runner.latency) /. 1000.)
  in
  let n = scale.Scale.records in
  (* bLSM: unordered + checked (its §5.2 configuration) *)
  let blsm_tree = Scale.blsm scale profile in
  let blsm = Blsm.Tree.engine blsm_tree in
  let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes:scale.Scale.value_bytes in
  report (Ycsb.Runner.load blsm ks ~n ~checked:true ());
  let s = Blsm.Tree.stats blsm_tree in
  Printf.printf
    "    bLSM checked inserts: %d/%d resolved with zero seeks (Bloom filters)\n"
    s.Blsm.Tree.checked_insert_seekfree s.Blsm.Tree.checked_inserts;
  (* bLSM: unordered blind, for comparison *)
  let blsm2 = Scale.blsm_engine scale profile in
  let ks2 = Ycsb.Runner.keyspace ~records:0 ~value_bytes:scale.Scale.value_bytes in
  report (Ycsb.Runner.load blsm2 ks2 ~n ());
  (* LevelDB: unordered blind (its best mode) and checked (ruinous) *)
  let ldb = Scale.leveldb_engine scale profile in
  let ks3 = Ycsb.Runner.keyspace ~records:0 ~value_bytes:scale.Scale.value_bytes in
  report (Ycsb.Runner.load ldb ks3 ~n ());
  let ldb2 = Scale.leveldb_engine scale profile in
  let ks4 = Ycsb.Runner.keyspace ~records:0 ~value_bytes:scale.Scale.value_bytes in
  report
    (Ycsb.Runner.load ldb2 ks4 ~n:(max 1 (n / 4)) ~checked:true ());
  Printf.printf "    (LevelDB checked load runs on n/4 records: it is seek-bound)\n";
  (* InnoDB: pre-sorted (its required mode) and unordered *)
  let bt = Scale.btree_engine scale profile in
  let ks5 = Ycsb.Runner.keyspace ~records:0 ~value_bytes:scale.Scale.value_bytes in
  report (Ycsb.Runner.load bt ks5 ~n ~ordered:true ());
  let bt2 = Scale.btree_engine scale profile in
  let ks6 = Ycsb.Runner.keyspace ~records:0 ~value_bytes:scale.Scale.value_bytes in
  report (Ycsb.Runner.load bt2 ks6 ~n:(max 1 (n / 4)) ());
  Printf.printf "    (InnoDB unordered load runs on n/4 records: it is seek-bound)\n"
