(** Figure 8 — throughput vs write ratio (uniform random access), hard
    disks (left) and SSD (right); read-modify-write and blind-update
    variants for the LSMs, read-modify-write for InnoDB.

    Expected shape (§5.3-5.4): at 0% writes all engines sit near the
    device's random-read throughput (bLSM/B-Tree ~1 seek, LevelDB lower —
    multi-seek reads); as the blind-write fraction grows the LSM curves
    climb steeply (writes are seek-free) while InnoDB falls; RMW curves
    sit between. SSDs penalize InnoDB's random writes hardest. *)

let write_ratios = [ 0; 20; 40; 60; 80; 100 ]

let run scale profile =
  Scale.section
    (Printf.sprintf "Figure 8: throughput vs write ratio (%s, uniform)"
       profile.Simdisk.Profile.name);
  let variants =
    [
      ("InnoDB (RMW)", (fun () -> Scale.btree_engine scale profile), `Rmw);
      ("LevelDB (RMW)", (fun () -> Scale.leveldb_engine scale profile), `Rmw);
      ("bLSM (RMW)", (fun () -> Scale.blsm_engine scale profile), `Rmw);
      ("LevelDB (blind)", (fun () -> Scale.leveldb_engine scale profile), `Blind);
      ("bLSM (blind)", (fun () -> Scale.blsm_engine scale profile), `Blind);
    ]
  in
  Printf.printf "%-18s" "write%";
  List.iter (fun w -> Printf.printf " %10d%%" w) write_ratios;
  Printf.printf "   (ops/sec)\n";
  List.iter
    (fun (name, mk, kind) ->
      let e : Kv.Kv_intf.engine = mk () in
      let ks, _ = Scale.loaded_engine scale e in
      Printf.printf "%-18s" name;
      List.iter
        (fun w ->
          let wf = float_of_int w /. 100.0 in
          let write_op =
            match kind with
            | `Rmw -> Ycsb.Runner.Read_modify_write
            | `Blind -> Ycsb.Runner.Blind_update
          in
          let mix =
            if w = 0 then [ (Ycsb.Runner.Read, 1.0) ]
            else if w = 100 then [ (write_op, 1.0) ]
            else [ (Ycsb.Runner.Read, 1.0 -. wf); (write_op, wf) ]
          in
          let r =
            Ycsb.Runner.run e ks ~label:name ~mix ~ops:scale.Scale.ops
              ~dist:(Ycsb.Generator.uniform ~seed:(17 + w))
              ~seed:(100 + w) ()
          in
          e.Kv.Kv_intf.maintenance ();
          Printf.printf " %11.0f" r.Ycsb.Runner.ops_per_sec)
        write_ratios;
      print_newline ())
    variants
