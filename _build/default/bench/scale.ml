(** Experiment scale and engine construction.

    The paper's setup (§5.1): 50 GB of 1000-byte values; 10 GB of cache for
    InnoDB and LevelDB; bLSM splits its 10 GB as 8 GB C0 + 2 GB buffer
    cache; InnoDB uses 16 KB pages, the LSMs 4 KB. We preserve those
    *ratios* at a size that runs in seconds: data:C0 = 6.25:1,
    cache = 20% of data. All knobs are CLI-tunable. *)

type t = {
  records : int;
  value_bytes : int;
  ops : int;  (** per measured phase *)
  seed : int;
}

let default = { records = 40_000; value_bytes = 1000; ops = 8_000; seed = 42 }

let data_bytes s = s.records * (s.value_bytes + 24)

(* cache sizing, as a fraction of the data set *)
let cache_fraction = 0.20
let blsm_c0_fraction = 0.16
let blsm_cache_fraction = 0.04

let pages bytes ~page_size = max 64 (bytes / page_size)

let store ?(page_size = 4096) ?durability ~cache_bytes profile =
  let cfg =
    {
      Pagestore.Store.cfg_page_size = page_size;
      cfg_buffer_pages = pages cache_bytes ~page_size;
      cfg_durability = Option.value durability ~default:Pagestore.Wal.Full;
    }
  in
  Pagestore.Store.create ~config:cfg profile

(** bLSM with the paper's default configuration (spring-and-gear,
    snowshovel, Bloom filters, early termination). *)
let blsm ?(config_tweak = Fun.id) s profile =
  let cache = int_of_float (blsm_cache_fraction *. float_of_int (data_bytes s)) in
  let c0 = int_of_float (blsm_c0_fraction *. float_of_int (data_bytes s)) in
  let config =
    config_tweak
      {
        Blsm.Config.default with
        Blsm.Config.c0_bytes = c0;
        seed = s.seed;
        extent_pages = 1024;
      }
  in
  let st = store ~cache_bytes:cache profile in
  Blsm.Tree.create ~config st

let blsm_engine ?config_tweak ?name s profile =
  Blsm.Tree.engine ?name (blsm ?config_tweak s profile)

(** InnoDB stand-in: 16 KB pages, 20% cache. *)
let btree s profile =
  let cache = int_of_float (cache_fraction *. float_of_int (data_bytes s)) in
  let st = store ~page_size:(16 * 1024) ~cache_bytes:cache profile in
  Btree_baseline.Btree.create st

let btree_engine ?name s profile = Btree_baseline.Btree.engine ?name (btree s profile)

(** LevelDB: small memtable (1/8 of bLSM's C0), level ratio 10, no Bloom
    filters, 20% cache. *)
let leveldb s profile =
  let cache = int_of_float (cache_fraction *. float_of_int (data_bytes s)) in
  let c0 = int_of_float (blsm_c0_fraction *. float_of_int (data_bytes s)) in
  let config =
    {
      Leveldb_sim.Leveldb.default_config with
      Leveldb_sim.Leveldb.memtable_bytes = max (64 * 1024) (c0 / 8);
      file_bytes = max (64 * 1024) (c0 / 4);
      base_level_bytes = max (256 * 1024) (c0 / 2);
      extent_pages = 256;
      seed = s.seed;
    }
  in
  let st = store ~cache_bytes:cache profile in
  Leveldb_sim.Leveldb.create ~config st

let leveldb_engine ?name s profile =
  Leveldb_sim.Leveldb.engine ?name (leveldb s profile)

(** Load [s.records] fresh records and settle the store. *)
let loaded_engine s (engine : Kv.Kv_intf.engine) =
  let ks = Ycsb.Runner.keyspace ~records:0 ~value_bytes:s.value_bytes in
  let r = Ycsb.Runner.load engine ks ~n:s.records ~seed:s.seed () in
  engine.Kv.Kv_intf.maintenance ();
  (ks, r)

let hline width = String.make width '-'

let section title =
  Printf.printf "\n%s\n%s\n" title (hline (String.length title))
