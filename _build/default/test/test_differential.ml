(* Differential testing: the same operation sequence driven through every
   engine (bLSM spring/gear/naive, partitioned bLSM, B-Tree, LevelDB) must
   produce identical results — each engine is an oracle for the others.
   This is the cross-implementation analogue of the per-engine model
   tests, and exactly the property the paper's benchmark comparison
   relies on ("the systems load the same data"). *)

module SMap = Map.Make (String)

let mk_store ?(page_size = 4096) () =
  Pagestore.Store.create
    ~config:
      { Pagestore.Store.cfg_page_size = page_size;
        cfg_buffer_pages = 128;
        cfg_durability = Pagestore.Wal.Full }
    Simdisk.Profile.ssd_raid0

let engines () : Kv.Kv_intf.engine list =
  let blsm_cfg scheduler snowshovel =
    {
      Blsm.Config.default with
      Blsm.Config.c0_bytes = 32 * 1024;
      size_ratio = Blsm.Config.Fixed 3.0;
      extent_pages = 8;
      scheduler;
      snowshovel;
    }
  in
  [
    Blsm.Tree.engine ~name:"blsm-spring"
      (Blsm.Tree.create ~config:(blsm_cfg Blsm.Config.Spring true) (mk_store ()));
    Blsm.Tree.engine ~name:"blsm-gear"
      (Blsm.Tree.create ~config:(blsm_cfg Blsm.Config.Gear false) (mk_store ()));
    Blsm.Partitioned.engine
      (Blsm.Partitioned.create
         ~config:(blsm_cfg Blsm.Config.Spring true)
         ~boundaries:[ "key100"; "key200" ]
         (mk_store ()));
    Btree_baseline.Btree.engine (Btree_baseline.Btree.create (mk_store ()));
    Leveldb_sim.Leveldb.engine
      (Leveldb_sim.Leveldb.create
         ~config:
           {
             Leveldb_sim.Leveldb.default_config with
             Leveldb_sim.Leveldb.memtable_bytes = 16 * 1024;
             file_bytes = 16 * 1024;
             base_level_bytes = 64 * 1024;
             level_ratio = 4.0;
             extent_pages = 8;
           }
         (mk_store ()));
  ]

type op =
  | Put of string * string
  | Delete of string
  | Delta of string * string
  | Rmw of string
  | Ifabsent of string * string
  | Get of string
  | Scan of string * int

let gen_ops seed n =
  let prng = Repro_util.Prng.of_int seed in
  List.init n (fun i ->
      let key = Printf.sprintf "key%03d" (Repro_util.Prng.int prng 300) in
      match Repro_util.Prng.int prng 12 with
      | 0 | 1 | 2 | 3 -> Put (key, Printf.sprintf "v%d-%s" i (String.make 40 'd'))
      | 4 -> Delete key
      | 5 -> Delta (key, Printf.sprintf "+%d" i)
      | 6 -> Rmw key
      | 7 -> Ifabsent (key, Printf.sprintf "ia%d" i)
      | 8 | 9 -> Get key
      | _ -> Scan (key, 1 + Repro_util.Prng.int prng 8))

(* Apply one op; return an observation string for cross-engine diffing. *)
let apply (e : Kv.Kv_intf.engine) op =
  match op with
  | Put (k, v) ->
      e.Kv.Kv_intf.put k v;
      ""
  | Delete k ->
      e.Kv.Kv_intf.delete k;
      ""
  | Delta (k, d) ->
      e.Kv.Kv_intf.apply_delta k d;
      ""
  | Rmw k ->
      e.Kv.Kv_intf.read_modify_write k (fun v ->
          Option.value v ~default:"" ^ "!");
      ""
  | Ifabsent (k, v) -> string_of_bool (e.Kv.Kv_intf.insert_if_absent k v)
  | Get k -> Option.value (e.Kv.Kv_intf.get k) ~default:"<none>"
  | Scan (k, n) ->
      e.Kv.Kv_intf.scan k n
      |> List.map (fun (k, v) -> k ^ "=" ^ v)
      |> String.concat ";"

let run_differential seed n =
  let ops = gen_ops seed n in
  let engines = engines () in
  let observations =
    List.map (fun e -> (e.Kv.Kv_intf.name, List.map (apply e) ops)) engines
  in
  let reference_name, reference = List.hd observations in
  List.iter
    (fun (name, obs) ->
      List.iteri
        (fun i (a, b) ->
          if a <> b then
            Alcotest.failf "op %d: %s=%S but %s=%S" i reference_name a name b)
        (List.combine reference obs))
    (List.tl observations);
  (* final full-scan agreement, after maintenance *)
  let finals =
    List.map
      (fun (e : Kv.Kv_intf.engine) ->
        e.Kv.Kv_intf.maintenance ();
        (e.Kv.Kv_intf.name, e.Kv.Kv_intf.scan "" 10_000))
      engines
  in
  let _, ref_scan = List.hd finals in
  List.iter
    (fun (name, scan) ->
      if scan <> ref_scan then
        Alcotest.failf "final scans disagree: %s vs %s (%d vs %d rows)"
          reference_name name (List.length ref_scan) (List.length scan))
    (List.tl finals)

let test_seed s () = run_differential s 1500

let prop_differential =
  QCheck.Test.make ~name:"engines agree on random workloads" ~count:8
    QCheck.small_int
    (fun seed ->
      run_differential (seed + 1000) 600;
      true)

let () =
  Alcotest.run "differential"
    [
      ( "engines",
        [
          Alcotest.test_case "seed 1" `Quick (test_seed 1);
          Alcotest.test_case "seed 2" `Quick (test_seed 2);
          Alcotest.test_case "seed 3" `Quick (test_seed 3);
          QCheck_alcotest.to_alcotest prop_differential;
        ] );
    ]
