(* Bloom filter tests: the no-false-negative guarantee (property), the <1%
   false-positive target at 10 bits/item (§3.1), sizing, serialization. *)

let check = Alcotest.check

let test_empty_contains_nothing () =
  let b = Bloom.create ~expected_items:100 () in
  for i = 0 to 99 do
    if Bloom.mem b (string_of_int i) then Alcotest.fail "empty filter claims membership"
  done

let test_added_keys_found () =
  let b = Bloom.create ~expected_items:1000 () in
  for i = 0 to 999 do
    Bloom.add b (Printf.sprintf "key%06d" i)
  done;
  for i = 0 to 999 do
    if not (Bloom.mem b (Printf.sprintf "key%06d" i)) then
      Alcotest.failf "false negative for key%06d" i
  done

let test_fp_rate_below_target () =
  let n = 20_000 in
  let b = Bloom.create ~expected_items:n () in
  for i = 0 to n - 1 do
    Bloom.add b (Printf.sprintf "present%08d" i)
  done;
  let fps = ref 0 in
  let probes = 50_000 in
  for i = 0 to probes - 1 do
    if Bloom.mem b (Printf.sprintf "absent%08d" i) then incr fps
  done;
  let rate = float_of_int !fps /. float_of_int probes in
  (* paper target: 1% at 10 bits/item; allow 1.5% slack for hash variance *)
  if rate > 0.015 then Alcotest.failf "false positive rate %.4f > 0.015" rate;
  if Bloom.expected_fp_rate b > 0.012 then
    Alcotest.failf "model fp rate %.4f > 0.012" (Bloom.expected_fp_rate b)

let test_sizing () =
  let b = Bloom.create ~expected_items:1000 ~bits_per_item:10 () in
  (* 10 bits/item = 1.25 bytes/item, the paper's memory overhead figure *)
  check Alcotest.int "bytes" 1250 (Bloom.size_bytes b)

let test_serialization_roundtrip () =
  let b = Bloom.create ~expected_items:500 () in
  for i = 0 to 499 do
    Bloom.add b (string_of_int i)
  done;
  let b' = Bloom.of_string (Bloom.to_string b) in
  check Alcotest.int "inserted preserved" 500 (Bloom.inserted b');
  for i = 0 to 499 do
    if not (Bloom.mem b' (string_of_int i)) then Alcotest.fail "lost key"
  done

let prop_no_false_negatives =
  QCheck.Test.make ~name:"no false negatives" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) string_small)
    (fun keys ->
      let b = Bloom.create ~expected_items:(List.length keys) () in
      List.iter (Bloom.add b) keys;
      List.for_all (Bloom.mem b) keys)

let prop_monotone_under_more_adds =
  (* adding more keys never removes membership: bits only go 0 -> 1 *)
  QCheck.Test.make ~name:"monotone membership" ~count:100
    QCheck.(pair (list_of_size Gen.(1 -- 50) string_small) (list_of_size Gen.(1 -- 50) string_small))
    (fun (first, second) ->
      let b = Bloom.create ~expected_items:100 () in
      List.iter (Bloom.add b) first;
      let ok_before = List.for_all (Bloom.mem b) first in
      List.iter (Bloom.add b) second;
      ok_before && List.for_all (Bloom.mem b) first)

let () =
  Alcotest.run "bloom"
    [
      ( "bloom",
        [
          Alcotest.test_case "empty" `Quick test_empty_contains_nothing;
          Alcotest.test_case "membership" `Quick test_added_keys_found;
          Alcotest.test_case "fp rate" `Quick test_fp_rate_below_target;
          Alcotest.test_case "sizing" `Quick test_sizing;
          Alcotest.test_case "serialization" `Quick test_serialization_roundtrip;
          QCheck_alcotest.to_alcotest prop_no_false_negatives;
          QCheck_alcotest.to_alcotest prop_monotone_under_more_adds;
        ] );
    ]
