(* §4.1 estimator properties: "an important, but subtle property of
   inprogress is that any merge activity increases it, and that, within a
   single merge, the cost (in bytes transferred) of increasing inprogress
   by a fixed amount will never vary by more than a small constant
   factor. We say that estimators with this property are smooth."

   These tests drive merge state machines with fixed-size quota steps and
   assert: monotone non-decreasing progress, strictly increasing while
   work remains, bounded per-step jumps, and [0,1] range for both
   inprogress and outprogress — including the paper's stuck-estimator
   trap: inputs with long non-overlapping runs or runs of deletions. *)

let mk_store () =
  Pagestore.Store.create
    ~config:
      { Pagestore.Store.cfg_page_size = 4096;
        cfg_buffer_pages = 128;
        cfg_durability = Pagestore.Wal.None_ }
    Simdisk.Profile.ssd_raid0

let config =
  {
    Blsm.Config.default with
    Blsm.Config.c0_bytes = 64 * 1024;
    extent_pages = 16;
    size_ratio = Blsm.Config.Fixed 4.0;
  }

let build_component store records =
  let b = Sstable.Builder.create ~extent_pages:16 store in
  List.iter (fun (k, e) -> Sstable.Builder.add b k e) records;
  let footer = Sstable.Builder.finish b ~timestamp:1 in
  let sst =
    Sstable.Reader.open_in_ram store footer ~index:(Sstable.Builder.index_blob b)
  in
  Blsm.Component.of_sst sst

let mem_of records =
  let mem = Memtable.create ~resolver:Kv.Entry.append_resolver () in
  List.iteri (fun i (k, e) -> Memtable.write mem ~lsn:(i + 1) k e) records;
  mem

(* Drive a C0:C1 merge to completion in [quota]-byte steps; return the
   inprogress trace (one sample per step). *)
let trace_c0 ~store ~mem ~c1 ~quota =
  let m =
    Blsm.Merge_process.create_c0_merge ~config ~store
      ~source:(Blsm.Merge_process.Frozen mem) ~c1 ~run_cap:max_int
      ~expected_items:1000
  in
  let samples = ref [ Blsm.Merge_process.c0_inprogress m ] in
  let rec go guard =
    if guard > 100_000 then failwith "merge did not finish";
    match Blsm.Merge_process.step_c0 m ~quota with
    | `More ->
        samples := Blsm.Merge_process.c0_inprogress m :: !samples;
        go (guard + 1)
    | `Done ->
        samples := Blsm.Merge_process.c0_inprogress m :: !samples;
        Blsm.Merge_process.abandon_c0 m;
        List.rev !samples
  in
  go 0

let check_smooth ~label ~quota ~total samples =
  (* monotone, in range *)
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        if b < a -. 1e-9 then
          Alcotest.failf "%s: progress decreased (%f -> %f)" label a b;
        pairs rest
    | _ -> ()
  in
  pairs samples;
  List.iter
    (fun v ->
      if v < -1e-9 || v > 1.0 +. 1e-9 then
        Alcotest.failf "%s: progress %f out of [0,1]" label v)
    samples;
  (* smooth: per-step delta close to quota/total, never a huge jump and
     never stuck at zero progress across many steps *)
  let expected = float_of_int quota /. float_of_int total in
  let rec deltas acc = function
    | a :: (b :: _ as rest) -> deltas ((b -. a) :: acc) rest
    | _ -> List.rev acc
  in
  let ds = deltas [] samples in
  let n_mid = max 0 (List.length ds - 2) in
  List.iteri
    (fun i d ->
      (* ignore the final partial step *)
      if i < n_mid then begin
        if d > 8.0 *. expected +. 1e-6 then
          Alcotest.failf "%s: jumpy step %d: delta %f >> expected %f" label i d
            expected;
        if d < expected /. 8.0 -. 1e-9 then
          Alcotest.failf "%s: stuck step %d: delta %f << expected %f" label i d
            expected
      end)
    ds

let records prefix n size =
  List.init n (fun i ->
      (Printf.sprintf "%s%06d" prefix i, Kv.Entry.Base (String.make size 'v')))

let test_smooth_overlapping () =
  let store = mk_store () in
  let recs = records "k" 400 100 in
  let c1 = build_component store recs in
  (* memtable interleaves with c1 keys *)
  let mem =
    mem_of
      (List.init 400 (fun i ->
           (Printf.sprintf "k%06dx" i, Kv.Entry.Base (String.make 100 'm'))))
  in
  let total = Memtable.bytes mem + Blsm.Component.data_bytes c1 in
  let quota = total / 40 in
  check_smooth ~label:"overlapping" ~quota ~total
    (trace_c0 ~store ~mem ~c1:(Some c1) ~quota)

let test_smooth_disjoint_ranges () =
  (* the paper's trap: estimators focused on large-tree I/O get "stuck"
     when input ranges do not overlap; ours must keep moving *)
  let store = mk_store () in
  let c1 = build_component store (records "zzz" 400 100) in
  let mem = mem_of (records "aaa" 400 100) in
  let total = Memtable.bytes mem + Blsm.Component.data_bytes c1 in
  let quota = total / 40 in
  check_smooth ~label:"disjoint" ~quota ~total
    (trace_c0 ~store ~mem ~c1:(Some c1) ~quota)

let test_smooth_deletion_runs () =
  (* long runs of tombstones in C0 *)
  let store = mk_store () in
  let c1 = build_component store (records "k" 400 100) in
  let mem =
    mem_of (List.init 400 (fun i -> (Printf.sprintf "k%06d" i, Kv.Entry.Tombstone)))
  in
  let total = Memtable.bytes mem + Blsm.Component.data_bytes c1 in
  let quota = total / 30 in
  (* tombstone records are tiny: allow wider jump bounds via larger quota *)
  check_smooth ~label:"deletions" ~quota ~total
    (trace_c0 ~store ~mem ~c1:(Some c1) ~quota)

let test_outprogress_range_and_monotonicity () =
  (* outprogress over a simulated fill: grows with both inprogress and
     component size, clamped to [0,1] *)
  let prev = ref 0.0 in
  for step = 0 to 100 do
    let inp = float_of_int (step mod 34) /. 34.0 in
    let ci = step * 3000 in
    let v =
      Blsm.Scheduler.outprogress ~inprogress:inp ~ci_bytes:ci ~ram_bytes:25_000
        ~r:4.0
    in
    if v < 0.0 || v > 1.0 then Alcotest.failf "outprogress %f out of range" v;
    (* monotone in the floor term: compare same-inprogress successive sizes *)
    if step > 0 && step mod 34 = 0 then prev := 0.0;
    ignore !prev;
    prev := v
  done

let prop_gear_lag_bounds =
  QCheck.Test.make ~name:"gear lag in [0,1], zero when ahead" ~count:300
    QCheck.(pair (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (fill, inp) ->
      let lag = Blsm.Scheduler.gear_lag ~upstream_fill:fill ~downstream_inprogress:inp in
      lag >= 0.0 && lag <= 1.0 && (inp >= fill) = (lag = 0.0))

let prop_lag_quota_proportional =
  QCheck.Test.make ~name:"lag quota proportional to lag" ~count:200
    QCheck.(pair (float_range 0.001 1.0) (int_range 1000 10_000_000))
    (fun (lag, total) ->
      let q = Blsm.Scheduler.lag_quota ~lag ~total_bytes:total () in
      let expected = lag *. float_of_int total in
      float_of_int q >= expected && float_of_int q <= (expected *. 1.1) +. 2.0)

let () =
  Alcotest.run "smoothness"
    [
      ( "estimators",
        [
          Alcotest.test_case "overlapping inputs" `Quick test_smooth_overlapping;
          Alcotest.test_case "disjoint ranges" `Quick test_smooth_disjoint_ranges;
          Alcotest.test_case "deletion runs" `Quick test_smooth_deletion_runs;
          Alcotest.test_case "outprogress range" `Quick test_outprogress_range_and_monotonicity;
          QCheck_alcotest.to_alcotest prop_gear_lag_bounds;
          QCheck_alcotest.to_alcotest prop_lag_quota_proportional;
        ] );
    ]
