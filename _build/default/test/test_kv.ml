(* Tests for the shared entry type: wire format, merge/shadowing semantics,
   delta resolution. *)

open Kv

let check = Alcotest.check

let entry_testable = Alcotest.testable Entry.pp Entry.equal

let roundtrip e =
  let buf = Buffer.create 32 in
  Entry.encode buf e;
  let s = Buffer.contents buf in
  let decoded, pos = Entry.decode s 0 in
  Entry.equal e decoded && pos = String.length s && Entry.encoded_size e = pos

let test_encode_cases () =
  List.iter
    (fun e -> if not (roundtrip e) then Alcotest.fail "roundtrip failed")
    [
      Entry.Base "";
      Entry.Base "hello";
      Entry.Base (String.make 10_000 'x');
      Entry.Tombstone;
      Entry.Delta [ "a" ];
      Entry.Delta [ "a"; "bb"; "ccc" ];
      Entry.Delta [ "" ];
    ]

let gen_entry =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun s -> Entry.Base s) string_small);
        (1, return Entry.Tombstone);
        (2, map (fun ds -> Entry.Delta ds) (list_size (1 -- 4) string_small));
      ])

let arb_entry = QCheck.make ~print:(Fmt.to_to_string Entry.pp) gen_entry

let prop_roundtrip =
  QCheck.Test.make ~name:"entry wire roundtrip" ~count:500 arb_entry roundtrip

let r = Entry.append_resolver

let test_merge_base_shadows () =
  check entry_testable "newer base wins" (Entry.Base "new")
    (Entry.merge r ~newer:(Entry.Base "new") ~older:(Entry.Base "old"));
  check entry_testable "tombstone shadows" Entry.Tombstone
    (Entry.merge r ~newer:Entry.Tombstone ~older:(Entry.Base "old"))

let test_merge_delta_applies_to_base () =
  check entry_testable "delta applied" (Entry.Base "old+d1+d2")
    (Entry.merge r ~newer:(Entry.Delta [ "+d1"; "+d2" ]) ~older:(Entry.Base "old"))

let test_merge_delta_composes () =
  check entry_testable "delta chain oldest-first"
    (Entry.Delta [ "a"; "b"; "c" ])
    (Entry.merge r ~newer:(Entry.Delta [ "c" ]) ~older:(Entry.Delta [ "a"; "b" ]))

let test_merge_delta_over_tombstone () =
  (* delta against a deleted record recreates it from nothing *)
  check entry_testable "delta resurrects" (Entry.Base "d")
    (Entry.merge r ~newer:(Entry.Delta [ "d" ]) ~older:Entry.Tombstone)

let test_resolve_chain () =
  check
    (Alcotest.option Alcotest.string)
    "chain" (Some "base.x.y")
    (Entry.resolve r ~base:(Some "base") [ ".x"; ".y" ]);
  check
    (Alcotest.option Alcotest.string)
    "no deltas" (Some "base")
    (Entry.resolve r ~base:(Some "base") []);
  check (Alcotest.option Alcotest.string) "empty" None (Entry.resolve r ~base:None [])

let prop_merge_associative =
  (* merging (c over b) over a == c over (b over a): required for multi-level
     trees, where composition order depends on merge timing *)
  QCheck.Test.make ~name:"merge associativity" ~count:500
    QCheck.(triple arb_entry arb_entry arb_entry)
    (fun (oldest, mid, newest) ->
      let left =
        Entry.merge r ~newer:(Entry.merge r ~newer:newest ~older:mid) ~older:oldest
      in
      let right =
        Entry.merge r ~newer:newest ~older:(Entry.merge r ~newer:mid ~older:oldest)
      in
      Entry.equal left right)

let prop_base_absorbs =
  QCheck.Test.make ~name:"base/tombstone absorb older state" ~count:300
    QCheck.(pair arb_entry arb_entry)
    (fun (newer, older) ->
      match newer with
      | Entry.Base _ | Entry.Tombstone ->
          Entry.equal (Entry.merge r ~newer ~older) newer
      | Entry.Delta _ -> true)

let test_payload_bytes () =
  check Alcotest.int "base" 5 (Entry.payload_bytes (Entry.Base "hello"));
  check Alcotest.int "tombstone" 0 (Entry.payload_bytes Entry.Tombstone);
  check Alcotest.int "delta" 3 (Entry.payload_bytes (Entry.Delta [ "a"; "bb" ]))

let () =
  Alcotest.run "kv"
    [
      ( "wire",
        [
          Alcotest.test_case "cases" `Quick test_encode_cases;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
      ( "merge",
        [
          Alcotest.test_case "base shadows" `Quick test_merge_base_shadows;
          Alcotest.test_case "delta->base" `Quick test_merge_delta_applies_to_base;
          Alcotest.test_case "delta compose" `Quick test_merge_delta_composes;
          Alcotest.test_case "delta over tombstone" `Quick test_merge_delta_over_tombstone;
          Alcotest.test_case "resolve chain" `Quick test_resolve_chain;
          Alcotest.test_case "payload bytes" `Quick test_payload_bytes;
          QCheck_alcotest.to_alcotest prop_merge_associative;
          QCheck_alcotest.to_alcotest prop_base_absorbs;
        ] );
    ]
