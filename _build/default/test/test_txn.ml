(* OCC transaction tests: buffered read-your-writes, atomic commit,
   conflict detection against interleaved writers, crash atomicity, and a
   bank-transfer invariant under randomized interleavings. *)

let check = Alcotest.check

let mk_tree () =
  let store =
    Pagestore.Store.create
      ~config:
        { Pagestore.Store.cfg_page_size = 4096;
          cfg_buffer_pages = 256;
          cfg_durability = Pagestore.Wal.Full }
      Simdisk.Profile.ssd_raid0
  in
  Blsm.Tree.create
    ~config:
      {
        Blsm.Config.default with
        Blsm.Config.c0_bytes = 32 * 1024;
        size_ratio = Blsm.Config.Fixed 3.0;
        extent_pages = 16;
      }
    store

let test_commit_applies_writes () =
  let tree = mk_tree () in
  let txn = Blsm.Txn.begin_txn tree in
  Blsm.Txn.put txn "a" "1";
  Blsm.Txn.put txn "b" "2";
  (* buffered: invisible before commit *)
  check (Alcotest.option Alcotest.string) "invisible" None (Blsm.Tree.get tree "a");
  (match Blsm.Txn.commit txn with
  | `Committed -> ()
  | `Conflict _ -> Alcotest.fail "unexpected conflict");
  check (Alcotest.option Alcotest.string) "a" (Some "1") (Blsm.Tree.get tree "a");
  check (Alcotest.option Alcotest.string) "b" (Some "2") (Blsm.Tree.get tree "b")

let test_read_your_writes () =
  let tree = mk_tree () in
  Blsm.Tree.put tree "k" "base";
  let txn = Blsm.Txn.begin_txn tree in
  check (Alcotest.option Alcotest.string) "sees tree" (Some "base")
    (Blsm.Txn.get txn "k");
  Blsm.Txn.put txn "k" "mine";
  check (Alcotest.option Alcotest.string) "sees own write" (Some "mine")
    (Blsm.Txn.get txn "k");
  Blsm.Txn.delete txn "k";
  check (Alcotest.option Alcotest.string) "sees own delete" None
    (Blsm.Txn.get txn "k");
  Blsm.Txn.apply_delta txn "j" "+d";
  check (Alcotest.option Alcotest.string) "delta over absent" (Some "+d")
    (Blsm.Txn.get txn "j");
  Blsm.Txn.abort txn;
  check (Alcotest.option Alcotest.string) "abort leaves tree" (Some "base")
    (Blsm.Tree.get tree "k")

let test_conflict_on_interleaved_write () =
  let tree = mk_tree () in
  Blsm.Tree.put tree "k" "v0";
  let txn = Blsm.Txn.begin_txn tree in
  ignore (Blsm.Txn.get txn "k");
  (* another writer sneaks in *)
  Blsm.Tree.put tree "k" "v1";
  Blsm.Txn.put txn "k" "txn-value";
  (match Blsm.Txn.commit txn with
  | `Conflict [ "k" ] -> ()
  | `Conflict ks -> Alcotest.failf "conflict on %s" (String.concat "," ks)
  | `Committed -> Alcotest.fail "should have conflicted");
  (* conflicted commit wrote nothing *)
  check (Alcotest.option Alcotest.string) "interleaved write stands" (Some "v1")
    (Blsm.Tree.get tree "k")

let test_no_conflict_on_unrelated_write () =
  let tree = mk_tree () in
  Blsm.Tree.put tree "k" "v0";
  let txn = Blsm.Txn.begin_txn tree in
  ignore (Blsm.Txn.get txn "k");
  Blsm.Tree.put tree "other" "x";
  Blsm.Txn.put txn "k2" "y";
  match Blsm.Txn.commit txn with
  | `Committed -> ()
  | `Conflict _ -> Alcotest.fail "unrelated write should not conflict"

let test_blind_writes_never_conflict () =
  let tree = mk_tree () in
  Blsm.Tree.put tree "k" "v0";
  let txn = Blsm.Txn.begin_txn tree in
  Blsm.Txn.put txn "k" "blind" (* no read: no validation entry *);
  Blsm.Tree.put tree "k" "racer";
  (match Blsm.Txn.commit txn with
  | `Committed -> ()
  | `Conflict _ -> Alcotest.fail "blind write conflicted");
  check (Alcotest.option Alcotest.string) "last commit wins" (Some "blind")
    (Blsm.Tree.get tree "k")

let test_conflict_detected_across_merge () =
  (* version tokens must survive records moving down the tree: read a key,
     flush everything through C1/C2, then commit - no spurious conflict;
     but a real overwrite after the read must still conflict *)
  let tree = mk_tree () in
  Blsm.Tree.put tree "k" "v0";
  let txn = Blsm.Txn.begin_txn tree in
  ignore (Blsm.Txn.get txn "k");
  (* push the record through merges: versions ride the components *)
  for i = 0 to 999 do
    Blsm.Tree.put tree (Printf.sprintf "fill%05d" i) (String.make 60 'f')
  done;
  Blsm.Tree.flush tree;
  Blsm.Txn.put txn "k2" "done";
  (match Blsm.Txn.commit txn with
  | `Committed -> ()
  | `Conflict ks ->
      Alcotest.failf "merge movement caused spurious conflict on %s"
        (String.concat "," ks));
  let txn2 = Blsm.Txn.begin_txn tree in
  ignore (Blsm.Txn.get txn2 "k");
  Blsm.Tree.put tree "k" "v1";
  Blsm.Tree.flush tree;
  match Blsm.Txn.commit txn2 with
  | `Conflict _ -> ()
  | `Committed -> Alcotest.fail "overwrite hidden by merge"

let test_run_retries () =
  let tree = mk_tree () in
  Blsm.Tree.put tree "ctr" "0";
  (* interfere on the first attempt only *)
  let attempts = ref 0 in
  Blsm.Txn.run tree (fun txn ->
      incr attempts;
      let v = int_of_string (Option.value (Blsm.Txn.get txn "ctr") ~default:"0") in
      if !attempts = 1 then Blsm.Tree.put tree "ctr" "100";
      Blsm.Txn.put txn "ctr" (string_of_int (v + 1)));
  check Alcotest.int "retried once" 2 !attempts;
  check (Alcotest.option Alcotest.string) "increment applied over interference"
    (Some "101") (Blsm.Tree.get tree "ctr")

let test_transfer_invariant_random_interleaving () =
  (* bank transfers under random interference: total balance conserved *)
  let tree = mk_tree () in
  let accounts = 10 in
  let initial = 100 in
  for i = 0 to accounts - 1 do
    Blsm.Tree.put tree (Printf.sprintf "acct%02d" i) (string_of_int initial)
  done;
  let prng = Repro_util.Prng.of_int 13 in
  for _ = 1 to 300 do
    let a = Repro_util.Prng.int prng accounts in
    let b = (a + 1 + Repro_util.Prng.int prng (accounts - 1)) mod accounts in
    let amount = Repro_util.Prng.int prng 20 in
    Blsm.Txn.run tree (fun txn ->
        let bal k = int_of_string (Option.get (Blsm.Txn.get txn k)) in
        let ka = Printf.sprintf "acct%02d" a and kb = Printf.sprintf "acct%02d" b in
        let va = bal ka and vb = bal kb in
        if va >= amount then begin
          Blsm.Txn.put txn ka (string_of_int (va - amount));
          Blsm.Txn.put txn kb (string_of_int (vb + amount))
        end)
  done;
  Blsm.Tree.flush tree;
  let total = ref 0 in
  for i = 0 to accounts - 1 do
    total :=
      !total
      + int_of_string (Option.get (Blsm.Tree.get tree (Printf.sprintf "acct%02d" i)))
  done;
  check Alcotest.int "balance conserved" (accounts * initial) !total

let test_batch_survives_crash () =
  let tree = mk_tree () in
  Blsm.Txn.run tree (fun txn ->
      Blsm.Txn.put txn "left" "L";
      Blsm.Txn.put txn "right" "R");
  let tree = Blsm.Tree.crash_and_recover tree in
  check (Alcotest.option Alcotest.string) "left" (Some "L") (Blsm.Tree.get tree "left");
  check (Alcotest.option Alcotest.string) "right" (Some "R") (Blsm.Tree.get tree "right")

let () =
  Alcotest.run "txn"
    [
      ( "occ",
        [
          Alcotest.test_case "commit applies" `Quick test_commit_applies_writes;
          Alcotest.test_case "read your writes" `Quick test_read_your_writes;
          Alcotest.test_case "conflict on interleave" `Quick test_conflict_on_interleaved_write;
          Alcotest.test_case "no false conflicts" `Quick test_no_conflict_on_unrelated_write;
          Alcotest.test_case "blind writes" `Quick test_blind_writes_never_conflict;
          Alcotest.test_case "versions survive merges" `Quick test_conflict_detected_across_merge;
          Alcotest.test_case "run retries" `Quick test_run_retries;
          Alcotest.test_case "transfer invariant" `Quick test_transfer_invariant_random_interleaving;
          Alcotest.test_case "crash atomicity" `Quick test_batch_survives_crash;
        ] );
    ]
