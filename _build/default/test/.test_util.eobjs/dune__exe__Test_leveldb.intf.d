test/test_leveldb.mli:
