test/test_sstable.ml: Alcotest Char Gen Kv List Map Pagestore Printf QCheck QCheck_alcotest Simdisk Sstable String
