test/test_util.ml: Alcotest Array Buffer Bytes Crc32c Fun Gen Hashtbl Histogram Keygen List Prng QCheck QCheck_alcotest Repro_util String Timeseries Varint
