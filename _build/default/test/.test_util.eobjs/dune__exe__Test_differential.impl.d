test/test_differential.ml: Alcotest Blsm Btree_baseline Kv Leveldb_sim List Map Option Pagestore Printf QCheck QCheck_alcotest Repro_util Simdisk String
