test/test_btree.ml: Alcotest Array Btree_baseline Fun Kv List Map Pagestore Printf QCheck QCheck_alcotest Repro_util Simdisk String
