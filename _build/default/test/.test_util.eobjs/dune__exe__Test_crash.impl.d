test/test_crash.ml: Alcotest Blsm Bytes Char Kv List Map Pagestore Printf QCheck QCheck_alcotest Repro_util Simdisk Sstable String
