test/test_pagestore.ml: Alcotest Array Bytes Char Gen List Option Pagestore QCheck QCheck_alcotest Simdisk String
