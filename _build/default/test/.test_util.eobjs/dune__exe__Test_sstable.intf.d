test/test_sstable.mli:
