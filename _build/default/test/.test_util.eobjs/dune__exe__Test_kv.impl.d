test/test_kv.ml: Alcotest Buffer Entry Fmt Kv List QCheck QCheck_alcotest String
