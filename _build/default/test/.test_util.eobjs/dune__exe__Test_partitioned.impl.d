test/test_partitioned.ml: Alcotest Array Blsm Float Gen List Map Pagestore Printf QCheck QCheck_alcotest Repro_util Seq Simdisk String
