test/test_smoothness.mli:
