test/test_blsm.ml: Alcotest Blsm Fun Kv List Map Option Pagestore Printf QCheck QCheck_alcotest Repro_util Seq Simdisk String
