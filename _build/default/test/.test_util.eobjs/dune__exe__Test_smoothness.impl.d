test/test_smoothness.ml: Alcotest Blsm Kv List Memtable Pagestore Printf QCheck QCheck_alcotest Simdisk Sstable String
