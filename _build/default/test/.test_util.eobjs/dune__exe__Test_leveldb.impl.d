test/test_leveldb.ml: Alcotest Leveldb_sim List Map Pagestore Printf QCheck QCheck_alcotest Repro_util Seq Simdisk String
