test/test_replication.ml: Alcotest Blsm List Map Pagestore Printf QCheck QCheck_alcotest Repro_util Simdisk String
