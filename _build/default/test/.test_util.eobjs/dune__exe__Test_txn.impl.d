test/test_txn.ml: Alcotest Blsm Option Pagestore Printf Repro_util Simdisk String
