test/test_blsm.mli:
