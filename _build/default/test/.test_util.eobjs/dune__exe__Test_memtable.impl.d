test/test_memtable.ml: Alcotest Gen Kv List Map Memtable Option Printf QCheck QCheck_alcotest String
