test/test_ycsb.ml: Alcotest Array Hashtbl Kv Option Repro_util Simdisk String Ycsb
