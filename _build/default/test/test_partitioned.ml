(* Partitioned bLSM tests: routing, cross-partition scans, model-based
   random ops, the skew benefit (merge activity concentrated on written
   ranges), and the streaming cursor API. *)

let check = Alcotest.check
module SMap = Map.Make (String)

let mk_store ?(buffer_pages = 256) () =
  Pagestore.Store.create
    ~config:
      { Pagestore.Store.cfg_page_size = 4096;
        cfg_buffer_pages = buffer_pages;
        cfg_durability = Pagestore.Wal.Full }
    Simdisk.Profile.ssd_raid0

let small_config =
  {
    Blsm.Config.default with
    Blsm.Config.c0_bytes = 64 * 1024;
    size_ratio = Blsm.Config.Fixed 4.0;
    extent_pages = 16;
    max_quota_per_write = 256 * 1024;
  }

let mk ?(boundaries = [ "g"; "n"; "t" ]) () =
  Blsm.Partitioned.create ~config:small_config ~boundaries (mk_store ())

let test_routing () =
  let t = mk () in
  check Alcotest.int "4 partitions" 4 (Blsm.Partitioned.partition_count t);
  check Alcotest.int "a -> 0" 0 (Blsm.Partitioned.partition_index t "a");
  check Alcotest.int "g -> 1" 1 (Blsm.Partitioned.partition_index t "g");
  check Alcotest.int "m -> 1" 1 (Blsm.Partitioned.partition_index t "m");
  check Alcotest.int "n -> 2" 2 (Blsm.Partitioned.partition_index t "n");
  check Alcotest.int "z -> 3" 3 (Blsm.Partitioned.partition_index t "z")

let test_put_get_across_partitions () =
  let t = mk () in
  List.iter
    (fun k -> Blsm.Partitioned.put t k ("v-" ^ k))
    [ "apple"; "grape"; "mango"; "nectarine"; "tomato"; "zucchini" ];
  List.iter
    (fun k ->
      check (Alcotest.option Alcotest.string) k (Some ("v-" ^ k))
        (Blsm.Partitioned.get t k))
    [ "apple"; "grape"; "mango"; "nectarine"; "tomato"; "zucchini" ];
  check (Alcotest.option Alcotest.string) "missing" None
    (Blsm.Partitioned.get t "kiwi")

let test_scan_chains_partitions () =
  let t = mk () in
  List.iter
    (fun k -> Blsm.Partitioned.put t k k)
    [ "a1"; "f9"; "g1"; "m9"; "n1"; "s9"; "t1"; "z9" ];
  let all = Blsm.Partitioned.scan t "" 100 in
  check
    (Alcotest.list Alcotest.string)
    "sorted across partitions"
    [ "a1"; "f9"; "g1"; "m9"; "n1"; "s9"; "t1"; "z9" ]
    (List.map fst all);
  (* scan starting mid-partition and crossing two boundaries *)
  let mid = Blsm.Partitioned.scan t "m0" 4 in
  check (Alcotest.list Alcotest.string) "crosses boundaries"
    [ "m9"; "n1"; "s9"; "t1" ] (List.map fst mid);
  (* bounded scan does not over-fetch *)
  check Alcotest.int "limit respected" 2
    (List.length (Blsm.Partitioned.scan t "a" 2))

let test_deltas_and_deletes_routed () =
  let t = mk () in
  Blsm.Partitioned.put t "grape" "g";
  Blsm.Partitioned.apply_delta t "grape" "+1";
  check (Alcotest.option Alcotest.string) "delta" (Some "g+1")
    (Blsm.Partitioned.get t "grape");
  Blsm.Partitioned.delete t "grape";
  check (Alcotest.option Alcotest.string) "deleted" None
    (Blsm.Partitioned.get t "grape");
  check Alcotest.bool "iine after delete" true
    (Blsm.Partitioned.insert_if_absent t "grape" "again")

let prop_model =
  QCheck.Test.make ~name:"partitioned vs Map model" ~count:40
    (QCheck.make
       QCheck.Gen.(
         list_size (50 -- 400)
           (oneof
              [
                map (fun k -> `Put (k mod 200)) small_nat;
                map (fun k -> `Del (k mod 200)) small_nat;
                map (fun k -> `Get (k mod 200)) small_nat;
                map (fun k -> `Scan (k mod 200)) small_nat;
              ])))
    (fun ops ->
      let t =
        Blsm.Partitioned.create ~config:small_config
          ~boundaries:[ "key05"; "key10"; "key15" ]
          (mk_store ())
      in
      let m = ref SMap.empty in
      let ok = ref true in
      List.iteri
        (fun step op ->
          let key k = Printf.sprintf "key%03d" k in
          match op with
          | `Put k ->
              let v = Printf.sprintf "v%d-%s" step (String.make 50 'p') in
              Blsm.Partitioned.put t (key k) v;
              m := SMap.add (key k) v !m
          | `Del k ->
              Blsm.Partitioned.delete t (key k);
              m := SMap.remove (key k) !m
          | `Get k ->
              if Blsm.Partitioned.get t (key k) <> SMap.find_opt (key k) !m then
                ok := false
          | `Scan k ->
              let got = Blsm.Partitioned.scan t (key k) 7 in
              let expected =
                SMap.to_seq_from (key k) !m |> Seq.take 7 |> List.of_seq
              in
              if got <> expected then ok := false)
        ops;
      Blsm.Partitioned.flush t;
      !ok
      && SMap.for_all (fun k v -> Blsm.Partitioned.get t k = Some v) !m
      && Blsm.Partitioned.scan t "" 10_000 = SMap.bindings !m)

let test_skew_concentrates_merges () =
  (* write only one range: other partitions must stay empty on disk *)
  let t = mk ~boundaries:[ "b"; "c"; "d" ] () in
  for i = 0 to 2999 do
    Blsm.Partitioned.put t
      (Printf.sprintf "c%06d" i)
      (String.make 100 'v')
  done;
  Blsm.Partitioned.flush t;
  let bytes = Blsm.Partitioned.partition_bytes t in
  check Alcotest.int "partition 0 untouched" 0 bytes.(0);
  check Alcotest.int "partition 1 untouched" 0 bytes.(1);
  check Alcotest.int "partition 3 untouched" 0 bytes.(3);
  check Alcotest.bool "partition 2 has the data" true (bytes.(2) > 0)

let test_adversarial_shift_stalls_less () =
  (* §4.2.2: after filling one range, a burst into a disjoint range should
     stall a partitioned tree less than a monolithic one *)
  let run_mono () =
    let tree = Blsm.Tree.create ~config:{ small_config with Blsm.Config.c0_bytes = 256 * 1024 } (mk_store ()) in
    let disk = Blsm.Tree.disk tree in
    for i = 0 to 2999 do
      Blsm.Tree.put tree (Printf.sprintf "z%06d" i) (String.make 100 'v')
    done;
    let worst = ref 0.0 in
    for i = 0 to 2999 do
      let t0 = Simdisk.Disk.now_us disk in
      Blsm.Tree.put tree (Printf.sprintf "a%06d" i) (String.make 100 'v');
      worst := Float.max !worst (Simdisk.Disk.now_us disk -. t0)
    done;
    !worst
  in
  let run_part () =
    let t =
      Blsm.Partitioned.create
        ~config:{ small_config with Blsm.Config.c0_bytes = 256 * 1024 }
        ~boundaries:[ "m" ] (mk_store ())
    in
    let disk = Blsm.Partitioned.disk t in
    for i = 0 to 2999 do
      Blsm.Partitioned.put t (Printf.sprintf "z%06d" i) (String.make 100 'v')
    done;
    let worst = ref 0.0 in
    for i = 0 to 2999 do
      let t0 = Simdisk.Disk.now_us disk in
      Blsm.Partitioned.put t (Printf.sprintf "a%06d" i) (String.make 100 'v');
      worst := Float.max !worst (Simdisk.Disk.now_us disk -. t0)
    done;
    !worst
  in
  let mono = run_mono () and part = run_part () in
  if part > mono then
    Alcotest.failf "partitioned worst stall (%.0fus) > monolithic (%.0fus)" part mono

(* Crash recovery of a shared store *)

let test_partitioned_crash_recovery () =
  let t = mk ~boundaries:[ "g"; "n" ] () in
  List.iter (fun (k, v) -> Blsm.Partitioned.put t k v)
    [ ("apple", "1"); ("grape", "2"); ("orange", "3") ];
  Blsm.Partitioned.apply_delta t "apple" "+d";
  let t = Blsm.Partitioned.crash_and_recover t in
  check (Alcotest.option Alcotest.string) "p0 key" (Some "1+d")
    (Blsm.Partitioned.get t "apple");
  check (Alcotest.option Alcotest.string) "p1 key" (Some "2")
    (Blsm.Partitioned.get t "grape");
  check (Alcotest.option Alcotest.string) "p2 key" (Some "3")
    (Blsm.Partitioned.get t "orange");
  (* records must not leak into the wrong partition's replay *)
  check Alcotest.int "exactly 3 rows" 3
    (List.length (Blsm.Partitioned.scan t "" 100));
  (* recovered store keeps working *)
  Blsm.Partitioned.put t "zebra" "4";
  check (Alcotest.option Alcotest.string) "writable" (Some "4")
    (Blsm.Partitioned.get t "zebra")

let test_partitioned_truncation_preserves_other_partitions () =
  (* heavy traffic in one partition drives its merges (and its WAL floor)
     far ahead; a lone unmerged record in another partition must survive
     the crash - the per-client floor keeps its log record alive *)
  let t = mk ~boundaries:[ "m" ] () in
  Blsm.Partitioned.put t "aaa-lonely" "precious";
  (* the busy partition's merges complete inline during these inserts and
     propose truncation far past the lonely record's LSN; the idle
     partition's registered floor must keep that record alive. No flush:
     "aaa-lonely" stays in the idle partition's C0, WAL-only. *)
  for i = 0 to 4999 do
    Blsm.Partitioned.put t (Printf.sprintf "z%06d" i) (String.make 100 'v')
  done;
  let t = Blsm.Partitioned.crash_and_recover t in
  check (Alcotest.option Alcotest.string)
    "unmerged record in idle partition survives" (Some "precious")
    (Blsm.Partitioned.get t "aaa-lonely");
  check (Alcotest.option Alcotest.string) "busy partition intact"
    (Some (String.make 100 'v'))
    (Blsm.Partitioned.get t "z004999")

let prop_partitioned_crash_model =
  QCheck.Test.make ~name:"partitioned crash recovery vs model" ~count:20
    QCheck.(pair small_int (int_range 0 399))
    (fun (seed, crash_at) ->
      let t =
        ref
          (Blsm.Partitioned.create ~config:small_config
             ~boundaries:[ "key100"; "key200" ] (mk_store ()))
      in
      let m = ref SMap.empty in
      let prng = Repro_util.Prng.of_int (seed + 31) in
      for i = 0 to 399 do
        let key = Printf.sprintf "key%03d" (Repro_util.Prng.int prng 300) in
        (match Repro_util.Prng.int prng 5 with
        | 0 | 1 | 2 ->
            let v = Printf.sprintf "v%d" i in
            Blsm.Partitioned.put !t key v;
            m := SMap.add key v !m
        | 3 ->
            Blsm.Partitioned.delete !t key;
            m := SMap.remove key !m
        | _ ->
            Blsm.Partitioned.apply_delta !t key "+d";
            m :=
              SMap.update key
                (function Some v -> Some (v ^ "+d") | None -> Some "+d")
                !m);
        if i = crash_at then t := Blsm.Partitioned.crash_and_recover !t
      done;
      Blsm.Partitioned.scan !t "" 10_000 = SMap.bindings !m)

(* Cursor API *)

let test_cursor_streams () =
  let store = mk_store () in
  let tree = Blsm.Tree.create ~config:small_config store in
  for i = 0 to 499 do
    Blsm.Tree.put tree (Printf.sprintf "k%04d" i) (string_of_int i)
  done;
  Blsm.Tree.delete tree "k0100";
  let c = Blsm.Tree.cursor ~from:"k0099" tree in
  (match Blsm.Tree.cursor_next c with
  | Some ("k0099", "99") -> ()
  | _ -> Alcotest.fail "cursor first row wrong");
  (match Blsm.Tree.cursor_next c with
  | Some ("k0101", "101") -> () (* k0100 deleted *)
  | Some (k, _) -> Alcotest.failf "expected k0101, got %s" k
  | None -> Alcotest.fail "cursor ended early");
  (* drain to the end *)
  let rec drain n = match Blsm.Tree.cursor_next c with None -> n | Some _ -> drain (n + 1) in
  check Alcotest.int "remaining rows" 398 (drain 0)

let test_cursor_empty_tree () =
  let tree = Blsm.Tree.create ~config:small_config (mk_store ()) in
  let c = Blsm.Tree.cursor tree in
  check Alcotest.bool "empty" true (Blsm.Tree.cursor_next c = None)

let test_partitioned_cursor_chains () =
  let t = mk () in
  List.iter (fun k -> Blsm.Partitioned.put t k k)
    [ "a1"; "f9"; "g1"; "m9"; "n1"; "s9"; "t1"; "z9" ];
  let c = Blsm.Partitioned.cursor ~from:"f0" t in
  let rec drain acc =
    match Blsm.Partitioned.cursor_next c with
    | None -> List.rev acc
    | Some (k, _) -> drain (k :: acc)
  in
  check (Alcotest.list Alcotest.string) "chained across partitions"
    [ "f9"; "g1"; "m9"; "n1"; "s9"; "t1"; "z9" ]
    (drain [])

let prop_partitioned_cursor_equals_scan =
  QCheck.Test.make ~name:"partitioned cursor = scan" ~count:30
    QCheck.(list_of_size Gen.(0 -- 100) (int_range 0 299))
    (fun keys ->
      let t =
        Blsm.Partitioned.create ~config:small_config
          ~boundaries:[ "key100"; "key200" ] (mk_store ())
      in
      List.iter
        (fun k -> Blsm.Partitioned.put t (Printf.sprintf "key%03d" k) "v")
        keys;
      let c = Blsm.Partitioned.cursor t in
      let rec drain acc =
        match Blsm.Partitioned.cursor_next c with
        | None -> List.rev acc
        | Some row -> drain (row :: acc)
      in
      drain [] = Blsm.Partitioned.scan t "" 10_000)

let prop_cursor_equals_scan =
  QCheck.Test.make ~name:"cursor = scan" ~count:40
    QCheck.(pair (list_of_size Gen.(0 -- 150) (int_range 0 300)) (int_range 0 300))
    (fun (keys, from) ->
      let tree = Blsm.Tree.create ~config:small_config (mk_store ()) in
      List.iter
        (fun k -> Blsm.Tree.put tree (Printf.sprintf "%03d" k) (string_of_int k))
        keys;
      let from = Printf.sprintf "%03d" from in
      let via_scan = Blsm.Tree.scan tree from 1000 in
      let c = Blsm.Tree.cursor ~from tree in
      let rec drain acc =
        match Blsm.Tree.cursor_next c with
        | None -> List.rev acc
        | Some row -> drain (row :: acc)
      in
      drain [] = via_scan)

let () =
  Alcotest.run "partitioned"
    [
      ( "partitioned",
        [
          Alcotest.test_case "routing" `Quick test_routing;
          Alcotest.test_case "put/get across partitions" `Quick test_put_get_across_partitions;
          Alcotest.test_case "scan chains" `Quick test_scan_chains_partitions;
          Alcotest.test_case "deltas/deletes routed" `Quick test_deltas_and_deletes_routed;
          Alcotest.test_case "skew concentrates merges" `Quick test_skew_concentrates_merges;
          Alcotest.test_case "adversarial shift" `Quick test_adversarial_shift_stalls_less;
          Alcotest.test_case "crash recovery" `Quick test_partitioned_crash_recovery;
          Alcotest.test_case "truncation respects all floors" `Quick
            test_partitioned_truncation_preserves_other_partitions;
          QCheck_alcotest.to_alcotest prop_partitioned_crash_model;
          QCheck_alcotest.to_alcotest prop_model;
        ] );
      ( "cursor",
        [
          Alcotest.test_case "streams" `Quick test_cursor_streams;
          Alcotest.test_case "empty tree" `Quick test_cursor_empty_tree;
          Alcotest.test_case "partitioned cursor" `Quick test_partitioned_cursor_chains;
          QCheck_alcotest.to_alcotest prop_partitioned_cursor_equals_scan;
          QCheck_alcotest.to_alcotest prop_cursor_equals_scan;
        ] );
    ]
