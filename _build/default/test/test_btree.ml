(* B-Tree baseline tests: structural invariants, model-based random ops,
   split behaviour, scan chains, seek-cost profile (1 seek reads, 2 seek
   updates via eviction writeback), fragmentation. *)

let check = Alcotest.check
module B = Btree_baseline.Btree
module SMap = Map.Make (String)

let mk_store ?(buffer_pages = 64) ?(page_size = 4096) () =
  Pagestore.Store.create
    ~config:
      { Pagestore.Store.cfg_page_size = page_size;
        cfg_buffer_pages = buffer_pages;
        cfg_durability = Pagestore.Wal.Full }
    Simdisk.Profile.hdd_raid0

let test_put_get () =
  let t = B.create (mk_store ()) in
  B.put t "b" "2";
  B.put t "a" "1";
  B.put t "c" "3";
  check (Alcotest.option Alcotest.string) "a" (Some "1") (B.get t "a");
  check (Alcotest.option Alcotest.string) "missing" None (B.get t "zz");
  check Alcotest.int "count" 3 (B.count t);
  B.check_invariants t

let test_overwrite () =
  let t = B.create (mk_store ()) in
  B.put t "k" "v1";
  B.put t "k" "v2";
  check (Alcotest.option Alcotest.string) "latest" (Some "v2") (B.get t "k");
  check Alcotest.int "count stable" 1 (B.count t)

let test_delete () =
  let t = B.create (mk_store ()) in
  B.put t "k" "v";
  B.delete t "k";
  check (Alcotest.option Alcotest.string) "gone" None (B.get t "k");
  check Alcotest.int "count" 0 (B.count t);
  B.delete t "k" (* idempotent *)

let test_splits_preserve_data () =
  let t = B.create (mk_store ~page_size:512 ()) in
  for i = 0 to 999 do
    B.put t (Printf.sprintf "key%04d" (i * 7 mod 1000)) (Printf.sprintf "val%d" i)
  done;
  B.check_invariants t;
  check Alcotest.bool "tree grew" true (B.height t > 1);
  check Alcotest.bool "splits happened" true (B.splits t > 0);
  for i = 0 to 999 do
    let k = Printf.sprintf "key%04d" i in
    if B.get t k = None then Alcotest.failf "lost %s" k
  done

let test_scan_ordered () =
  let t = B.create (mk_store ~page_size:512 ()) in
  for i = 0 to 299 do
    B.put t (Printf.sprintf "k%04d" i) (string_of_int i)
  done;
  let out = B.scan t "k0100" 50 in
  check Alcotest.int "50 rows" 50 (List.length out);
  check Alcotest.string "first" "k0100" (fst (List.hd out));
  let keys = List.map fst out in
  check (Alcotest.list Alcotest.string) "sorted" (List.sort compare keys) keys;
  check Alcotest.int "tail clipped" 10 (List.length (B.scan t "k0290" 99))

let test_rightmost_split_packs_pages () =
  (* sorted inserts should produce far fewer pages than random ones *)
  let sorted = B.create (mk_store ~page_size:512 ()) in
  let random = B.create (mk_store ~page_size:512 ()) in
  let prng = Repro_util.Prng.of_int 3 in
  let n = 600 in
  let ids = Array.init n Fun.id in
  Repro_util.Prng.shuffle prng ids;
  for i = 0 to n - 1 do
    B.put sorted (Printf.sprintf "k%06d" i) (String.make 40 'v');
    B.put random (Printf.sprintf "k%06d" ids.(i)) (String.make 40 'v')
  done;
  B.check_invariants sorted;
  B.check_invariants random;
  if B.splits sorted * 5 < B.splits random * 4 then ()
  else
    Alcotest.failf "sorted load should split less (sorted=%d random=%d)"
      (B.splits sorted) (B.splits random)

let prop_model =
  QCheck.Test.make ~name:"btree vs Map model" ~count:60
    (QCheck.make
       QCheck.Gen.(
         list_size (1 -- 300)
           (oneof
              [
                map (fun k -> `Put (k mod 100)) small_nat;
                map (fun k -> `Del (k mod 100)) small_nat;
                map (fun k -> `Get (k mod 100)) small_nat;
              ])))
    (fun ops ->
      let t = B.create (mk_store ~page_size:512 ()) in
      let m = ref SMap.empty in
      let ok = ref true in
      List.iteri
        (fun step op ->
          match op with
          | `Put k ->
              let key = Printf.sprintf "key%03d" k in
              let v = Printf.sprintf "v%d" step in
              B.put t key v;
              m := SMap.add key v !m
          | `Del k ->
              let key = Printf.sprintf "key%03d" k in
              B.delete t key;
              m := SMap.remove key !m
          | `Get k ->
              let key = Printf.sprintf "key%03d" k in
              if B.get t key <> SMap.find_opt key !m then ok := false)
        ops;
      B.check_invariants t;
      !ok
      && B.count t = SMap.cardinal !m
      && B.scan t "" 1000 = SMap.bindings !m)

(* Cost profile *)

let test_cold_read_costs_one_seek () =
  (* leaf level >> buffer pool: reads miss on the leaf but hit on internals *)
  let store = mk_store ~buffer_pages:16 () in
  let t = B.create store in
  for i = 0 to 4999 do
    B.put t (Repro_util.Keygen.key_of_id i) (String.make 200 'v')
  done;
  (* warm the internal nodes *)
  for i = 0 to 99 do
    ignore (B.get t (Repro_util.Keygen.key_of_id i))
  done;
  let disk = B.disk t in
  let before = Simdisk.Disk.snapshot disk in
  let n = 300 in
  for i = 0 to n - 1 do
    ignore (B.get t (Repro_util.Keygen.key_of_id (i * 13)))
  done;
  let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
  let per_read = float_of_int d.Simdisk.Disk.seeks /. float_of_int n in
  if per_read > 1.4 || per_read < 0.5 then
    Alcotest.failf "expected ~1 seek per cold read, got %.2f" per_read

let test_updates_cost_two_ios () =
  (* random updates: leaf read (seek) + eventual writeback (random write) *)
  let store = mk_store ~buffer_pages:16 () in
  let t = B.create store in
  for i = 0 to 4999 do
    B.put t (Repro_util.Keygen.key_of_id i) (String.make 200 'v')
  done;
  Pagestore.Buffer_manager.flush_all (Pagestore.Store.buffer store);
  let disk = B.disk t in
  let before = Simdisk.Disk.snapshot disk in
  let n = 300 in
  for i = 0 to n - 1 do
    B.put t (Repro_util.Keygen.key_of_id (i * 13)) (String.make 200 'w')
  done;
  Pagestore.Buffer_manager.flush_all (Pagestore.Store.buffer store);
  let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
  let ios =
    float_of_int (d.Simdisk.Disk.seeks + d.Simdisk.Disk.random_writes)
    /. float_of_int n
  in
  if ios < 1.4 || ios > 2.6 then
    Alcotest.failf "expected ~2 I/Os per random update, got %.2f" ios

let test_fragmentation_hurts_scans () =
  (* after random inserts, long scans seek per leaf; a fresh sorted load
     scans almost sequentially *)
  let scan_seeks load_order =
    let store = mk_store ~buffer_pages:8 ~page_size:512 () in
    let t = B.create store in
    List.iter (fun i -> B.put t (Printf.sprintf "k%06d" i) (String.make 100 'v'))
      load_order;
    Pagestore.Buffer_manager.flush_all (Pagestore.Store.buffer store);
    let disk = B.disk t in
    let before = Simdisk.Disk.snapshot disk in
    ignore (B.scan t "k000000" 500);
    (Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk)).Simdisk.Disk.seeks
  in
  let n = 2000 in
  let sorted = List.init n Fun.id in
  let shuffled =
    let a = Array.init n Fun.id in
    Repro_util.Prng.shuffle (Repro_util.Prng.of_int 9) a;
    Array.to_list a
  in
  let s_sorted = scan_seeks sorted and s_random = scan_seeks shuffled in
  if s_random < 3 * max 1 s_sorted then
    Alcotest.failf "fragmented scan should seek much more (sorted=%d random=%d)"
      s_sorted s_random

let test_engine_adapter () =
  let t = B.create (mk_store ()) in
  let e = B.engine t in
  e.Kv.Kv_intf.put "k" "v";
  check (Alcotest.option Alcotest.string) "get" (Some "v") (e.Kv.Kv_intf.get "k");
  check Alcotest.bool "iine existing" false (e.Kv.Kv_intf.insert_if_absent "k" "x");
  e.Kv.Kv_intf.apply_delta "k" "+d";
  check (Alcotest.option Alcotest.string) "delta=rmw" (Some "v+d") (e.Kv.Kv_intf.get "k")

let () =
  Alcotest.run "btree"
    [
      ( "btree",
        [
          Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "overwrite" `Quick test_overwrite;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "splits preserve data" `Quick test_splits_preserve_data;
          Alcotest.test_case "scan ordered" `Quick test_scan_ordered;
          Alcotest.test_case "rightmost split" `Quick test_rightmost_split_packs_pages;
          QCheck_alcotest.to_alcotest prop_model;
        ] );
      ( "costs",
        [
          Alcotest.test_case "cold read ~1 seek" `Quick test_cold_read_costs_one_seek;
          Alcotest.test_case "update ~2 I/Os" `Quick test_updates_cost_two_ios;
          Alcotest.test_case "fragmentation" `Quick test_fragmentation_hurts_scans;
          Alcotest.test_case "engine adapter" `Quick test_engine_adapter;
        ] );
    ]
