(* Tests for the pagestore substrate: region allocator, platter, buffer
   manager (CLOCK), WAL, store streams, and crash semantics. *)

let check = Alcotest.check

let mk_store ?(buffer_pages = 8) ?(page_size = 256) () =
  Pagestore.Store.create
    ~config:
      {
        Pagestore.Store.cfg_page_size = page_size;
        cfg_buffer_pages = buffer_pages;
        cfg_durability = Pagestore.Wal.Full;
      }
    Simdisk.Profile.hdd_raid0

(* -------------------------------------------------------------------- *)
(* Region allocator *)

let test_alloc_contiguous () =
  let a = Pagestore.Region_allocator.create () in
  let r1 = Pagestore.Region_allocator.allocate a 10 in
  let r2 = Pagestore.Region_allocator.allocate a 5 in
  check Alcotest.int "r1 start" 0 r1.Pagestore.Region_allocator.start;
  check Alcotest.int "r1 len" 10 r1.Pagestore.Region_allocator.length;
  check Alcotest.int "r2 after r1" 10 r2.Pagestore.Region_allocator.start;
  check Alcotest.int "allocated" 15 (Pagestore.Region_allocator.allocated_pages a)

let test_alloc_reuse_after_free () =
  let a = Pagestore.Region_allocator.create () in
  let r1 = Pagestore.Region_allocator.allocate a 10 in
  let _r2 = Pagestore.Region_allocator.allocate a 10 in
  Pagestore.Region_allocator.free a r1;
  let r3 = Pagestore.Region_allocator.allocate a 8 in
  check Alcotest.int "reuses freed space" 0 r3.Pagestore.Region_allocator.start

let test_alloc_coalesce () =
  let a = Pagestore.Region_allocator.create () in
  let r1 = Pagestore.Region_allocator.allocate a 5 in
  let r2 = Pagestore.Region_allocator.allocate a 5 in
  let _r3 = Pagestore.Region_allocator.allocate a 5 in
  Pagestore.Region_allocator.free a r1;
  Pagestore.Region_allocator.free a r2;
  (* coalesced into one run of 10 *)
  let r4 = Pagestore.Region_allocator.allocate a 10 in
  check Alcotest.int "coalesced alloc" 0 r4.Pagestore.Region_allocator.start

let test_alloc_free_pages_accounting () =
  let a = Pagestore.Region_allocator.create () in
  let r1 = Pagestore.Region_allocator.allocate a 7 in
  Pagestore.Region_allocator.free a r1;
  check Alcotest.int "free pages" 7 (Pagestore.Region_allocator.free_pages a);
  check Alcotest.int "allocated" 0 (Pagestore.Region_allocator.allocated_pages a)

let test_alloc_rejects_empty () =
  let a = Pagestore.Region_allocator.create () in
  (match Pagestore.Region_allocator.allocate a 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let prop_alloc_no_overlap =
  QCheck.Test.make ~name:"allocated regions never overlap" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (int_range 1 20))
    (fun sizes ->
      let a = Pagestore.Region_allocator.create () in
      let regions = List.map (Pagestore.Region_allocator.allocate a) sizes in
      (* pairwise disjoint *)
      let rec disjoint = function
        | [] -> true
        | (r : Pagestore.Region_allocator.region) :: rest ->
            List.for_all
              (fun (s : Pagestore.Region_allocator.region) ->
                r.start + r.length <= s.start || s.start + s.length <= r.start)
              rest
            && disjoint rest
      in
      disjoint regions)

let prop_alloc_free_alloc_cycles =
  QCheck.Test.make ~name:"free/alloc cycles conserve accounting" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (int_range 1 10))
    (fun sizes ->
      let a = Pagestore.Region_allocator.create () in
      let regions = List.map (Pagestore.Region_allocator.allocate a) sizes in
      List.iter (Pagestore.Region_allocator.free a) regions;
      Pagestore.Region_allocator.allocated_pages a = 0)

(* -------------------------------------------------------------------- *)
(* Platter *)

let test_platter_roundtrip () =
  let p = Pagestore.Platter.create ~page_size:64 in
  let src = Bytes.make 64 'x' in
  Pagestore.Platter.write p 3 src;
  let dst = Bytes.create 64 in
  Pagestore.Platter.read p 3 dst;
  check Alcotest.bytes "roundtrip" src dst

let test_platter_absent_reads_zero () =
  let p = Pagestore.Platter.create ~page_size:16 in
  let dst = Bytes.make 16 'q' in
  Pagestore.Platter.read p 99 dst;
  check Alcotest.bytes "zeroed" (Bytes.make 16 '\000') dst

let test_platter_write_isolated () =
  (* mutating the source after write must not affect the stored copy *)
  let p = Pagestore.Platter.create ~page_size:8 in
  let src = Bytes.make 8 'a' in
  Pagestore.Platter.write p 0 src;
  Bytes.fill src 0 8 'b';
  let dst = Bytes.create 8 in
  Pagestore.Platter.read p 0 dst;
  check Alcotest.bytes "isolated" (Bytes.make 8 'a') dst

(* -------------------------------------------------------------------- *)
(* Buffer manager *)

let test_buffer_caches_hot_page () =
  let store = mk_store ~buffer_pages:4 () in
  let disk = Pagestore.Store.disk store in
  Pagestore.Store.with_page_mut store 0 (fun b -> Bytes.set b 0 'z');
  let before = Simdisk.Disk.snapshot disk in
  for _ = 1 to 10 do
    Pagestore.Store.with_page store 0 (fun b ->
        check Alcotest.char "cached value" 'z' (Bytes.get b 0))
  done;
  let after = Simdisk.Disk.snapshot disk in
  check Alcotest.int "no seeks for cached page" 0
    (Simdisk.Disk.diff before after).Simdisk.Disk.seeks

let test_buffer_eviction_writes_back () =
  let store = mk_store ~buffer_pages:2 () in
  Pagestore.Store.with_page_mut store 0 (fun b -> Bytes.set b 0 'a');
  (* touch enough pages to evict page 0 *)
  for id = 1 to 5 do
    Pagestore.Store.with_page store id (fun _ -> ())
  done;
  (* read back through a fresh miss: must see the written value *)
  Pagestore.Store.with_page store 0 (fun b ->
      check Alcotest.char "written back" 'a' (Bytes.get b 0))

let test_buffer_miss_costs_seek () =
  let store = mk_store ~buffer_pages:2 () in
  let disk = Pagestore.Store.disk store in
  let before = Simdisk.Disk.snapshot disk in
  Pagestore.Store.with_page store 42 (fun _ -> ());
  let after = Simdisk.Disk.snapshot disk in
  check Alcotest.int "one seek" 1 (Simdisk.Disk.diff before after).Simdisk.Disk.seeks

let test_buffer_crash_loses_dirty () =
  let store = mk_store ~buffer_pages:4 () in
  Pagestore.Store.with_page_mut store 7 (fun b -> Bytes.set b 0 'd');
  Pagestore.Store.crash store;
  Pagestore.Store.with_page store 7 (fun b ->
      check Alcotest.char "dirty page lost" '\000' (Bytes.get b 0))

let test_buffer_force_survives_crash () =
  let store = mk_store ~buffer_pages:4 () in
  Pagestore.Store.with_page_mut store 7 (fun b -> Bytes.set b 0 'd');
  Pagestore.Buffer_manager.force (Pagestore.Store.buffer store) 7;
  Pagestore.Store.crash store;
  Pagestore.Store.with_page store 7 (fun b ->
      check Alcotest.char "forced page survives" 'd' (Bytes.get b 0))

let test_buffer_flush_all () =
  let store = mk_store ~buffer_pages:8 () in
  for id = 0 to 5 do
    Pagestore.Store.with_page_mut store id (fun b -> Bytes.set b 0 'f')
  done;
  Pagestore.Buffer_manager.flush_all (Pagestore.Store.buffer store);
  Pagestore.Store.crash store;
  for id = 0 to 5 do
    Pagestore.Store.with_page store id (fun b ->
        check Alcotest.char "flushed" 'f' (Bytes.get b 0))
  done

let test_buffer_clock_keeps_referenced () =
  (* A page touched on every round should stay resident while a one-shot
     page gets evicted. *)
  let store = mk_store ~buffer_pages:3 () in
  let bm = Pagestore.Store.buffer store in
  Pagestore.Store.with_page store 100 (fun _ -> ());
  for id = 0 to 19 do
    Pagestore.Store.with_page store 100 (fun _ -> ());
    Pagestore.Store.with_page store id (fun _ -> ())
  done;
  let misses_before = Pagestore.Buffer_manager.misses bm in
  Pagestore.Store.with_page store 100 (fun _ -> ());
  check Alcotest.int "hot page still cached" misses_before
    (Pagestore.Buffer_manager.misses bm)

(* Model-based: random reads/writes/forces/crashes through the buffer
   manager must agree with a reference model of (platter, dirty-cache)
   state; cache transparency is the invariant. *)
let prop_buffer_model =
  QCheck.Test.make ~name:"buffer manager vs reference model" ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (1 -- 120)
           (oneof
              [
                map2 (fun p v -> `Write (p mod 12, v)) small_nat (0 -- 255);
                map (fun p -> `Read (p mod 12)) small_nat;
                map (fun p -> `Force (p mod 12)) small_nat;
                return `Flush;
                return `Crash;
              ])))
    (fun ops ->
      let store = mk_store ~buffer_pages:3 ~page_size:32 () in
      (* model: durable.(p) = platter byte0; cached.(p) = dirty value *)
      let durable = Array.make 12 0 in
      let cached = Array.make 12 None in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Write (p, v) ->
              Pagestore.Store.with_page_mut store p (fun b ->
                  Bytes.set b 0 (Char.chr v));
              cached.(p) <- Some v
          | `Read p ->
              let expected = Option.value cached.(p) ~default:durable.(p) in
              Pagestore.Store.with_page store p (fun b ->
                  if Char.code (Bytes.get b 0) <> expected then ok := false)
          | `Force p ->
              Pagestore.Buffer_manager.force (Pagestore.Store.buffer store) p;
              (* force persists only if the page is still cached; eviction
                 may have persisted it already. Either way, if it was ever
                 dirty its latest value is now durable or still cached:
                 conservatively sync the model by reading back later. *)
              (match cached.(p) with
              | Some v ->
                  durable.(p) <- v
                  (* it may remain cached clean; value unchanged *)
              | None -> ())
          | `Flush ->
              Pagestore.Buffer_manager.flush_all (Pagestore.Store.buffer store);
              Array.iteri
                (fun p v ->
                  match v with
                  | Some value ->
                      durable.(p) <- value;
                      cached.(p) <- Some value (* stays cached, now clean *)
                  | None -> ())
                cached
          | `Crash ->
              (* dirty state not yet evicted/forced may be lost - but our
                 model cannot see evictions, which persist dirty pages
                 early. After a crash the observable value is whatever the
                 platter has: either durable.(p) or a later value evicted
                 behind our back. To keep the model exact we flush before
                 crashing in this test. *)
              Pagestore.Buffer_manager.flush_all (Pagestore.Store.buffer store);
              Array.iteri
                (fun p v ->
                  match v with
                  | Some value ->
                      durable.(p) <- value;
                      cached.(p) <- None
                  | None -> cached.(p) <- None)
                cached;
              Pagestore.Store.crash store)
        ops;
      (* final: every page reads back as the model predicts *)
      Array.iteri
        (fun p _ ->
          let expected = Option.value cached.(p) ~default:durable.(p) in
          Pagestore.Store.with_page store p (fun b ->
              if Char.code (Bytes.get b 0) <> expected then ok := false))
        durable;
      !ok)

(* Space accounting: freeing components returns platter space; repeated
   build/free cycles must not grow the store (no leak). *)
let test_no_space_leak () =
  let store = mk_store ~page_size:256 () in
  let build () =
    let region = Pagestore.Store.allocate_region store ~pages:16 in
    let ws = Pagestore.Store.open_write_stream store region in
    for _ = 1 to 16 do
      ignore (Pagestore.Store.stream_write ws (Bytes.make 256 'x'))
    done;
    region
  in
  let r0 = build () in
  let high = Pagestore.Store.stored_bytes store in
  Pagestore.Store.free_region store r0;
  for _ = 1 to 20 do
    let r = build () in
    if Pagestore.Store.stored_bytes store > high then
      Alcotest.fail "platter space grew across build/free cycles";
    Pagestore.Store.free_region store r
  done

(* -------------------------------------------------------------------- *)
(* WAL *)

let test_wal_append_replay () =
  let disk = Simdisk.Disk.create Simdisk.Profile.hdd_raid0 in
  let wal = Pagestore.Wal.create disk in
  let l1 = Pagestore.Wal.append wal "one" in
  let _l2 = Pagestore.Wal.append wal "two" in
  let l3 = Pagestore.Wal.append wal "three" in
  check Alcotest.int "lsn monotone" (l1 + 2) l3;
  let seen = ref [] in
  Pagestore.Wal.replay wal ~from_lsn:0 (fun _ p -> seen := p :: !seen);
  check (Alcotest.list Alcotest.string) "replay order" [ "one"; "two"; "three" ]
    (List.rev !seen)

let test_wal_truncate () =
  let disk = Simdisk.Disk.create Simdisk.Profile.hdd_raid0 in
  let wal = Pagestore.Wal.create disk in
  let _ = Pagestore.Wal.append wal "a" in
  let l2 = Pagestore.Wal.append wal "b" in
  let _ = Pagestore.Wal.append wal "c" in
  Pagestore.Wal.truncate wal ~upto_lsn:l2;
  let seen = ref [] in
  Pagestore.Wal.replay wal ~from_lsn:0 (fun _ p -> seen := p :: !seen);
  check (Alcotest.list Alcotest.string) "only suffix" [ "b"; "c" ]
    (List.rev !seen)

let test_wal_replay_from_lsn () =
  let disk = Simdisk.Disk.create Simdisk.Profile.hdd_raid0 in
  let wal = Pagestore.Wal.create disk in
  let _ = Pagestore.Wal.append wal "a" in
  let l2 = Pagestore.Wal.append wal "b" in
  let seen = ref 0 in
  Pagestore.Wal.replay wal ~from_lsn:l2 (fun _ _ -> incr seen);
  check Alcotest.int "partial replay" 1 !seen

let test_wal_none_durability_drops () =
  let disk = Simdisk.Disk.create Simdisk.Profile.hdd_raid0 in
  let wal = Pagestore.Wal.create ~durability:Pagestore.Wal.None_ disk in
  let _ = Pagestore.Wal.append wal "lost" in
  let seen = ref 0 in
  Pagestore.Wal.replay wal ~from_lsn:0 (fun _ _ -> incr seen);
  check Alcotest.int "nothing logged" 0 !seen

let test_wal_size_accounting () =
  let disk = Simdisk.Disk.create Simdisk.Profile.hdd_raid0 in
  let wal = Pagestore.Wal.create disk in
  let _ = Pagestore.Wal.append wal (String.make 100 'x') in
  if Pagestore.Wal.size_bytes wal < 100 then Alcotest.fail "size too small";
  Pagestore.Wal.truncate wal ~upto_lsn:(Pagestore.Wal.next_lsn wal);
  check Alcotest.int "empty after truncate" 0 (Pagestore.Wal.size_bytes wal)

(* -------------------------------------------------------------------- *)
(* Store streams *)

let test_stream_write_read () =
  let store = mk_store ~page_size:128 () in
  let region = Pagestore.Store.allocate_region store ~pages:4 in
  let ws = Pagestore.Store.open_write_stream store region in
  for i = 0 to 3 do
    let page = Bytes.make 128 (Char.chr (65 + i)) in
    ignore (Pagestore.Store.stream_write ws page)
  done;
  let rs =
    Pagestore.Store.open_read_stream store
      ~start:region.Pagestore.Region_allocator.start ~length:4
  in
  let count = ref 0 in
  let rec go () =
    match Pagestore.Store.stream_read rs with
    | None -> ()
    | Some b ->
        check Alcotest.char "page content" (Char.chr (65 + !count)) (Bytes.get b 0);
        incr count;
        go ()
  in
  go ();
  check Alcotest.int "pages read" 4 !count

let test_stream_costs_are_sequential () =
  let store = mk_store ~page_size:4096 () in
  let disk = Pagestore.Store.disk store in
  let region = Pagestore.Store.allocate_region store ~pages:100 in
  let ws = Pagestore.Store.open_write_stream store region in
  let before = Simdisk.Disk.snapshot disk in
  let page = Bytes.make 4096 'p' in
  for _ = 1 to 100 do
    ignore (Pagestore.Store.stream_write ws page)
  done;
  let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
  (* one positioning write, rest sequential *)
  check Alcotest.int "one random write" 1 d.Simdisk.Disk.random_writes;
  check Alcotest.int "rest sequential" (99 * 4096) d.Simdisk.Disk.seq_write_bytes

let test_stream_overflow_rejected () =
  let store = mk_store () in
  let region = Pagestore.Store.allocate_region store ~pages:1 in
  let ws = Pagestore.Store.open_write_stream store region in
  let page = Bytes.make 256 'x' in
  ignore (Pagestore.Store.stream_write ws page);
  (match Pagestore.Store.stream_write ws page with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected overflow failure")

let test_commit_root_roundtrip () =
  let store = mk_store () in
  Pagestore.Store.commit_root store "metadata-blob-v1";
  Pagestore.Store.crash store;
  check Alcotest.string "root survives crash" "metadata-blob-v1"
    (Pagestore.Store.read_root store)

let test_free_region_drops_pages () =
  let store = mk_store () in
  let region = Pagestore.Store.allocate_region store ~pages:2 in
  let ws = Pagestore.Store.open_write_stream store region in
  ignore (Pagestore.Store.stream_write ws (Bytes.make 256 'x'));
  let before = Pagestore.Store.stored_bytes store in
  Pagestore.Store.free_region store region;
  if Pagestore.Store.stored_bytes store >= before then
    Alcotest.fail "platter space not reclaimed"

let () =
  Alcotest.run "pagestore"
    [
      ( "region_allocator",
        [
          Alcotest.test_case "contiguous" `Quick test_alloc_contiguous;
          Alcotest.test_case "reuse after free" `Quick test_alloc_reuse_after_free;
          Alcotest.test_case "coalesce" `Quick test_alloc_coalesce;
          Alcotest.test_case "free accounting" `Quick test_alloc_free_pages_accounting;
          Alcotest.test_case "rejects empty" `Quick test_alloc_rejects_empty;
          QCheck_alcotest.to_alcotest prop_alloc_no_overlap;
          QCheck_alcotest.to_alcotest prop_alloc_free_alloc_cycles;
        ] );
      ( "platter",
        [
          Alcotest.test_case "roundtrip" `Quick test_platter_roundtrip;
          Alcotest.test_case "absent zero" `Quick test_platter_absent_reads_zero;
          Alcotest.test_case "write isolated" `Quick test_platter_write_isolated;
        ] );
      ( "buffer_manager",
        [
          Alcotest.test_case "caches hot page" `Quick test_buffer_caches_hot_page;
          Alcotest.test_case "eviction writes back" `Quick test_buffer_eviction_writes_back;
          Alcotest.test_case "miss costs seek" `Quick test_buffer_miss_costs_seek;
          Alcotest.test_case "crash loses dirty" `Quick test_buffer_crash_loses_dirty;
          Alcotest.test_case "force survives crash" `Quick test_buffer_force_survives_crash;
          Alcotest.test_case "flush all" `Quick test_buffer_flush_all;
          Alcotest.test_case "clock keeps referenced" `Quick test_buffer_clock_keeps_referenced;
          Alcotest.test_case "no space leak" `Quick test_no_space_leak;
          QCheck_alcotest.to_alcotest prop_buffer_model;
        ] );
      ( "wal",
        [
          Alcotest.test_case "append/replay" `Quick test_wal_append_replay;
          Alcotest.test_case "truncate" `Quick test_wal_truncate;
          Alcotest.test_case "replay from lsn" `Quick test_wal_replay_from_lsn;
          Alcotest.test_case "none durability" `Quick test_wal_none_durability_drops;
          Alcotest.test_case "size accounting" `Quick test_wal_size_accounting;
        ] );
      ( "store",
        [
          Alcotest.test_case "stream roundtrip" `Quick test_stream_write_read;
          Alcotest.test_case "stream costs" `Quick test_stream_costs_are_sequential;
          Alcotest.test_case "stream overflow" `Quick test_stream_overflow_rejected;
          Alcotest.test_case "commit root" `Quick test_commit_root_roundtrip;
          Alcotest.test_case "free region" `Quick test_free_region_drops_pages;
        ] );
    ]
