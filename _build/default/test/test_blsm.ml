(* bLSM tree tests: API behaviour, merge correctness across levels,
   model-based random workloads against a Map reference, Bloom/early-
   termination seek accounting, snowshovel semantics, scheduler latency
   bounds, and crash recovery. *)

let check = Alcotest.check

let mk_store ?(buffer_pages = 256) ?(page_size = 4096) ?(durability = Pagestore.Wal.Full) () =
  Pagestore.Store.create
    ~config:
      { Pagestore.Store.cfg_page_size = page_size;
        cfg_buffer_pages = buffer_pages;
        cfg_durability = durability }
    Simdisk.Profile.ssd_raid0

(* A small tree: 32 KB C0 so merges happen after a handful of writes. *)
let small_config ?(scheduler = Blsm.Config.Spring) ?(snowshovel = true)
    ?(bloom = 10) ?(early = true) () =
  {
    Blsm.Config.default with
    Blsm.Config.c0_bytes = 32 * 1024;
    size_ratio = Blsm.Config.Fixed 4.0;
    bloom_bits_per_key = bloom;
    scheduler;
    snowshovel;
    early_termination = early;
    extent_pages = 16;
    max_quota_per_write = 256 * 1024;
  }

let mk_tree ?config () =
  let config = match config with Some c -> c | None -> small_config () in
  Blsm.Tree.create ~config (mk_store ())

let value i = Printf.sprintf "value-%06d-%s" i (String.make 80 'x')

(* -------------------------------------------------------------------- *)
(* Basic API *)

let test_put_get () =
  let t = mk_tree () in
  Blsm.Tree.put t "alpha" "1";
  Blsm.Tree.put t "beta" "2";
  check (Alcotest.option Alcotest.string) "get alpha" (Some "1") (Blsm.Tree.get t "alpha");
  check (Alcotest.option Alcotest.string) "get beta" (Some "2") (Blsm.Tree.get t "beta");
  check (Alcotest.option Alcotest.string) "missing" None (Blsm.Tree.get t "gamma")

let test_overwrite () =
  let t = mk_tree () in
  Blsm.Tree.put t "k" "v1";
  Blsm.Tree.put t "k" "v2";
  check (Alcotest.option Alcotest.string) "latest" (Some "v2") (Blsm.Tree.get t "k")

let test_delete () =
  let t = mk_tree () in
  Blsm.Tree.put t "k" "v";
  Blsm.Tree.delete t "k";
  check (Alcotest.option Alcotest.string) "deleted" None (Blsm.Tree.get t "k");
  (* delete of a missing key is a blind write, not an error *)
  Blsm.Tree.delete t "nope";
  check (Alcotest.option Alcotest.string) "still missing" None (Blsm.Tree.get t "nope")

let test_delta () =
  let t = mk_tree () in
  Blsm.Tree.put t "k" "base";
  Blsm.Tree.apply_delta t "k" "+d1";
  Blsm.Tree.apply_delta t "k" "+d2";
  check (Alcotest.option Alcotest.string) "resolved" (Some "base+d1+d2")
    (Blsm.Tree.get t "k");
  (* delta on a missing key resolves against nothing *)
  Blsm.Tree.apply_delta t "fresh" "x";
  check (Alcotest.option Alcotest.string) "orphan delta" (Some "x")
    (Blsm.Tree.get t "fresh")

let test_read_modify_write () =
  let t = mk_tree () in
  Blsm.Tree.put t "ctr" "5";
  Blsm.Tree.read_modify_write t "ctr" (function
    | Some v -> string_of_int (int_of_string v + 1)
    | None -> "0");
  check (Alcotest.option Alcotest.string) "incremented" (Some "6") (Blsm.Tree.get t "ctr")

let test_insert_if_absent () =
  let t = mk_tree () in
  check Alcotest.bool "fresh insert" true (Blsm.Tree.insert_if_absent t "k" "v1");
  check Alcotest.bool "duplicate rejected" false (Blsm.Tree.insert_if_absent t "k" "v2");
  check (Alcotest.option Alcotest.string) "original kept" (Some "v1") (Blsm.Tree.get t "k")

let test_write_batch () =
  let t = mk_tree () in
  Blsm.Tree.put t "kill" "me";
  Blsm.Tree.write_batch t
    [
      ("acct:a", Kv.Entry.Base "90");
      ("acct:b", Kv.Entry.Base "110");
      ("kill", Kv.Entry.Tombstone);
      ("audit", Kv.Entry.Delta [ "transfer:10" ]);
    ];
  check (Alcotest.option Alcotest.string) "a" (Some "90") (Blsm.Tree.get t "acct:a");
  check (Alcotest.option Alcotest.string) "b" (Some "110") (Blsm.Tree.get t "acct:b");
  check (Alcotest.option Alcotest.string) "deleted in batch" None (Blsm.Tree.get t "kill");
  check (Alcotest.option Alcotest.string) "delta in batch" (Some "transfer:10")
    (Blsm.Tree.get t "audit");
  (* later entries for the same key win *)
  Blsm.Tree.write_batch t [ ("dup", Kv.Entry.Base "first"); ("dup", Kv.Entry.Base "second") ];
  check (Alcotest.option Alcotest.string) "order" (Some "second") (Blsm.Tree.get t "dup");
  (* empty batch is a no-op *)
  Blsm.Tree.write_batch t []

let test_write_batch_atomic_across_crash () =
  let t = mk_tree () in
  for round = 0 to 49 do
    Blsm.Tree.write_batch t
      [
        (Printf.sprintf "x:%03d" round, Kv.Entry.Base (string_of_int round));
        (Printf.sprintf "y:%03d" round, Kv.Entry.Base (string_of_int round));
      ]
  done;
  let t = Blsm.Tree.crash_and_recover t in
  (* both halves of every batch recovered, never one side only *)
  for round = 0 to 49 do
    let x = Blsm.Tree.get t (Printf.sprintf "x:%03d" round) in
    let y = Blsm.Tree.get t (Printf.sprintf "y:%03d" round) in
    if x <> y then Alcotest.failf "batch %d torn: x=%s y=%s" round
        (Option.value x ~default:"<none>") (Option.value y ~default:"<none>");
    if x = None then Alcotest.failf "batch %d lost" round
  done

let test_scan_basic () =
  let t = mk_tree () in
  for i = 0 to 19 do
    Blsm.Tree.put t (Printf.sprintf "k%03d" i) (string_of_int i)
  done;
  let out = Blsm.Tree.scan t "k005" 5 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "range"
    [ ("k005", "5"); ("k006", "6"); ("k007", "7"); ("k008", "8"); ("k009", "9") ]
    out;
  check Alcotest.int "short tail" 2 (List.length (Blsm.Tree.scan t "k018" 10));
  check Alcotest.int "empty past end" 0 (List.length (Blsm.Tree.scan t "z" 10))

let test_scan_skips_tombstones () =
  let t = mk_tree () in
  for i = 0 to 9 do
    Blsm.Tree.put t (Printf.sprintf "k%d" i) "v"
  done;
  Blsm.Tree.delete t "k3";
  Blsm.Tree.delete t "k4";
  let keys = List.map fst (Blsm.Tree.scan t "k0" 100) in
  check (Alcotest.list Alcotest.string) "live keys"
    [ "k0"; "k1"; "k2"; "k5"; "k6"; "k7"; "k8"; "k9" ]
    keys

(* -------------------------------------------------------------------- *)
(* Across merges: write enough to push data through C1 and C2 *)

let load t n =
  for i = 0 to n - 1 do
    Blsm.Tree.put t (Repro_util.Keygen.key_of_id i) (value i)
  done

let test_data_survives_merges () =
  let t = mk_tree () in
  load t 2000;
  Blsm.Tree.flush t;
  let levels = Blsm.Tree.levels t in
  check Alcotest.bool "multiple levels exist" true (List.length levels >= 2);
  (* every record still readable *)
  for i = 0 to 1999 do
    match Blsm.Tree.get t (Repro_util.Keygen.key_of_id i) with
    | Some v when v = value i -> ()
    | Some _ -> Alcotest.failf "wrong value for %d" i
    | None -> Alcotest.failf "lost key %d" i
  done

let test_overwrites_survive_merges () =
  let t = mk_tree () in
  load t 1000;
  for i = 0 to 999 do
    if i mod 3 = 0 then Blsm.Tree.put t (Repro_util.Keygen.key_of_id i) "fresh"
  done;
  Blsm.Tree.flush t;
  for i = 0 to 999 do
    let expected = if i mod 3 = 0 then "fresh" else value i in
    match Blsm.Tree.get t (Repro_util.Keygen.key_of_id i) with
    | Some v when v = expected -> ()
    | _ -> Alcotest.failf "bad value after merge for %d" i
  done

let test_deletes_survive_merges () =
  let t = mk_tree () in
  load t 1000;
  for i = 0 to 999 do
    if i mod 5 = 0 then Blsm.Tree.delete t (Repro_util.Keygen.key_of_id i)
  done;
  Blsm.Tree.flush t;
  for i = 0 to 999 do
    let got = Blsm.Tree.get t (Repro_util.Keygen.key_of_id i) in
    if i mod 5 = 0 then check (Alcotest.option Alcotest.string) "deleted" None got
    else if got = None then Alcotest.failf "lost key %d" i
  done

let test_deltas_survive_merges () =
  let t = mk_tree () in
  (* interleave deltas with enough filler writes to force merges between
     base and delta placement *)
  Blsm.Tree.put t "acct" "100";
  load t 600;
  Blsm.Tree.apply_delta t "acct" "+1";
  load t 600;
  Blsm.Tree.apply_delta t "acct" "+2";
  Blsm.Tree.flush t;
  check (Alcotest.option Alcotest.string) "deltas composed across levels"
    (Some "100+1+2") (Blsm.Tree.get t "acct")

let test_timestamps_increase () =
  let t = mk_tree () in
  load t 2000;
  Blsm.Tree.flush t;
  let ts =
    List.filter_map
      (fun l ->
        if l.Blsm.Tree.level = "C0" then None else Some l.Blsm.Tree.level_timestamp)
      (Blsm.Tree.levels t)
  in
  List.iter (fun x -> if x <= 0 then Alcotest.fail "timestamp not set") ts;
  check Alcotest.bool "merges happened"
    true
    ((Blsm.Tree.stats t).Blsm.Tree.merge1_completions > 0)

let test_tombstones_elided_at_bottom () =
  let t = mk_tree () in
  load t 1500;
  for i = 0 to 1499 do
    Blsm.Tree.delete t (Repro_util.Keygen.key_of_id i)
  done;
  Blsm.Tree.flush t;
  (* push tombstones all the way down with more traffic *)
  for i = 2000 to 3500 do
    Blsm.Tree.put t (Repro_util.Keygen.key_of_id i) "v"
  done;
  Blsm.Tree.flush t;
  check Alcotest.int "all deleted invisible" 0
    (List.length
       (List.filter
          (fun i -> Blsm.Tree.get t (Repro_util.Keygen.key_of_id i) <> None)
          (List.init 1500 Fun.id)))

(* -------------------------------------------------------------------- *)
(* Model-based: random ops vs Map, checked across every scheduler *)

module SMap = Map.Make (String)

let model_test ~scheduler ~snowshovel ops () =
  let config = small_config ~scheduler ~snowshovel () in
  let t = mk_tree ~config () in
  let model = ref SMap.empty in
  let prng = Repro_util.Prng.of_int 7 in
  for step = 0 to ops - 1 do
    let key = Printf.sprintf "key%04d" (Repro_util.Prng.int prng 300) in
    (match Repro_util.Prng.int prng 10 with
    | 0 | 1 | 2 | 3 ->
        let v = Printf.sprintf "v%d-%s" step (String.make 40 'p') in
        Blsm.Tree.put t key v;
        model := SMap.add key v !model
    | 4 ->
        Blsm.Tree.delete t key;
        model := SMap.remove key !model
    | 5 ->
        let d = Printf.sprintf "+%d" step in
        Blsm.Tree.apply_delta t key d;
        model :=
          SMap.update key
            (function Some v -> Some (v ^ d) | None -> Some d)
            !model
    | 6 ->
        let got = Blsm.Tree.get t key in
        if got <> SMap.find_opt key !model then
          Alcotest.failf "step %d: get %s mismatch: got %s want %s" step key
            (Option.value got ~default:"<none>")
            (Option.value (SMap.find_opt key !model) ~default:"<none>")
    | 7 ->
        let n = 1 + Repro_util.Prng.int prng 10 in
        let got = Blsm.Tree.scan t key n in
        let expected =
          SMap.to_seq_from key !model |> Seq.take n |> List.of_seq
        in
        if got <> expected then
          Alcotest.failf "step %d: scan from %s mismatch (%d vs %d rows)" step
            key (List.length got) (List.length expected)
    | 8 ->
        let inserted = Blsm.Tree.insert_if_absent t key "iine" in
        let should = not (SMap.mem key !model) in
        if inserted <> should then
          Alcotest.failf "step %d: insert_if_absent %s wrong" step key;
        if should then model := SMap.add key "iine" !model
    | _ ->
        Blsm.Tree.read_modify_write t key (fun v ->
            let nv = Option.value v ~default:"" ^ "!" in
            model :=
              SMap.add key nv !model;
            nv))
    |> ignore
  done;
  (* final: full verification, then again after a flush *)
  let verify phase =
    SMap.iter
      (fun k v ->
        match Blsm.Tree.get t k with
        | Some got when got = v -> ()
        | got ->
            Alcotest.failf "%s: key %s: got %s want %s" phase k
              (Option.value got ~default:"<none>")
              v)
      !model;
    (* and scan equivalence over the whole space *)
    let got = Blsm.Tree.scan t "" 10_000 in
    if got <> SMap.bindings !model then
      Alcotest.failf "%s: full scan mismatch (%d vs %d)" phase
        (List.length got)
        (SMap.cardinal !model)
  in
  verify "pre-flush";
  Blsm.Tree.flush t;
  verify "post-flush"

(* -------------------------------------------------------------------- *)
(* Read amplification / Bloom behaviour *)

let test_bloom_zero_seek_absent_lookups () =
  let t = mk_tree () in
  load t 3000;
  Blsm.Tree.flush t;
  let disk = Blsm.Tree.disk t in
  let before = Simdisk.Disk.snapshot disk in
  let misses = ref 0 in
  for i = 0 to 499 do
    if Blsm.Tree.get t (Printf.sprintf "absent-%06d" i) <> None then ()
    else incr misses
  done;
  let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
  check Alcotest.int "all absent" 500 !misses;
  (* ~1% false positive rate: a handful of seeks at most *)
  if d.Simdisk.Disk.seeks > 25 then
    Alcotest.failf "absent lookups cost %d seeks (expected ~0)" d.Simdisk.Disk.seeks

let test_insert_if_absent_is_seek_free () =
  let t = mk_tree () in
  load t 3000;
  Blsm.Tree.flush t;
  let s0 = (Blsm.Tree.stats t).Blsm.Tree.checked_insert_seekfree in
  for i = 10_000 to 10_499 do
    ignore (Blsm.Tree.insert_if_absent t (Repro_util.Keygen.key_of_id i) "v")
  done;
  let s1 = (Blsm.Tree.stats t).Blsm.Tree.checked_insert_seekfree in
  if s1 - s0 < 480 then
    Alcotest.failf "only %d/500 checked inserts were seek-free" (s1 - s0)

let test_settled_reads_cost_one_seek () =
  let t = mk_tree () in
  load t 3000;
  Blsm.Tree.flush t;
  (* evict everything so reads are cold, then measure *)
  let disk = Blsm.Tree.disk t in
  let before = Simdisk.Disk.snapshot disk in
  let n = 200 in
  for i = 0 to n - 1 do
    ignore (Blsm.Tree.get t (Repro_util.Keygen.key_of_id (i * 7)))
  done;
  let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
  let per_read = float_of_int d.Simdisk.Disk.seeks /. float_of_int n in
  (* paper: 1 + N/100; allow cache hits to push it below 1 *)
  if per_read > 1.3 then Alcotest.failf "read amplification %.2f > 1.3" per_read

let test_blind_writes_are_seek_free () =
  let t = mk_tree () in
  load t 1000;
  Blsm.Tree.flush t;
  let disk = Blsm.Tree.disk t in
  let before = Simdisk.Disk.snapshot disk in
  for i = 5000 to 5199 do
    Blsm.Tree.put t (Repro_util.Keygen.key_of_id i) (value i)
  done;
  let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
  (* writes trigger merge I/O but no per-operation random reads; the only
     seeks allowed are the one-per-merge-run input positioning reads *)
  if d.Simdisk.Disk.seeks > 5 then
    Alcotest.failf "blind writes cost %d seeks over 200 ops" d.Simdisk.Disk.seeks

(* -------------------------------------------------------------------- *)
(* Snowshovel semantics *)

let test_snowshovel_sorted_input_streams () =
  (* sorted inserts: runs consume far more than one C0's worth *)
  let config = small_config ~scheduler:Blsm.Config.Spring ~snowshovel:true () in
  let t = mk_tree ~config () in
  for i = 0 to 4999 do
    Blsm.Tree.put t (Repro_util.Keygen.ordered_key_of_id i) (value i)
  done;
  Blsm.Tree.flush t;
  let s = Blsm.Tree.stats t in
  (* sorted input -> long runs -> few C0:C1 merges relative to data moved *)
  if s.Blsm.Tree.merge1_completions = 0 then Alcotest.fail "no merges at all";
  for i = 0 to 4999 do
    if Blsm.Tree.get t (Repro_util.Keygen.ordered_key_of_id i) = None then
      Alcotest.failf "lost sorted key %d" i
  done

let test_mid_merge_reads_see_consumed_entries () =
  (* force a merge to be mid-flight, then read keys that were consumed
     from C0 into the shadow *)
  let config = small_config () in
  let t = mk_tree ~config () in
  load t 400;
  (* writes paced the merge partially; do not flush *)
  let ok = ref 0 in
  for i = 0 to 399 do
    if Blsm.Tree.get t (Repro_util.Keygen.key_of_id i) = Some (value i) then incr ok
  done;
  check Alcotest.int "every key readable mid-merge" 400 !ok

(* -------------------------------------------------------------------- *)
(* Scheduler behaviour *)

let insert_latencies config n =
  let t = mk_tree ~config () in
  let disk = Blsm.Tree.disk t in
  let lat = Repro_util.Histogram.create () in
  for i = 0 to n - 1 do
    let t0 = Simdisk.Disk.now_us disk in
    Blsm.Tree.put t (Repro_util.Keygen.key_of_id i) (value i);
    Repro_util.Histogram.add lat (int_of_float (Simdisk.Disk.now_us disk -. t0))
  done;
  (t, lat)

let test_spring_bounds_latency_vs_naive () =
  let n = 6000 in
  let _, spring = insert_latencies (small_config ~scheduler:Blsm.Config.Spring ()) n in
  let _, naive = insert_latencies (small_config ~scheduler:Blsm.Config.Naive ()) n in
  let spring_max = Repro_util.Histogram.max_value spring in
  let naive_max = Repro_util.Histogram.max_value naive in
  if naive_max < 4 * spring_max then
    Alcotest.failf "expected naive max >> spring max (naive=%dus spring=%dus)"
      naive_max spring_max

let test_gear_bounds_latency_vs_naive () =
  let n = 6000 in
  let _, gear =
    insert_latencies
      (small_config ~scheduler:Blsm.Config.Gear ~snowshovel:false ())
      n
  in
  let _, naive = insert_latencies (small_config ~scheduler:Blsm.Config.Naive ()) n in
  if Repro_util.Histogram.max_value naive < 2 * Repro_util.Histogram.max_value gear
  then
    Alcotest.failf "expected naive max >> gear max (naive=%d gear=%d)"
      (Repro_util.Histogram.max_value naive)
      (Repro_util.Histogram.max_value gear)

let test_spring_avoids_hard_stalls_uniform () =
  let t, _ = insert_latencies (small_config ~scheduler:Blsm.Config.Spring ()) 6000 in
  let s = Blsm.Tree.stats t in
  if s.Blsm.Tree.hard_stalls > 2 then
    Alcotest.failf "spring hit the hard limit %d times" s.Blsm.Tree.hard_stalls

let test_naive_hits_hard_stalls () =
  let t, _ = insert_latencies (small_config ~scheduler:Blsm.Config.Naive ()) 6000 in
  let s = Blsm.Tree.stats t in
  if s.Blsm.Tree.hard_stalls = 0 then
    Alcotest.fail "naive scheduler should hit the C0 hard limit"

let test_outprogress_formula () =
  (* §4.1: floor term counts completed sweeps; bounded to [0,1] *)
  let v =
    Blsm.Scheduler.outprogress ~inprogress:0.5 ~ci_bytes:3000 ~ram_bytes:1000 ~r:4.0
  in
  check (Alcotest.float 0.001) "(0.5+3)/4" 0.875 v;
  let v = Blsm.Scheduler.outprogress ~inprogress:0.0 ~ci_bytes:0 ~ram_bytes:1000 ~r:4.0 in
  check (Alcotest.float 0.001) "empty" 0.0 v;
  let v = Blsm.Scheduler.outprogress ~inprogress:1.0 ~ci_bytes:9000 ~ram_bytes:1000 ~r:4.0 in
  check (Alcotest.float 0.001) "clamped" 1.0 v

let prop_spring_quota_monotone_in_fill =
  QCheck.Test.make ~name:"spring quota rises with fill" ~count:200
    QCheck.(pair (float_range 0.31 0.85) (float_range 0.0 0.04))
    (fun (fill, bump) ->
      let q f =
        Blsm.Scheduler.spring_quota ~write_bytes:1000 ~fill:f ~low:0.3 ~high:0.9
          ~remaining_bytes:1_000_000 ~c0_capacity:1_000_000
      in
      q (fill +. bump) >= q fill)

let prop_spring_quota_zero_below_low =
  QCheck.Test.make ~name:"spring pauses below low watermark" ~count:100
    QCheck.(float_range 0.0 0.3)
    (fun fill ->
      Blsm.Scheduler.spring_quota ~write_bytes:1000 ~fill ~low:0.3 ~high:0.9
        ~remaining_bytes:1_000_000 ~c0_capacity:1_000_000
      = 0)

(* -------------------------------------------------------------------- *)
(* Recovery *)

let test_recovery_replays_c0 () =
  let t = mk_tree () in
  Blsm.Tree.put t "a" "1";
  Blsm.Tree.put t "b" "2";
  let t' = Blsm.Tree.crash_and_recover t in
  check (Alcotest.option Alcotest.string) "a" (Some "1") (Blsm.Tree.get t' "a");
  check (Alcotest.option Alcotest.string) "b" (Some "2") (Blsm.Tree.get t' "b")

let test_recovery_after_merges () =
  let t = mk_tree () in
  load t 2000;
  for i = 0 to 99 do
    Blsm.Tree.delete t (Repro_util.Keygen.key_of_id i)
  done;
  Blsm.Tree.apply_delta t (Repro_util.Keygen.key_of_id 500) "+post";
  let t' = Blsm.Tree.crash_and_recover t in
  for i = 100 to 1999 do
    let expected = if i = 500 then Some (value i ^ "+post") else Some (value i) in
    if Blsm.Tree.get t' (Repro_util.Keygen.key_of_id i) <> expected then
      Alcotest.failf "key %d wrong after recovery" i
  done;
  for i = 0 to 99 do
    if Blsm.Tree.get t' (Repro_util.Keygen.key_of_id i) <> None then
      Alcotest.failf "deleted key %d resurrected" i
  done

let test_recovery_mid_merge () =
  (* crash with merges in flight: uncommitted output must be rolled back
     and every write still recovered from root + WAL *)
  let t = mk_tree () in
  load t 1500;
  (* no flush: merge1/merge2 likely active *)
  let t' = Blsm.Tree.crash_and_recover t in
  for i = 0 to 1499 do
    match Blsm.Tree.get t' (Repro_util.Keygen.key_of_id i) with
    | Some v when v = value i -> ()
    | _ -> Alcotest.failf "key %d lost in mid-merge crash" i
  done;
  (* and the recovered tree keeps working *)
  load t' 2000;
  Blsm.Tree.flush t';
  check (Alcotest.option Alcotest.string) "writable after recovery"
    (Some (value 1999))
    (Blsm.Tree.get t' (Repro_util.Keygen.key_of_id 1999))

let test_recovery_degraded_durability () =
  (* paper §4.4.2: without logging, recent updates are lost but the tree
     recovers to a well-defined earlier point *)
  let store = mk_store ~durability:Pagestore.Wal.None_ () in
  let t = Blsm.Tree.create ~config:(small_config ()) store in
  load t 1500;
  Blsm.Tree.flush t;
  Blsm.Tree.put t "after-flush" "gone";
  let t' = Blsm.Tree.crash_and_recover t in
  check (Alcotest.option Alcotest.string) "unlogged write lost" None
    (Blsm.Tree.get t' "after-flush");
  (* flushed data survives *)
  check Alcotest.bool "flushed data present" true
    (Blsm.Tree.get t' (Repro_util.Keygen.key_of_id 10) <> None)

let test_persisted_bloom_recovery () =
  (* §4.4.3 trade-off: with persist_bloom, recovery reads the filters
     back (1.25 B/key) instead of rescanning every component *)
  let recovery_read_bytes persist =
    let config = { (small_config ()) with Blsm.Config.persist_bloom = persist } in
    let t = Blsm.Tree.create ~config (mk_store ()) in
    load t 2000;
    Blsm.Tree.flush t;
    let disk = Blsm.Tree.disk t in
    let before = Simdisk.Disk.snapshot disk in
    let t' = Blsm.Tree.crash_and_recover t in
    let d = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk) in
    (* recovered filters still answer absent lookups for free *)
    let b0 = Simdisk.Disk.snapshot disk in
    for i = 0 to 199 do
      ignore (Blsm.Tree.get t' (Printf.sprintf "nothere%06d" i))
    done;
    let miss_seeks =
      (Simdisk.Disk.diff b0 (Simdisk.Disk.snapshot disk)).Simdisk.Disk.seeks
    in
    if miss_seeks > 10 then
      Alcotest.failf "bloom not functional after recovery (persist=%b): %d seeks"
        persist miss_seeks;
    (* and data is intact *)
    if Blsm.Tree.get t' (Repro_util.Keygen.key_of_id 77) = None then
      Alcotest.fail "data lost";
    d.Simdisk.Disk.seq_read_bytes
  in
  let rebuild = recovery_read_bytes false in
  let persisted = recovery_read_bytes true in
  if persisted * 2 > rebuild then
    Alcotest.failf
      "persisted-bloom recovery should read far less (persisted=%dB rebuild=%dB)"
      persisted rebuild

let test_wal_truncation_bounded () =
  let t = mk_tree () in
  load t 4000;
  Blsm.Tree.flush t;
  let wal = Pagestore.Store.wal (Blsm.Tree.store t) in
  (* after a full flush the log should be (nearly) empty *)
  if Pagestore.Wal.size_bytes wal > 4096 then
    Alcotest.failf "WAL not truncated: %d bytes" (Pagestore.Wal.size_bytes wal)

(* -------------------------------------------------------------------- *)

let () =
  Alcotest.run "blsm"
    [
      ( "api",
        [
          Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "overwrite" `Quick test_overwrite;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "delta" `Quick test_delta;
          Alcotest.test_case "read-modify-write" `Quick test_read_modify_write;
          Alcotest.test_case "insert-if-absent" `Quick test_insert_if_absent;
          Alcotest.test_case "write batch" `Quick test_write_batch;
          Alcotest.test_case "batch atomic across crash" `Quick test_write_batch_atomic_across_crash;
          Alcotest.test_case "scan" `Quick test_scan_basic;
          Alcotest.test_case "scan skips tombstones" `Quick test_scan_skips_tombstones;
        ] );
      ( "merges",
        [
          Alcotest.test_case "data survives" `Quick test_data_survives_merges;
          Alcotest.test_case "overwrites survive" `Quick test_overwrites_survive_merges;
          Alcotest.test_case "deletes survive" `Quick test_deletes_survive_merges;
          Alcotest.test_case "deltas survive" `Quick test_deltas_survive_merges;
          Alcotest.test_case "timestamps" `Quick test_timestamps_increase;
          Alcotest.test_case "tombstones elided" `Quick test_tombstones_elided_at_bottom;
        ] );
      ( "model",
        [
          Alcotest.test_case "spring+snowshovel" `Quick
            (model_test ~scheduler:Blsm.Config.Spring ~snowshovel:true 3000);
          Alcotest.test_case "gear+frozen" `Quick
            (model_test ~scheduler:Blsm.Config.Gear ~snowshovel:false 3000);
          Alcotest.test_case "naive" `Quick
            (model_test ~scheduler:Blsm.Config.Naive ~snowshovel:true 3000);
        ] );
      ( "read_amplification",
        [
          Alcotest.test_case "bloom absent lookups" `Quick test_bloom_zero_seek_absent_lookups;
          Alcotest.test_case "insert-if-absent seek-free" `Quick test_insert_if_absent_is_seek_free;
          Alcotest.test_case "settled reads ~1 seek" `Quick test_settled_reads_cost_one_seek;
          Alcotest.test_case "blind writes seek-free" `Quick test_blind_writes_are_seek_free;
        ] );
      ( "snowshovel",
        [
          Alcotest.test_case "sorted input streams" `Quick test_snowshovel_sorted_input_streams;
          Alcotest.test_case "mid-merge reads" `Quick test_mid_merge_reads_see_consumed_entries;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "spring bounds latency" `Quick test_spring_bounds_latency_vs_naive;
          Alcotest.test_case "gear bounds latency" `Quick test_gear_bounds_latency_vs_naive;
          Alcotest.test_case "spring avoids hard stalls" `Quick test_spring_avoids_hard_stalls_uniform;
          Alcotest.test_case "naive hits hard stalls" `Quick test_naive_hits_hard_stalls;
          Alcotest.test_case "outprogress formula" `Quick test_outprogress_formula;
          QCheck_alcotest.to_alcotest prop_spring_quota_monotone_in_fill;
          QCheck_alcotest.to_alcotest prop_spring_quota_zero_below_low;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "replays C0" `Quick test_recovery_replays_c0;
          Alcotest.test_case "after merges" `Quick test_recovery_after_merges;
          Alcotest.test_case "mid-merge crash" `Quick test_recovery_mid_merge;
          Alcotest.test_case "degraded durability" `Quick test_recovery_degraded_durability;
          Alcotest.test_case "wal truncation" `Quick test_wal_truncation_bounded;
          Alcotest.test_case "persisted bloom recovery" `Quick test_persisted_bloom_recovery;
        ] );
    ]
