(* Log-shipping replication tests: incremental catch-up, exactly-once
   delta application, truncation -> snapshot resync, follower crash
   recovery, failover, and a randomized end-to-end property comparing
   follower state to the primary. *)

let check = Alcotest.check
module SMap = Map.Make (String)

let mk_store () =
  Pagestore.Store.create
    ~config:
      { Pagestore.Store.cfg_page_size = 4096;
        cfg_buffer_pages = 128;
        cfg_durability = Pagestore.Wal.Full }
    Simdisk.Profile.ssd_raid0

let config =
  {
    Blsm.Config.default with
    Blsm.Config.c0_bytes = 32 * 1024;
    size_ratio = Blsm.Config.Fixed 3.0;
    extent_pages = 8;
  }

let mk_primary () = Blsm.Tree.create ~config (mk_store ())
let mk_follower () = Blsm.Replication.follower ~config (mk_store ())

(* user-visible rows (the follower also stores its position record under
   the reserved "\000" prefix) *)
let user_rows tree =
  List.filter (fun (k, _) -> k = "" || k.[0] <> '\000') (Blsm.Tree.scan tree "" 100_000)

let assert_same_state primary follower_tree =
  let p = user_rows primary and f = user_rows follower_tree in
  if p <> f then
    Alcotest.failf "states diverge: primary %d rows, follower %d rows"
      (List.length p) (List.length f)

let test_basic_catch_up () =
  let p = mk_primary () in
  let f = mk_follower () in
  Blsm.Tree.put p "a" "1";
  Blsm.Tree.put p "b" "2";
  Blsm.Tree.apply_delta p "a" "+x";
  Blsm.Tree.delete p "b";
  (match Blsm.Replication.catch_up f ~primary:p with
  | `Applied 4 -> ()
  | `Applied n -> Alcotest.failf "expected 4 applied, got %d" n
  | `Snapshot_needed -> Alcotest.fail "unexpected snapshot request");
  let ft = Blsm.Replication.tree f in
  check (Alcotest.option Alcotest.string) "a with delta" (Some "1+x")
    (Blsm.Tree.get ft "a");
  check (Alcotest.option Alcotest.string) "b deleted" None (Blsm.Tree.get ft "b");
  assert_same_state p ft

let test_incremental_exactly_once () =
  let p = mk_primary () in
  let f = mk_follower () in
  Blsm.Tree.put p "k" "base";
  ignore (Blsm.Replication.catch_up f ~primary:p);
  (* no new records: repeated catch-up applies nothing (deltas would
     double otherwise) *)
  (match Blsm.Replication.catch_up f ~primary:p with
  | `Applied 0 -> ()
  | _ -> Alcotest.fail "re-catch-up applied something");
  Blsm.Tree.apply_delta p "k" "+1";
  ignore (Blsm.Replication.catch_up f ~primary:p);
  ignore (Blsm.Replication.catch_up f ~primary:p);
  check (Alcotest.option Alcotest.string) "delta applied exactly once"
    (Some "base+1")
    (Blsm.Tree.get (Blsm.Replication.tree f) "k")

let test_lag_accounting () =
  let p = mk_primary () in
  let f = mk_follower () in
  for i = 0 to 9 do
    Blsm.Tree.put p (string_of_int i) "v"
  done;
  check Alcotest.int "lag 10" 10 (Blsm.Replication.lag f ~primary:p);
  ignore (Blsm.Replication.catch_up f ~primary:p);
  check Alcotest.int "lag 0" 0 (Blsm.Replication.lag f ~primary:p)

let test_truncation_forces_resync () =
  let p = mk_primary () in
  let f = mk_follower () in
  (* write enough that merges truncate the primary's WAL *)
  for i = 0 to 2999 do
    Blsm.Tree.put p (Repro_util.Keygen.key_of_id i) (String.make 100 'v')
  done;
  Blsm.Tree.flush p;
  (match Blsm.Replication.catch_up f ~primary:p with
  | `Snapshot_needed -> ()
  | `Applied _ -> Alcotest.fail "expected snapshot-needed after truncation");
  Blsm.Replication.resync f ~primary:p;
  assert_same_state p (Blsm.Replication.tree f);
  (* incremental tailing works after the bootstrap *)
  Blsm.Tree.put p "after-sync" "yes";
  (match Blsm.Replication.catch_up f ~primary:p with
  | `Applied 1 -> ()
  | `Applied n -> Alcotest.failf "expected 1, got %d" n
  | `Snapshot_needed -> Alcotest.fail "snapshot after resync?");
  check (Alcotest.option Alcotest.string) "tailing live" (Some "yes")
    (Blsm.Tree.get (Blsm.Replication.tree f) "after-sync")

let test_follower_crash_recovery () =
  let p = mk_primary () in
  let f = mk_follower () in
  Blsm.Tree.put p "a" "1";
  Blsm.Tree.apply_delta p "a" "+x";
  ignore (Blsm.Replication.catch_up f ~primary:p);
  let f = Blsm.Replication.crash_and_recover f in
  (* position recovered with the data: no re-application *)
  (match Blsm.Replication.catch_up f ~primary:p with
  | `Applied 0 -> ()
  | `Applied n -> Alcotest.failf "re-applied %d after crash" n
  | `Snapshot_needed -> Alcotest.fail "snapshot after crash?");
  check (Alcotest.option Alcotest.string) "delta not doubled" (Some "1+x")
    (Blsm.Tree.get (Blsm.Replication.tree f) "a");
  (* new primary writes still flow *)
  Blsm.Tree.put p "b" "2";
  ignore (Blsm.Replication.catch_up f ~primary:p);
  check (Alcotest.option Alcotest.string) "caught up" (Some "2")
    (Blsm.Tree.get (Blsm.Replication.tree f) "b")

let test_failover () =
  let p = mk_primary () in
  let f = mk_follower () in
  Blsm.Tree.put p "user:1" "alice";
  ignore (Blsm.Replication.catch_up f ~primary:p);
  (* primary dies; follower becomes primary *)
  let t = Blsm.Replication.tree f in
  Blsm.Tree.put t "user:2" "bob";
  check (Alcotest.option Alcotest.string) "replicated data" (Some "alice")
    (Blsm.Tree.get t "user:1");
  check (Alcotest.option Alcotest.string) "new writes" (Some "bob")
    (Blsm.Tree.get t "user:2")

let prop_replication_converges =
  QCheck.Test.make ~name:"follower converges to primary under random ops"
    ~count:25
    QCheck.(pair small_int (int_range 1 10))
    (fun (seed, batch) ->
      let p = mk_primary () in
      let f = mk_follower () in
      let prng = Repro_util.Prng.of_int (seed + 7) in
      let ok = ref true in
      for i = 0 to 599 do
        let key = Printf.sprintf "k%03d" (Repro_util.Prng.int prng 120) in
        (match Repro_util.Prng.int prng 5 with
        | 0 | 1 | 2 -> Blsm.Tree.put p key (Printf.sprintf "v%d" i)
        | 3 -> Blsm.Tree.delete p key
        | _ -> Blsm.Tree.apply_delta p key "+d");
        if i mod batch = 0 then
          match Blsm.Replication.catch_up f ~primary:p with
          | `Applied _ -> ()
          | `Snapshot_needed -> Blsm.Replication.resync f ~primary:p
      done;
      (match Blsm.Replication.catch_up f ~primary:p with
      | `Applied _ -> ()
      | `Snapshot_needed -> Blsm.Replication.resync f ~primary:p);
      if user_rows p <> user_rows (Blsm.Replication.tree f) then ok := false;
      !ok)

let () =
  Alcotest.run "replication"
    [
      ( "replication",
        [
          Alcotest.test_case "basic catch-up" `Quick test_basic_catch_up;
          Alcotest.test_case "exactly once" `Quick test_incremental_exactly_once;
          Alcotest.test_case "lag" `Quick test_lag_accounting;
          Alcotest.test_case "truncation -> resync" `Quick test_truncation_forces_resync;
          Alcotest.test_case "follower crash" `Quick test_follower_crash_recovery;
          Alcotest.test_case "failover" `Quick test_failover;
          QCheck_alcotest.to_alcotest prop_replication_converges;
        ] );
    ]
