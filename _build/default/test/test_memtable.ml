(* Skip list and memtable (C0) tests: model-based checks against Stdlib.Map,
   ordered iteration, successor queries, snowshovel consumption, byte
   accounting and LSN tracking. *)

let check = Alcotest.check

module SMap = Map.Make (String)
module Skiplist = Memtable.Skiplist

(* -------------------------------------------------------------------- *)
(* Skiplist *)

let test_skiplist_basic () =
  let sl = Skiplist.create () in
  Skiplist.set sl "b" 2;
  Skiplist.set sl "a" 1;
  Skiplist.set sl "c" 3;
  check (Alcotest.option Alcotest.int) "find a" (Some 1) (Skiplist.find sl "a");
  check (Alcotest.option Alcotest.int) "find missing" None (Skiplist.find sl "zz");
  check Alcotest.int "length" 3 (Skiplist.length sl);
  Skiplist.set sl "a" 10;
  check (Alcotest.option Alcotest.int) "overwrite" (Some 10) (Skiplist.find sl "a");
  check Alcotest.int "length unchanged" 3 (Skiplist.length sl)

let test_skiplist_ordered_iteration () =
  let sl = Skiplist.create () in
  List.iter (fun k -> Skiplist.set sl k ()) [ "d"; "a"; "c"; "b"; "e" ];
  let keys = List.map fst (Skiplist.to_list sl) in
  check (Alcotest.list Alcotest.string) "sorted" [ "a"; "b"; "c"; "d"; "e" ] keys

let test_skiplist_remove () =
  let sl = Skiplist.create () in
  List.iter (fun k -> Skiplist.set sl k k) [ "a"; "b"; "c" ];
  check (Alcotest.option Alcotest.string) "removed value" (Some "b")
    (Skiplist.remove sl "b");
  check (Alcotest.option Alcotest.string) "gone" None (Skiplist.find sl "b");
  check (Alcotest.option Alcotest.string) "remove missing" None
    (Skiplist.remove sl "b");
  check Alcotest.int "length" 2 (Skiplist.length sl)

let test_skiplist_succ_geq () =
  let sl = Skiplist.create () in
  List.iter (fun k -> Skiplist.set sl k ()) [ "b"; "d"; "f" ];
  let key_of = Option.map fst in
  check (Alcotest.option Alcotest.string) "exact" (Some "b")
    (key_of (Skiplist.succ_geq sl "b"));
  check (Alcotest.option Alcotest.string) "between" (Some "d")
    (key_of (Skiplist.succ_geq sl "c"));
  check (Alcotest.option Alcotest.string) "before all" (Some "b")
    (key_of (Skiplist.succ_geq sl "a"));
  check (Alcotest.option Alcotest.string) "past end" None
    (key_of (Skiplist.succ_geq sl "g"))

let test_skiplist_iter_from () =
  let sl = Skiplist.create () in
  List.iter (fun k -> Skiplist.set sl k ()) [ "a"; "b"; "c"; "d" ];
  let seen = ref [] in
  Skiplist.iter_from sl "b" (fun k () ->
      seen := k :: !seen;
      k <> "c" (* stop after c *));
  check (Alcotest.list Alcotest.string) "range" [ "b"; "c" ] (List.rev !seen)

(* Model-based property: a random op sequence applied to both the skiplist
   and Map yields identical contents. *)
let prop_skiplist_model =
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map (fun k -> `Set (string_of_int k)) (0 -- 50);
          map (fun k -> `Remove (string_of_int k)) (0 -- 50);
          map (fun k -> `Find (string_of_int k)) (0 -- 50);
        ])
  in
  QCheck.Test.make ~name:"skiplist vs Map model" ~count:200
    (QCheck.make QCheck.Gen.(list_size (1 -- 200) op_gen))
    (fun ops ->
      let sl = Skiplist.create () in
      let m = ref SMap.empty in
      let ok = ref true in
      List.iter
        (function
          | `Set k ->
              Skiplist.set sl k k;
              m := SMap.add k k !m
          | `Remove k ->
              let a = Skiplist.remove sl k in
              let b = SMap.find_opt k !m in
              m := SMap.remove k !m;
              if a <> b then ok := false
          | `Find k -> if Skiplist.find sl k <> SMap.find_opt k !m then ok := false)
        ops;
      !ok
      && Skiplist.to_list sl = SMap.bindings !m
      && Skiplist.length sl = SMap.cardinal !m)

let prop_skiplist_succ_matches_model =
  QCheck.Test.make ~name:"succ_geq vs Map model" ~count:200
    QCheck.(pair (list_of_size Gen.(0 -- 60) (int_range 0 99)) (int_range 0 99))
    (fun (keys, probe) ->
      let sl = Skiplist.create () in
      let m =
        List.fold_left
          (fun m k ->
            let s = Printf.sprintf "%02d" k in
            Skiplist.set sl s ();
            SMap.add s () m)
          SMap.empty keys
      in
      let probe = Printf.sprintf "%02d" probe in
      let expected = SMap.find_first_opt (fun k -> k >= probe) m in
      let actual = Skiplist.succ_geq sl probe in
      Option.map fst expected = Option.map fst actual)

(* -------------------------------------------------------------------- *)
(* Memtable *)

let resolver = Kv.Entry.append_resolver

let mk () = Memtable.create ~resolver ()

let entry_testable = Alcotest.testable Kv.Entry.pp Kv.Entry.equal

let test_memtable_write_get () =
  let t = mk () in
  Memtable.write t ~lsn:1 "k" (Kv.Entry.Base "v");
  check (Alcotest.option entry_testable) "get" (Some (Kv.Entry.Base "v"))
    (Memtable.get t "k");
  check (Alcotest.option entry_testable) "missing" None (Memtable.get t "nope")

let test_memtable_delta_composes_in_c0 () =
  let t = mk () in
  Memtable.write t ~lsn:1 "k" (Kv.Entry.Base "v");
  Memtable.write t ~lsn:2 "k" (Kv.Entry.Delta [ "+d" ]);
  check (Alcotest.option entry_testable) "composed" (Some (Kv.Entry.Base "v+d"))
    (Memtable.get t "k");
  (* delta with no base stays a delta *)
  Memtable.write t ~lsn:3 "j" (Kv.Entry.Delta [ "x" ]);
  Memtable.write t ~lsn:4 "j" (Kv.Entry.Delta [ "y" ]);
  check (Alcotest.option entry_testable) "delta chain"
    (Some (Kv.Entry.Delta [ "x"; "y" ]))
    (Memtable.get t "j")

let test_memtable_tombstone () =
  let t = mk () in
  Memtable.write t ~lsn:1 "k" (Kv.Entry.Base "v");
  Memtable.write t ~lsn:2 "k" Kv.Entry.Tombstone;
  check (Alcotest.option entry_testable) "tombstone visible"
    (Some Kv.Entry.Tombstone) (Memtable.get t "k")

let test_memtable_bytes_accounting () =
  let t = mk () in
  check Alcotest.int "empty" 0 (Memtable.bytes t);
  Memtable.write t ~lsn:1 "key" (Kv.Entry.Base (String.make 100 'v'));
  let b1 = Memtable.bytes t in
  if b1 < 100 then Alcotest.fail "bytes below payload";
  (* overwriting with a smaller value shrinks usage *)
  Memtable.write t ~lsn:2 "key" (Kv.Entry.Base "v");
  if Memtable.bytes t >= b1 then Alcotest.fail "overwrite did not shrink";
  ignore (Memtable.remove t "key");
  check Alcotest.int "empty after remove" 0 (Memtable.bytes t)

let test_memtable_consume_geq () =
  let t = mk () in
  List.iter
    (fun k -> Memtable.write t ~lsn:1 k (Kv.Entry.Base k))
    [ "b"; "d"; "f" ];
  (match Memtable.consume_geq t "c" with
  | Some ("d", _) -> ()
  | _ -> Alcotest.fail "expected d");
  check (Alcotest.option entry_testable) "d consumed" None (Memtable.get t "d");
  check Alcotest.int "two left" 2 (Memtable.count t);
  (* wrap: nothing >= g *)
  (match Memtable.consume_geq t "g" with
  | None -> ()
  | Some _ -> Alcotest.fail "expected wrap");
  (match Memtable.consume_min t with
  | Some ("b", _) -> ()
  | _ -> Alcotest.fail "expected b")

let test_memtable_oldest_lsn () =
  let t = mk () in
  check (Alcotest.option Alcotest.int) "empty" None (Memtable.oldest_lsn t);
  Memtable.write t ~lsn:5 "a" (Kv.Entry.Base "1");
  Memtable.write t ~lsn:9 "b" (Kv.Entry.Base "2");
  check (Alcotest.option Alcotest.int) "min" (Some 5) (Memtable.oldest_lsn t);
  (* a delta keeps depending on the older lsn *)
  Memtable.write t ~lsn:12 "a" (Kv.Entry.Delta [ "+d" ]);
  check (Alcotest.option Alcotest.int) "delta keeps old lsn" (Some 5)
    (Memtable.oldest_lsn t);
  (* a base write supersedes the dependency *)
  Memtable.write t ~lsn:15 "a" (Kv.Entry.Base "fresh");
  check (Alcotest.option Alcotest.int) "base refreshes" (Some 9)
    (Memtable.oldest_lsn t);
  ignore (Memtable.consume_min t);
  ignore (Memtable.consume_min t);
  check (Alcotest.option Alcotest.int) "empty again" None (Memtable.oldest_lsn t)

let prop_memtable_snowshovel_drains_sorted =
  (* consuming with a moving cursor yields sorted output per run, and the
     union of runs equals the input key set *)
  QCheck.Test.make ~name:"snowshovel drains everything in sorted runs" ~count:100
    QCheck.(list_of_size Gen.(1 -- 80) (int_range 0 999))
    (fun keys ->
      let t = mk () in
      List.iter
        (fun k ->
          Memtable.write t ~lsn:1 (Printf.sprintf "%03d" k) (Kv.Entry.Base "v"))
        keys;
      let expected = Memtable.count t in
      let drained = ref [] in
      let cursor = ref "" in
      let runs = ref 1 in
      while not (Memtable.is_empty t) do
        match Memtable.consume_geq t !cursor with
        | Some (k, _) ->
            drained := k :: !drained;
            cursor := k ^ "\000" (* strictly after k *)
        | None ->
            cursor := "";
            incr runs;
            if !runs > 1000 then failwith "livelock"
      done;
      List.length !drained = expected)

let () =
  Alcotest.run "memtable"
    [
      ( "skiplist",
        [
          Alcotest.test_case "basic" `Quick test_skiplist_basic;
          Alcotest.test_case "ordered" `Quick test_skiplist_ordered_iteration;
          Alcotest.test_case "remove" `Quick test_skiplist_remove;
          Alcotest.test_case "succ_geq" `Quick test_skiplist_succ_geq;
          Alcotest.test_case "iter_from" `Quick test_skiplist_iter_from;
          QCheck_alcotest.to_alcotest prop_skiplist_model;
          QCheck_alcotest.to_alcotest prop_skiplist_succ_matches_model;
        ] );
      ( "memtable",
        [
          Alcotest.test_case "write/get" `Quick test_memtable_write_get;
          Alcotest.test_case "delta composition" `Quick test_memtable_delta_composes_in_c0;
          Alcotest.test_case "tombstone" `Quick test_memtable_tombstone;
          Alcotest.test_case "bytes accounting" `Quick test_memtable_bytes_accounting;
          Alcotest.test_case "consume_geq" `Quick test_memtable_consume_geq;
          Alcotest.test_case "oldest lsn" `Quick test_memtable_oldest_lsn;
          QCheck_alcotest.to_alcotest prop_memtable_snowshovel_drains_sorted;
        ] );
    ]
