module L = Leveldb_sim.Leveldb
let mk_store () =
  Pagestore.Store.create
    ~config:{ Pagestore.Store.cfg_page_size = 4096; cfg_buffer_pages = 128; cfg_durability = Pagestore.Wal.Full }
    Simdisk.Profile.ssd_raid0
let () =
  let t = L.create ~config:{ L.default_config with L.memtable_bytes = 16*1024; file_bytes = 16*1024; base_level_bytes = 64*1024; level_ratio = 4.0; extent_pages = 8 } (mk_store ()) in
  let prng = Repro_util.Prng.of_int 1 in
  let target = ref "" in
  for i = 0 to 1499 do
    let key = Printf.sprintf "key%03d" (Repro_util.Prng.int prng 300) in
    (match Repro_util.Prng.int prng 12 with
    | 0 | 1 | 2 | 3 -> L.put t key (Printf.sprintf "v%d-%s" i (String.make 40 'd'))
    | 4 -> L.delete t key
    | 5 -> L.apply_delta t key (Printf.sprintf "+%d" i)
    | 6 -> L.read_modify_write t key (fun v -> Option.value v ~default:"" ^ "!")
    | 7 -> ignore (L.insert_if_absent t key (Printf.sprintf "ia%d" i))
    | 8 | 9 -> ignore (L.get t key)
    | _ -> ignore (L.scan t key (1 + Repro_util.Prng.int prng 8)));
    if i = 866 then begin
      target := key;
      Printf.printf "op866 key=%s get=%s\n" key (Option.value (L.get t key) ~default:"<none>")
    end
  done;
  Printf.printf "final get %s = %s\n" !target (Option.value (L.get t !target) ~default:"<none>");
  List.iter (fun li -> Printf.printf "L%d: %d files %d bytes\n" li.L.li_level li.L.li_files li.L.li_bytes) (L.levels t)
