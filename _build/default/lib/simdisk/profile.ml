(** Storage device cost profiles.

    The paper's evaluation machine used two RAID-0 arrays: 2 x 10K-RPM SATA
    enterprise hard disks and 2 x OCZ Vertex 2 SSDs (§5.1). We model each
    array as a single device with aggregate bandwidth and per-I/O access
    costs. The constants follow the paper's own arithmetic: hard disks
    transfer 100-200 MB/s with >5 ms mean access (§2.2); the Vertex 2 array
    does 285 (275) MB/s sequential reads (writes) (§5.4); Table 2 assumes
    50K reads/second per SATA SSD. SSDs "severely penalize random writes"
    (§5.4), which we express as a larger random-write access cost. *)

type t = {
  name : string;
  access_us : float;  (** cost of positioning for one random read, us *)
  random_write_us : float;  (** cost of one random (in-place) write, us *)
  read_mb_per_s : float;  (** aggregate sequential read bandwidth *)
  write_mb_per_s : float;  (** aggregate sequential write bandwidth *)
}

(** 2 x 10K-RPM SATA RAID-0. Mean access 5 ms; RAID-0 roughly doubles the
    IOPS of one spindle for concurrent streams, so the array-level access
    cost is half a spindle's. Aggregate bandwidth 2 x 120 MB/s. *)
let hdd_raid0 =
  {
    name = "hdd";
    access_us = 2500.0;
    random_write_us = 2500.0;
    read_mb_per_s = 240.0;
    write_mb_per_s = 240.0;
  }

(** 2 x OCZ Vertex 2 RAID-0. 50K reads/s per drive -> 100K for the array,
    i.e. 10 us per random read. Random writes on consumer-era SSDs cost an
    order of magnitude more than reads once the FTL must erase. *)
let ssd_raid0 =
  {
    name = "ssd";
    access_us = 10.0;
    random_write_us = 120.0;
    read_mb_per_s = 570.0;
    write_mb_per_s = 550.0;
  }

(** Device classes from Table 2 (Appendix A), used only by the analytic
    Table 2 reproduction. [capacity_gb] and [reads_per_sec] as printed. *)
type device_class = {
  class_name : string;
  capacity_gb : float;
  reads_per_sec : float;
}

let table2_devices =
  [
    { class_name = "SSD SATA"; capacity_gb = 512.0; reads_per_sec = 50_000.0 };
    { class_name = "SSD PCI-E"; capacity_gb = 5000.0; reads_per_sec = 1_000_000.0 };
    { class_name = "HD Server"; capacity_gb = 300.0; reads_per_sec = 500.0 };
    { class_name = "HD Media"; capacity_gb = 2000.0; reads_per_sec = 250.0 };
  ]

let pp ppf t =
  Fmt.pf ppf "%s(access=%.0fus rw=%.0fus %.0f/%.0fMB/s)" t.name t.access_us
    t.random_write_us t.read_mb_per_s t.write_mb_per_s
