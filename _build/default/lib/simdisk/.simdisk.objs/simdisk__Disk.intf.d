lib/simdisk/disk.mli: Format Profile
