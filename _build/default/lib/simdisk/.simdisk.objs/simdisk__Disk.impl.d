lib/simdisk/disk.ml: Fmt Profile
