lib/simdisk/profile.mli: Format
