lib/simdisk/profile.ml: Fmt
