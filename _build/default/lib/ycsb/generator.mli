(** YCSB-style request generators (§5.1).

    The paper drives all three systems with YCSB: uniform and Zipfian
    request distributions (Zipfian with YCSB's default constant 0.99,
    scrambled so hot keys scatter over the key space), plus the "latest"
    distribution. Draws are record *ids*; {!Repro_util.Keygen} turns them
    into keys. *)

type t

val uniform : seed:int -> t

(** [zipfian ?theta ?scrambled ~seed ~n ()]: Gray et al.'s generator as
    in YCSB. [theta] defaults to 0.99; [scrambled] (default) hashes ranks
    so popular keys spread across the id space. [n] is the initial
    keyspace size; draws adapt if [record_count] grows. *)
val zipfian : ?theta:float -> ?scrambled:bool -> seed:int -> n:int -> unit -> t

(** Skewed toward recently inserted ids. *)
val latest : seed:int -> t

(** [next g ~record_count] draws a record id in [0, record_count). *)
val next : t -> record_count:int -> int
