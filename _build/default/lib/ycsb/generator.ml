(** YCSB-style request generators (§5.1).

    The paper drives all three systems with YCSB: 50 GB of 1000-byte
    values, uniform and Zipfian request distributions (Zipfian with YCSB's
    default constant 0.99, scrambled so hot keys scatter across the key
    space), plus the "latest" distribution for completeness. *)

type zipf_state = {
  prng : Repro_util.Prng.t;
  theta : float;
  mutable n : int;
  mutable zetan : float;
  mutable eta : float;
  zeta2 : float;
  scrambled : bool;
}

type t =
  | Uniform of Repro_util.Prng.t
  | Zipfian of zipf_state
  | Latest of Repro_util.Prng.t

let zeta n theta =
  let s = ref 0.0 in
  for i = 1 to n do
    s := !s +. (1.0 /. (float_of_int i ** theta))
  done;
  !s

let uniform ~seed = Uniform (Repro_util.Prng.of_int seed)

(** YCSB's default Zipfian constant is 0.99; [scrambled] (the YCSB
    default) hashes ranks so that popular keys are spread over the key
    space instead of clustered at its start. *)
let zipfian ?(theta = 0.99) ?(scrambled = true) ~seed ~n () =
  let n = max 2 n in
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let eta =
    (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
    /. (1.0 -. (zeta2 /. zetan))
  in
  Zipfian
    { prng = Repro_util.Prng.of_int seed; theta; n; zetan; eta; zeta2; scrambled }

let latest ~seed = Latest (Repro_util.Prng.of_int seed)

(* Gray et al.'s "Quickly generating billion-record synthetic databases"
   algorithm, as used by YCSB's ZipfianGenerator. *)
let zipf_draw z record_count =
  if z.n <> record_count && record_count > z.n then begin
    (* keyspace grew (inserts): extend zeta incrementally *)
    let extra = ref 0.0 in
    for i = z.n + 1 to record_count do
      extra := !extra +. (1.0 /. (float_of_int i ** z.theta))
    done;
    z.zetan <- z.zetan +. !extra;
    z.n <- record_count;
    z.eta <-
      (1.0 -. ((2.0 /. float_of_int record_count) ** (1.0 -. z.theta)))
      /. (1.0 -. (z.zeta2 /. z.zetan))
  end;
  let u = Repro_util.Prng.float z.prng in
  let uz = u *. z.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. (0.5 ** z.theta) then 1
  else
    let alpha = 1.0 /. (1.0 -. z.theta) in
    let rank =
      int_of_float
        (float_of_int record_count *. (((z.eta *. u) -. z.eta +. 1.0) ** alpha))
    in
    if rank >= record_count then record_count - 1 else rank

(** [next g ~record_count] draws a record id in [0, record_count). *)
let next g ~record_count =
  let record_count = max 1 record_count in
  match g with
  | Uniform prng -> Repro_util.Prng.int prng record_count
  | Latest prng ->
      (* skewed toward recently inserted ids *)
      let r = Repro_util.Prng.float prng in
      let back = int_of_float (float_of_int record_count *. (r ** 4.0)) in
      max 0 (record_count - 1 - back)
  | Zipfian z ->
      let rank = zipf_draw z record_count in
      if z.scrambled then
        Int64.to_int
          (Int64.rem
             (Int64.logand (Repro_util.Keygen.fnv_mix rank) 0x7FFFFFFFFFFFFFFFL)
             (Int64.of_int record_count))
      else rank
