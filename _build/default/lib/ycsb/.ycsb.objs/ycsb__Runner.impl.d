lib/ycsb/runner.ml: Fmt Generator Kv List Printf Repro_util Simdisk
