lib/ycsb/generator.mli:
