lib/ycsb/runner.mli: Format Generator Kv Repro_util Simdisk
