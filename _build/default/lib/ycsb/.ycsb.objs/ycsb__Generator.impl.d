lib/ycsb/generator.ml: Int64 Repro_util
