(** Closed-loop workload runner.

    Executes an operation mix against any {!Kv.Kv_intf.engine}, timing
    each operation on the engine's *simulated* clock — latency includes
    every merge stall, compaction, slowdown and buffer-pool miss the
    engine charged; throughput is ops per simulated second. Mirrors
    running YCSB with unthrottled workers (§5.1): the store is saturated
    and stalls appear as latency spikes. *)

type op_kind =
  | Read
  | Blind_update  (** overwrite with a fresh value *)
  | Read_modify_write
  | Insert  (** append a brand-new key *)
  | Checked_insert  (** insert-if-not-exists of a brand-new key *)
  | Delta
  | Scan of int  (** scan of length uniform in [1, n] *)

(** Weighted operation mix; weights need not sum to 1. *)
type mix = (op_kind * float) list

val pp_op : Format.formatter -> op_kind -> unit

type result = {
  label : string;
  ops : int;
  elapsed_us : float;
  ops_per_sec : float;
  latency : Repro_util.Histogram.t;
  read_latency : Repro_util.Histogram.t;  (** reads and scans *)
  write_latency : Repro_util.Histogram.t;  (** everything else *)
  timeseries : Repro_util.Timeseries.t;
  io : Simdisk.Disk.snapshot;  (** I/O performed during the phase *)
}

val pp_result : Format.formatter -> result -> unit

(** Shared mutable keyspace: loads and inserts extend it, reads draw
    from it. *)
type keyspace = { mutable records : int; value_bytes : int }

val keyspace : records:int -> value_bytes:int -> keyspace

(** [load engine ks ~n ?ordered ?checked ()] bulk-loads [n] fresh
    records. [ordered] feeds keys in sorted order (InnoDB's pre-sorted
    load, §5.2); [checked] uses insert-if-not-exists for every record
    (bLSM's §5.2 mode). *)
val load :
  Kv.Kv_intf.engine ->
  keyspace ->
  n:int ->
  ?ordered:bool ->
  ?checked:bool ->
  ?timeseries_bucket_us:int ->
  ?seed:int ->
  unit ->
  result

(** [run engine ks ~label ~mix ~ops ~dist ()] executes [ops] operations
    drawn from [mix] with record ids from [dist]. *)
val run :
  Kv.Kv_intf.engine ->
  keyspace ->
  label:string ->
  mix:mix ->
  ops:int ->
  dist:Generator.t ->
  ?ordered_keys:bool ->
  ?timeseries_bucket_us:int ->
  ?seed:int ->
  unit ->
  result
