(** Record states flowing through every tree component.

    bLSM distinguishes *base records* from *deltas* so that reads can
    terminate at the first base record found (§3.1.1), and uses tombstones
    for deletes in append-only components. A delta is an application-defined
    patch; bLSM composes pending deltas until a base record (or the bottom
    of the tree) is reached and resolves them with the store's resolver. *)

type t =
  | Base of string  (** a full value; reads stop here *)
  | Delta of string list  (** pending patches, oldest first *)
  | Tombstone  (** deletion marker *)

(** [resolver ~base delta] applies one delta. [base = None] means the
    record did not exist (delta against nothing). The default resolver
    treats deltas as string appends. *)
type resolver = base:string option -> string -> string

let append_resolver ~base delta =
  match base with None -> delta | Some b -> b ^ delta

(** [resolve r ~base deltas] folds [deltas] (oldest first) over [base]. *)
let resolve (r : resolver) ~base deltas =
  match deltas with
  | [] -> base
  | _ -> List.fold_left (fun acc d -> Some (r ~base:acc d)) base deltas

(** [merge r ~newer ~older] combines two states of one record where
    [newer] shadows [older]. Updates to the same tuple are placed in tree
    levels consistent with their ordering (§3.1.1), so during a merge the
    component closer to C0 is always [newer]. *)
let merge (r : resolver) ~newer ~older =
  match (newer, older) with
  | (Base _ | Tombstone), _ -> newer
  | Delta ds, Base b -> (
      match resolve r ~base:(Some b) ds with
      | Some v -> Base v
      | None -> assert false)
  | Delta ds, Delta older_ds -> Delta (older_ds @ ds)
  | Delta ds, Tombstone -> (
      match resolve r ~base:None ds with
      | Some v -> Base v
      | None -> assert false)

(** [payload_bytes e] is the user-data size of [e]; memtable accounting and
    write-amplification arithmetic both use it. *)
let payload_bytes = function
  | Base v -> String.length v
  | Delta ds -> List.fold_left (fun a d -> a + String.length d) 0 ds
  | Tombstone -> 0

let is_base = function Base _ -> true | Delta _ | Tombstone -> false

(** {1 Wire format}

    tag byte, then: Base = varint len + bytes; Delta = varint count then
    per-delta varint len + bytes; Tombstone = nothing. *)

let encode buf = function
  | Base v ->
      Buffer.add_char buf '\000';
      Repro_util.Varint.write buf (String.length v);
      Buffer.add_string buf v
  | Tombstone -> Buffer.add_char buf '\001'
  | Delta ds ->
      Buffer.add_char buf '\002';
      Repro_util.Varint.write buf (List.length ds);
      List.iter
        (fun d ->
          Repro_util.Varint.write buf (String.length d);
          Buffer.add_string buf d)
        ds

(** [decode s pos] parses an entry at [pos], returning [(entry, next_pos)]. *)
let decode s pos =
  match s.[pos] with
  | '\000' ->
      let len, pos = Repro_util.Varint.read s (pos + 1) in
      (Base (String.sub s pos len), pos + len)
  | '\001' -> (Tombstone, pos + 1)
  | '\002' ->
      let n, pos = Repro_util.Varint.read s (pos + 1) in
      let rec go acc pos n =
        if n = 0 then (Delta (List.rev acc), pos)
        else
          let len, pos = Repro_util.Varint.read s pos in
          go (String.sub s pos len :: acc) (pos + len) (n - 1)
      in
      go [] pos n
  | c -> invalid_arg (Printf.sprintf "Entry.decode: bad tag %d" (Char.code c))

let encoded_size e =
  let open Repro_util in
  match e with
  | Base v -> 1 + Varint.size (String.length v) + String.length v
  | Tombstone -> 1
  | Delta ds ->
      1
      + Varint.size (List.length ds)
      + List.fold_left
          (fun a d -> a + Varint.size (String.length d) + String.length d)
          0 ds

let pp ppf = function
  | Base v -> Fmt.pf ppf "Base(%d bytes)" (String.length v)
  | Delta ds -> Fmt.pf ppf "Delta(%d)" (List.length ds)
  | Tombstone -> Fmt.string ppf "Tombstone"

let equal a b =
  match (a, b) with
  | Base x, Base y -> String.equal x y
  | Tombstone, Tombstone -> true
  | Delta x, Delta y -> List.length x = List.length y && List.for_all2 String.equal x y
  | _ -> false
