lib/kv/entry.ml: Buffer Char Fmt List Printf Repro_util String Varint
