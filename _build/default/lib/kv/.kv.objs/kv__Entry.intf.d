lib/kv/entry.mli: Buffer Format
