lib/kv/kv_intf.ml: Simdisk
