(** Uniform engine interface used by the workload runner and benchmarks.

    The paper drives InnoDB, LevelDB and bLSM through the same YCSB
    workloads; this record is the corresponding seam. Each engine exposes
    the full "B-Tree API superset" of §7: point reads, blind writes,
    read-modify-write, deltas, deletes, insert-if-not-exists, and scans. *)

type engine = {
  name : string;
  disk : Simdisk.Disk.t;
  get : string -> string option;
  put : string -> string -> unit;  (** blind write (insert or overwrite) *)
  delete : string -> unit;
  apply_delta : string -> string -> unit;  (** zero-seek delta write *)
  read_modify_write : string -> (string option -> string) -> unit;
  insert_if_absent : string -> string -> bool;
      (** returns [true] if inserted, [false] if the key already existed *)
  scan : string -> int -> (string * string) list;
      (** [scan start n]: up to [n] records with key >= [start] *)
  maintenance : unit -> unit;
      (** give background work (merges, compactions) a chance to finish;
          used between experiment phases, never during measurement *)
}
