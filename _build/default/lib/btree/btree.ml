(** Update-in-place B+-Tree: the InnoDB stand-in (§2.2, §5).

    A page-structured B+-tree over the shared buffer manager. The cost
    profile the paper ascribes to InnoDB is emergent here rather than
    hard-coded: point reads cost one seek once the leaf level exceeds the
    buffer pool (upper levels stay cached); updates dirty the leaf in the
    pool and pay the second seek when eviction writes it back; random
    inserts scatter leaves across the disk (splits allocate wherever the
    allocator has space), so long scans after a fragmenting workload seek
    per leaf — the effect behind §5.6's crossover.

    Deletes remove records without rebalancing (lazy deletion, as
    production engines do); sequential inserts use the rightmost-split
    optimization so pre-sorted bulk loads pack pages and write back
    almost sequentially. *)

type node =
  | Leaf of { records : (string * string) list; next : int (* 0 = none *) }
  | Internal of { keys : string list; children : int list }
      (** [children] has one more element than [keys]; subtree [i] holds
          keys < [keys.(i)] *)

type t = {
  store : Pagestore.Store.t;
  page_size : int;
  mutable root : int;
  mutable height : int;  (** 1 = root is a leaf *)
  mutable count : int;
  mutable data_bytes : int;
  mutable splits : int;
}

(* ---------------------------------------------------------------- *)
(* Node serialization *)

let encode_node t node =
  let buf = Buffer.create t.page_size in
  (match node with
  | Leaf { records; next } ->
      Buffer.add_char buf '\001';
      Repro_util.Varint.write buf next;
      Repro_util.Varint.write buf (List.length records);
      List.iter
        (fun (k, v) ->
          Repro_util.Varint.write buf (String.length k);
          Buffer.add_string buf k;
          Repro_util.Varint.write buf (String.length v);
          Buffer.add_string buf v)
        records
  | Internal { keys; children } ->
      Buffer.add_char buf '\000';
      Repro_util.Varint.write buf (List.length keys);
      List.iter
        (fun k ->
          Repro_util.Varint.write buf (String.length k);
          Buffer.add_string buf k)
        keys;
      List.iter (fun c -> Repro_util.Varint.write buf c) children);
  Buffer.contents buf

let node_size t node = String.length (encode_node t node)

let decode_node s =
  let pos = ref 1 in
  let rint () =
    let v, p = Repro_util.Varint.read s !pos in
    pos := p;
    v
  in
  let rstr () =
    let len = rint () in
    let v = String.sub s !pos len in
    pos := !pos + len;
    v
  in
  match s.[0] with
  | '\001' ->
      let next = rint () in
      let n = rint () in
      let records =
        let rec go n acc =
          if n = 0 then List.rev acc
          else
            let k = rstr () in
            let v = rstr () in
            go (n - 1) ((k, v) :: acc)
        in
        go n []
      in
      Leaf { records; next }
  | '\000' ->
      let n = rint () in
      let keys =
        let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (rstr () :: acc) in
        go n []
      in
      let children =
        let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (rint () :: acc) in
        go (n + 1) []
      in
      Internal { keys; children }
  | c -> invalid_arg (Printf.sprintf "Btree: bad node tag %d" (Char.code c))

let read_node t id =
  Pagestore.Store.with_page t.store id (fun b -> decode_node (Bytes.to_string b))

(* Read a leaf during a scan, declaring physical adjacency so contiguous
   leaf chains cost bandwidth instead of seeks. *)
let read_node_seq t ~prev id =
  if id = prev + 1 then
    Pagestore.Store.with_page_seq t.store id (fun b -> decode_node (Bytes.to_string b))
  else read_node t id

let write_node t id node =
  let s = encode_node t node in
  assert (String.length s <= t.page_size);
  Pagestore.Store.with_page_mut t.store id (fun b ->
      Bytes.fill b 0 t.page_size '\000';
      Pagestore.Page.blit_string s b 0)

let alloc_page t =
  (Pagestore.Store.allocate_region t.store ~pages:1).Pagestore.Region_allocator.start

(* ---------------------------------------------------------------- *)

let create store =
  let t =
    {
      store;
      page_size = Pagestore.Store.page_size store;
      root = 0;
      height = 1;
      count = 0;
      data_bytes = 0;
      splits = 0;
    }
  in
  t.root <- alloc_page t;
  write_node t t.root (Leaf { records = []; next = 0 });
  t

let count t = t.count
let data_bytes t = t.data_bytes
let splits t = t.splits
let height t = t.height
let store t = t.store
let disk t = Pagestore.Store.disk t.store

(* Max record size: a leaf must hold at least two records. *)
let max_record_bytes t = (t.page_size - 16) / 2

(* ---------------------------------------------------------------- *)
(* Search *)

let rec descend t id level key =
  if level = 1 then id
  else
    match read_node t id with
    | Internal { keys; children } ->
        let rec pick keys children =
          match (keys, children) with
          | [], [ c ] -> c
          | k :: ks, c :: cs -> if String.compare key k < 0 then c else pick ks cs
          | _ -> assert false
        in
        descend t (pick keys children) (level - 1) key
    | Leaf _ -> assert false

(** [get t key]: one buffer-pool descent; upper levels are hot, so the
    uncached cost is one leaf seek. *)
let get t key =
  let leaf_id = descend t t.root t.height key in
  match read_node t leaf_id with
  | Leaf { records; _ } -> List.assoc_opt key records
  | Internal _ -> assert false

(* ---------------------------------------------------------------- *)
(* Insert *)

let leaf_insert records key value =
  let rec go = function
    | [] -> [ (key, value) ]
    | (k, v) :: rest ->
        let c = String.compare key k in
        if c < 0 then (key, value) :: (k, v) :: rest
        else if c = 0 then (key, value) :: rest
        else (k, v) :: go rest
  in
  go records

(* Split a list at the point where the encoded prefix reaches half the
   payload; returns (left, right). *)
let split_records records ~rightmost_key =
  match rightmost_key with
  | Some key when records <> [] && fst (List.hd (List.rev records)) = key ->
      (* rightmost-split optimization: sequential inserts leave the full
         page behind and start a fresh one *)
      let rec split_last = function
        | [ last ] -> ([], [ last ])
        | x :: rest ->
            let l, r = split_last rest in
            (x :: l, r)
        | [] -> assert false
      in
      split_last records
  | _ ->
      let total =
        List.fold_left
          (fun a (k, v) -> a + String.length k + String.length v + 8)
          0 records
      in
      let rec go acc size = function
        | [] -> (List.rev acc, [])
        | (k, v) :: rest ->
            if size >= total / 2 && acc <> [] then (List.rev acc, (k, v) :: rest)
            else
              go ((k, v) :: acc) (size + String.length k + String.length v + 8) rest
      in
      go [] 0 records

type split_result = No_split | Split of string * int (* separator, right page *)

let rec insert_rec t id level key value =
  if level = 1 then begin
    match read_node t id with
    | Internal _ -> assert false
    | Leaf { records; next } ->
        let existed = List.mem_assoc key records in
        let records = leaf_insert records key value in
        let node = Leaf { records; next } in
        if not existed then begin
          t.count <- t.count + 1;
          t.data_bytes <- t.data_bytes + String.length key + String.length value
        end;
        if node_size t node <= t.page_size then begin
          write_node t id node;
          No_split
        end
        else begin
          t.splits <- t.splits + 1;
          let left, right = split_records records ~rightmost_key:(Some key) in
          let right_id = alloc_page t in
          write_node t right_id (Leaf { records = right; next });
          write_node t id (Leaf { records = left; next = right_id });
          Split (fst (List.hd right), right_id)
        end
  end
  else begin
    match read_node t id with
    | Leaf _ -> assert false
    | Internal { keys; children } -> (
        let rec pick i keys' children' =
          match (keys', children') with
          | [], [ c ] -> (i, c)
          | k :: ks, c :: cs ->
              if String.compare key k < 0 then (i, c) else pick (i + 1) ks cs
          | _ -> assert false
        in
        let idx, child = pick 0 keys children in
        match insert_rec t child (level - 1) key value with
        | No_split -> No_split
        | Split (sep, right_id) ->
            let keys =
              List.filteri (fun i _ -> i < idx) keys
              @ [ sep ]
              @ List.filteri (fun i _ -> i >= idx) keys
            in
            let children =
              List.filteri (fun i _ -> i <= idx) children
              @ [ right_id ]
              @ List.filteri (fun i _ -> i > idx) children
            in
            let node = Internal { keys; children } in
            if node_size t node <= t.page_size then begin
              write_node t id node;
              No_split
            end
            else begin
              t.splits <- t.splits + 1;
              let n = List.length keys in
              let mid = n / 2 in
              let sep_key = List.nth keys mid in
              let left_keys = List.filteri (fun i _ -> i < mid) keys in
              let right_keys = List.filteri (fun i _ -> i > mid) keys in
              let left_children = List.filteri (fun i _ -> i <= mid) children in
              let right_children = List.filteri (fun i _ -> i > mid) children in
              let right_id = alloc_page t in
              write_node t right_id
                (Internal { keys = right_keys; children = right_children });
              write_node t id
                (Internal { keys = left_keys; children = left_children });
              Split (sep_key, right_id)
            end)
  end

(** [put t key value]: update in place. Reads the leaf (seek #1 when cold),
    modifies it in the pool; eviction later pays seek #2. *)
let put t key value =
  if String.length key + String.length value > max_record_bytes t then
    invalid_arg "Btree.put: record exceeds page capacity";
  (* redo logging, same convention as the other engines (no sync) *)
  ignore
    (Pagestore.Wal.append
       (Pagestore.Store.wal t.store)
       (key ^ "\000" ^ value));
  match insert_rec t t.root t.height key value with
  | No_split -> ()
  | Split (sep, right_id) ->
      let new_root = alloc_page t in
      write_node t new_root
        (Internal { keys = [ sep ]; children = [ t.root; right_id ] });
      t.root <- new_root;
      t.height <- t.height + 1

(** [delete t key]: lazy deletion — remove from the leaf, no rebalance. *)
let delete t key =
  ignore (Pagestore.Wal.append (Pagestore.Store.wal t.store) (key ^ "\000"));
  let leaf_id = descend t t.root t.height key in
  match read_node t leaf_id with
  | Internal _ -> assert false
  | Leaf { records; next } ->
      (match List.assoc_opt key records with
      | None -> ()
      | Some v ->
          t.count <- t.count - 1;
          t.data_bytes <- t.data_bytes - String.length key - String.length v;
          write_node t leaf_id
            (Leaf { records = List.remove_assoc key records; next }))

(** [scan t start n]: position on the leaf containing [start] (one seek),
    then follow the leaf chain. Chains fragmented by random splits cost a
    seek per hop; freshly bulk-loaded chains are contiguous. *)
let scan t start n =
  let leaf_id = descend t t.root t.height start in
  (* [next = 0] means "no next leaf": page 0 is always the leftmost leaf
     (allocated at create), so no chain pointer ever references it *)
  let rec walk id prev_id acc remaining =
    if remaining = 0 then List.rev acc
    else
      match read_node_seq t ~prev:prev_id id with
      | Internal _ -> assert false
      | Leaf { records; next } ->
          let take = List.filter (fun (k, _) -> String.compare k start >= 0) records in
          let rec add acc remaining = function
            | [] -> (acc, remaining, true)
            | (k, v) :: rest ->
                if remaining = 0 then (acc, 0, false)
                else add ((k, v) :: acc) (remaining - 1) rest
          in
          let acc, remaining, exhausted = add acc remaining take in
          if exhausted && next <> 0 then walk next id acc remaining
          else List.rev acc
  in
  walk leaf_id (-10) [] n

(** [read_modify_write t key f] — the two-seek B-Tree primitive. *)
let read_modify_write t key f =
  let v = get t key in
  put t key (f v)

(** [insert_if_absent t key value]: B-Trees get the existence check for
    free during the descent — but the descent itself costs the seek. *)
let insert_if_absent t key value =
  match get t key with
  | Some _ -> false
  | None ->
      put t key value;
      true

(** {1 Structural checks (used by tests)} *)

let rec check_node t id level ~lo ~hi =
  match read_node t id with
  | Leaf { records; _ } ->
      if level <> 1 then failwith "leaf at wrong level";
      let rec sorted = function
        | a :: (b :: _ as rest) ->
            if String.compare (fst a) (fst b) >= 0 then failwith "leaf unsorted";
            sorted rest
        | _ -> ()
      in
      sorted records;
      List.iter
        (fun (k, _) ->
          (match lo with
          | Some l when String.compare k l < 0 -> failwith "key below bound"
          | _ -> ());
          match hi with
          | Some h when String.compare k h >= 0 -> failwith "key above bound"
          | _ -> ())
        records;
      List.length records
  | Internal { keys; children } ->
      if level = 1 then failwith "internal at leaf level";
      let rec go lo keys children acc =
        match (keys, children) with
        | [], [ c ] -> acc + check_node t c (level - 1) ~lo ~hi
        | k :: ks, c :: cs ->
            let n = check_node t c (level - 1) ~lo ~hi:(Some k) in
            go (Some k) ks cs (acc + n)
        | _ -> failwith "key/child arity mismatch"
      in
      go lo keys children 0

(** [check_invariants t] verifies ordering, bounds and record count. *)
let check_invariants t =
  let n = check_node t t.root t.height ~lo:None ~hi:None in
  if n <> t.count then
    failwith (Printf.sprintf "count mismatch: tree=%d counter=%d" n t.count)

(** [node_counts t] walks the tree: [(internal_pages, leaf_pages)] —
    the read-fanout arithmetic needs the RAM-resident internal level. *)
let node_counts t =
  let internal = ref 0 and leaves = ref 0 in
  let rec go id level =
    match read_node t id with
    | Leaf _ -> incr leaves
    | Internal { children; _ } ->
        incr internal;
        List.iter (fun c -> go c (level - 1)) children
  in
  go t.root t.height;
  (!internal, !leaves)

(** {1 Engine adapter} *)

let engine ?(name = "InnoDB(B-Tree)") t =
  {
    Kv.Kv_intf.name;
    disk = disk t;
    get = (fun k -> get t k);
    put = (fun k v -> put t k v);
    delete = (fun k -> delete t k);
    (* B-Trees have no delta primitive: a delta is a read-modify-write
       (2 seeks, Table 1) *)
    apply_delta =
      (fun k d ->
        read_modify_write t k (function Some v -> v ^ d | None -> d));
    read_modify_write = (fun k f -> read_modify_write t k f);
    insert_if_absent = (fun k v -> insert_if_absent t k v);
    scan = (fun start n -> scan t start n);
    (* background flushing: write back dirty pages between phases *)
    maintenance =
      (fun () -> Pagestore.Buffer_manager.flush_all (Pagestore.Store.buffer t.store));
  }
