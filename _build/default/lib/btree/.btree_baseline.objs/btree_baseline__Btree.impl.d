lib/btree/btree.ml: Buffer Bytes Char Kv List Pagestore Printf Repro_util String
