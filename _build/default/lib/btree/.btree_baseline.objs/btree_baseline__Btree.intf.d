lib/btree/btree.mli: Kv Pagestore Simdisk
