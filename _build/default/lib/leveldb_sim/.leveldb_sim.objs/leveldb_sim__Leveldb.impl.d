lib/leveldb_sim/leveldb.ml: Array Buffer Float Kv List Memtable Option Pagestore Repro_util Simdisk Sstable String
