lib/leveldb_sim/leveldb.mli: Kv Pagestore Simdisk
