(** On-disk format of a tree component (see the .ml for the layout).

    A component is a chain of contiguous extents holding data pages, index
    pages, and one footer page. Data pages use the paper's append-only
    format with records spanning pages (Appendix A.2); each record stores
    the newest WAL LSN folded into it (recovery's replay filter). *)

val header_bytes : int
val payload_capacity : page_size:int -> int

(** [encode_record buf key ~lsn entry] appends one framed record. *)
val encode_record : Buffer.t -> string -> lsn:int -> Kv.Entry.t -> unit

(** [decode_body s] parses a record body: [(key, entry, lsn)]. *)
val decode_body : string -> string * Kv.Entry.t * int

(** Component descriptor: logical timestamp (§4.4.1), counts, extents,
    index location. Doubles as the commit-root metadata blob. *)
type footer = {
  timestamp : int;
  record_count : int;
  tombstone_count : int;
  data_bytes : int;  (** sum of record body bytes (user data) *)
  min_key : string;
  max_key : string;
  extents : (int * int) list;  (** (start page id, length), chain order *)
  data_pages : int;
  index_pages : int;
  index_entries : int;
  bloom_pages : int;  (** optional persisted Bloom filter after the index *)
  bloom_bytes : int;
}

val encode_footer : footer -> string

(** Raises [Invalid_argument] on bad magic. *)
val decode_footer : string -> footer
