(** On-disk format of a tree component.

    A component is a chain of contiguous extents holding, in order: data
    pages, index pages, and one footer page. Data pages use the paper's
    "simple append-only data page format that efficiently stores records
    that span multiple pages and bounds the fraction of space wasted by
    inconveniently sized records" (Appendix A.2).

    Data page layout:
    {v
      u16 @0  n_starts   records beginning in this page
      u32 @2  cont_len   leading payload bytes that belong to a record
                         begun on an earlier page
      payload [6, page_size)
    v}

    A record on the wire is [varint body_len][body] where
    [body = varint key_len ++ key ++ varint lsn ++ entry] (see
    {!Kv.Entry.encode}). The LSN is the newest write-ahead-log sequence
    number folded into the record; recovery uses it to skip WAL records
    whose effect is already durable — without it, replaying a delta that
    a committed merge already applied would apply it twice (Rose, the
    paper's substrate, tracks LSNs for the same reason).
    Bodies flow across page boundaries without padding, so the waste per
    page is at most the final partial varint — a few bytes. *)

let header_bytes = 6

let payload_capacity ~page_size = page_size - header_bytes

(** [encode_record buf key ~lsn entry] appends one framed record. *)
let encode_record buf key ~lsn entry =
  let body = Buffer.create (String.length key + 16) in
  Repro_util.Varint.write body (String.length key);
  Buffer.add_string body key;
  Repro_util.Varint.write body lsn;
  Kv.Entry.encode body entry;
  Repro_util.Varint.write buf (Buffer.length body);
  Buffer.add_buffer buf body

(** [decode_body s] parses a record body into [(key, entry, lsn)]. *)
let decode_body s =
  let key_len, pos = Repro_util.Varint.read s 0 in
  let key = String.sub s pos key_len in
  let lsn, pos = Repro_util.Varint.read s (pos + key_len) in
  let entry, _ = Kv.Entry.decode s pos in
  (key, entry, lsn)

(** {1 Footer}

    The footer describes the component: logical timestamp, record count,
    user-data bytes, extents, and where the index lives. It doubles as the
    metadata blob engines store in their commit root. *)

type footer = {
  timestamp : int;  (** logical timestamp, bumped per merge (§4.4.1) *)
  record_count : int;
  tombstone_count : int;
  data_bytes : int;  (** sum of record body bytes (user data) *)
  min_key : string;
  max_key : string;
  extents : (int * int) list;  (** (start page id, length) in chain order *)
  data_pages : int;  (** pages [0, data_pages) of the chain hold records *)
  index_pages : int;  (** pages [data_pages, data_pages+index_pages) *)
  index_entries : int;
  bloom_pages : int;  (** optional persisted Bloom filter after the index *)
  bloom_bytes : int;
}

let encode_footer f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "SSTF";
  let w = Repro_util.Varint.write buf in
  w f.timestamp;
  w f.record_count;
  w f.tombstone_count;
  w f.data_bytes;
  w (String.length f.min_key);
  Buffer.add_string buf f.min_key;
  w (String.length f.max_key);
  Buffer.add_string buf f.max_key;
  w (List.length f.extents);
  List.iter
    (fun (s, l) ->
      w s;
      w l)
    f.extents;
  w f.data_pages;
  w f.index_pages;
  w f.index_entries;
  w f.bloom_pages;
  w f.bloom_bytes;
  Buffer.contents buf

let decode_footer s =
  if String.length s < 4 || not (String.equal (String.sub s 0 4) "SSTF") then
    invalid_arg "Sst_format.decode_footer: bad magic";
  let pos = ref 4 in
  let r () =
    let v, p = Repro_util.Varint.read s !pos in
    pos := p;
    v
  in
  let rs () =
    let len = r () in
    let v = String.sub s !pos len in
    pos := !pos + len;
    v
  in
  let timestamp = r () in
  let record_count = r () in
  let tombstone_count = r () in
  let data_bytes = r () in
  let min_key = rs () in
  let max_key = rs () in
  let n_extents = r () in
  let extents =
    let rec go n acc =
      if n = 0 then List.rev acc
      else
        let s = r () in
        let l = r () in
        go (n - 1) ((s, l) :: acc)
    in
    go n_extents []
  in
  let data_pages = r () in
  let index_pages = r () in
  let index_entries = r () in
  let bloom_pages = r () in
  let bloom_bytes = r () in
  { timestamp; record_count; tombstone_count; data_bytes; min_key; max_key;
    extents; data_pages; index_pages; index_entries; bloom_pages; bloom_bytes }
