lib/sstable/merge_iter.mli: Kv
