lib/sstable/builder.mli: Kv Pagestore Sst_format
