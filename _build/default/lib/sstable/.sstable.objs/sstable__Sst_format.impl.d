lib/sstable/sst_format.ml: Buffer Kv List Repro_util String
