lib/sstable/reader.ml: Array Buffer Bytes Char Kv List Pagestore Repro_util Simdisk Sst_format String
