lib/sstable/sst_format.mli: Buffer Kv
