lib/sstable/builder.ml: Buffer Bytes Kv List Option Pagestore Repro_util Simdisk Sst_format String
