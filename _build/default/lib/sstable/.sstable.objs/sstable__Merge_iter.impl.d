lib/sstable/merge_iter.ml: Kv List Option String
