lib/sstable/reader.mli: Kv Pagestore Sst_format
