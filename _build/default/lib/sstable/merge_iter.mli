(** K-way merging iterator with age-based shadowing.

    Combines ordered record streams from multiple tree components. Lower
    priority = fresher component; equal keys are combined with
    {!Kv.Entry.merge} exactly as the read path would. With
    [drop_tombstones] (the bottom level) tombstones are elided and orphan
    deltas resolve into base records, preserving the all-base invariant
    behind one-seek reads (§3.1.1). *)

type t

(** [create ~resolver ~drop_tombstones inputs] merges [inputs], each a
    [(priority, pull)] pair where [pull] yields [(key, entry, lsn)] in
    strictly increasing key order and priority 0 is the freshest source. *)
val create :
  resolver:Kv.Entry.resolver ->
  drop_tombstones:bool ->
  (int * (unit -> (string * Kv.Entry.t * int) option)) list ->
  t

(** [next t] is the next surviving record in key order, with the newest
    contributing LSN. *)
val next : t -> (string * Kv.Entry.t * int) option

(** [drain t f] pulls every record through [f]. *)
val drain : t -> (string -> Kv.Entry.t -> int -> unit) -> unit
