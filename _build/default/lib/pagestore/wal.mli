(** Logical write-ahead log (§4.4.2).

    Replaying it after a crash rebuilds C0. Appends are group-committed
    without per-commit fsync (§5.1), so they cost sequential bandwidth.
    Truncation is driven by merge completion; snowshoveling delays it
    because old entries stay live in C0 longer. *)

(** [Full]: every write logged. [Degraded]: logged, but semantics allow
    loss of a recent suffix (the paper's replication mode). [None_]: no
    logging; recovery restores only merged data. *)
type durability = Full | Degraded | None_

type t

val create : ?durability:durability -> Simdisk.Disk.t -> t

(** [append t payload] appends one record, returning its LSN. *)
val append : t -> string -> int

(** [truncate t ~upto_lsn] discards records with lsn < [upto_lsn]
    unconditionally (single-client logs). *)
val truncate : t -> upto_lsn:int -> unit

(** [register_client t ~client] declares a client whose floor starts at
    the current truncation point; until it proposes higher, nothing it
    might need is dropped. *)
val register_client : t -> client:string -> unit

(** [propose_truncate t ~client ~upto_lsn]: multi-tree stores — record
    [client]'s floor and truncate only below every client's floor. *)
val propose_truncate : t -> client:string -> upto_lsn:int -> unit

(** [replay t ~from_lsn f] feeds surviving records (oldest first) to
    [f lsn payload], charging a sequential read per record (§4.4.2:
    "replaying the log at startup is extremely expensive"). *)
val replay : t -> from_lsn:int -> (int -> string -> unit) -> unit

val next_lsn : t -> int
val truncated_to : t -> int

(** Live (untruncated) log size. *)
val size_bytes : t -> int

(** Lifetime appended bytes (write-amplification accounting). *)
val appended_bytes : t -> int

val durability : t -> durability
