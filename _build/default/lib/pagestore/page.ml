(** Page-level byte helpers shared by the SSTable and B-Tree formats.

    Pages are fixed-size byte buffers. bLSM uses 4 KB pages — the minimum
    SSD transfer size, which also improves cache behaviour for workloads
    with poor locality (Appendix A.2) — while InnoDB used 16 KB (§5.3);
    both engines take the page size from their store's configuration. *)

let default_size = 4096

type id = int

(** Little-endian fixed-width integer accessors. *)

let get_u16 b pos = Char.code (Bytes.get b pos) lor (Char.code (Bytes.get b (pos + 1)) lsl 8)

let set_u16 b pos v =
  Bytes.set b pos (Char.chr (v land 0xFF));
  Bytes.set b (pos + 1) (Char.chr ((v lsr 8) land 0xFF))

let get_u32 b pos =
  get_u16 b pos lor (get_u16 b (pos + 2) lsl 16)

let set_u32 b pos v =
  set_u16 b pos (v land 0xFFFF);
  set_u16 b (pos + 2) ((v lsr 16) land 0xFFFF)

let get_u64 b pos =
  (* Fits OCaml's 63-bit int for every quantity we store (offsets, counts,
     timestamps); asserts if the top byte would overflow. *)
  let lo = get_u32 b pos in
  let hi = get_u32 b (pos + 4) in
  assert (hi land 0x8000_0000 = 0 || hi lsr 31 = 0);
  lo lor (hi lsl 32)

let set_u64 b pos v =
  set_u32 b pos (v land 0xFFFF_FFFF);
  set_u32 b (pos + 4) ((v lsr 32) land 0x7FFF_FFFF)

(** [blit_string s b pos] copies all of [s] into [b] at [pos]. *)
let blit_string s b pos = Bytes.blit_string s 0 b pos (String.length s)

(** [sub_string b pos len] extracts a string slice. *)
let sub_string b pos len = Bytes.sub_string b pos len
