(** Logical write-ahead log.

    bLSM uses a second, logical, log to provide durability for individual
    writes (§4.4.2); replaying it after a crash rebuilds C0. The engines
    under test run with group commit and no per-commit fsync ("none of the
    systems sync their logs at commit", §5.1), so appends cost sequential
    bandwidth only. Truncation is driven by merge completion; snowshoveling
    delays it because old entries stay live in C0 longer.

    The log also supports the paper's degraded-durability mode in which
    updates are not logged at all ([`None] durability). *)

type durability = Full | Degraded | None_

type record = { lsn : int; payload : string }

type t = {
  disk : Simdisk.Disk.t;
  durability : durability;
  mutable records : record list; (* newest first *)
  mutable next_lsn : int;
  mutable truncated_to : int; (* lsns below this are gone *)
  mutable bytes : int;
  mutable appended_bytes : int; (* lifetime, for write amplification *)
  floors : (string, int) Hashtbl.t;
      (* per-client truncation floors: with several trees sharing one log
         (partitioned stores), the log may only drop records below every
         client's floor *)
}

let create ?(durability = Full) disk =
  { disk; durability; records = []; next_lsn = 1; truncated_to = 1;
    bytes = 0; appended_bytes = 0; floors = Hashtbl.create 4 }

(* Each record pays a small framing overhead: lsn + length + crc. *)
let framing = 16

(** [append t payload] durably appends one logical record, returning its
    LSN. In [None_] durability mode the record is dropped (but still
    assigned an LSN so callers can reason uniformly). *)
let append t payload =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  (match t.durability with
  | None_ -> ()
  | Full | Degraded ->
      let cost = String.length payload + framing in
      Simdisk.Disk.seq_write t.disk ~bytes:cost;
      t.bytes <- t.bytes + cost;
      t.appended_bytes <- t.appended_bytes + cost;
      t.records <- { lsn; payload } :: t.records);
  lsn

(** [register_client t ~client] declares a log client with a floor at
    the current truncation point: until the client proposes a higher
    floor, nothing it might still need can be dropped. Trees register at
    creation, so a tree that has never merged still holds the log. *)
let register_client t ~client =
  if not (Hashtbl.mem t.floors client) then
    Hashtbl.replace t.floors client t.truncated_to

(** [propose_truncate t ~client ~upto_lsn] records that [client] no
    longer needs records below [upto_lsn], then truncates to the minimum
    over all clients' floors — so one tree's merge commit never drops
    records a co-hosted tree still needs for recovery. *)
let rec propose_truncate t ~client ~upto_lsn =
  let current = Option.value (Hashtbl.find_opt t.floors client) ~default:1 in
  if upto_lsn > current then begin
    Hashtbl.replace t.floors client upto_lsn;
    let min_floor = Hashtbl.fold (fun _ v acc -> min v acc) t.floors max_int in
    if min_floor > t.truncated_to && min_floor < max_int then
      truncate t ~upto_lsn:min_floor
  end

(** [truncate t ~upto_lsn] discards records with [lsn < upto_lsn]
    unconditionally (single-client logs; multi-tree stores must use
    {!propose_truncate}). *)
and truncate t ~upto_lsn =
  if upto_lsn > t.truncated_to then begin
    let keep, drop = List.partition (fun r -> r.lsn >= upto_lsn) t.records in
    let dropped = List.fold_left (fun a r -> a + String.length r.payload + framing) 0 drop in
    t.records <- keep;
    t.bytes <- t.bytes - dropped;
    t.truncated_to <- upto_lsn
  end

(** [replay t ~from_lsn f] feeds surviving records (oldest first, lsn >=
    [from_lsn]) to [f]. Replay is "extremely expensive" (§4.4.2): we charge
    a sequential read of the replayed bytes. *)
let replay t ~from_lsn f =
  let selected =
    List.filter (fun r -> r.lsn >= from_lsn) (List.rev t.records)
  in
  List.iter
    (fun r ->
      Simdisk.Disk.seq_read t.disk ~bytes:(String.length r.payload + framing);
      f r.lsn r.payload)
    selected

let next_lsn t = t.next_lsn
let truncated_to t = t.truncated_to
let size_bytes t = t.bytes
let appended_bytes t = t.appended_bytes
let durability t = t.durability
