(** Contiguous region allocator.

    Stasis' region allocator "allows us to allocate chunks of disk that are
    guaranteed contiguous, eliminating the possibility of disk
    fragmentation" (§4.4.2). Tree components and log segments each live in
    one contiguous page range, so merge I/O is genuinely sequential.

    First-fit over an address-ordered free list with coalescing on free. *)

type region = { start : Page.id; length : int }

type t = {
  mutable free : region list; (* sorted by start, non-adjacent *)
  mutable frontier : Page.id; (* first never-allocated page *)
  mutable allocated_pages : int;
  mutable high_watermark : Page.id;
}

let create () = { free = []; frontier = 0; allocated_pages = 0; high_watermark = 0 }

(** [allocate t n] returns a region of [n] contiguous pages. *)
let allocate t n =
  if n <= 0 then invalid_arg "Region_allocator.allocate: non-positive size";
  let rec take acc = function
    | [] -> None
    | r :: rest when r.length >= n ->
        let used = { start = r.start; length = n } in
        let remainder =
          if r.length = n then rest
          else { start = r.start + n; length = r.length - n } :: rest
        in
        Some (used, List.rev_append acc remainder)
    | r :: rest -> take (r :: acc) rest
  in
  let region =
    match take [] t.free with
    | Some (used, free') ->
        t.free <- free';
        used
    | None ->
        let r = { start = t.frontier; length = n } in
        t.frontier <- t.frontier + n;
        if t.frontier > t.high_watermark then t.high_watermark <- t.frontier;
        r
  in
  t.allocated_pages <- t.allocated_pages + n;
  region

(** [free t r] returns [r] to the free list, coalescing neighbours.
    Freeing overlapping or never-allocated ranges is a programming error
    detected by the sortedness check below. *)
let free t r =
  if r.length <= 0 then invalid_arg "Region_allocator.free: empty region";
  t.allocated_pages <- t.allocated_pages - r.length;
  let rec insert = function
    | [] -> [ r ]
    | x :: rest ->
        if r.start + r.length < x.start then r :: x :: rest
        else if r.start + r.length = x.start then
          { start = r.start; length = r.length + x.length } :: rest
        else if x.start + x.length = r.start then
          insert_merged { start = x.start; length = x.length + r.length } rest
        else if x.start + x.length < r.start then x :: insert rest
        else invalid_arg "Region_allocator.free: overlapping free"
  and insert_merged merged = function
    | [] -> [ merged ]
    | x :: rest when merged.start + merged.length = x.start ->
        { start = merged.start; length = merged.length + x.length } :: rest
    | rest -> merged :: rest
  in
  t.free <- insert t.free

let allocated_pages t = t.allocated_pages

let high_watermark t = t.high_watermark

(** Pages currently sitting on the free list (space amplification probe). *)
let free_pages t = List.fold_left (fun acc r -> acc + r.length) 0 t.free
