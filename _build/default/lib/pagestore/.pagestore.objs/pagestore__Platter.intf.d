lib/pagestore/platter.mli: Bytes Page
