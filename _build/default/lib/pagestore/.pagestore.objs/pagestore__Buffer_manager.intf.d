lib/pagestore/buffer_manager.mli: Bytes Page Platter Simdisk
