lib/pagestore/page.mli: Bytes
