lib/pagestore/wal.mli: Simdisk
