lib/pagestore/region_allocator.mli: Page
