lib/pagestore/page.ml: Bytes Char String
