lib/pagestore/region_allocator.ml: List Page
