lib/pagestore/store.mli: Buffer_manager Bytes Page Region_allocator Simdisk Wal
