lib/pagestore/wal.ml: Hashtbl List Option Simdisk String
