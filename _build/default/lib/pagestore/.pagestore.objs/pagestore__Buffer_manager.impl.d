lib/pagestore/buffer_manager.ml: Array Bytes Fun Hashtbl Page Platter Simdisk
