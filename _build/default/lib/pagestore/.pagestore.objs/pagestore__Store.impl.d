lib/pagestore/store.ml: Buffer_manager Bytes Hashtbl Option Page Platter Region_allocator Simdisk String Wal
