lib/pagestore/platter.ml: Bytes Hashtbl Page
