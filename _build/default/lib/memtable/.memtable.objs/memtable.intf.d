lib/memtable/memtable.mli: Kv Skiplist
