lib/memtable/skiplist.mli:
