lib/memtable/skiplist.ml: Array List Obj Repro_util String
