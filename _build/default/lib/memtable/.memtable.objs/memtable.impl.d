lib/memtable/memtable.ml: Kv List Skiplist String
