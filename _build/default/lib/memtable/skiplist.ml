(** Deterministic skip list: the ordered map behind C0.

    The in-memory tree must support efficient ordered scans and cheap
    successor queries (§2.3.1); the snowshovel cursor (§4.2) additionally
    needs "smallest key >= cursor" in O(log n). A skip list provides all of
    these with simple single-threaded mutation. Levels are drawn from the
    repository PRNG, so runs are reproducible. *)

let max_level = 20
let branching = 4 (* promote with probability 1/4 *)

type 'a node = {
  key : string; (* "" for the head sentinel *)
  mutable value : 'a;
  forward : 'a node option array;
}

type 'a t = {
  head : 'a node;
  prng : Repro_util.Prng.t;
  mutable level : int; (* highest level in use, >= 1 *)
  mutable length : int;
}

let create ?(seed = 42) () =
  {
    head =
      { key = ""; value = Obj.magic 0; forward = Array.make max_level None };
    prng = Repro_util.Prng.of_int seed;
    level = 1;
    length = 0;
  }

let length t = t.length

let is_empty t = t.length = 0

let random_level t =
  let rec go lvl =
    if lvl < max_level && Repro_util.Prng.int t.prng branching = 0 then
      go (lvl + 1)
    else lvl
  in
  go 1

(* Walk down from the top level, collecting the rightmost node < key at
   each level into [update]. *)
let find_predecessors t key update =
  let x = ref t.head in
  for lvl = t.level - 1 downto 0 do
    let rec advance () =
      match !x.forward.(lvl) with
      | Some nxt when String.compare nxt.key key < 0 ->
          x := nxt;
          advance ()
      | _ -> ()
    in
    advance ();
    update.(lvl) <- !x
  done;
  !x

(** [find t key] returns the stored value, if any. *)
let find t key =
  let x = ref t.head in
  for lvl = t.level - 1 downto 0 do
    let rec advance () =
      match !x.forward.(lvl) with
      | Some nxt when String.compare nxt.key key < 0 ->
          x := nxt;
          advance ()
      | _ -> ()
    in
    advance ()
  done;
  match !x.forward.(0) with
  | Some n when String.equal n.key key -> Some n.value
  | _ -> None

(** [update t key f] inserts or modifies in one descent: [f None] for a
    fresh key, [f (Some old)] to replace. Returns the previous value. *)
let update t key f =
  let update_arr = Array.make max_level t.head in
  let pred = find_predecessors t key update_arr in
  match pred.forward.(0) with
  | Some n when String.equal n.key key ->
      let old = n.value in
      n.value <- f (Some old);
      Some old
  | _ ->
      let lvl = random_level t in
      if lvl > t.level then begin
        for l = t.level to lvl - 1 do
          update_arr.(l) <- t.head
        done;
        t.level <- lvl
      end;
      let node = { key; value = f None; forward = Array.make lvl None } in
      for l = 0 to lvl - 1 do
        node.forward.(l) <- update_arr.(l).forward.(l);
        update_arr.(l).forward.(l) <- Some node
      done;
      t.length <- t.length + 1;
      None

(** [set t key v] is [update] ignoring the previous value. *)
let set t key v = ignore (update t key (fun _ -> v))

(** [remove t key] deletes the binding, returning the removed value. *)
let remove t key =
  let update_arr = Array.make max_level t.head in
  let _ = find_predecessors t key update_arr in
  match update_arr.(0).forward.(0) with
  | Some n when String.equal n.key key ->
      for l = 0 to Array.length n.forward - 1 do
        match update_arr.(l).forward.(l) with
        | Some m when m == n -> update_arr.(l).forward.(l) <- n.forward.(l)
        | _ -> ()
      done;
      while t.level > 1 && t.head.forward.(t.level - 1) = None do
        t.level <- t.level - 1
      done;
      t.length <- t.length - 1;
      Some n.value
  | _ -> None

(** [min_binding t] is the smallest key, if any. *)
let min_binding t =
  match t.head.forward.(0) with
  | Some n -> Some (n.key, n.value)
  | None -> None

(** [succ_geq t key] returns the smallest binding with key >= [key]:
    the snowshovel cursor's primitive. *)
let succ_geq t key =
  let x = ref t.head in
  for lvl = t.level - 1 downto 0 do
    let rec advance () =
      match !x.forward.(lvl) with
      | Some nxt when String.compare nxt.key key < 0 ->
          x := nxt;
          advance ()
      | _ -> ()
    in
    advance ()
  done;
  match !x.forward.(0) with Some n -> Some (n.key, n.value) | None -> None

(** [iter_from t key f] applies [f] to bindings with key >= [key], in
    order, while [f] returns [true]. *)
let iter_from t key f =
  let rec go = function
    | None -> ()
    | Some n ->
        if String.compare n.key key >= 0 then
          if f n.key n.value then go n.forward.(0) else ()
        else go n.forward.(0)
  in
  (* Position near key first to avoid O(n) prefix walk. *)
  let x = ref t.head in
  for lvl = t.level - 1 downto 0 do
    let rec advance () =
      match !x.forward.(lvl) with
      | Some nxt when String.compare nxt.key key < 0 ->
          x := nxt;
          advance ()
      | _ -> ()
    in
    advance ()
  done;
  go !x.forward.(0)

(** [iter t f] applies [f] to all bindings in key order. *)
let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
        f n.key n.value;
        go n.forward.(0)
  in
  go t.head.forward.(0)

(** [fold t init f] folds bindings in key order. *)
let fold t init f =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f acc n.key n.value) n.forward.(0)
  in
  go init t.head.forward.(0)

let to_list t = List.rev (fold t [] (fun acc k v -> (k, v) :: acc))
