(** C0: the in-memory tree component.

    An update-in-place ordered map that "fits in memory" and supports
    efficient ordered scans (§2.3.1). Tracks its own RAM footprint so that
    the merge schedulers can compute fill fractions, and records the WAL
    LSN of each live entry so log truncation can be delayed exactly as long
    as snowshoveling keeps old entries live (§4.4.2). *)

module Skiplist = Skiplist
(** Re-export: the skip list is part of this library's public surface. *)

type slot = {
  mutable entry : Kv.Entry.t;
  mutable lsn : int;  (** oldest LSN the composed state depends on *)
  mutable lsn_newest : int;  (** newest LSN folded in (durability filter) *)
}

type t = {
  sl : slot Skiplist.t;
  resolver : Kv.Entry.resolver;
  mutable bytes : int;
}

(* Approximate per-record RAM overhead: skip-list node, pointers, slot. *)
let node_overhead = 64

let entry_bytes key entry =
  String.length key + Kv.Entry.encoded_size entry + node_overhead

let create ?(seed = 42) ~resolver () =
  { sl = Skiplist.create ~seed (); resolver; bytes = 0 }

let count t = Skiplist.length t.sl

let bytes t = t.bytes

let is_empty t = Skiplist.is_empty t.sl

(** [write t ~lsn key entry] applies one logical write. A [Delta] composes
    with any state already buffered in C0; [Base] and [Tombstone] replace
    it. The slot keeps the *oldest* LSN it still depends on, because replay
    must restart from there to rebuild the composed state. *)
let write t ~lsn key entry =
  let previous = ref None in
  ignore
    (Skiplist.update t.sl key (fun existing ->
         match existing with
         | None -> { entry; lsn; lsn_newest = lsn }
         | Some slot ->
             previous := Some (entry_bytes key slot.entry);
             let merged =
               Kv.Entry.merge t.resolver ~newer:entry ~older:slot.entry
             in
             let oldest =
               match entry with
               | Kv.Entry.Delta _ -> slot.lsn (* still depends on older state *)
               | Kv.Entry.Base _ | Kv.Entry.Tombstone -> lsn
             in
             slot.entry <- merged;
             slot.lsn <- oldest;
             slot.lsn_newest <- max slot.lsn_newest lsn;
             slot));
  let added = entry_bytes key (match Skiplist.find t.sl key with
      | Some s -> s.entry
      | None -> entry)
  in
  (match !previous with
  | Some old_bytes -> t.bytes <- t.bytes - old_bytes + added
  | None -> t.bytes <- t.bytes + added)

let get t key =
  match Skiplist.find t.sl key with Some s -> Some s.entry | None -> None

(** [remove t key] physically drops a key (used when a consumed entry is
    moved into C1, not for logical deletes — those are tombstone writes). *)
let remove t key =
  match Skiplist.remove t.sl key with
  | Some s ->
      t.bytes <- t.bytes - entry_bytes key s.entry;
      Some s.entry
  | None -> None

(** [consume_geq_lsn t key] pops the smallest binding with key >= [key]
    (the snowshovel primitive), also yielding the newest LSN folded into
    it. [None] when no key remains at or after the cursor (run wraps). *)
let consume_geq_lsn t key =
  match Skiplist.succ_geq t.sl key with
  | Some (k, slot) ->
      ignore (Skiplist.remove t.sl k);
      t.bytes <- t.bytes - entry_bytes k slot.entry;
      Some (k, slot.entry, slot.lsn_newest)
  | None -> None

let consume_geq t key =
  match consume_geq_lsn t key with Some (k, e, _) -> Some (k, e) | None -> None

(** [consume_min t] pops the overall smallest binding. *)
let consume_min t =
  match Skiplist.min_binding t.sl with
  | Some (k, _) -> consume_geq t k
  | None -> None

(** [peek_geq_lsn t key] inspects without consuming, with the newest
    contributing LSN. *)
let peek_geq_lsn t key =
  match Skiplist.succ_geq t.sl key with
  | Some (k, slot) -> Some (k, slot.entry, slot.lsn_newest)
  | None -> None

(** [peek_geq t key] inspects without consuming. *)
let peek_geq t key =
  match Skiplist.succ_geq t.sl key with
  | Some (k, slot) -> Some (k, slot.entry)
  | None -> None

(** [oldest_lsn t] is the smallest LSN any live entry depends on, or [None]
    when empty. O(n); called once per merge completion to pick the WAL
    truncation point. *)
let oldest_lsn t =
  Skiplist.fold t.sl None (fun acc _ slot ->
      match acc with
      | None -> Some slot.lsn
      | Some m -> Some (min m slot.lsn))

(** [iter_from t key f] visits bindings with key >= [key] in order while
    [f] returns [true]; the read and scan paths use this. *)
let iter_from t key f =
  Skiplist.iter_from t.sl key (fun k slot -> f k slot.entry)

let iter t f = Skiplist.iter t.sl (fun k slot -> f k slot.entry)

let fold t init f = Skiplist.fold t.sl init (fun acc k slot -> f acc k slot.entry)

let to_list t = List.map (fun (k, s) -> (k, s.entry)) (Skiplist.to_list t.sl)
