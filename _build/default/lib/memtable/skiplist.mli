(** Deterministic skip list: the ordered map behind C0.

    Supports the cheap successor queries the snowshovel cursor needs
    ("smallest key >= cursor", §4.2) in O(log n). Levels are drawn from
    the repository PRNG, so runs are reproducible. Not thread-safe. *)

type 'a t

val create : ?seed:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val find : 'a t -> string -> 'a option

(** [update t key f] inserts or modifies in one descent: [f None] for a
    fresh key, [f (Some old)] to replace. Returns the previous value. *)
val update : 'a t -> string -> ('a option -> 'a) -> 'a option

(** [set t key v] binds unconditionally. *)
val set : 'a t -> string -> 'a -> unit

(** [remove t key] deletes the binding, returning the removed value. *)
val remove : 'a t -> string -> 'a option

val min_binding : 'a t -> (string * 'a) option

(** [succ_geq t key] is the smallest binding with key >= [key]. *)
val succ_geq : 'a t -> string -> (string * 'a) option

(** [iter_from t key f] applies [f] to bindings with key >= [key], in
    order, while [f] returns [true]. *)
val iter_from : 'a t -> string -> (string -> 'a -> bool) -> unit

val iter : 'a t -> (string -> 'a -> unit) -> unit
val fold : 'a t -> 'b -> ('b -> string -> 'a -> 'b) -> 'b
val to_list : 'a t -> (string * 'a) list
