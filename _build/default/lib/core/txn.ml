(** Optimistic multi-key transactions over the bLSM tree.

    The paper closes by pointing at "unified transaction and analytical
    processing systems" built from the pieces it ships: the logical log
    "can be used to support ACID transactions" (§4.4.2). This module is
    that construction, using the machinery the reproduction already has:

    - {b versions}: every record carries the newest WAL LSN folded into it
      ({!Tree.read_version}), so a read can be validated later;
    - {b atomic commit}: {!Tree.write_batch} makes the write set a single
      logical-log record — all-or-nothing across crashes.

    Concurrency control is OCC (validate-at-commit): a transaction
    buffers reads and writes; [commit] re-reads every read key's version
    and aborts with [`Conflict] if any changed since it was read. In the
    single-writer simulation, "concurrent" means any tree mutation
    interleaved between [begin_txn] and [commit] — other transactions or
    bare writes. Writes are invisible to other readers until commit
    (snapshot-your-own-writes semantics inside the transaction). *)

module SMap = Map.Make (String)

type t = {
  tree : Tree.t;
  mutable reads : int SMap.t;  (** key -> version observed *)
  mutable writes : Kv.Entry.t SMap.t;  (** buffered write set *)
  mutable write_order : string list;  (** first-write order, reversed *)
  mutable finished : bool;
}

let begin_txn tree =
  { tree; reads = SMap.empty; writes = SMap.empty; write_order = []; finished = false }

let check_open t = if t.finished then invalid_arg "Txn: already finished"

(* Record the version of a key the first time the transaction depends on
   it; later reads of the same key reuse the recorded version. *)
let track_read t key =
  if not (SMap.mem key t.reads) then
    t.reads <- SMap.add key (Tree.read_version t.tree key) t.reads

(** [get t key] reads through the transaction's own writes, then the
    tree; tree reads join the validation read-set. *)
let get t key =
  check_open t;
  match SMap.find_opt key t.writes with
  | Some (Kv.Entry.Base v) -> Some v
  | Some Kv.Entry.Tombstone -> None
  | Some (Kv.Entry.Delta ds) ->
      track_read t key;
      let base = Tree.get t.tree key in
      Kv.Entry.resolve (Tree.config t.tree).Config.resolver ~base ds
  | None ->
      track_read t key;
      Tree.get t.tree key

let buffer t key entry =
  check_open t;
  if not (SMap.mem key t.writes) then t.write_order <- key :: t.write_order;
  let merged =
    match SMap.find_opt key t.writes with
    | Some older ->
        Kv.Entry.merge (Tree.config t.tree).Config.resolver ~newer:entry ~older
    | None -> entry
  in
  t.writes <- SMap.add key merged t.writes

let put t key value = buffer t key (Kv.Entry.Base value)
let delete t key = buffer t key Kv.Entry.Tombstone
let apply_delta t key d = buffer t key (Kv.Entry.Delta [ d ])

(** [read_modify_write t key f]: a tracked read plus a buffered write —
    the canonical OCC increment. *)
let read_modify_write t key f = put t key (f (get t key))

(** [commit t] validates the read-set and atomically applies the write
    set. [`Conflict keys] lists the reads that changed; nothing is
    written in that case and the transaction may simply be retried. *)
let commit t =
  check_open t;
  t.finished <- true;
  let conflicts =
    SMap.fold
      (fun key v acc ->
        if Tree.read_version t.tree key <> v then key :: acc else acc)
      t.reads []
  in
  if conflicts <> [] then `Conflict (List.rev conflicts)
  else begin
    let ops =
      List.rev_map (fun k -> (k, SMap.find k t.writes)) t.write_order
    in
    Tree.write_batch t.tree ops;
    `Committed
  end

(** [abort t] discards the transaction; the tree is untouched. *)
let abort t =
  check_open t;
  t.finished <- true

(** [run tree f] executes [f] with automatic retry on conflict (at most
    [max_retries], default 16). Returns [f]'s result. *)
let run ?(max_retries = 16) tree f =
  let rec go attempt =
    let txn = begin_txn tree in
    let result = f txn in
    match commit txn with
    | `Committed -> result
    | `Conflict _ ->
        if attempt >= max_retries then failwith "Txn.run: too many conflicts"
        else go (attempt + 1)
  in
  go 0
