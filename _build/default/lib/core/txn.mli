(** Optimistic multi-key transactions (§4.4.2, §7).

    Validate-at-commit OCC over the bLSM tree: reads record the key's
    version ({!Tree.read_version}); writes buffer locally and become one
    atomic {!Tree.write_batch} at commit, after re-validating every read.
    A conflicted commit writes nothing and can simply be retried. *)

type t

val begin_txn : Tree.t -> t

(** [get t key] reads through the transaction's own writes, then the
    tree; tree reads join the validation read-set. *)
val get : t -> string -> string option

val put : t -> string -> string -> unit
val delete : t -> string -> unit
val apply_delta : t -> string -> string -> unit
val read_modify_write : t -> string -> (string option -> string) -> unit

(** [`Conflict keys]: reads that changed since they were taken; the tree
    is untouched. *)
val commit : t -> [ `Committed | `Conflict of string list ]

val abort : t -> unit

(** [run ?max_retries tree f]: execute-and-commit with automatic retry on
    conflict (default 16 attempts; raises [Failure] beyond that). *)
val run : ?max_retries:int -> Tree.t -> (t -> 'a) -> 'a
