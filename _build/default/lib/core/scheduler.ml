(** Pacing math for the level schedulers (§4.1, §4.3).

    These are pure functions from observed tree state to merge-work quotas;
    {!Tree} applies the quotas to the merge state machines before admitting
    each write. Keeping them pure makes the estimator properties (bounded,
    monotone, smooth) directly testable. *)

(** outprogress_i = (inprogress_i + floor(|C_i| / |RAM|_i)) / ceil(R)

    The floor term estimates how many of the R upstream merges this
    component has absorbed; inprogress is the fraction of the current one.
    Ranges over [0, 1] and reaches 1 exactly when the component is ready to
    be merged downstream (§4.1). *)
let outprogress ~inprogress ~ci_bytes ~ram_bytes ~r =
  let r_ceil = Float.of_int (int_of_float (Float.ceil r)) in
  if r_ceil <= 0.0 then 1.0
  else
    let sweeps = float_of_int (ci_bytes / max 1 ram_bytes) in
    min 1.0 ((inprogress +. sweeps) /. r_ceil)

(** Gear pacing: the upstream fill fraction may not outrun the downstream
    merge's progress. Returns how far downstream progress lags (a fraction
    of total merge work that must run now), 0 if no work is owed. *)
let gear_lag ~upstream_fill ~downstream_inprogress =
  Float.max 0.0 (upstream_fill -. downstream_inprogress)

(** Spring pacing (deadline controller): finish [remaining_bytes] of merge
    input before C0 climbs from [fill] to [high]. Below [low] the merge
    pauses entirely — that is the spring absorbing load dips (§4.3).
    Returns the merge bytes owed for a write of [write_bytes]. *)
let spring_quota ~write_bytes ~fill ~low ~high ~remaining_bytes ~c0_capacity =
  if fill <= low || remaining_bytes <= 0 then 0
  else begin
    let headroom_bytes =
      Float.max (float_of_int write_bytes)
        ((high -. fill) *. float_of_int c0_capacity)
    in
    let rate = float_of_int remaining_bytes /. headroom_bytes in
    int_of_float (Float.ceil (float_of_int write_bytes *. rate))
  end

(** Quota owed by gear-style lag coupling, in bytes of the downstream
    merge's input. Slightly overshoots ([slack]) so the downstream merge
    stays ahead instead of oscillating around the constraint. *)
let lag_quota ~lag ~total_bytes ?(slack = 1.02) () =
  if lag <= 0.0 then 0
  else int_of_float (Float.ceil (lag *. slack *. float_of_int total_bytes))
