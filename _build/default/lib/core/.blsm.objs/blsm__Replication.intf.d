lib/core/replication.mli: Config Pagestore Tree
