lib/core/component.ml: Bloom Sstable
