lib/core/tree.ml: Bloom Buffer Component Config Float Kv List Memtable Merge_process Option Pagestore Repro_util Scheduler Simdisk Sstable String
