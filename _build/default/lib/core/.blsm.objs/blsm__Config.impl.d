lib/core/config.ml: Kv
