lib/core/scheduler.mli:
