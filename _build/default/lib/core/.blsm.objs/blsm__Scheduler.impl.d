lib/core/scheduler.ml: Float
