lib/core/tree.mli: Config Kv Pagestore Repro_util Simdisk
