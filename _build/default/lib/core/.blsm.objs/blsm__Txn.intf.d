lib/core/txn.mli: Tree
