lib/core/merge_process.mli: Bloom Component Config Kv Memtable Pagestore Sstable
