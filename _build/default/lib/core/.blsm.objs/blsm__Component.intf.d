lib/core/component.mli: Bloom Kv Sstable
