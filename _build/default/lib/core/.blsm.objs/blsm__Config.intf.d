lib/core/config.mli: Kv
