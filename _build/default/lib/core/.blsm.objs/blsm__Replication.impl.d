lib/core/replication.ml: Kv List Pagestore Tree
