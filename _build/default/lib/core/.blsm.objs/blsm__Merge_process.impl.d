lib/core/merge_process.ml: Bloom Component Config Kv Memtable Option Sstable String
