lib/core/txn.ml: Config Kv List Map String Tree
