lib/core/partitioned.mli: Config Kv Pagestore Simdisk Tree
