lib/core/partitioned.ml: Array Config Kv List Pagestore Printf String Tree
