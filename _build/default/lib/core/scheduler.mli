(** Pacing math for the level schedulers (§4.1, §4.3).

    Pure functions from observed tree state to merge-work quotas; {!Tree}
    applies them before admitting each write. Keeping them pure makes the
    estimator properties (bounded, monotone, smooth) directly testable. *)

(** [outprogress ~inprogress ~ci_bytes ~ram_bytes ~r] implements §4.1:
    {v outprogress_i = (inprogress_i + floor(|C_i|/|RAM|_i)) / ceil(R) v}
    The floor term estimates how many of the R upstream merges this
    component has absorbed. Ranges over [0, 1]; 1 means the component is
    ready to merge downstream. *)
val outprogress :
  inprogress:float -> ci_bytes:int -> ram_bytes:int -> r:float -> float

(** [gear_lag ~upstream_fill ~downstream_inprogress] is how far the
    downstream merge lags the upstream fill (0 when no work is owed):
    the gear constraint is [upstream_fill <= downstream_inprogress]. *)
val gear_lag : upstream_fill:float -> downstream_inprogress:float -> float

(** [spring_quota ~write_bytes ~fill ~low ~high ~remaining_bytes
    ~c0_capacity] is the deadline controller of the spring-and-gear
    scheduler: merge bytes owed for one write so that [remaining_bytes]
    of merge input completes before C0 climbs from [fill] to [high].
    Zero at or below [low] — the spring absorbing load dips (§4.3). *)
val spring_quota :
  write_bytes:int ->
  fill:float ->
  low:float ->
  high:float ->
  remaining_bytes:int ->
  c0_capacity:int ->
  int

(** [lag_quota ~lag ~total_bytes ()] converts a gear lag into input
    bytes, with a small overshoot ([slack], default 1.02) to avoid
    oscillating on the constraint. *)
val lag_quota : lag:float -> total_bytes:int -> ?slack:float -> unit -> int
