(** Bloom filter with double hashing (§4.4.3).

    Probes are g_i(x) = h1(x) + i*h2(x) (Kirsch–Mitzenmacher), giving the
    asymptotics of k independent hashes from two. At the paper's 10
    bits/item with the optimal hash count, false positives stay below 1%
    (§3.1). Updates are monotonic (bits only go 0 -> 1), so readers never
    need to be insulated from concurrent updates. *)

type t

(** [create ?bits_per_item ~expected_items ()] sizes the filter for
    [expected_items] insertions. [bits_per_item] defaults to 10. *)
val create : ?bits_per_item:int -> expected_items:int -> unit -> t

(** [add t key] inserts [key]; there is no delete (components are
    append-only). *)
val add : t -> string -> unit

(** [mem t key] is [false] only if [key] was definitely never added. *)
val mem : t -> string -> bool

val inserted : t -> int
val size_bytes : t -> int

(** Expected false-positive rate at the current fill:
    (1 - e^(-kn/m))^k. *)
val expected_fp_rate : t -> float

(** {1 Serialization} — tests/tooling only; bLSM deliberately does not
    persist filters (rebuilt by post-crash scans, §4.4.3). *)

val to_string : t -> string
val of_string : string -> t
