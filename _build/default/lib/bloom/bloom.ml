(** Bloom filter with double hashing.

    Follows §4.4.3: the filter is "based upon double hashing" (Kirsch and
    Mitzenmacher: two independent hashes g_i(x) = h1(x) + i*h2(x) give the
    same asymptotic false-positive rate as k independent hashes). One
    filter guards each on-disk tree component; it is created when a merge
    creates the component, sized from the component's key count for a
    false-positive rate below 1%, and never needs deletions because the
    on-disk trees are append-only.

    10 bits per item with the optimal number of hashes gives ~1% false
    positives (§3.1); at 1000-byte values this is the paper's ~5% memory
    overhead (Appendix A). *)

type t = {
  bits : Bytes.t;
  nbits : int;
  hashes : int;
  mutable inserted : int;
}

(* 64-bit FNV-1a over the key, then two mixes to derive h1/h2. *)
let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let mix h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xFF51AFD7ED558CCDL in
  Int64.logxor h (Int64.shift_right_logical h 29)

let hash_pair key =
  let h = fnv1a key in
  let h1 = Int64.to_int (Int64.logand h 0x3FFFFFFFFFFFFFFFL) in
  let h2 = Int64.to_int (Int64.logand (mix h) 0x3FFFFFFFFFFFFFFFL) in
  (h1, h2 lor 1 (* odd stride hits every bit position *))

(** [create ~expected_items ~bits_per_item ()] sizes the filter for
    [expected_items] insertions. [bits_per_item] defaults to 10 (the
    paper's choice, <1% false positives). *)
let create ?(bits_per_item = 10) ~expected_items () =
  let expected_items = max 1 expected_items in
  let nbits = max 64 (expected_items * bits_per_item) in
  (* Optimal hash count k = m/n * ln 2 ~= 0.693 * bits_per_item. *)
  let hashes = max 1 (int_of_float (0.6931 *. float_of_int bits_per_item +. 0.5)) in
  { bits = Bytes.make ((nbits + 7) / 8) '\000'; nbits; hashes; inserted = 0 }

let set_bit t i =
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl bit)))

let get_bit t i =
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.get t.bits byte) land (1 lsl bit) <> 0

(* Reduce both hashes below nbits so the probe arithmetic cannot
   overflow; a zero stride would probe one bit repeatedly, so avoid it. *)
let probes t key =
  let h1, h2 = hash_pair key in
  let h1 = h1 mod t.nbits in
  let h2 =
    let h = h2 mod t.nbits in
    if h = 0 then 1 else h
  in
  (h1, h2)

(** [add t key] inserts [key]. Updates are monotonic (bits only go 0->1),
    which is why bLSM readers never need to be insulated from concurrent
    filter updates (§4.4.3). *)
let add t key =
  let h1, h2 = probes t key in
  for i = 0 to t.hashes - 1 do
    set_bit t ((h1 + (i * h2)) mod t.nbits)
  done;
  t.inserted <- t.inserted + 1

(** [mem t key] is [false] only if [key] was definitely never added. *)
let mem t key =
  let h1, h2 = probes t key in
  let rec go i =
    i >= t.hashes || (get_bit t ((h1 + (i * h2)) mod t.nbits) && go (i + 1))
  in
  go 0

let inserted t = t.inserted

let size_bytes t = Bytes.length t.bits

(** Expected false-positive rate at the current fill. *)
let expected_fp_rate t =
  let k = float_of_int t.hashes in
  let n = float_of_int t.inserted in
  let m = float_of_int t.nbits in
  (1.0 -. exp (-.k *. n /. m)) ** k

(** {1 Serialization} — used only by tests and tooling; bLSM deliberately
    does *not* persist filters (they are rebuilt by post-crash merges,
    §4.4.3). *)

let to_string t =
  let buf = Buffer.create (size_bytes t + 16) in
  Repro_util.Varint.write buf t.nbits;
  Repro_util.Varint.write buf t.hashes;
  Repro_util.Varint.write buf t.inserted;
  Buffer.add_bytes buf t.bits;
  Buffer.contents buf

let of_string s =
  let nbits, pos = Repro_util.Varint.read s 0 in
  let hashes, pos = Repro_util.Varint.read s pos in
  let inserted, pos = Repro_util.Varint.read s pos in
  let bits = Bytes.of_string (String.sub s pos ((nbits + 7) / 8)) in
  { bits; nbits; hashes; inserted }
