(** YCSB-style key formatting.

    YCSB identifies records as ["user" ^ hash(sequence)] so that a
    sequential load produces keys in random *stored* order while remaining
    reconstructible from the record number. We reproduce that: keys are
    fixed-width, zero-padded decimal renderings of a 64-bit mix of the
    record id, which keeps them "tens of bytes" like the paper's setup. *)

(* fmix64 finalizer from MurmurHash3: a cheap, well-mixed bijection.
   An additive offset first, because the finalizer fixes zero. *)
let fnv_mix id =
  let h = Int64.add (Int64.of_int id) 0x9E3779B97F4A7C15L in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xFF51AFD7ED558CCDL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xC4CEB9FE1A85EC53L in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  h

(** [key_of_id id] is the YCSB-style hashed key for record number [id]. *)
let key_of_id id =
  let h = Int64.logand (fnv_mix id) 0x7FFFFFFFFFFFFFFFL in
  Printf.sprintf "user%019Ld" h

(** [ordered_key_of_id id] preserves record-number order (used for
    pre-sorted bulk loads and scan workloads). *)
let ordered_key_of_id id = Printf.sprintf "user%019d" id

(** [value prng n] is a synthetic payload of [n] bytes. Payloads are
    printable so dumps stay readable; contents do not affect behaviour. *)
let value prng n =
  String.init n (fun _ -> Char.chr (97 + Prng.int prng 26))
