lib/util/keygen.ml: Char Int64 Printf Prng String
