lib/util/timeseries.mli:
