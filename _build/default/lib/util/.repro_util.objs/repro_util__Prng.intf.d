lib/util/prng.mli:
