lib/util/crc32c.ml: Array Bytes Char Lazy String
