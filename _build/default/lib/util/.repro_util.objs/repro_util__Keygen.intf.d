lib/util/keygen.mli: Prng
