lib/util/timeseries.ml: Hashtbl Histogram List
