lib/util/crc32c.mli:
