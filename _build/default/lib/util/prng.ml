(** Deterministic pseudo-random number generator (splitmix64).

    Every randomized component in the repository (skip list levels, workload
    generators, property tests that need auxiliary randomness) draws from
    this generator so that experiments are reproducible from a seed. *)

type t = { mutable state : int64 }

let create ?(seed = 0x9E3779B97F4A7C15L) () = { state = seed }

let of_int seed = { state = Int64.of_int seed }

(* splitmix64 step: the canonical constants from Steele et al. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [bits t] returns 62 nonnegative pseudo-random bits as an OCaml [int]. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v > max_int - bound then go () else v
  in
  go ()

(** [float t] is uniform in [0, 1). *)
let float t = Stdlib.float_of_int (bits t) /. 4611686018427387904.0 (* 2^62 *)

(** [bool t] is a fair coin flip. *)
let bool t = bits t land 1 = 1

(** [split t] derives an independent generator; used to give each component
    its own stream without coupling their consumption rates. *)
let split t =
  let s = next_int64 t in
  { state = Int64.logxor s 0xD1B54A32D192ED03L }

(** In-place Fisher-Yates shuffle. *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(** [bytes t n] is an [n]-byte random string (used for synthetic values). *)
let bytes t n =
  String.init n (fun _ -> Char.chr (int t 256))
