(** Bucketed timeseries of throughput and latency over simulated time —
    the accumulator behind the paper's Figures 7 and 9. *)

type t

(** [create ~width_us] buckets completions by simulated time. *)
val create : width_us:int -> t

(** [record t ~time_us ~latency_us] attributes one completed operation
    to the bucket containing its completion time. *)
val record : t -> time_us:int -> latency_us:int -> unit

type row = {
  t_sec : float;
  ops_per_sec : float;
  mean_latency_ms : float;
  p99_latency_ms : float;
  max_latency_ms : float;
}

(** One row per bucket in time order, including empty buckets between
    the first and last — an empty bucket is a full stall. *)
val rows : t -> row list
