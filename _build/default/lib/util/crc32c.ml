(** CRC32C (Castagnoli) checksums, table-driven.

    Page headers and log records carry a CRC so that recovery can detect
    torn writes, mirroring the checks Stasis performs for bLSM (§4.4.2). *)

let polynomial = 0x82F63B78 (* reflected CRC32C polynomial *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := (!c lsr 1) lxor polynomial
           else c := !c lsr 1
         done;
         !c))

(** [update crc s pos len] folds [len] bytes of [s] starting at [pos] into
    a running checksum. Start from [0xFFFFFFFF]-complemented state via
    {!string} unless composing incrementally. *)
let update crc s pos len =
  let table = Lazy.force table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    let idx = (!crc lxor Char.code s.[i]) land 0xFF in
    crc := (!crc lsr 8) lxor table.(idx)
  done;
  !crc

(** [string s] is the CRC32C of the whole string. *)
let string s =
  let crc = update 0xFFFFFFFF s 0 (String.length s) in
  crc lxor 0xFFFFFFFF

(** [bytes b pos len] checksums a slice of a byte buffer. *)
let bytes b pos len =
  let crc = update 0xFFFFFFFF (Bytes.unsafe_to_string b) pos len in
  crc lxor 0xFFFFFFFF
