(** YCSB-style key formatting: fixed-width keys derived from record ids. *)

(** A well-mixed 64-bit bijection of [id] (MurmurHash3 finalizer with an
    additive offset so 0 is not a fixed point). *)
val fnv_mix : int -> int64

(** Hashed key for record [id] ("user" + 19 digits): sequential loads
    produce random *stored* order, as YCSB does. *)
val key_of_id : int -> string

(** Order-preserving variant (pre-sorted bulk loads, scan workloads). *)
val ordered_key_of_id : int -> string

(** [value prng n]: printable synthetic payload of [n] bytes. *)
val value : Prng.t -> int -> string
