(** LEB128-style variable-length integer encoding.

    Used by the SSTable data-page format and the write-ahead log so that
    small keys and values pay small headers, as in the paper's append-only
    data page layout (Appendix A.2). *)

(** [write buf n] appends the varint encoding of [n] (must be >= 0). *)
let write buf n =
  if n < 0 then invalid_arg "Varint.write: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      go (n lsr 7)
    end
  in
  go n

(** [read s pos] decodes a varint at [pos]; returns [(value, next_pos)].
    Raises [Invalid_argument] on truncated or oversized input. *)
let read s pos =
  let len = String.length s in
  let rec go acc shift pos =
    if pos >= len then invalid_arg "Varint.read: truncated";
    if shift > 62 then invalid_arg "Varint.read: overflow";
    let b = Char.code s.[pos] in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b < 0x80 then (acc, pos + 1) else go acc (shift + 7) (pos + 1)
  in
  go 0 0 pos

(** [read_bytes b pos] is [read] over a [Bytes.t] buffer. *)
let read_bytes b pos =
  read (Bytes.unsafe_to_string b) pos

(** [size n] is the encoded length of [n] in bytes. *)
let size n =
  if n < 0 then invalid_arg "Varint.size: negative";
  let rec go n acc = if n < 0x80 then acc else go (n lsr 7) (acc + 1) in
  go n 1
