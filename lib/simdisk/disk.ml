(** Simulated storage device: a clock plus I/O cost accounting.

    The paper reasons about indexes exclusively in terms of (a) seeks -
    "at least one random read is required to access an uncached piece of
    data, and the seek cost generally dwarfs the transfer cost" - and (b)
    bytes of sequential I/O (write amplification, §2.1). This device
    charges exactly those quantities against a simulated clock, so
    throughput and latency fall out of the same arithmetic the paper uses,
    deterministically.

    Page payloads live in {!Pagestore}; this module never stores data. *)

type counters = {
  mutable seeks : int;  (** random read positionings *)
  mutable random_writes : int;
  mutable seq_read_bytes : int;
  mutable seq_write_bytes : int;
  mutable random_read_bytes : int;
  mutable random_write_bytes : int;
}

type t = {
  profile : Profile.t;
  mutable now_us : float;
  c : counters;
}

let create profile =
  {
    profile;
    now_us = 0.0;
    c =
      {
        seeks = 0;
        random_writes = 0;
        seq_read_bytes = 0;
        seq_write_bytes = 0;
        random_read_bytes = 0;
        random_write_bytes = 0;
      };
  }

let profile t = t.profile

let now_us t = t.now_us

(** [advance t us] moves the clock forward without I/O (CPU time, think
    time). *)
let advance t us = if us > 0.0 then t.now_us <- t.now_us +. us

let transfer_us mb_per_s bytes =
  float_of_int bytes /. (mb_per_s *. 1e6) *. 1e6

(** One random read: an access (seek) plus the transfer. *)
let seek_read t ~bytes =
  t.c.seeks <- t.c.seeks + 1;
  t.c.random_read_bytes <- t.c.random_read_bytes + bytes;
  t.now_us <-
    t.now_us +. t.profile.Profile.access_us
    +. transfer_us t.profile.Profile.read_mb_per_s bytes

(** One random in-place write (B-Tree page writeback, SSD-penalized). *)
let seek_write t ~bytes =
  t.c.random_writes <- t.c.random_writes + 1;
  t.c.random_write_bytes <- t.c.random_write_bytes + bytes;
  t.now_us <-
    t.now_us +. t.profile.Profile.random_write_us
    +. transfer_us t.profile.Profile.write_mb_per_s bytes

(** Streaming read at device bandwidth (merge inputs, long scans after the
    initial positioning seek). *)
let seq_read t ~bytes =
  t.c.seq_read_bytes <- t.c.seq_read_bytes + bytes;
  t.now_us <- t.now_us +. transfer_us t.profile.Profile.read_mb_per_s bytes

(** Streaming write at device bandwidth (log appends, merge output). *)
let seq_write t ~bytes =
  t.c.seq_write_bytes <- t.c.seq_write_bytes + bytes;
  t.now_us <- t.now_us +. transfer_us t.profile.Profile.write_mb_per_s bytes

type snapshot = {
  at_us : float;
  seeks : int;
  random_writes : int;
  seq_read_bytes : int;
  seq_write_bytes : int;
  random_read_bytes : int;
  random_write_bytes : int;
}

let snapshot t =
  {
    at_us = t.now_us;
    seeks = t.c.seeks;
    random_writes = t.c.random_writes;
    seq_read_bytes = t.c.seq_read_bytes;
    seq_write_bytes = t.c.seq_write_bytes;
    random_read_bytes = t.c.random_read_bytes;
    random_write_bytes = t.c.random_write_bytes;
  }

(** [diff before after] is the I/O performed between two snapshots; Table 1
    counts seeks per operation this way. *)
let diff before after =
  {
    at_us = after.at_us -. before.at_us;
    seeks = after.seeks - before.seeks;
    random_writes = after.random_writes - before.random_writes;
    seq_read_bytes = after.seq_read_bytes - before.seq_read_bytes;
    seq_write_bytes = after.seq_write_bytes - before.seq_write_bytes;
    random_read_bytes = after.random_read_bytes - before.random_read_bytes;
    random_write_bytes = after.random_write_bytes - before.random_write_bytes;
  }

let pp_snapshot ppf s =
  Fmt.pf ppf "dt=%.1fus seeks=%d rw=%d seqR=%dB seqW=%dB" s.at_us s.seeks
    s.random_writes s.seq_read_bytes s.seq_write_bytes
