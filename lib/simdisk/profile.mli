(** Storage device cost profiles.

    Models the paper's two RAID-0 arrays (§5.1) as single devices with
    aggregate bandwidth and per-I/O access costs, plus the Table 2 device
    classes for the Appendix A arithmetic. *)

type t = {
  name : string;
  access_us : float;  (** cost of positioning one random read, µs *)
  random_write_us : float;  (** cost of one random in-place write, µs *)
  read_mb_per_s : float;  (** aggregate sequential read bandwidth *)
  write_mb_per_s : float;  (** aggregate sequential write bandwidth *)
}

(** 2 × 10K-RPM SATA RAID-0: 2.5 ms array access, 240 MB/s. *)
val hdd_raid0 : t

(** 2 × OCZ Vertex 2 RAID-0: 10 µs reads, random writes an order of
    magnitude dearer (§5.4), ~560 MB/s. *)
val ssd_raid0 : t

(** Device classes from Table 2 (Appendix A). *)
type device_class = {
  class_name : string;
  capacity_gb : float;
  reads_per_sec : float;
}

val table2_devices : device_class list

val pp : Format.formatter -> t -> unit
[@@lint.allow "U001"] (* debug printer *)
