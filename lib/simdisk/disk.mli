(** Simulated storage device: a clock plus I/O cost accounting.

    The paper reasons about indexes in seeks and bytes of sequential I/O
    (§2.1); this device charges exactly those quantities against a
    simulated clock, so throughput and latency fall out of the same
    arithmetic the paper uses — deterministically. Page payloads live in
    {!Pagestore}; this module never stores data. *)

type t

val create : Profile.t -> t
val profile : t -> Profile.t

(** Simulated time, microseconds since creation. *)
val now_us : t -> float

(** [advance t us] moves the clock forward without I/O (CPU or think
    time). *)
val advance : t -> float -> unit

(** One random read: an access (seek) plus the transfer. *)
val seek_read : t -> bytes:int -> unit

(** One random in-place write (B-Tree writeback; SSD-penalized). *)
val seek_write : t -> bytes:int -> unit

(** Streaming read at device bandwidth. *)
val seq_read : t -> bytes:int -> unit

(** Streaming write at device bandwidth (log appends, merge output). *)
val seq_write : t -> bytes:int -> unit

(** {1 Counters} *)

type snapshot = {
  at_us : float;  (** clock value ([diff]: elapsed time) *)
  seeks : int;
  random_writes : int;
  seq_read_bytes : int;
  seq_write_bytes : int;
  random_read_bytes : int;
  random_write_bytes : int;
}

val snapshot : t -> snapshot

(** [diff before after] is the I/O performed between two snapshots —
    how Table 1 counts seeks per operation. *)
val diff : snapshot -> snapshot -> snapshot

val pp_snapshot : Format.formatter -> snapshot -> unit
[@@lint.allow "U001"] (* debug printer *)
