(** Deterministic, seeded fault-injection plans.

    A plan schedules faults against a store's write streams by ordinal
    ("the 3rd page write from now is lost", "the 7th WAL append tears and
    the machine dies"). Pagestore write sites consult the plan; crash
    outcomes make them raise {!Crash_point}, so power loss can land
    mid-merge or mid-flush, not just between operations. Randomness
    (which byte rots, where a tear lands) comes from an embedded seeded
    PRNG, so a plan replays the identical fault sequence every run. *)

(** Raised by a write site when the plan says the machine dies here; the
    payload names the site. Catch it, then run crash recovery. *)
exception Crash_point of string

type page_write_outcome =
  | Pw_ok
  | Pw_lost  (** acked but never persisted (firmware cache loss) *)
  | Pw_flip of int * int  (** persist, then flip bit [bit] of byte [byte] *)
  | Pw_crash  (** power loss before the write persists *)
  | Pw_crash_torn of int  (** only the first [n] bytes persist, then power loss *)

type wal_append_outcome =
  | Wa_ok
  | Wa_crash  (** power loss before any byte of the record persists *)
  | Wa_crash_torn of int  (** first [n] frame bytes persist, then power loss *)

type counters = {
  mutable injected_lost_writes : int;
  mutable injected_bit_flips : int;
  mutable injected_torn_writes : int;
  mutable crashes_fired : int;
}

type t

(** [create ~seed ()] is an inert plan; schedule faults to arm it. *)
val create : ?seed:int -> unit -> t

val counters : t -> counters

(** True when any fault is still scheduled. *)
val armed : t -> bool
[@@lint.allow "U001"] (* harness probe: plan armed vs already fired *)

(** Faults scheduled but not yet fired: [(page_faults, wal_faults)] —
    distinguishes "the plan fired" from "the workload never reached the
    scheduled ordinal". *)
val pending : t -> int * int

(** Drop all scheduled (not yet fired) faults. *)
val clear : t -> unit

(** {1 Scheduling} — [after] counts hook calls forward from now;
    [after:1] fires on the very next one. *)

val schedule_lost_page_write : t -> after:int -> unit
val schedule_page_bit_flip : t -> after:int -> unit
val schedule_crash_at_page_write : ?torn:bool -> t -> after:int -> unit
val schedule_crash_at_wal_append : ?torn:bool -> t -> after:int -> unit

(** {1 Write-site hooks (called by pagestore)} *)

(** Consulted once per physical page write; says what actually reaches
    the platter. *)
val on_page_write : t -> page_size:int -> page_write_outcome

(** Consulted once per WAL record append, before the ack. *)
val on_wal_append : t -> frame_bytes:int -> wal_append_outcome
