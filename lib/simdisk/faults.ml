(** Deterministic, seeded fault-injection plans.

    A plan schedules faults against a store's I/O streams by ordinal:
    "the 3rd page write from now is lost", "the 7th WAL append tears and
    the machine dies". The pagestore consults the plan at each write site
    and the plan answers with an outcome; crash outcomes make the write
    site raise {!Crash_point}, which models power loss at an arbitrary
    instruction boundary — inside a merge, inside a memtable flush — not
    just between operations.

    Faults modelled (the usual storage failure taxonomy):
    - torn writes: only a prefix of the sector/record reached the platter
      before power loss;
    - lost (acked) writes: the device acknowledged but never persisted —
      firmware write-cache loss;
    - bit rot: a stored bit silently flips between write and read.

    Randomness (which byte rots, where a tear lands) comes from an
    embedded splitmix64 PRNG so that every run of a seeded plan injects
    the identical fault sequence. *)

(** Raised by a write site when the plan says the machine dies here. The
    payload names the site; the test harness catches it and runs
    recovery. *)
exception Crash_point of string

type page_write_outcome =
  | Pw_ok
  | Pw_lost  (** acked but never persisted *)
  | Pw_flip of int * int  (** persist, then flip bit [bit] of byte [byte] *)
  | Pw_crash  (** power loss before the write persists *)
  | Pw_crash_torn of int  (** only the first [n] bytes persist, then power loss *)

type wal_append_outcome =
  | Wa_ok
  | Wa_crash  (** power loss before any byte of the record persists *)
  | Wa_crash_torn of int  (** first [n] frame bytes persist, then power loss *)

type counters = {
  mutable injected_lost_writes : int;
  mutable injected_bit_flips : int;
  mutable injected_torn_writes : int;
  mutable crashes_fired : int;
}

type page_fault = Lost | Flip | Crash of { torn : bool }
type wal_fault = Wal_crash of { torn : bool }

type t = {
  mutable prng : int64;
  (* schedules: (absolute ordinal, fault). Ordinals count calls to the
     corresponding hook since plan creation, starting at 1. *)
  mutable page_plan : (int * page_fault) list;
  mutable wal_plan : (int * wal_fault) list;
  mutable page_writes_seen : int;
  mutable wal_appends_seen : int;
  c : counters;
}

(* splitmix64, inlined so simdisk keeps zero local dependencies *)
let next_u64 t =
  let golden = 0x9E3779B97F4A7C15L in
  t.prng <- Int64.add t.prng golden;
  let z = t.prng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform int in [0, bound) *)
let rand_int t bound =
  if bound <= 1 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next_u64 t) 1) (Int64.of_int bound))

let create ?(seed = 0) () =
  {
    prng = Int64.of_int (seed lxor 0x5DEECE66D);
    page_plan = [];
    wal_plan = [];
    page_writes_seen = 0;
    wal_appends_seen = 0;
    c =
      {
        injected_lost_writes = 0;
        injected_bit_flips = 0;
        injected_torn_writes = 0;
        crashes_fired = 0;
      };
  }

let counters t = t.c

(** A plan with nothing scheduled is inert: hooks are a counter bump. *)
let armed t = t.page_plan <> [] || t.wal_plan <> []

(** Faults scheduled but not yet fired: [(page_faults, wal_faults)].
    Harnesses use this to tell "the plan fired" from "the workload never
    reached the scheduled ordinal". *)
let pending t = (List.length t.page_plan, List.length t.wal_plan)

let clear t =
  t.page_plan <- [];
  t.wal_plan <- []

(** {1 Scheduling}

    [after] counts forward from now: [after:1] fires on the very next
    call of the corresponding hook. *)

let schedule_page t ~after fault =
  if after < 1 then invalid_arg "Faults: after must be >= 1";
  t.page_plan <- (t.page_writes_seen + after, fault) :: t.page_plan

let schedule_lost_page_write t ~after = schedule_page t ~after Lost
let schedule_page_bit_flip t ~after = schedule_page t ~after Flip

let schedule_crash_at_page_write ?(torn = false) t ~after =
  schedule_page t ~after (Crash { torn })

let schedule_crash_at_wal_append ?(torn = false) t ~after =
  if after < 1 then invalid_arg "Faults: after must be >= 1";
  t.wal_plan <- (t.wal_appends_seen + after, Wal_crash { torn }) :: t.wal_plan

(** {1 Write-site hooks} *)

let take plan seen =
  let hit, rest = List.partition (fun (ord, _) -> ord = seen) plan in
  match hit with [] -> (None, rest) | (_, f) :: _ -> (Some f, rest)

(** [on_page_write t ~page_size] is consulted once per physical page
    write (streamed merge output, buffer-pool writeback). The outcome
    tells the write site what actually reaches the platter. *)
let on_page_write t ~page_size =
  t.page_writes_seen <- t.page_writes_seen + 1;
  let fault, rest = take t.page_plan t.page_writes_seen in
  t.page_plan <- rest;
  match fault with
  | None -> Pw_ok
  | Some Lost ->
      t.c.injected_lost_writes <- t.c.injected_lost_writes + 1;
      Pw_lost
  | Some Flip ->
      t.c.injected_bit_flips <- t.c.injected_bit_flips + 1;
      Pw_flip (rand_int t page_size, rand_int t 8)
  | Some (Crash { torn = false }) ->
      t.c.crashes_fired <- t.c.crashes_fired + 1;
      Pw_crash
  | Some (Crash { torn = true }) ->
      t.c.crashes_fired <- t.c.crashes_fired + 1;
      t.c.injected_torn_writes <- t.c.injected_torn_writes + 1;
      Pw_crash_torn (1 + rand_int t (page_size - 1))

(** [on_wal_append t ~frame_bytes] is consulted once per WAL record
    append, before the record is acknowledged. *)
let on_wal_append t ~frame_bytes =
  t.wal_appends_seen <- t.wal_appends_seen + 1;
  let fault, rest = take t.wal_plan t.wal_appends_seen in
  t.wal_plan <- rest;
  match fault with
  | None -> Wa_ok
  | Some (Wal_crash { torn = false }) ->
      t.c.crashes_fired <- t.c.crashes_fired + 1;
      Wa_crash
  | Some (Wal_crash { torn = true }) ->
      t.c.crashes_fired <- t.c.crashes_fired + 1;
      t.c.injected_torn_writes <- t.c.injected_torn_writes + 1;
      Wa_crash_torn (1 + rand_int t (max 1 (frame_bytes - 1)))
