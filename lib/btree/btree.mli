(** Update-in-place B+-Tree: the InnoDB stand-in (§2.2, §5).

    A page-structured B+-tree over the shared buffer manager. The cost
    profile the paper ascribes to InnoDB is emergent rather than
    hard-coded: point reads cost one seek once the leaf level exceeds the
    pool (upper levels stay cached); updates dirty the leaf and pay the
    second seek at eviction writeback; random inserts scatter leaves
    (splits allocate wherever space is), so long scans after a
    fragmenting workload seek per leaf — §5.6's crossover. Deletes are
    lazy (no rebalancing); sequential inserts use the rightmost-split
    optimization so pre-sorted loads pack pages. *)

type t

val create : Pagestore.Store.t -> t

val count : t -> int
val data_bytes : t -> int
[@@lint.allow "U001"] (* sizing/diagnostic probe beside [count]/[splits] *)
val splits : t -> int
val height : t -> int
val store : t -> Pagestore.Store.t
val disk : t -> Simdisk.Disk.t

(** Largest key+value a leaf can hold (must fit two records per page). *)
val max_record_bytes : t -> int
[@@lint.allow "U001"] (* embedder-facing capacity guard *)

(** [get t key]: one buffer-pool descent; ~1 seek when the leaf is cold. *)
val get : t -> string -> string option

(** [put t key value]: update in place — read the leaf (seek #1 when
    cold), modify in the pool; eviction later pays seek #2. Raises
    [Invalid_argument] if the record exceeds {!max_record_bytes}. *)
val put : t -> string -> string -> unit

(** [delete t key]: lazy deletion — removed from the leaf, no rebalance. *)
val delete : t -> string -> unit

(** [scan t start n]: position on the leaf containing [start] (one seek),
    then follow the leaf chain; fragmented chains seek per hop. *)
val scan : t -> string -> int -> (string * string) list

(** The two-seek B-Tree primitive. *)
val read_modify_write : t -> string -> (string option -> string) -> unit

(** The existence check is free during the descent — but the descent
    itself costs the seek (contrast §3.1.2). *)
val insert_if_absent : t -> string -> string -> bool

(** [check_invariants t] verifies ordering, key bounds and record count;
    raises [Failure] on violation (tests). *)
val check_invariants : t -> unit

(** [(internal_pages, leaf_pages)] by traversal (read-fanout math). *)
val node_counts : t -> int * int

val engine : ?name:string -> t -> Kv.Kv_intf.engine
