(** Bloom filter with double hashing (§4.4.3).

    Probes are g_i(x) = h1(x) + i*h2(x) (Kirsch–Mitzenmacher), giving the
    asymptotics of k independent hashes from two. At the paper's 10
    bits/item with the optimal hash count, false positives stay below 1%
    (§3.1). Updates are monotonic (bits only go 0 -> 1), so readers never
    need to be insulated from concurrent updates. *)

(** Filter memory layout. [Standard]: k probes spread over the whole bit
    array (the seed's filter, best false-positive rate). [Blocked]: all
    of a key's probes confined to one 64-byte block chosen by h1, two
    9-bit probe positions carved from each derived hash — one cache
    line per membership test and half the hash arithmetic, at a small
    block-load-variance false-positive penalty (same bits-per-key
    budget). *)
type kind = Standard | Blocked

(** Bits per cache-line block of the {!Blocked} layout (512). *)
val block_bits : int

type t

(** [create ?kind ?bits_per_item ~expected_items ()] sizes the filter
    for [expected_items] insertions. [bits_per_item] defaults to 10,
    [kind] to {!Standard}; {!Blocked} rounds the array up to whole
    512-bit blocks. *)
val create : ?kind:kind -> ?bits_per_item:int -> expected_items:int -> unit -> t

val kind : t -> kind

(** [add t key] inserts [key]; there is no delete (components are
    append-only). *)
val add : t -> string -> unit

(** [mem t key] is [false] only if [key] was definitely never added. *)
val mem : t -> string -> bool

val inserted : t -> int
val size_bytes : t -> int

(** Expected false-positive rate at the current fill:
    (1 - e^(-kn/m))^k. *)
val expected_fp_rate : t -> float

(** {1 Serialization} — tests, tooling, and the optional persisted-filter
    path; bLSM's default does not persist filters (rebuilt by post-crash
    scans, §4.4.3). The [Standard] encoding is byte-identical to the
    seed's; [Blocked] is flagged by a leading 0x00 (impossible for the
    Standard form, whose leading nbits varint is >= 64). *)

val to_string : t -> string
val of_string : string -> t
