(** Bloom filter with double hashing.

    Follows §4.4.3: the filter is "based upon double hashing" (Kirsch and
    Mitzenmacher: two independent hashes g_i(x) = h1(x) + i*h2(x) give the
    same asymptotic false-positive rate as k independent hashes). One
    filter guards each on-disk tree component; it is created when a merge
    creates the component, sized from the component's key count for a
    false-positive rate below 1%, and never needs deletions because the
    on-disk trees are append-only.

    10 bits per item with the optimal number of hashes gives ~1% false
    positives (§3.1); at 1000-byte values this is the paper's ~5% memory
    overhead (Appendix A).

    Two layouts share that budget. [Standard] spreads the k probes over
    the whole bit array — the seed's filter, best false-positive rate.
    [Blocked] confines all probes of a key to one 64-byte (512-bit)
    block chosen by h1, so a membership test touches a single cache
    line; probe positions come in pairs carved from each derived hash
    (two 9-bit fields of g_i — the "double-probe" scheme), halving the
    hash arithmetic per test. The price is a small false-positive
    penalty from block-load variance (Poisson-distributed keys per
    block); see DESIGN.md §12 for the math. *)

type kind = Standard | Blocked

(** Bits per cache-line block of the {!Blocked} layout. *)
let block_bits = 512

type t = {
  kind : kind;
  bits : Bytes.t;
  nbits : int;
  hashes : int;
  mutable inserted : int;
}

(* 64-bit FNV-1a over the key, then two mixes to derive h1/h2. *)
let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let mix h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xFF51AFD7ED558CCDL in
  Int64.logxor h (Int64.shift_right_logical h 29)

let hash_pair key =
  let h = fnv1a key in
  let h1 = Int64.to_int (Int64.logand h 0x3FFFFFFFFFFFFFFFL) in
  let h2 = Int64.to_int (Int64.logand (mix h) 0x3FFFFFFFFFFFFFFFL) in
  (h1, h2 lor 1 (* odd stride hits every bit position *))

(** [create ~expected_items ~bits_per_item ()] sizes the filter for
    [expected_items] insertions. [bits_per_item] defaults to 10 (the
    paper's choice, <1% false positives); [kind] to {!Standard}. The
    {!Blocked} layout rounds the array up to whole 512-bit blocks. *)
let create ?(kind = Standard) ?(bits_per_item = 10) ~expected_items () =
  let expected_items = max 1 expected_items in
  let nbits = max 64 (expected_items * bits_per_item) in
  let nbits =
    match kind with
    | Standard -> nbits
    | Blocked -> (nbits + block_bits - 1) / block_bits * block_bits
  in
  (* Optimal hash count k = m/n * ln 2 ~= 0.693 * bits_per_item. *)
  let hashes = max 1 (int_of_float (0.6931 *. float_of_int bits_per_item +. 0.5)) in
  { kind; bits = Bytes.make ((nbits + 7) / 8) '\000'; nbits; hashes; inserted = 0 }

let kind t = t.kind

let set_bit t i =
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl bit)))

let get_bit t i =
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.get t.bits byte) land (1 lsl bit) <> 0

(* Reduce both hashes below nbits so the probe arithmetic cannot
   overflow; a zero stride would probe one bit repeatedly, so avoid it. *)
let probes t key =
  let h1, h2 = hash_pair key in
  let h1 = h1 mod t.nbits in
  let h2 =
    let h = h2 mod t.nbits in
    if h = 0 then 1 else h
  in
  (h1, h2)

(* Blocked layout: h1 picks the 512-bit block; each derived value yields
   two 9-bit in-block positions, so ceil(k/2) derived hashes cover all k
   probes. Derivation is a multiplicative congruential step per pair
   (g := g * K mod 2^62, K odd, h2 odd so the state never degenerates),
   reading the two positions from g's well-mixed high bits. The feedback
   matters: an additive walk (g += h2) makes g_i a small multiple of h2,
   and high-bit windows of u, 2u, 3u, ... overlap almost bit-for-bit, so
   probe pairs correlate across derivations and the measured
   false-positive rate lands several times above the block-load-variance
   bound; the per-step multiply gives pair i the effective multiplier
   K^(i+1), decorrelating the windows (measured FP sits at the Poisson
   floor, ~1.15x Standard). [f] receives absolute bit positions;
   iteration stops early when [f] returns false (the membership test's
   short-circuit; inserts always return true). *)
let blocked_mul = 0x2545F4914F6CDD1D

let blocked_probe t h1 h2 f =
  let nblocks = t.nbits / block_bits in
  let base = h1 mod nblocks * block_bits in
  let npairs = (t.hashes + 1) / 2 in
  let g = ref h2 in
  let continue_ = ref true in
  let i = ref 0 in
  while !continue_ && !i < npairs do
    g := !g * blocked_mul land max_int;
    let v = !g lsr 38 in
    if not (f (base + (v land (block_bits - 1)))) then continue_ := false
    else if
      (2 * !i) + 1 < t.hashes
      && not (f (base + (v lsr 9 land (block_bits - 1))))
    then continue_ := false
    else incr i
  done;
  !continue_

(** [add t key] inserts [key]. Updates are monotonic (bits only go 0->1),
    which is why bLSM readers never need to be insulated from concurrent
    filter updates (§4.4.3). *)
let add t key =
  (match t.kind with
  | Standard ->
      let h1, h2 = probes t key in
      for i = 0 to t.hashes - 1 do
        set_bit t ((h1 + (i * h2)) mod t.nbits)
      done
  | Blocked ->
      let h1, h2 = hash_pair key in
      ignore
        (blocked_probe t h1 h2 (fun pos ->
             set_bit t pos;
             true)
          : bool));
  t.inserted <- t.inserted + 1

(** [mem t key] is [false] only if [key] was definitely never added. *)
let mem t key =
  match t.kind with
  | Standard ->
      let h1, h2 = probes t key in
      let rec go i =
        i >= t.hashes || (get_bit t ((h1 + (i * h2)) mod t.nbits) && go (i + 1))
      in
      go 0
  | Blocked ->
      let h1, h2 = hash_pair key in
      blocked_probe t h1 h2 (fun pos -> get_bit t pos)

let inserted t = t.inserted

let size_bytes t = Bytes.length t.bits

(** Expected false-positive rate at the current fill. *)
let expected_fp_rate t =
  let k = float_of_int t.hashes in
  let n = float_of_int t.inserted in
  let m = float_of_int t.nbits in
  (1.0 -. exp (-.k *. n /. m)) ** k

(** {1 Serialization} — used by tests, tooling, and the optional
    persisted-filter path; bLSM's default deliberately does *not*
    persist filters (they are rebuilt by post-crash merges, §4.4.3). *)

let to_string t =
  let buf = Buffer.create (size_bytes t + 16) in
  (* Standard stays byte-identical to the seed's encoding. Blocked is
     flagged by a leading 0x00 byte — impossible as the first byte of
     the Standard form, whose leading varint (nbits) is >= 64. *)
  (match t.kind with Standard -> () | Blocked -> Buffer.add_char buf '\000');
  Repro_util.Varint.write buf t.nbits;
  Repro_util.Varint.write buf t.hashes;
  Repro_util.Varint.write buf t.inserted;
  Buffer.add_bytes buf t.bits;
  Buffer.contents buf

let of_string s =
  let kind, start =
    if String.length s > 0 && Char.equal s.[0] '\000' then (Blocked, 1)
    else (Standard, 0)
  in
  let nbits, pos = Repro_util.Varint.read s start in
  let hashes, pos = Repro_util.Varint.read s pos in
  let inserted, pos = Repro_util.Varint.read s pos in
  let bits = Bytes.of_string (String.sub s pos ((nbits + 7) / 8)) in
  { kind; bits; nbits; hashes; inserted }
