(** LevelDB-style multi-level LSM tree: the paper's log-structured
    comparator (§5, circa-2012 LevelDB).

    Faithful to the properties the paper measures: a small memtable and
    exponentially-sized levels (ratio 10) with overlapping files in L0;
    {b no Bloom filters} (added to LevelDB later, §5.3), so point reads
    probe one file per level plus every overlapping L0 file; a partition
    scheduler moving one file (plus overlaps) at a time, as atomic units
    charged to the triggering write; L0 slowdown/stop thresholds with a
    bandwidth-budgeted background thread — the write pauses of Figure 7. *)

type config = {
  memtable_bytes : int;
  file_bytes : int;  (** target size of one output file *)
  l0_compaction_trigger : int;
  l0_slowdown : int;  (** delay each write at this many L0 files *)
  l0_stop : int;  (** block writes entirely at this many L0 files *)
  base_level_bytes : int;  (** L1 target; Li = base * ratio^(i-1) *)
  level_ratio : float;
  max_levels : int;
  extent_pages : int;
  slowdown_us : float;
  compaction_credit_per_byte : float;
      (** background-thread bandwidth model: compaction bytes allowed per
          byte of application writes; sustained demand above it piles up
          L0 and fires the slowdown/stop thresholds *)
  resolver : Kv.Entry.resolver;
  seed : int;
}

(** 4 MiB memtable, 2 MiB files, ratio 10, triggers 4/8/12. *)
val default_config : config

type stats = {
  mutable flushes : int;
  mutable compactions : int;
  mutable slowdown_writes : int;
  mutable stop_stalls : int;
  mutable bytes_compacted : int;
}

type t

val create : ?config:config -> Pagestore.Store.t -> t

val stats : t -> stats

(** [metrics t] is the engine's metrics registry ([leveldb.*] plus the
    store's [disk.*]/[wal.*]/[buf.*]/[faults.*]), pull-closures over the
    live stat records; built once and cached. *)
val metrics : t -> Obs.Metrics.t
val store : t -> Pagestore.Store.t
val disk : t -> Simdisk.Disk.t
val config : t -> config

val put : t -> string -> string -> unit
val delete : t -> string -> unit
val apply_delta : t -> string -> string -> unit
val get : t -> string -> string option
val read_modify_write : t -> string -> (string option -> string) -> unit

(** No filters: the existence check pays the full multi-level probe —
    the paper's §5.2 complaint about checked bulk loads. *)
val insert_if_absent : t -> string -> string -> bool

val scan : t -> string -> int -> (string * string) list

(** [maintenance t] flushes and compacts until every level is in shape. *)
val maintenance : t -> unit

type level_info = { li_level : int; li_files : int; li_bytes : int }

val levels : t -> level_info list

(** Seeks a cold point read would perform right now (Table 1's metric). *)
val read_cost_estimate : t -> string -> int

val engine : ?name:string -> t -> Kv.Kv_intf.engine
