(** LevelDB-style multi-level LSM tree: the paper's log-structured
    comparator (§5, circa-2012 LevelDB).

    Faithful to the properties the paper measures:
    - a small memtable and many exponentially-sized levels (ratio 10),
      with overlapping files in L0;
    - {b no Bloom filters} (added to LevelDB only later, §5.3), so point
      reads probe one file per level plus every overlapping L0 file —
      O(log n) seeks (Table 1);
    - a {b partition scheduler}: compaction moves one file (plus its
      overlaps) at a time, picked by level score and a round-robin key
      pointer (Figure 3), and runs as atomic units charged to the
      unlucky write that triggers them;
    - L0-count slowdown/stop thresholds, which produce exactly the long
      write pauses of Figure 7 (right).

    Reuses the {!Sstable} format for files, so the two systems' I/O is
    directly comparable. *)

type config = {
  memtable_bytes : int;
  file_bytes : int;  (** target size of one output file *)
  l0_compaction_trigger : int;  (** start compacting L0 at this many files *)
  l0_slowdown : int;  (** delay each write when L0 reaches this *)
  l0_stop : int;  (** block writes entirely at this many L0 files *)
  base_level_bytes : int;  (** L1 size target; Li = base * ratio^(i-1) *)
  level_ratio : float;
  max_levels : int;
  extent_pages : int;
  slowdown_us : float;  (** per-write delay in the slowdown regime *)
  compaction_credit_per_byte : float;
      (** background-thread bandwidth model: bytes of compaction I/O the
          single compaction thread gets per byte of application writes.
          When sustained demand (the write amplification) exceeds this,
          L0 piles up and the slowdown/stop thresholds fire — the write
          pauses of Figure 7 (right) *)
  resolver : Kv.Entry.resolver;
  seed : int;
}

let default_config =
  {
    memtable_bytes = 4 * 1024 * 1024;
    file_bytes = 2 * 1024 * 1024;
    l0_compaction_trigger = 4;
    l0_slowdown = 8;
    l0_stop = 12;
    base_level_bytes = 10 * 1024 * 1024;
    level_ratio = 10.0;
    max_levels = 7;
    extent_pages = 256;
    slowdown_us = 1000.0;
    compaction_credit_per_byte = 10.0;
    resolver = Kv.Entry.append_resolver;
    seed = 42;
  }

type file = {
  sst : Sstable.Reader.t;
  age : int;  (** creation order; L0 lookups go newest-first *)
}

type stats = {
  mutable flushes : int;
  mutable compactions : int;
  mutable slowdown_writes : int;
  mutable stop_stalls : int;
  mutable bytes_compacted : int;
}

type t = {
  config : config;
  store : Pagestore.Store.t;
  mutable mem : Memtable.t;
  levels : file list array;
      (** [levels.(0)]: newest first, ranges overlap; deeper levels:
          sorted by [min_key], disjoint ranges *)
  mutable next_age : int;
  policy : Blsm.Compaction_policy.t;
      (** victim selection, extracted to [Blsm.Compaction_policy]; the
          seed policy carries the per-level round-robin compaction
          pointer that used to live here *)
  mutable work_credit : float;  (** compaction bytes the thread may spend *)
  mutable timestamp : int;
  stats : stats;
  mutable metrics_cache : Obs.Metrics.t option;
}

let create ?(config = default_config) store =
  {
    config;
    store;
    mem = Memtable.create ~seed:config.seed ~resolver:config.resolver ();
    levels = Array.make config.max_levels [];
    next_age = 1;
    policy = Blsm.Compaction_policy.leveldb_seed ();
    work_credit = 0.0;
    timestamp = 0;
    stats =
      { flushes = 0; compactions = 0; slowdown_writes = 0; stop_stalls = 0;
        bytes_compacted = 0 };
    metrics_cache = None;
  }

let stats t = t.stats

(** [metrics t] is the engine's registry: the [leveldb.*] stats plus the
    store stack, as pull-closures over the live records. *)
let metrics t =
  match t.metrics_cache with
  | Some reg -> reg
  | None ->
      let reg = Obs.Metrics.create () in
      let open Obs.Metrics in
      let s = t.stats in
      counter reg "leveldb.flushes" ~help:"memtable flushes to L0" (fun () ->
          s.flushes);
      counter reg "leveldb.compactions" ~help:"compactions run" (fun () ->
          s.compactions);
      counter reg "leveldb.slowdown_writes" ~help:"writes hit by the L0 slowdown"
        (fun () -> s.slowdown_writes);
      counter reg "leveldb.stop_stalls" ~help:"writes hit by the L0 hard stop"
        (fun () -> s.stop_stalls);
      counter reg "leveldb.bytes_compacted" ~help:"lifetime compaction input bytes"
        (fun () -> s.bytes_compacted);
      gauge reg "leveldb.files" ~help:"table files across all levels" (fun () ->
          float_of_int
            (Array.fold_left (fun acc l -> acc + List.length l) 0 t.levels));
      Pagestore.Store.register_metrics reg t.store;
      t.metrics_cache <- Some reg;
      reg
let store t = t.store
let disk t = Pagestore.Store.disk t.store
let config t = t.config

let level_bytes t i =
  List.fold_left (fun a f -> a + Sstable.Reader.data_bytes f.sst) 0 t.levels.(i)

let file_count t i = List.length t.levels.(i)

(* Metadata snapshot for the compaction policy. List order matters for
   byte-identity: each level is presented exactly in storage order, so
   the policy's stable sorts and filters reproduce the pre-extraction
   selection bit for bit. *)
let policy_view t =
  {
    Blsm.Compaction_policy.v_levels =
      Array.mapi
        (fun level files ->
          List.map
            (fun f ->
              {
                Blsm.Compaction_policy.run_id = f.age;
                run_level = level;
                run_bytes = Sstable.Reader.data_bytes f.sst;
                run_records = Sstable.Reader.record_count f.sst;
                run_min_key = Sstable.Reader.min_key f.sst;
                run_max_key = Sstable.Reader.max_key f.sst;
              })
            files)
        t.levels;
    v_l0_trigger = t.config.l0_compaction_trigger;
    v_fanout = t.config.level_ratio;
    v_base_bytes = t.config.base_level_bytes;
    v_file_bytes = t.config.file_bytes;
    v_max_levels = t.config.max_levels;
  }

(* ---------------------------------------------------------------- *)
(* Building level files *)

(* Write a sorted record stream into files of at most [file_bytes] each. *)
let build_files ?file_bytes t pull =
  let file_bytes = Option.value file_bytes ~default:t.config.file_bytes in
  let out = ref [] in
  let current = ref None in
  let fresh () =
    let b = Sstable.Builder.create ~extent_pages:t.config.extent_pages t.store in
    current := Some b;
    b
  in
  let finish b =
    t.timestamp <- t.timestamp + 1;
    let footer = Sstable.Builder.finish b ~timestamp:t.timestamp in
    let index = Sstable.Builder.index_blob b in
    let sst = Sstable.Reader.open_in_ram t.store footer ~index in
    if Sstable.Reader.is_empty sst then Sstable.Reader.free sst
    else begin
      out := { sst; age = t.next_age } :: !out;
      t.next_age <- t.next_age + 1
    end;
    current := None
  in
  let rec go () =
    match pull () with
    | None -> ()
    | Some (k, e, lsn) ->
        let b = match !current with Some b -> b | None -> fresh () in
        Sstable.Builder.add ~lsn b k e;
        if Sstable.Builder.data_bytes b >= file_bytes then finish b;
        go ()
  in
  go ();
  (match !current with Some b -> finish b | None -> ());
  List.rev !out

(* Concatenate the iterators of a disjoint, sorted file list. *)
let chain_pull files =
  let remaining = ref files in
  let it = ref None in
  let rec pull () =
    match !it with
    | Some i -> (
        match Sstable.Reader.iter_next_full i with
        | Some r -> Some r
        | None ->
            it := None;
            pull ())
    | None -> (
        match !remaining with
        | [] -> None
        | f :: rest ->
            remaining := rest;
            it := Some (Sstable.Reader.iterator f.sst);
            pull ())
  in
  pull

let sort_by_min_key files =
  List.sort
    (fun a b -> String.compare (Sstable.Reader.min_key a.sst) (Sstable.Reader.min_key b.sst))
    files

let is_bottom_nonempty t level =
  (* no data below [level]: deletion markers can be dropped *)
  let rec empty_below i =
    i >= t.config.max_levels || (t.levels.(i) = [] && empty_below (i + 1))
  in
  empty_below (level + 1)

(* ---------------------------------------------------------------- *)
(* Flush: memtable -> one L0 file *)

let flush_mem t =
  if not (Memtable.is_empty t.mem) then begin
    let pull =
      let cursor = ref "" in
      fun () ->
        match Memtable.peek_geq_lsn t.mem !cursor with
        | Some (k, _, _) as r ->
            cursor := k ^ "\000";
            r
        | None -> None
    in
    (* one L0 file regardless of size: L0 files mirror memtable contents *)
    let files =
      build_files
        ~file_bytes:(max t.config.file_bytes (2 * t.config.memtable_bytes))
        t pull
    in
    t.levels.(0) <- files @ t.levels.(0);
    t.mem <- Memtable.create ~seed:t.config.seed ~resolver:t.config.resolver ();
    t.stats.flushes <- t.stats.flushes + 1;
    (* log entries are now durable in L0 *)
    let wal = Pagestore.Store.wal t.store in
    Pagestore.Wal.truncate wal ~upto_lsn:(Pagestore.Wal.next_lsn wal)
  end

(* ---------------------------------------------------------------- *)
(* Compaction: one unit of the partition scheduler. The policy decides
   *what* moves ({!Blsm.Compaction_policy}); this executes one of its
   jobs — merge mechanics, stats and install order are unchanged from
   the pre-extraction engine. *)

let execute_job t (job : Blsm.Compaction_policy.job) =
  let resolve level id =
    List.find (fun f -> f.age = id) t.levels.(level)
  in
  let inputs_lo = List.map (resolve job.j_level) job.j_inputs in
  let inputs_hi = List.map (resolve job.j_target) job.j_overlaps in
  if inputs_lo = [] then ()
  else begin
    (* newest-first priorities: overlapping input sets (level 0) by age,
       a single range-partitioned victim as one chained source *)
    let lo_sources =
      if List.length inputs_lo > 1 then
        inputs_lo
        |> List.sort (fun a b -> Int.compare b.age a.age)
        |> List.mapi (fun i f ->
               (i, let it = Sstable.Reader.iterator f.sst in
                   fun () -> Sstable.Reader.iter_next_full it))
      else [ (0, chain_pull (sort_by_min_key inputs_lo)) ]
    in
    let n_lo = List.length lo_sources in
    let hi_source = (n_lo, chain_pull (sort_by_min_key inputs_hi)) in
    let merge =
      Sstable.Merge_iter.create ~resolver:t.config.resolver
        ~drop_tombstones:(is_bottom_nonempty t job.j_target)
        (lo_sources @ [ hi_source ])
    in
    let file_bytes =
      if job.j_split_bytes > 0 then job.j_split_bytes else max_int
    in
    let outputs =
      build_files ~file_bytes t (fun () -> Sstable.Merge_iter.next merge)
    in
    let moved =
      List.fold_left (fun a f -> a + Sstable.Reader.data_bytes f.sst) 0 inputs_lo
      + List.fold_left (fun a f -> a + Sstable.Reader.data_bytes f.sst) 0 inputs_hi
    in
    t.stats.bytes_compacted <- t.stats.bytes_compacted + moved;
    t.work_credit <- t.work_credit -. float_of_int moved;
    t.stats.compactions <- t.stats.compactions + 1;
    (* install: remove inputs, add outputs to the target level *)
    let not_input inputs f = not (List.memq f inputs) in
    t.levels.(job.j_level) <-
      List.filter (not_input inputs_lo) t.levels.(job.j_level);
    t.levels.(job.j_target) <-
      sort_by_min_key
        (outputs @ List.filter (not_input inputs_hi) t.levels.(job.j_target));
    List.iter (fun f -> Sstable.Reader.free f.sst) inputs_lo;
    List.iter (fun f -> Sstable.Reader.free f.sst) inputs_hi
  end

(* ---------------------------------------------------------------- *)
(* Write path *)

let maybe_schedule_work t ~write_bytes =
  (* the background compaction thread gets a slice of disk bandwidth
     proportional to the write rate; its work is charged to the
     triggering write (it shares the disk with the application) *)
  t.work_credit <-
    Float.min
      (2.0 *. float_of_int t.config.base_level_bytes)
      (t.work_credit
      +. (float_of_int write_bytes *. t.config.compaction_credit_per_byte));
  if file_count t 0 >= t.config.l0_stop then begin
    (* hard stop: writes blocked until L0 drains below the trigger *)
    t.stats.stop_stalls <- t.stats.stop_stalls + 1;
    while file_count t 0 > t.config.l0_compaction_trigger do
      match t.policy.p_job_at (policy_view t) ~level:0 with
      | Some job -> execute_job t job
      | None -> failwith "leveldb: L0 over trigger but policy idle"
    done;
    t.work_credit <- 0.0
  end
  else begin
    if file_count t 0 >= t.config.l0_slowdown then begin
      t.stats.slowdown_writes <- t.stats.slowdown_writes + 1;
      (* the 1 ms write delay is disk time the compaction thread uses *)
      Simdisk.Disk.advance (disk t) t.config.slowdown_us;
      t.work_credit <-
        t.work_credit
        +. (t.config.slowdown_us /. 1e6
           *. (Simdisk.Disk.profile (disk t)).Simdisk.Profile.write_mb_per_s
           *. 1e6)
    end;
    if t.work_credit > 0.0 then
      match t.policy.p_pick (policy_view t) with
      | Some job -> execute_job t job
      | None -> ()
  end

let encode_op key entry =
  let buf = Buffer.create (String.length key + 16) in
  Repro_util.Varint.write buf (String.length key);
  Buffer.add_string buf key;
  Kv.Entry.encode buf entry;
  Buffer.contents buf

let write_entry t key entry =
  maybe_schedule_work t
    ~write_bytes:(String.length key + Kv.Entry.payload_bytes entry);
  let lsn = Pagestore.Wal.append (Pagestore.Store.wal t.store) (encode_op key entry) in
  Memtable.write t.mem ~lsn key entry;
  if Memtable.bytes t.mem >= t.config.memtable_bytes then flush_mem t

let put t key value = write_entry t key (Kv.Entry.Base value)
let delete t key = write_entry t key Kv.Entry.Tombstone
let apply_delta t key d = write_entry t key (Kv.Entry.Delta [ d ])

(* ---------------------------------------------------------------- *)
(* Read path *)

let find_in_level t i key =
  if i = 0 then
    (* L0 files overlap, so one key may have versions in several of them:
       probe newest first, composing deltas until a base record (or
       tombstone) settles the state *)
    let files = List.sort (fun a b -> Int.compare b.age a.age) t.levels.(0) in
    let rec go acc = function
      | [] -> acc
      | f :: rest -> (
          match Sstable.Reader.get f.sst key with
          | None -> go acc rest
          | Some e -> (
              let acc =
                match acc with
                | None -> Some e
                | Some newer ->
                    Some (Kv.Entry.merge t.config.resolver ~newer ~older:e)
              in
              match acc with
              | Some (Kv.Entry.Base _ | Kv.Entry.Tombstone) -> acc
              | _ -> go acc rest))
    in
    go None files
  else
    match
      List.find_opt
        (fun f ->
          String.compare (Sstable.Reader.min_key f.sst) key <= 0
          && String.compare key (Sstable.Reader.max_key f.sst) <= 0)
        t.levels.(i)
    with
    | Some f -> Sstable.Reader.get f.sst key
    | None -> None

let lookup_entry t key =
  let merge_opt acc e =
    match acc with
    | None -> Some e
    | Some newer -> Some (Kv.Entry.merge t.config.resolver ~newer ~older:e)
  in
  let rec visit acc i =
    if i >= t.config.max_levels then acc
    else
      match find_in_level t i key with
      | None -> visit acc (i + 1)
      | Some e -> (
          let acc = merge_opt acc e in
          match acc with
          | Some (Kv.Entry.Base _ | Kv.Entry.Tombstone) -> acc
          | _ -> visit acc (i + 1))
  in
  let start =
    match Memtable.get t.mem key with
    | Some (Kv.Entry.Base _ | Kv.Entry.Tombstone) as e -> `Stop e
    | Some (Kv.Entry.Delta _ as d) -> `Continue (Some d)
    | None -> `Continue None
  in
  match start with `Stop e -> e | `Continue acc -> visit acc 0

let interpret t = function
  | None -> None
  | Some (Kv.Entry.Base v) -> Some v
  | Some Kv.Entry.Tombstone -> None
  | Some (Kv.Entry.Delta ds) -> Kv.Entry.resolve t.config.resolver ~base:None ds

let get t key = interpret t (lookup_entry t key)

let read_modify_write t key f = put t key (f (get t key))

(** LevelDB has no filters: the existence check pays the full multi-level
    probe — the paper's §5.2 complaint about checked bulk loads. *)
let insert_if_absent t key value =
  match get t key with
  | Some _ -> false
  | None ->
      put t key value;
      true

(* ---------------------------------------------------------------- *)
(* Scans *)

let mem_pull mem ~from =
  let cursor = ref from in
  fun () ->
    match Memtable.peek_geq_lsn mem !cursor with
    | Some (k, _, _) as r ->
        cursor := k ^ "\000";
        r
    | None -> None

let scan t start n =
  let sources = ref [ (0, mem_pull t.mem ~from:start) ] in
  let prio = ref 1 in
  (* every L0 file is its own source *)
  List.iter
    (fun f ->
      let it = Sstable.Reader.iterator ~from:start f.sst in
      sources := (!prio, fun () -> Sstable.Reader.iter_next_full it) :: !sources;
      incr prio)
    (List.sort (fun a b -> Int.compare b.age a.age) t.levels.(0));
  for i = 1 to t.config.max_levels - 1 do
    if t.levels.(i) <> [] then begin
      let files =
        sort_by_min_key
          (List.filter
             (fun f -> String.compare (Sstable.Reader.max_key f.sst) start >= 0)
             t.levels.(i))
      in
      let started = ref false in
      let rest = ref files in
      let it = ref None in
      let rec pull () =
        match !it with
        | Some i -> (
            match Sstable.Reader.iter_next_full i with
            | Some r -> Some r
            | None ->
                it := None;
                pull ())
        | None -> (
            match !rest with
            | [] -> None
            | f :: tl ->
                rest := tl;
                it :=
                  Some
                    (if !started then Sstable.Reader.iterator f.sst
                     else begin
                       started := true;
                       Sstable.Reader.iterator ~from:start f.sst
                     end);
                pull ())
      in
      sources := (!prio, pull) :: !sources;
      incr prio
    end
  done;
  let merge =
    Sstable.Merge_iter.create ~resolver:t.config.resolver ~drop_tombstones:true
      (List.rev !sources)
  in
  let rec collect acc k =
    if k = 0 then List.rev acc
    else
      match Sstable.Merge_iter.next merge with
      | None -> List.rev acc
      | Some (key, Kv.Entry.Base v, _) -> collect ((key, v) :: acc) (k - 1)
      | Some _ -> assert false
  in
  collect [] n

(* ---------------------------------------------------------------- *)

(** [maintenance t] flushes and compacts until every level is in shape. *)
let maintenance t =
  flush_mem t;
  let guard = ref 0 in
  let rec go () =
    incr guard;
    if !guard > 100_000 then failwith "leveldb maintenance stuck";
    match t.policy.p_pick (policy_view t) with
    | Some job ->
        execute_job t job;
        go ()
    | None -> ()
  in
  go ()

type level_info = { li_level : int; li_files : int; li_bytes : int }

let levels t =
  List.init t.config.max_levels (fun i ->
      { li_level = i; li_files = file_count t i; li_bytes = level_bytes t i })

(** Seeks a cold point read would perform right now (Table 1's metric). *)
let read_cost_estimate t key =
  let l0 =
    List.length
      (List.filter
         (fun f ->
           String.compare (Sstable.Reader.min_key f.sst) key <= 0
           && String.compare key (Sstable.Reader.max_key f.sst) <= 0)
         t.levels.(0))
  in
  let deeper = ref 0 in
  for i = 1 to t.config.max_levels - 1 do
    if t.levels.(i) <> [] then incr deeper
  done;
  l0 + !deeper

let engine ?(name = "LevelDB") t =
  {
    Kv.Kv_intf.name;
    disk = disk t;
    get = (fun k -> get t k);
    put = (fun k v -> put t k v);
    delete = (fun k -> delete t k);
    apply_delta = (fun k d -> apply_delta t k d);
    read_modify_write = (fun k f -> read_modify_write t k f);
    insert_if_absent = (fun k v -> insert_if_absent t k v);
    scan = (fun start n -> scan t start n);
    maintenance = (fun () -> maintenance t);
  }
