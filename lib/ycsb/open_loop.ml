module H = Repro_util.Histogram

type schedule =
  | Fixed_rate of { ops_per_sec : float }
  | Bursty of {
      base_ops_per_sec : float;
      burst_ops_per_sec : float;
      period_us : float;
      burst_fraction : float;
    }

let pp_schedule ppf = function
  | Fixed_rate { ops_per_sec } -> Fmt.pf ppf "fixed(%.0f/s)" ops_per_sec
  | Bursty { base_ops_per_sec; burst_ops_per_sec; period_us; burst_fraction }
    ->
      Fmt.pf ppf "bursty(%.0f/s base, %.0f/s burst, %.0fms period, %.0f%%)"
        base_ops_per_sec burst_ops_per_sec (period_us /. 1000.0)
        (burst_fraction *. 100.0)

let rate_at schedule t_us =
  match schedule with
  | Fixed_rate { ops_per_sec } -> ops_per_sec
  | Bursty { base_ops_per_sec; burst_ops_per_sec; period_us; burst_fraction }
    ->
      let phase = Float.rem t_us period_us in
      if phase < burst_fraction *. period_us then burst_ops_per_sec
      else base_ops_per_sec

let arrivals schedule ~seed ~jitter ~n =
  if n < 0 then invalid_arg "Open_loop.arrivals: n < 0";
  let jitter = Float.max 0.0 (Float.min 0.9 jitter) in
  let prng = Repro_util.Prng.of_int seed in
  let a = Array.make n 0.0 in
  let t = ref 0.0 in
  for i = 0 to n - 1 do
    let rate = Float.max 1e-6 (rate_at schedule !t) in
    let gap = 1e6 /. rate in
    let gap =
      if jitter > 0.0 then
        gap *. (1.0 -. jitter +. (2.0 *. jitter *. Repro_util.Prng.float prng))
      else gap
    in
    t := !t +. Float.max 1e-3 gap;
    a.(i) <- !t
  done;
  a

type result = {
  ol_label : string;
  ol_schedule : schedule;
  ol_offered : int;
  ol_completed : int;
  ol_shed : int;
  ol_elapsed_us : float;
  ol_ops_per_sec : float;
  ol_latency : H.t;
  ol_service : H.t;
  ol_windows : Obs.Windows.t;
  ol_max_queue : int;
  ol_depth_rows : (float * int) list;
}

let pp_result ppf r =
  Fmt.pf ppf "%-28s %8d/%d ops %10.0f ops/s shed %d maxq %d lat[%a]"
    r.ol_label r.ol_completed r.ol_offered r.ol_ops_per_sec r.ol_shed
    r.ol_max_queue H.pp r.ol_latency

let run (engine : Kv.Kv_intf.engine) ks ~label ~mix ~ops ~dist ~schedule
    ?(queue_bound = 10_000) ?(window_us = 1_000_000) ?(jitter = 0.0)
    ?(ordered_keys = false) ?(seed = 3) ?after_op () =
  if ops <= 0 then invalid_arg "Open_loop.run: ops <= 0";
  if queue_bound <= 0 then invalid_arg "Open_loop.run: queue_bound <= 0";
  let prng = Repro_util.Prng.of_int seed in
  let offsets = arrivals schedule ~seed:(seed + 1) ~jitter ~n:ops in
  let disk = engine.Kv.Kv_intf.disk in
  let t_start = Simdisk.Disk.now_us disk in
  let latency = H.create () in
  let service = H.create () in
  let windows = Obs.Windows.create ~width_us:window_us in
  (* peak pending-queue depth per window, keyed by window index *)
  let depth_wins : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let queue : float Queue.t = Queue.create () in
  let next = ref 0 in
  let shed = ref 0 in
  let completed = ref 0 in
  let max_queue = ref 0 in
  let note_depth now =
    let d = Queue.length queue in
    if d > !max_queue then max_queue := d;
    let idx = int_of_float now / window_us in
    match Hashtbl.find_opt depth_wins idx with
    | Some prev when prev >= d -> ()
    | _ -> Hashtbl.replace depth_wins idx d
  in
  (* enqueue every arrival due at or before [now]; overflow is shed *)
  let admit now =
    while !next < ops && t_start +. offsets.(!next) <= now do
      if Queue.length queue < queue_bound then
        Queue.add (t_start +. offsets.(!next)) queue
      else incr shed;
      incr next
    done;
    note_depth now
  in
  while !next < ops || not (Queue.is_empty queue) do
    let now = Simdisk.Disk.now_us disk in
    admit now;
    if Queue.is_empty queue then begin
      (* idle: advance the simulated clock to the next arrival *)
      let gap = t_start +. offsets.(!next) -. Simdisk.Disk.now_us disk in
      if gap > 0.0 then Simdisk.Disk.advance disk gap;
      admit (Simdisk.Disk.now_us disk)
    end
    else begin
      let arrived = Queue.pop queue in
      let svc_start = Simdisk.Disk.now_us disk in
      Runner.execute engine ks ~prng ~dist ~ordered_keys (Runner.pick_op prng mix);
      let t1 = Simdisk.Disk.now_us disk in
      let lat = int_of_float (t1 -. arrived) in
      H.add latency lat;
      H.add service (int_of_float (t1 -. svc_start));
      Obs.Windows.record windows ~time_us:t1 ~latency_us:lat;
      incr completed;
      admit t1;
      match after_op with
      | Some f -> f ~now_us:t1 ~queue_depth:(Queue.length queue)
      | None -> ()
    end
  done;
  let elapsed = Simdisk.Disk.now_us disk -. t_start in
  let depth_rows =
    let indices =
      (Hashtbl.fold [@lint.allow "D002"])
        (fun k _ acc -> k :: acc)
        depth_wins []
      (* sorted below: the hash order never escapes *)
      |> List.sort Int.compare
    in
    List.map
      (fun idx ->
        ( float_of_int idx *. float_of_int window_us /. 1e6,
          match Hashtbl.find_opt depth_wins idx with
          | Some d -> d
          | None -> 0 ))
      indices
  in
  {
    ol_label = label;
    ol_schedule = schedule;
    ol_offered = ops;
    ol_completed = !completed;
    ol_shed = !shed;
    ol_elapsed_us = elapsed;
    ol_ops_per_sec =
      (if elapsed > 0.0 then float_of_int !completed /. elapsed *. 1e6
       else 0.0);
    ol_latency = latency;
    ol_service = service;
    ol_windows = windows;
    ol_max_queue = !max_queue;
    ol_depth_rows = depth_rows;
  }
