(** Open-loop (arrival-rate-driven) workload runner.

    The closed-loop {!Runner} issues the next request only when the
    previous one returns, so every stall silently pauses the arrival
    process — the coordinated-omission blind spot: a 2-second stall
    costs *one* slow sample instead of the thousands of requests that
    would have arrived meanwhile. This runner instead draws a
    deterministic arrival schedule up front (fixed-rate or bursty, with
    optional seeded jitter), queues requests that arrive while the
    engine is busy, and measures every latency from the request's
    *intended arrival time*. Stalls therefore surface as queue growth
    and honest p99/p99.9 — the HdrHistogram-style corrected measurement
    the YCSB literature prescribes.

    The engine itself stays synchronous and single-threaded: the
    simulated clock advances inside engine operations, and
    {!Simdisk.Disk.advance} idles it between arrivals when the queue is
    empty. The pending queue is bounded; arrivals that find it full are
    shed and counted, so an unstable configuration shows up as a shed
    rate instead of an unbounded simulation. *)

(** Deterministic arrival process. Rates are requests per simulated
    second. *)
type schedule =
  | Fixed_rate of { ops_per_sec : float }
  | Bursty of {
      base_ops_per_sec : float;
      burst_ops_per_sec : float;
      period_us : float;  (** burst cycle length *)
      burst_fraction : float;  (** fraction of each period spent bursting *)
    }

val pp_schedule : Format.formatter -> schedule -> unit
[@@lint.allow "U001"] (* debug printer *)

(** [arrivals schedule ~seed ~jitter ~n] expands the schedule into [n]
    arrival offsets (µs, strictly increasing, relative to phase start).
    [jitter] perturbs each interarrival gap uniformly by up to
    [±jitter] of itself through a PRNG seeded with [seed] — same seed,
    same schedule. *)
val arrivals : schedule -> seed:int -> jitter:float -> n:int -> float array

type result = {
  ol_label : string;
  ol_schedule : schedule;
  ol_offered : int;  (** arrivals generated *)
  ol_completed : int;
  ol_shed : int;  (** arrivals dropped because the queue was full *)
  ol_elapsed_us : float;
  ol_ops_per_sec : float;  (** completed ops per simulated second *)
  ol_latency : Repro_util.Histogram.t;
      (** measured from intended arrival time: queueing + service *)
  ol_service : Repro_util.Histogram.t;
      (** service time only — what a closed loop would have reported *)
  ol_windows : Obs.Windows.t;  (** arrival-time latency per window *)
  ol_max_queue : int;  (** peak pending-queue depth *)
  ol_depth_rows : (float * int) list;
      (** (window start sec, peak queue depth in window), time order *)
}

val pp_result : Format.formatter -> result -> unit

(** [run engine ks ~label ~mix ~ops ~dist ~schedule ()] offers [ops]
    requests along the schedule and executes them FIFO. Operations and
    record ids are drawn at service time via {!Runner.execute}, so the
    applied workload matches a closed-loop run of the same mix. [ops]
    must be positive.

    @param queue_bound pending-request cap (default 10000)
    @param window_us   latency-window width (default 1s simulated)
    @param jitter      interarrival jitter fraction (default 0)
    @param after_op    called after each completion with the completion
                       time and the pending-queue depth — hook for
                       external samplers (queue-depth gauges) *)
val run :
  Kv.Kv_intf.engine ->
  Runner.keyspace ->
  label:string ->
  mix:Runner.mix ->
  ops:int ->
  dist:Generator.t ->
  schedule:schedule ->
  ?queue_bound:int ->
  ?window_us:int ->
  ?jitter:float ->
  ?ordered_keys:bool ->
  ?seed:int ->
  ?after_op:(now_us:float -> queue_depth:int -> unit) ->
  unit ->
  result
