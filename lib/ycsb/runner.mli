(** Closed-loop workload runner.

    Executes an operation mix against any {!Kv.Kv_intf.engine}, timing
    each operation on the engine's *simulated* clock — latency includes
    every merge stall, compaction, slowdown and buffer-pool miss the
    engine charged; throughput is ops per simulated second. Mirrors
    running YCSB with unthrottled workers (§5.1): the store is saturated
    and stalls appear as latency spikes. *)

type op_kind =
  | Read
  | Blind_update  (** overwrite with a fresh value *)
  | Read_modify_write
  | Insert  (** append a brand-new key *)
  | Checked_insert  (** insert-if-not-exists of a brand-new key *)
  | Delete  (** tombstone an existing key (tombstone floods in soaks) *)
  | Delta
  | Scan of int  (** scan of length uniform in [1, n] *)

(** Weighted operation mix; weights need not sum to 1. *)
type mix = (op_kind * float) list

val pp_op : Format.formatter -> op_kind -> unit
[@@lint.allow "U001"] (* debug printer *)

type result = {
  label : string;
  ops : int;
  elapsed_us : float;
  ops_per_sec : float;
  latency : Repro_util.Histogram.t;
  read_latency : Repro_util.Histogram.t;  (** reads and scans *)
  write_latency : Repro_util.Histogram.t;  (** everything else *)
  timeseries : Repro_util.Timeseries.t;
  io : Simdisk.Disk.snapshot;  (** I/O performed during the phase *)
}

val pp_result : Format.formatter -> result -> unit

(** Shared mutable keyspace: loads and inserts extend it, reads draw
    from it. *)
type keyspace = { mutable records : int; value_bytes : int }

val keyspace : records:int -> value_bytes:int -> keyspace

(** [pick_op prng mix] draws one operation kind with probability
    proportional to its weight. *)
val pick_op : Repro_util.Prng.t -> mix -> op_kind

(** [execute engine ks ~prng ~dist ~ordered_keys op] performs one
    operation. A record id is always drawn from [dist] first — the
    request stream is the same whatever the mix — then [op] runs against
    the derived key; inserts extend [ks]. Shared by the closed-loop
    {!run} and the open-loop generator ({!Open_loop}), so both loops
    apply identical workloads. *)
val execute :
  Kv.Kv_intf.engine ->
  keyspace ->
  prng:Repro_util.Prng.t ->
  dist:Generator.t ->
  ordered_keys:bool ->
  op_kind ->
  unit

(** [load engine ks ~n ?ordered ?checked ()] bulk-loads [n] fresh
    records. [ordered] feeds keys in sorted order (InnoDB's pre-sorted
    load, §5.2); [checked] uses insert-if-not-exists for every record
    (bLSM's §5.2 mode). *)
val load :
  Kv.Kv_intf.engine ->
  keyspace ->
  n:int ->
  ?ordered:bool ->
  ?checked:bool ->
  ?timeseries_bucket_us:int ->
  ?seed:int ->
  unit ->
  result

(** [run engine ks ~label ~mix ~ops ~dist ()] executes [ops] operations
    drawn from [mix] with record ids from [dist]. *)
val run :
  Kv.Kv_intf.engine ->
  keyspace ->
  label:string ->
  mix:mix ->
  ops:int ->
  dist:Generator.t ->
  ?ordered_keys:bool ->
  ?timeseries_bucket_us:int ->
  ?seed:int ->
  unit ->
  result
