(** Closed-loop workload runner.

    Executes an operation mix against any {!Kv.Kv_intf.engine}, timing each
    operation on the engine's *simulated* clock — so latency includes every
    merge stall, compaction, slowdown and buffer-pool miss the engine
    charged, and throughput is ops per simulated second. This mirrors
    running YCSB with unthrottled workers (§5.1): the store is saturated
    and stalls appear as latency spikes. *)

type op_kind =
  | Read
  | Blind_update  (** overwrite with a fresh value *)
  | Read_modify_write
  | Insert  (** append a brand-new key *)
  | Checked_insert  (** insert-if-not-exists of a brand-new key *)
  | Delete  (** tombstone an existing key (tombstone floods in soaks) *)
  | Delta
  | Scan of int  (** scan of length uniform in [1, n] *)

type mix = (op_kind * float) list

let pp_op ppf = function
  | Read -> Fmt.string ppf "read"
  | Blind_update -> Fmt.string ppf "update"
  | Read_modify_write -> Fmt.string ppf "rmw"
  | Insert -> Fmt.string ppf "insert"
  | Checked_insert -> Fmt.string ppf "checked-insert"
  | Delete -> Fmt.string ppf "delete"
  | Delta -> Fmt.string ppf "delta"
  | Scan n -> Fmt.pf ppf "scan(%d)" n

type result = {
  label : string;
  ops : int;
  elapsed_us : float;
  ops_per_sec : float;
  latency : Repro_util.Histogram.t;
  read_latency : Repro_util.Histogram.t;
  write_latency : Repro_util.Histogram.t;
  timeseries : Repro_util.Timeseries.t;
  io : Simdisk.Disk.snapshot;  (** I/O performed during the phase *)
}

let pp_result ppf r =
  Fmt.pf ppf "%-28s %8d ops %10.0f ops/s lat[%a]" r.label r.ops r.ops_per_sec
    Repro_util.Histogram.pp r.latency

(** Shared mutable keyspace: inserts extend it, reads draw from it. *)
type keyspace = { mutable records : int; value_bytes : int }

let keyspace ~records ~value_bytes = { records; value_bytes }

let timed (engine : Kv.Kv_intf.engine) hist ts f =
  let t0 = Simdisk.Disk.now_us engine.Kv.Kv_intf.disk in
  f ();
  let t1 = Simdisk.Disk.now_us engine.Kv.Kv_intf.disk in
  let lat = int_of_float (t1 -. t0) in
  Repro_util.Histogram.add hist lat;
  Repro_util.Timeseries.record ts ~time_us:(int_of_float t1)
    ~latency_us:lat;
  lat

(** [load engine ks ~n ?ordered ?checked ()] bulk-loads [n] fresh records.
    [ordered] feeds keys in sorted order (InnoDB's pre-sorted load, §5.2);
    [checked] uses insert-if-not-exists for every record (bLSM's §5.2
    loading mode). Returns the phase result. *)
let load (engine : Kv.Kv_intf.engine) ks ~n ?(ordered = false) ?(checked = false)
    ?(timeseries_bucket_us = 1_000_000) ?(seed = 1) () =
  let prng = Repro_util.Prng.of_int seed in
  let latency = Repro_util.Histogram.create () in
  let ts = Repro_util.Timeseries.create ~width_us:timeseries_bucket_us in
  let disk = engine.Kv.Kv_intf.disk in
  let before = Simdisk.Disk.snapshot disk in
  let t_start = Simdisk.Disk.now_us disk in
  for _ = 1 to n do
    let id = ks.records in
    ks.records <- ks.records + 1;
    let key =
      if ordered then Repro_util.Keygen.ordered_key_of_id id
      else Repro_util.Keygen.key_of_id id
    in
    let value = Repro_util.Keygen.value prng ks.value_bytes in
    ignore
      (timed engine latency ts (fun () ->
           if checked then ignore (engine.Kv.Kv_intf.insert_if_absent key value)
           else engine.Kv.Kv_intf.put key value))
  done;
  let elapsed = Simdisk.Disk.now_us disk -. t_start in
  {
    label = Printf.sprintf "%s load%s%s" engine.Kv.Kv_intf.name
        (if ordered then " (sorted)" else "")
        (if checked then " (checked)" else "");
    ops = n;
    elapsed_us = elapsed;
    ops_per_sec = (if elapsed > 0.0 then float_of_int n /. elapsed *. 1e6 else 0.0);
    latency;
    read_latency = Repro_util.Histogram.create ();
    write_latency = latency;
    timeseries = ts;
    io = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk);
  }

let pick_op prng mix =
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 mix in
  let x = Repro_util.Prng.float prng *. total in
  let rec go acc = function
    | [ (op, _) ] -> op
    | (op, w) :: rest -> if x < acc +. w then op else go (acc +. w) rest
    | [] -> invalid_arg "Runner: empty mix"
  in
  go 0.0 mix

(** [execute engine ks ~prng ~dist ~ordered_keys op] performs one
    operation: a record id is always drawn from [dist] (so the request
    stream is identical whatever the mix), then [op] runs against the
    derived key. Inserts extend the keyspace. Shared by the closed-loop
    {!run} and the open-loop generator ({!Open_loop}). *)
let execute (engine : Kv.Kv_intf.engine) ks ~prng ~dist ~ordered_keys op =
  let key_of id =
    if ordered_keys then Repro_util.Keygen.ordered_key_of_id id
    else Repro_util.Keygen.key_of_id id
  in
  let id = Generator.next dist ~record_count:ks.records in
  let key = key_of id in
  match op with
  | Read -> ignore (engine.Kv.Kv_intf.get key)
  | Blind_update ->
      engine.Kv.Kv_intf.put key (Repro_util.Keygen.value prng ks.value_bytes)
  | Read_modify_write ->
      engine.Kv.Kv_intf.read_modify_write key (fun v ->
          match v with
          | Some v -> v
          | None -> Repro_util.Keygen.value prng ks.value_bytes)
  | Insert ->
      let id = ks.records in
      ks.records <- ks.records + 1;
      engine.Kv.Kv_intf.put (key_of id)
        (Repro_util.Keygen.value prng ks.value_bytes)
  | Checked_insert ->
      let id = ks.records in
      ks.records <- ks.records + 1;
      ignore
        (engine.Kv.Kv_intf.insert_if_absent (key_of id)
           (Repro_util.Keygen.value prng ks.value_bytes))
  | Delete -> engine.Kv.Kv_intf.delete key
  | Delta -> engine.Kv.Kv_intf.apply_delta key "+1"
  | Scan n ->
      let len = 1 + Repro_util.Prng.int prng n in
      ignore (engine.Kv.Kv_intf.scan key len)

(** [run engine ks ~label ~mix ~ops ~dist ()] executes [ops] operations
    drawn from [mix] with keys from [dist]. Keys for reads/updates are
    drawn over the live keyspace; keys whose records were generated by the
    unordered loader are addressed through the same hash. *)
let run (engine : Kv.Kv_intf.engine) ks ~label ~mix ~ops ~dist
    ?(ordered_keys = false) ?(timeseries_bucket_us = 1_000_000) ?(seed = 2) ()
    =
  let prng = Repro_util.Prng.of_int seed in
  let latency = Repro_util.Histogram.create () in
  let read_latency = Repro_util.Histogram.create () in
  let write_latency = Repro_util.Histogram.create () in
  let ts = Repro_util.Timeseries.create ~width_us:timeseries_bucket_us in
  let disk = engine.Kv.Kv_intf.disk in
  let before = Simdisk.Disk.snapshot disk in
  let t_start = Simdisk.Disk.now_us disk in
  for _ = 1 to ops do
    let op = pick_op prng mix in
    let lat =
      timed engine latency ts (fun () ->
          execute engine ks ~prng ~dist ~ordered_keys op)
    in
    (match op with
    | Read -> Repro_util.Histogram.add read_latency lat
    | Scan _ -> Repro_util.Histogram.add read_latency lat
    | _ -> Repro_util.Histogram.add write_latency lat)
  done;
  let elapsed = Simdisk.Disk.now_us disk -. t_start in
  {
    label;
    ops;
    elapsed_us = elapsed;
    ops_per_sec = (if elapsed > 0.0 then float_of_int ops /. elapsed *. 1e6 else 0.0);
    latency;
    read_latency;
    write_latency;
    timeseries = ts;
    io = Simdisk.Disk.diff before (Simdisk.Disk.snapshot disk);
  }
