(** Deterministic skip list: the ordered map behind C0.

    The in-memory tree must support efficient ordered scans and cheap
    successor queries (§2.3.1); the snowshovel cursor (§4.2) additionally
    needs "smallest key >= cursor" in O(log n). A skip list provides all of
    these with simple single-threaded mutation. Levels are drawn from the
    repository PRNG, so runs are reproducible.

    Forward pointers are unboxed: every level ends at a per-list [nil]
    sentinel node instead of [None], so the descent compares pointers
    ([!=]) rather than destructuring an [option] per hop — no [Some]
    allocation at insert, one less indirection on the hot comparison
    path. *)

let max_level = 20
let branching = 4 (* promote with probability 1/4 *)

type 'a node = {
  key : string; (* "" for the head and nil sentinels *)
  mutable value : 'a;
  forward : 'a node array; (* physically [nil] past the last node *)
}

type 'a t = {
  head : 'a node;
  nil : 'a node; (* unique per list; compared with [==] only *)
  prng : Repro_util.Prng.t;
  mutable level : int; (* highest level in use, >= 1 *)
  mutable length : int;
}

let create ?(seed = 42) () =
  let nil = { key = ""; value = Obj.magic 0; forward = [||] } in
  {
    head = { key = ""; value = Obj.magic 0; forward = Array.make max_level nil };
    nil;
    prng = Repro_util.Prng.of_int seed;
    level = 1;
    length = 0;
  }

let length t = t.length

let is_empty t = t.length = 0

let random_level t =
  let rec go lvl =
    if lvl < max_level && Repro_util.Prng.int t.prng branching = 0 then
      go (lvl + 1)
    else lvl
  in
  go 1

(* Rightmost node whose key < [key], starting the walk at [from] on level
   [lvl]. *)
let rec advance t node lvl key =
  let nxt = node.forward.(lvl) in
  if nxt != t.nil && String.compare nxt.key key < 0 then advance t nxt lvl key
  else node

(* Walk down from the top level, collecting the rightmost node < key at
   each level into [update]. *)
let find_predecessors t key update =
  let x = ref t.head in
  for lvl = t.level - 1 downto 0 do
    x := advance t !x lvl key;
    update.(lvl) <- !x
  done;
  !x

(* Descend without recording predecessors (read-only lookups). *)
let find_floor t key =
  let x = ref t.head in
  for lvl = t.level - 1 downto 0 do
    x := advance t !x lvl key
  done;
  !x

(** [find t key] returns the stored value, if any. *)
let find t key =
  let n = (find_floor t key).forward.(0) in
  if n != t.nil && String.equal n.key key then Some n.value else None

(** [update t key f] inserts or modifies in one descent: [f None] for a
    fresh key, [f (Some old)] to replace. Returns the previous value. *)
let update t key f =
  let update_arr = Array.make max_level t.head in
  let pred = find_predecessors t key update_arr in
  let n = pred.forward.(0) in
  if n != t.nil && String.equal n.key key then begin
    let old = n.value in
    n.value <- f (Some old);
    Some old
  end
  else begin
    let lvl = random_level t in
    if lvl > t.level then begin
      for l = t.level to lvl - 1 do
        update_arr.(l) <- t.head
      done;
      t.level <- lvl
    end;
    let node = { key; value = f None; forward = Array.make lvl t.nil } in
    for l = 0 to lvl - 1 do
      node.forward.(l) <- update_arr.(l).forward.(l);
      update_arr.(l).forward.(l) <- node
    done;
    t.length <- t.length + 1;
    None
  end

(** [set t key v] is [update] ignoring the previous value. *)
let set t key v = ignore (update t key (fun _ -> v))

(** [remove t key] deletes the binding, returning the removed value. *)
let remove t key =
  let update_arr = Array.make max_level t.head in
  let _ = find_predecessors t key update_arr in
  let n = update_arr.(0).forward.(0) in
  if n != t.nil && String.equal n.key key then begin
    for l = 0 to Array.length n.forward - 1 do
      if update_arr.(l).forward.(l) == n then
        update_arr.(l).forward.(l) <- n.forward.(l)
    done;
    while t.level > 1 && t.head.forward.(t.level - 1) == t.nil do
      t.level <- t.level - 1
    done;
    t.length <- t.length - 1;
    Some n.value
  end
  else None

(** [min_binding t] is the smallest key, if any. *)
let min_binding t =
  let n = t.head.forward.(0) in
  if n == t.nil then None else Some (n.key, n.value)

(** [succ_geq t key] returns the smallest binding with key >= [key]:
    the snowshovel cursor's primitive. *)
let succ_geq t key =
  let n = (find_floor t key).forward.(0) in
  if n == t.nil then None else Some (n.key, n.value)

(** [iter_from t key f] applies [f] to bindings with key >= [key], in
    order, while [f] returns [true]. *)
let iter_from t key f =
  (* Position near key first to avoid O(n) prefix walk. *)
  let rec go n =
    if n != t.nil then
      if String.compare n.key key >= 0 then begin
        if f n.key n.value then go n.forward.(0)
      end
      else go n.forward.(0)
  in
  go (find_floor t key).forward.(0)

(** [iter t f] applies [f] to all bindings in key order. *)
let iter t f =
  let rec go n =
    if n != t.nil then begin
      f n.key n.value;
      go n.forward.(0)
    end
  in
  go t.head.forward.(0)

(** [fold t init f] folds bindings in key order. *)
let fold t init f =
  let rec go acc n =
    if n == t.nil then acc else go (f acc n.key n.value) n.forward.(0)
  in
  go init t.head.forward.(0)

let to_list t = List.rev (fold t [] (fun acc k v -> (k, v) :: acc))
