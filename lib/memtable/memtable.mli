(** C0: the in-memory tree component.

    An update-in-place ordered map that supports efficient ordered scans
    (§2.3.1). Tracks its own RAM footprint so the merge schedulers can
    compute fill fractions, and records the WAL LSN each live entry
    depends on so log truncation can be delayed exactly as long as
    snowshoveling keeps old entries live (§4.4.2). *)

module Skiplist = Skiplist
(** The underlying deterministic skip list (also used for merge shadow
    tables). *)

type t

val create : ?seed:int -> resolver:Kv.Entry.resolver -> unit -> t

val count : t -> int

(** Approximate RAM usage: keys + encoded entries + node overhead. *)
val bytes : t -> int

val is_empty : t -> bool

(** [write t ~lsn key entry] applies one logical write. A [Delta]
    composes with any state already buffered; [Base]/[Tombstone] replace
    it. The slot keeps the oldest LSN it still depends on. *)
val write : t -> lsn:int -> string -> Kv.Entry.t -> unit

val get : t -> string -> Kv.Entry.t option

(** [remove t key] physically drops a key (merge consumption, not a
    logical delete — those are tombstone writes). *)
val remove : t -> string -> Kv.Entry.t option

(** [consume_geq t key] pops the smallest binding with key >= [key]: the
    snowshovel primitive (§4.2). [None] when the run must wrap. *)
val consume_geq : t -> string -> (string * Kv.Entry.t) option

(** As {!consume_geq}, also yielding the newest LSN folded into the
    entry (stored in merge output for recovery's replay filter). *)
val consume_geq_lsn : t -> string -> (string * Kv.Entry.t * int) option

(** [consume_min t] pops the overall smallest binding. *)
val consume_min : t -> (string * Kv.Entry.t) option

(** [peek_geq t key] inspects without consuming. *)
val peek_geq : t -> string -> (string * Kv.Entry.t) option
[@@lint.allow "U001"] (* iteration family kept whole for embedders *)

(** As {!peek_geq}, with the newest contributing LSN. *)
val peek_geq_lsn : t -> string -> (string * Kv.Entry.t * int) option

(** [oldest_lsn t] is the smallest LSN any live entry depends on — the
    WAL truncation point. O(n); called once per merge completion. *)
val oldest_lsn : t -> int option

(** [iter_from t key f] visits bindings with key >= [key] in order while
    [f] returns [true]. *)
val iter_from : t -> string -> (string -> Kv.Entry.t -> bool) -> unit
[@@lint.allow "U001"] (* iteration family kept whole for embedders *)

val iter : t -> (string -> Kv.Entry.t -> unit) -> unit
[@@lint.allow "U001"] (* iteration family kept whole for embedders *)
val fold : t -> 'a -> ('a -> string -> Kv.Entry.t -> 'a) -> 'a
[@@lint.allow "U001"] (* iteration family kept whole for embedders *)
val to_list : t -> (string * Kv.Entry.t) list
[@@lint.allow "U001"] (* iteration family kept whole for embedders *)
