(** Contiguous region allocator (§4.4.2).

    Tree components and log segments each live in one contiguous page
    range, so merge I/O is genuinely sequential. First-fit over an
    address-ordered free list with coalescing on free. *)

type region = { start : Page.id; length : int }

type t

val create : unit -> t

(** [allocate t n] returns [n] contiguous pages. *)
val allocate : t -> int -> region

(** [free t r] returns [r] to the free list, coalescing neighbours. *)
val free : t -> region -> unit

val allocated_pages : t -> int
val high_watermark : t -> Page.id
[@@lint.allow "U001"] (* space-amplification probe beside [allocated_pages] *)

(** Pages currently on the free list (space-amplification probe). *)
val free_pages : t -> int
