(** Store façade: disk + platter + region allocator + buffer manager +
    physical metadata journal + logical WAL.

    The Stasis substitute (DESIGN.md §1). Engines allocate contiguous
    regions for tree components, stream merge output around the cache, do
    cached point I/O through the buffer manager, and commit metadata
    through a force-written root so a physically consistent tree is
    available at crash (§4.4.2). *)

type t

type config = {
  cfg_page_size : int;
  cfg_buffer_pages : int;  (** buffer-pool capacity, in pages *)
  cfg_durability : Wal.durability;
}

(** 4 KiB pages, 1024-frame pool, full durability. *)
val default_config : config
[@@lint.allow "U001"] (* the documented default for [create]'s [?config] *)

val create : ?config:config -> Simdisk.Profile.t -> t

val disk : t -> Simdisk.Disk.t
val buffer : t -> Buffer_manager.t
val wal : t -> Wal.t
val page_size : t -> int

(** [set_faults t plan] arms a fault-injection plan across the store's
    write sites (streamed pages, buffer writebacks, WAL appends); write
    sites may then raise {!Simdisk.Faults.Crash_point}. *)
val set_faults : t -> Simdisk.Faults.t -> unit

val faults : t -> Simdisk.Faults.t
[@@lint.allow "U001"] (* harness introspection of the armed fault plan *)

(** The store's tracer: created with the store on its simulated clock
    and shared by the WAL, buffer manager, and hosted engines. Disabled
    (no sink) until [Obs.Trace.enable_file]/[enable_buffer]. *)
val trace : t -> Obs.Trace.t

(** [register_metrics reg t] registers disk/WAL/buffer/fault metrics as
    pull-closures over the store's live stat records. *)
val register_metrics : Obs.Metrics.t -> t -> unit

(** Simulated clock, µs. *)
val now_us : t -> float

(** {1 Regions} *)

val allocate_region : t -> pages:int -> Region_allocator.region

(** [free_region t r] returns [r]'s pages: cached copies are dropped,
    platter space reclaimed. *)
val free_region : t -> Region_allocator.region -> unit

(** {1 Cached page access (point reads, update-in-place trees)} *)

(** [with_page t id f] pins page [id] in the pool (a miss costs a seek),
    applies [f], unpins. The callback must not retain the buffer. *)
val with_page : t -> Page.id -> (Bytes.t -> 'a) -> 'a

(** As {!with_page} but a miss is charged as a sequential transfer
    (declared streaming access). *)
val with_page_seq : t -> Page.id -> (Bytes.t -> 'a) -> 'a

(** As {!with_page} but marks the frame dirty; eviction writes it back. *)
val with_page_mut : t -> Page.id -> (Bytes.t -> 'a) -> 'a

(** {1 Verified zero-copy access (the hot read path)}

    Point lookups verify a page's CRC once, when the frame is loaded from
    the platter, and then read records straight out of the pool's bytes —
    no per-access checksum, no copy-out. See DESIGN.md, "Read-path CPU
    costs". *)

(** As {!with_page}, but [verify] (raises on a bad frame) runs only when
    the frame was read from the platter since its last verification —
    pool hits skip it. *)
val with_page_verified :
  t -> Page.id -> seq:bool -> verify:(Bytes.t -> unit) -> (Bytes.t -> 'a) -> 'a
[@@lint.allow "U001"] (* uncached variant of the verified-read pair *)

(** As {!with_page_verified}, additionally caching [derive frame_bytes]
    (per-page record-start offsets) alongside the frame; [derive] runs
    once per load, strictly after [verify]. *)
val with_page_starts :
  t ->
  Page.id ->
  seq:bool ->
  verify:(Bytes.t -> unit) ->
  derive:(Bytes.t -> int array) ->
  (Bytes.t -> int array -> 'a) ->
  'a

(** A pinned buffer-pool frame: the page stays resident and its bytes
    can be read in place until {!unpin}. Release promptly — a leaked pin
    permanently shrinks the pool. *)
type pin

val pin_page : t -> Page.id -> seq:bool -> verify:(Bytes.t -> unit) -> pin

(** The pinned frame's bytes — valid until {!unpin}. Do not mutate. *)
val pinned_bytes : pin -> Bytes.t

val unpin : pin -> unit

(** {1 Streaming access (merges, bulk builds)}

    Direct platter I/O at sequential-bandwidth cost, bypassing the pool;
    the first page of each stream pays one positioning seek. *)

type write_stream

val open_write_stream : t -> Region_allocator.region -> write_stream

(** [stream_write ws page] writes the next page of the region, returning
    its id. Fails on region overflow. *)
val stream_write : write_stream -> Bytes.t -> Page.id

type read_stream

val open_read_stream : t -> start:Page.id -> length:int -> read_stream

(** [stream_read rs] returns the next page (buffer reused per call), or
    [None] at region end. *)
val stream_read : read_stream -> Bytes.t option

(** [read_page_direct t id buf] copies a page from the platter without
    touching pool or clock; the caller charges the disk. Only valid for
    pages written via streams (never dirty in the pool). *)
val read_page_direct : t -> Page.id -> Bytes.t -> unit

(** {1 Metadata root (the journal's recovery-visible state)} *)

(** [commit_root ?slot t blob] force-writes an engine's metadata (live
    component regions); survives {!crash}. [slot] names the tree when
    several share one store (partitioned stores); default [""]. *)
val commit_root : ?slot:string -> t -> string -> unit

val read_root : ?slot:string -> t -> string
val root_writes : t -> int
[@@lint.allow "U001"] (* durability-accounting probe *)

(** {1 Crash simulation} *)

(** [crash t] loses the buffer pool; platter, committed root, and the
    synced WAL prefix survive ([Degraded] durability discards the WAL's
    unsynced group-commit tail). Engines rebuild everything else in
    recovery. *)
val crash : t -> unit

(** [corrupt_page t id ~byte ~bit] flips one stored bit of page [id] —
    bit-rot instrumentation for scrub/recovery tests; false when the page
    was never written. *)
val corrupt_page : t -> Page.id -> byte:int -> bit:int -> bool

(** Bytes durably stored right now (space-amplification probe). *)
val stored_bytes : t -> int
