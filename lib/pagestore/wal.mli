(** Logical write-ahead log (§4.4.2).

    Replaying it after a crash rebuilds C0. Appends are group-committed
    without per-commit fsync (§5.1), so they cost sequential bandwidth.
    Records are physically framed (16-byte header: LSN, length, CRC32C)
    and replay verifies every frame: an invalid *tail* record is a torn
    group-commit write — truncated, normal; an invalid record mid-log is
    bit rot — {!Corrupt}, fatal. Truncation is driven by merge
    completion; snowshoveling delays it because old entries stay live in
    C0 longer. *)

(** [Full]: every append synced before the ack. [Degraded]: synced once
    per group-commit window, so a crash loses the unsynced tail (the
    paper's replication mode). [None_]: no logging; recovery restores
    only merged data. *)
type durability = Full | Degraded | None_

(** Mid-log corruption found during {!replay}: unlike a torn tail this
    cannot be explained by power loss, so recovery must stop. *)
exception Corrupt of { what : string; lsn : int }

type t

val create : ?durability:durability -> ?group_commit_bytes:int -> Simdisk.Disk.t -> t

(** Attach a fault-injection plan; appends consult it before acking. *)
val set_faults : t -> Simdisk.Faults.t -> unit

(** Attach a tracer; group-commit syncs and truncations emit events on
    it. Usually the store's shared tracer. *)
val set_trace : t -> Obs.Trace.t -> unit

(** [append t payload] appends one record, returning its LSN (the ack).
    May raise {!Simdisk.Faults.Crash_point} when a scheduled fault kills
    the machine mid-append (the record is then torn or lost, never
    acked). *)
val append : t -> string -> int

(** Force a group-commit sync: everything appended so far is durable. *)
val sync : t -> unit

(** [truncate t ~upto_lsn] discards records with lsn < [upto_lsn]
    unconditionally (single-client logs). *)
val truncate : t -> upto_lsn:int -> unit

(** [register_client t ~client] declares a client whose floor starts at
    the current truncation point; until it proposes higher, nothing it
    might need is dropped. *)
val register_client : t -> client:string -> unit

(** [propose_truncate t ~client ~upto_lsn]: multi-tree stores — record
    [client]'s floor and truncate only below every client's floor. *)
val propose_truncate : t -> client:string -> upto_lsn:int -> unit

(** [replay t ~from_lsn f] feeds surviving records (oldest first) to
    [f lsn payload], charging a sequential read per record (§4.4.2:
    "replaying the log at startup is extremely expensive"). Each frame
    is checksum-verified: a torn tail is truncated (normal); mid-log
    corruption raises {!Corrupt}. *)
val replay : t -> from_lsn:int -> (int -> string -> unit) -> unit

(** Scrub the log: (records checked, [(what, lsn)] errors). *)
val verify : t -> int * (string * int) list

(** Power-loss semantics for the log: under [Degraded] the unsynced
    group-commit tail is discarded. Called by [Store.crash]. *)
val crash : t -> unit

(** [flip_bit t ~lsn ~byte ~bit] rots one stored bit of record [lsn]
    (test/scrub instrumentation); false when the record is gone. *)
val flip_bit : t -> lsn:int -> byte:int -> bit:int -> bool

val next_lsn : t -> int
val truncated_to : t -> int

(** Highest LSN guaranteed to survive a crash. *)
val synced_lsn : t -> int

(** Live (untruncated) log size. *)
val size_bytes : t -> int

(** Lifetime appended bytes (write-amplification accounting). *)
val appended_bytes : t -> int

val durability : t -> durability

(** Torn tail records truncated by {!replay} (each was an unacked
    in-flight write at power loss). *)
val torn_tail_drops : t -> int

(** Records lost to the [Degraded] group-commit window across crashes. *)
val dropped_unsynced : t -> int
