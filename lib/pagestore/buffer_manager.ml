(** Buffer manager with CLOCK eviction.

    Follows §4.4.2: bLSM's buffer manager uses a CLOCK eviction policy
    ("LRU was a concurrency bottleneck") and a writeback policy tuned for
    predictable latencies. Misses charge the simulated disk a seek (or a
    sequential transfer when the caller declares a streaming access);
    evicting a dirty frame charges a write, sequential when the writeback
    happens to continue the previous one. *)

type frame = {
  slot : int; (* position in the frame array, fixed at creation *)
  mutable page : Page.id; (* -1 when the frame is empty *)
  data : Bytes.t;
  mutable dirty : bool;
  mutable refbit : bool;
  mutable pins : int;
  (* Verified-once bookkeeping: integrity checks and derived navigation
     metadata run when a frame is (re)loaded from the platter, then pool
     hits skip them entirely. Bit rot lands on the platter, so it is
     still caught at the load that brings it into RAM. *)
  mutable verified : bool;
  mutable starts : int array option; (* derived record-start offsets *)
}

type t = {
  disk : Simdisk.Disk.t;
  platter : Platter.t;
  page_size : int;
  frames : frame array;
  index : (Page.id, int) Hashtbl.t;
  mutable hand : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable last_writeback : Page.id;
  mutable faults : Simdisk.Faults.t;
  mutable trace : Obs.Trace.t;
  mutable pins_taken : int; (* lifetime pin acquisitions, all access paths *)
}

let create disk platter ~capacity_pages =
  if capacity_pages < 1 then invalid_arg "Buffer_manager.create: capacity";
  let page_size = Platter.page_size platter in
  {
    disk;
    platter;
    page_size;
    frames =
      Array.init capacity_pages (fun slot ->
          { slot; page = -1; data = Bytes.create page_size; dirty = false;
            refbit = false; pins = 0; verified = false; starts = None });
    index = Hashtbl.create (2 * capacity_pages);
    hand = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    last_writeback = -10;
    faults = Simdisk.Faults.create ();
    trace = Obs.Trace.create ();
    pins_taken = 0;
  }

let capacity t = Array.length t.frames

let set_faults t plan = t.faults <- plan
let set_trace t tr = t.trace <- tr

(* Every access path pins its frame for the callback's duration; count
   them all so the metrics registry can expose pin traffic. *)
let take_pin t f =
  f.pins <- f.pins + 1;
  t.pins_taken <- t.pins_taken + 1

let writeback t frame =
  if frame.dirty then begin
    (match Simdisk.Faults.on_page_write t.faults ~page_size:t.page_size with
    | Simdisk.Faults.Pw_ok -> Platter.write t.platter frame.page frame.data
    | Simdisk.Faults.Pw_lost -> () (* acked but never persisted *)
    | Simdisk.Faults.Pw_flip (byte, bit) ->
        Platter.write t.platter frame.page frame.data;
        ignore (Platter.corrupt t.platter frame.page ~byte ~bit)
    | Simdisk.Faults.Pw_crash ->
        raise (Simdisk.Faults.Crash_point "buffer writeback")
    | Simdisk.Faults.Pw_crash_torn keep ->
        let torn = Bytes.sub frame.data 0 t.page_size in
        Bytes.fill torn keep (t.page_size - keep) '\000';
        Platter.write t.platter frame.page torn;
        raise (Simdisk.Faults.Crash_point "buffer writeback (torn)"));
    if frame.page = t.last_writeback + 1 then
      Simdisk.Disk.seq_write t.disk ~bytes:t.page_size
    else Simdisk.Disk.seek_write t.disk ~bytes:t.page_size;
    t.last_writeback <- frame.page;
    frame.dirty <- false
  end

(* Advance the CLOCK hand to a victim frame: skip pinned frames, clear
   reference bits on the first lap. Two full laps of pinned frames means
   the pool is exhausted, which is a bug in the caller. *)
let find_victim t =
  let n = Array.length t.frames in
  let rec go remaining =
    if remaining = 0 then failwith "Buffer_manager: all frames pinned";
    let f = t.frames.(t.hand) in
    t.hand <- (t.hand + 1) mod n;
    if f.pins > 0 then go (remaining - 1)
    else if f.refbit then begin
      f.refbit <- false;
      go (remaining - 1)
    end
    else f
  in
  go (2 * n + 1)

let load t id ~seq =
  match Hashtbl.find_opt t.index id with
  | Some fi ->
      let f = t.frames.(fi) in
      t.hits <- t.hits + 1;
      f.refbit <- true;
      f
  | None ->
      t.misses <- t.misses + 1;
      let f = find_victim t in
      if f.page >= 0 then begin
        t.evictions <- t.evictions + 1;
        if Obs.Trace.enabled t.trace then
          Obs.Trace.instant t.trace ~cat:"buf" ~name:"evict"
            ~args:[ ("page", Obs.Trace.I f.page); ("dirty", Obs.Trace.B f.dirty) ];
        writeback t f;
        Hashtbl.remove t.index f.page
      end;
      Platter.read t.platter id f.data;
      if seq then Simdisk.Disk.seq_read t.disk ~bytes:t.page_size
      else Simdisk.Disk.seek_read t.disk ~bytes:t.page_size;
      f.page <- id;
      f.refbit <- true;
      f.dirty <- false;
      f.verified <- false;
      f.starts <- None;
      Hashtbl.replace t.index id f.slot;
      f

(** [with_page t id ~seq f] pins page [id], applies [f] to its bytes, and
    unpins. The callback must not retain the buffer. *)
let with_page t id ~seq fn =
  let f = load t id ~seq in
  take_pin t f;
  Fun.protect ~finally:(fun () -> f.pins <- f.pins - 1) (fun () -> fn f.data)

(** [with_page_mut] is [with_page] but marks the frame dirty. Mutation
    invalidates the verified bit and any derived metadata. *)
let with_page_mut t id ~seq fn =
  let f = load t id ~seq in
  take_pin t f;
  f.dirty <- true;
  f.verified <- false;
  f.starts <- None;
  Fun.protect ~finally:(fun () -> f.pins <- f.pins - 1) (fun () -> fn f.data)

(* Run the caller's integrity check exactly once per platter load. *)
let ensure_verified f ~verify =
  if not f.verified then begin
    verify f.data;
    f.verified <- true
  end

(** [with_page_verified t id ~seq ~verify fn] is {!with_page}, except
    [verify] (which must raise on a bad frame) runs only when this frame
    was (re)read from the platter since its last verification — pool hits
    skip the check. *)
let with_page_verified t id ~seq ~verify fn =
  let f = load t id ~seq in
  take_pin t f;
  Fun.protect
    ~finally:(fun () -> f.pins <- f.pins - 1)
    (fun () ->
      ensure_verified f ~verify;
      fn f.data)

(** [with_page_starts t id ~seq ~verify ~derive fn] additionally caches
    [derive frame_bytes] (record-start offsets, or any per-page navigation
    metadata) alongside the frame; [derive] runs once per load, strictly
    after [verify], so derived offsets never come from unverified bytes. *)
let with_page_starts t id ~seq ~verify ~derive fn =
  let f = load t id ~seq in
  take_pin t f;
  Fun.protect
    ~finally:(fun () -> f.pins <- f.pins - 1)
    (fun () ->
      ensure_verified f ~verify;
      let starts =
        match f.starts with
        | Some a -> a
        | None ->
            let a = derive f.data in
            f.starts <- Some a;
            a
      in
      fn f.data starts)

(** {1 Pinned access}

    A [pin] keeps a frame resident (CLOCK skips pinned frames) so callers
    can read records straight out of the pool's bytes across several
    operations — the zero-copy read path — instead of copying the page
    out. Pins must be released promptly; a leaked pin permanently shrinks
    the pool. *)

type pin = { p_frame : frame; p_page : Page.id }

let pin t id ~seq ~verify =
  let f = load t id ~seq in
  take_pin t f;
  (try ensure_verified f ~verify
   with e ->
     f.pins <- f.pins - 1;
     raise e);
  if Obs.Trace.enabled t.trace then
    Obs.Trace.instant t.trace ~cat:"buf" ~name:"pin"
      ~args:[ ("page", Obs.Trace.I id) ];
  { p_frame = f; p_page = id }

let pin_bytes p = p.p_frame.data

(* Tolerates a crash (or discard) having recycled the frame in between:
   unpinning is then a no-op rather than corrupting another page's pin
   count. *)
let unpin p =
  if p.p_frame.page = p.p_page && p.p_frame.pins > 0 then
    p.p_frame.pins <- p.p_frame.pins - 1

(** [force t id] synchronously writes page [id] back if dirty. *)
let force t id =
  match Hashtbl.find_opt t.index id with
  | Some fi -> writeback t t.frames.(fi)
  | None -> ()

(** [flush_all t] writes back every dirty frame (checkpoint). *)
let flush_all t =
  Array.iter (fun f -> if f.page >= 0 then writeback t f) t.frames

(** [discard_region t ~start ~length] drops cached frames for freed pages
    without writing them back (their region is being deallocated). *)
let discard_region t ~start ~length =
  for id = start to start + length - 1 do
    match Hashtbl.find_opt t.index id with
    | Some fi ->
        let f = t.frames.(fi) in
        f.page <- -1;
        f.dirty <- false;
        f.refbit <- false;
        f.verified <- false;
        f.starts <- None;
        Hashtbl.remove t.index id
    | None -> ()
  done

(** [crash t] simulates power loss: all frames vanish, dirty or not. *)
let crash t =
  Array.iter
    (fun f ->
      f.page <- -1;
      f.dirty <- false;
      f.refbit <- false;
      f.pins <- 0;
      f.verified <- false;
      f.starts <- None)
    t.frames;
  Hashtbl.reset t.index

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let pins_taken t = t.pins_taken

let pinned_frames t =
  Array.fold_left (fun acc f -> if f.pins > 0 then acc + 1 else acc) 0 t.frames

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
