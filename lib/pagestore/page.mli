(** Page-level byte helpers shared by the SSTable and B-Tree formats.
    Little-endian fixed-width accessors over fixed-size page buffers. *)

(** 4096: the minimum SSD transfer size (Appendix A.2). *)
val default_size : int

type id = int

val get_u16 : Bytes.t -> int -> int
[@@lint.allow "U001"] (* accessor family kept symmetric with the setters *)
val set_u16 : Bytes.t -> int -> int -> unit
val get_u32 : Bytes.t -> int -> int
[@@lint.allow "U001"] (* accessor family kept symmetric with the setters *)
val set_u32 : Bytes.t -> int -> int -> unit
val get_u64 : Bytes.t -> int -> int
[@@lint.allow "U001"] (* accessor family kept symmetric with the setters *)
val set_u64 : Bytes.t -> int -> int -> unit

(** [blit_string s b pos] copies all of [s] into [b] at [pos]. *)
val blit_string : string -> Bytes.t -> int -> unit

val sub_string : Bytes.t -> int -> int -> string
[@@lint.allow "U001"] (* accessor family completeness *)
