(** The simulated disk platter: durable page payloads. Pages written here
    survive a simulated crash; the buffer manager's dirty frames do not.
    Absent pages read as zeroes. *)

type t

val create : page_size:int -> t
val page_size : t -> int

(** [read t id dst] copies page [id] into [dst] (zero-fills if absent). *)
val read : t -> Page.id -> Bytes.t -> unit

(** [write t id src] durably stores a copy of [src] as page [id]. *)
val write : t -> Page.id -> Bytes.t -> unit

(** [drop t id] discards a page (region freed). *)
val drop : t -> Page.id -> unit

(** [corrupt t id ~byte ~bit] flips one stored bit — simulated bit rot;
    false when the page was never written. *)
val corrupt : t -> Page.id -> byte:int -> bit:int -> bool

val stored_pages : t -> int
[@@lint.allow "U001"] (* space-accounting probe beside [stored_bytes] *)
val stored_bytes : t -> int
