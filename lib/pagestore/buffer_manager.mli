(** Buffer manager with CLOCK eviction (§4.4.2).

    Misses charge the simulated disk a seek (or a sequential transfer for
    declared streaming accesses); evicting a dirty frame charges a write,
    sequential when it happens to continue the previous writeback.
    Usually driven through {!Store}. *)

type t

val create : Simdisk.Disk.t -> Platter.t -> capacity_pages:int -> t
val capacity : t -> int

(** Attach a fault-injection plan; dirty-frame writebacks consult it. *)
val set_faults : t -> Simdisk.Faults.t -> unit

(** [with_page t id ~seq f] pins page [id], applies [f], unpins. *)
val with_page : t -> Page.id -> seq:bool -> (Bytes.t -> 'a) -> 'a

(** As {!with_page}, marking the frame dirty. *)
val with_page_mut : t -> Page.id -> seq:bool -> (Bytes.t -> 'a) -> 'a

(** [force t id] synchronously writes page [id] back if dirty. *)
val force : t -> Page.id -> unit

(** [flush_all t] writes back every dirty frame (checkpoint). *)
val flush_all : t -> unit

(** [discard_region t ~start ~length] drops cached frames for freed pages
    without writeback. *)
val discard_region : t -> start:Page.id -> length:int -> unit

(** [crash t] simulates power loss: all frames vanish, dirty or not. *)
val crash : t -> unit

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val hit_rate : t -> float
