(** Buffer manager with CLOCK eviction (§4.4.2).

    Misses charge the simulated disk a seek (or a sequential transfer for
    declared streaming accesses); evicting a dirty frame charges a write,
    sequential when it happens to continue the previous writeback.
    Usually driven through {!Store}. *)

type t

val create : Simdisk.Disk.t -> Platter.t -> capacity_pages:int -> t
val capacity : t -> int
[@@lint.allow "U001"] (* constructor-argument accessor *)

(** Attach a fault-injection plan; dirty-frame writebacks consult it. *)
val set_faults : t -> Simdisk.Faults.t -> unit

(** Attach a tracer; evictions and explicit pins emit events on it.
    Usually the store's shared tracer. *)
val set_trace : t -> Obs.Trace.t -> unit

(** [with_page t id ~seq f] pins page [id], applies [f], unpins. *)
val with_page : t -> Page.id -> seq:bool -> (Bytes.t -> 'a) -> 'a

(** As {!with_page}, marking the frame dirty. Invalidates the frame's
    verified bit and derived metadata. *)
val with_page_mut : t -> Page.id -> seq:bool -> (Bytes.t -> 'a) -> 'a

(** {1 Verified-once access}

    Integrity checks and derived navigation metadata run when a frame is
    (re)loaded from the platter; pool hits skip them. Bit rot lands on
    the platter, so it is still caught at the load that brings the page
    into RAM. *)

(** As {!with_page}, but [verify] (which must raise on a bad frame) runs
    only when this frame was read from the platter since its last
    verification. *)
val with_page_verified :
  t -> Page.id -> seq:bool -> verify:(Bytes.t -> unit) -> (Bytes.t -> 'a) -> 'a

(** As {!with_page_verified}, additionally caching [derive frame_bytes]
    (per-page record-start offsets) alongside the frame. [derive] runs
    once per load, strictly after [verify]. *)
val with_page_starts :
  t ->
  Page.id ->
  seq:bool ->
  verify:(Bytes.t -> unit) ->
  derive:(Bytes.t -> int array) ->
  (Bytes.t -> int array -> 'a) ->
  'a

(** {1 Pinned access (zero-copy reads)}

    A pin keeps a frame resident (CLOCK skips pinned frames) so callers
    can read records straight out of the pool's bytes across several
    operations instead of copying the page out. Release promptly: a
    leaked pin permanently shrinks the pool. *)

type pin

(** [pin t id ~seq ~verify] loads, verifies (once per platter load), and
    pins page [id]. The pin is released (and no frame left over-pinned)
    if [verify] raises. *)
val pin : t -> Page.id -> seq:bool -> verify:(Bytes.t -> unit) -> pin

(** The pinned frame's bytes — valid until {!unpin}. Do not mutate. *)
val pin_bytes : pin -> Bytes.t

(** Release a pin. Safe (a no-op) if a {!crash} recycled the frame. *)
val unpin : pin -> unit

(** [force t id] synchronously writes page [id] back if dirty. *)
val force : t -> Page.id -> unit

(** [flush_all t] writes back every dirty frame (checkpoint). *)
val flush_all : t -> unit

(** [discard_region t ~start ~length] drops cached frames for freed pages
    without writeback. *)
val discard_region : t -> start:Page.id -> length:int -> unit

(** [crash t] simulates power loss: all frames vanish, dirty or not. *)
val crash : t -> unit

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val hit_rate : t -> float

(** Lifetime pin acquisitions across every access path. *)
val pins_taken : t -> int

(** Frames currently held by at least one pin. *)
val pinned_frames : t -> int
