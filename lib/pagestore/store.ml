(** Store façade: disk + platter + region allocator + buffer manager +
    physical metadata journal + logical WAL.

    This is the Stasis substitute described in DESIGN.md §1. Engines
    allocate contiguous regions for tree components, stream merge output
    around the cache, do cached point I/O through the buffer manager, and
    commit metadata (the set of live components) through a force-written
    root record, so that "a physically consistent version of the tree is
    available at crash" (§4.4.2). *)

type t = {
  disk : Simdisk.Disk.t;
  platter : Platter.t;
  allocator : Region_allocator.t;
  buffer : Buffer_manager.t;
  wal : Wal.t;
  page_size : int;
  trace : Obs.Trace.t;
      (* one tracer per store, on the simulated clock, shared by the WAL,
         the buffer manager, and every engine hosted on this store *)
  mutable faults : Simdisk.Faults.t;
  (* The journal: force-written metadata blobs (think Stasis' physical
     log distilled to its recovery-visible effect), one slot per tree
     hosted on this store. *)
  roots : (string, string) Hashtbl.t;
  mutable root_writes : int;
}

type config = {
  cfg_page_size : int;
  cfg_buffer_pages : int;  (** buffer-pool capacity, in pages *)
  cfg_durability : Wal.durability;
}

let default_config =
  { cfg_page_size = Page.default_size; cfg_buffer_pages = 1024;
    cfg_durability = Wal.Full }

let create ?(config = default_config) profile =
  let disk = Simdisk.Disk.create profile in
  let platter = Platter.create ~page_size:config.cfg_page_size in
  let trace = Obs.Trace.create ~now:(fun () -> Simdisk.Disk.now_us disk) () in
  let buffer =
    Buffer_manager.create disk platter ~capacity_pages:config.cfg_buffer_pages
  in
  let wal = Wal.create ~durability:config.cfg_durability disk in
  Buffer_manager.set_trace buffer trace;
  Wal.set_trace wal trace;
  {
    disk;
    platter;
    allocator = Region_allocator.create ();
    buffer;
    wal;
    page_size = config.cfg_page_size;
    trace;
    faults = Simdisk.Faults.create ();
    roots = Hashtbl.create 4;
    root_writes = 0;
  }

let disk t = t.disk
let buffer t = t.buffer
let wal t = t.wal
let page_size t = t.page_size
let now_us t = Simdisk.Disk.now_us t.disk

(** [set_faults t plan] arms a fault-injection plan across the store's
    write sites (streamed pages, buffer writebacks, WAL appends). *)
let set_faults t plan =
  t.faults <- plan;
  Wal.set_faults t.wal plan;
  Buffer_manager.set_faults t.buffer plan

let faults t = t.faults
let trace t = t.trace

(** [register_metrics reg t] registers the store's whole stack — disk
    counters, WAL, buffer pool, fault injection — as pull-closures over
    the live stat records (the compatibility shim: the records stay the
    hot-path representation, the registry samples them at dump time). *)
let register_metrics reg t =
  let open Obs.Metrics in
  let dsnap f = fun () -> f (Simdisk.Disk.snapshot t.disk) in
  counter reg "disk.seeks" ~help:"random positionings (reads + writes)"
    (dsnap (fun s -> s.Simdisk.Disk.seeks));
  counter reg "disk.random_writes" ~help:"random in-place page writes"
    (dsnap (fun s -> s.Simdisk.Disk.random_writes));
  counter reg "disk.seq_read_bytes" ~help:"streamed read bytes"
    (dsnap (fun s -> s.Simdisk.Disk.seq_read_bytes));
  counter reg "disk.seq_write_bytes" ~help:"streamed write bytes"
    (dsnap (fun s -> s.Simdisk.Disk.seq_write_bytes));
  counter reg "disk.random_read_bytes" ~help:"random-read bytes"
    (dsnap (fun s -> s.Simdisk.Disk.random_read_bytes));
  counter reg "disk.random_write_bytes" ~help:"random-write bytes"
    (dsnap (fun s -> s.Simdisk.Disk.random_write_bytes));
  gauge reg "disk.now_us" ~help:"simulated clock, microseconds"
    (fun () -> Simdisk.Disk.now_us t.disk);
  gauge reg "disk.stored_bytes" ~help:"bytes durably stored (space amp)"
    (fun () -> float_of_int (Platter.stored_bytes t.platter));
  counter reg "wal.size_bytes" ~help:"live WAL bytes"
    (fun () -> Wal.size_bytes t.wal);
  counter reg "wal.appended_bytes" ~help:"lifetime appended bytes (write amp)"
    (fun () -> Wal.appended_bytes t.wal);
  counter reg "wal.synced_lsn" ~help:"highest durable LSN"
    (fun () -> Wal.synced_lsn t.wal);
  counter reg "wal.truncated_to" ~help:"lowest live LSN"
    (fun () -> Wal.truncated_to t.wal);
  counter reg "wal.torn_tail_drops" ~help:"torn tail records dropped by replay"
    (fun () -> Wal.torn_tail_drops t.wal);
  counter reg "wal.dropped_unsynced" ~help:"records lost to the group-commit window"
    (fun () -> Wal.dropped_unsynced t.wal);
  counter reg "buf.hits" ~help:"buffer-pool hits" (fun () ->
      Buffer_manager.hits t.buffer);
  counter reg "buf.misses" ~help:"buffer-pool misses" (fun () ->
      Buffer_manager.misses t.buffer);
  counter reg "buf.evictions" ~help:"frames evicted" (fun () ->
      Buffer_manager.evictions t.buffer);
  counter reg "buf.pins_taken" ~help:"lifetime pin acquisitions" (fun () ->
      Buffer_manager.pins_taken t.buffer);
  gauge reg "buf.pinned_frames" ~help:"frames currently pinned" (fun () ->
      float_of_int (Buffer_manager.pinned_frames t.buffer));
  gauge reg "buf.hit_rate" ~help:"hits / (hits + misses)" (fun () ->
      Buffer_manager.hit_rate t.buffer);
  (* read through [t.faults] at sample time: [set_faults] swaps plans *)
  counter reg "faults.injected_lost_writes" ~help:"page writes silently dropped"
    (fun () -> (Simdisk.Faults.counters t.faults).Simdisk.Faults.injected_lost_writes);
  counter reg "faults.injected_bit_flips" ~help:"stored bits flipped"
    (fun () -> (Simdisk.Faults.counters t.faults).Simdisk.Faults.injected_bit_flips);
  counter reg "faults.injected_torn_writes" ~help:"writes torn at power loss"
    (fun () -> (Simdisk.Faults.counters t.faults).Simdisk.Faults.injected_torn_writes);
  counter reg "faults.crashes_fired" ~help:"scheduled crash points hit"
    (fun () -> (Simdisk.Faults.counters t.faults).Simdisk.Faults.crashes_fired);
  counter reg "store.root_writes" ~help:"metadata root force-writes"
    (fun () -> t.root_writes);
  counter reg "trace.events_emitted" ~help:"trace events written so far"
    (fun () -> Obs.Trace.events_emitted t.trace)

(** {1 Regions} *)

let allocate_region t ~pages = Region_allocator.allocate t.allocator pages

let free_region t (r : Region_allocator.region) =
  Buffer_manager.discard_region t.buffer ~start:r.start ~length:r.length;
  for id = r.start to r.start + r.length - 1 do
    Platter.drop t.platter id
  done;
  Region_allocator.free t.allocator r

(** {1 Cached page access (point reads, update-in-place trees)} *)

let with_page t id fn = Buffer_manager.with_page t.buffer id ~seq:false fn
let with_page_seq t id fn = Buffer_manager.with_page t.buffer id ~seq:true fn
let with_page_mut t id fn = Buffer_manager.with_page_mut t.buffer id ~seq:false fn

(** {1 Verified zero-copy access (the hot read path)}

    Point lookups verify a page's CRC once, when the frame is loaded from
    the platter, and then read records straight out of the pool's bytes —
    no per-access checksum, no 4 KiB copy-out (DESIGN.md "Read-path CPU
    costs"). *)

let with_page_verified t id ~seq ~verify fn =
  Buffer_manager.with_page_verified t.buffer id ~seq ~verify fn

let with_page_starts t id ~seq ~verify ~derive fn =
  Buffer_manager.with_page_starts t.buffer id ~seq ~verify ~derive fn

type pin = Buffer_manager.pin

let pin_page t id ~seq ~verify = Buffer_manager.pin t.buffer id ~seq ~verify
let pinned_bytes = Buffer_manager.pin_bytes
let unpin = Buffer_manager.unpin

(** {1 Streaming access (merges, bulk builds)}

    Merge threads "avoid reading pre-images of pages they are about to
    overwrite" and their output is force-written via the buffer manager
    (§4.4.2); we model this as direct platter I/O at sequential-bandwidth
    cost, leaving the buffer pool to the read path. The first page of each
    stream pays one positioning seek. *)

type write_stream = {
  ws_store : t;
  mutable ws_next : Page.id;
  ws_end : Page.id;
  mutable ws_first : bool;
}

let open_write_stream t (r : Region_allocator.region) =
  { ws_store = t; ws_next = r.start; ws_end = r.start + r.length; ws_first = true }

let stream_write ws page_bytes =
  if ws.ws_next >= ws.ws_end then failwith "Store.stream_write: region overflow";
  let st = ws.ws_store in
  let id = ws.ws_next in
  (* The buffer pool may hold a stale copy of a recycled page id. *)
  Buffer_manager.discard_region st.buffer ~start:id ~length:1;
  (match Simdisk.Faults.on_page_write st.faults ~page_size:st.page_size with
  | Simdisk.Faults.Pw_ok -> Platter.write st.platter id page_bytes
  | Simdisk.Faults.Pw_lost ->
      (* acked but never persisted: the platter keeps its old contents *)
      ()
  | Simdisk.Faults.Pw_flip (byte, bit) ->
      Platter.write st.platter id page_bytes;
      ignore (Platter.corrupt st.platter id ~byte ~bit)
  | Simdisk.Faults.Pw_crash ->
      raise (Simdisk.Faults.Crash_point "stream page write")
  | Simdisk.Faults.Pw_crash_torn keep ->
      (* only a prefix of the page reached the platter before power loss *)
      let torn = Bytes.copy page_bytes in
      Bytes.fill torn keep (st.page_size - keep) '\000';
      Platter.write st.platter id torn;
      raise (Simdisk.Faults.Crash_point "stream page write (torn)"));
  if ws.ws_first then begin
    Simdisk.Disk.seek_write st.disk ~bytes:st.page_size;
    ws.ws_first <- false
  end
  else Simdisk.Disk.seq_write st.disk ~bytes:st.page_size;
  ws.ws_next <- ws.ws_next + 1;
  id


type read_stream = {
  rs_store : t;
  mutable rs_next : Page.id;
  rs_end : Page.id;
  mutable rs_first : bool;
  rs_buf : Bytes.t;
}

let open_read_stream t ~start ~length =
  { rs_store = t; rs_next = start; rs_end = start + length; rs_first = true;
    rs_buf = Bytes.create t.page_size }

(** [stream_read rs] returns the next page's bytes, or [None] at region
    end. The returned buffer is reused by the next call. *)
let stream_read rs =
  if rs.rs_next >= rs.rs_end then None
  else begin
    Platter.read rs.rs_store.platter rs.rs_next rs.rs_buf;
    if rs.rs_first then begin
      Simdisk.Disk.seek_read rs.rs_store.disk ~bytes:rs.rs_store.page_size;
      rs.rs_first <- false
    end
    else Simdisk.Disk.seq_read rs.rs_store.disk ~bytes:rs.rs_store.page_size;
    rs.rs_next <- rs.rs_next + 1;
    Some rs.rs_buf
  end

(** [read_page_direct t id buf] copies a page from the platter without
    touching the buffer pool or the clock; the caller charges the disk.
    Only valid for pages written via streams (never dirty in the pool). *)
let read_page_direct t id buf = Platter.read t.platter id buf

(** {1 Metadata root (the journal's recovery-visible state)} *)

(** [commit_root t blob] force-writes the engine's metadata (live component
    regions, timestamps). Charged as one random write of one page per 4 KB
    of metadata. *)
let commit_root ?(slot = "") t blob =
  let pages = max 1 ((String.length blob + t.page_size - 1) / t.page_size) in
  for _ = 1 to pages do
    Simdisk.Disk.seek_write t.disk ~bytes:t.page_size
  done;
  Hashtbl.replace t.roots slot blob;
  t.root_writes <- t.root_writes + 1

let read_root ?(slot = "") t =
  Option.value (Hashtbl.find_opt t.roots slot) ~default:""

let root_writes t = t.root_writes

(** {1 Crash simulation} *)

(** [crash t] loses the buffer pool; platter, committed root, and the
    synced WAL prefix survive (under [Degraded] durability the WAL's
    unsynced group-commit tail is discarded). The engine's recovery path
    must rebuild everything else. *)
let crash t =
  Buffer_manager.crash t.buffer;
  Wal.crash t.wal

(** [corrupt_page t id ~byte ~bit] flips one stored bit of page [id] —
    bit-rot instrumentation for scrub/recovery tests. False when the
    page was never written. *)
let corrupt_page t id ~byte ~bit = Platter.corrupt t.platter id ~byte ~bit

(** Bytes durably stored right now (space amplification probe). *)
let stored_bytes t = Platter.stored_bytes t.platter
