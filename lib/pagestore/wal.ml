(** Logical write-ahead log.

    bLSM uses a second, logical, log to provide durability for individual
    writes (§4.4.2); replaying it after a crash rebuilds C0. The engines
    under test run with group commit and no per-commit fsync ("none of the
    systems sync their logs at commit", §5.1), so appends cost sequential
    bandwidth only. Truncation is driven by merge completion; snowshoveling
    delays it because old entries stay live in C0 longer.

    Records are stored physically framed — a 16-byte header (LSN, payload
    length, CRC32C) ahead of the payload — and replay verifies every
    frame. An invalid record at the very tail is a torn group-commit
    write: normal after power loss, so replay truncates there and carries
    on. An invalid record *followed by valid ones* cannot be a tear (the
    log is append-only); that is bit rot mid-log and replay refuses with
    {!Corrupt} rather than hand back garbage.

    Durability modes: [Full] syncs every append before acknowledging it.
    [Degraded] models the paper's group-commit window — appends
    accumulate in an unsynced tail that a crash discards (§5.1), so
    recovery lands on the last synced prefix. [`None_`] does not log at
    all; recovery restores only merged data. *)

type durability = Full | Degraded | None_

(** Mid-log corruption found during {!replay}: unlike a torn tail this
    cannot be explained by power loss, so recovery must stop. *)
exception Corrupt of { what : string; lsn : int }

type record = { lsn : int; mutable frame : string }

type t = {
  disk : Simdisk.Disk.t;
  durability : durability;
  group_commit_bytes : int;
      (* Degraded: bytes appended between group-commit syncs *)
  mutable faults : Simdisk.Faults.t;
  mutable trace : Obs.Trace.t;
  mutable records : record list; (* newest first *)
  mutable next_lsn : int;
  mutable truncated_to : int; (* lsns below this are gone *)
  mutable synced_lsn : int; (* records above this may vanish at crash *)
  mutable unsynced_bytes : int;
  mutable bytes : int;
  mutable appended_bytes : int; (* lifetime, for write amplification *)
  mutable torn_tail_drops : int; (* torn tail records truncated by replay *)
  mutable dropped_unsynced : int; (* records lost to the group-commit window *)
  floors : (string, int) Hashtbl.t;
      (* per-client truncation floors: with several trees sharing one log
         (partitioned stores), the log may only drop records below every
         client's floor *)
}

let create ?(durability = Full) ?(group_commit_bytes = 4096) disk =
  { disk; durability; group_commit_bytes;
    faults = Simdisk.Faults.create ();
    trace = Obs.Trace.create ();
    records = []; next_lsn = 1; truncated_to = 1;
    synced_lsn = 0; unsynced_bytes = 0;
    bytes = 0; appended_bytes = 0;
    torn_tail_drops = 0; dropped_unsynced = 0;
    floors = Hashtbl.create 4 }

let set_faults t f = t.faults <- f
let set_trace t tr = t.trace <- tr

(* Each record pays a fixed framing overhead:
   u64 lsn @0, u32 payload length @8, u32 CRC32C @12 (over bytes [0,12)
   then the payload), payload from @16. *)
let framing = 16

let get_u32s s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let get_u64s s pos =
  let lo = get_u32s s pos and hi = get_u32s s (pos + 4) in
  lo lor (hi lsl 32)

let frame_crc s =
  let c = Repro_util.Crc32c.update 0xFFFFFFFF s 0 12 in
  let c = Repro_util.Crc32c.update c s framing (String.length s - framing) in
  c lxor 0xFFFFFFFF

let encode_frame ~lsn payload =
  let len = String.length payload in
  let b = Bytes.create (framing + len) in
  Page.set_u64 b 0 lsn;
  Page.set_u32 b 8 len;
  Page.set_u32 b 12 0;
  Bytes.blit_string payload 0 b framing len;
  let crc = frame_crc (Bytes.unsafe_to_string b) in
  Page.set_u32 b 12 crc;
  Bytes.unsafe_to_string b

(* [`Ok (lsn, payload)] for an intact frame; [`Torn] when the frame is
   physically incomplete (a tear); [`Bad lsn] when complete but failing
   its checksum (rot). *)
let verify_frame frame =
  let n = String.length frame in
  if n < framing then `Torn
  else begin
    let lsn = get_u64s frame 0 in
    let len = get_u32s frame 8 in
    if n <> framing + len then `Torn
    else
      let stored = get_u32s frame 12 in
      let b = Bytes.of_string frame in
      Page.set_u32 b 12 0;
      if frame_crc (Bytes.unsafe_to_string b) <> stored then `Bad lsn
      else `Ok (lsn, String.sub frame framing len)
  end

let sync t =
  (match t.records with r :: _ -> t.synced_lsn <- max t.synced_lsn r.lsn | [] -> ());
  if Obs.Trace.enabled t.trace && t.unsynced_bytes > 0 then
    Obs.Trace.instant t.trace ~cat:"wal" ~name:"group_commit_sync"
      ~args:
        [ ("bytes", Obs.Trace.I t.unsynced_bytes);
          ("synced_lsn", Obs.Trace.I t.synced_lsn) ];
  t.unsynced_bytes <- 0

let store_record t ~lsn frame =
  let cost = String.length frame in
  Simdisk.Disk.seq_write t.disk ~bytes:cost;
  t.bytes <- t.bytes + cost;
  t.appended_bytes <- t.appended_bytes + cost;
  t.records <- { lsn; frame } :: t.records

(** [append t payload] appends one logical record, returning its LSN — the
    acknowledgement. In [None_] durability mode the record is dropped (but
    still assigned an LSN so callers can reason uniformly). [Full] syncs
    before acking; [Degraded] syncs once per group-commit window, so the
    unsynced tail is lost if the machine dies first. A scheduled fault can
    tear or drop the in-flight record and kill the machine before the
    ack ({!Simdisk.Faults.Crash_point} propagates to the caller). *)
let append t payload =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  (match t.durability with
  | None_ -> ()
  | Full | Degraded ->
      let frame = encode_frame ~lsn payload in
      (match Simdisk.Faults.on_wal_append t.faults ~frame_bytes:(String.length frame) with
      | Simdisk.Faults.Wa_ok -> store_record t ~lsn frame
      | Simdisk.Faults.Wa_crash ->
          raise (Simdisk.Faults.Crash_point "wal append")
      | Simdisk.Faults.Wa_crash_torn keep ->
          store_record t ~lsn (String.sub frame 0 (min keep (String.length frame)));
          raise (Simdisk.Faults.Crash_point "wal append (torn)"));
      (match t.durability with
      | Full -> t.synced_lsn <- lsn
      | Degraded ->
          t.unsynced_bytes <- t.unsynced_bytes + String.length frame;
          if t.unsynced_bytes >= t.group_commit_bytes then sync t
      | None_ -> ()));
  lsn

(** [register_client t ~client] declares a log client with a floor at
    the current truncation point: until the client proposes a higher
    floor, nothing it might still need can be dropped. Trees register at
    creation, so a tree that has never merged still holds the log. *)
let register_client t ~client =
  if not (Hashtbl.mem t.floors client) then
    Hashtbl.replace t.floors client t.truncated_to

(** [propose_truncate t ~client ~upto_lsn] records that [client] no
    longer needs records below [upto_lsn], then truncates to the minimum
    over all clients' floors — so one tree's merge commit never drops
    records a co-hosted tree still needs for recovery. *)
let rec propose_truncate t ~client ~upto_lsn =
  let current = Option.value (Hashtbl.find_opt t.floors client) ~default:1 in
  if upto_lsn > current then begin
    Hashtbl.replace t.floors client upto_lsn;
    (* Order-insensitive fold (min is commutative): the result cannot
       observe the hash order. *)
    let min_floor =
      (Hashtbl.fold [@lint.allow "D002"]) (fun _ v acc -> min v acc) t.floors
        max_int
    in
    if min_floor > t.truncated_to && min_floor < max_int then
      truncate t ~upto_lsn:min_floor
  end

(** [truncate t ~upto_lsn] discards records with [lsn < upto_lsn]
    unconditionally (single-client logs; multi-tree stores must use
    {!propose_truncate}). *)
and truncate t ~upto_lsn =
  if upto_lsn > t.truncated_to then begin
    let keep, drop = List.partition (fun r -> r.lsn >= upto_lsn) t.records in
    let dropped = List.fold_left (fun a r -> a + String.length r.frame) 0 drop in
    t.records <- keep;
    t.bytes <- t.bytes - dropped;
    t.truncated_to <- upto_lsn;
    if Obs.Trace.enabled t.trace then
      Obs.Trace.instant t.trace ~cat:"wal" ~name:"truncate"
        ~args:
          [ ("upto_lsn", Obs.Trace.I upto_lsn);
            ("dropped_bytes", Obs.Trace.I dropped) ]
  end

(* Drop one specific record (the torn tail found by replay). *)
let drop_record t victim =
  t.records <- List.filter (fun r -> r != victim) t.records;
  t.bytes <- t.bytes - String.length victim.frame

(** [replay t ~from_lsn f] feeds surviving records (oldest first, lsn >=
    [from_lsn]) to [f], verifying each frame's checksum. Replay is
    "extremely expensive" (§4.4.2): we charge a sequential read of the
    replayed bytes. An invalid record at the tail is a torn group-commit
    write: it is truncated away (counted in {!torn_tail_drops}) and
    replay succeeds with the acked prefix. An invalid record anywhere
    else raises {!Corrupt}. *)
let replay t ~from_lsn f =
  let ordered = List.rev t.records in
  let rec go = function
    | [] -> ()
    | r :: rest -> (
        match verify_frame r.frame with
        | `Ok (lsn, payload) ->
            Simdisk.Disk.seq_read t.disk ~bytes:(String.length r.frame);
            if lsn >= from_lsn then f lsn payload;
            go rest
        | (`Torn | `Bad _) when rest = [] ->
            (* tail tear: the in-flight record at power loss; the write
               was never acked, so dropping it restores the acked prefix *)
            t.torn_tail_drops <- t.torn_tail_drops + 1;
            drop_record t r
        | `Torn -> raise (Corrupt { what = "torn record mid-log"; lsn = r.lsn })
        | `Bad lsn -> raise (Corrupt { what = "wal record checksum"; lsn }))
  in
  go ordered

(** [verify t] re-checks every stored frame without replaying: the WAL
    half of the scrubber. Returns (records checked, errors as
    [(what, lsn)]); a torn tail is reported but not counted fatal. *)
let verify t =
  let ordered = List.rev t.records in
  let n = List.length ordered in
  let errors = ref [] in
  List.iteri
    (fun i r ->
      match verify_frame r.frame with
      | `Ok _ -> ()
      | `Torn when i = n - 1 -> errors := ("wal torn tail", r.lsn) :: !errors
      | `Torn -> errors := ("wal torn record mid-log", r.lsn) :: !errors
      | `Bad lsn -> errors := ("wal record checksum", lsn) :: !errors)
    ordered;
  (n, List.rev !errors)

(** [crash t] applies power-loss semantics to the log itself: under
    [Degraded] durability the unsynced group-commit tail is discarded
    (§5.1 — "none of the systems sync their logs at commit"); [Full]
    synced every append, so nothing is lost. *)
let crash t =
  match t.durability with
  | Full | None_ -> ()
  | Degraded ->
      let keep, drop =
        List.partition (fun r -> r.lsn <= t.synced_lsn) t.records
      in
      let dropped = List.fold_left (fun a r -> a + String.length r.frame) 0 drop in
      t.records <- keep;
      t.bytes <- t.bytes - dropped;
      t.dropped_unsynced <- t.dropped_unsynced + List.length drop;
      t.unsynced_bytes <- 0

(** [flip_bit t ~lsn ~byte ~bit] rots one stored bit of record [lsn]
    (test/scrub instrumentation). Returns false when the record is gone. *)
let flip_bit t ~lsn ~byte ~bit =
  match List.find_opt (fun r -> r.lsn = lsn) t.records with
  | Some r when byte < String.length r.frame ->
      let b = Bytes.of_string r.frame in
      Bytes.set b byte
        (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit land 7))));
      r.frame <- Bytes.unsafe_to_string b;
      true
  | _ -> false

let next_lsn t = t.next_lsn
let truncated_to t = t.truncated_to
let synced_lsn t = t.synced_lsn
let size_bytes t = t.bytes
let appended_bytes t = t.appended_bytes
let durability t = t.durability
let torn_tail_drops t = t.torn_tail_drops
let dropped_unsynced t = t.dropped_unsynced
