(** The simulated disk platter: durable page payloads.

    Pages written here survive a simulated crash; the buffer manager's
    dirty frames do not. Absent pages read as zeroes, like a freshly
    trimmed device. *)

type t = {
  page_size : int;
  pages : (Page.id, Bytes.t) Hashtbl.t;
}

let create ~page_size = { page_size; pages = Hashtbl.create 4096 }

let page_size t = t.page_size

(** [read t id dst] copies page [id] into [dst] (zero-fills if absent). *)
let read t id dst =
  match Hashtbl.find_opt t.pages id with
  | Some src -> Bytes.blit src 0 dst 0 t.page_size
  | None -> Bytes.fill dst 0 t.page_size '\000'

(** [write t id src] durably stores a copy of [src] as page [id]. *)
let write t id src =
  match Hashtbl.find_opt t.pages id with
  | Some existing -> Bytes.blit src 0 existing 0 t.page_size
  | None -> Hashtbl.replace t.pages id (Bytes.sub src 0 t.page_size)

(** [drop t id] discards a page (region freed); space is reclaimed. *)
let drop t id = Hashtbl.remove t.pages id

(** [corrupt t id ~byte ~bit] flips one stored bit — simulated bit rot.
    Returns false when the page was never written (nothing to rot). *)
let corrupt t id ~byte ~bit =
  match Hashtbl.find_opt t.pages id with
  | Some b when byte >= 0 && byte < t.page_size ->
      Bytes.set b byte
        (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit land 7))));
      true
  | _ -> false

let stored_pages t = Hashtbl.length t.pages

let stored_bytes t = stored_pages t * t.page_size
