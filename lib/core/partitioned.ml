(** Range-partitioned bLSM: the paper's "missing piece" (§4.2.2, §6).

    The paper ships an unpartitioned tree and notes that partitioning is
    "the best way to allow LSM-Trees to leverage write skew": breaking the
    tree into smaller trees concentrates merge activity on the key ranges
    actually being written, so a workload whose distribution shifts away
    from the existing data no longer forces merges to rewrite disjoint
    cold ranges — the stall mode of §4.2.2 and our adversarial ablation.

    This module implements that extension as a layer over {!Tree}: the key
    space is split at fixed boundary keys into P sub-trees that share one
    {!Pagestore.Store} (one disk, one buffer pool, one WAL, one allocator)
    and divide the C0 RAM budget. Each partition runs its own spring-and-
    gear scheduler, so backpressure is proportional to the merge debt of
    the *written* range only. Scans chain across partitions.

    Boundaries are fixed at creation (PE-file-style dynamic splitting is
    orthogonal; the scheduler hooks here are what §4.3 calls for). For the
    hashed YCSB key space, {!uniform_boundaries} gives balanced ranges. *)

type t = {
  boundaries : string array;  (** sorted; partition i covers
      [boundary.(i-1), boundary.(i)); partition 0 starts at "" *)
  partitions : Tree.t array;
  config : Config.t;
  store : Pagestore.Store.t;
}

(** [uniform_boundaries ~partitions ~prefix ()] splits a decimal-digit key
    space (e.g. YCSB's ["user<digits>"]) into equal ranges. *)
let uniform_boundaries ?(prefix = "user") ~partitions () =
  if partitions < 1 then invalid_arg "Partitioned.uniform_boundaries";
  List.init (partitions - 1) (fun i ->
      (* boundary at fraction (i+1)/partitions of the 2-digit prefix space *)
      let frac = float_of_int (i + 1) /. float_of_int partitions in
      Printf.sprintf "%s%02d" prefix (int_of_float (frac *. 100.0) |> min 99))
  |> List.sort_uniq String.compare

(** [create ?config ?c0_share ~boundaries store] builds one sub-tree per
    range. [c0_share] is each partition's slice of the C0 write pool:
    [`Static] divides it evenly (worst-case-safe: aggregate RAM is exactly
    the budget); [`Shared] gives every partition the full budget, modelling
    the shared write pool of partitioned exponential files — correct
    whenever write skew keeps only a few ranges hot at a time, which is
    precisely the workload partitioning exists for. *)
let create ?(config = Config.default) ?(c0_share = `Static) ~boundaries store =
  let boundaries = List.sort_uniq String.compare boundaries |> Array.of_list in
  let n = Array.length boundaries + 1 in
  let per_partition_c0 =
    match c0_share with
    | `Static -> max (64 * 1024) (config.Config.c0_bytes / n)
    | `Shared -> config.Config.c0_bytes
  in
  let per_partition_config = { config with Config.c0_bytes = per_partition_c0 } in
  {
    boundaries;
    partitions =
      Array.init n (fun i ->
          Tree.create ~config:per_partition_config
            ~root_slot:(Printf.sprintf "partition-%03d" i)
            store);
    config;
    store;
  }

let partition_count t = Array.length t.partitions

(* Rightmost partition whose lower bound <= key. *)
let partition_of t key =
  let n = Array.length t.boundaries in
  let lo = ref 0 and hi = ref n in
  (* find number of boundaries <= key *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare t.boundaries.(mid) key <= 0 then lo := mid + 1
    else hi := mid
  done;
  t.partitions.(!lo)

let partition_index t key =
  let n = Array.length t.boundaries in
  let rec go i = if i < n && String.compare t.boundaries.(i) key <= 0 then go (i + 1) else i in
  go 0

(** {1 Point operations: routed to one partition} *)

let put t key value = Tree.put (partition_of t key) key value
let get t key = Tree.get (partition_of t key) key
let delete t key = Tree.delete (partition_of t key) key
let apply_delta t key d = Tree.apply_delta (partition_of t key) key d

let read_modify_write t key f = Tree.read_modify_write (partition_of t key) key f

let insert_if_absent t key value =
  Tree.insert_if_absent (partition_of t key) key value

(** [write_batch t ops] applies [ops] atomically even when the batch
    straddles partition boundaries. All partitions share one WAL, so one
    log record can cover the whole batch: we pace every involved
    partition, append a single combined record, then fold each
    partition's slice into its C0 under that record's LSN. Recovery
    replays the shared record into every partition through its
    [should_replay] range filter, so after a crash either the whole
    batch is recovered or none of it. *)
let write_batch t ops =
  if ops <> [] then begin
    let n = Array.length t.partitions in
    let slices = Array.make n [] in
    List.iter
      (fun (k, e) ->
        let i = partition_index t k in
        slices.(i) <- (k, e) :: slices.(i))
      ops;
    Array.iteri
      (fun i slice ->
        if slice <> [] then begin
          let bytes =
            List.fold_left
              (fun a (k, e) -> a + String.length k + Kv.Entry.payload_bytes e)
              0 slice
          in
          Tree.before_write t.partitions.(i) ~write_bytes:(max 64 bytes)
        end)
      slices;
    let lsn =
      Pagestore.Wal.append (Pagestore.Store.wal t.store) (Tree.encode_ops ops)
    in
    Array.iteri
      (fun i slice ->
        Tree.absorb_batch t.partitions.(i) ~lsn (List.rev slice))
      slices
  end

(** {1 Scans: chained across partitions} *)

let scan t start n =
  let first = partition_index t start in
  let rec go i start acc n =
    if n <= 0 || i >= Array.length t.partitions then List.rev acc
    else begin
      let rows = Tree.scan t.partitions.(i) start n in
      let acc = List.rev_append rows acc in
      let n = n - List.length rows in
      let next_start = if i < Array.length t.boundaries then t.boundaries.(i) else "" in
      go (i + 1) next_start acc n
    end
  in
  go first start [] n

(** A streaming cursor chaining the partitions' cursors in key order. *)
type cursor = {
  pt : t;
  mutable part : int;
  mutable inner : Tree.cursor;
}

let cursor ?(from = "") t =
  let part = partition_index t from in
  { pt = t; part; inner = Tree.cursor ~from t.partitions.(part) }

let rec cursor_next c =
  match Tree.cursor_next c.inner with
  | Some row -> Some row
  | None ->
      if c.part + 1 >= Array.length c.pt.partitions then None
      else begin
        let from = c.pt.boundaries.(c.part) in
        c.part <- c.part + 1;
        c.inner <- Tree.cursor ~from c.pt.partitions.(c.part);
        cursor_next c
      end

(** {1 Maintenance / recovery / stats} *)

let maintenance t = Array.iter Tree.maintenance t.partitions
let flush t = Array.iter Tree.flush t.partitions

(* Partition i owns [lower(i), upper(i)). *)
let range_of t i =
  let lower = if i = 0 then None else Some t.boundaries.(i - 1) in
  let upper =
    if i < Array.length t.boundaries then Some t.boundaries.(i) else None
  in
  fun key ->
    (match lower with Some l -> String.compare key l >= 0 | None -> true)
    && match upper with Some u -> String.compare key u < 0 | None -> true

(** [crash_and_recover t] power-fails the shared store once and recovers
    every partition: each reads back its own root slot and replays only
    its key range from the shared log (whose truncation respected every
    partition's floor). *)
let crash_and_recover t =
  {
    t with
    partitions =
      Array.mapi
        (fun i tree -> Tree.crash_and_recover ~should_replay:(range_of t i) tree)
        t.partitions;
  }

(** Aggregate level view, tagged with partition indexes. *)
let levels t =
  Array.to_list t.partitions
  |> List.mapi (fun i p -> List.map (fun l -> (i, l)) (Tree.levels p))
  |> List.concat

let total_hard_stalls t =
  Array.fold_left
    (fun acc p -> acc + (Tree.stats p).Tree.hard_stalls)
    0 t.partitions

let total_merges t =
  Array.fold_left
    (fun acc p ->
      acc + (Tree.stats p).Tree.merge1_completions
      + (Tree.stats p).Tree.merge2_completions)
    0 t.partitions

let disk t = Pagestore.Store.disk t.store

(** Per-partition on-disk bytes: shows merge activity concentrating on
    written ranges (Figure 3's motivation). *)
let partition_bytes t =
  Array.map Tree.disk_data_bytes t.partitions

(** Live per-partition op counters, partition order. *)
let partition_stats t = Array.map Tree.stats t.partitions

(** [scrub t] verifies every partition's components plus the shared WAL
    (once per partition — the log is shared, so each pass re-checks it).
    Clean iff every per-partition report is clean. *)
let scrub t = Array.to_list t.partitions |> List.map Tree.scrub

(** [metrics t] aggregates the partitions' op counters under
    [partitioned.*] and registers the shared store stack. Built fresh on
    each call — partitions are replaced wholesale by
    {!crash_and_recover}, so closures must capture [t]'s current array,
    and the caller is expected to rebuild after recovery. *)
let metrics t =
  let reg = Obs.Metrics.create () in
  let open Obs.Metrics in
  let sum f = Array.fold_left (fun a p -> a + f (Tree.stats p)) 0 t.partitions in
  counter reg "partitioned.partitions" ~help:"partition count" (fun () ->
      Array.length t.partitions);
  counter reg "partitioned.puts" ~help:"blind writes, all partitions"
    (fun () -> sum (fun s -> s.Tree.puts));
  counter reg "partitioned.gets" ~help:"point lookups, all partitions"
    (fun () -> sum (fun s -> s.Tree.gets));
  counter reg "partitioned.deletes" ~help:"tombstone writes, all partitions"
    (fun () -> sum (fun s -> s.Tree.deletes));
  counter reg "partitioned.deltas" ~help:"delta writes, all partitions"
    (fun () -> sum (fun s -> s.Tree.deltas));
  counter reg "partitioned.scans" ~help:"range scans, all partitions"
    (fun () -> sum (fun s -> s.Tree.scans));
  counter reg "partitioned.rmws" ~help:"read-modify-writes, all partitions"
    (fun () -> sum (fun s -> s.Tree.rmws));
  counter reg "partitioned.merge1_completions"
    ~help:"C0:C1 runs committed, all partitions" (fun () ->
      sum (fun s -> s.Tree.merge1_completions));
  counter reg "partitioned.merge2_completions"
    ~help:"C1':C2 merges committed, all partitions" (fun () ->
      sum (fun s -> s.Tree.merge2_completions));
  counter reg "partitioned.hard_stalls"
    ~help:"writes that hit a C0 hard limit, all partitions" (fun () ->
      sum (fun s -> s.Tree.hard_stalls));
  counter reg "partitioned.corruptions_detected"
    ~help:"checksum mismatches seen, all partitions" (fun () ->
      sum (fun s -> s.Tree.corruptions_detected));
  Pagestore.Store.register_metrics reg t.store;
  reg

let engine ?(name = "bLSM(partitioned)") t =
  {
    Kv.Kv_intf.name;
    disk = disk t;
    get = (fun k -> get t k);
    put = (fun k v -> put t k v);
    delete = (fun k -> delete t k);
    apply_delta = (fun k d -> apply_delta t k d);
    read_modify_write = (fun k f -> read_modify_write t k f);
    insert_if_absent = (fun k v -> insert_if_absent t k v);
    scan = (fun start n -> scan t start n);
    maintenance = (fun () -> maintenance t);
  }
