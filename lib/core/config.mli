(** bLSM tree configuration.

    Defaults follow the paper: a three-level tree, Bloom filters at 10
    bits/key on both on-disk components (§3.1), snowshoveling (§4.2),
    spring-and-gear scheduling (§4.3), early-terminating reads (§3.1.1).
    Every algorithmic choice evaluated in §3–§4 is a flag so the ablation
    benchmarks can isolate it. *)

(** Which level scheduler paces merge work into the write path (§4). *)
type scheduler_kind =
  | Naive  (** no pacing: block when C0 fills, merge to completion *)
  | Gear  (** §4.1: couple C0 fill to merge progress; C0/C0' partition *)
  | Spring  (** §4.3: watermark band on C0, proportional backpressure *)

(** Tree size ratio R between adjacent levels. *)
type size_ratio =
  | Fixed of float
  | Adaptive  (** R = sqrt(|data| / |C0|), the 3-level optimum (§2.3.1) *)

(** Replication-supervisor tuning (all simulated-µs / record counts):
    request deadlines, the capped-exponential retry schedule with its
    seeded jitter band, transfer sizing, and the bounded-staleness read
    policy a lagging follower degrades under. *)
type repl = {
  req_timeout_us : int;  (** per-request deadline before a retry *)
  backoff_base_us : int;  (** first retry delay *)
  backoff_cap_us : int;  (** exponential backoff ceiling *)
  backoff_jitter : float;
      (** each delay is [nominal * (1 + u * jitter)], [u] seeded
          uniform in [0,1) *)
  max_attempts : int;  (** give up ([`Unreachable]) after this many *)
  batch_records : int;  (** WAL records per catch-up request *)
  chunk_rows : int;  (** rows per snapshot chunk during resync *)
  max_lag_records : int;  (** shed reads past this known lag *)
  staleness_lease_us : int;
      (** shed reads when the primary has been silent this long *)
}

type t = {
  c0_bytes : int;  (** RAM budget for C0 (the paper's 8 GB, scaled) *)
  size_ratio : size_ratio;
  bloom_bits_per_key : int;  (** 0 disables Bloom filters (ablation) *)
  scheduler : scheduler_kind;
  snowshovel : bool;  (** replacement-selection C0 draining (§4.2) *)
  early_termination : bool;
      (** stop reads at the first base record (§3.1.1) *)
  low_watermark : float;  (** spring: pause merges below this C0 fill *)
  high_watermark : float;  (** spring: full backpressure at this fill *)
  extent_pages : int;  (** contiguous allocation unit for components *)
  max_quota_per_write : int;
      (** cap on synchronous merge bytes charged to one write: bounds
          per-write latency under the gear/spring schedulers *)
  run_cap_factor : float;
      (** end a C0:C1 run early once output exceeds this multiple of the
          C1 target (prevents unbounded runs under sorted inserts) *)
  persist_bloom : bool;
      (** write Bloom filters to disk at merge commit so recovery reads
          1.25 B/key instead of rescanning; the paper chose rebuild-on-
          recovery (§4.4.3), so this is off by default *)
  bloom_kind : Bloom.kind;
      (** filter memory layout: [Standard] whole-array probes or
          [Blocked] one-cache-line-per-key double-probe blocks *)
  page_format : Sstable.Sst_format.version;
      (** SSTable layout for newly built components ([V1]: the seed's
          bytes; [V2]: prefix-compressed keys + zone maps); existing
          components are read by their own footer's version *)
  resolver : Kv.Entry.resolver;  (** how deltas apply to base records *)
  seed : int;  (** PRNG seed (skip-list levels); fixes runs *)
  repl : repl;  (** replication supervisor policy *)
}

(** The paper's configuration at 8 MiB C0. *)
val default : t

(** Production-scale replication policy (the one inside {!default}). *)
val default_repl : repl

(** [bloom_enabled t] is [t.bloom_bits_per_key > 0]. *)
val bloom_enabled : t -> bool

(** Effective C0 capacity: the gear scheduler partitions the write pool
    into C0/C0', halving it (§4.2.1); snowshoveling removes the
    partition. *)
val c0_capacity : t -> int

val scheduler_name : scheduler_kind -> string
