(** Primary-side replication service: serves WAL batches and snapshot
    chunks over the simnet, and enforces epoch fencing — requests below
    the server's epoch are answered [Fenced] and touch nothing, so a
    deposed primary's late traffic can never double-apply. Requests
    carrying a higher epoch teach the server the new epoch.

    [Snapshot_begin] buffers the user-visible state through a cursor
    with the tree's write fence raised for the copy (enforcing the
    "quiescent during resync" precondition: a concurrent write raises
    {!Tree.Write_fenced} instead of tearing the snapshot). *)

type t

type counters = {
  mutable fenced_rejects : int;  (** stale-epoch requests refused *)
  mutable epoch_adoptions : int;  (** higher epochs learned from peers *)
  mutable batches_served : int;
  mutable records_served : int;
  mutable snapshots_started : int;
  mutable chunks_served : int;
}

val create : ?epoch:int -> Tree.t -> t
val epoch : t -> int
val counters : t -> counters

(** Swap in a recovered (or newly promoted) tree instance; any open
    snapshot session is discarded. *)
val set_tree : t -> Tree.t -> unit

(** Raise the server's epoch (monotonic; lower values are ignored). *)
val set_epoch : t -> int -> unit

(** [handle t ~src body] decodes, fences, serves. [None] for malformed
    frames (dropped); otherwise a reply stamped with the server epoch. *)
val handle : t -> src:string -> string -> string option
[@@lint.allow "U001"] (* direct dispatch for protocol tests, bypassing the simnet *)

(** [attach t ep] installs {!handle} as the endpoint's handler. *)
val attach : t -> Simnet.endpoint -> unit

(** Register the [repl.server.*] counter family. *)
val register_metrics : Obs.Metrics.t -> t -> unit
