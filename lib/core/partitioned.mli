(** Range-partitioned bLSM: the paper's "missing piece" (§4.2.2, §6).

    Splits the key space at fixed boundary keys into sub-trees that share
    one store (one disk, buffer pool, WAL, allocator). Each partition runs
    its own merge scheduler, so merge activity — and therefore write
    backpressure — is proportional to the merge debt of the range actually
    being written. This fixes the adversarial distribution-shift stall
    mode the paper describes as needing partitioning. *)

type t

(** [uniform_boundaries ?prefix ~partitions ()] splits a decimal-digit
    key space (e.g. YCSB's ["user<digits>"]) into up to 100 balanced
    ranges. *)
val uniform_boundaries :
  ?prefix:string -> partitions:int -> unit -> string list
[@@lint.allow "U001"] (* partitioning setup helper for embedders *)

(** [create ?config ?c0_share ~boundaries store] builds one sub-tree per
    range; partition [i] covers keys in [[b.(i-1), b.(i))], with the
    first starting at [""]. [c0_share] sets each partition's slice of the
    C0 write pool: [`Static] (default) divides it evenly — aggregate RAM
    is exactly the budget; [`Shared] gives every partition the full
    budget, modelling the shared write pool of partitioned exponential
    files — appropriate when write skew keeps only a few ranges hot. *)
val create :
  ?config:Config.t ->
  ?c0_share:[ `Static | `Shared ] ->
  boundaries:string list ->
  Pagestore.Store.t ->
  t

val partition_count : t -> int

(** [partition_index t key] is the index of the partition holding [key]. *)
val partition_index : t -> string -> int

(** {1 Point operations — routed to one partition} *)

val put : t -> string -> string -> unit
val get : t -> string -> string option
val delete : t -> string -> unit
val apply_delta : t -> string -> string -> unit
val read_modify_write : t -> string -> (string option -> string) -> unit
val insert_if_absent : t -> string -> string -> bool

(** [write_batch t ops] applies [ops] atomically even across partition
    boundaries: the shared WAL takes one record for the whole batch and
    each partition folds in its slice under that record's LSN, so a
    crash recovers all of the batch or none of it. *)
val write_batch : t -> (string * Kv.Entry.t) list -> unit

(** {1 Scans — chained across partitions in key order} *)

val scan : t -> string -> int -> (string * string) list

(** Streaming cursor chaining partitions in key order. *)
type cursor

val cursor : ?from:string -> t -> cursor
val cursor_next : cursor -> (string * string) option

(** {1 Maintenance and introspection} *)

val maintenance : t -> unit
val flush : t -> unit

(** Power-fail the shared store and recover every partition (per-slot
    roots, range-scoped replay of the shared log). *)
val crash_and_recover : t -> t
val disk : t -> Simdisk.Disk.t

(** Aggregate level view, tagged with partition indexes. *)
val levels : t -> (int * Tree.level_info) list
[@@lint.allow "U001"] (* observatory parity with [Tree.levels] *)

val total_hard_stalls : t -> int
val total_merges : t -> int

(** Per-partition on-disk bytes: shows merge activity concentrating on
    written ranges (Figure 3's motivation). *)
val partition_bytes : t -> int array

(** Live per-partition op counters, partition order. *)
val partition_stats : t -> Tree.stats array

(** [scrub t]: per-partition checksum sweep (components + shared WAL,
    re-verified once per partition). Clean iff every report is clean. *)
val scrub : t -> Tree.scrub_report list

(** [metrics t]: aggregate [partitioned.*] counters over all partitions
    plus the shared store stack. Built fresh per call; rebuild after
    {!crash_and_recover} (partitions are replaced wholesale). *)
val metrics : t -> Obs.Metrics.t

val engine : ?name:string -> t -> Kv.Kv_intf.engine
