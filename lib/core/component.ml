(** An on-disk tree component: an SSTable plus its Bloom filter.

    One filter guards each on-disk component (C1, C1', C2); it is created
    by the merge that creates the component and dies with it (§4.4.3).
    Filters are not persisted: after a crash they are rebuilt by scanning
    the component once (sequential I/O). *)

type t = {
  sst : Sstable.Reader.t;
  bloom : Bloom.t option;
  mutable bloom_negative : int;  (** lookups the filter answered for free *)
  mutable bloom_false_positive : int;
}

let of_sst ?bloom sst = { sst; bloom; bloom_negative = 0; bloom_false_positive = 0 }

(** [build_bloom ~bits_per_key sst] recovers a component's filter: reads
    the persisted copy when the component carries one (1.25 B/key of
    sequential I/O), otherwise rebuilds by scanning the whole component —
    the §4.4.3 trade-off, selectable via {!Config.t.persist_bloom}. *)
let build_bloom ?(kind = Bloom.Standard) ~bits_per_key sst =
  if bits_per_key = 0 then None
  else
    match Sstable.Reader.load_bloom_blob sst with
    | Some blob -> Some (Bloom.of_string blob)
    | None ->
    begin
    let bloom =
      Bloom.create ~kind ~bits_per_item:bits_per_key
        ~expected_items:(Sstable.Reader.record_count sst)
        ()
    in
    let it = Sstable.Reader.iterator sst in
    let rec go () =
      match Sstable.Reader.iter_next it with
      | None -> ()
      | Some (k, _) ->
          Bloom.add bloom k;
          go ()
    in
    go ();
    Some bloom
  end

let data_bytes t = Sstable.Reader.data_bytes t.sst
let record_count t = Sstable.Reader.record_count t.sst
let timestamp t = Sstable.Reader.timestamp t.sst
let is_empty t = Sstable.Reader.is_empty t.sst

(** [get t key] point lookup; consults the Bloom filter first so lookups of
    absent keys usually cost zero I/O. *)
let get t key =
  match t.bloom with
  | Some bloom when not (Bloom.mem bloom key) ->
      t.bloom_negative <- t.bloom_negative + 1;
      None
  | _ ->
      let r = Sstable.Reader.get t.sst key in
      (match (r, t.bloom) with
      | None, Some _ -> t.bloom_false_positive <- t.bloom_false_positive + 1
      | _ -> ());
      r

(** [maybe_contains t key] is the filter-only check used by zero-seek
    "insert if not exists" (§3.1.2). *)
let maybe_contains t key =
  match t.bloom with
  | Some bloom ->
      let hit = Bloom.mem bloom key in
      if not hit then t.bloom_negative <- t.bloom_negative + 1;
      hit
  | None -> not (is_empty t)

let iterator ?from t = Sstable.Reader.iterator ?from t.sst

let cached_iterator ?from t = Sstable.Reader.cached_iterator ?from t.sst

let free t = Sstable.Reader.free t.sst

let meta_blob t = Sstable.Reader.meta_blob t.sst
