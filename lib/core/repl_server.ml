(** Primary-side replication service.

    Owns the primary's half of the protocol: serves WAL batches from the
    tree's log and snapshot chunks from a buffered cursor copy, and
    enforces epoch fencing — any request carrying an epoch below the
    server's is answered [Fenced] and touches nothing, so a deposed
    primary's late traffic can never double-apply (split-brain guard).
    Requests carrying a higher epoch teach the server the new epoch
    (the failed-over follower announcing its promotion).

    Snapshot sessions buffer the full user-visible state at
    [Snapshot_begin] with the tree's write fence raised for the duration
    of the cursor copy, enforcing the "primary must be quiescent during
    resync" precondition: a concurrent write raises
    {!Tree.Write_fenced} instead of silently tearing the snapshot. *)

type session = {
  s_id : int;
  s_lsn : int;  (** log position the snapshot is consistent with *)
  s_rows : (string * string) array;
}

type counters = {
  mutable fenced_rejects : int;  (** stale-epoch requests refused *)
  mutable epoch_adoptions : int;  (** higher epochs learned from peers *)
  mutable batches_served : int;
  mutable records_served : int;
  mutable snapshots_started : int;
  mutable chunks_served : int;
}

type t = {
  mutable tree : Tree.t;
  mutable epoch : int;
  mutable session : session option;
  mutable next_session : int;
  c : counters;
}

let create ?(epoch = 0) tree =
  {
    tree;
    epoch;
    session = None;
    next_session = 1;
    c =
      {
        fenced_rejects = 0;
        epoch_adoptions = 0;
        batches_served = 0;
        records_served = 0;
        snapshots_started = 0;
        chunks_served = 0;
      };
  }

let epoch t = t.epoch
let counters t = t.c

(* A recovered (or promoted-elsewhere) tree instance replaces the old
   one; any in-flight snapshot session died with the old process. *)
let set_tree t tree =
  t.tree <- tree;
  t.session <- None

let set_epoch t epoch =
  t.epoch <- max t.epoch epoch;
  t.session <- None

(* ------------------------------------------------------------------ *)
(* Request handling *)

let wal t = Pagestore.Store.wal (Tree.store t.tree)

let serve_batch t ~from_lsn ~max_records =
  let w = wal t in
  let truncated_to = Pagestore.Wal.truncated_to w in
  if truncated_to > from_lsn then Repl_msg.Truncated { truncated_to }
  else begin
    let acc = ref [] and n = ref 0 in
    Pagestore.Wal.replay w ~from_lsn (fun lsn payload ->
        if !n < max_records then begin
          acc := (lsn, payload) :: !acc;
          incr n
        end);
    t.c.batches_served <- t.c.batches_served + 1;
    t.c.records_served <- t.c.records_served + !n;
    Repl_msg.Batch
      { records = List.rev !acc; next_lsn = Pagestore.Wal.next_lsn w }
  end

(* Cursor-copy the user-visible state ("\001" onward: the reserved
   "\000"-prefixed bookkeeping keys never leave the node) under the
   write fence. *)
let begin_snapshot t =
  let snapshot_lsn = Pagestore.Wal.next_lsn (wal t) - 1 in
  Tree.set_write_fence t.tree true;
  let rows =
    Fun.protect
      ~finally:(fun () -> Tree.set_write_fence t.tree false)
      (fun () ->
        let cur = Tree.cursor ~from:"\001" t.tree in
        let rec collect acc =
          match Tree.cursor_next cur with
          | None -> List.rev acc
          | Some kv -> collect (kv :: acc)
        in
        collect [])
  in
  let s =
    { s_id = t.next_session; s_lsn = snapshot_lsn; s_rows = Array.of_list rows }
  in
  t.next_session <- t.next_session + 1;
  t.session <- Some s;
  t.c.snapshots_started <- t.c.snapshots_started + 1;
  Repl_msg.Snapshot_meta
    {
      session = s.s_id;
      snapshot_lsn = s.s_lsn;
      total_rows = Array.length s.s_rows;
    }

let serve_chunk t ~session ~from_row ~max_rows =
  match t.session with
  | Some s when s.s_id = session && from_row >= 0 ->
      let total = Array.length s.s_rows in
      let n = min (max 0 max_rows) (max 0 (total - from_row)) in
      let rows = Array.to_list (Array.sub s.s_rows from_row n) in
      t.c.chunks_served <- t.c.chunks_served + 1;
      Repl_msg.Chunk { session; rows; last = from_row + n >= total }
  | _ -> Repl_msg.Snapshot_gone

(** [handle t ~src body] — the simnet endpoint handler. Malformed
    frames are dropped ([None]); everything else gets a reply stamped
    with the server's current epoch. *)
let handle t ~src:_ body =
  match Repl_msg.decode_req body with
  | None -> None
  | Some (req_epoch, req) ->
      let resp =
        if req_epoch < t.epoch then begin
          t.c.fenced_rejects <- t.c.fenced_rejects + 1;
          Repl_msg.Fenced { epoch = t.epoch }
        end
        else begin
          if req_epoch > t.epoch then begin
            t.epoch <- req_epoch;
            t.c.epoch_adoptions <- t.c.epoch_adoptions + 1
          end;
          match req with
          | Repl_msg.Probe ->
              let w = wal t in
              Repl_msg.Status
                {
                  next_lsn = Pagestore.Wal.next_lsn w;
                  truncated_to = Pagestore.Wal.truncated_to w;
                }
          | Repl_msg.Wal_batch { from_lsn; max_records } ->
              serve_batch t ~from_lsn ~max_records
          | Repl_msg.Snapshot_begin -> begin_snapshot t
          | Repl_msg.Snapshot_chunk { session; from_row; max_rows } ->
              serve_chunk t ~session ~from_row ~max_rows
          | Repl_msg.Snapshot_done { session } ->
              (match t.session with
              | Some s when s.s_id = session -> t.session <- None
              | _ -> ());
              Repl_msg.Ack
        end
      in
      Some (Repl_msg.encode_resp ~epoch:t.epoch resp)

(** [attach t ep] installs {!handle} as [ep]'s simnet handler.

    Detected corruption on the serving store (a rotted page under the
    snapshot cursor, a bad WAL frame under replay) must not cross the
    network as an exception — a real server would die mid-request and
    the client would see a lost reply.  Dropping the reply keeps the
    failure inside the retry/timeout model; the follower backs off and
    eventually reports the primary unreachable. *)
let attach t ep =
  Simnet.set_handler ep (fun ~src body ->
      match handle t ~src body with
      | reply -> reply
      | exception Tree.Corruption _ -> None
      | exception Pagestore.Wal.Corrupt _ -> None
      | exception Sstable.Sst_format.Corrupt _ -> None)

let register_metrics reg t =
  let c = t.c in
  Obs.Metrics.counter reg "repl.server.fenced_rejects"
    ~help:"stale-epoch requests refused" (fun () -> c.fenced_rejects);
  Obs.Metrics.counter reg "repl.server.epoch_adoptions"
    ~help:"higher epochs learned from peers" (fun () -> c.epoch_adoptions);
  Obs.Metrics.counter reg "repl.server.batches_served"
    ~help:"WAL batches answered" (fun () -> c.batches_served);
  Obs.Metrics.counter reg "repl.server.records_served"
    ~help:"WAL records shipped" (fun () -> c.records_served);
  Obs.Metrics.counter reg "repl.server.snapshots_started"
    ~help:"snapshot sessions opened" (fun () -> c.snapshots_started);
  Obs.Metrics.counter reg "repl.server.chunks_served"
    ~help:"snapshot chunks shipped" (fun () -> c.chunks_served)
