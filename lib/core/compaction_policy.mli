(** Pluggable compaction policies: the *what-to-merge* decision.

    The merge machinery in this repository is split across pacing
    ({!Scheduler}: when and how fast), mechanism ({!Merge_process},
    {!Policy_tree}, [Leveldb_sim]: how records move), and — with this
    module — policy: which runs are merged together next. A policy is a
    pure-ish decision procedure over a metadata snapshot of the tree
    ({!view}): it never touches pages, iterators, or the store, so one
    policy drives both the simulation engines and the structural
    QCheck invariants directly.

    Four design points from Sarkar et al.'s compaction design space are
    provided, plus the extracted selection logic of the circa-2012
    LevelDB simulator ([leveldb_seed]) so that engine's behaviour is
    byte-identical pre/post extraction:

    - {!tiered}: every level holds up to [T] overlapping runs; a full
      level merges into one run stacked on the next level. Write-optimal,
      read- and space-expensive.
    - {!leveled}: one run per level, sized [base * T^(i-1)]; an overfull
      level merges wholesale into the next. Read-optimal, high write
      amplification.
    - {!lazy_leveled}: tiered upper levels, one leveled run at the last
      level — the middle ground (Dostoevsky's "lazy leveling").
    - {!partial}: leveled shape but key-range granularity — one file
      (plus its overlaps) moves at a time, round-robin over the key
      space, so merges are small and pauses short.
    - {!leveldb_seed}: LevelDB's score-based victim selection with a
      round-robin compaction pointer, exactly as [Leveldb_sim] shipped
      it. *)

(** Metadata of one on-disk sorted run. [run_id] is the engine's
    creation-order stamp: unique, and within a level a higher id means
    fresher data. *)
type run = {
  run_id : int;
  run_level : int;
  run_bytes : int;
  run_records : int;
  run_min_key : string;
  run_max_key : string;
}

(** Snapshot the engine hands the policy. [v_levels.(i)] lists level
    [i]'s runs in the engine's storage order (level 0 newest-first;
    deeper levels as maintained by the engine — sorted by [run_min_key]
    for range-partitioned levels). Knobs: [v_l0_trigger] level-0 run
    count that makes compaction urgent, [v_fanout] the size ratio /
    tiering width T, [v_base_bytes] the level-1 byte target
    ([target(i) = base * fanout^(i-1)]), [v_file_bytes] the output split
    granularity for range-partitioned policies, [v_max_levels] the
    deepest level + 1. *)
type view = {
  v_levels : run list array;
  v_l0_trigger : int;
  v_fanout : float;
  v_base_bytes : int;
  v_file_bytes : int;
  v_max_levels : int;
}

(** One unit of merge work. The engine removes [j_inputs] from
    [j_level] and [j_overlaps] from [j_target], merges them
    freshest-first, and installs the output run(s) at [j_target]
    (splitting at [j_split_bytes] when positive). [j_target] equals
    [j_level] for in-place consolidation (tiering's last level) and
    [j_level + 1] otherwise. *)
type job = {
  j_level : int;
  j_inputs : int list;
  j_overlaps : int list;
  j_target : int;
  j_split_bytes : int;
  j_why : string;  (** selection cause, for traces and tests *)
}

(** A policy instance. Factories return closures so policies may carry
    private selection state (round-robin pointers); engines create one
    instance per tree and re-create it on crash recovery.

    [p_pick] chooses the most urgent job, or [None] when the tree shape
    satisfies the policy. [p_job_at ~level] forces selection at one
    level (hard drains of level 0). [p_check] is the structural
    invariant the shape must satisfy at maintenance fixpoint —
    [Some msg] describes the violation. *)
type t = {
  p_name : string;
  p_pick : view -> job option;
  p_job_at : view -> level:int -> job option;
  p_check : view -> string option;
}

(** Policy-authoring helpers and the typed per-policy factories below
    are the pluggable-policy API: engines select policies by name
    through {!of_name}, but a custom policy (the whole point of the
    subsystem) is written against these. *)

[@@@lint.allow "U001"]

(** [level_target v i] is level [i]'s byte budget:
    [base * fanout^(i-1)], [max_int] for level 0. *)
val level_target : view -> int -> int

(** [level_bytes v i] sums the level's run sizes. *)
val level_bytes : view -> int -> int

(** [overlapping v ~level ~min_key ~max_key] lists ids of level
    [level]'s runs whose key range intersects [min_key, max_key], in
    storage order. *)
val overlapping :
  view -> level:int -> min_key:string -> max_key:string -> int list

val tiered : unit -> t
val leveled : unit -> t
val lazy_leveled : unit -> t
val partial : unit -> t
val leveldb_seed : unit -> t

(** Factory by name ([tiered] | [leveled] | [lazy-leveled] | [partial] |
    [leveldb-seed]); [None] for unknown names. *)
val of_name : string -> t option

val all_names : string list
