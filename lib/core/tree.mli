(** The bLSM tree (§4, Figure 1): the library's primary entry point.

    Three levels — C0 (a memtable), C1 and C2 (Bloom-filtered on-disk
    components), plus C1' while a C1:C2 merge is in flight. Writes are
    logical-logged and buffered in C0; two incremental merge processes
    move data down the tree; a level scheduler paces them against
    application progress so writes see bounded backpressure instead of
    unbounded pauses.

    Merge work runs synchronously inside the write path in scheduler-
    chosen quanta — the simulation counterpart of merge threads sharing
    the disk with the application — so every stall is visible as write
    latency on the store's simulated clock.

    Trees are single-threaded: do not interleave operations with an open
    {!cursor}. *)

type t

(** Detected damage that could not be masked: a checksum mismatch in the
    named level ("C1" | "C1'" | "C2" | "WAL") that recovery could neither
    rebuild from the log nor readers route around. Corruption surfaces as
    this typed exception, never as a wrong answer. *)
exception Corruption of { level : string; what : string; page_or_lsn : int }

(** Operation and merge counters. [stall_us] records the synchronous
    merge time charged to each write (the scheduler's backpressure). *)
type stats = {
  mutable puts : int;
  mutable gets : int;
  mutable deletes : int;
  mutable deltas : int;
  mutable scans : int;
  mutable rmws : int;
  mutable checked_inserts : int;
  mutable checked_insert_seekfree : int;
      (** insert-if-not-exists calls resolved purely by Bloom filters *)
  mutable merge1_completions : int;  (** C0:C1 runs committed *)
  mutable merge2_completions : int;  (** C1':C2 merges committed *)
  mutable promotions : int;  (** C1 -> C1' handoffs *)
  mutable hard_stalls : int;  (** writes that hit the C0 hard limit *)
  mutable user_bytes_written : int;
  mutable corruptions_detected : int;
      (** checksum mismatches seen (reads, recovery, scrubs) *)
  mutable component_rebuilds : int;
      (** corrupt components dropped and rebuilt from WAL replay *)
  mutable quarantined_components : int;
      (** corrupt components mounted read-around at recovery *)
  mutable scrubs : int;
  mutable bloom_negative : int;
      (** Bloom "absent" answers from retired components (live ones are
          summed in by {!bloom_negative_total}) *)
  mutable bloom_false_positive : int;
      (** Bloom maybes refuted by the read, retired components *)
  stall_us : Repro_util.Histogram.t;
  mutable stall_merge1_us : float;
      (** cumulative pacing time spent in merge1 quanta, simulated µs *)
  mutable stall_merge2_us : float;
      (** cumulative pacing time spent in merge2 quanta *)
  mutable stall_hard_us : float;
      (** cumulative pacing time spent waiting out hard C0 stalls *)
  mutable wal_us : float;
      (** cumulative WAL append / group-commit time (outside pacing) *)
  mutable recovery_us : float;  (** replay + component-rebuild time *)
}

(** Per-operation stall attribution: how the last write's pacing time
    divided across causes. [merge1_us + merge2_us + hard_us = total_us]
    within float rounding ([total_us] is the sample added to
    [stall_us]); [wal_us] is WAL append time, charged outside pacing. *)
type stall_breakdown = {
  sb_merge1_us : float;
  sb_merge2_us : float;
  sb_hard_us : float;
  sb_wal_us : float;
  sb_total_us : float;
}

(** [create ?config ?root_slot store] opens an empty tree on [store].
    Multiple trees may share a store (see {!Partitioned}); each must use
    a distinct [root_slot] so their commit records and WAL-truncation
    floors stay separate. *)
val create : ?config:Config.t -> ?root_slot:string -> Pagestore.Store.t -> t

val config : t -> Config.t
val store : t -> Pagestore.Store.t
val disk : t -> Simdisk.Disk.t
val stats : t -> stats

(** Stall attribution of the most recent write (valid after any
    [put]/[delete]/[apply_delta]/[read_modify_write]/batch). *)
val last_stall : t -> stall_breakdown

(** [on_stall t f] installs [f] as the tree's stall observer: it fires
    once per pacing decision (every write, including each operation of a
    batch's single pacing pass), after the merge1/merge2/hard quanta are
    finalized, with [sb_wal_us = 0] — WAL time is charged outside the
    pacing window. Stall-episode detectors ({!Obs.Episodes}) hook in
    here; the observer must not write to the tree. One observer at a
    time; not carried across {!crash_and_recover}. *)
val on_stall : t -> (stall_breakdown -> unit) -> unit

(** [metrics t] is the tree's metrics registry — every [tree.*] stat
    plus the underlying store's [disk.*]/[wal.*]/[buf.*]/[faults.*]
    metrics, registered as pull-closures over the live stat records.
    Built once per tree and cached; dumps sample at call time. *)
val metrics : t -> Obs.Metrics.t

(** {1 Writes — all blind, zero seeks (§3.1.2)} *)

(** [put t key value]: insert or overwrite. *)
val put : t -> string -> string -> unit

(** [delete t key]: tombstone write; deleting a missing key is a no-op
    write, not an error. *)
val delete : t -> string -> unit

(** [apply_delta t key d]: zero-seek patch (§2.3); resolved against the
    base record by reads and merges using the configured resolver. *)
val apply_delta : t -> string -> string -> unit

(** [write_batch t ops] applies a multi-key batch atomically: one logical
    log record covers it, so a crash recovers all of it or none of it —
    the ACID building block the logical log provides (§4.4.2).
    Operations apply in order; later entries for a key win. *)
val write_batch : t -> (string * Kv.Entry.t) list -> unit

(** [before_write t ~write_bytes] runs the level scheduler's pacing for
    an upcoming write of [write_bytes] payload bytes — merge quanta,
    backpressure, hard-stall handling — and resets the per-op stall
    breakdown. Exposed for multi-tree coordinators ({!Partitioned}) that
    pace each involved tree before taking a single shared log record. *)
val before_write : t -> write_bytes:int -> unit

(** [absorb_batch t ~lsn ops] folds into C0 a batch slice already
    durably logged under [lsn] elsewhere (one shared-WAL record covering
    several trees). Pairs with {!before_write}; ordinary callers want
    {!write_batch}. *)
val absorb_batch : t -> lsn:int -> (string * Kv.Entry.t) list -> unit

(** Raised by any write while the tree's write fence is up. *)
exception Write_fenced

(** [set_write_fence t true] makes every subsequent write raise
    {!Write_fenced} until the fence is lowered. Replication raises the
    fence on a primary for the duration of a snapshot cursor copy — the
    "primary must be quiescent during resync" precondition, enforced
    rather than documented. *)
val set_write_fence : t -> bool -> unit

(** {1 Reads} *)

(** [get t key]: point lookup — at most ~1 seek on a settled tree thanks
    to Bloom filters and early termination. Pending deltas are resolved;
    [None] for missing or deleted keys. *)
val get : t -> string -> string option

(** [read_modify_write t key f] reads, applies [f], writes back — the
    B-Tree-equivalent primitive at 1 seek instead of 2 (Table 1). *)
val read_modify_write : t -> string -> (string option -> string) -> unit

(** [read_version t key] is the newest WAL LSN affecting [key]'s visible
    state (0 if never written within retained history) — the version
    token optimistic transactions validate against. *)
val read_version : t -> string -> int

(** [insert_if_absent t key value] inserts only if the key is missing;
    returns whether it inserted. When every Bloom filter says "absent"
    the whole operation performs zero seeks (§3.1.2). *)
val insert_if_absent : t -> string -> string -> bool

(** {1 Scans (§3.3)} *)

(** [scan t start n]: up to [n] live records with key >= [start], in
    order, fully resolved. Touches every component: 2-3 seeks. *)
val scan : t -> string -> int -> (string * string) list

(** A streaming range cursor over the merged tree. Reflects the
    components live at creation; do not interleave writes with pulls. *)
type cursor

(** [cursor ?from t] opens a cursor at the smallest key >= [from]. *)
val cursor : ?from:string -> t -> cursor

(** [cursor_next c] yields the next live record, deltas resolved. *)
val cursor_next : cursor -> (string * string) option

(** {1 Maintenance and recovery} *)

(** [maintenance t] runs active merges to completion (use between
    measurement phases, not during them). *)
val maintenance : t -> unit

(** [flush t] drains C0 (and C0') entirely to disk and settles merges. *)
val flush : t -> unit

(** [crash_and_recover t] simulates power loss and runs recovery: the
    buffer pool and all in-memory tree state vanish; in-flight merge
    output is rolled back; the committed root is read back, components
    reopened (indexes re-read, Bloom filters rebuilt by scanning —
    §4.4.3), and the logical log replayed into a fresh C0.
    [should_replay] scopes a shared log to this tree's key range
    (partitioned stores). Returns the recovered tree; the old handle must
    not be used again.

    Corruption found on the way back up is tolerated: a component that
    fails verification ([~verify:true] checksums every page at mount;
    the default only validates footers and index blobs) is rebuilt from
    WAL replay when the log still covers it, quarantined (reads touching
    rotted pages raise {!Corruption}) when openable but uncovered, and a
    typed {!Corruption} failure otherwise. Mid-log WAL rot also raises
    {!Corruption}; a torn log *tail* is truncated silently — that is
    ordinary power loss. *)
val crash_and_recover : ?should_replay:(string -> bool) -> ?verify:bool -> t -> t

(** {1 Scrubbing} *)

type scrub_report = {
  scrub_errors : (string * string * int) list;
      (** (level, what, page-or-lsn) per checksum mismatch *)
  scrub_wal_records : int;  (** live log records checked *)
  scrub_clean : bool;
}

(** [scrub t] verifies every checksum the tree owns — component data
    pages, index/Bloom blobs, live WAL records — and reports findings
    without modifying tree state. *)
val scrub : t -> scrub_report

(** {1 Introspection} *)

type level_info = {
  level : string;  (** "C0" | "C1" | "C1'" | "C2" *)
  bytes : int;
  records : int;
  level_timestamp : int;  (** logical timestamp (§4.4.1); 0 for C0 *)
}

val levels : t -> level_info list

(** Current on-disk data bytes (C1 + C1' + C2). *)
val disk_data_bytes : t -> int

(** Effective size ratio R (fixed or adaptive, §2.3.1). *)
val effective_r : t -> float
[@@lint.allow "U001"] (* paper metric (R), observatory surface *)

(** Total Bloom-filter RAM currently allocated (Appendix A overhead). *)
val bloom_bytes : t -> int

(** Lookups any Bloom filter answered "absent" for free — tree lifetime,
    retired components included. *)
val bloom_negative_total : t -> int
[@@lint.allow "U001"] (* paper metric, observatory surface *)

(** Filter said maybe, the component read said no (the wasted page read
    filters exist to avoid) — tree lifetime, retired included. *)
val bloom_false_positive_total : t -> int
[@@lint.allow "U001"] (* paper metric, observatory surface *)

(** Footer of each mounted on-disk component ("C1" | "C1'" | "C2"),
    newest level first — extents and page layout for scrub tooling and
    fault-injection tests. *)
val component_footers : t -> (string * Sstable.Sst_format.footer) list

(** {1 Scheduler probes} — the §4.1 progress estimators, exposed for
    tracing and tests. *)

(** C0 fill fraction (bytes / effective capacity). *)
val c0_fill : t -> float

(** inprogress of the active C0:C1 merge (0 when idle). *)
val merge1_inprogress : t -> float

(** inprogress of the active C1':C2 merge (1 when idle). *)
val merge2_inprogress : t -> float

(** outprogress of C1 (§4.1's clock-hand position). *)
val outprogress1 : t -> float

(** {1 Logical log records}

    The wire format of the WAL payloads ({!Replication} tails them). *)

val encode_ops : (string * Kv.Entry.t) list -> string
val decode_ops : string -> (string * Kv.Entry.t) list

(** {1 Engine adapter} *)

(** [engine ?name t] wraps the tree in the uniform benchmark interface. *)
val engine : ?name:string -> t -> Kv.Kv_intf.engine
