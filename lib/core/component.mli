(** An on-disk tree component: an SSTable plus its Bloom filter.

    One filter guards each on-disk component (C1, C1', C2); it is created
    by the merge that creates the component and dies with it (§4.4.3).
    Filters are not persisted: after a crash they are rebuilt by scanning
    the component once. *)

type t = {
  sst : Sstable.Reader.t;
  bloom : Bloom.t option;
  mutable bloom_negative : int;  (** lookups the filter answered for free *)
  mutable bloom_false_positive : int;
}

val of_sst : ?bloom:Bloom.t -> Sstable.Reader.t -> t

(** [build_bloom ?kind ~bits_per_key sst] recovers a component's filter:
    the persisted copy when one exists, else a fresh filter of layout
    [kind] (default [Standard]) populated by scanning the component.
    [None] when [bits_per_key = 0]. *)
val build_bloom :
  ?kind:Bloom.kind -> bits_per_key:int -> Sstable.Reader.t -> Bloom.t option

val data_bytes : t -> int
val record_count : t -> int
val timestamp : t -> int

(** [get t key]: point lookup; consults the Bloom filter first so lookups
    of absent keys usually cost zero I/O. *)
val get : t -> string -> Kv.Entry.t option

(** [maybe_contains t key] is the filter-only check behind zero-seek
    "insert if not exists" (§3.1.2); may return false positives. *)
val maybe_contains : t -> string -> bool

(** Streaming iterator (merges, scans): bypasses the buffer pool. *)
val iterator : ?from:string -> t -> Sstable.Reader.iter

(** Iterator through the buffer pool (short scans that should cache). *)
val cached_iterator : ?from:string -> t -> Sstable.Reader.iter
[@@lint.allow "U001"] (* short-scan surface mirroring [iterator] *)

(** [free t] releases the component's extents (superseded by a merge). *)
val free : t -> unit

(** Metadata blob for the engine's commit root. *)
val meta_blob : t -> string
