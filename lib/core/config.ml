(** bLSM tree configuration.

    Defaults follow the paper's setup scaled down: a three-level tree with
    Bloom filters at 10 bits/key on both on-disk components, snowshoveling
    on, spring-and-gear scheduling, early-terminating reads. Every
    algorithmic choice evaluated in §3-§4 is a flag here so the ablation
    benchmarks can isolate it. *)

type scheduler_kind =
  | Naive  (** no pacing: block when C0 fills, merge to completion *)
  | Gear  (** §4.1: couple C0 fill to merge progress, C0/C0' partition *)
  | Spring  (** §4.3: watermark band on C0, proportional backpressure *)

type size_ratio =
  | Fixed of float
  | Adaptive  (** R = sqrt(|data| / |C0|), the 3-level optimum (§2.3.1) *)

(** Replication-supervisor tuning: timeouts, backoff, transfer sizing
    and the bounded-staleness read policy (all simulated-µs / counts). *)
type repl = {
  req_timeout_us : int;  (** per-request deadline before a retry *)
  backoff_base_us : int;  (** first retry delay *)
  backoff_cap_us : int;  (** exponential backoff ceiling *)
  backoff_jitter : float;
      (** jitter band: each delay is [nominal * (1 + u * jitter)],
          [u] uniform in [0,1) from the supervisor's seeded PRNG *)
  max_attempts : int;  (** give up ([`Unreachable]) after this many *)
  batch_records : int;  (** WAL records per catch-up request *)
  chunk_rows : int;  (** rows per snapshot chunk during resync *)
  max_lag_records : int;
      (** staleness bound: shed reads once the known lag exceeds this *)
  staleness_lease_us : int;
      (** shed reads when the primary has not been heard from in this
          long, whatever the last known lag *)
}

type t = {
  c0_bytes : int;  (** RAM budget for C0 (the paper's 8 GB, scaled) *)
  size_ratio : size_ratio;
  bloom_bits_per_key : int;  (** 0 disables Bloom filters (ablation) *)
  scheduler : scheduler_kind;
  snowshovel : bool;  (** replacement-selection C0 draining (§4.2) *)
  early_termination : bool;  (** stop reads at the first base record (§3.1.1) *)
  low_watermark : float;  (** spring: pause merges below this C0 fill *)
  high_watermark : float;  (** spring: full backpressure at this fill *)
  extent_pages : int;  (** contiguous allocation unit for components *)
  max_quota_per_write : int;
      (** cap on synchronous merge bytes charged to one write: bounds
          per-write latency under the gear/spring schedulers *)
  run_cap_factor : float;
      (** end a C0:C1 run early once output exceeds this multiple of the
          C1 target (prevents unbounded runs under sorted inserts) *)
  persist_bloom : bool;
      (** write each component's Bloom filter to disk at merge commit so
          recovery reads 1.25 B/key instead of rescanning the component.
          The paper chose not to persist (§4.4.3); off by default. *)
  bloom_kind : Bloom.kind;
      (** filter memory layout: [Standard] (whole-array probes, the
          seed's filter) or [Blocked] (one 64-byte block per key, two
          derived probes per hash — one cache line per membership test
          at the same bits-per-key budget) *)
  page_format : Sstable.Sst_format.version;
      (** SSTable page/record layout for newly built components: [V1]
          (full key per record, the seed's bytes) or [V2] (prefix-
          compressed keys with restart points, per-page zone maps).
          Existing components are read by their own footer's version,
          so the two formats coexist in one store. *)
  resolver : Kv.Entry.resolver;
  seed : int;
  repl : repl;
}

let default_repl =
  {
    req_timeout_us = 10_000;
    backoff_base_us = 2_000;
    backoff_cap_us = 64_000;
    backoff_jitter = 0.25;
    max_attempts = 10;
    batch_records = 32;
    chunk_rows = 256;
    max_lag_records = 64;
    staleness_lease_us = 200_000;
  }

let default =
  {
    c0_bytes = 8 * 1024 * 1024;
    size_ratio = Adaptive;
    bloom_bits_per_key = 10;
    scheduler = Spring;
    snowshovel = true;
    early_termination = true;
    low_watermark = 0.30;
    high_watermark = 0.90;
    extent_pages = 512;
    max_quota_per_write = 4 * 1024 * 1024;
    run_cap_factor = 1.25;
    persist_bloom = false;
    bloom_kind = Bloom.Standard;
    page_format = Sstable.Sst_format.V1;
    resolver = Kv.Entry.append_resolver;
    seed = 42;
    repl = default_repl;
  }

let bloom_enabled t = t.bloom_bits_per_key > 0

(** Effective C0 capacity: the gear scheduler partitions the write pool
    into C0/C0', halving it (§4.2.1); snowshoveling removes the partition. *)
let c0_capacity t = if t.snowshovel then t.c0_bytes else t.c0_bytes / 2

let scheduler_name = function
  | Naive -> "naive"
  | Gear -> "gear"
  | Spring -> "spring"
