(* Policy-driven multi-level LSM engine: the host for
   {!Compaction_policy}. One memtable + logical WAL in front of an array
   of levels of Bloom-filtered runs; victim selection is delegated
   entirely to the policy, while flushing, pacing, durability, recovery
   and the read stack are shared — so the four compaction disciplines
   differ in exactly the decision the design space varies.

   Pacing: flushes are atomic (charged as merge1 time), the single
   active compaction is stepped in spring-quota quanta inside the write
   path (merge2 time), and level-0 pressure past the stop threshold
   triggers a synchronous hard drain (hard time) — the same
   stall-attribution contract as {!Tree}, so the stability observatory
   instruments every policy for free. *)

type pconfig = {
  pt_l0_trigger : int;
  pt_l0_stop : int;
  pt_fanout : float;
  pt_base_bytes : int;
  pt_file_bytes : int;
  pt_max_levels : int;
}

let default_pconfig =
  {
    pt_l0_trigger = 4;
    pt_l0_stop = 8;
    pt_fanout = 4.0;
    pt_base_bytes = 256 * 1024;
    pt_file_bytes = 64 * 1024;
    pt_max_levels = 6;
  }

type stats = {
  mutable flushes : int;
  mutable compactions : int;
  mutable bytes_flushed : int;
  mutable bytes_compacted : int;
  mutable user_bytes : int;
  mutable hard_stalls : int;
  mutable recoveries : int;
  mutable recoveries_mid_compaction : int;
  mutable corruptions_detected : int;
  mutable quarantined_runs : int;
  mutable puts : int;
  mutable gets : int;
  mutable deletes : int;
  mutable deltas : int;
  mutable scans : int;
  mutable rmws : int;
  mutable checked_inserts : int;
  mutable stall_merge1_us : float;
  mutable stall_merge2_us : float;
  mutable stall_hard_us : float;
}

let fresh_stats () =
  {
    flushes = 0;
    compactions = 0;
    bytes_flushed = 0;
    bytes_compacted = 0;
    user_bytes = 0;
    hard_stalls = 0;
    recoveries = 0;
    recoveries_mid_compaction = 0;
    corruptions_detected = 0;
    quarantined_runs = 0;
    puts = 0;
    gets = 0;
    deletes = 0;
    deltas = 0;
    scans = 0;
    rmws = 0;
    checked_inserts = 0;
    stall_merge1_us = 0.0;
    stall_merge2_us = 0.0;
    stall_hard_us = 0.0;
  }

(* Per-write stall scratch, reset by [before_write]; mirrors
   {!Tree.stall_breakdown} so both engines feed the same episode
   detectors. *)
type scratch = {
  mutable sc_merge1_us : float;
  mutable sc_merge2_us : float;
  mutable sc_hard_us : float;
  mutable sc_wal_us : float;
  mutable sc_total_us : float;
}

type prun = { pr_id : int; pr_comp : Component.t }

(* One in-flight incremental compaction. Inputs stay mounted (and
   readable) until commit; output runs are invisible until the manifest
   commit installs them. *)
type active = {
  ac_job : Compaction_policy.job;
  ac_inputs : prun list;
  ac_overlaps : prun list;
  ac_iter : Sstable.Merge_iter.t;
  ac_total_bytes : int;
  ac_total_records : int;
  mutable ac_read_bytes : int;
  mutable ac_builder : Sstable.Builder.t option;
  mutable ac_bloom : Bloom.t option;
  mutable ac_outputs : prun list;  (* newest split first *)
  mutable ac_done : bool;
}

type t = {
  config : Config.t;
  pc : pconfig;
  policy : Compaction_policy.t;
  store : Pagestore.Store.t;
  mutable mem : Memtable.t;
  levels : prun list array;  (* level 0 newest-first; deeper by min key *)
  mutable next_id : int;
  mutable floor_lsn : int;  (* WAL floor recorded in the manifest *)
  mutable active : active option;
  mutable flush_builder : Sstable.Builder.t option;  (* crash rollback *)
  mutable in_hard : bool;
  scratch : scratch;
  stats : stats;
  mutable stall_observer : (Tree.stall_breakdown -> unit) option;
  mutable metrics : Obs.Metrics.t option;
}

let config t = t.config
let pconfig t = t.pc
let policy t = t.policy
let store t = t.store
let disk t = Pagestore.Store.disk t.store
let stats t = t.stats

let create ?(config = Config.default) ?(pconfig = default_pconfig) ~policy
    store =
  if pconfig.pt_max_levels < 2 then
    invalid_arg "Policy_tree.create: pt_max_levels < 2";
  {
    config;
    pc = pconfig;
    policy;
    store;
    mem =
      Memtable.create ~seed:config.Config.seed
        ~resolver:config.Config.resolver ();
    levels = Array.make pconfig.pt_max_levels [];
    next_id = 1;
    floor_lsn = 0;
    active = None;
    flush_builder = None;
    in_hard = false;
    scratch =
      {
        sc_merge1_us = 0.0;
        sc_merge2_us = 0.0;
        sc_hard_us = 0.0;
        sc_wal_us = 0.0;
        sc_total_us = 0.0;
      };
    stats = fresh_stats ();
    stall_observer = None;
    metrics = None;
  }

let last_stall t =
  {
    Tree.sb_merge1_us = t.scratch.sc_merge1_us;
    sb_merge2_us = t.scratch.sc_merge2_us;
    sb_hard_us = t.scratch.sc_hard_us;
    sb_wal_us = t.scratch.sc_wal_us;
    sb_total_us = t.scratch.sc_total_us;
  }

let on_stall t f = t.stall_observer <- Some f

(* Convert a checksum failure into the typed tree-level error, naming
   the level it came from; {!Simdisk.Faults.Crash_point} passes through. *)
let level_name lvl = "P" ^ string_of_int lvl

let guard t ~lvl f =
  try f ()
  with Sstable.Sst_format.Corrupt { what; page } ->
    t.stats.corruptions_detected <- t.stats.corruptions_detected + 1;
    raise (Tree.Corruption { level = level_name lvl; what; page_or_lsn = page })

(* {1 Level bookkeeping} *)

let run_bytes r = Component.data_bytes r.pr_comp
let run_min_key r = Sstable.Reader.min_key r.pr_comp.Component.sst
let run_max_key r = Sstable.Reader.max_key r.pr_comp.Component.sst

(* Storage order: level 0 newest run first (ids are creation-ordered),
   deeper levels sorted by min key — the order {!Compaction_policy.view}
   documents. *)
let level_order lvl runs =
  if lvl = 0 then
    List.sort (fun a b -> Int.compare b.pr_id a.pr_id) runs
  else
    List.sort (fun a b -> String.compare (run_min_key a) (run_min_key b)) runs

let view t =
  {
    Compaction_policy.v_levels =
      Array.mapi
        (fun lvl runs ->
          List.map
            (fun r ->
              {
                Compaction_policy.run_id = r.pr_id;
                run_level = lvl;
                run_bytes = run_bytes r;
                run_records = Component.record_count r.pr_comp;
                run_min_key = run_min_key r;
                run_max_key = run_max_key r;
              })
            runs)
        t.levels;
    v_l0_trigger = t.pc.pt_l0_trigger;
    v_fanout = t.pc.pt_fanout;
    v_base_bytes = t.pc.pt_base_bytes;
    v_file_bytes = t.pc.pt_file_bytes;
    v_max_levels = t.pc.pt_max_levels;
  }

let check_invariant t = t.policy.Compaction_policy.p_check (view t)

type level_info = { li_level : int; li_runs : int; li_bytes : int }

let levels t =
  Array.to_list
    (Array.mapi
       (fun lvl runs ->
         {
           li_level = lvl;
           li_runs = List.length runs;
           li_bytes = List.fold_left (fun a r -> a + run_bytes r) 0 runs;
         })
       t.levels)

let total_run_bytes t =
  Array.fold_left
    (fun a runs -> List.fold_left (fun a r -> a + run_bytes r) a runs)
    0 t.levels

(* {1 Manifest}

   "PLSM" | next_id | floor_lsn | run count | (level, id, meta blob)*.
   Force-written through the store root, so recovery sees a physically
   consistent set of committed runs plus the exact WAL floor the last
   flush made durable. *)

let commit_manifest t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "PLSM";
  Repro_util.Varint.write buf t.next_id;
  Repro_util.Varint.write buf t.floor_lsn;
  let all = ref [] in
  Array.iteri
    (fun lvl runs -> List.iter (fun r -> all := (lvl, r) :: !all) runs)
    t.levels;
  let all = List.rev !all in
  Repro_util.Varint.write buf (List.length all);
  List.iter
    (fun (lvl, r) ->
      Repro_util.Varint.write buf lvl;
      Repro_util.Varint.write buf r.pr_id;
      let blob = Component.meta_blob r.pr_comp in
      Repro_util.Varint.write buf (String.length blob);
      Buffer.add_string buf blob)
    all;
  Pagestore.Store.commit_root t.store (Buffer.contents buf)

(* Ids listed in the durable manifest right now — the set of runs whose
   regions must survive a crash. Unreadable or absent root: none. *)
let durable_ids t =
  let root = Pagestore.Store.read_root t.store in
  if String.length root < 4 || String.sub root 0 4 <> "PLSM" then []
  else
    match
      let _next, pos = Repro_util.Varint.read root 4 in
      let _floor, pos = Repro_util.Varint.read root pos in
      let n, pos = Repro_util.Varint.read root pos in
      let pos = ref pos in
      List.init n (fun _ ->
          let _lvl, p = Repro_util.Varint.read root !pos in
          let id, p = Repro_util.Varint.read root p in
          let len, p = Repro_util.Varint.read root p in
          pos := p + len;
          id)
    with
    | ids -> ids
    | exception Invalid_argument _ ->
        (* torn root: truncated varint or blob length past the end *)
        []

(* {1 Bloom filters} *)

let mk_bloom t ~expected_items =
  if Config.bloom_enabled t.config then
    Some
      (Bloom.create ~kind:t.config.Config.bloom_kind
         ~bits_per_item:t.config.Config.bloom_bits_per_key
         ~expected_items:(max 16 expected_items) ())
  else None

(* {1 Flush: memtable -> one level-0 run}

   Atomic: the whole memtable streams into a single run, the manifest
   commits with the new WAL floor, then the log truncates. A crash
   anywhere in between recovers either the old state (replay from the
   old floor) or the new one (replay from the new floor skips the
   now-durable records) — deltas never double-apply. *)

let do_flush t =
  let wal = Pagestore.Store.wal t.store in
  let floor = Pagestore.Wal.next_lsn wal in
  let b =
    Sstable.Builder.create ~format:t.config.Config.page_format
      ~extent_pages:t.config.Config.extent_pages t.store
  in
  t.flush_builder <- Some b;
  let bloom = mk_bloom t ~expected_items:(Memtable.count t.mem) in
  let rec drain () =
    match Memtable.consume_geq_lsn t.mem "" with
    | Some (k, e, lsn) ->
        Sstable.Builder.add ~lsn b k e;
        Option.iter (fun bl -> Bloom.add bl k) bloom;
        drain ()
    | None -> ()
  in
  drain ();
  if Sstable.Builder.record_count b = 0 then begin
    Sstable.Builder.abandon b;
    t.flush_builder <- None
  end
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let bloom_blob =
      if t.config.Config.persist_bloom then Option.map Bloom.to_string bloom
      else None
    in
    let footer = Sstable.Builder.finish ?bloom_blob b ~timestamp:id in
    let sst =
      Sstable.Reader.open_in_ram t.store footer
        ~index:(Sstable.Builder.index_blob b)
    in
    t.flush_builder <- None;
    let comp = Component.of_sst ?bloom sst in
    t.levels.(0) <- { pr_id = id; pr_comp = comp } :: t.levels.(0);
    t.stats.flushes <- t.stats.flushes + 1;
    t.stats.bytes_flushed <- t.stats.bytes_flushed + Component.data_bytes comp;
    t.floor_lsn <- floor;
    commit_manifest t;
    Pagestore.Wal.truncate wal ~upto_lsn:floor
  end

let flush t = if not (Memtable.is_empty t.mem) then do_flush t

(* {1 Compaction mechanism: execute one policy job incrementally} *)

let resolve_runs t ~lvl ids =
  List.map
    (fun id ->
      match List.find_opt (fun r -> r.pr_id = id) t.levels.(lvl) with
      | Some r -> r
      | None ->
          failwith
            (Printf.sprintf
               "policy_tree: policy %s selected unknown run %d at level %d"
               t.policy.Compaction_policy.p_name id lvl))
    ids

let comp_pull t ~lvl comp =
  let it = Component.iterator comp in
  fun () -> guard t ~lvl (fun () -> Sstable.Reader.iter_next_full it)

(* Pull a list of key-disjoint components (sorted by min key) as one
   ordered stream. *)
let chain_pull t ~lvl comps =
  let remaining = ref comps in
  let cur = ref None in
  let rec next () =
    match !cur with
    | Some pull -> (
        match pull () with
        | Some _ as r -> r
        | None ->
            cur := None;
            next ())
    | None -> (
        match !remaining with
        | [] -> None
        | c :: rest ->
            remaining := rest;
            cur := Some (comp_pull t ~lvl c);
            next ())
  in
  next

(* Tombstones (and orphan deltas) may be dropped only when the output
   lands at the bottom of the data: nothing below the target level, and
   nothing left *at* the target level outside the job — otherwise a
   dropped tombstone would resurrect an older record it was shadowing. *)
let job_reaches_bottom t (job : Compaction_policy.job) =
  let deeper_empty = ref true in
  for l = job.j_target + 1 to t.pc.pt_max_levels - 1 do
    if t.levels.(l) <> [] then deeper_empty := false
  done;
  let consumed id =
    List.mem id job.j_overlaps
    || (job.j_target = job.j_level && List.mem id job.j_inputs)
  in
  !deeper_empty
  && List.for_all (fun r -> consumed r.pr_id) t.levels.(job.j_target)

let start_job t (job : Compaction_policy.job) =
  assert (t.active = None);
  let inputs = resolve_runs t ~lvl:job.j_level job.j_inputs in
  let overlaps =
    if job.j_target = job.j_level then []
    else resolve_runs t ~lvl:job.j_target job.j_overlaps
  in
  (* Freshest source wins ties: inputs come from above the target (or
     are newer runs of the same level), ordered newest id first; the
     target level's overlapping runs are older than all of them and,
     being key-disjoint, chain into one stream. *)
  let inputs_desc =
    List.sort (fun a b -> Int.compare b.pr_id a.pr_id) inputs
  in
  let sources =
    List.mapi
      (fun i r -> (i, comp_pull t ~lvl:job.j_level r.pr_comp))
      inputs_desc
    @
    match overlaps with
    | [] -> []
    | _ ->
        let sorted =
          List.sort
            (fun a b -> String.compare (run_min_key a) (run_min_key b))
            overlaps
        in
        [
          ( List.length inputs_desc,
            chain_pull t ~lvl:job.j_target
              (List.map (fun r -> r.pr_comp) sorted) );
        ]
  in
  let total_bytes =
    List.fold_left (fun a r -> a + run_bytes r) 0 (inputs @ overlaps)
  in
  let total_records =
    List.fold_left
      (fun a r -> a + Component.record_count r.pr_comp)
      0 (inputs @ overlaps)
  in
  t.active <-
    Some
      {
        ac_job = job;
        ac_inputs = inputs;
        ac_overlaps = overlaps;
        ac_iter =
          Sstable.Merge_iter.create ~resolver:t.config.Config.resolver
            ~drop_tombstones:(job_reaches_bottom t job)
            sources;
        ac_total_bytes = total_bytes;
        ac_total_records = total_records;
        ac_read_bytes = 0;
        ac_builder = None;
        ac_bloom = None;
        ac_outputs = [];
        ac_done = false;
      }

(* Seal the current output split (if it holds records) into a mounted,
   not-yet-committed run. *)
let rotate_output t ac =
  (match ac.ac_builder with
  | None -> ()
  | Some b ->
      if Sstable.Builder.record_count b = 0 then Sstable.Builder.abandon b
      else begin
        let id = t.next_id in
        t.next_id <- id + 1;
        let bloom_blob =
          if t.config.Config.persist_bloom then
            Option.map Bloom.to_string ac.ac_bloom
          else None
        in
        let footer = Sstable.Builder.finish ?bloom_blob b ~timestamp:id in
        let sst =
          Sstable.Reader.open_in_ram t.store footer
            ~index:(Sstable.Builder.index_blob b)
        in
        let comp = Component.of_sst ?bloom:ac.ac_bloom sst in
        ac.ac_outputs <- { pr_id = id; pr_comp = comp } :: ac.ac_outputs
      end);
  ac.ac_builder <- None;
  ac.ac_bloom <- None

(* Expected keys per output split, for Bloom sizing. *)
let split_expected ac split =
  if split <= 0 || ac.ac_total_bytes <= 0 then ac.ac_total_records
  else ac.ac_total_records * split / max 1 ac.ac_total_bytes

let record_cost k e = String.length k + Kv.Entry.payload_bytes e + 16

(* Consume up to [quota] input bytes (approximated by surviving record
   sizes; pacing only needs smoothness, not exactness). *)
let step_active t ac ~quota =
  let split = ac.ac_job.Compaction_policy.j_split_bytes in
  let spent = ref 0 in
  while (not ac.ac_done) && !spent < quota do
    match Sstable.Merge_iter.next ac.ac_iter with
    | None ->
        rotate_output t ac;
        ac.ac_done <- true
    | Some (k, e, lsn) ->
        (match ac.ac_builder with
        | Some b
          when split > 0 && Sstable.Builder.data_bytes b >= split ->
            rotate_output t ac
        | _ -> ());
        let b =
          match ac.ac_builder with
          | Some b -> b
          | None ->
              let b =
                Sstable.Builder.create ~format:t.config.Config.page_format
                  ~extent_pages:t.config.Config.extent_pages t.store
              in
              ac.ac_builder <- Some b;
              ac.ac_bloom <- mk_bloom t ~expected_items:(split_expected ac split);
              b
        in
        Sstable.Builder.add ~lsn b k e;
        Option.iter (fun bl -> Bloom.add bl k) ac.ac_bloom;
        let c = record_cost k e in
        ac.ac_read_bytes <- ac.ac_read_bytes + c;
        spent := !spent + c
  done

(* Swap the job's output in for its inputs, commit the manifest, free
   the superseded runs. The in-memory install happens before the commit
   and [t.active] is cleared first, so a crash point inside the root
   write leaves exactly one owner for every region: uncommitted outputs
   are freed by recovery's durable-set sweep, committed inputs are
   still in the old manifest. *)
let commit_active t ac =
  let job = ac.ac_job in
  let gone_inputs = List.map (fun r -> r.pr_id) ac.ac_inputs in
  let gone_overlaps = List.map (fun r -> r.pr_id) ac.ac_overlaps in
  let outputs = List.rev ac.ac_outputs in
  t.active <- None;
  t.levels.(job.Compaction_policy.j_level) <-
    List.filter
      (fun r -> not (List.mem r.pr_id gone_inputs))
      t.levels.(job.Compaction_policy.j_level);
  t.levels.(job.Compaction_policy.j_target) <-
    level_order job.Compaction_policy.j_target
      (outputs
      @ List.filter
          (fun r -> not (List.mem r.pr_id gone_overlaps))
          t.levels.(job.Compaction_policy.j_target));
  t.stats.compactions <- t.stats.compactions + 1;
  t.stats.bytes_compacted <- t.stats.bytes_compacted + ac.ac_total_bytes;
  commit_manifest t;
  List.iter (fun r -> Component.free r.pr_comp) ac.ac_inputs;
  List.iter (fun r -> Component.free r.pr_comp) ac.ac_overlaps

let finish_active t =
  match t.active with
  | None -> ()
  | Some ac ->
      let fuel = ref 0 in
      while not ac.ac_done do
        incr fuel;
        if !fuel > 10_000_000 then failwith "policy_tree: compaction stuck";
        step_active t ac ~quota:(64 * 1024)
      done;
      commit_active t ac

(* Start the policy's most urgent job when no compaction is in flight. *)
let ensure_active t =
  if t.active = None then
    match t.policy.Compaction_policy.p_pick (view t) with
    | Some job -> start_job t job
    | None -> ()

(* {1 Pacing: the per-write scheduler window} *)

let charge t ~hard_default sc_dt =
  let sc = t.scratch in
  if t.in_hard then sc.sc_hard_us <- sc.sc_hard_us +. sc_dt
  else
    match hard_default with
    | `Merge1 -> sc.sc_merge1_us <- sc.sc_merge1_us +. sc_dt
    | `Merge2 -> sc.sc_merge2_us <- sc.sc_merge2_us +. sc_dt

(* Hard drain: level 0 reached the stop threshold, so writes block until
   the policy has merged it back under. The parked elective compaction
   finishes first — its inputs may pin runs the drain jobs need. *)
let hard_drain t =
  t.stats.hard_stalls <- t.stats.hard_stalls + 1;
  t.in_hard <- true;
  Fun.protect
    ~finally:(fun () -> t.in_hard <- false)
    (fun () ->
      finish_active t;
      let fuel = ref 0 in
      while List.length t.levels.(0) >= t.pc.pt_l0_stop do
        incr fuel;
        if !fuel > 10_000 then failwith "policy_tree: hard drain stuck";
        match t.policy.Compaction_policy.p_job_at (view t) ~level:0 with
        | Some job ->
            start_job t job;
            finish_active t
        | None ->
            failwith
              (Printf.sprintf
                 "policy_tree: level 0 at %d runs >= stop %d but policy %s \
                  is idle"
                 (List.length t.levels.(0))
                 t.pc.pt_l0_stop t.policy.Compaction_policy.p_name)
      done)

let now_us t = Pagestore.Store.now_us t.store

let pace t ~write_bytes =
  let capacity = Config.c0_capacity t.config in
  (* Starting a job opens iterators on every input run (seeks on the
     simulated disk), so it must land in a stall bucket too or the
     attribution would not tile the pacing window. *)
  (let t0 = now_us t in
   ensure_active t;
   charge t ~hard_default:`Merge2 (now_us t -. t0));
  (match t.active with
  | None -> ()
  | Some ac ->
      let fill = float_of_int (Memtable.bytes t.mem) /. float_of_int capacity in
      let quota =
        min t.config.Config.max_quota_per_write
          (Scheduler.spring_quota ~write_bytes ~fill
             ~low:t.config.Config.low_watermark
             ~high:t.config.Config.high_watermark
             ~remaining_bytes:(max 1 (ac.ac_total_bytes - ac.ac_read_bytes))
             ~c0_capacity:capacity)
      in
      if quota > 0 then begin
        let t0 = now_us t in
        step_active t ac ~quota;
        if ac.ac_done then commit_active t ac;
        charge t ~hard_default:`Merge2 (now_us t -. t0)
      end);
  if Memtable.bytes t.mem >= capacity then begin
    let t0 = now_us t in
    do_flush t;
    charge t ~hard_default:`Merge1 (now_us t -. t0)
  end;
  if List.length t.levels.(0) >= t.pc.pt_l0_stop then begin
    let t0 = now_us t in
    Fun.protect
      ~finally:(fun () ->
        let sc = t.scratch in
        sc.sc_hard_us <- sc.sc_hard_us +. (now_us t -. t0))
      (fun () -> hard_drain t)
  end

let before_write t ~write_bytes =
  let sc = t.scratch in
  sc.sc_merge1_us <- 0.0;
  sc.sc_merge2_us <- 0.0;
  sc.sc_hard_us <- 0.0;
  sc.sc_wal_us <- 0.0;
  sc.sc_total_us <- 0.0;
  let t0 = now_us t in
  pace t ~write_bytes;
  sc.sc_total_us <- now_us t -. t0;
  t.stats.stall_merge1_us <- t.stats.stall_merge1_us +. sc.sc_merge1_us;
  t.stats.stall_merge2_us <- t.stats.stall_merge2_us +. sc.sc_merge2_us;
  t.stats.stall_hard_us <- t.stats.stall_hard_us +. sc.sc_hard_us;
  match t.stall_observer with
  | None -> ()
  | Some f ->
      f
        {
          Tree.sb_merge1_us = sc.sc_merge1_us;
          sb_merge2_us = sc.sc_merge2_us;
          sb_hard_us = sc.sc_hard_us;
          sb_wal_us = 0.0;
          sb_total_us = sc.sc_total_us;
        }

(* {1 Write path} *)

let write_entry t key entry =
  let bytes = String.length key + Kv.Entry.payload_bytes entry in
  before_write t ~write_bytes:(max 64 bytes);
  let t_wal = now_us t in
  let lsn =
    Pagestore.Wal.append
      (Pagestore.Store.wal t.store)
      (Tree.encode_ops [ (key, entry) ])
  in
  t.scratch.sc_wal_us <- t.scratch.sc_wal_us +. (now_us t -. t_wal);
  Memtable.write t.mem ~lsn key entry;
  t.stats.user_bytes <- t.stats.user_bytes + bytes

let put t key value =
  t.stats.puts <- t.stats.puts + 1;
  write_entry t key (Kv.Entry.Base value)

let delete t key =
  t.stats.deletes <- t.stats.deletes + 1;
  write_entry t key Kv.Entry.Tombstone

let apply_delta t key d =
  t.stats.deltas <- t.stats.deltas + 1;
  write_entry t key (Kv.Entry.Delta [ d ])

let write_batch t ops =
  if ops <> [] then begin
    let bytes =
      List.fold_left
        (fun a (k, e) -> a + String.length k + Kv.Entry.payload_bytes e)
        0 ops
    in
    before_write t ~write_bytes:(max 64 bytes);
    let t_wal = now_us t in
    let lsn =
      Pagestore.Wal.append (Pagestore.Store.wal t.store) (Tree.encode_ops ops)
    in
    t.scratch.sc_wal_us <- t.scratch.sc_wal_us +. (now_us t -. t_wal);
    List.iter (fun (key, entry) -> Memtable.write t.mem ~lsn key entry) ops;
    t.stats.puts <- t.stats.puts + List.length ops;
    t.stats.user_bytes <- t.stats.user_bytes + bytes
  end

(* {1 Read path}

   Visit record states newest-first: memtable, then every level top
   down. Within a level, runs are visited newest id first — required
   where runs overlap (level 0, tiered levels), harmless where they are
   key-disjoint (at most one can contain the key, and Bloom filters
   skip the rest). Early termination stops at the first base record or
   tombstone (§3.1.1). *)

let lookup_entry t key =
  let early = t.config.Config.early_termination in
  let resolver = t.config.Config.resolver in
  let result = ref None in
  let stop = ref false in
  let absorb e =
    (match !result with
    | None -> result := Some e
    | Some newer -> result := Some (Kv.Entry.merge resolver ~newer ~older:e));
    if early then
      match !result with
      | Some (Kv.Entry.Base _ | Kv.Entry.Tombstone) -> stop := true
      | _ -> ()
  in
  (match Memtable.get t.mem key with Some e -> absorb e | None -> ());
  let lvl = ref 0 in
  while (not !stop) && !lvl < t.pc.pt_max_levels do
    let runs =
      List.sort (fun a b -> Int.compare b.pr_id a.pr_id) t.levels.(!lvl)
    in
    List.iter
      (fun r ->
        if not !stop then
          match guard t ~lvl:!lvl (fun () -> Component.get r.pr_comp key) with
          | Some e -> absorb e
          | None -> ())
      runs;
    incr lvl
  done;
  !result

let interpret t = function
  | None -> None
  | Some (Kv.Entry.Base v) -> Some v
  | Some Kv.Entry.Tombstone -> None
  | Some (Kv.Entry.Delta ds) ->
      Kv.Entry.resolve t.config.Config.resolver ~base:None ds

let get t key =
  t.stats.gets <- t.stats.gets + 1;
  interpret t (lookup_entry t key)

let read_modify_write t key f =
  t.stats.rmws <- t.stats.rmws + 1;
  let v = interpret t (lookup_entry t key) in
  write_entry t key (Kv.Entry.Base (f v))

let insert_if_absent t key value =
  t.stats.checked_inserts <- t.stats.checked_inserts + 1;
  match interpret t (lookup_entry t key) with
  | Some _ -> false
  | None ->
      write_entry t key (Kv.Entry.Base value);
      true

(* {1 Scans} *)

let mem_pull mem ~from =
  let cursor = ref from in
  fun () ->
    match Memtable.peek_geq_lsn mem !cursor with
    | Some (k, _, _) as r ->
        cursor := k ^ "\000";
        r
    | None -> None

let scan_pull t ~lvl comp ~from =
  let it = Component.iterator ~from comp in
  fun () -> guard t ~lvl (fun () -> Sstable.Reader.iter_next_full it)

let scan t start n =
  t.stats.scans <- t.stats.scans + 1;
  let sources = ref [] in
  for lvl = t.pc.pt_max_levels - 1 downto 0 do
    List.iter
      (fun r -> sources := scan_pull t ~lvl r.pr_comp ~from:start :: !sources)
      (List.sort
         (fun a b -> Int.compare a.pr_id b.pr_id)
         t.levels.(lvl))
  done;
  (* Freshest first: the memtable shadows every run, then levels top
     down with newer ids in front (the same order [lookup_entry] uses). *)
  sources := mem_pull t.mem ~from:start :: !sources;
  let merge =
    Sstable.Merge_iter.create ~resolver:t.config.Config.resolver
      ~drop_tombstones:true
      (List.mapi (fun i pull -> (i, pull)) !sources)
  in
  let rec collect acc k =
    if k = 0 then List.rev acc
    else
      match Sstable.Merge_iter.next merge with
      | None -> List.rev acc
      | Some (key, entry, _) -> (
          match
            match entry with
            | Kv.Entry.Base v -> Some v
            | Kv.Entry.Tombstone -> None
            | Kv.Entry.Delta ds ->
                Kv.Entry.resolve t.config.Config.resolver ~base:None ds
          with
          | Some v -> collect ((key, v) :: acc) (k - 1)
          | None -> collect acc k)
  in
  collect [] n

(* {1 Maintenance} *)

let maintenance t =
  flush t;
  finish_active t;
  let fuel = ref 0 in
  let rec settle () =
    incr fuel;
    if !fuel > 100_000 then failwith "policy_tree: maintenance stuck";
    match t.policy.Compaction_policy.p_pick (view t) with
    | Some job ->
        start_job t job;
        finish_active t;
        settle ()
    | None -> ()
  in
  settle ()

(* {1 Crash and recovery} *)

let crash_and_recover ?(verify = false) t =
  let mid_compaction = t.active <> None in
  (* Roll back everything uncommitted while the allocator is still
     coherent: the in-flight compaction's builder and sealed outputs,
     a mid-flush builder, and any installed-but-uncommitted runs (a
     crash point inside the root write itself). The durable manifest is
     the authority on what must survive. *)
  (match t.active with
  | Some ac ->
      (match ac.ac_builder with
      | Some b -> Sstable.Builder.abandon b
      | None -> ());
      List.iter (fun r -> Component.free r.pr_comp) ac.ac_outputs
  | None -> ());
  (match t.flush_builder with
  | Some b -> Sstable.Builder.abandon b
  | None -> ());
  let durable = durable_ids t in
  Array.iter
    (List.iter (fun r ->
         if not (List.mem r.pr_id durable) then Component.free r.pr_comp))
    t.levels;
  Pagestore.Store.crash t.store;
  let root = Pagestore.Store.read_root t.store in
  let policy =
    match Compaction_policy.of_name t.policy.Compaction_policy.p_name with
    | Some p -> p
    | None -> t.policy
  in
  let fresh = create ~config:t.config ~pconfig:t.pc ~policy t.store in
  fresh.stats.recoveries <- t.stats.recoveries + 1;
  if mid_compaction then
    fresh.stats.recoveries_mid_compaction <-
      t.stats.recoveries_mid_compaction + 1
  else
    fresh.stats.recoveries_mid_compaction <- t.stats.recoveries_mid_compaction;
  (if String.length root >= 4 && String.sub root 0 4 = "PLSM" then begin
     let next_id, pos = Repro_util.Varint.read root 4 in
     let floor, pos = Repro_util.Varint.read root pos in
     fresh.next_id <- next_id;
     fresh.floor_lsn <- floor;
     let n, pos = Repro_util.Varint.read root pos in
     let pos = ref pos in
     for _ = 1 to n do
       let lvl, p = Repro_util.Varint.read root !pos in
       let id, p = Repro_util.Varint.read root p in
       let len, p = Repro_util.Varint.read root p in
       let blob = String.sub root p len in
       pos := p + len;
       let sst =
         match Sstable.Reader.of_meta t.store blob with
         | sst -> sst
         | exception Sstable.Sst_format.Corrupt { what; page } ->
             (* manifest metadata or index rotted: unreadable without it *)
             fresh.stats.corruptions_detected <-
               fresh.stats.corruptions_detected + 1;
             raise
               (Tree.Corruption
                  { level = level_name lvl; what; page_or_lsn = page })
       in
       let errs = if verify then Sstable.Reader.verify sst else [] in
       (* A rotted Bloom blob is derived data: build_bloom masks it by
          rebuilding from a scan. Count it, ignore it. *)
       let bloom_errs, real_errs =
         List.partition (fun (what, _) -> what = "bloom blob checksum") errs
       in
       fresh.stats.corruptions_detected <-
         fresh.stats.corruptions_detected + List.length bloom_errs;
       let comp =
         match real_errs with
         | [] ->
             let bloom =
               Component.build_bloom ~kind:t.config.Config.bloom_kind
                 ~bits_per_key:t.config.Config.bloom_bits_per_key sst
             in
             Component.of_sst ?bloom sst
         | _ :: _ ->
             (* Quarantine: mount it bloomless — good pages stay
                readable, rotted ones raise on touch (the rebuild scan
                would trip over the bad page). *)
             fresh.stats.corruptions_detected <-
               fresh.stats.corruptions_detected + List.length real_errs;
             fresh.stats.quarantined_runs <- fresh.stats.quarantined_runs + 1;
             Component.of_sst sst
       in
       if lvl < fresh.pc.pt_max_levels then
         fresh.levels.(lvl) <- { pr_id = id; pr_comp = comp } :: fresh.levels.(lvl)
       else
         failwith "policy_tree: manifest level out of range"
     done;
     Array.iteri
       (fun lvl runs -> fresh.levels.(lvl) <- level_order lvl runs)
       fresh.levels
   end);
  (* Replay the log into a fresh memtable. Every record with
     lsn < floor is durably folded into a committed level-0 run (flushes
     are atomic), so the floor filter alone prevents double-apply —
     crucially for deltas, which are not idempotent. *)
  let wal = Pagestore.Store.wal t.store in
  (match
     Pagestore.Wal.replay wal ~from_lsn:fresh.floor_lsn (fun lsn payload ->
         if lsn >= fresh.floor_lsn then
           List.iter
             (fun (key, entry) -> Memtable.write fresh.mem ~lsn key entry)
             (Tree.decode_ops payload))
   with
  | () -> ()
  | exception Pagestore.Wal.Corrupt { what; lsn } ->
      fresh.stats.corruptions_detected <- fresh.stats.corruptions_detected + 1;
      raise (Tree.Corruption { level = "WAL"; what; page_or_lsn = lsn }));
  fresh

(* {1 Scrubbing} *)

let scrub t =
  let errs = ref 0 in
  Array.iter
    (List.iter (fun r ->
         errs := !errs + List.length (Sstable.Reader.verify r.pr_comp.Component.sst)))
    t.levels;
  let _checked, wal_errs = Pagestore.Wal.verify (Pagestore.Store.wal t.store) in
  errs := !errs + List.length wal_errs;
  t.stats.corruptions_detected <- t.stats.corruptions_detected + !errs;
  (!errs, !errs = 0)

(* {1 Metrics} *)

let metrics t =
  match t.metrics with
  | Some m -> m
  | None ->
      let reg = Obs.Metrics.create () in
      let s = t.stats in
      let counter = Obs.Metrics.counter in
      counter reg "ptree.puts" ~help:"put operations" (fun () -> s.puts);
      counter reg "ptree.gets" ~help:"get operations" (fun () -> s.gets);
      counter reg "ptree.deletes" ~help:"delete operations" (fun () ->
          s.deletes);
      counter reg "ptree.deltas" ~help:"delta operations" (fun () -> s.deltas);
      counter reg "ptree.scans" ~help:"scan operations" (fun () -> s.scans);
      counter reg "ptree.rmws" ~help:"read-modify-writes" (fun () -> s.rmws);
      counter reg "ptree.checked_inserts" ~help:"insert-if-absent calls"
        (fun () -> s.checked_inserts);
      counter reg "ptree.flushes" ~help:"memtable flushes" (fun () ->
          s.flushes);
      counter reg "ptree.compactions" ~help:"policy jobs executed" (fun () ->
          s.compactions);
      counter reg "ptree.bytes_flushed" ~help:"level-0 output bytes" (fun () ->
          s.bytes_flushed);
      counter reg "ptree.bytes_compacted" ~help:"compaction input bytes"
        (fun () -> s.bytes_compacted);
      counter reg "ptree.user_bytes" ~help:"logical bytes accepted" (fun () ->
          s.user_bytes);
      counter reg "ptree.hard_stalls" ~help:"level-0 stop-threshold drains"
        (fun () -> s.hard_stalls);
      counter reg "ptree.recoveries" ~help:"crash recoveries (lifetime)"
        (fun () -> s.recoveries);
      counter reg "ptree.recoveries_mid_compaction"
        ~help:"recoveries that rolled back an in-flight compaction" (fun () ->
          s.recoveries_mid_compaction);
      counter reg "ptree.corruptions_detected" ~help:"checksum mismatches seen"
        (fun () -> s.corruptions_detected);
      counter reg "ptree.quarantined_runs"
        ~help:"corrupt runs mounted read-around at recovery" (fun () ->
          s.quarantined_runs);
      counter reg "ptree.run_bytes" ~help:"bytes across all runs" (fun () ->
          total_run_bytes t);
      counter reg "ptree.runs" ~help:"run count across all levels" (fun () ->
          Array.fold_left (fun a l -> a + List.length l) 0 t.levels);
      Obs.Metrics.gauge reg "ptree.stall_merge1_us"
        ~help:"pacing time spent flushing, µs" (fun () -> s.stall_merge1_us);
      Obs.Metrics.gauge reg "ptree.stall_merge2_us"
        ~help:"pacing time spent compacting, µs" (fun () -> s.stall_merge2_us);
      Obs.Metrics.gauge reg "ptree.stall_hard_us"
        ~help:"hard-drain time, µs" (fun () -> s.stall_hard_us);
      Obs.Metrics.gauge reg "ptree.c0_fill" ~help:"memtable fill fraction"
        (fun () ->
          float_of_int (Memtable.bytes t.mem)
          /. float_of_int (Config.c0_capacity t.config));
      Pagestore.Store.register_metrics reg t.store;
      t.metrics <- Some reg;
      reg

(* {1 Engine adapter} *)

let engine ?name t =
  let name =
    match name with
    | Some n -> n
    | None -> "policy-" ^ t.policy.Compaction_policy.p_name
  in
  {
    Kv.Kv_intf.name;
    disk = disk t;
    get = (fun k -> get t k);
    put = (fun k v -> put t k v);
    delete = (fun k -> delete t k);
    apply_delta = (fun k d -> apply_delta t k d);
    read_modify_write = (fun k f -> read_modify_write t k f);
    insert_if_absent = (fun k v -> insert_if_absent t k v);
    scan = (fun start n -> scan t start n);
    maintenance = (fun () -> maintenance t);
  }
