(** Incremental merge state machines.

    Each merge pulls from its inputs in key order and streams output pages
    through an {!Sstable.Builder}, doing at most [quota] bytes of input per
    {!step}. Because work is metered in small steps, the schedulers can
    interleave merge progress with application writes at any granularity —
    the "smooth" progress property §4.1 requires.

    Two shapes:
    - {!c0_merge}: C0 (live snowshovel cursor, or a frozen C0' snapshot)
      merged with the old C1 into a new C1. With snowshoveling the C0 side
      re-queries the live memtable on every record, so inserts landing
      ahead of the cursor join the current run (§4.2); records consumed
      from C0 are kept readable in a shadow table until the merge commits.
    - {!c12_merge}: C1' merged with the old C2 into a new C2. C2 is the
      bottom level, so tombstones are elided and orphan deltas resolve to
      base records — preserving the all-base invariant behind one-seek
      reads (§3.1.1). *)

type progress = {
  bytes_read : int;  (** input bytes consumed so far *)
  bytes_total : int;  (** current estimate of total input bytes *)
  output_bytes : int;
}

type outcome = [ `More | `Done ]

(** {1 C0 : C1 merge} *)

type c0_source =
  | Live of {
      mem : Memtable.t;
      shadow : (Kv.Entry.t * int) Memtable.Skiplist.t;
          (** consumed-but-uncommitted records (entry, newest lsn),
              readable by the tree *)
    }
  | Frozen of Memtable.t  (** C0' snapshot; discarded wholesale at the end *)

type c0_merge = {
  persist_bloom : bool;
  resolver : Kv.Entry.resolver;
  source : c0_source;
  mutable cursor : string option;  (** last key taken from C0 *)
  c1 : Component.t option;  (** old C1 being rewritten (input) *)
  c1_iter : Sstable.Reader.iter option;
  mutable c1_peek : (string * Kv.Entry.t * int) option;
  c1_total : int;
  builder : Sstable.Builder.t;
  bloom : Bloom.t option;
  run_cap : int;  (** end the run early once output exceeds this *)
  denom : int;  (** |C0'| + |C1| at run start: the gear denominator *)
  mutable mem_bytes_read : int;
  mutable c1_bytes_read : int;
  tr : Obs.Trace.t;  (** the store's tracer, captured at creation *)
}

let record_bytes key entry =
  String.length key + Kv.Entry.encoded_size entry

let peek_c0 m =
  let excl = match m.cursor with None -> "" | Some k -> k ^ "\000" in
  match m.source with
  | Live { mem; _ } -> Memtable.peek_geq_lsn mem excl
  | Frozen mem -> Memtable.peek_geq_lsn mem excl

let take_c0 m (key, entry, lsn) =
  m.mem_bytes_read <- m.mem_bytes_read + record_bytes key entry;
  match m.source with
  | Live { mem; shadow } ->
      ignore (Memtable.remove mem key);
      Memtable.Skiplist.set shadow key (entry, lsn)
  | Frozen _ -> ()

let advance_c1 m =
  match m.c1_iter with
  | None -> ()
  | Some it ->
      (match m.c1_peek with
      | Some (k, e, _) -> m.c1_bytes_read <- m.c1_bytes_read + record_bytes k e
      | None -> ());
      m.c1_peek <- Sstable.Reader.iter_next_full it

let create_c0_merge ~config ~store ~source ~c1 ~run_cap ~expected_items =
  let c1_iter = Option.map Component.iterator c1 in
  let c1_peek =
    match c1_iter with Some it -> Sstable.Reader.iter_next_full it | None -> None
  in
  let c1_total = match c1 with Some c -> Component.data_bytes c | None -> 0 in
  let source_bytes =
    match source with
    | Live { mem; _ } -> Memtable.bytes mem
    | Frozen mem -> Memtable.bytes mem
  in
  let bloom =
    if Config.bloom_enabled config then
      Some
        (Bloom.create ~kind:config.Config.bloom_kind
           ~bits_per_item:config.Config.bloom_bits_per_key
           ~expected_items ())
    else None
  in
  let tr = Pagestore.Store.trace store in
  if Obs.Trace.enabled tr then
    Obs.Trace.instant tr ~cat:"merge" ~name:"merge1.start"
      ~args:
        [ ("source", Obs.Trace.S (match source with Live _ -> "live" | Frozen _ -> "frozen"));
          ("c0_bytes", Obs.Trace.I source_bytes);
          ("c1_bytes", Obs.Trace.I c1_total);
          ("run_cap", Obs.Trace.I run_cap) ];
  {
    persist_bloom = config.Config.persist_bloom;
    resolver = config.Config.resolver;
    source;
    cursor = None;
    c1;
    c1_iter;
    c1_peek;
    c1_total;
    builder =
      Sstable.Builder.create ~format:config.Config.page_format
        ~extent_pages:config.Config.extent_pages store;
    bloom;
    run_cap;
    denom = source_bytes + c1_total;
    mem_bytes_read = 0;
    c1_bytes_read = 0;
    tr;
  }

(* The snowshovel cursor is "the lowest key that comes after the last
   value written" (§4.2) — it tracks the last key *emitted*, from either
   input, so a fresh C0 insert of an already-emitted key waits for the
   next run instead of breaking output order. *)
let emit m key entry ~lsn =
  m.cursor <- Some key;
  Sstable.Builder.add ~lsn m.builder key entry;
  match m.bloom with Some b -> Bloom.add b key | None -> ()

(* One merge element; returns bytes of input consumed, or None when the
   run is over. *)
let step_one_c0 m =
  let c0_next = peek_c0 m in
  match (c0_next, m.c1_peek) with
  | None, None -> None
  | Some (k, e, l), None ->
      if Sstable.Builder.data_bytes m.builder >= m.run_cap then None
      else begin
        take_c0 m (k, e, l);
        emit m k e ~lsn:l;
        Some (record_bytes k e)
      end
  | None, Some (k, e, l) ->
      advance_c1 m;
      emit m k e ~lsn:l;
      Some (record_bytes k e)
  | Some (k0, e0, l0), Some (k1, e1, l1) ->
      let c = String.compare k0 k1 in
      if c < 0 then begin
        take_c0 m (k0, e0, l0);
        emit m k0 e0 ~lsn:l0;
        Some (record_bytes k0 e0)
      end
      else if c > 0 then begin
        advance_c1 m;
        emit m k1 e1 ~lsn:l1;
        Some (record_bytes k1 e1)
      end
      else begin
        take_c0 m (k0, e0, l0);
        advance_c1 m;
        emit m k0 (Kv.Entry.merge m.resolver ~newer:e0 ~older:e1)
          ~lsn:(max l0 l1);
        Some (record_bytes k0 e0 + record_bytes k1 e1)
      end

(** [step_c0 m ~quota] consumes up to [quota] input bytes. *)
let step_c0 m ~quota : outcome =
  let traced = Obs.Trace.enabled m.tr in
  let ts = if traced then Obs.Trace.now_us m.tr else 0.0 in
  let before = if traced then m.mem_bytes_read + m.c1_bytes_read else 0 in
  let rec go budget =
    if budget <= 0 then `More
    else
      match step_one_c0 m with
      | None -> `Done
      | Some consumed -> go (budget - consumed)
  in
  let r = go quota in
  if traced then
    Obs.Trace.complete m.tr ~cat:"merge" ~name:"merge1.quantum" ~ts_us:ts
      ~dur_us:(Obs.Trace.now_us m.tr -. ts)
      ~args:
        [ ("quota", Obs.Trace.I quota);
          ("consumed", Obs.Trace.I (m.mem_bytes_read + m.c1_bytes_read - before));
          ("done", Obs.Trace.B (r = `Done)) ];
  r

let c0_progress m =
  let read = m.mem_bytes_read + m.c1_bytes_read in
  let remaining_mem =
    match m.source with
    | Live { mem; _ } -> Memtable.bytes mem
    | Frozen mem -> max 0 (Memtable.bytes mem - m.mem_bytes_read)
  in
  let total =
    match m.source with
    | Live _ -> read + remaining_mem + max 0 (m.c1_total - m.c1_bytes_read)
    | Frozen _ -> max m.denom read
  in
  {
    bytes_read = read;
    bytes_total = max 1 total;
    output_bytes = Sstable.Builder.data_bytes m.builder;
  }

(** inprogress_i = bytes read by merge_i / (|C'_{i-1}| + |C_i|)  (§4.1) *)
let c0_inprogress m =
  let p = c0_progress m in
  min 1.0 (float_of_int p.bytes_read /. float_of_int p.bytes_total)

(** [finish_c0 m ~store ~timestamp] seals the output component. The caller
    swaps it in, clears the shadow, and frees the old C1. *)
let bloom_blob_of ~persist bloom =
  match (persist, bloom) with
  | true, Some b -> Bloom.to_string b
  | _ -> ""

let finish_c0 m ~timestamp =
  if Obs.Trace.enabled m.tr then
    Obs.Trace.instant m.tr ~cat:"merge" ~name:"merge1.commit"
      ~args:
        [ ("output_bytes", Obs.Trace.I (Sstable.Builder.data_bytes m.builder));
          ("input_bytes", Obs.Trace.I (m.mem_bytes_read + m.c1_bytes_read)) ];
  let footer =
    Sstable.Builder.finish m.builder ~timestamp
      ~bloom_blob:(bloom_blob_of ~persist:m.persist_bloom m.bloom)
  in
  (footer, Sstable.Builder.index_blob m.builder, m.bloom)

let abandon_c0 m =
  if Obs.Trace.enabled m.tr then
    Obs.Trace.instant m.tr ~cat:"merge" ~name:"merge1.abort" ~args:[];
  Sstable.Builder.abandon m.builder

let c0_shadow m =
  match m.source with Live { shadow; _ } -> Some shadow | Frozen _ -> None

let c0_old_c1 m = m.c1

let c0_source_kind m =
  match m.source with Live _ -> `Live | Frozen _ -> `Frozen

let c0_frozen_mem m =
  match m.source with Frozen mem -> Some mem | Live _ -> None

(** {1 C1' : C2 merge} *)

type c12_merge = {
  persist_bloom12 : bool;
  resolver12 : Kv.Entry.resolver;
  c1p : Component.t;
  c2 : Component.t option;
  merge : Sstable.Merge_iter.t;
  builder12 : Sstable.Builder.t;
  bloom12 : Bloom.t option;
  total12 : int;
  mutable read12 : int;
  tr12 : Obs.Trace.t;  (** the store's tracer, captured at creation *)
}

let create_c12_merge ~config ~store ~c1_prime ~c2 =
  let count src (k, e, l) =
    src := !src + record_bytes k e;
    (k, e, l)
  in
  let read_counter = ref 0 in
  let wrap it () =
    match Sstable.Reader.iter_next_full it with
    | None -> None
    | Some r -> Some (count read_counter r)
  in
  let inputs =
    (0, wrap (Component.iterator c1_prime))
    ::
    (match c2 with Some c -> [ (1, wrap (Component.iterator c)) ] | None -> [])
  in
  let merge =
    Sstable.Merge_iter.create ~resolver:config.Config.resolver
      ~drop_tombstones:true inputs
  in
  let expected =
    Component.record_count c1_prime
    + (match c2 with Some c -> Component.record_count c | None -> 0)
  in
  let bloom12 =
    if Config.bloom_enabled config then
      Some
        (Bloom.create ~kind:config.Config.bloom_kind
           ~bits_per_item:config.Config.bloom_bits_per_key
           ~expected_items:(max 1 expected) ())
    else None
  in
  let tr12 = Pagestore.Store.trace store in
  let total12 =
    Component.data_bytes c1_prime
    + match c2 with Some c -> Component.data_bytes c | None -> 0
  in
  if Obs.Trace.enabled tr12 then
    Obs.Trace.instant tr12 ~cat:"merge" ~name:"merge2.start"
      ~args:
        [ ("c1p_bytes", Obs.Trace.I (Component.data_bytes c1_prime));
          ("c2_bytes",
           Obs.Trace.I
             (match c2 with Some c -> Component.data_bytes c | None -> 0)) ];
  let m =
    {
      persist_bloom12 = config.Config.persist_bloom;
      resolver12 = config.Config.resolver;
      c1p = c1_prime;
      c2;
      merge;
      builder12 =
        Sstable.Builder.create ~format:config.Config.page_format
          ~extent_pages:config.Config.extent_pages store;
      bloom12;
      total12;
      read12 = 0;
      tr12;
    }
  in
  (m, read_counter)

type c12 = { m12 : c12_merge; counter : int ref }

let create_c12 ~config ~store ~c1_prime ~c2 =
  let m, counter = create_c12_merge ~config ~store ~c1_prime ~c2 in
  { m12 = m; counter }

(** [step_c12 t ~quota] advances the bottom merge by up to [quota] input
    bytes. *)
let step_c12 t ~quota : outcome =
  let m = t.m12 in
  let traced = Obs.Trace.enabled m.tr12 in
  let ts = if traced then Obs.Trace.now_us m.tr12 else 0.0 in
  let start = !(t.counter) in
  let rec go () =
    if !(t.counter) - start >= quota then begin
      m.read12 <- !(t.counter);
      `More
    end
    else
      match Sstable.Merge_iter.next m.merge with
      | None ->
          m.read12 <- !(t.counter);
          `Done
      | Some (k, e, lsn) ->
          Sstable.Builder.add ~lsn m.builder12 k e;
          (match m.bloom12 with Some b -> Bloom.add b k | None -> ());
          go ()
  in
  let r = go () in
  if traced then
    Obs.Trace.complete m.tr12 ~cat:"merge" ~name:"merge2.quantum" ~ts_us:ts
      ~dur_us:(Obs.Trace.now_us m.tr12 -. ts)
      ~args:
        [ ("quota", Obs.Trace.I quota);
          ("consumed", Obs.Trace.I (!(t.counter) - start));
          ("done", Obs.Trace.B (r = `Done)) ];
  r

let c12_inprogress t =
  let m = t.m12 in
  if m.total12 = 0 then 1.0
  else min 1.0 (float_of_int m.read12 /. float_of_int m.total12)

let c12_progress t =
  let m = t.m12 in
  {
    bytes_read = m.read12;
    bytes_total = max 1 m.total12;
    output_bytes = Sstable.Builder.data_bytes m.builder12;
  }

let finish_c12 t ~timestamp =
  let m = t.m12 in
  if Obs.Trace.enabled m.tr12 then
    Obs.Trace.instant m.tr12 ~cat:"merge" ~name:"merge2.commit"
      ~args:
        [ ("output_bytes", Obs.Trace.I (Sstable.Builder.data_bytes m.builder12));
          ("input_bytes", Obs.Trace.I m.read12) ];
  let footer =
    Sstable.Builder.finish m.builder12 ~timestamp
      ~bloom_blob:(bloom_blob_of ~persist:m.persist_bloom12 m.bloom12)
  in
  (footer, Sstable.Builder.index_blob m.builder12, m.bloom12)

let abandon_c12 t =
  if Obs.Trace.enabled t.m12.tr12 then
    Obs.Trace.instant t.m12.tr12 ~cat:"merge" ~name:"merge2.abort" ~args:[];
  Sstable.Builder.abandon t.m12.builder12

let c12_inputs t = (t.m12.c1p, t.m12.c2)
