(** Log-shipping replication over the simulated network (§4.4.2).

    A {!follower} is a full bLSM tree on its own store that replicates
    from a primary by exchanging {!Repl_msg} frames over {!Simnet} —
    never by touching the primary's tree or log directly (lint rule
    A002 enforces the layering). A supervisor drives catch-up and
    snapshot resync through a retry loop with per-request timeouts and
    capped exponential backoff with seeded jitter; every applied record
    is LSN-guarded, so drops, duplicates and retries apply exactly once.

    Epoch fencing: {!promote} raises the epoch on failover; a deposed
    primary {!demote}d with its old epoch is answered [Fenced] on first
    contact and must adopt the new epoch and bootstrap — late traffic
    can never double-apply (no split-brain).

    Bounded staleness: {!read}/{!user_scan} shed with [`Too_stale] when
    known lag exceeds [Config.repl.max_lag_records] or the primary has
    not been heard from within [staleness_lease_us]. *)

type counters = {
  mutable rpcs : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable unreachable : int;  (** rpc gave up after max_attempts *)
  mutable fenced_seen : int;  (** own requests rejected as stale-epoch *)
  mutable batches_applied : int;
  mutable records_applied : int;
  mutable duplicates_skipped : int;  (** LSN guard hits: exactly-once *)
  mutable resyncs : int;
  mutable snapshot_restarts : int;
  mutable stale_sheds : int;  (** reads refused with [`Too_stale] *)
  mutable reads_served : int;
}

type follower

(** The key under which the follower persists its replication position
    in its own tree. Reserved "\000" prefix: sorts before every user
    key and never appears in scans/cursors, which start at "\001". *)
val position_key : string

(** Companion reserved key persisting the follower's current epoch. *)
val epoch_key : string

(** [follower ?config ~net ~name ~peer store] — an empty follower on
    [store], reachable on the simnet as [name], replicating from the
    endpoint named [peer]. *)
val follower :
  ?config:Config.t ->
  net:Simnet.t ->
  name:string ->
  peer:string ->
  Pagestore.Store.t ->
  follower

val tree : follower -> Tree.t
val applied_lsn : follower -> int
val epoch : follower -> int
val counters : follower -> counters

(** Known replication lag in records (frozen while partitioned — hence
    the staleness lease). *)
val lag : follower -> int

(** [sync f] converges the follower: incremental WAL catch-up when the
    primary's log still covers its position, snapshot bootstrap after
    truncation or fencing. [`Applied n] — [n] new records applied;
    [`Resynced] — full snapshot installed; [`Unreachable] — the retry
    budget ran dry before convergence (safe to call again later). *)
val sync : follower -> [ `Applied of int | `Resynced | `Unreachable ]

(** True when the follower would shed reads right now. *)
val is_stale : follower -> bool

(** Bounded-staleness point read. *)
val read : follower -> string -> [ `Ok of string option | `Too_stale ]

(** Bounded-staleness range read over user keys (start clamped to
    "\001": reserved bookkeeping keys never leak). *)
val user_scan :
  follower -> string -> int -> [ `Ok of (string * string) list | `Too_stale ]

(** [promote f] — failover: raise and persist the epoch, return the
    tree to serve as the new primary. [f] must not be used afterwards. *)
val promote : follower -> Tree.t

(** [demote ?config ~net ~name ~peer ~epoch tree] — wrap a deposed
    primary's tree as a follower of [peer], still believing [epoch]
    (its deposed one): the first exchange is observably [Fenced] and
    forces epoch adoption plus snapshot bootstrap. *)
val demote :
  ?config:Config.t ->
  net:Simnet.t ->
  name:string ->
  peer:string ->
  epoch:int ->
  Tree.t ->
  follower

(** Power-fail the follower's store and recover. Position and epoch are
    ordinary records in the follower's tree — each applied record
    carries them in the same atomic batch — so the recovered position is
    exactly consistent with the recovered data and the next {!sync}
    neither loses nor double-applies. *)
val crash_and_recover : follower -> follower

(** The exact [(nominal, jittered)] delays a supervisor with this
    policy and seed would sleep across [attempts] retries. Pure — used
    by the QCheck property pinning determinism, monotonicity up to the
    cap, and the jitter band. *)
val backoff_schedule :
  base_us:int ->
  cap_us:int ->
  jitter:float ->
  seed:int ->
  attempts:int ->
  (int * int) list

(** Register the [repl.follower.*] metric family; [get] is a thunk so
    the registry tracks the current follower value across
    {!crash_and_recover}/{!demote} replacements. *)
val register_metrics : Obs.Metrics.t -> (unit -> follower) -> unit
