(** Log-shipping replication over the logical log (§4.4.2).

    A follower is a full bLSM tree on its own store that tails the
    primary's WAL, applying each record exactly once. Followers serve
    reads while replicating and become writable on failover. The
    replication position is persisted as an ordinary record in the
    follower's tree (under a reserved ["\000"]-prefixed key), so it
    recovers exactly in step with the applied data.

    [catch_up] is atomic with respect to simulated crashes (the
    simulation is single-threaded); crash between calls at will. *)

type follower

(** [follower ?config store] creates an empty follower on [store]. *)
val follower : ?config:Config.t -> Pagestore.Store.t -> follower

(** The follower's tree: read from it, or write to it after failover. *)
val tree : follower -> Tree.t

(** Newest primary LSN applied. *)
val applied_lsn : follower -> int

(** Primary records not yet applied. *)
val lag : follower -> primary:Tree.t -> int

(** [catch_up f ~primary] tails the primary's WAL from the follower's
    position: [`Applied n], or [`Snapshot_needed] when the primary has
    truncated past the follower's position (fell too far behind) — call
    {!resync}. *)
val catch_up : follower -> primary:Tree.t -> [ `Applied of int | `Snapshot_needed ]

(** [resync f ~primary] full-state bootstrap through a cursor; the
    primary must be quiescent during the copy. *)
val resync : follower -> primary:Tree.t -> unit

(** [sync f ~primary]: catch up whatever the starting position —
    incremental tailing when the primary's log still covers the
    follower, full {!resync} (a cursor scan of the primary) otherwise. *)
val sync :
  follower -> primary:Tree.t -> [ `Applied of int | `Resynced ]

(** Power-fail the follower and recover it, position included. *)
val crash_and_recover : follower -> follower
