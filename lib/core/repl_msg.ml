(** Wire format for the replication protocol.

    Every message carries the sender's epoch first (fencing is checked
    before anything else), then a one-byte tag and varint/length-prefixed
    fields. Decoding is total: any truncated or unknown message decodes
    to [None] and is dropped by the receiver — a faulty network may
    deliver anything, and a garbage frame must never kill a node. *)

type req =
  | Probe  (** learn the primary's log bounds *)
  | Wal_batch of { from_lsn : int; max_records : int }
  | Snapshot_begin  (** start a full-state resync session *)
  | Snapshot_chunk of { session : int; from_row : int; max_rows : int }
  | Snapshot_done of { session : int }

type resp =
  | Fenced of { epoch : int }
      (** request carried a stale epoch; [epoch] is the server's *)
  | Status of { next_lsn : int; truncated_to : int }
  | Batch of { records : (int * string) list; next_lsn : int }
      (** [(lsn, payload)] in LSN order; [next_lsn] is the log head *)
  | Truncated of { truncated_to : int }
      (** the log no longer covers [from_lsn]; resync *)
  | Snapshot_meta of { session : int; snapshot_lsn : int; total_rows : int }
  | Chunk of { session : int; rows : (string * string) list; last : bool }
  | Snapshot_gone  (** unknown/expired session; restart the resync *)
  | Ack

(* ------------------------------------------------------------------ *)
(* Encoding *)

let put_string b s =
  Repro_util.Varint.write b (String.length s);
  Buffer.add_string b s

let encode_req ~epoch (r : req) =
  let b = Buffer.create 32 in
  Repro_util.Varint.write b epoch;
  (match r with
  | Probe -> Buffer.add_char b 'p'
  | Wal_batch { from_lsn; max_records } ->
      Buffer.add_char b 'w';
      Repro_util.Varint.write b from_lsn;
      Repro_util.Varint.write b max_records
  | Snapshot_begin -> Buffer.add_char b 'b'
  | Snapshot_chunk { session; from_row; max_rows } ->
      Buffer.add_char b 'c';
      Repro_util.Varint.write b session;
      Repro_util.Varint.write b from_row;
      Repro_util.Varint.write b max_rows
  | Snapshot_done { session } ->
      Buffer.add_char b 'd';
      Repro_util.Varint.write b session);
  Buffer.contents b

let encode_resp ~epoch (r : resp) =
  let b = Buffer.create 64 in
  Repro_util.Varint.write b epoch;
  (match r with
  | Fenced { epoch = e } ->
      Buffer.add_char b 'F';
      Repro_util.Varint.write b e
  | Status { next_lsn; truncated_to } ->
      Buffer.add_char b 'S';
      Repro_util.Varint.write b next_lsn;
      Repro_util.Varint.write b truncated_to
  | Batch { records; next_lsn } ->
      Buffer.add_char b 'B';
      Repro_util.Varint.write b next_lsn;
      Repro_util.Varint.write b (List.length records);
      List.iter
        (fun (lsn, payload) ->
          Repro_util.Varint.write b lsn;
          put_string b payload)
        records
  | Truncated { truncated_to } ->
      Buffer.add_char b 'T';
      Repro_util.Varint.write b truncated_to
  | Snapshot_meta { session; snapshot_lsn; total_rows } ->
      Buffer.add_char b 'M';
      Repro_util.Varint.write b session;
      Repro_util.Varint.write b snapshot_lsn;
      Repro_util.Varint.write b total_rows
  | Chunk { session; rows; last } ->
      Buffer.add_char b 'C';
      Repro_util.Varint.write b session;
      Buffer.add_char b (if last then '1' else '0');
      Repro_util.Varint.write b (List.length rows);
      List.iter
        (fun (k, v) ->
          put_string b k;
          put_string b v)
        rows
  | Snapshot_gone -> Buffer.add_char b 'G'
  | Ack -> Buffer.add_char b 'A');
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding: total, returns None on anything malformed. Varint.read
   raises Invalid_argument on truncation — caught here, at the frame
   boundary, and nowhere deeper. *)

type cursor = { s : string; mutable pos : int }

let rd_int c =
  let v, next = Repro_util.Varint.read c.s c.pos in
  c.pos <- next;
  v

let rd_string c =
  let n = rd_int c in
  if n < 0 || c.pos + n > String.length c.s then
    invalid_arg "Repl_msg: bad string length";
  let v = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  v

let rd_char c =
  if c.pos >= String.length c.s then invalid_arg "Repl_msg: truncated";
  let v = c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let rd_list c f =
  let n = rd_int c in
  if n < 0 || n > String.length c.s then invalid_arg "Repl_msg: bad count";
  List.init n (fun _ -> f c)

let finished c = c.pos = String.length c.s

let decode_req (s : string) : (int * req) option =
  let c = { s; pos = 0 } in
  match
    let epoch = rd_int c in
    let r =
      match rd_char c with
      | 'p' -> Probe
      | 'w' ->
          let from_lsn = rd_int c in
          let max_records = rd_int c in
          Wal_batch { from_lsn; max_records }
      | 'b' -> Snapshot_begin
      | 'c' ->
          let session = rd_int c in
          let from_row = rd_int c in
          let max_rows = rd_int c in
          Snapshot_chunk { session; from_row; max_rows }
      | 'd' -> Snapshot_done { session = rd_int c }
      | _ -> invalid_arg "Repl_msg: unknown request tag"
    in
    if finished c then Some (epoch, r) else None
  with
  | v -> v
  | exception Invalid_argument _ -> None

let decode_resp (s : string) : (int * resp) option =
  let c = { s; pos = 0 } in
  match
    let epoch = rd_int c in
    let r =
      match rd_char c with
      | 'F' -> Fenced { epoch = rd_int c }
      | 'S' ->
          let next_lsn = rd_int c in
          let truncated_to = rd_int c in
          Status { next_lsn; truncated_to }
      | 'B' ->
          let next_lsn = rd_int c in
          let records =
            rd_list c (fun c ->
                let lsn = rd_int c in
                let payload = rd_string c in
                (lsn, payload))
          in
          Batch { records; next_lsn }
      | 'T' -> Truncated { truncated_to = rd_int c }
      | 'M' ->
          let session = rd_int c in
          let snapshot_lsn = rd_int c in
          let total_rows = rd_int c in
          Snapshot_meta { session; snapshot_lsn; total_rows }
      | 'C' ->
          let session = rd_int c in
          let last =
            match rd_char c with
            | '1' -> true
            | '0' -> false
            | _ -> invalid_arg "Repl_msg: bad last flag"
          in
          let rows =
            rd_list c (fun c ->
                let k = rd_string c in
                let v = rd_string c in
                (k, v))
          in
          Chunk { session; rows; last }
      | 'G' -> Snapshot_gone
      | 'A' -> Ack
      | _ -> invalid_arg "Repl_msg: unknown response tag"
    in
    if finished c then Some (epoch, r) else None
  with
  | v -> v
  | exception Invalid_argument _ -> None
