(** Policy-driven multi-level LSM engine.

    The host for {!Compaction_policy}: a memtable + WAL in front of an
    array of levels of {!Component} runs (Bloom filters, fence pointers,
    V2 pages — the shared read stack), with *victim selection* delegated
    entirely to the policy and everything else shared so the four
    compaction disciplines differ only in the one decision the design
    space varies.

    Pacing reuses the spring-and-gear controllers from {!Scheduler}: a
    {!Scheduler.spring_quota} deadline controller on the memtable fill
    band drains compaction debt before C0 fills, and level-0 pressure
    beyond the stop threshold triggers a hard drain — so every policy
    gets the same bounded-latency treatment and the same
    merge1/merge2/hard stall attribution ({!Tree.stall_breakdown}) that
    feeds {!Obs.Episodes} via {!on_stall}.

    Durability matches the other engines: logical WAL + force-written
    manifest root. A flush builds one level-0 run, commits the manifest
    (with the WAL floor it makes durable), then truncates the log;
    compactions are pure reorganizations and never touch the WAL, and an
    interrupted one is rolled back wholesale at recovery. Corrupt runs
    found at recovery are quarantined (reads of rotted pages raise
    {!Tree.Corruption}); mid-log WAL rot is fatal, torn tails are
    truncated — never a wrong answer. *)

(** Shape knobs the policy sees ({!Compaction_policy.view}):
    [pt_l0_trigger]/[pt_l0_stop] level-0 run-count thresholds (urgent /
    hard-stall), [pt_fanout] the size ratio and tiering width T,
    [pt_base_bytes] the level-1 byte target, [pt_file_bytes] output
    split granularity for range-partitioned policies, [pt_max_levels]
    the level count. *)
type pconfig = {
  pt_l0_trigger : int;
  pt_l0_stop : int;
  pt_fanout : float;
  pt_base_bytes : int;
  pt_file_bytes : int;
  pt_max_levels : int;
}

(** Trigger 4, stop 8, fanout 4, base 256 KiB, 64 KiB files, 6 levels. *)
val default_pconfig : pconfig

type stats = {
  mutable flushes : int;
  mutable compactions : int;
  mutable bytes_flushed : int;  (** level-0 run output bytes *)
  mutable bytes_compacted : int;  (** lifetime compaction input bytes *)
  mutable user_bytes : int;  (** logical key+payload bytes accepted *)
  mutable hard_stalls : int;
  mutable recoveries : int;
  mutable recoveries_mid_compaction : int;
      (** recoveries that rolled back an in-flight compaction — the
          crash-during-merge repro predicate *)
  mutable corruptions_detected : int;
  mutable quarantined_runs : int;
  mutable puts : int;
  mutable gets : int;
  mutable deletes : int;
  mutable deltas : int;
  mutable scans : int;
  mutable rmws : int;
  mutable checked_inserts : int;
  mutable stall_merge1_us : float;  (** pacing time spent flushing *)
  mutable stall_merge2_us : float;  (** pacing time spent compacting *)
  mutable stall_hard_us : float;  (** level-0 hard-drain time *)
}

type t

(** [create ~policy store] opens an empty tree. [config] supplies the
    shared engine knobs (C0 budget, watermarks, Bloom layout, page
    format, resolver, seed); [pconfig] the level-shape knobs. *)
val create :
  ?config:Config.t -> ?pconfig:pconfig -> policy:Compaction_policy.t ->
  Pagestore.Store.t -> t

(* The constructor-argument accessors mirror {!Tree}'s surface; kept
   exported for embedders even while only [stats] has external callers. *)
val config : t -> Config.t [@@lint.allow "U001"]
val pconfig : t -> pconfig [@@lint.allow "U001"]
val policy : t -> Compaction_policy.t [@@lint.allow "U001"]
val store : t -> Pagestore.Store.t [@@lint.allow "U001"]
val disk : t -> Simdisk.Disk.t [@@lint.allow "U001"]
val stats : t -> stats

val put : t -> string -> string -> unit
val delete : t -> string -> unit
val apply_delta : t -> string -> string -> unit
val get : t -> string -> string option
val read_modify_write : t -> string -> (string option -> string) -> unit
val insert_if_absent : t -> string -> string -> bool
val scan : t -> string -> int -> (string * string) list

(** [write_batch t ops] applies [ops] under one WAL record: all-or-
    nothing across crashes. *)
val write_batch : t -> (string * Kv.Entry.t) list -> unit

(** Force the memtable into a level-0 run (commits manifest, truncates
    the WAL). *)
val flush : t -> unit

(** Flush, then run policy picks to fixpoint: afterwards
    {!check_invariant} must hold. *)
val maintenance : t -> unit

(** Power-fail the store and reopen from manifest + WAL replay. The
    returned tree is fresh (stats zeroed except the recovery counters,
    which accumulate across generations); an in-flight compaction is
    rolled back. [verify] checksums every run page at mount; corrupt
    runs are quarantined. May raise {!Tree.Corruption}. *)
val crash_and_recover : ?verify:bool -> t -> t

(** [(checksum errors, clean)] over every run page, Bloom blob and the
    WAL. *)
val scrub : t -> int * bool

(** Stall attribution of the last write, tiling its pacing window —
    same contract as {!Tree.last_stall}. *)
val last_stall : t -> Tree.stall_breakdown

(** Observer called once per pacing decision (stall-episode detectors);
    same hook {!Tree.on_stall} exposes, kept for observatory parity. *)
val on_stall : t -> (Tree.stall_breakdown -> unit) -> unit
  [@@lint.allow "U001"]

(** [ptree.*] counters plus the store stack; built once and cached. *)
val metrics : t -> Obs.Metrics.t

(** Metadata snapshot the policy decides over — the input for writing
    custom policies against {!Compaction_policy}. *)
val view : t -> Compaction_policy.view [@@lint.allow "U001"]

(** The policy's structural invariant at the current shape
    ([p_check (view t)]). *)
val check_invariant : t -> string option

type level_info = { li_level : int; li_runs : int; li_bytes : int }

(* level shape for reports; mirrors {!Partitioned.levels} *)
val levels : t -> level_info list [@@lint.allow "U001"]

(** Run bytes across all levels (space-amplification numerator). *)
val total_run_bytes : t -> int

(** [engine t] adapts the tree to the generic KV surface. *)
val engine : ?name:string -> t -> Kv.Kv_intf.engine
