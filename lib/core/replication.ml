(** Log-shipping replication over the logical log.

    §4.4.2: "The use of a logical log for LSM-Tree recovery is fairly
    common, and can be used to support ACID transactions, database
    replication and so on" — indeed bLSM's implementation substrate, Rose,
    was built as a log-structured *replication* target, applying a
    primary's logical log at high throughput.

    A {!follower} is a full bLSM tree on its own store that tails the
    primary's WAL: {!catch_up} applies every record past the follower's
    high-water LSN, exactly once. If the primary has truncated past the
    follower's position (merges made old records redundant on the
    primary; followers that fall too far behind cannot tail anymore),
    {!catch_up} reports [`Snapshot_needed] and {!resync} performs a full
    state copy through a cursor — the standard bootstrap path.

    The follower is an ordinary tree: it can serve reads while following
    and simply starts accepting writes on failover. *)

type follower = {
  tree : Tree.t;
  mutable applied_lsn : int;  (** newest primary LSN applied *)
}

(* The follower persists its replication position as an ordinary record
   in its own tree (the mysql.gtid_executed pattern): it then rides the
   follower's WAL and recovers exactly in step with the applied data.
   The "\x00" prefix is reserved; user keys sort after it. *)
let position_key = "\000replication.applied_lsn"

let persist_position f =
  Tree.put f.tree position_key (string_of_int f.applied_lsn)

(** [follower ?config store] creates an empty follower on [store]. *)
let follower ?config store = { tree = Tree.create ?config store; applied_lsn = 0 }

let tree f = f.tree
let applied_lsn f = f.applied_lsn

(** Records the primary has durably logged and the follower has not yet
    applied. *)
let lag f ~primary =
  let wal = Pagestore.Store.wal (Tree.store primary) in
  max 0 (Pagestore.Wal.next_lsn wal - 1 - f.applied_lsn)

(** [catch_up f ~primary] tails the primary's WAL from the follower's
    position. Returns [`Applied n] ([n] fresh records applied) or
    [`Snapshot_needed] when the primary has truncated past the
    follower's position — call {!resync}.

    Each primary record is applied as ONE follower batch that also
    carries the updated position, so record application and position
    advance are atomic in the follower's log. Applying them separately
    (data ops, then position once at the end) loses exactly-once: a
    follower crash mid-catch-up recovers the applied data but the old
    position, and the next catch_up re-applies those records —
    idempotent for base writes, wrong for deltas, which append twice.
    The DST harness caught this (test/repros/). *)
let catch_up f ~primary =
  let wal = Pagestore.Store.wal (Tree.store primary) in
  if Pagestore.Wal.truncated_to wal > f.applied_lsn + 1 then `Snapshot_needed
  else begin
    let applied = ref 0 in
    Pagestore.Wal.replay wal ~from_lsn:(f.applied_lsn + 1) (fun lsn payload ->
        if lsn > f.applied_lsn then begin
          Tree.write_batch f.tree
            (Tree.decode_ops payload
            @ [ (position_key, Kv.Entry.Base (string_of_int lsn)) ]);
          f.applied_lsn <- lsn;
          incr applied
        end);
    `Applied !applied
  end

(** [resync f ~primary] full-state bootstrap: streams the primary's
    merged state through a cursor into the follower, then records the
    primary's log position so subsequent {!catch_up} calls tail
    incrementally. The primary must be quiescent for the copy (single-
    writer discipline). *)
let resync f ~primary =
  let wal = Pagestore.Store.wal (Tree.store primary) in
  let snapshot_lsn = Pagestore.Wal.next_lsn wal - 1 in
  let module SS = Set.Make (String) in
  let live = ref SS.empty in
  let c = Tree.cursor primary in
  let rec copy () =
    match Tree.cursor_next c with
    | None -> ()
    | Some (k, v) ->
        live := SS.add k !live;
        Tree.put f.tree k v;
        copy ()
  in
  copy ();
  (* Copy-in alone is not a state transfer: keys the primary deleted
     while the follower was out of log range survive on the follower.
     Sweep them out (collect first — no deleting under a live cursor).
     The DST harness caught this (test/repros/). *)
  let fc = Tree.cursor ~from:"\001" f.tree in
  let rec stale acc =
    match Tree.cursor_next fc with
    | None -> List.rev acc
    | Some (k, _) -> stale (if SS.mem k !live then acc else k :: acc)
  in
  List.iter (Tree.delete f.tree) (stale []);
  f.applied_lsn <- snapshot_lsn;
  persist_position f

(** [sync f ~primary] brings the follower fully up to date whatever its
    starting position: incremental tailing when the primary's log still
    covers it, full {!resync} bootstrap when truncation has outrun it.
    Returns what happened so callers can account for the cursor scan a
    resync performs on the primary. *)
let sync f ~primary =
  match catch_up f ~primary with
  | `Applied n -> `Applied n
  | `Snapshot_needed ->
      resync f ~primary;
      `Resynced

(** [crash_and_recover f] power-fails the follower and recovers it. The
    replication position rides the follower's own durability machinery
    (it is a record in the tree), so the recovered position is exactly
    consistent with the recovered data: the next {!catch_up} resumes
    without loss or double-application. *)
let crash_and_recover f =
  let tree = Tree.crash_and_recover f.tree in
  let applied_lsn =
    match Tree.get tree position_key with
    | Some s -> ( match int_of_string_opt s with Some v -> v | None -> 0)
    | None -> 0
  in
  { tree; applied_lsn }
