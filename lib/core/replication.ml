(** Log-shipping replication over the simulated network (§4.4.2).

    §4.4.2: "The use of a logical log for LSM-Tree recovery is fairly
    common, and can be used to support ACID transactions, database
    replication and so on." A {!follower} is a full bLSM tree on its own
    store that tails the primary's WAL — but here the tailing is a
    supervised request/response protocol over {!Simnet}, where messages
    drop, duplicate, delay and reorder. The supervisor owns the retry
    loop: per-request timeouts, capped exponential backoff with seeded
    jitter, and idempotent re-application (every record is LSN-guarded,
    so duplicated batches and replayed retries apply exactly once).

    Epoch fencing: on failover {!promote} raises the follower's epoch;
    the deposed primary, demoted with its old epoch, gets [Fenced] on
    first contact and must adopt the new epoch and resync — late
    deposed-epoch traffic can never double-apply (no split-brain).

    Bounded staleness: a follower whose known lag exceeds
    [Config.repl.max_lag_records], or that has not heard from the
    primary within [staleness_lease_us], sheds reads with [`Too_stale]
    instead of silently serving arbitrarily old data.

    This module never touches the peer's tree or log directly — all
    peer state arrives as {!Repl_msg} frames through the simnet
    endpoint (blsm-lint rule A002 enforces exactly that). *)

type counters = {
  mutable rpcs : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable unreachable : int;  (** rpc gave up after max_attempts *)
  mutable fenced_seen : int;  (** own requests rejected as stale-epoch *)
  mutable batches_applied : int;
  mutable records_applied : int;
  mutable duplicates_skipped : int;  (** LSN guard hits: exactly-once *)
  mutable resyncs : int;
  mutable snapshot_restarts : int;
  mutable stale_sheds : int;  (** reads refused with [`Too_stale] *)
  mutable reads_served : int;
}

type follower = {
  tree : Tree.t;
  ep : Simnet.endpoint;
  net : Simnet.t;
  peer : string;
  rc : Config.repl;
  jitter_prng : Repro_util.Prng.t;
  c : counters;
  mutable epoch : int;
  mutable applied_lsn : int;  (** newest primary LSN applied *)
  mutable known_next_lsn : int;  (** primary log head at last contact *)
  mutable last_contact_us : float;
  mutable force_snapshot : bool;  (** fenced/truncated: next sync resyncs *)
}

(* The follower persists its replication position (and epoch) as
   ordinary records in its own tree (the mysql.gtid_executed pattern):
   they ride the follower's WAL and recover exactly in step with the
   applied data. The "\000" prefix is reserved; user keys sort after
   it, and every scan/cursor surface starts at "\001". *)
let position_key = "\000replication.applied_lsn"
let epoch_key = "\000replication.epoch"
let is_reserved k = String.length k > 0 && k.[0] = '\000'

let bookkeeping_entries f ~lsn =
  [
    (position_key, Kv.Entry.Base (string_of_int lsn));
    (epoch_key, Kv.Entry.Base (string_of_int f.epoch));
  ]

let persist_position f =
  Tree.write_batch f.tree (bookkeeping_entries f ~lsn:f.applied_lsn)

(* Deterministic string hash for per-follower jitter seeds (djb2-style;
   Hashtbl.hash is off-limits under lint rule D001). *)
let name_seed name =
  String.fold_left (fun a ch -> ((a * 131) + Char.code ch) land 0x3FFFFFFF) 5381 name

let make_counters () =
  {
    rpcs = 0;
    retries = 0;
    timeouts = 0;
    unreachable = 0;
    fenced_seen = 0;
    batches_applied = 0;
    records_applied = 0;
    duplicates_skipped = 0;
    resyncs = 0;
    snapshot_restarts = 0;
    stale_sheds = 0;
    reads_served = 0;
  }

let repl_config = function
  | Some c -> c.Config.repl
  | None -> Config.default.Config.repl

(** [follower ?config ~net ~name ~peer store] — an empty follower on
    [store], reachable as [name], replicating from [peer]. *)
let follower ?config ~net ~name ~peer store =
  let rc = repl_config config in
  {
    tree = Tree.create ?config store;
    ep = Simnet.endpoint net name;
    net;
    peer;
    rc;
    jitter_prng = Repro_util.Prng.of_int (name_seed name lxor 0x7265);
    c = make_counters ();
    epoch = 0;
    applied_lsn = 0;
    known_next_lsn = 1;
    last_contact_us = Simnet.now_us net;
    force_snapshot = false;
  }

let tree f = f.tree
let applied_lsn f = f.applied_lsn
let epoch f = f.epoch
let counters f = f.c

(** Known lag: primary records durably logged at last contact and not
    yet applied. A partitioned follower's known lag freezes — that is
    what the staleness lease is for. *)
let lag f = max 0 (f.known_next_lsn - 1 - f.applied_lsn)

(* ------------------------------------------------------------------ *)
(* Backoff *)

(* Nominal delay for retry [attempt] (1-based): base * 2^(attempt-1),
   capped. Overflow-safe: stop doubling at the cap. *)
let nominal_backoff ~base_us ~cap_us attempt =
  let rec go v n = if n <= 1 || v >= cap_us then v else go (v * 2) (n - 1) in
  min cap_us (go (max 1 base_us) attempt)

(** [backoff_schedule ~base_us ~cap_us ~jitter ~seed ~attempts] — the
    exact delays a supervisor with this policy and seed would sleep:
    [(nominal, jittered)] per retry. Pure; exposed so the QCheck
    property can pin determinism, monotonicity up to the cap, and the
    jitter band without driving a whole network. *)
let backoff_schedule ~base_us ~cap_us ~jitter ~seed ~attempts =
  let prng = Repro_util.Prng.of_int seed in
  List.init attempts (fun i ->
      let nominal = nominal_backoff ~base_us ~cap_us (i + 1) in
      let extra =
        int_of_float (float_of_int nominal *. jitter *. Repro_util.Prng.float prng)
      in
      (nominal, nominal + extra))

let backoff_sleep f attempt =
  let nominal =
    nominal_backoff ~base_us:f.rc.Config.backoff_base_us
      ~cap_us:f.rc.Config.backoff_cap_us attempt
  in
  let extra =
    int_of_float
      (float_of_int nominal *. f.rc.Config.backoff_jitter
      *. Repro_util.Prng.float f.jitter_prng)
  in
  Simnet.sleep f.net (nominal + extra)

(* ------------------------------------------------------------------ *)
(* The RPC loop: timeout -> capped backoff -> retry; Fenced -> adopt *)

let rpc f req =
  let rec go attempt =
    f.c.rpcs <- f.c.rpcs + 1;
    let payload = Repl_msg.encode_req ~epoch:f.epoch req in
    match
      Simnet.call f.ep ~dst:f.peer ~timeout_us:f.rc.Config.req_timeout_us
        payload
    with
    | None ->
        f.c.timeouts <- f.c.timeouts + 1;
        if attempt >= f.rc.Config.max_attempts then begin
          f.c.unreachable <- f.c.unreachable + 1;
          `Unreachable
        end
        else begin
          f.c.retries <- f.c.retries + 1;
          backoff_sleep f attempt;
          go (attempt + 1)
        end
    | Some frame -> (
        match Repl_msg.decode_resp frame with
        | None ->
            (* garbage frame: treat like a loss *)
            f.c.timeouts <- f.c.timeouts + 1;
            if attempt >= f.rc.Config.max_attempts then begin
              f.c.unreachable <- f.c.unreachable + 1;
              `Unreachable
            end
            else begin
              f.c.retries <- f.c.retries + 1;
              backoff_sleep f attempt;
              go (attempt + 1)
            end
        | Some (resp_epoch, resp) -> (
            f.last_contact_us <- Simnet.now_us f.net;
            if resp_epoch > f.epoch then f.epoch <- resp_epoch;
            match resp with
            | Repl_msg.Fenced { epoch = server_epoch } ->
                (* we spoke with a stale epoch: adopt and resync *)
                f.c.fenced_seen <- f.c.fenced_seen + 1;
                if server_epoch > f.epoch then f.epoch <- server_epoch;
                f.force_snapshot <- true;
                `Fenced
            | r -> `Resp r))
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Applying records: the exactly-once core *)

(* One primary record = one follower batch carrying the data ops AND
   the updated position/epoch, atomically in the follower's log.
   Splitting them loses exactly-once under crashes (the DST harness
   caught this over a perfect channel; see test/repros/). The LSN guard
   makes network duplicates and retried batches no-ops.

   Reserved "\000"-keys inside the payload are the *primary's own*
   bookkeeping (a promoted primary's log contains its follower-era
   position records) — filtered out, never replicated. *)
let apply_records f records =
  let applied = ref 0 in
  List.iter
    (fun (lsn, payload) ->
      if lsn > f.applied_lsn then begin
        let ops =
          List.filter (fun (k, _) -> not (is_reserved k)) (Tree.decode_ops payload)
        in
        Tree.write_batch f.tree (ops @ bookkeeping_entries f ~lsn);
        f.applied_lsn <- lsn;
        incr applied
      end
      else f.c.duplicates_skipped <- f.c.duplicates_skipped + 1)
    records;
  if !applied > 0 then f.c.batches_applied <- f.c.batches_applied + 1;
  f.c.records_applied <- f.c.records_applied + !applied;
  !applied

(* ------------------------------------------------------------------ *)
(* Catch-up and resync *)

let rec catch_up_rounds f total =
  match
    rpc f
      (Repl_msg.Wal_batch
         {
           from_lsn = f.applied_lsn + 1;
           max_records = max 1 f.rc.Config.batch_records;
         })
  with
  | `Unreachable -> `Unreachable
  | `Fenced -> resync f 1
  | `Resp (Repl_msg.Batch { records; next_lsn }) ->
      f.known_next_lsn <- next_lsn;
      let n = apply_records f records in
      if f.applied_lsn >= next_lsn - 1 then `Applied (total + n)
      else if n = 0 && records = [] then begin
        (* Nothing stored at or past from_lsn even though next_lsn is
           ahead: the primary crashed after allocating LSNs but before
           persisting the records (Wal.append advances the counter
           first).  Those LSNs are a permanent hole — the writes were
           never acked to anyone — so the follower holds everything the
           log can ever serve.  Clamp the horizon so lag reads 0. *)
        f.known_next_lsn <- f.applied_lsn + 1;
        `Applied (total + n)
      end
      else catch_up_rounds f (total + n)
  | `Resp (Repl_msg.Truncated _) ->
      (* fell off the log tail: bootstrap *)
      resync f 1
  | `Resp _ -> `Unreachable

and resync f restart =
  if restart > max 1 f.rc.Config.max_attempts then begin
    f.c.unreachable <- f.c.unreachable + 1;
    `Unreachable
  end
  else
    match rpc f Repl_msg.Snapshot_begin with
    | `Unreachable -> `Unreachable
    | `Fenced ->
        (* epoch adopted inside rpc; retry the begin with the new one *)
        f.c.snapshot_restarts <- f.c.snapshot_restarts + 1;
        resync f (restart + 1)
    | `Resp (Repl_msg.Snapshot_meta { session; snapshot_lsn; total_rows }) -> (
        match fetch_chunks f ~session ~from_row:0 ~total_rows [] with
        | `Rows rows ->
            install_snapshot f rows ~snapshot_lsn;
            (* best effort: the session also dies with the reply *)
            ignore (rpc f (Repl_msg.Snapshot_done { session }));
            f.c.resyncs <- f.c.resyncs + 1;
            `Resynced
        | `Restart ->
            f.c.snapshot_restarts <- f.c.snapshot_restarts + 1;
            resync f (restart + 1)
        | `Unreachable -> `Unreachable)
    | `Resp _ -> `Unreachable

and fetch_chunks f ~session ~from_row ~total_rows acc =
  if from_row >= total_rows then `Rows (List.concat (List.rev acc))
  else
    match
      rpc f
        (Repl_msg.Snapshot_chunk
           { session; from_row; max_rows = max 1 f.rc.Config.chunk_rows })
    with
    | `Unreachable -> `Unreachable
    | `Fenced -> `Restart
    | `Resp (Repl_msg.Chunk { session = s; rows; last })
      when s = session && rows <> [] ->
        let acc = rows :: acc in
        if last then `Rows (List.concat (List.rev acc))
        else fetch_chunks f ~session ~from_row:(from_row + List.length rows)
               ~total_rows acc
    | `Resp _ -> `Restart

and install_snapshot f rows ~snapshot_lsn =
  let module SS = Set.Make (String) in
  let live =
    List.fold_left (fun s (k, _) -> SS.add k s) SS.empty rows
  in
  List.iter
    (fun (k, v) -> if not (is_reserved k) then Tree.put f.tree k v)
    rows;
  (* Copy-in alone is not a state transfer: keys the primary deleted
     while the follower was out of log range survive on the follower.
     Sweep them out (collect first — no deleting under a live cursor).
     The DST harness caught this (test/repros/). *)
  let fc = Tree.cursor ~from:"\001" f.tree in
  let rec stale acc =
    match Tree.cursor_next fc with
    | None -> List.rev acc
    | Some (k, _) -> stale (if SS.mem k live then acc else k :: acc)
  in
  List.iter (Tree.delete f.tree) (stale []);
  f.applied_lsn <- snapshot_lsn;
  f.known_next_lsn <- snapshot_lsn + 1;
  f.force_snapshot <- false;
  persist_position f

(** [sync f] brings the follower up to date whatever its position:
    incremental WAL tailing when the primary's log still covers it,
    full snapshot bootstrap after truncation or fencing. [`Unreachable]
    when the retry budget ran dry without converging. *)
let sync f =
  if f.force_snapshot then resync f 1 else catch_up_rounds f 0

(* ------------------------------------------------------------------ *)
(* Bounded-staleness reads *)

let staleness f =
  ( lag f,
    Simnet.now_us f.net -. f.last_contact_us,
    f.rc.Config.max_lag_records,
    float_of_int f.rc.Config.staleness_lease_us )

let is_stale f =
  let l, age, max_lag, lease = staleness f in
  l > max_lag || age > lease

let read f key =
  if is_stale f then begin
    f.c.stale_sheds <- f.c.stale_sheds + 1;
    `Too_stale
  end
  else begin
    f.c.reads_served <- f.c.reads_served + 1;
    `Ok (Tree.get f.tree key)
  end

let user_scan f start n =
  if is_stale f then begin
    f.c.stale_sheds <- f.c.stale_sheds + 1;
    `Too_stale
  end
  else begin
    f.c.reads_served <- f.c.reads_served + 1;
    let from = if String.compare start "\001" < 0 then "\001" else start in
    `Ok (Tree.scan f.tree from n)
  end

(* ------------------------------------------------------------------ *)
(* Failover *)

(** [promote f] — failover: raise the epoch, persist it, and hand back
    the tree as the new primary. The first stale-epoch message the old
    primary's server sees from us will teach it the new epoch; the
    first message the *deposed* primary sends anywhere gets [Fenced]. *)
let promote f =
  f.epoch <- f.epoch + 1;
  persist_position f;
  f.tree

(** [demote ?config ~net ~name ~peer ~epoch tree] — wrap a deposed
    primary's tree as a follower of [peer]. [epoch] is the epoch the
    node believes in (its deposed one): the first exchange gets
    [Fenced], observably, and forces adoption + snapshot bootstrap. *)
let demote ?config ~net ~name ~peer ~epoch tree =
  let rc = repl_config config in
  {
    tree;
    ep = Simnet.endpoint net name;
    net;
    peer;
    rc;
    jitter_prng = Repro_util.Prng.of_int (name_seed name lxor 0x7265);
    c = make_counters ();
    epoch;
    applied_lsn = 0;
    known_next_lsn = 1;
    last_contact_us = Simnet.now_us net;
    force_snapshot = true;
  }

(* ------------------------------------------------------------------ *)
(* Crash recovery *)

(** Power-fail the follower and recover it. Position and epoch ride the
    follower's own durability machinery (records in its tree), so the
    recovered position is exactly consistent with the recovered data:
    the next {!sync} resumes without loss or double-application. *)
let crash_and_recover f =
  let tree = Tree.crash_and_recover f.tree in
  let read_int key fallback =
    match Tree.get tree key with
    | Some s -> ( match int_of_string_opt s with Some v -> v | None -> fallback)
    | None -> fallback
  in
  let applied_lsn = read_int position_key 0 in
  {
    f with
    tree;
    epoch = read_int epoch_key 0;
    applied_lsn;
    known_next_lsn = applied_lsn + 1;
    last_contact_us = Simnet.now_us f.net;
    force_snapshot = false;
  }

(* ------------------------------------------------------------------ *)
(* Observability *)

(** Register the [repl.follower.*] counter family. [get] is a thunk so
    the registry survives the follower value being replaced by
    {!crash_and_recover} / {!demote}. *)
let register_metrics reg get =
  let c name help f =
    Obs.Metrics.counter reg ("repl.follower." ^ name) ~help (fun () ->
        f (get ()))
  in
  c "rpcs" "requests sent (including retries)" (fun f -> f.c.rpcs);
  c "retries" "requests retried after timeout/garbage" (fun f -> f.c.retries);
  c "timeouts" "request deadlines hit" (fun f -> f.c.timeouts);
  c "unreachable" "syncs abandoned after max_attempts" (fun f ->
      f.c.unreachable);
  c "fenced_seen" "own requests rejected as stale-epoch" (fun f ->
      f.c.fenced_seen);
  c "batches_applied" "catch-up batches applied" (fun f -> f.c.batches_applied);
  c "records_applied" "WAL records applied" (fun f -> f.c.records_applied);
  c "duplicates_skipped" "LSN-guard hits (exactly-once)" (fun f ->
      f.c.duplicates_skipped);
  c "resyncs" "snapshot bootstraps completed" (fun f -> f.c.resyncs);
  c "snapshot_restarts" "snapshot sessions restarted" (fun f ->
      f.c.snapshot_restarts);
  c "stale_sheds" "reads refused with Too_stale" (fun f -> f.c.stale_sheds);
  c "reads_served" "reads served within the staleness bound" (fun f ->
      f.c.reads_served);
  Obs.Metrics.gauge reg "repl.follower.lag" ~help:"known unapplied records"
    (fun () -> float_of_int (lag (get ())));
  Obs.Metrics.gauge reg "repl.follower.epoch" ~help:"current epoch" (fun () ->
      float_of_int (get ()).epoch)
