(** The bLSM tree (§4, Figure 1).

    Three levels: C0 (a {!Memtable}), C1 and C2 ({!Component}s, Bloom
    filtered), plus C1' while a C1:C2 merge is in flight. Writes are
    logical-logged and buffered in C0; two incremental merge processes move
    data down the tree; a level scheduler paces them against application
    progress so that writes see bounded backpressure instead of unbounded
    pauses.

    All merge work is performed synchronously inside the write path, in
    scheduler-chosen quanta: this is the simulation counterpart of merge
    threads sharing the disk with the application, and it makes every
    stall visible as write latency (see DESIGN.md §1). *)

(** Detected damage that could not be masked: a checksum mismatch in the
    named level that recovery could neither rebuild from the log nor
    readers route around. "No silent garbage" — the failure surfaces as
    this typed exception, never as a wrong answer. *)
exception Corruption of { level : string; what : string; page_or_lsn : int }

type stats = {
  mutable puts : int;
  mutable gets : int;
  mutable deletes : int;
  mutable deltas : int;
  mutable scans : int;
  mutable rmws : int;
  mutable checked_inserts : int;
  mutable checked_insert_seekfree : int;
      (** insert-if-not-exists resolved purely by Bloom filters *)
  mutable merge1_completions : int;
  mutable merge2_completions : int;
  mutable promotions : int;
  mutable hard_stalls : int;  (** writes that hit the C0 hard limit *)
  mutable user_bytes_written : int;
  mutable corruptions_detected : int;
      (** checksum mismatches seen (reads, recovery, scrubs) *)
  mutable component_rebuilds : int;
      (** corrupt components dropped and rebuilt from WAL replay *)
  mutable quarantined_components : int;
      (** corrupt components mounted read-around at recovery *)
  mutable scrubs : int;
  mutable bloom_negative : int;
      (** lookups a component's Bloom filter answered for free, summed
          over retired components (live components add their own) *)
  mutable bloom_false_positive : int;
      (** filter said maybe, the component read said no — the wasted
          I/O the filter exists to avoid; same retirement accounting *)
  stall_us : Repro_util.Histogram.t;
      (** synchronous merge time charged to each write *)
  (* Cumulative stall attribution (simulated µs): where the pacing time
     recorded in [stall_us] actually went. merge1 + merge2 + hard tile
     the histogram's total within float rounding. WAL and recovery time
     are charged to writes / recovery outside the pacing window. *)
  mutable stall_merge1_us : float;
  mutable stall_merge2_us : float;
  mutable stall_hard_us : float;
  mutable wal_us : float;  (** WAL append/group-commit time, all writes *)
  mutable recovery_us : float;  (** replay + component-rebuild time *)
}

(** Per-operation stall attribution: how the last write's pacing time
    ([total_us], the sample added to [stall_us]) divides across causes.
    [merge1_us + merge2_us + hard_us = total_us] within float rounding;
    [wal_us] is the WAL append time, charged outside the pacing window. *)
type stall_breakdown = {
  sb_merge1_us : float;
  sb_merge2_us : float;
  sb_hard_us : float;
  sb_wal_us : float;
  sb_total_us : float;
}

(* Mutable scratch behind {!stall_breakdown}, reset per write. *)
type stall_scratch = {
  mutable sc_merge1_us : float;
  mutable sc_merge2_us : float;
  mutable sc_hard_us : float;
  mutable sc_wal_us : float;
  mutable sc_total_us : float;
}

type t = {
  config : Config.t;
  store : Pagestore.Store.t;
  root_slot : string;  (** journal slot / WAL-client id on shared stores *)
  mutable c0 : Memtable.t;
  mutable frozen : Memtable.t option;  (** C0' (gear scheduler only) *)
  mutable c1 : Component.t option;
  mutable c1_prime : Component.t option;
  mutable c2 : Component.t option;
  mutable merge1 : Merge_process.c0_merge option;
  mutable merge2 : Merge_process.c12 option;
  mutable timestamp : int;
  stats : stats;
  scratch : stall_scratch;
  mutable in_hard_stall : bool;
      (** inside {!force_space} / the naive drain: merge time is a
          hard-stall wait, whichever merge performs it *)
  mutable write_fenced : bool;
      (** writes raise {!Write_fenced}; replication raises the fence on
          a primary while a snapshot cursor copy is in flight *)
  mutable metrics_cache : Obs.Metrics.t option;
  mutable stall_observer : (stall_breakdown -> unit) option;
      (** invoked after every pacing decision with the finalized
          attribution — stall-episode detectors hook in here *)
}

exception Write_fenced

let make_stats () =
  {
    puts = 0;
    gets = 0;
    deletes = 0;
    deltas = 0;
    scans = 0;
    rmws = 0;
    checked_inserts = 0;
    checked_insert_seekfree = 0;
    merge1_completions = 0;
    merge2_completions = 0;
    promotions = 0;
    hard_stalls = 0;
    user_bytes_written = 0;
    corruptions_detected = 0;
    component_rebuilds = 0;
    quarantined_components = 0;
    scrubs = 0;
    bloom_negative = 0;
    bloom_false_positive = 0;
    stall_us = Repro_util.Histogram.create ();
    stall_merge1_us = 0.0;
    stall_merge2_us = 0.0;
    stall_hard_us = 0.0;
    wal_us = 0.0;
    recovery_us = 0.0;
  }

let create ?(config = Config.default) ?(root_slot = "") store =
  (* hold the shared log from this point: records this tree buffers in
     C0 may not be truncated away by co-hosted trees' merges *)
  Pagestore.Wal.register_client (Pagestore.Store.wal store) ~client:root_slot;
  {
    config;
    store;
    root_slot;
    c0 = Memtable.create ~seed:config.Config.seed ~resolver:config.Config.resolver ();
    frozen = None;
    c1 = None;
    c1_prime = None;
    c2 = None;
    merge1 = None;
    merge2 = None;
    timestamp = 0;
    stats = make_stats ();
    scratch =
      { sc_merge1_us = 0.0; sc_merge2_us = 0.0; sc_hard_us = 0.0;
        sc_wal_us = 0.0; sc_total_us = 0.0 };
    in_hard_stall = false;
    write_fenced = false;
    metrics_cache = None;
    stall_observer = None;
  }

let stats t = t.stats
let set_write_fence t fenced = t.write_fenced <- fenced

let last_stall t =
  {
    sb_merge1_us = t.scratch.sc_merge1_us;
    sb_merge2_us = t.scratch.sc_merge2_us;
    sb_hard_us = t.scratch.sc_hard_us;
    sb_wal_us = t.scratch.sc_wal_us;
    sb_total_us = t.scratch.sc_total_us;
  }

let on_stall t f = t.stall_observer <- Some f
let store t = t.store
let disk t = Pagestore.Store.disk t.store
let config t = t.config

(** {1 Sizing} *)

let component_bytes = function Some c -> Component.data_bytes c | None -> 0

let disk_data_bytes t =
  component_bytes t.c1 + component_bytes t.c1_prime + component_bytes t.c2

(** Effective size ratio R: fixed, or the 3-level optimum
    R = sqrt(|data| / |C0|) (§2.3.1), floored at 2. *)
let effective_r t =
  match t.config.Config.size_ratio with
  | Config.Fixed r -> r
  | Config.Adaptive ->
      let data = float_of_int (max 1 (disk_data_bytes t)) in
      let ram = float_of_int (Config.c0_capacity t.config) in
      Float.max 2.0 (sqrt (data /. ram))

let target_c1_bytes t =
  int_of_float (effective_r t *. float_of_int (Config.c0_capacity t.config))

let c0_fill t =
  float_of_int (Memtable.bytes t.c0)
  /. float_of_int (Config.c0_capacity t.config)

(** {1 Root metadata (commit record)} *)

let encode_root t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "BLSM";
  Repro_util.Varint.write buf t.timestamp;
  let opt = function
    | None -> Repro_util.Varint.write buf 0
    | Some c ->
        let blob = Component.meta_blob c in
        Repro_util.Varint.write buf (String.length blob);
        Buffer.add_string buf blob
  in
  opt t.c1;
  opt t.c1_prime;
  opt t.c2;
  Buffer.contents buf

let commit_root t =
  Pagestore.Store.commit_root ~slot:t.root_slot t.store (encode_root t)

(* Convert a low-level checksum failure into the tree-level typed error,
   naming the component (or site) it came from. Readers verify before
   decoding, so rot either surfaces here or is masked — never returned as
   data. {!Simdisk.Faults.Crash_point} passes through untouched. *)
let guard t ~level f =
  try f ()
  with Sstable.Sst_format.Corrupt { what; page } ->
    t.stats.corruptions_detected <- t.stats.corruptions_detected + 1;
    raise (Corruption { level; what; page_or_lsn = page })

(** {1 Write-ahead log records}

    One log record carries an atomic batch of operations (usually a
    single one): replay applies a record's operations together, which is
    what makes {!write_batch} all-or-nothing across crashes — the ACID
    building block §4.4.2 attributes to the logical log. *)

let encode_ops ops =
  let buf = Buffer.create 64 in
  Repro_util.Varint.write buf (List.length ops);
  List.iter
    (fun (key, entry) ->
      Repro_util.Varint.write buf (String.length key);
      Buffer.add_string buf key;
      Kv.Entry.encode buf entry)
    ops;
  Buffer.contents buf

let decode_ops s =
  let count, pos = Repro_util.Varint.read s 0 in
  let pos = ref pos in
  let rec go n acc =
    if n = 0 then List.rev acc
    else begin
      let klen, p = Repro_util.Varint.read s !pos in
      let key = String.sub s p klen in
      let entry, p = Kv.Entry.decode s (p + klen) in
      pos := p;
      go (n - 1) ((key, entry) :: acc)
    end
  in
  go count []

(** {1 Merge lifecycle} *)

let open_component t ~bloom footer ~index =
  let sst = Sstable.Reader.open_in_ram t.store footer ~index in
  Component.of_sst ?bloom sst

(* Start a C1':C2 merge if C1 has reached its target size and no other
   bottom merge is active. *)
let try_promote t =
  match (t.c1, t.merge2) with
  | Some c1, None when Component.data_bytes c1 >= target_c1_bytes t ->
      t.c1_prime <- Some c1;
      t.c1 <- None;
      t.merge2 <-
        Some
          (guard t ~level:"C2" (fun () ->
               Merge_process.create_c12 ~config:t.config ~store:t.store
                 ~c1_prime:c1 ~c2:t.c2));
      t.stats.promotions <- t.stats.promotions + 1;
      commit_root t;
      true
  | _ -> false

(* Can a new C0:C1 run begin? Blocked exactly when C1 is full and the
   C1':C2 merge has not yet freed the slot (Figure 4's danger state). *)
let merge1_blocked t =
  match t.c1 with
  | Some c1 ->
      Component.data_bytes c1 >= target_c1_bytes t && t.c1_prime <> None
  | None -> false

let source_has_data t =
  if t.config.Config.snowshovel then not (Memtable.is_empty t.c0)
  else
    match t.frozen with
    | Some f -> not (Memtable.is_empty f)
    | None -> not (Memtable.is_empty t.c0) (* a swap would have work to do *)

(* Begin a C0:C1 run. With snowshoveling the live C0 is the source; the
   gear scheduler instead freezes the current C0 into C0' and opens a
   fresh C0 (halving the write pool, §4.2.1). *)
let start_merge1 t =
  assert (t.merge1 = None);
  ignore (try_promote t);
  if merge1_blocked t then false
  else begin
    let source =
      if t.config.Config.snowshovel then
        Merge_process.Live
          { mem = t.c0; shadow = Memtable.Skiplist.create ~seed:t.config.Config.seed () }
      else begin
        (match t.frozen with
        | Some _ -> ()
        | None ->
            t.frozen <- Some t.c0;
            t.c0 <-
              Memtable.create ~seed:t.config.Config.seed
                ~resolver:t.config.Config.resolver ());
        Merge_process.Frozen (Option.get t.frozen)
      end
    in
    let c1_count = match t.c1 with Some c -> Component.record_count c | None -> 0 in
    let expected_items = max 1 (Memtable.count t.c0 + c1_count + 128) in
    let run_cap =
      (* Only live (snowshovel) runs may stop early: a frozen C0' must be
         fully drained because it is discarded at completion. *)
      if not t.config.Config.snowshovel then max_int
      else
        max
          (int_of_float
             (t.config.Config.run_cap_factor *. float_of_int (target_c1_bytes t)))
          (component_bytes t.c1 + 1)
    in
    t.merge1 <-
      Some
        (guard t ~level:"C1" (fun () ->
             Merge_process.create_c0_merge ~config:t.config ~store:t.store
               ~source ~c1:t.c1 ~run_cap ~expected_items));
    true
  end

(* Retire a superseded component: fold its Bloom-filter outcome counters
   into the tree's stats (live components report their own; the metrics
   registry sums both) before releasing its extents. *)
let retire_component t (c : Component.t) =
  t.stats.bloom_negative <- t.stats.bloom_negative + c.Component.bloom_negative;
  t.stats.bloom_false_positive <-
    t.stats.bloom_false_positive + c.Component.bloom_false_positive;
  Component.free c

let complete_merge1 t m =
  t.timestamp <- t.timestamp + 1;
  let footer, index, bloom = Merge_process.finish_c0 m ~timestamp:t.timestamp in
  let fresh = open_component t ~bloom footer ~index in
  let old_c1 = Merge_process.c0_old_c1 m in
  t.c1 <- Some fresh;
  t.merge1 <- None;
  (match Merge_process.c0_source_kind m with
  | `Live -> () (* shadow entries are now durable in the new C1 *)
  | `Frozen -> t.frozen <- None (* C0' contents are useless, discard *));
  commit_root t;
  (match old_c1 with Some c -> retire_component t c | None -> ());
  (* Log truncation: everything older than the oldest entry still live in
     C0 is covered by the freshly committed component. Snowshoveling keeps
     old entries live in C0 longer, delaying this point (§4.4.2). *)
  let wal = Pagestore.Store.wal t.store in
  let floor =
    match Memtable.oldest_lsn t.c0 with
    | Some lsn -> lsn
    | None -> Pagestore.Wal.next_lsn wal
  in
  (* On a shared store (partitioned trees), only records below every
     tree's floor may be dropped. *)
  Pagestore.Wal.propose_truncate wal ~client:t.root_slot ~upto_lsn:floor;
  t.stats.merge1_completions <- t.stats.merge1_completions + 1;
  ignore (try_promote t)

let complete_merge2 t m =
  t.timestamp <- t.timestamp + 1;
  let footer, index, bloom = Merge_process.finish_c12 m ~timestamp:t.timestamp in
  let fresh = open_component t ~bloom footer ~index in
  let old_c1p, old_c2 = Merge_process.c12_inputs m in
  t.c2 <- Some fresh;
  t.c1_prime <- None;
  t.merge2 <- None;
  commit_root t;
  retire_component t old_c1p;
  (match old_c2 with Some c -> retire_component t c | None -> ());
  t.stats.merge2_completions <- t.stats.merge2_completions + 1;
  ignore (try_promote t)

(* Advance merge1 by [quota] input bytes; starts a run when appropriate. *)
let do_step_merge1 t ~quota =
  match t.merge1 with
  | Some m -> (
      match guard t ~level:"C1" (fun () -> Merge_process.step_c0 m ~quota) with
      | `More -> `More
      | `Done ->
          complete_merge1 t m;
          `Completed)
  | None ->
      if source_has_data t && (not (merge1_blocked t)) && start_merge1 t then
        `Started
      else `Idle

let do_step_merge2 t ~quota =
  match t.merge2 with
  | Some m -> (
      match guard t ~level:"C2" (fun () -> Merge_process.step_c12 m ~quota) with
      | `More -> `More
      | `Done ->
          complete_merge2 t m;
          `Completed)
  | None -> `Idle

(* Stall attribution: every quantum of synchronous merge work is timed on
   the simulated clock and charged to a cause. The clock only advances
   inside disk operations, and during pacing those all happen inside
   these two wrappers — so the per-cause sums tile the pacing window
   exactly (within float-addition rounding). Work done while
   [in_hard_stall] is a hard-stall *wait* regardless of which merge
   performs it: the write is blocked on space, not electively pacing. *)
let step_merge1 t ~quota =
  let t0 = Pagestore.Store.now_us t.store in
  let r = do_step_merge1 t ~quota in
  let dt = Pagestore.Store.now_us t.store -. t0 in
  let sc = t.scratch in
  if t.in_hard_stall then sc.sc_hard_us <- sc.sc_hard_us +. dt
  else sc.sc_merge1_us <- sc.sc_merge1_us +. dt;
  r

let step_merge2 t ~quota =
  let t0 = Pagestore.Store.now_us t.store in
  let r = do_step_merge2 t ~quota in
  let dt = Pagestore.Store.now_us t.store -. t0 in
  let sc = t.scratch in
  if t.in_hard_stall then sc.sc_hard_us <- sc.sc_hard_us +. dt
  else sc.sc_merge2_us <- sc.sc_merge2_us +. dt;
  r

(** {1 Progress estimators} *)

let merge1_inprogress t =
  match t.merge1 with Some m -> Merge_process.c0_inprogress m | None -> 0.0

let merge2_inprogress t =
  match t.merge2 with Some m -> Merge_process.c12_inprogress m | None -> 1.0

let outprogress1 t =
  Scheduler.outprogress ~inprogress:(merge1_inprogress t)
    ~ci_bytes:(component_bytes t.c1)
    ~ram_bytes:(Config.c0_capacity t.config)
    ~r:(effective_r t)

let merge1_remaining_bytes t =
  match t.merge1 with
  | Some m ->
      let p = Merge_process.c0_progress m in
      max 0 (p.Merge_process.bytes_total - p.Merge_process.bytes_read)
  | None -> Memtable.bytes t.c0 + component_bytes t.c1

let merge2_remaining_bytes t =
  match t.merge2 with
  | Some m ->
      let p = Merge_process.c12_progress m in
      max 0 (p.Merge_process.bytes_total - p.Merge_process.bytes_read)
  | None -> 0

(** {1 Scheduling: pacing merge work into the write path} *)

let chunk = 64 * 1024 (* stepping granularity, bytes of merge input *)

(* Couple the bottom merge to C1's overall progress, gear-style: merge2
   must stay at least as far along as outprogress1. *)
let pace_merge2 t ~cap =
  let spent = ref 0 in
  let continue = ref true in
  while
    !continue && !spent < cap
    && t.merge2 <> None
    && merge2_inprogress t < outprogress1 t
  do
    match step_merge2 t ~quota:chunk with
    | `More -> spent := !spent + chunk
    | `Completed | `Idle | `Started -> continue := false
  done

(* Hard limit: C0 is at capacity and the write cannot be admitted. Force
   merges forward until space frees; this is the unbounded-latency path
   that good pacing is supposed to avoid (Table 1, last row). *)
let force_space t =
  t.stats.hard_stalls <- t.stats.hard_stalls + 1;
  let cap = Config.c0_capacity t.config in
  let guard = ref 0 in
  let was_hard = t.in_hard_stall in
  t.in_hard_stall <- true;
  Fun.protect
    ~finally:(fun () -> t.in_hard_stall <- was_hard)
    (fun () ->
      while Memtable.bytes t.c0 >= cap do
        incr guard;
        if !guard > 1_000_000 then failwith "bLSM: stall loop failed to free C0";
        match step_merge1 t ~quota:(4 * chunk) with
        | `More | `Completed | `Started -> ()
        | `Idle ->
            (* merge1 blocked (C1 full, C1':C2 behind) or sourceless: push the
               bottom merge *)
            (match step_merge2 t ~quota:(4 * chunk) with
            | `More | `Completed -> ()
            | `Idle | `Started ->
                (* nothing to do anywhere: C0 must have been drained *)
                if Memtable.bytes t.c0 >= cap then
                  failwith "bLSM: C0 full but no merge can run")
      done)

let pace_naive t ~write_bytes:_ =
  (* The base LSM algorithm (§2.3.1): nothing happens until C0 is full,
     then the application blocks while the entire C0:C1 merge (and any
     C1':C2 merge it is waiting on) completes — the unbounded write pause
     every level scheduler exists to avoid. *)
  if Memtable.bytes t.c0 >= Config.c0_capacity t.config then begin
    t.stats.hard_stalls <- t.stats.hard_stalls + 1;
    let guard = ref 0 in
    let drained () =
      Memtable.is_empty t.c0
      && (match t.frozen with Some f -> Memtable.is_empty f | None -> true)
      && t.merge1 = None
    in
    let was_hard = t.in_hard_stall in
    t.in_hard_stall <- true;
    Fun.protect
      ~finally:(fun () -> t.in_hard_stall <- was_hard)
      (fun () ->
        while not (drained ()) do
          incr guard;
          if !guard > 1_000_000 then failwith "bLSM: naive drain stuck";
          match step_merge1 t ~quota:(16 * chunk) with
          | `More | `Completed | `Started -> ()
          | `Idle -> (
              match step_merge2 t ~quota:(16 * chunk) with
              | `More | `Completed -> ()
              | `Idle | `Started ->
                  if not (drained ()) then failwith "bLSM: naive drain wedged")
        done)
  end

let pace_gear t ~write_bytes:_ =
  let cap = t.config.Config.max_quota_per_write in
  let partition = Config.c0_capacity t.config in
  let f0 = float_of_int (Memtable.bytes t.c0) /. float_of_int partition in
  (* keep C0' merge at least as far along as C0's fill *)
  let spent = ref 0 in
  let continue = ref true in
  while !continue && !spent < cap && t.merge1 <> None && merge1_inprogress t < f0 do
    match step_merge1 t ~quota:chunk with
    | `More -> spent := !spent + chunk
    | `Completed | `Idle | `Started -> continue := false
  done;
  pace_merge2 t ~cap;
  if Memtable.bytes t.c0 >= partition then begin
    (* C0 partition full: C0' must hand off now; finish it, swap, restart *)
    let guard = ref 0 in
    while t.merge1 <> None do
      incr guard;
      if !guard > 1_000_000 then failwith "bLSM: gear handoff stuck";
      match step_merge1 t ~quota:(4 * chunk) with
      | `More | `Completed | `Started -> ()
      | `Idle -> ()
    done;
    (match step_merge1 t ~quota:0 with
    | `Started | `Idle | `More | `Completed -> ());
    if Memtable.bytes t.c0 >= partition && t.merge1 = None then force_space t
  end

let pace_spring t ~write_bytes =
  let budget = Config.c0_capacity t.config in
  let fill = c0_fill t in
  let low = t.config.Config.low_watermark in
  let high = t.config.Config.high_watermark in
  let cap = t.config.Config.max_quota_per_write in
  (* the spring: below the low watermark merges rest; inside the band a
     deadline controller paces merge1 to finish before C0 hits high *)
  if fill > low then begin
    let quota =
      Scheduler.spring_quota ~write_bytes ~fill ~low ~high
        ~remaining_bytes:(merge1_remaining_bytes t) ~c0_capacity:budget
      |> min cap
    in
    let spent = ref 0 in
    let continue = ref true in
    while !continue && !spent < quota do
      match step_merge1 t ~quota:(min chunk (quota - !spent)) with
      | `More -> spent := !spent + chunk
      | `Completed | `Started -> ()
      | `Idle -> continue := false
    done
  end;
  pace_merge2 t ~cap;
  (* hard deadline for the bottom merge: it must complete before C0 and
     C1 are simultaneously full (Figure 4's danger state), or merge1 will
     block and writes will stall unboundedly. Same controller shape as
     the C0 band, with the remaining C0+C1 headroom as the deadline. *)
  (match t.merge2 with
  | None -> ()
  | Some _ ->
      let remaining2 = merge2_remaining_bytes t in
      let headroom =
        max write_bytes
          (target_c1_bytes t + budget
          - (component_bytes t.c1 + Memtable.bytes t.c0))
      in
      let quota2 =
        min cap (write_bytes * remaining2 / max write_bytes headroom)
      in
      let spent = ref 0 in
      let continue = ref true in
      while !continue && !spent < quota2 do
        match step_merge2 t ~quota:(min chunk (quota2 - !spent)) with
        | `More -> spent := !spent + chunk
        | `Completed | `Idle | `Started -> continue := false
      done);
  if Memtable.bytes t.c0 >= budget then force_space t

let scheduler_name = function
  | Config.Naive -> "naive"
  | Config.Gear -> "gear"
  | Config.Spring -> "spring"

let before_write t ~write_bytes =
  let sc = t.scratch in
  sc.sc_merge1_us <- 0.0;
  sc.sc_merge2_us <- 0.0;
  sc.sc_hard_us <- 0.0;
  sc.sc_wal_us <- 0.0;
  sc.sc_total_us <- 0.0;
  let tr = Pagestore.Store.trace t.store in
  if Obs.Trace.enabled tr then
    (* one event per pacing decision, carrying the §4.1 inputs the
       scheduler is about to act on *)
    Obs.Trace.instant tr ~cat:"sched" ~name:"pace"
      ~args:
        [ ("scheduler", Obs.Trace.S (scheduler_name t.config.Config.scheduler));
          ("c0_fill", Obs.Trace.F (c0_fill t));
          ("inprogress1", Obs.Trace.F (merge1_inprogress t));
          ("inprogress2", Obs.Trace.F (merge2_inprogress t));
          ("outprogress1", Obs.Trace.F (outprogress1 t));
          ("write_bytes", Obs.Trace.I write_bytes) ];
  let t0 = Pagestore.Store.now_us t.store in
  (match t.config.Config.scheduler with
  | Config.Naive -> pace_naive t ~write_bytes
  | Config.Gear -> pace_gear t ~write_bytes
  | Config.Spring -> pace_spring t ~write_bytes);
  let dt = Pagestore.Store.now_us t.store -. t0 in
  sc.sc_total_us <- dt;
  t.stats.stall_merge1_us <- t.stats.stall_merge1_us +. sc.sc_merge1_us;
  t.stats.stall_merge2_us <- t.stats.stall_merge2_us +. sc.sc_merge2_us;
  t.stats.stall_hard_us <- t.stats.stall_hard_us +. sc.sc_hard_us;
  Repro_util.Histogram.add t.stats.stall_us (int_of_float dt);
  match t.stall_observer with
  | None -> ()
  | Some f ->
      f
        {
          sb_merge1_us = sc.sc_merge1_us;
          sb_merge2_us = sc.sc_merge2_us;
          sb_hard_us = sc.sc_hard_us;
          sb_wal_us = 0.0;
          sb_total_us = sc.sc_total_us;
        }

(** {1 Write path} *)

(* Emit the write's span: wall-to-wall duration plus the stall
   attribution the breakdown scratch accumulated during this write. *)
let emit_write_span t tr ~op ~ts =
  let sc = t.scratch in
  Obs.Trace.complete tr ~cat:"tree" ~name:op ~ts_us:ts
    ~dur_us:(Obs.Trace.now_us tr -. ts)
    ~args:
      [ ("stall_us", Obs.Trace.F sc.sc_total_us);
        ("merge1_us", Obs.Trace.F sc.sc_merge1_us);
        ("merge2_us", Obs.Trace.F sc.sc_merge2_us);
        ("hard_us", Obs.Trace.F sc.sc_hard_us);
        ("wal_us", Obs.Trace.F sc.sc_wal_us);
        ("c0_fill", Obs.Trace.F (c0_fill t)) ]

let write_entry ?(op = "put") t key entry =
  if t.write_fenced then raise Write_fenced;
  let tr = Pagestore.Store.trace t.store in
  let traced = Obs.Trace.enabled tr in
  let ts = if traced then Obs.Trace.now_us tr else 0.0 in
  let bytes = String.length key + Kv.Entry.payload_bytes entry in
  before_write t ~write_bytes:(max 64 bytes);
  let t_wal = Pagestore.Store.now_us t.store in
  let lsn =
    Pagestore.Wal.append (Pagestore.Store.wal t.store) (encode_ops [ (key, entry) ])
  in
  let wal_dt = Pagestore.Store.now_us t.store -. t_wal in
  t.scratch.sc_wal_us <- t.scratch.sc_wal_us +. wal_dt;
  t.stats.wal_us <- t.stats.wal_us +. wal_dt;
  Memtable.write t.c0 ~lsn key entry;
  t.stats.user_bytes_written <- t.stats.user_bytes_written + bytes;
  if traced then emit_write_span t tr ~op ~ts

(** [write_batch t ops] applies [ops] atomically: one log record covers
    the whole batch, so after a crash either every operation is recovered
    or none is. Operations apply in list order (later entries for the
    same key win). *)
let write_batch t ops =
  if t.write_fenced then raise Write_fenced;
  if ops <> [] then begin
    let tr = Pagestore.Store.trace t.store in
    let traced = Obs.Trace.enabled tr in
    let ts = if traced then Obs.Trace.now_us tr else 0.0 in
    let bytes =
      List.fold_left
        (fun a (k, e) -> a + String.length k + Kv.Entry.payload_bytes e)
        0 ops
    in
    before_write t ~write_bytes:(max 64 bytes);
    let t_wal = Pagestore.Store.now_us t.store in
    let lsn = Pagestore.Wal.append (Pagestore.Store.wal t.store) (encode_ops ops) in
    let wal_dt = Pagestore.Store.now_us t.store -. t_wal in
    t.scratch.sc_wal_us <- t.scratch.sc_wal_us +. wal_dt;
    t.stats.wal_us <- t.stats.wal_us +. wal_dt;
    List.iter (fun (key, entry) -> Memtable.write t.c0 ~lsn key entry) ops;
    t.stats.puts <- t.stats.puts + List.length ops;
    t.stats.user_bytes_written <- t.stats.user_bytes_written + bytes;
    if traced then emit_write_span t tr ~op:"batch" ~ts
  end

(** [absorb_batch t ~lsn ops] folds into C0 a batch slice that was
    already durably logged elsewhere — the per-partition half of
    {!Partitioned.write_batch}, where one shared-WAL record covers
    several trees. The caller is responsible for pacing
    ({!before_write}) and for the WAL append; recovery replays the
    shared record into each tree through its own [should_replay]
    filter, so atomicity across the trees rides the single record. *)
let absorb_batch t ~lsn ops =
  if t.write_fenced then raise Write_fenced;
  if ops <> [] then begin
    let bytes =
      List.fold_left
        (fun a (k, e) -> a + String.length k + Kv.Entry.payload_bytes e)
        0 ops
    in
    List.iter (fun (key, entry) -> Memtable.write t.c0 ~lsn key entry) ops;
    t.stats.puts <- t.stats.puts + List.length ops;
    t.stats.user_bytes_written <- t.stats.user_bytes_written + bytes
  end

(** [put t key value]: blind write — insert or overwrite, zero seeks. *)
let put t key value =
  t.stats.puts <- t.stats.puts + 1;
  write_entry t key (Kv.Entry.Base value)

(** [delete t key]: blind tombstone write. *)
let delete t key =
  t.stats.deletes <- t.stats.deletes + 1;
  write_entry ~op:"delete" t key Kv.Entry.Tombstone

(** [apply_delta t key d]: zero-seek delta write (§2.3); the delta is
    resolved against the base record by reads and merges. *)
let apply_delta t key d =
  t.stats.deltas <- t.stats.deltas + 1;
  write_entry ~op:"delta" t key (Kv.Entry.Delta [ d ])

(** {1 Read path} *)

let shadow_lookup t key =
  match t.merge1 with
  | Some m -> (
      match Merge_process.c0_shadow m with
      | Some shadow ->
          Option.map fst (Memtable.Skiplist.find shadow key)
      | None -> None)
  | None -> None

let frozen_lookup t key =
  match t.frozen with Some f -> Memtable.get f key | None -> None

(* Visit record states newest-first. Early termination (§3.1.1) stops at
   the first base record or tombstone; the ablation visits everything and
   merges, which costs extra seeks for frequently-updated keys. *)
let lookup_entry t key =
  let early = t.config.Config.early_termination in
  let sources =
    [
      (fun () -> Memtable.get t.c0 key);
      (fun () -> shadow_lookup t key);
      (fun () -> frozen_lookup t key);
      (fun () ->
        guard t ~level:"C1" (fun () ->
            Option.bind t.c1 (fun c -> Component.get c key)));
      (fun () ->
        guard t ~level:"C1'" (fun () ->
            Option.bind t.c1_prime (fun c -> Component.get c key)));
      (fun () ->
        guard t ~level:"C2" (fun () ->
            Option.bind t.c2 (fun c -> Component.get c key)));
    ]
  in
  let rec visit acc = function
    | [] -> acc
    | src :: rest -> (
        match src () with
        | None -> visit acc rest
        | Some e ->
            let acc =
              match acc with
              | None -> Some e
              | Some newer -> Some (Kv.Entry.merge t.config.Config.resolver ~newer ~older:e)
            in
            if early then
              match acc with
              | Some (Kv.Entry.Base _ | Kv.Entry.Tombstone) -> acc
              | _ -> visit acc rest
            else visit acc rest)
  in
  visit None sources

(* Newest LSN affecting [key]'s visible state: C0/shadow slots track it
   directly; durable components store it per record. 0 = never written
   (within retained history). OCC validation compares these. *)
let read_version t key =
  let c0_v =
    match Memtable.peek_geq_lsn t.c0 key with
    | Some (k, _, lsn) when String.equal k key -> Some lsn
    | _ -> None
  in
  match c0_v with
  | Some v -> v
  | None -> (
      let shadow_v =
        match t.merge1 with
        | Some m -> (
            match Merge_process.c0_shadow m with
            | Some shadow ->
                Option.map snd (Memtable.Skiplist.find shadow key)
            | None -> None)
        | None -> None
      in
      match shadow_v with
      | Some v -> v
      | None -> (
          let frozen_v =
            match t.frozen with
            | Some f -> (
                match Memtable.peek_geq_lsn f key with
                | Some (k, _, lsn) when String.equal k key -> Some lsn
                | _ -> None)
            | None -> None
          in
          match frozen_v with
          | Some v -> v
          | None ->
              let comp level c =
                Option.bind c (fun c ->
                    if not (Component.maybe_contains c key) then None
                    else
                      guard t ~level (fun () ->
                          match Sstable.Reader.get_with_lsn c.Component.sst key with
                          | Some (_, lsn) -> Some lsn
                          | None -> None))
              in
              let rec first = function
                | [] -> 0
                | (level, c) :: rest -> (
                    match comp level c with Some v -> v | None -> first rest)
              in
              first [ ("C1", t.c1); ("C1'", t.c1_prime); ("C2", t.c2) ]))

let interpret t = function
  | None -> None
  | Some (Kv.Entry.Base v) -> Some v
  | Some Kv.Entry.Tombstone -> None
  | Some (Kv.Entry.Delta ds) ->
      (* no base record anywhere below: resolve against nothing *)
      Kv.Entry.resolve t.config.Config.resolver ~base:None ds

(** [get t key] point lookup: at most ~1 seek on a settled tree thanks to
    Bloom filters and early termination. *)
let get t key =
  t.stats.gets <- t.stats.gets + 1;
  let tr = Pagestore.Store.trace t.store in
  if not (Obs.Trace.enabled tr) then interpret t (lookup_entry t key)
  else begin
    let ts = Obs.Trace.now_us tr in
    let r = interpret t (lookup_entry t key) in
    Obs.Trace.complete tr ~cat:"tree" ~name:"get" ~ts_us:ts
      ~dur_us:(Obs.Trace.now_us tr -. ts)
      ~args:[ ("found", Obs.Trace.B (r <> None)) ];
    r
  end

(** [read_modify_write t key f] reads, applies [f], writes back: the
    B-Tree-equivalent primitive (1 seek vs InnoDB's 2, Table 1). *)
let read_modify_write t key f =
  t.stats.rmws <- t.stats.rmws + 1;
  let v = interpret t (lookup_entry t key) in
  write_entry ~op:"rmw" t key (Kv.Entry.Base (f v))

(** [insert_if_absent t key value] checks for the key and inserts only if
    missing. The check consults C0 and the Bloom filters; when every
    filter says "absent" the whole operation performs zero seeks (§3.1.2). *)
let insert_if_absent t key value =
  t.stats.checked_inserts <- t.stats.checked_inserts + 1;
  let disk = Pagestore.Store.disk t.store in
  let before = (Simdisk.Disk.snapshot disk).Simdisk.Disk.seeks in
  let existing = interpret t (lookup_entry t key) in
  let after = (Simdisk.Disk.snapshot disk).Simdisk.Disk.seeks in
  if after = before then
    t.stats.checked_insert_seekfree <- t.stats.checked_insert_seekfree + 1;
  match existing with
  | Some _ -> false
  | None ->
      write_entry ~op:"insert_if_absent" t key (Kv.Entry.Base value);
      true

(** {1 Scans} *)

let mem_pull mem ~from =
  let cursor = ref from in
  fun () ->
    match Memtable.peek_geq_lsn mem !cursor with
    | Some (k, _, _) as r ->
        cursor := k ^ "\000";
        r
    | None -> None

let skiplist_pull sl ~from =
  let cursor = ref from in
  fun () ->
    match Memtable.Skiplist.succ_geq sl !cursor with
    | Some (k, (e, lsn)) ->
        cursor := k ^ "\000";
        Some (k, e, lsn)
    | None -> None

let component_pull t ~level c ~from =
  guard t ~level (fun () ->
      let it = Component.iterator ~from c in
      fun () -> guard t ~level (fun () -> Sstable.Reader.iter_next_full it))

let scan_sources t start =
  List.filteri
    (fun _ -> Option.is_some)
    [
      Some (mem_pull t.c0 ~from:start);
      (match t.merge1 with
      | Some m ->
          Option.map
            (fun s -> skiplist_pull s ~from:start)
            (Merge_process.c0_shadow m)
      | None -> None);
      Option.map (fun f -> mem_pull f ~from:start) t.frozen;
      Option.map (fun c -> component_pull t ~level:"C1" c ~from:start) t.c1;
      Option.map (fun c -> component_pull t ~level:"C1'" c ~from:start) t.c1_prime;
      Option.map (fun c -> component_pull t ~level:"C2" c ~from:start) t.c2;
    ]
  |> List.map Option.get
  |> List.mapi (fun i pull -> (i, pull))

(** A streaming range cursor over the merged tree. The cursor reflects
    the components live at creation; do not interleave writes with
    cursor pulls (single-writer discipline, as for merges). *)
type cursor = { cursor_merge : Sstable.Merge_iter.t }

(** [cursor t ?from ()] opens a cursor at the smallest key >= [from]. *)
let cursor ?(from = "") t =
  t.stats.scans <- t.stats.scans + 1;
  {
    cursor_merge =
      Sstable.Merge_iter.create ~resolver:t.config.Config.resolver
        ~drop_tombstones:true (scan_sources t from);
  }

(** [cursor_next c] yields the next live record, deltas resolved. *)
let rec cursor_next c =
  match Sstable.Merge_iter.next c.cursor_merge with
  | None -> None
  | Some (key, Kv.Entry.Base v, _) -> Some (key, v)
  | Some (_, (Kv.Entry.Delta _ | Kv.Entry.Tombstone), _) ->
      (* drop_tombstones output is Base-only; defensive *)
      cursor_next c

(** [scan t start n] returns up to [n] live records with key >= [start],
    fully resolved. Touches every component: 2-3 seeks (§3.3). *)
let scan t start n =
  let tr = Pagestore.Store.trace t.store in
  let traced = Obs.Trace.enabled tr in
  let ts = if traced then Obs.Trace.now_us tr else 0.0 in
  let c = cursor ~from:start t in
  let rec collect acc k =
    if k = 0 then List.rev acc
    else
      match cursor_next c with
      | None -> List.rev acc
      | Some row -> collect (row :: acc) (k - 1)
  in
  let rows = collect [] n in
  if traced then
    Obs.Trace.complete tr ~cat:"tree" ~name:"scan" ~ts_us:ts
      ~dur_us:(Obs.Trace.now_us tr -. ts)
      ~args:
        [ ("requested", Obs.Trace.I n);
          ("returned", Obs.Trace.I (List.length rows)) ];
  rows

(** {1 Maintenance, flush, recovery} *)

(** [maintenance t] runs active merges to completion (between experiment
    phases; never during measurement). *)
let maintenance t =
  let guard = ref 0 in
  while t.merge1 <> None || t.merge2 <> None do
    incr guard;
    if !guard > 10_000_000 then failwith "bLSM: maintenance stuck";
    (match step_merge1 t ~quota:(16 * chunk) with
    | `More | `Completed | `Started -> ()
    | `Idle -> ());
    match step_merge2 t ~quota:(16 * chunk) with
    | `More | `Completed | `Idle | `Started -> ()
  done

(** [flush t] drains C0 (and C0') entirely to disk. *)
let flush t =
  let guard = ref 0 in
  let dirty () =
    (not (Memtable.is_empty t.c0))
    || (match t.frozen with Some f -> not (Memtable.is_empty f) | None -> false)
    || t.merge1 <> None || t.merge2 <> None
  in
  while dirty () do
    incr guard;
    if !guard > 10_000_000 then failwith "bLSM: flush stuck";
    (match step_merge1 t ~quota:(16 * chunk) with
    | `More | `Completed | `Started -> ()
    | `Idle -> (
        match step_merge2 t ~quota:(16 * chunk) with
        | `More | `Completed -> ()
        | `Idle | `Started -> ()));
    ()
  done

(** [crash_and_recover t] simulates power loss and runs recovery: the
    buffer pool and all in-memory tree state vanish; the committed root is
    read back, components reopened (indexes re-read, Bloom filters rebuilt
    by scanning — they are not persisted, §4.4.3), and the logical log
    replayed into a fresh C0.

    Recovery tolerates corruption found on the way back up. A component
    whose footer, index, or (with [~verify:true], which checksums every
    page at mount) data fails verification is handled by coverage: if the
    log still holds everything folded into it ([min_lsn] has not been
    truncated away, under [Full] durability), the component is dropped and
    its contents rebuilt by the replay below — the log is the authority.
    Otherwise an openable component is quarantined (mounted; only reads
    that touch a rotted page fail, with the typed {!Corruption}), and an
    unopenable one is a typed recovery failure. Never a wrong answer. *)
let crash_and_recover ?(should_replay = fun _ -> true) ?(verify = false) t =
  let t_rec = Pagestore.Store.now_us t.store in
  (* abort in-flight merge transactions: their output regions are freed,
     exactly as Stasis would roll back an uncommitted merge *)
  (match t.merge1 with Some m -> Merge_process.abandon_c0 m | None -> ());
  (match t.merge2 with Some m -> Merge_process.abandon_c12 m | None -> ());
  Pagestore.Store.crash t.store;
  let root = Pagestore.Store.read_root ~slot:t.root_slot t.store in
  let fresh = create ~config:t.config ~root_slot:t.root_slot t.store in
  let wal = Pagestore.Store.wal t.store in
  let rebuilds = ref 0 in
  (if String.length root >= 4 && String.sub root 0 4 = "BLSM" then begin
     let ts, pos = Repro_util.Varint.read root 4 in
     fresh.timestamp <- ts;
     let pos = ref pos in
     (* Everything folded into the component is still in the log: it can
        be dropped and recovered by replay. Degraded durability may have
        lost acked-by-merge records, so only Full qualifies. *)
     let covered (f : Sstable.Sst_format.footer) =
       f.record_count = 0
       || (Pagestore.Wal.durability wal = Pagestore.Wal.Full
          && f.min_lsn > 0
          && f.min_lsn >= Pagestore.Wal.truncated_to wal)
     in
     let note () =
       fresh.stats.corruptions_detected <- fresh.stats.corruptions_detected + 1
     in
     let drop_component (f : Sstable.Sst_format.footer) =
       List.iter
         (fun (start, length) ->
           Pagestore.Store.free_region t.store
             { Pagestore.Region_allocator.start; length })
         f.extents;
       fresh.stats.component_rebuilds <- fresh.stats.component_rebuilds + 1;
       incr rebuilds;
       None
     in
     let read_opt ~level () =
       let len, p = Repro_util.Varint.read root !pos in
       if len = 0 then begin
         pos := p;
         None
       end
       else begin
         let blob = String.sub root p len in
         pos := p + len;
         let footer =
           (* The root is force-written and tiny; a garbled footer means
              the metadata itself rotted. No extents to rebuild from. *)
           match Sstable.Sst_format.decode_footer blob with
           | f -> f
           | exception Sstable.Sst_format.Corrupt { what; page } ->
               note ();
               raise (Corruption { level; what; page_or_lsn = page })
         in
         match Sstable.Reader.open_from_disk t.store footer with
         | exception Sstable.Sst_format.Corrupt { what; page } ->
             (* index blob rotted: unreadable without it *)
             note ();
             if covered footer then drop_component footer
             else raise (Corruption { level; what; page_or_lsn = page })
         | sst -> (
             let errs = if verify then Sstable.Reader.verify sst else [] in
             (* A rotted Bloom blob is derived data: build_bloom masks it
                by rebuilding from a scan, so it never justifies dropping
                or quarantining the component. Count it, ignore it. *)
             fresh.stats.corruptions_detected <-
               fresh.stats.corruptions_detected
               + List.length
                   (List.filter
                      (fun (what, _) -> what = "bloom blob checksum")
                      errs);
             let errs =
               List.filter (fun (what, _) -> what <> "bloom blob checksum") errs
             in
             match errs with
             | [] ->
                 let bloom =
                   Component.build_bloom ~kind:t.config.Config.bloom_kind
                     ~bits_per_key:t.config.Config.bloom_bits_per_key sst
                 in
                 Some (Component.of_sst ?bloom sst)
             | _ :: _ ->
                 fresh.stats.corruptions_detected <-
                   fresh.stats.corruptions_detected + List.length errs;
                 if covered footer then drop_component footer
                 else begin
                   (* Quarantine: mount it — good pages stay readable,
                      rotted ones raise on touch. Bloomless: the rebuild
                      scan would trip over the bad page. *)
                   fresh.stats.quarantined_components <-
                     fresh.stats.quarantined_components + 1;
                   Some (Component.of_sst sst)
                 end)
       end
     in
     fresh.c1 <- read_opt ~level:"C1" ();
     fresh.c1_prime <- read_opt ~level:"C1'" ();
     fresh.c2 <- read_opt ~level:"C2" ();
     (* a C1':C2 merge was in flight at the crash: restart it from scratch
        (its uncommitted output was rolled back above) *)
     match fresh.c1_prime with
     | Some c1p ->
         fresh.merge2 <-
           Some
             (guard fresh ~level:"C2" (fun () ->
                  Merge_process.create_c12 ~config:t.config ~store:t.store
                    ~c1_prime:c1p ~c2:fresh.c2))
     | None -> ()
   end);
  (* Replay the logical log into C0, skipping records whose effect is
     already durable in a committed component: every component record
     carries the newest LSN folded into it, so a WAL record with
     lsn <= that is covered. Base/Tombstone replays would be idempotent,
     but replaying a covered *delta* would apply it twice. *)
  let durable_lsn key =
    let check = function
      | Some c -> (
          (* A rotted page in a quarantined component reads as "unknown":
             replay the record. Reads of that key hit the bad page and
             raise the typed error anyway, so this cannot turn into a
             silent double-apply. *)
          match Sstable.Reader.get_with_lsn c.Component.sst key with
          | Some (_, lsn) -> Some lsn
          | None -> None
          | exception Sstable.Sst_format.Corrupt _ ->
              fresh.stats.corruptions_detected <-
                fresh.stats.corruptions_detected + 1;
              None)
      | None -> None
    in
    match check fresh.c1 with
    | Some l -> l
    | None -> (
        match check fresh.c1_prime with
        | Some l -> l
        | None -> ( match check fresh.c2 with Some l -> l | None -> 0))
  in
  (match
     Pagestore.Wal.replay wal ~from_lsn:0 (fun lsn payload ->
         List.iter
           (fun (key, entry) ->
             (* [should_replay] scopes a shared log to this tree's key range
                (partitioned stores); singleton trees replay everything *)
             if should_replay key && lsn > durable_lsn key then
               Memtable.write fresh.c0 ~lsn key entry)
           (decode_ops payload))
   with
  | () -> ()
  | exception Pagestore.Wal.Corrupt { what; lsn } ->
      (* mid-log rot: power loss cannot explain it, and silently skipping
         a record would resurrect overwritten state *)
      fresh.stats.corruptions_detected <- fresh.stats.corruptions_detected + 1;
      raise (Corruption { level = "WAL"; what; page_or_lsn = lsn }));
  if !rebuilds > 0 then commit_root fresh;
  let rec_dt = Pagestore.Store.now_us t.store -. t_rec in
  fresh.stats.recovery_us <- fresh.stats.recovery_us +. rec_dt;
  let tr = Pagestore.Store.trace t.store in
  if Obs.Trace.enabled tr then
    Obs.Trace.complete tr ~cat:"tree" ~name:"recovery" ~ts_us:t_rec
      ~dur_us:rec_dt
      ~args:
        [ ("rebuilds", Obs.Trace.I !rebuilds);
          ("replayed_c0_bytes", Obs.Trace.I (Memtable.bytes fresh.c0)) ];
  fresh

(** {1 Scrubbing} *)

type scrub_report = {
  scrub_errors : (string * string * int) list;
      (** (level, what, page-or-lsn) per mismatch *)
  scrub_wal_records : int;  (** live log records checked *)
  scrub_clean : bool;
}

(** [scrub t] proactively verifies every checksum the tree owns — each
    on-disk component page, the index and Bloom blobs, every live WAL
    record — and reports what it found, without touching tree state.
    The on-demand form of the background scrubbing a production store
    would run; pairs with {!crash_and_recover}'s [~verify]. *)
let scrub t =
  t.stats.scrubs <- t.stats.scrubs + 1;
  let comp name = function
    | None -> []
    | Some c ->
        List.map
          (fun (what, page) -> (name, what, page))
          (Sstable.Reader.verify c.Component.sst)
  in
  let wal_records, wal_errs =
    Pagestore.Wal.verify (Pagestore.Store.wal t.store)
  in
  let errors =
    comp "C1" t.c1 @ comp "C1'" t.c1_prime @ comp "C2" t.c2
    @ List.map (fun (what, lsn) -> ("WAL", what, lsn)) wal_errs
  in
  t.stats.corruptions_detected <-
    t.stats.corruptions_detected + List.length errors;
  { scrub_errors = errors; scrub_wal_records = wal_records;
    scrub_clean = errors = [] }

(** {1 Introspection} *)

type level_info = {
  level : string;
  bytes : int;
  records : int;
  level_timestamp : int;
}

let levels t =
  let comp name = function
    | None -> []
    | Some c ->
        [
          {
            level = name;
            bytes = Component.data_bytes c;
            records = Component.record_count c;
            level_timestamp = Component.timestamp c;
          };
        ]
  in
  [
    {
      level = "C0";
      bytes = Memtable.bytes t.c0;
      records = Memtable.count t.c0;
      level_timestamp = 0;
    };
  ]
  @ comp "C1" t.c1 @ comp "C1'" t.c1_prime @ comp "C2" t.c2

(** Footer of each mounted on-disk component, newest level first —
    extents and page layout for scrub tooling and fault tests. *)
let component_footers t =
  let comp name = function
    | None -> []
    | Some c -> [ (name, Sstable.Reader.footer c.Component.sst) ]
  in
  comp "C1" t.c1 @ comp "C1'" t.c1_prime @ comp "C2" t.c2

(** Total bloom-filter RAM currently allocated (Appendix A overhead). *)
let bloom_bytes t =
  List.fold_left
    (fun acc c ->
      match c with
      | Some { Component.bloom = Some b; _ } -> acc + Bloom.size_bytes b
      | _ -> acc)
    0
    [ t.c1; t.c1_prime; t.c2 ]

(* Bloom-filter outcome totals: retired components' counters (folded into
   stats by [retire_component]) plus the live components' own. *)
let bloom_counters t =
  List.fold_left
    (fun (neg, fp) c ->
      match c with
      | Some c ->
          ( neg + c.Component.bloom_negative,
            fp + c.Component.bloom_false_positive )
      | None -> (neg, fp))
    (t.stats.bloom_negative, t.stats.bloom_false_positive)
    [ t.c1; t.c1_prime; t.c2 ]

(** Lookups any Bloom filter answered "absent" for free — tree lifetime,
    retired components included. *)
let bloom_negative_total t = fst (bloom_counters t)

(** Filter said maybe, the component read said no: the wasted page reads
    the filters exist to avoid — tree lifetime, retired included. *)
let bloom_false_positive_total t = snd (bloom_counters t)

(** {1 Metrics} *)

(** [metrics t] is the tree's registry: every [tree.*] stat plus the
    whole store stack ([disk.*], [wal.*], [buf.*], [faults.*]) as
    pull-closures over the live records. Built once per tree and cached;
    dumps sample at call time. *)
let metrics t =
  match t.metrics_cache with
  | Some reg -> reg
  | None ->
      let reg = Obs.Metrics.create () in
      let open Obs.Metrics in
      let s = t.stats in
      counter reg "tree.puts" ~help:"blind writes" (fun () -> s.puts);
      counter reg "tree.gets" ~help:"point lookups" (fun () -> s.gets);
      counter reg "tree.deletes" ~help:"tombstone writes" (fun () -> s.deletes);
      counter reg "tree.deltas" ~help:"delta writes" (fun () -> s.deltas);
      counter reg "tree.scans" ~help:"range scans" (fun () -> s.scans);
      counter reg "tree.rmws" ~help:"read-modify-writes" (fun () -> s.rmws);
      counter reg "tree.checked_inserts" ~help:"insert-if-absent calls"
        (fun () -> s.checked_inserts);
      counter reg "tree.checked_insert_seekfree"
        ~help:"insert-if-absent resolved by Bloom filters alone" (fun () ->
          s.checked_insert_seekfree);
      counter reg "tree.merge1_completions" ~help:"C0:C1 runs committed"
        (fun () -> s.merge1_completions);
      counter reg "tree.merge2_completions" ~help:"C1':C2 merges committed"
        (fun () -> s.merge2_completions);
      counter reg "tree.promotions" ~help:"C1 -> C1' promotions" (fun () ->
          s.promotions);
      counter reg "tree.hard_stalls" ~help:"writes that hit the C0 hard limit"
        (fun () -> s.hard_stalls);
      counter reg "tree.user_bytes_written" ~help:"application payload bytes"
        (fun () -> s.user_bytes_written);
      counter reg "tree.corruptions_detected" ~help:"checksum mismatches seen"
        (fun () -> s.corruptions_detected);
      counter reg "tree.component_rebuilds" ~help:"components rebuilt from WAL"
        (fun () -> s.component_rebuilds);
      counter reg "tree.quarantined_components"
        ~help:"corrupt components mounted read-around" (fun () ->
          s.quarantined_components);
      counter reg "tree.scrubs" ~help:"scrub passes" (fun () -> s.scrubs);
      histogram reg "tree.stall_us" ~help:"per-write pacing time, µs"
        s.stall_us;
      gauge reg "tree.stall.merge1_us" ~help:"pacing time spent in merge1, µs"
        (fun () -> s.stall_merge1_us);
      gauge reg "tree.stall.merge2_us" ~help:"pacing time spent in merge2, µs"
        (fun () -> s.stall_merge2_us);
      gauge reg "tree.stall.hard_us" ~help:"pacing time spent hard-stalled, µs"
        (fun () -> s.stall_hard_us);
      gauge reg "tree.wal_us" ~help:"WAL append/group-commit time, µs"
        (fun () -> s.wal_us);
      gauge reg "tree.recovery_us" ~help:"recovery replay/rebuild time, µs"
        (fun () -> s.recovery_us);
      gauge reg "tree.c0_fill" ~help:"C0 fill fraction" (fun () -> c0_fill t);
      gauge reg "tree.c0_bytes" ~help:"C0 bytes" (fun () ->
          float_of_int (Memtable.bytes t.c0));
      gauge reg "tree.disk_data_bytes" ~help:"bytes in C1 + C1' + C2"
        (fun () -> float_of_int (disk_data_bytes t));
      gauge reg "tree.effective_r" ~help:"effective size ratio R" (fun () ->
          effective_r t);
      gauge reg "tree.bloom_bytes" ~help:"Bloom filter RAM" (fun () ->
          float_of_int (bloom_bytes t));
      counter reg "bloom.negative"
        ~help:"lookups a Bloom filter answered absent for free" (fun () ->
          bloom_negative_total t);
      counter reg "bloom.false_positive"
        ~help:"Bloom maybes refuted by the component read" (fun () ->
          bloom_false_positive_total t);
      let level_bloom name comp =
        gauge reg ("bloom." ^ name ^ ".negative")
          ~help:("filter negatives, live " ^ name) (fun () ->
            match comp () with
            | Some c -> float_of_int c.Component.bloom_negative
            | None -> 0.);
        gauge reg ("bloom." ^ name ^ ".false_positive")
          ~help:("filter false positives, live " ^ name) (fun () ->
            match comp () with
            | Some c -> float_of_int c.Component.bloom_false_positive
            | None -> 0.)
      in
      level_bloom "c1" (fun () -> t.c1);
      level_bloom "c1_prime" (fun () -> t.c1_prime);
      level_bloom "c2" (fun () -> t.c2);
      gauge reg "tree.inprogress1" ~help:"merge1 progress estimator (§4.1)"
        (fun () -> merge1_inprogress t);
      gauge reg "tree.inprogress2" ~help:"merge2 progress estimator (§4.1)"
        (fun () -> merge2_inprogress t);
      gauge reg "tree.outprogress1" ~help:"merge1 out-progress target (§4.1)"
        (fun () -> outprogress1 t);
      Pagestore.Store.register_metrics reg t.store;
      t.metrics_cache <- Some reg;
      reg

(** {1 Engine adapter} *)

let engine ?(name = "bLSM") t =
  {
    Kv.Kv_intf.name;
    disk = disk t;
    get = (fun k -> get t k);
    put = (fun k v -> put t k v);
    delete = (fun k -> delete t k);
    apply_delta = (fun k d -> apply_delta t k d);
    read_modify_write = (fun k f -> read_modify_write t k f);
    insert_if_absent = (fun k v -> insert_if_absent t k v);
    scan = (fun start n -> scan t start n);
    maintenance = (fun () -> maintenance t);
  }
