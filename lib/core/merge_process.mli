(** Incremental merge state machines.

    Each merge pulls from its inputs in key order and streams output pages
    through an {!Sstable.Builder}, doing at most [quota] input bytes per
    step — the "smooth" progress property the schedulers require (§4.1).
    {!Tree} owns their lifecycle; this interface exists mainly so the
    state machines can be unit-tested in isolation. *)

type progress = {
  bytes_read : int;  (** input bytes consumed so far *)
  bytes_total : int;  (** current estimate of total input bytes *)
  output_bytes : int;
}

type outcome = [ `Done | `More ]

(** {1 C0 : C1 merge}

    With snowshoveling ({!Live}) the C0 side re-queries the live memtable
    on every record, so inserts landing ahead of the cursor join the
    current run (§4.2); consumed records stay readable in a shadow table
    until the merge commits. The gear scheduler instead merges a frozen
    C0' snapshot ({!Frozen}), discarded wholesale at completion. *)

type c0_source =
  | Live of {
      mem : Memtable.t;
      shadow : (Kv.Entry.t * int) Memtable.Skiplist.t;
          (** consumed-but-uncommitted records (entry, newest lsn) *)
    }
  | Frozen of Memtable.t

type c0_merge

val create_c0_merge :
  config:Config.t ->
  store:Pagestore.Store.t ->
  source:c0_source ->
  c1:Component.t option ->
  run_cap:int ->
  expected_items:int ->
  c0_merge

(** [step_c0 m ~quota] consumes up to [quota] input bytes. *)
val step_c0 : c0_merge -> quota:int -> outcome

val c0_progress : c0_merge -> progress

(** inprogress_i = bytes read / (|C'_{i-1}| + |C_i|), clamped (§4.1). *)
val c0_inprogress : c0_merge -> float

(** [finish_c0 m ~timestamp] seals the output: (footer, index blob,
    Bloom filter). The caller swaps it in and clears the shadow. *)
val finish_c0 :
  c0_merge -> timestamp:int -> Sstable.Sst_format.footer * string * Bloom.t option

(** [abandon_c0 m] frees the uncommitted output (crash rollback). *)
val abandon_c0 : c0_merge -> unit

val c0_shadow : c0_merge -> (Kv.Entry.t * int) Memtable.Skiplist.t option
val c0_old_c1 : c0_merge -> Component.t option
val c0_source_kind : c0_merge -> [ `Live | `Frozen ]
val c0_frozen_mem : c0_merge -> Memtable.t option
[@@lint.allow "U001"] (* merge-inspection surface with its [c0_*] siblings *)

(** {1 C1' : C2 merge}

    Two immutable inputs; C2 is the bottom level, so tombstones are
    elided and orphan deltas resolve to base records — the all-base
    invariant behind one-seek reads (§3.1.1). *)

type c12

val create_c12 :
  config:Config.t ->
  store:Pagestore.Store.t ->
  c1_prime:Component.t ->
  c2:Component.t option ->
  c12

val step_c12 : c12 -> quota:int -> outcome
val c12_progress : c12 -> progress
val c12_inprogress : c12 -> float

val finish_c12 :
  c12 -> timestamp:int -> Sstable.Sst_format.footer * string * Bloom.t option

val abandon_c12 : c12 -> unit
val c12_inputs : c12 -> Component.t * Component.t option
