(** Wire format for the replication protocol.

    Every frame leads with the sender's epoch (fencing is judged before
    anything else), then a tagged body. Decoding is total: truncated or
    unknown frames decode to [None] and are dropped — a faulty network
    may deliver anything, and garbage must never kill a node. *)

(** Follower-to-primary requests. *)
type req =
  | Probe  (** learn the primary's log bounds *)
  | Wal_batch of { from_lsn : int; max_records : int }
  | Snapshot_begin  (** start a full-state resync session *)
  | Snapshot_chunk of { session : int; from_row : int; max_rows : int }
  | Snapshot_done of { session : int }

(** Primary-to-follower responses. *)
type resp =
  | Fenced of { epoch : int }
      (** the request carried a stale epoch; [epoch] is the server's *)
  | Status of { next_lsn : int; truncated_to : int }
  | Batch of { records : (int * string) list; next_lsn : int }
      (** [(lsn, payload)] in LSN order; [next_lsn] is the log head *)
  | Truncated of { truncated_to : int }
      (** the log no longer covers [from_lsn]; resync *)
  | Snapshot_meta of { session : int; snapshot_lsn : int; total_rows : int }
  | Chunk of { session : int; rows : (string * string) list; last : bool }
  | Snapshot_gone  (** unknown/expired session; restart the resync *)
  | Ack

val encode_req : epoch:int -> req -> string

(** [(sender epoch, request)], or [None] for malformed frames. *)
val decode_req : string -> (int * req) option

val encode_resp : epoch:int -> resp -> string
val decode_resp : string -> (int * resp) option
