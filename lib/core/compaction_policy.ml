(* Pluggable compaction policies: pure victim selection over a metadata
   snapshot. See the .mli for the design-space map. Engines own the
   mechanism (iterators, builders, install) and the pacing; everything
   here is arithmetic over run metadata, so the same code drives the
   engines, the structural QCheck invariants, and the bench grid. *)

type run = {
  run_id : int;
  run_level : int;
  run_bytes : int;
  run_records : int;
  run_min_key : string;
  run_max_key : string;
}

type view = {
  v_levels : run list array;
  v_l0_trigger : int;
  v_fanout : float;
  v_base_bytes : int;
  v_file_bytes : int;
  v_max_levels : int;
}

type job = {
  j_level : int;
  j_inputs : int list;
  j_overlaps : int list;
  j_target : int;
  j_split_bytes : int;
  j_why : string;
}

type t = {
  p_name : string;
  p_pick : view -> job option;
  p_job_at : view -> level:int -> job option;
  p_check : view -> string option;
}

(* Identical formula to the pre-extraction Leveldb_sim.level_target:
   the seed engine's byte-identity depends on this exact float
   expression. *)
let level_target v i =
  if i = 0 then max_int
  else
    int_of_float
      (float_of_int v.v_base_bytes *. (v.v_fanout ** float_of_int (i - 1)))

let level_bytes v i =
  List.fold_left (fun a r -> a + r.run_bytes) 0 v.v_levels.(i)

let run_count v i = List.length v.v_levels.(i)

let intersects r ~min_key ~max_key =
  not
    (String.compare r.run_max_key min_key < 0
    || String.compare r.run_min_key max_key > 0)

let overlapping v ~level ~min_key ~max_key =
  if level >= v.v_max_levels then []
  else
    List.filter_map
      (fun r -> if intersects r ~min_key ~max_key then Some r.run_id else None)
      v.v_levels.(level)

let ids runs = List.map (fun r -> r.run_id) runs

let sort_by_min_key runs =
  List.sort (fun a b -> String.compare a.run_min_key b.run_min_key) runs

(* Key-range envelope of a run list (requires a non-empty list). *)
let envelope runs =
  let smin a b = if String.compare a b <= 0 then a else b in
  let smax a b = if String.compare a b >= 0 then a else b in
  match runs with
  | [] -> invalid_arg "Compaction_policy.envelope: empty"
  | r :: rest ->
      List.fold_left
        (fun (lo, hi) x -> (smin lo x.run_min_key, smax hi x.run_max_key))
        (r.run_min_key, r.run_max_key)
        rest

(* Structural checks shared between policies. *)

let check_run_cap v ~level ~cap =
  let n = run_count v level in
  if n > cap then
    Some (Printf.sprintf "level %d holds %d runs > limit %d" level n cap)
  else None

let check_disjoint v ~level =
  let sorted = sort_by_min_key v.v_levels.(level) in
  let rec go = function
    | a :: (b :: _ as rest) ->
        if String.compare a.run_max_key b.run_min_key >= 0 then
          Some
            (Printf.sprintf
               "level %d runs %d and %d overlap (%S..%S vs %S..%S)" level
               a.run_id b.run_id a.run_min_key a.run_max_key b.run_min_key
               b.run_max_key)
        else go rest
    | _ -> None
  in
  go sorted

let first_check checks =
  List.fold_left
    (fun acc c -> match acc with Some _ -> acc | None -> c ())
    None checks

(* ------------------------------------------------------------------ *)
(* Tiered: up to T overlapping runs per level; a full level merges into
   one run stacked on the next. The last level consolidates in place so
   the run count stays bounded everywhere. *)

let tiered () =
  let width v = max 2 (int_of_float v.v_fanout) in
  let job_at v ~level =
    let runs = v.v_levels.(level) in
    if List.length runs < 2 then None
    else
      let last = v.v_max_levels - 1 in
      let target = if level >= last then last else level + 1 in
      Some
        {
          j_level = level;
          j_inputs = ids runs;
          j_overlaps = [];
          j_target = target;
          j_split_bytes = 0;
          j_why = (if target = level then "tier-consolidate" else "tier-full");
        }
  in
  let pick v =
    let t = width v in
    let rec go i =
      if i >= v.v_max_levels then None
      else if run_count v i >= t then job_at v ~level:i
      else go (i + 1)
    in
    go 0
  in
  let check v =
    let t = width v in
    first_check
      (List.init v.v_max_levels (fun i () -> check_run_cap v ~level:i ~cap:t))
  in
  { p_name = "tiered"; p_pick = pick; p_job_at = job_at; p_check = check }

(* ------------------------------------------------------------------ *)
(* Leveled: one run per level below level 0, sized base * T^(i-1); an
   overfull level merges wholesale into the next. The last level has no
   byte bound (there is nowhere further to go). *)

let leveled () =
  let job_at v ~level =
    let runs = v.v_levels.(level) in
    if runs = [] then None
    else
      let target = min (level + 1) (v.v_max_levels - 1) in
      if target = level then None
      else
        Some
          {
            j_level = level;
            j_inputs = ids runs;
            j_overlaps = ids v.v_levels.(target);
            j_target = target;
            j_split_bytes = 0;
            j_why = (if level = 0 then "l0-flush-backlog" else "level-overfull");
          }
  in
  let pick v =
    if run_count v 0 >= v.v_l0_trigger then job_at v ~level:0
    else begin
      let rec go i =
        if i >= v.v_max_levels - 1 then None
        else if level_bytes v i > level_target v i then job_at v ~level:i
        else go (i + 1)
      in
      go 1
    end
  in
  let check v =
    first_check
      ((fun () -> check_run_cap v ~level:0 ~cap:v.v_l0_trigger)
      :: List.concat
           (List.init (v.v_max_levels - 1) (fun j ->
                let i = j + 1 in
                [
                  (fun () -> check_run_cap v ~level:i ~cap:1);
                  (fun () ->
                    let b = level_bytes v i in
                    let cap = level_target v i in
                    if i < v.v_max_levels - 1 && b > cap then
                      Some
                        (Printf.sprintf "level %d holds %d bytes > target %d"
                           i b cap)
                    else None);
                ])))
  in
  { p_name = "leveled"; p_pick = pick; p_job_at = job_at; p_check = check }

(* ------------------------------------------------------------------ *)
(* Lazy-leveled: tiered upper levels, a single leveled run at the last
   level — cheap upper-level merges with the read/space profile of
   leveling where most of the data lives. *)

let lazy_leveled () =
  let width v = max 2 (int_of_float v.v_fanout) in
  let last v = v.v_max_levels - 1 in
  let job_at v ~level =
    let runs = v.v_levels.(level) in
    let lastl = last v in
    if level >= lastl then None
    else if runs = [] then None
    else if level + 1 = lastl then
      Some
        {
          j_level = level;
          j_inputs = ids runs;
          j_overlaps = ids v.v_levels.(lastl);
          j_target = lastl;
          j_split_bytes = 0;
          j_why = "lazy-into-last";
        }
    else if List.length runs < 2 then None
    else
      Some
        {
          j_level = level;
          j_inputs = ids runs;
          j_overlaps = [];
          j_target = level + 1;
          j_split_bytes = 0;
          j_why = "tier-full";
        }
  in
  let pick v =
    let t = width v in
    let rec go i =
      if i >= last v then None
      else
        let trigger = if i = 0 then v.v_l0_trigger else t in
        if run_count v i >= trigger then job_at v ~level:i else go (i + 1)
    in
    go 0
  in
  let check v =
    let t = width v in
    first_check
      (List.init v.v_max_levels (fun i () ->
           if i = last v then check_run_cap v ~level:i ~cap:1
           else
             check_run_cap v ~level:i
               ~cap:(if i = 0 then v.v_l0_trigger else t)))
  in
  {
    p_name = "lazy-leveled";
    p_pick = pick;
    p_job_at = job_at;
    p_check = check;
  }

(* ------------------------------------------------------------------ *)
(* Partial: leveled shape, key-range granularity. Below level 0 a level
   holds many disjoint file-sized runs; an overfull level moves one run
   (round-robin over the key space) plus its overlaps, so each merge is
   small and the write pause short. *)

let partial () =
  let ptr = ref [||] in
  let ensure v =
    if Array.length !ptr < v.v_max_levels then begin
      let a = Array.make v.v_max_levels "" in
      Array.blit !ptr 0 a 0 (Array.length !ptr);
      ptr := a
    end
  in
  let job_at v ~level =
    ensure v;
    let runs = v.v_levels.(level) in
    if runs = [] then None
    else if level >= v.v_max_levels - 1 then None
    else if level = 0 then begin
      let min_key, max_key = envelope runs in
      Some
        {
          j_level = 0;
          j_inputs = ids runs;
          j_overlaps = overlapping v ~level:1 ~min_key ~max_key;
          j_target = 1;
          j_split_bytes = v.v_file_bytes;
          j_why = "l0-flush-backlog";
        }
    end
    else begin
      let sorted = sort_by_min_key runs in
      let pick =
        match
          List.find_opt
            (fun r -> String.compare r.run_min_key !ptr.(level) > 0)
            sorted
        with
        | Some r -> r
        | None -> List.hd sorted (* wrap *)
      in
      !ptr.(level) <- pick.run_min_key;
      Some
        {
          j_level = level;
          j_inputs = [ pick.run_id ];
          j_overlaps =
            overlapping v ~level:(level + 1) ~min_key:pick.run_min_key
              ~max_key:pick.run_max_key;
          j_target = level + 1;
          j_split_bytes = v.v_file_bytes;
          j_why = "partial-round-robin";
        }
    end
  in
  let pick v =
    if run_count v 0 >= v.v_l0_trigger then job_at v ~level:0
    else begin
      let rec go i =
        if i >= v.v_max_levels - 1 then None
        else if level_bytes v i > level_target v i then job_at v ~level:i
        else go (i + 1)
      in
      go 1
    end
  in
  let check v =
    first_check
      ((fun () -> check_run_cap v ~level:0 ~cap:v.v_l0_trigger)
      :: List.init (v.v_max_levels - 1) (fun j () ->
             check_disjoint v ~level:(j + 1)))
  in
  { p_name = "partial"; p_pick = pick; p_job_at = job_at; p_check = check }

(* ------------------------------------------------------------------ *)
(* LevelDB seed policy: the exact selection logic extracted from
   Leveldb_sim — VersionSet::Finalize scores (level-0 file count over
   the trigger, deeper levels bytes over target; ties go to the deeper
   level), level 0 compacts all its files plus their level-1 overlaps,
   deeper levels move the first file past a per-level round-robin
   pointer. Any change here shows up in the pinned byte-identity
   regression in test_leveldb.ml. *)

let leveldb_seed () =
  let ptr = ref [||] in
  let ensure v =
    if Array.length !ptr < v.v_max_levels then begin
      let a = Array.make v.v_max_levels "" in
      Array.blit !ptr 0 a 0 (Array.length !ptr);
      ptr := a
    end
  in
  let score v i =
    if i = 0 then
      float_of_int (run_count v 0) /. float_of_int v.v_l0_trigger
    else float_of_int (level_bytes v i) /. float_of_int (level_target v i)
  in
  let job_at v ~level =
    ensure v;
    let runs = v.v_levels.(level) in
    if runs = [] then None
    else if level = 0 then begin
      let min_key, max_key = envelope runs in
      Some
        {
          j_level = 0;
          j_inputs = ids runs;
          j_overlaps = overlapping v ~level:1 ~min_key ~max_key;
          j_target = 1;
          j_split_bytes = v.v_file_bytes;
          j_why = "score-l0";
        }
    end
    else begin
      let sorted = sort_by_min_key runs in
      let pick =
        match
          List.find_opt
            (fun r -> String.compare r.run_min_key !ptr.(level) > 0)
            sorted
        with
        | Some r -> r
        | None -> List.hd sorted (* wrap *)
      in
      !ptr.(level) <- pick.run_min_key;
      Some
        {
          j_level = level;
          j_inputs = [ pick.run_id ];
          j_overlaps =
            overlapping v ~level:(level + 1) ~min_key:pick.run_min_key
              ~max_key:pick.run_max_key;
          j_target = level + 1;
          j_split_bytes = v.v_file_bytes;
          j_why = "score-round-robin";
        }
    end
  in
  let pick v =
    let best = ref (-1) and best_score = ref 1.0 in
    for i = 0 to v.v_max_levels - 2 do
      let s = score v i in
      if s >= !best_score then begin
        best := i;
        best_score := s
      end
    done;
    if !best >= 0 then job_at v ~level:!best else None
  in
  let check v =
    first_check
      (List.init (v.v_max_levels - 1) (fun j () ->
           check_disjoint v ~level:(j + 1)))
  in
  {
    p_name = "leveldb-seed";
    p_pick = pick;
    p_job_at = job_at;
    p_check = check;
  }

(* ------------------------------------------------------------------ *)

let all_names = [ "tiered"; "leveled"; "lazy-leveled"; "partial"; "leveldb-seed" ]

let of_name = function
  | "tiered" -> Some (tiered ())
  | "leveled" -> Some (leveled ())
  | "lazy-leveled" -> Some (lazy_leveled ())
  | "partial" -> Some (partial ())
  | "leveldb-seed" -> Some (leveldb_seed ())
  | _ -> None
