(** The in-memory oracle: a sorted map holding the logical state every
    engine must agree with.

    Semantics mirror the engines' shared contract: blind put/delete,
    append-resolver deltas ([base ^ delta], delta-as-base when missing —
    {!Kv.Entry.append_resolver}), inclusive-start bounded scans. The
    differential tests and the DST interpreter both check engines
    against this module, so it is deliberately the dumbest possible
    implementation of the spec. *)

module SMap = Map.Make (String)

type t = { mutable m : string SMap.t }

let create () = { m = SMap.empty }

(** Cheap snapshot: the map is immutable underneath. *)

let get o k = SMap.find_opt k o.m
let put o k v = o.m <- SMap.add k v o.m
let delete o k = o.m <- SMap.remove k o.m

let delta o k d =
  o.m <-
    SMap.update k
      (function Some v -> Some (v ^ d) | None -> Some d)
      o.m

let insert_if_absent o k v =
  if SMap.mem k o.m then false
  else begin
    put o k v;
    true
  end

let read_modify_write o k f = put o k (f (get o k))

(** [scan o start n]: up to [n] bindings with key >= [start], in order. *)
let scan o start n =
  let rec take seq n acc =
    if n = 0 then List.rev acc
    else
      match seq () with
      | Seq.Nil -> List.rev acc
      | Seq.Cons (kv, rest) -> take rest (n - 1) (kv :: acc)
  in
  take (SMap.to_seq_from start o.m) n []

let bindings o = SMap.bindings o.m
let cardinal o = SMap.cardinal o.m

(** Apply a decoded logical-log entry — batch items route through here
    so oracle semantics stay in one place. *)
let apply_entry o k (e : Kv.Entry.t) =
  match e with
  | Kv.Entry.Base v -> put o k v
  | Kv.Entry.Tombstone -> delete o k
  | Kv.Entry.Delta ds -> List.iter (delta o k) ds
