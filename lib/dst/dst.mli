(** Deterministic simulation testing (DST) for the bLSM stack.

    One seed expands to one plan — a workload trace with interleaved
    faults — which the interpreter executes against any engine driver in
    lock-step with an in-memory oracle, checking equivalence,
    durability, OCC serializability, replication convergence and
    observability consistency at checkpoints.  Failures shrink to
    minimized traces saved as JSON repro files.

    The harness-wide invariant, asserted by [@dst-smoke] on every
    [dune runtest]: everything is a function of the seed — two calls of
    {!run_seed} with the same arguments produce byte-identical
    {!Interp.outcome.report}s.

    See DESIGN.md §9 for the plan grammar, the invariants, the
    shrinking algorithm and replay instructions. *)

module Plan = Plan
module Oracle = Oracle
module Driver = Driver
module Interp = Interp
module Shrink = Shrink
module Repro = Repro

(** [run_seed ~driver_name ~seed ()] generates the plan for
    [(driver_name, seed)] and runs it against a fresh engine.
    @raise Invalid_argument on an unknown driver name. *)
val run_seed :
  ?params:Plan.params ->
  driver_name:string ->
  seed:int ->
  unit ->
  Plan.t * Interp.outcome

(** [replay plan] runs a (typically loaded-from-repro) plan against a
    fresh engine of its recorded driver. *)
val replay : Plan.t -> Interp.outcome

(** [shrink_failing plan] minimizes a failing plan against fresh engines
    of its recorded driver; returns the (possibly unchanged) plan and
    shrink statistics. *)
val shrink_failing : ?budget:int -> Plan.t -> Plan.t * Shrink.stats
