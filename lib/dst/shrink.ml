(** Trace minimization: deterministically shrink a failing plan to a
    small reproducer.

    Strategy is delta-debugging over the step list (drop chunks of
    size n/2, n/4, … 1) interleaved with structural simplification of
    the surviving steps: drop armed faults, shrink values to one byte,
    shrink scan widths, drop batch items, drop transaction ops and
    interleaves. Each candidate runs against a {e fresh} engine from
    the driver factory, so the only state a candidate sees is the state
    its own steps create — which is what makes the final trace a
    self-contained repro.

    "Failing" is judged by the caller's predicate (default: the
    interpreter reports violations or dies). The shrinker is a
    fixpoint: it loops passes until no candidate under the budget makes
    the plan smaller. *)

type stats = {
  mutable candidates : int;  (** interpreter runs spent *)
  mutable accepted : int;  (** candidates that kept failing *)
}

let default_budget = 1500

(** [fails mk plan] — the default failure predicate: the plan produces
    invariant violations, or escapes the interpreter entirely. *)
let fails mk plan =
  (match Interp.run (mk ()) plan with
   | outcome -> not outcome.Interp.ok
   | exception _ -> true)
(* Deliberate catch-all: "escapes the interpreter" is itself the failure
   signal ddmin preserves, whatever the exception. *)
[@lint.allow "C002"]

let size plan = List.length plan.Plan.steps

(* ------------------------------------------------------------------ *)
(* Candidate generators *)

let drop_range steps lo len =
  List.filteri (fun i _ -> i < lo || i >= lo + len) steps

let simpler_op (op : Plan.op) : Plan.op list =
  match op with
  | Plan.Put (k, v) when String.length v > 1 -> [ Plan.Put (k, "v") ]
  | Plan.Delta (k, d) when String.length d > 1 -> [ Plan.Delta (k, "d") ]
  | Plan.Rmw (k, s) when String.length s > 1 -> [ Plan.Rmw (k, "r") ]
  | Plan.Insert_if_absent (k, v) when String.length v > 1 ->
      [ Plan.Insert_if_absent (k, "v") ]
  | Plan.Scan (k, n) when n > 1 -> [ Plan.Scan (k, 1) ]
  | Plan.Write_batch items ->
      let drops =
        List.mapi
          (fun i _ ->
            Plan.Write_batch (List.filteri (fun j _ -> j <> i) items))
          items
        |> List.filter (function Plan.Write_batch [] -> false | _ -> true)
      in
      let shrunk =
        let any = ref false in
        let items' =
          List.map
            (function
              | Plan.B_put (k, v) when String.length v > 1 ->
                  any := true;
                  Plan.B_put (k, "v")
              | it -> it)
            items
        in
        if !any then [ Plan.Write_batch items' ] else []
      in
      drops @ shrunk
  | Plan.Txn { t_ops; t_interleave } ->
      let drop_inter =
        if t_interleave <> None then
          [ Plan.Txn { t_ops; t_interleave = None } ]
        else []
      in
      let drop_ops =
        List.mapi
          (fun i _ ->
            Plan.Txn
              { t_ops = List.filteri (fun j _ -> j <> i) t_ops; t_interleave })
          t_ops
        |> List.filter (function
             | Plan.Txn { t_ops = []; _ } -> false
             | _ -> true)
      in
      drop_inter @ drop_ops
  | _ -> []

(* Per-step candidates: drop all faults, drop one fault, simplify op. *)
let step_candidates (s : Plan.step) : Plan.step list =
  let fault_drops =
    match s.Plan.faults with
    | [] -> []
    | [ _ ] -> [ { s with Plan.faults = [] } ]
    | fs ->
        { s with Plan.faults = [] }
        :: List.mapi
             (fun i _ ->
               { s with Plan.faults = List.filteri (fun j _ -> j <> i) fs })
             fs
  in
  fault_drops @ List.map (fun op -> { s with Plan.op }) (simpler_op s.Plan.op)

(* ------------------------------------------------------------------ *)

(** [minimize ?budget ?is_failing ~mk plan] returns the smallest plan
    the budget found that still satisfies [is_failing], plus shrink
    stats. [plan] itself must be failing (checked; returned unchanged
    with zero stats if it is not). *)
let minimize ?(budget = default_budget) ?is_failing ~mk (plan : Plan.t) =
  let is_failing = match is_failing with Some f -> f | None -> fails mk in
  let stats = { candidates = 0; accepted = 0 } in
  if not (is_failing plan) then (plan, stats)
  else begin
    let current = ref plan in
    let try_candidate cand =
      if stats.candidates >= budget then false
      else begin
        stats.candidates <- stats.candidates + 1;
        if is_failing cand then begin
          stats.accepted <- stats.accepted + 1;
          current := cand;
          true
        end
        else false
      end
    in
    (* Pass 1 engine: ddmin-style chunk removal to fixpoint. *)
    let rec chunk_pass chunk =
      if chunk >= 1 && stats.candidates < budget then begin
        let removed = ref false in
        let lo = ref 0 in
        while !lo < size !current && stats.candidates < budget do
          let steps = (!current).Plan.steps in
          let cand =
            { !current with Plan.steps = drop_range steps !lo chunk }
          in
          if size cand < size !current && try_candidate cand then
            removed := true (* same lo now holds the next chunk *)
          else lo := !lo + chunk
        done;
        if !removed then chunk_pass chunk else chunk_pass (chunk / 2)
      end
    in
    (* Pass 2 engine: per-step structural simplification, one accepted
       change at a time, until a full sweep accepts nothing. *)
    let rec simplify_pass () =
      let changed = ref false in
      let i = ref 0 in
      while !i < size !current && stats.candidates < budget do
        let steps = Array.of_list (!current).Plan.steps in
        let cands = step_candidates steps.(!i) in
        let accepted_one =
          List.exists
            (fun s' ->
              let steps' = Array.copy steps in
              steps'.(!i) <- s';
              try_candidate
                { !current with Plan.steps = Array.to_list steps' })
            cands
        in
        if accepted_one then changed := true else incr i
      done;
      if !changed && stats.candidates < budget then begin
        chunk_pass (max 1 (size !current / 2));
        simplify_pass ()
      end
    in
    chunk_pass (max 1 (size !current / 2));
    simplify_pass ();
    ( { !current with Plan.note = (!current).Plan.note ^ " [shrunk]" },
      stats )
  end
