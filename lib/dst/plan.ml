(** DST plans: seeded workload traces with interleaved fault schedules.

    A plan is the deterministic unit of the simulation harness: one seed
    expands to one trace of operations (the full engine surface — point
    ops, deltas, RMW, scans, atomic batches, OCC transaction blocks,
    crash/recover, scrub, replica catch-up) with faults from the
    {!Simdisk.Faults} taxonomy (torn/lost/bit-flip/crash-point) armed
    between steps. The interpreter ({!Interp}) executes a plan against
    any driver in lock-step with an in-memory oracle; the shrinker
    ({!Shrink}) minimizes failing plans; {!Repro} round-trips them
    through JSON seed files.

    The grammar is deliberately first-order data (no closures) so plans
    can be serialized, diffed, and shrunk structurally. *)

type batch_item = B_put of string * string | B_del of string

(** Operations inside an OCC transaction block. No [T_delta]: the
    transaction layer buffers deltas with resolver semantics the oracle
    would have to replicate entry-wise; the generated surface sticks to
    the validated read/write/RMW cycle the §4.4.2 construction is for. *)
type txn_op =
  | T_get of string
  | T_put of string * string
  | T_delete of string
  | T_rmw of string * string  (** append suffix via read-modify-write *)

type op =
  | Put of string * string
  | Get of string
  | Delete of string
  | Delta of string * string
  | Rmw of string * string  (** read-modify-write: append suffix *)
  | Insert_if_absent of string * string
  | Scan of string * int
  | Write_batch of batch_item list
  | Txn of { t_ops : txn_op list; t_interleave : (string * string) option }
      (** [t_interleave]: a bare write slipped in halfway through the
          block — the "concurrent" mutation OCC validates against *)
  | Crash_recover
  | Crash_follower
  | Catch_up
  | Failover
      (** promote the follower to primary, demote the deposed primary
          to follower at its old epoch (it must get fenced) *)
  | Follower_get of string
      (** bounded-staleness read on the follower: must answer
          [`Too_stale] exactly when the staleness bound is exceeded *)
  | Scrub
  | Maintenance
  | Flush
  | Checkpoint  (** run the full invariant battery here *)

(** Faults armed before a step executes. [after] is the write-site
    ordinal counted from the arming point ([after = 1] fires on the very
    next hook call), mirroring {!Simdisk.Faults}. Net faults count
    *message sends* per directed link the same way; drop/dup/delay/
    reorder are armed symmetrically on both directions of the
    primary-follower link, partition/heal act immediately. *)
type fault =
  | F_lost_page of int
  | F_flip_page of int
  | F_crash_page of { after : int; torn : bool }
  | F_crash_wal of { after : int; torn : bool }
  | F_follower_crash_wal of { after : int; torn : bool }
      (** crash the replication follower's store mid-[catch_up] *)
  | F_net_drop of int  (** drop the [after]-th send on the repl link *)
  | F_net_dup of int  (** duplicate-deliver the [after]-th send *)
  | F_net_delay of { after : int; count : int; extra_us : int }
      (** delay a burst of [count] consecutive sends by [extra_us] *)
  | F_net_reorder of int  (** deliver the [after]-th send late *)
  | F_net_partition  (** cut the repl link both ways, immediately *)
  | F_net_heal  (** heal all partitions, immediately *)

type step = { faults : fault list; op : op }

type t = {
  driver : string;
  seed : int;
  note : string;  (** free-form provenance, carried into repro files *)
  steps : step list;
}

(** What a driver can do; gates both generation and interpretation. *)
type caps = {
  c_crash : bool;  (** supports crash_and_recover (and thus fault plans) *)
  c_txn : bool;
  c_follower : bool;  (** replication pair: catch_up / follower crash *)
  c_scrub : bool;
  c_batch_atomic : bool;
      (** write_batch is one log record; otherwise emulated per-item *)
}

type params = {
  n_steps : int;
  key_space : int;  (** keys are ["key%03d"] below this bound *)
  value_bytes : int;  (** value size jitter above a small floor *)
  checkpoint_every : int;
  fault_rate : float;  (** crash-point faults per step *)
  rot_rate : float;  (** lost-write / bit-flip faults per step *)
  net_fault_rate : float;  (** network faults per step (repl drivers) *)
}

let default_params =
  {
    n_steps = 160;
    key_space = 300;
    value_bytes = 40;
    checkpoint_every = 40;
    fault_rate = 0.05;
    rot_rate = 0.008;
    net_fault_rate = 0.08;
  }

(* ------------------------------------------------------------------ *)
(* Generation *)

(* Keys adjacent to the canonical partition boundaries ("key100",
   "key200"): ~10% of traffic lands here so partition-split routing and
   cross-partition batches are exercised on every seed. *)
let boundary_keys =
  [| "key099"; "key100"; "key101"; "key199"; "key200"; "key201" |]

let gen_key prng p =
  if p.key_space >= 210 && Repro_util.Prng.int prng 10 = 0 then
    boundary_keys.(Repro_util.Prng.int prng (Array.length boundary_keys))
  else Printf.sprintf "key%03d" (Repro_util.Prng.int prng p.key_space)

(* Values carry the step index (uniqueness across overwrites) plus a
   printable filler, so repro files stay human-readable. *)
let gen_value prng p i =
  Printf.sprintf "v%d.%s" i
    (String.make (4 + Repro_util.Prng.int prng (max 1 p.value_bytes)) 'x')

let gen_faults prng (caps : caps) p =
  if not caps.c_crash then []
  else begin
    let fs = ref [] in
    if Repro_util.Prng.float prng < p.fault_rate then begin
      let torn = Repro_util.Prng.bool prng in
      let after = 1 + Repro_util.Prng.int prng 6 in
      let f =
        match Repro_util.Prng.int prng 4 with
        | 0 | 1 -> F_crash_wal { after; torn }
        | 2 -> F_crash_page { after; torn }
        | _ ->
            if caps.c_follower then F_follower_crash_wal { after; torn }
            else F_crash_wal { after; torn }
      in
      fs := f :: !fs
    end;
    if Repro_util.Prng.float prng < p.rot_rate then begin
      let after = 1 + Repro_util.Prng.int prng 8 in
      fs :=
        (if Repro_util.Prng.bool prng then F_lost_page after
         else F_flip_page after)
        :: !fs
    end;
    if caps.c_follower && Repro_util.Prng.float prng < p.net_fault_rate
    then begin
      let after () = 1 + Repro_util.Prng.int prng 4 in
      let f =
        match Repro_util.Prng.int prng 10 with
        | 0 | 1 -> F_net_drop (after ())
        | 2 | 3 -> F_net_dup (after ())
        | 4 | 5 ->
            F_net_delay
              {
                after = after ();
                count = 1 + Repro_util.Prng.int prng 3;
                extra_us = 2_000 * (1 + Repro_util.Prng.int prng 8);
              }
        | 6 -> F_net_reorder (after ())
        | 7 | 8 -> F_net_partition
        | _ -> F_net_heal
      in
      fs := f :: !fs
    end;
    !fs
  end

let gen_txn prng (p : params) i =
  let len = 1 + Repro_util.Prng.int prng 4 in
  let t_ops =
    List.init len (fun j ->
        match Repro_util.Prng.int prng 4 with
        | 0 -> T_get (gen_key prng p)
        | 1 -> T_put (gen_key prng p, gen_value prng p ((i * 100) + j))
        | 2 -> T_delete (gen_key prng p)
        | _ -> T_rmw (gen_key prng p, Printf.sprintf "+t%d.%d" i j))
  in
  let t_interleave =
    if Repro_util.Prng.int prng 5 < 3 then
      Some (gen_key prng p, gen_value prng p ((i * 100) + 99))
    else None
  in
  Txn { t_ops; t_interleave }

let gen_batch prng (p : params) i =
  let len = 1 + Repro_util.Prng.int prng 5 in
  Write_batch
    (List.init len (fun j ->
         if Repro_util.Prng.int prng 5 = 0 then B_del (gen_key prng p)
         else B_put (gen_key prng p, gen_value prng p ((i * 100) + j))))

let gen_op prng (caps : caps) p i =
  let key () = gen_key prng p in
  let value () = gen_value prng p i in
  let r = Repro_util.Prng.int prng 100 in
  if r < 24 then Put (key (), value ())
  else if r < 42 then Get (key ())
  else if r < 50 then Delete (key ())
  else if r < 58 then Delta (key (), Printf.sprintf "+d%d" i)
  else if r < 64 then Rmw (key (), Printf.sprintf "+r%d" i)
  else if r < 69 then Insert_if_absent (key (), value ())
  else if r < 75 then Scan (key (), 1 + Repro_util.Prng.int prng 12)
  else if r < 77 then
    (* long_scan: spans many pages, so V2 zone-map page skipping and
       cross-page prefix reconstruction run under the oracle *)
    Scan (key (), 40 + Repro_util.Prng.int prng 160)
  else if r < 84 then gen_batch prng p i
  else if r < 89 then
    if caps.c_txn then gen_txn prng p i
    else Rmw (key (), Printf.sprintf "+r%d" i)
  else if r < 91 then (if caps.c_crash then Crash_recover else Maintenance)
  else if r < 93 then (if caps.c_follower then Catch_up else Get (key ()))
  else if r < 94 then
    if caps.c_follower then Crash_follower else Get (key ())
  else if r < 95 then
    if caps.c_follower then Follower_get (key ()) else Scan (key (), 3)
  else if r < 96 then (if caps.c_scrub then Scrub else Scan (key (), 3))
  else if r < 97 then (if caps.c_follower then Failover else Maintenance)
  else if r < 98 then Maintenance
  else Flush

(** [generate ~caps ~params ~driver ~seed] expands one seed into a full
    plan, deterministically: same arguments, same plan, always. *)
let generate ?(params = default_params) ~caps ~driver ~seed () =
  let prng = Repro_util.Prng.of_int ((seed * 1_000_003) lxor 0x5b5b) in
  let steps =
    List.init params.n_steps (fun i ->
        let faults = gen_faults prng caps params in
        let op =
          if i > 0 && i mod params.checkpoint_every = 0 then Checkpoint
          else gen_op prng caps params i
        in
        { faults; op })
  in
  { driver; seed; note = ""; steps }

(* ------------------------------------------------------------------ *)
(* Labels (report lines, shrinker progress) *)

let op_label = function
  | Put (k, _) -> "put " ^ k
  | Get k -> "get " ^ k
  | Delete k -> "delete " ^ k
  | Delta (k, _) -> "delta " ^ k
  | Rmw (k, _) -> "rmw " ^ k
  | Insert_if_absent (k, _) -> "ifabsent " ^ k
  | Scan (k, n) -> Printf.sprintf "scan %s %d" k n
  | Write_batch items -> Printf.sprintf "batch[%d]" (List.length items)
  | Txn { t_ops; t_interleave } ->
      Printf.sprintf "txn[%d%s]" (List.length t_ops)
        (if t_interleave = None then "" else "+interleave")
  | Crash_recover -> "crash_recover"
  | Crash_follower -> "crash_follower"
  | Catch_up -> "catch_up"
  | Failover -> "failover"
  | Follower_get k -> "follower_get " ^ k
  | Scrub -> "scrub"
  | Maintenance -> "maintenance"
  | Flush -> "flush"
  | Checkpoint -> "checkpoint"

let fault_label = function
  | F_lost_page a -> Printf.sprintf "lost_page@%d" a
  | F_flip_page a -> Printf.sprintf "flip_page@%d" a
  | F_crash_page { after; torn } ->
      Printf.sprintf "crash_page@%d%s" after (if torn then "(torn)" else "")
  | F_crash_wal { after; torn } ->
      Printf.sprintf "crash_wal@%d%s" after (if torn then "(torn)" else "")
  | F_follower_crash_wal { after; torn } ->
      Printf.sprintf "follower_crash_wal@%d%s" after
        (if torn then "(torn)" else "")
  | F_net_drop a -> Printf.sprintf "net_drop@%d" a
  | F_net_dup a -> Printf.sprintf "net_dup@%d" a
  | F_net_delay { after; count; extra_us } ->
      Printf.sprintf "net_delay@%d(x%d,+%dus)" after count extra_us
  | F_net_reorder a -> Printf.sprintf "net_reorder@%d" a
  | F_net_partition -> "net_partition"
  | F_net_heal -> "net_heal"

let step_label s =
  match s.faults with
  | [] -> op_label s.op
  | fs ->
      Printf.sprintf "%s [%s]" (op_label s.op)
        (String.concat "," (List.map fault_label fs))
