(** DST plans: seeded workload traces with interleaved fault schedules.

    A plan is the deterministic unit of the simulation harness: one seed
    expands to one trace of operations (the full engine surface — point
    ops, deltas, RMW, scans, atomic batches, OCC transaction blocks,
    crash/recover, scrub, replica catch-up) with faults from the
    {!Simdisk.Faults} taxonomy (torn/lost/bit-flip/crash-point) armed
    between steps.

    Invariants: the grammar is first-order data (no closures) so plans
    can be serialized ({!Repro}), diffed, and shrunk structurally
    ({!Shrink}); and generation is a pure function of [(seed, caps,
    params)] — same inputs, byte-identical plan. *)

type batch_item = B_put of string * string | B_del of string

(** Operations inside an OCC transaction block. No [T_delta]: the
    transaction layer buffers deltas with resolver semantics the oracle
    would have to replicate entry-wise; the generated surface sticks to
    the validated read/write/RMW cycle the §4.4.2 construction is for. *)
type txn_op =
  | T_get of string
  | T_put of string * string
  | T_delete of string
  | T_rmw of string * string  (** append suffix via read-modify-write *)

type op =
  | Put of string * string
  | Get of string
  | Delete of string
  | Delta of string * string
  | Rmw of string * string
  | Insert_if_absent of string * string
  | Scan of string * int
  | Write_batch of batch_item list
  | Txn of {
      t_ops : txn_op list;
      t_interleave : (string * string) option;
          (** direct write raced against the open transaction, to
              provoke OCC conflicts *)
    }
  | Crash_recover
  | Crash_follower
  | Catch_up
  | Failover
      (** promote the follower, demote the deposed primary at its old
          epoch — its next message must be fenced *)
  | Follower_get of string  (** bounded-staleness read on the follower *)
  | Scrub
  | Maintenance
  | Flush
  | Checkpoint  (** run the full invariant battery here *)

(** Faults armed before a step executes; page/WAL indices count from the
    moment of arming. Net faults count message sends per directed link,
    armed on both directions of the replication link; partition/heal
    act immediately. *)
type fault =
  | F_lost_page of int
  | F_flip_page of int
  | F_crash_page of { after : int; torn : bool }
  | F_crash_wal of { after : int; torn : bool }
  | F_follower_crash_wal of { after : int; torn : bool }
  | F_net_drop of int
  | F_net_dup of int
  | F_net_delay of { after : int; count : int; extra_us : int }
  | F_net_reorder of int
  | F_net_partition
  | F_net_heal

type step = { faults : fault list; op : op }

type t = { driver : string; seed : int; note : string; steps : step list }

(** Capability mask: which ops the generator may emit for a driver. *)
type caps = {
  c_crash : bool;
  c_txn : bool;
  c_follower : bool;
  c_scrub : bool;
  c_batch_atomic : bool;
}

type params = {
  n_steps : int;
  key_space : int;
  value_bytes : int;
  checkpoint_every : int;
  fault_rate : float;
  rot_rate : float;  (** share of faults that are lost/flip (rot) *)
  net_fault_rate : float;  (** network faults per step (repl drivers) *)
}

val default_params : params

(** [generate ?params ~caps ~driver ~seed ()] expands one seed into one
    plan, deterministically.  The per-kind generators ([gen_op] and
    friends) are implementation details and no longer exported. *)
val generate :
  ?params:params -> caps:caps -> driver:string -> seed:int -> unit -> t

(** Stable labels for reports and shrink logs — debugging surface, kept
    exported for ad-hoc plan inspection from a REPL or a future
    pretty-printer. *)

[@@@lint.allow "U001"]

val op_label : op -> string
val fault_label : fault -> string
val step_label : step -> string
