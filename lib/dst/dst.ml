(** Deterministic simulation testing (DST) for the bLSM stack.

    One seed expands to one plan — a workload trace with interleaved
    faults — which the interpreter executes against any engine driver in
    lock-step with an in-memory oracle, checking equivalence,
    durability, OCC serializability, replication convergence and
    observability consistency at checkpoints. Failures shrink to
    minimized traces saved as JSON repro files.

    See DESIGN.md §9 for the plan grammar, the invariants, the
    shrinking algorithm and replay instructions. *)

module Plan = Plan
module Oracle = Oracle
module Driver = Driver
module Interp = Interp
module Shrink = Shrink
module Repro = Repro

(** [run_seed ~driver_name ~seed ()] generates the plan for
    [(driver_name, seed)] and runs it against a fresh engine.
    @raise Invalid_argument on an unknown driver name. *)
let run_seed ?params ~driver_name ~seed () =
  let caps =
    match Driver.caps_of_name driver_name with
    | Some c -> c
    | None ->
        invalid_arg
          (Printf.sprintf "Dst.run_seed: unknown driver %S" driver_name)
  in
  let plan = Plan.generate ?params ~caps ~driver:driver_name ~seed () in
  let mk = Driver.make_exn driver_name ~seed in
  (plan, Interp.run (mk ()) plan)

(** [replay plan] runs a (typically loaded-from-repro) plan against a
    fresh engine of its recorded driver. *)
let replay (plan : Plan.t) =
  let mk = Driver.make_exn plan.Plan.driver ~seed:plan.Plan.seed in
  Interp.run (mk ()) plan

(** [shrink_failing plan] minimizes a failing plan against fresh engines
    of its recorded driver; returns the (possibly unchanged) plan and
    shrink statistics. *)
let shrink_failing ?budget (plan : Plan.t) =
  let mk = Driver.make_exn plan.Plan.driver ~seed:plan.Plan.seed in
  Shrink.minimize ?budget ~mk plan
