(** ddmin-style plan shrinker: minimizes a failing plan while preserving
    its failure.

    Candidates are tried largest-cut-first (drop step ranges, then
    single steps, then per-step simplifications: drop faults, shrink
    batches/transactions, simplify ops toward plain puts); a candidate
    is accepted only if the failure predicate still holds on a {e fresh}
    engine built by the factory, so shrinking never depends on state
    leaked from a previous attempt.

    Invariant: the returned plan still fails the predicate, and the
    process is deterministic — same plan, same factory, same budget,
    same minimum. *)

type stats = { mutable candidates : int; mutable accepted : int }

(** [fails mk plan] — the default failure predicate: the plan produces
    invariant violations, or escapes the interpreter entirely. *)
val fails : (unit -> Driver.t) -> Plan.t -> bool

(** [minimize ?budget ?is_failing ~mk plan] returns the shrunk plan and
    counters.  [budget] caps candidate executions; [is_failing]
    defaults to [fails mk]. *)
val minimize :
  ?budget:int ->
  ?is_failing:(Plan.t -> bool) ->
  mk:(unit -> Driver.t) ->
  Plan.t ->
  Plan.t * stats
