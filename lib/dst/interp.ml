(** The DST interpreter: executes a plan against a driver in lock-step
    with the {!Oracle}, checking invariants as it goes.

    Per-op invariants: every read (get / scan / txn-get /
    insert-if-absent decision) must agree with the oracle, and every
    paced write's stall attribution must tile the pacing window
    (merge1 + merge2 + hard = total, the obs contract). At
    [Checkpoint] steps and at plan end, the full battery runs:
    whole-state scan equivalence, sampled point reads, op-counter
    agreement between the engine's metrics and the interpreter's own
    mirror, and replication convergence after catch-up.

    Crash discipline: a {!Simdisk.Faults.Crash_point} escaping an
    operation means the machine died {e before the op was acked} (the
    WAL append is the last disk touch before the memtable write), so
    the oracle applies an op's effects only after it returns normally.
    The interpreter then recovers the crashed store — identified by
    which fault plan's [crashes_fired] advanced — and, for a primary
    recovery, resets its counter mirror (a recovered tree starts with
    fresh stats).

    Rot discipline: once a lost-write or bit-flip fault has fired, the
    run enters {e rot mode}: typed corruption raises
    ({!Blsm.Tree.Corruption}, WAL/SSTable [Corrupt]) become legitimate
    outcomes (counted, never ignored silently) and counter checks are
    masked — but value comparisons still hold, because detected
    corruption must surface as an exception, never as a wrong answer.
    Outside rot mode any corruption raise is a violation. *)

exception Stop_run of string

type outcome = {
  ok : bool;
  violations : string list;
  report : string;
      (** full deterministic run report: same plan, same bytes *)
  steps_run : int;
  crashes : int;
  rot : bool;
}

(* The interpreter's mirror of the engine's per-op counters. *)
type exp = {
  mutable e_puts : int;
  mutable e_gets : int;
  mutable e_deletes : int;
  mutable e_deltas : int;
  mutable e_scans : int;
  mutable e_rmws : int;
  mutable e_checked : int;
}

let zero_exp () =
  {
    e_puts = 0;
    e_gets = 0;
    e_deletes = 0;
    e_deltas = 0;
    e_scans = 0;
    e_rmws = 0;
    e_checked = 0;
  }

type st = {
  d : Driver.t;
  plan : Plan.t;
  oracle : Oracle.t;
  exp : exp;
  buf : Buffer.t;
  mutable violations : string list;  (* reversed *)
  mutable rot : bool;
  mutable crashes : int;
  mutable steps_run : int;
  mutable counts_masked : bool;
      (* failover swaps which tree the stats come from; the mirror can
         no longer line up, so counter checks are off for the rest *)
  mutable dirty : bool;
      (* acked writes since the last full sync: while set, the follower
         may legitimately lag the oracle, so [Follower_get] checks
         staleness discipline but not the value *)
}

let line st fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string st.buf s;
      Buffer.add_char st.buf '\n')
    fmt

let violation st step fmt =
  Printf.ksprintf
    (fun s ->
      let msg =
        if step < 0 then s else Printf.sprintf "step %d: %s" step s
      in
      st.violations <- msg :: st.violations;
      line st "VIOLATION %s" msg)
    fmt

let trunc s = if String.length s > 40 then String.sub s 0 40 ^ ".." else s

let show = function
  | None -> "None"
  | Some s -> Printf.sprintf "%S" (trunc s)

let is_corruption = function
  | Blsm.Tree.Corruption _ | Pagestore.Wal.Corrupt _
  | Sstable.Sst_format.Corrupt _ ->
      true
  | _ -> false

let injected_rot f =
  let c = Simdisk.Faults.counters f in
  c.Simdisk.Faults.injected_lost_writes + c.Simdisk.Faults.injected_bit_flips
  > 0

let update_rot st =
  if not st.rot then begin
    let fired =
      injected_rot st.d.Driver.faults
      || (match st.d.Driver.follower_faults with
         | Some f -> injected_rot f
         | None -> false)
    in
    if fired then begin
      st.rot <- true;
      line st "rot: silent-corruption fault fired; counter checks masked"
    end
  end

let reset_exp st =
  st.exp.e_puts <- 0;
  st.exp.e_gets <- 0;
  st.exp.e_deletes <- 0;
  st.exp.e_deltas <- 0;
  st.exp.e_scans <- 0;
  st.exp.e_rmws <- 0;
  st.exp.e_checked <- 0

(* ------------------------------------------------------------------ *)
(* Crash recovery *)

let rec recover_primary st step attempt =
  match st.d.Driver.crash_recover with
  | None ->
      violation st step "crash fired but driver has no recovery";
      raise (Stop_run "crash without recovery support")
  | Some recover -> (
      match recover () with
      | () -> reset_exp st
      | exception Simdisk.Faults.Crash_point site ->
          st.crashes <- st.crashes + 1;
          line st "step %d: crash at %s during recovery (attempt %d)" step
            site attempt;
          if attempt >= 8 then begin
            violation st step "recovery did not converge after 8 crashes";
            raise (Stop_run "recovery did not converge")
          end
          else recover_primary st step (attempt + 1)
      | exception e when is_corruption e ->
          update_rot st;
          if st.rot then begin
            line st "step %d: unrecoverable detected corruption (rot): %s"
              step (Printexc.to_string e);
            raise (Stop_run "rot made recovery impossible")
          end
          else begin
            violation st step "corruption during recovery without rot: %s"
              (Printexc.to_string e);
            raise (Stop_run "corrupt recovery")
          end)

let rec recover_follower st step attempt =
  match st.d.Driver.crash_follower with
  | None ->
      violation st step "follower crash fired but driver has no follower";
      raise (Stop_run "crash without recovery support")
  | Some recover -> (
      match recover () with
      | () -> ()
      | exception Simdisk.Faults.Crash_point site ->
          st.crashes <- st.crashes + 1;
          line st "step %d: crash at %s during follower recovery (attempt %d)"
            step site attempt;
          if attempt >= 8 then begin
            violation st step
              "follower recovery did not converge after 8 crashes";
            raise (Stop_run "recovery did not converge")
          end
          else recover_follower st step (attempt + 1)
      | exception e when is_corruption e ->
          update_rot st;
          if st.rot then begin
            line st
              "step %d: unrecoverable follower corruption (rot): %s" step
              (Printexc.to_string e);
            raise (Stop_run "rot made follower recovery impossible")
          end
          else begin
            violation st step
              "follower corruption during recovery without rot: %s"
              (Printexc.to_string e);
            raise (Stop_run "corrupt recovery")
          end)

(** Run [f]; on a crash point, recover whichever store died (identified
    by its fault plan's [crashes_fired] advancing) and report
    [`Crashed]; on a typed corruption raise, report [`Corrupt]
    (tolerated only in rot mode). *)
let guarded st step ~what f =
  let before =
    (Simdisk.Faults.counters st.d.Driver.faults).Simdisk.Faults.crashes_fired
  in
  try `Ok (f ()) with
  | Simdisk.Faults.Crash_point site ->
      st.crashes <- st.crashes + 1;
      let primary_crashed =
        (Simdisk.Faults.counters st.d.Driver.faults)
          .Simdisk.Faults.crashes_fired > before
      in
      let which =
        if primary_crashed || st.d.Driver.crash_follower = None then begin
          line st "step %d: crash at %s during %s" step site what;
          `P
        end
        else begin
          line st "step %d: follower crash at %s during %s" step site what;
          `F
        end
      in
      (match which with
      | `P -> recover_primary st step 1
      | `F -> recover_follower st step 1);
      `Crashed
  | e when is_corruption e ->
      update_rot st;
      if st.rot then
        line st "step %d: detected corruption during %s: %s" step what
          (Printexc.to_string e)
      else
        violation st step "corruption during %s without injected rot: %s"
          what (Printexc.to_string e);
      `Corrupt

(* ------------------------------------------------------------------ *)
(* Per-op checks *)

let check_stall st step =
  match st.d.Driver.last_stall with
  | None -> ()
  | Some ls ->
      let sb = ls () in
      let attributed =
        sb.Blsm.Tree.sb_merge1_us +. sb.Blsm.Tree.sb_merge2_us
        +. sb.Blsm.Tree.sb_hard_us
      in
      let err = Float.abs (attributed -. sb.Blsm.Tree.sb_total_us) in
      if err > 0.5 then
        violation st step
          "stall attribution does not tile pacing window: off by %.3f us"
          err

let digest rows =
  let b = Buffer.create 256 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v;
      Buffer.add_char b ';')
    rows;
  Repro_util.Crc32c.string (Buffer.contents b) land 0xFFFFFFFF

let rec first_diff engine oracle =
  match (engine, oracle) with
  | [], [] -> ""
  | (k, v) :: _, [] -> Printf.sprintf "; engine has extra %s=%S" k (trunc v)
  | [], (k, v) :: _ -> Printf.sprintf "; engine missing %s=%S" k (trunc v)
  | (ka, va) :: ra, (kb, vb) :: rb ->
      if ka = kb && va = vb then first_diff ra rb
      else
        Printf.sprintf "; first diff: engine %s=%S vs oracle %s=%S" ka
          (trunc va) kb (trunc vb)

let arm st faults =
  List.iter
    (fun f ->
      match f with
      | Plan.F_lost_page after ->
          Simdisk.Faults.schedule_lost_page_write st.d.Driver.faults ~after
      | Plan.F_flip_page after ->
          Simdisk.Faults.schedule_page_bit_flip st.d.Driver.faults ~after
      | Plan.F_crash_page { after; torn } ->
          Simdisk.Faults.schedule_crash_at_page_write ~torn
            st.d.Driver.faults ~after
      | Plan.F_crash_wal { after; torn } ->
          Simdisk.Faults.schedule_crash_at_wal_append ~torn
            st.d.Driver.faults ~after
      | Plan.F_follower_crash_wal { after; torn } -> (
          match st.d.Driver.follower_faults with
          | Some ff -> Simdisk.Faults.schedule_crash_at_wal_append ~torn ff ~after
          | None -> ())
      | Plan.F_net_drop after -> (
          match st.d.Driver.net with
          | Some (net, a, b) ->
              (* symmetric: requests and replies are both fair game *)
              Simnet.schedule_drop net ~src:a ~dst:b ~after;
              Simnet.schedule_drop net ~src:b ~dst:a ~after
          | None -> ())
      | Plan.F_net_dup after -> (
          match st.d.Driver.net with
          | Some (net, a, b) ->
              Simnet.schedule_duplicate net ~src:a ~dst:b ~after;
              Simnet.schedule_duplicate net ~src:b ~dst:a ~after
          | None -> ())
      | Plan.F_net_delay { after; count; extra_us } -> (
          match st.d.Driver.net with
          | Some (net, a, b) ->
              Simnet.schedule_delay_burst net ~src:a ~dst:b ~after ~count
                ~extra_us;
              Simnet.schedule_delay_burst net ~src:b ~dst:a ~after ~count
                ~extra_us
          | None -> ())
      | Plan.F_net_reorder after -> (
          match st.d.Driver.net with
          | Some (net, a, b) ->
              Simnet.schedule_reorder net ~src:a ~dst:b ~after;
              Simnet.schedule_reorder net ~src:b ~dst:a ~after
          | None -> ())
      | Plan.F_net_partition -> (
          match st.d.Driver.net with
          | Some (net, a, b) ->
              Simnet.partition net a b;
              line st "net: partition %s|%s" a b
          | None -> ())
      | Plan.F_net_heal -> (
          match st.d.Driver.net with
          | Some (net, a, b) ->
              Simnet.heal net a b;
              line st "net: heal %s|%s" a b
          | None -> ()))
    faults

let entry_of_item = function
  | Plan.B_put (k, v) -> (k, Kv.Entry.Base v)
  | Plan.B_del k -> (k, Kv.Entry.Tombstone)

(* ------------------------------------------------------------------ *)
(* Transactions: mirror Txn's OCC bookkeeping move for move. *)

let exec_txn st i t_ops t_interleave begin_txn =
  let d = st.d in
  let res =
    guarded st i ~what:"txn" (fun () ->
        let h = begin_txn () in
        let writes : (string, [ `Base of string | `Tomb ]) Hashtbl.t =
          Hashtbl.create 8
        in
        let order = ref [] in
        (* (key, interleave had already run when first tracked) *)
        let tracked = ref [] in
        let interleave_done = ref false in
        (* Mirrors Txn.get: buffered Base/Tomb answers locally (no tree
           access, no version tracked); otherwise the read goes to the
           tree and joins the validation read-set. *)
        let mirror_get k =
          match Hashtbl.find_opt writes k with
          | Some (`Base v) -> Some v
          | Some `Tomb -> None
          | None ->
              if not (List.mem_assoc k !tracked) then
                tracked := (k, !interleave_done) :: !tracked;
              st.exp.e_gets <- st.exp.e_gets + 1;
              Oracle.get st.oracle k
        in
        let record k e =
          if not (Hashtbl.mem writes k) then order := k :: !order;
          Hashtbl.replace writes k e
        in
        let do_interleave () =
          match t_interleave with
          | None -> ()
          | Some (k, v) ->
              d.Driver.put k v;
              Oracle.put st.oracle k v;
              st.exp.e_puts <- st.exp.e_puts + 1;
              interleave_done := true
        in
        let ops = Array.of_list t_ops in
        let mid = (Array.length ops + 1) / 2 in
        Array.iteri
          (fun j op ->
            if j = mid then do_interleave ();
            match op with
            | Plan.T_get k ->
                let expect = mirror_get k in
                let got = h.Driver.tx_get k in
                if got <> expect then
                  violation st i "txn get %s: engine=%s oracle=%s" k
                    (show got) (show expect)
            | Plan.T_put (k, v) ->
                h.Driver.tx_put k v;
                record k (`Base v)
            | Plan.T_delete k ->
                h.Driver.tx_delete k;
                record k `Tomb
            | Plan.T_rmw (k, s) ->
                let v = Option.value (mirror_get k) ~default:"" ^ s in
                h.Driver.tx_rmw k s;
                record k (`Base v))
          ops;
        if mid >= Array.length ops then do_interleave ();
        (* Single-writer simulation: the only version change between
           begin and commit is the interleaved write, so a conflict is
           expected iff it hit a key tracked before it ran. *)
        let expected_conflict =
          !interleave_done
          &&
          match t_interleave with
          | Some (ik, _) ->
              List.exists (fun (k, after) -> k = ik && not after) !tracked
          | None -> false
        in
        match h.Driver.tx_commit () with
        | `Committed ->
            if expected_conflict then
              violation st i "occ: txn committed but a tracked read changed";
            List.iter
              (fun k ->
                match Hashtbl.find writes k with
                | `Base v -> Oracle.put st.oracle k v
                | `Tomb -> Oracle.delete st.oracle k)
              (List.rev !order);
            let nwrites = Hashtbl.length writes in
            st.exp.e_puts <- st.exp.e_puts + nwrites;
            if nwrites > 0 then check_stall st i
        | `Conflict ->
            if not expected_conflict then
              violation st i "occ: txn conflicted but no tracked read changed")
  in
  match res with `Ok () | `Crashed | `Corrupt -> ()

(* ------------------------------------------------------------------ *)
(* Checkpoint battery *)

let checkpoint st i ~label =
  let d = st.d in
  (* 1. whole-state equivalence via a full scan *)
  (match
     guarded st i ~what:"checkpoint scan" (fun () ->
         d.Driver.scan "" 1_000_000)
   with
  | `Ok rows ->
      st.exp.e_scans <- st.exp.e_scans + 1;
      let expect = Oracle.bindings st.oracle in
      if rows <> expect then
        violation st i
          "checkpoint state divergence (engine %d keys, oracle %d)%s"
          (List.length rows) (List.length expect) (first_diff rows expect);
      line st "checkpoint %s step=%d keys=%d digest=%08x" label i
        (List.length expect) (digest rows)
  | `Crashed | `Corrupt -> line st "checkpoint %s step=%d interrupted" label i);
  (* 2. sampled point reads: 8 present keys, 2 absent *)
  let prng = Repro_util.Prng.of_int ((st.plan.Plan.seed lxor (i * 7919)) + 5) in
  let bind = Array.of_list (Oracle.bindings st.oracle) in
  for _ = 1 to 8 do
    if Array.length bind > 0 then begin
      let k, v = bind.(Repro_util.Prng.int prng (Array.length bind)) in
      match guarded st i ~what:"checkpoint get" (fun () -> d.Driver.get k) with
      | `Ok got ->
          st.exp.e_gets <- st.exp.e_gets + 1;
          (* the sampled binding may predate an interrupted checkpoint's
             recovery only if the write was unacked — impossible here:
             the oracle holds acked writes only *)
          if got <> Some v then
            violation st i "checkpoint get %s: engine=%s oracle=%S" k
              (show got) (trunc v)
      | `Crashed | `Corrupt -> ()
    end
  done;
  for _ = 1 to 2 do
    let k = Printf.sprintf "nokey%03d" (Repro_util.Prng.int prng 1000) in
    match guarded st i ~what:"checkpoint get" (fun () -> d.Driver.get k) with
    | `Ok got ->
        st.exp.e_gets <- st.exp.e_gets + 1;
        let expect = Oracle.get st.oracle k in
        if got <> expect then
          violation st i "checkpoint absent-get %s: engine=%s oracle=%s" k
            (show got) (show expect)
    | `Crashed | `Corrupt -> ()
  done;
  (* 3. engine op counters vs the interpreter's mirror *)
  (match d.Driver.counts with
  | Some counts when (not st.rot) && not st.counts_masked ->
      let c = counts () in
      let chk name got want =
        if got <> want then
          violation st i "counter %s: engine=%d interpreter=%d" name got want
      in
      chk "puts" c.Driver.n_puts st.exp.e_puts;
      chk "gets" c.Driver.n_gets st.exp.e_gets;
      chk "deletes" c.Driver.n_deletes st.exp.e_deletes;
      chk "deltas" c.Driver.n_deltas st.exp.e_deltas;
      if not d.Driver.mask_scans then chk "scans" c.Driver.n_scans st.exp.e_scans;
      chk "rmws" c.Driver.n_rmws st.exp.e_rmws;
      chk "checked_inserts" c.Driver.n_checked_inserts st.exp.e_checked
  | _ -> ());
  (* 4. replication convergence after catch-up *)
  match (d.Driver.catch_up, d.Driver.follower_scan) with
  | Some cu, Some fs -> (
      let final = label = "final" in
      (* at the final checkpoint every link fault is healed first:
         convergence-after-heal is mandatory, not best-effort *)
      if final then (
        match d.Driver.net with
        | Some (net, a, b) ->
            if Simnet.partitioned net a b then line st "net: final heal %s|%s" a b;
            Simnet.clear_faults net
        | None -> ());
      match
        guarded st i ~what:"checkpoint catch_up" (fun () ->
            let r = cu () in
            (r, fs ()))
      with
      | `Ok (`Unreachable, _) ->
          if final && not st.rot then
            violation st i "no convergence after heal: follower unreachable"
          else if final then
            (* rot can make the primary unserveable (every reply to a
               batch/snapshot request dies on a corrupt page): with the
               link healed, unreachability is the corruption surfacing,
               not a replication bug *)
            line st "checkpoint final: follower unreachable (rot on primary)"
          else
            line st "checkpoint %s step=%d: follower unreachable (faulted link)"
              label i
      | `Ok ((`Resynced | `Applied _) as r, rows) ->
          st.dirty <- false;
          let expect = Oracle.bindings st.oracle in
          if rows <> expect then
            violation st i
              "replication divergence after %s (follower %d keys, oracle %d)%s"
              (match r with `Resynced -> "resync" | _ -> "catch_up")
              (List.length rows) (List.length expect) (first_diff rows expect)
      | `Crashed | `Corrupt -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Step execution *)

let exec_step st i (step : Plan.step) =
  arm st step.Plan.faults;
  let d = st.d in
  (* conservative: any mutation-bearing step marks the follower as
     possibly behind until the next successful full sync *)
  (match step.Plan.op with
  | Plan.Put _ | Plan.Delete _ | Plan.Delta _ | Plan.Rmw _
  | Plan.Insert_if_absent _ | Plan.Write_batch _ | Plan.Txn _ ->
      st.dirty <- true
  | _ -> ());
  match step.Plan.op with
  | Plan.Put (k, v) -> (
      match guarded st i ~what:"put" (fun () -> d.Driver.put k v) with
      | `Ok () ->
          Oracle.put st.oracle k v;
          st.exp.e_puts <- st.exp.e_puts + 1;
          check_stall st i
      | `Crashed | `Corrupt -> ())
  | Plan.Get k -> (
      match guarded st i ~what:"get" (fun () -> d.Driver.get k) with
      | `Ok got ->
          st.exp.e_gets <- st.exp.e_gets + 1;
          let expect = Oracle.get st.oracle k in
          if got <> expect then
            violation st i "get %s: engine=%s oracle=%s" k (show got)
              (show expect)
      | `Crashed | `Corrupt -> ())
  | Plan.Delete k -> (
      match guarded st i ~what:"delete" (fun () -> d.Driver.delete k) with
      | `Ok () ->
          Oracle.delete st.oracle k;
          st.exp.e_deletes <- st.exp.e_deletes + 1;
          check_stall st i
      | `Crashed | `Corrupt -> ())
  | Plan.Delta (k, dl) -> (
      match guarded st i ~what:"delta" (fun () -> d.Driver.apply_delta k dl) with
      | `Ok () ->
          Oracle.delta st.oracle k dl;
          st.exp.e_deltas <- st.exp.e_deltas + 1;
          check_stall st i
      | `Crashed | `Corrupt -> ())
  | Plan.Rmw (k, s) -> (
      match guarded st i ~what:"rmw" (fun () -> d.Driver.rmw k s) with
      | `Ok () ->
          Oracle.read_modify_write st.oracle k (fun v ->
              Option.value v ~default:"" ^ s);
          st.exp.e_rmws <- st.exp.e_rmws + 1;
          check_stall st i
      | `Crashed | `Corrupt -> ())
  | Plan.Insert_if_absent (k, v) -> (
      match
        guarded st i ~what:"ifabsent" (fun () -> d.Driver.insert_if_absent k v)
      with
      | `Ok inserted ->
          let expect = Oracle.insert_if_absent st.oracle k v in
          st.exp.e_checked <- st.exp.e_checked + 1;
          if inserted <> expect then
            violation st i "ifabsent %s: engine=%b oracle=%b" k inserted
              expect;
          if inserted then check_stall st i
      | `Crashed | `Corrupt -> ())
  | Plan.Scan (k, n) -> (
      match guarded st i ~what:"scan" (fun () -> d.Driver.scan k n) with
      | `Ok rows ->
          st.exp.e_scans <- st.exp.e_scans + 1;
          let expect = Oracle.scan st.oracle k n in
          if rows <> expect then
            violation st i "scan %s %d: engine %d rows, oracle %d%s" k n
              (List.length rows) (List.length expect)
              (first_diff rows expect)
      | `Crashed | `Corrupt -> ())
  | Plan.Write_batch items ->
      let entries = List.map entry_of_item items in
      if d.Driver.caps.Plan.c_batch_atomic then (
        match
          guarded st i ~what:"write_batch" (fun () -> d.Driver.write_batch entries)
        with
        | `Ok () ->
            List.iter (fun (k, e) -> Oracle.apply_entry st.oracle k e) entries;
            st.exp.e_puts <- st.exp.e_puts + List.length entries;
            check_stall st i
        | `Crashed | `Corrupt -> ())
      else
        (* engines without an atomic batch primitive run items as
           individual writes (and the oracle advances per item) *)
        List.iter
          (fun (k, e) ->
            match
              guarded st i ~what:"batch item" (fun () ->
                  match e with
                  | Kv.Entry.Base v -> d.Driver.put k v
                  | Kv.Entry.Tombstone -> d.Driver.delete k
                  | Kv.Entry.Delta ds -> List.iter (d.Driver.apply_delta k) ds)
            with
            | `Ok () -> Oracle.apply_entry st.oracle k e
            | `Crashed | `Corrupt -> ())
          entries
  | Plan.Txn { t_ops; t_interleave } -> (
      match d.Driver.begin_txn with
      | None -> ()
      | Some begin_txn -> exec_txn st i t_ops t_interleave begin_txn)
  | Plan.Crash_recover -> (
      match d.Driver.crash_recover with
      | None -> ()
      | Some _ ->
          line st "step %d: planned crash_recover" i;
          st.crashes <- st.crashes + 1;
          recover_primary st i 1)
  | Plan.Crash_follower -> (
      match d.Driver.crash_follower with
      | None -> ()
      | Some _ ->
          line st "step %d: planned crash_follower" i;
          st.crashes <- st.crashes + 1;
          recover_follower st i 1)
  | Plan.Catch_up -> (
      match d.Driver.catch_up with
      | None -> ()
      | Some cu -> (
          match guarded st i ~what:"catch_up" (fun () -> cu ()) with
          | `Ok `Resynced ->
              st.dirty <- false;
              line st "step %d: catch_up resynced" i
          | `Ok (`Applied _) -> st.dirty <- false
          | `Ok `Unreachable -> line st "step %d: catch_up unreachable" i
          | `Crashed | `Corrupt -> ()))
  | Plan.Failover -> (
      match (d.Driver.failover, d.Driver.catch_up) with
      | Some fo, Some cu -> (
          (* converge first so no acked write is stranded on the node
             about to be deposed *)
          match
            guarded st i ~what:"failover pre-sync" (fun () -> cu ())
          with
          | `Ok `Unreachable ->
              line st "step %d: failover skipped (follower unreachable)" i
          | `Crashed | `Corrupt -> ()
          | `Ok (`Applied _ | `Resynced) -> (
              let fenced_before =
                match d.Driver.fenced_rejects with
                | Some fr -> fr ()
                | None -> 0
              in
              fo ();
              st.counts_masked <- true;
              st.dirty <- true;
              line st "step %d: failover (roles swapped, epoch raised)" i;
              (* the deposed primary, now a follower at its old epoch,
                 must be observably fenced on its first exchange *)
              match
                guarded st i ~what:"post-failover sync" (fun () -> cu ())
              with
              | `Ok ((`Applied _ | `Resynced) as r) ->
                  st.dirty <- false;
                  (match d.Driver.fenced_rejects with
                  | Some fr when fr () <= fenced_before ->
                      violation st i
                        "fencing: deposed-epoch message was not rejected"
                  | _ -> ());
                  line st "step %d: deposed node %s at new epoch" i
                    (match r with
                    | `Resynced -> "resynced"
                    | _ -> "caught up")
              | `Ok `Unreachable ->
                  line st "step %d: post-failover sync unreachable" i
              | `Crashed | `Corrupt -> ()))
      | _ -> ())
  | Plan.Follower_get k -> (
      match (d.Driver.follower_get, d.Driver.follower_stale) with
      | Some fg, Some stale -> (
          let expect_shed = stale () in
          match guarded st i ~what:"follower_get" (fun () -> fg k) with
          | `Ok `Too_stale ->
              if not expect_shed then
                violation st i
                  "follower_get %s shed while within the staleness bound" k
              else line st "step %d: follower_get %s -> Too_stale" i k
          | `Ok (`Ok got) ->
              if expect_shed then
                violation st i
                  "follower_get %s served beyond the staleness bound" k
              else if not st.dirty then begin
                let expect = Oracle.get st.oracle k in
                if got <> expect then
                  violation st i "follower_get %s: follower=%s oracle=%s" k
                    (show got) (show expect)
              end
          | `Crashed | `Corrupt -> ())
      | _ -> ())
  | Plan.Scrub -> (
      match d.Driver.scrub with
      | None -> ()
      | Some sc -> (
          match guarded st i ~what:"scrub" (fun () -> sc ()) with
          | `Ok (errors, clean) ->
              if (not st.rot) && not clean then
                violation st i "scrub found %d errors without injected rot"
                  errors
              else if errors > 0 then
                line st "step %d: scrub errors=%d (rot)" i errors
          | `Crashed | `Corrupt -> ()))
  | Plan.Maintenance ->
      ignore (guarded st i ~what:"maintenance" (fun () -> d.Driver.maintenance ()))
  | Plan.Flush -> (
      match d.Driver.flush with
      | None ->
          ignore
            (guarded st i ~what:"maintenance" (fun () -> d.Driver.maintenance ()))
      | Some fl -> ignore (guarded st i ~what:"flush" (fun () -> fl ())))
  | Plan.Checkpoint -> checkpoint st i ~label:"mid"

(* ------------------------------------------------------------------ *)

(** [run d plan] executes the plan to completion (or to a fatal rot
    stop), then runs a final checkpoint and renders the report. Two runs
    of the same plan against fresh drivers produce byte-identical
    reports. *)
let run (d : Driver.t) (plan : Plan.t) : outcome =
  let st =
    {
      d;
      plan;
      oracle = Oracle.create ();
      exp = zero_exp ();
      buf = Buffer.create 4096;
      violations = [];
      rot = false;
      crashes = 0;
      steps_run = 0;
      counts_masked = false;
      dirty = false;
    }
  in
  line st "dst: driver=%s seed=%d steps=%d" plan.Plan.driver plan.Plan.seed
    (List.length plan.Plan.steps);
  (try
     List.iteri
       (fun i step ->
         exec_step st i step;
         update_rot st;
         (* advance the simulated network clock one step-quantum so
            delayed traffic lands and staleness leases can expire; the
            tick can run a server handler (late duplicated request), so
            crash/corruption raises need the same treatment as an op *)
         (match d.Driver.net with
         | Some (net, _, _) ->
             ignore (guarded st i ~what:"net tick" (fun () -> Simnet.sleep net 1_000))
         | None -> ());
         st.steps_run <- st.steps_run + 1)
       plan.Plan.steps;
     checkpoint st (List.length plan.Plan.steps) ~label:"final"
   with
  | Stop_run why -> line st "run truncated: %s" why
  | Stack_overflow -> violation st (-1) "stack overflow"
  | e -> violation st (-1) "unhandled exception: %s" (Printexc.to_string e));
  let pp, pw = Simdisk.Faults.pending d.Driver.faults in
  let fp, fw =
    match d.Driver.follower_faults with
    | Some f -> Simdisk.Faults.pending f
    | None -> (0, 0)
  in
  let np =
    match d.Driver.net with
    | Some (net, _, _) -> Simnet.pending_faults net
    | None -> 0
  in
  line st "final: steps=%d crashes=%d rot=%b pending_faults=%d violations=%d"
    st.steps_run st.crashes st.rot
    (pp + pw + fp + fw + np)
    (List.length st.violations);
  Buffer.add_string st.buf
    (* Expected dump failures only: a crashed engine's registry closures
       may hit freed state.  Assert_failure / Out_of_memory / injected
       corruption must escape to the harness, not read as "no metrics". *)
    (try d.Driver.metrics_dump ()
     with Not_found | Invalid_argument _ | Failure _ ->
       "<metrics unavailable>\n");
  {
    ok = st.violations = [];
    violations = List.rev st.violations;
    report = Buffer.contents st.buf;
    steps_run = st.steps_run;
    crashes = st.crashes;
    rot = st.rot;
  }
