(** Engine drivers: the uniform record the DST interpreter executes
    plans against.

    A driver wraps one engine instance — bLSM {!Blsm.Tree} under any
    scheduler, {!Blsm.Partitioned}, the B-Tree and LevelDB baselines, or
    a replication primary/follower pair — behind first-class fields for
    the whole exercised surface, with optional hooks ([option] fields)
    for capabilities that vary by engine: crash/recovery, OCC
    transactions, replication catch-up, scrubbing, op-counter
    introspection, stall attribution.

    Constructors are [unit -> t] factories: the shrinker builds a fresh
    engine per candidate plan, and determinism comes from everything —
    store, tree config, fault PRNG — being seeded from the plan seed. *)

type counts = {
  n_puts : int;
  n_gets : int;
  n_deletes : int;
  n_deltas : int;
  n_scans : int;
  n_rmws : int;
  n_checked_inserts : int;
}

(** Handle for one open OCC transaction. *)
type txn_handle = {
  tx_get : string -> string option;
  tx_put : string -> string -> unit;
  tx_delete : string -> unit;
  tx_rmw : string -> string -> unit;  (** append suffix *)
  tx_commit : unit -> [ `Committed | `Conflict ];
}

type t = {
  name : string;
  caps : Plan.caps;
  get : string -> string option;
  put : string -> string -> unit;
  delete : string -> unit;
  apply_delta : string -> string -> unit;
  rmw : string -> string -> unit;  (** append suffix *)
  insert_if_absent : string -> string -> bool;
  scan : string -> int -> (string * string) list;
  write_batch : (string * Kv.Entry.t) list -> unit;
      (** atomic iff [caps.c_batch_atomic]; emulated per-item otherwise *)
  maintenance : unit -> unit;
  flush : (unit -> unit) option;
  crash_recover : (unit -> unit) option;
      (** power-fail the (primary) store and recover in place *)
  begin_txn : (unit -> txn_handle) option;
  catch_up : (unit -> [ `Applied of int | `Resynced | `Unreachable ]) option;
      (** [`Unreachable]: the supervisor's retry budget ran dry (e.g.
          partitioned link) — converge again after the fault heals *)
  failover : (unit -> unit) option;
      (** promote the follower to primary; demote the deposed primary
          to follower at its old epoch *)
  follower_scan : (unit -> (string * string) list) option;
      (** full logical state of the follower (position key excluded);
          harness-side omniscient view, bypasses staleness shedding *)
  follower_get : (string -> [ `Ok of string option | `Too_stale ]) option;
      (** client-facing bounded-staleness read on the follower *)
  follower_stale : (unit -> bool) option;
      (** would the follower shed reads right now? *)
  fenced_rejects : (unit -> int) option;
      (** primary-side count of stale-epoch requests refused *)
  crash_follower : (unit -> unit) option;
  scrub : (unit -> int * bool) option;  (** (checksum errors, clean) *)
  counts : (unit -> counts) option;
      (** live op counters, compared against the interpreter's mirror *)
  mask_scans : bool;
      (** scans counter moves outside the op stream (chained partition
          scans); skip it in the counter check *)
  last_stall : (unit -> Blsm.Tree.stall_breakdown) option;
  metrics_dump : unit -> string;
      (** deterministic registry dump for the byte-identity check *)
  faults : Simdisk.Faults.t;  (** (primary) store's fault plan *)
  follower_faults : Simdisk.Faults.t option;
  net : (Simnet.t * string * string) option;
      (** the simulated network and the two node names, for arming
          link faults and advancing simulated time *)
}

(* ------------------------------------------------------------------ *)
(* Shared construction *)

let mk_store ~fault_seed () =
  let store =
    Pagestore.Store.create
      ~config:
        {
          Pagestore.Store.cfg_page_size = 4096;
          cfg_buffer_pages = 128;
          cfg_durability = Pagestore.Wal.Full;
        }
      Simdisk.Profile.ssd_raid0
  in
  let faults = Simdisk.Faults.create ~seed:fault_seed () in
  Pagestore.Store.set_faults store faults;
  (store, faults)

(* The crash-test tree shape: a C0 small enough that short plans push
   data through both merge levels. The DST trees run the V2 page format
   (prefix-compressed keys, zone maps) and blocked Bloom filters so the
   new read-path layout lives under the full oracle + fault battery; the
   btree/leveldb baselines keep the seed defaults, giving mixed-format
   coverage in every smoke run. *)
let small_config ?(scheduler = Blsm.Config.Spring) seed =
  {
    Blsm.Config.default with
    Blsm.Config.c0_bytes = 24 * 1024;
    size_ratio = Blsm.Config.Fixed 3.0;
    extent_pages = 8;
    scheduler;
    snowshovel = scheduler <> Blsm.Config.Gear;
    max_quota_per_write = 128 * 1024;
    bloom_kind = Bloom.Blocked;
    page_format = Sstable.Sst_format.V2;
    seed;
  }

let counts_of_stats (s : Blsm.Tree.stats) =
  {
    n_puts = s.Blsm.Tree.puts;
    n_gets = s.Blsm.Tree.gets;
    n_deletes = s.Blsm.Tree.deletes;
    n_deltas = s.Blsm.Tree.deltas;
    n_scans = s.Blsm.Tree.scans;
    n_rmws = s.Blsm.Tree.rmws;
    n_checked_inserts = s.Blsm.Tree.checked_inserts;
  }

let add_counts a b =
  {
    n_puts = a.n_puts + b.n_puts;
    n_gets = a.n_gets + b.n_gets;
    n_deletes = a.n_deletes + b.n_deletes;
    n_deltas = a.n_deltas + b.n_deltas;
    n_scans = a.n_scans + b.n_scans;
    n_rmws = a.n_rmws + b.n_rmws;
    n_checked_inserts = a.n_checked_inserts + b.n_checked_inserts;
  }

let append_rmw suffix = fun v -> Option.value v ~default:"" ^ suffix

let tree_txn tree () =
  let tx = Blsm.Txn.begin_txn tree in
  {
    tx_get = (fun k -> Blsm.Txn.get tx k);
    tx_put = (fun k v -> Blsm.Txn.put tx k v);
    tx_delete = (fun k -> Blsm.Txn.delete tx k);
    tx_rmw =
      (fun k s -> Blsm.Txn.read_modify_write tx k (append_rmw s));
    tx_commit =
      (fun () ->
        match Blsm.Txn.commit tx with
        | `Committed -> `Committed
        | `Conflict _ -> `Conflict);
  }

(* ------------------------------------------------------------------ *)
(* Capability table (static: generation needs caps before any engine
   instance exists) *)

let caps_tree =
  {
    Plan.c_crash = true;
    c_txn = true;
    c_follower = false;
    c_scrub = true;
    c_batch_atomic = true;
  }

let caps_partitioned = { caps_tree with Plan.c_txn = false }
let caps_replicated = { caps_tree with Plan.c_follower = true }
let caps_policy = { caps_tree with Plan.c_txn = false }

let caps_baseline =
  {
    Plan.c_crash = false;
    c_txn = false;
    c_follower = false;
    c_scrub = false;
    c_batch_atomic = false;
  }

(* ------------------------------------------------------------------ *)
(* Constructors *)

let blsm ?(scheduler = Blsm.Config.Spring) ~name ~seed () =
  let store, faults = mk_store ~fault_seed:seed () in
  let tree =
    ref (Blsm.Tree.create ~config:(small_config ~scheduler seed) store)
  in
  {
    name;
    caps = caps_tree;
    get = (fun k -> Blsm.Tree.get !tree k);
    put = (fun k v -> Blsm.Tree.put !tree k v);
    delete = (fun k -> Blsm.Tree.delete !tree k);
    apply_delta = (fun k d -> Blsm.Tree.apply_delta !tree k d);
    rmw = (fun k s -> Blsm.Tree.read_modify_write !tree k (append_rmw s));
    insert_if_absent = (fun k v -> Blsm.Tree.insert_if_absent !tree k v);
    scan = (fun start n -> Blsm.Tree.scan !tree start n);
    write_batch = (fun ops -> Blsm.Tree.write_batch !tree ops);
    maintenance = (fun () -> Blsm.Tree.maintenance !tree);
    flush = Some (fun () -> Blsm.Tree.flush !tree);
    crash_recover =
      Some (fun () -> tree := Blsm.Tree.crash_and_recover ~verify:true !tree);
    begin_txn = Some (fun () -> tree_txn !tree ());
    catch_up = None;
    failover = None;
    follower_scan = None;
    follower_get = None;
    follower_stale = None;
    fenced_rejects = None;
    crash_follower = None;
    scrub =
      Some
        (fun () ->
          let r = Blsm.Tree.scrub !tree in
          (List.length r.Blsm.Tree.scrub_errors, r.Blsm.Tree.scrub_clean));
    counts = Some (fun () -> counts_of_stats (Blsm.Tree.stats !tree));
    mask_scans = false;
    last_stall = Some (fun () -> Blsm.Tree.last_stall !tree);
    metrics_dump = (fun () -> Obs.Metrics.dump (Blsm.Tree.metrics !tree));
    faults;
    follower_faults = None;
    net = None;
  }

let partitioned ~seed () =
  let store, faults = mk_store ~fault_seed:seed () in
  (* 3 partitions sharing one store; boundaries sit inside the generated
     key space so batches and scans straddle them *)
  let config =
    { (small_config seed) with Blsm.Config.c0_bytes = 48 * 1024 }
  in
  let pt =
    ref (Blsm.Partitioned.create ~config ~boundaries:[ "key100"; "key200" ] store)
  in
  {
    name = "partitioned";
    caps = caps_partitioned;
    get = (fun k -> Blsm.Partitioned.get !pt k);
    put = (fun k v -> Blsm.Partitioned.put !pt k v);
    delete = (fun k -> Blsm.Partitioned.delete !pt k);
    apply_delta = (fun k d -> Blsm.Partitioned.apply_delta !pt k d);
    rmw =
      (fun k s -> Blsm.Partitioned.read_modify_write !pt k (append_rmw s));
    insert_if_absent = (fun k v -> Blsm.Partitioned.insert_if_absent !pt k v);
    scan = (fun start n -> Blsm.Partitioned.scan !pt start n);
    write_batch = (fun ops -> Blsm.Partitioned.write_batch !pt ops);
    maintenance = (fun () -> Blsm.Partitioned.maintenance !pt);
    flush = Some (fun () -> Blsm.Partitioned.flush !pt);
    crash_recover =
      Some (fun () -> pt := Blsm.Partitioned.crash_and_recover !pt);
    begin_txn = None;
    catch_up = None;
    failover = None;
    follower_scan = None;
    follower_get = None;
    follower_stale = None;
    fenced_rejects = None;
    crash_follower = None;
    scrub =
      Some
        (fun () ->
          let rs = Blsm.Partitioned.scrub !pt in
          ( List.fold_left
              (fun a r -> a + List.length r.Blsm.Tree.scrub_errors)
              0 rs,
            List.for_all (fun r -> r.Blsm.Tree.scrub_clean) rs ));
    counts =
      Some
        (fun () ->
          Array.fold_left
            (fun acc s -> add_counts acc (counts_of_stats s))
            {
              n_puts = 0;
              n_gets = 0;
              n_deletes = 0;
              n_deltas = 0;
              n_scans = 0;
              n_rmws = 0;
              n_checked_inserts = 0;
            }
            (Blsm.Partitioned.partition_stats !pt));
    mask_scans = true;
    last_stall = None;
    metrics_dump = (fun () -> Obs.Metrics.dump (Blsm.Partitioned.metrics !pt));
    faults;
    follower_faults = None;
    net = None;
  }

let leveldb ~seed () =
  let store, faults = mk_store ~fault_seed:seed () in
  let config =
    {
      Leveldb_sim.Leveldb.default_config with
      Leveldb_sim.Leveldb.memtable_bytes = 16 * 1024;
      file_bytes = 16 * 1024;
      base_level_bytes = 64 * 1024;
      extent_pages = 8;
      seed;
    }
  in
  let db = Leveldb_sim.Leveldb.create ~config store in
  {
    name = "leveldb";
    caps = caps_baseline;
    get = (fun k -> Leveldb_sim.Leveldb.get db k);
    put = (fun k v -> Leveldb_sim.Leveldb.put db k v);
    delete = (fun k -> Leveldb_sim.Leveldb.delete db k);
    apply_delta = (fun k d -> Leveldb_sim.Leveldb.apply_delta db k d);
    rmw =
      (fun k s -> Leveldb_sim.Leveldb.read_modify_write db k (append_rmw s));
    insert_if_absent = (fun k v -> Leveldb_sim.Leveldb.insert_if_absent db k v);
    scan = (fun start n -> Leveldb_sim.Leveldb.scan db start n);
    write_batch = (fun _ -> invalid_arg "leveldb driver: batch is emulated");
    maintenance = (fun () -> Leveldb_sim.Leveldb.maintenance db);
    flush = None;
    crash_recover = None;
    begin_txn = None;
    catch_up = None;
    failover = None;
    follower_scan = None;
    follower_get = None;
    follower_stale = None;
    fenced_rejects = None;
    crash_follower = None;
    scrub = None;
    counts = None;
    mask_scans = true;
    last_stall = None;
    metrics_dump = (fun () -> Obs.Metrics.dump (Leveldb_sim.Leveldb.metrics db));
    faults;
    follower_faults = None;
    net = None;
  }

let btree ~seed () =
  let store, faults = mk_store ~fault_seed:seed () in
  let bt = Btree_baseline.Btree.create store in
  {
    name = "btree";
    caps = caps_baseline;
    get = (fun k -> Btree_baseline.Btree.get bt k);
    put = (fun k v -> Btree_baseline.Btree.put bt k v);
    delete = (fun k -> Btree_baseline.Btree.delete bt k);
    apply_delta =
      (fun k d ->
        (* B-Trees have no delta primitive: emulate as RMW-append *)
        Btree_baseline.Btree.read_modify_write bt k (fun v ->
            match v with Some b -> b ^ d | None -> d));
    rmw =
      (fun k s -> Btree_baseline.Btree.read_modify_write bt k (append_rmw s));
    insert_if_absent = (fun k v -> Btree_baseline.Btree.insert_if_absent bt k v);
    scan = (fun start n -> Btree_baseline.Btree.scan bt start n);
    write_batch = (fun _ -> invalid_arg "btree driver: batch is emulated");
    maintenance =
      (fun () ->
        Pagestore.Buffer_manager.flush_all
          (Pagestore.Store.buffer (Btree_baseline.Btree.store bt)));
    flush = None;
    crash_recover = None;
    begin_txn = None;
    catch_up = None;
    failover = None;
    follower_scan = None;
    follower_get = None;
    follower_stale = None;
    fenced_rejects = None;
    crash_follower = None;
    scrub = None;
    counts = None;
    mask_scans = true;
    last_stall = None;
    metrics_dump = (fun () -> "");
    faults;
    follower_faults = None;
    net = None;
  }

(* The policy-tree shape: small thresholds and file sizes so short
   plans drive every policy through flushes, multi-level compactions
   and the level-0 stop threshold, with room below [max_levels] for
   cascades. Shares [small_config]'s store-side knobs (V2 pages,
   blocked Blooms, spring watermarks) so the policies inherit the same
   read stack and pacing as the bLSM drivers. *)
let small_pconfig =
  {
    Blsm.Policy_tree.pt_l0_trigger = 3;
    pt_l0_stop = 6;
    pt_fanout = 3.0;
    pt_base_bytes = 32 * 1024;
    pt_file_bytes = 16 * 1024;
    pt_max_levels = 5;
  }

let counts_of_pstats (s : Blsm.Policy_tree.stats) =
  {
    n_puts = s.Blsm.Policy_tree.puts;
    n_gets = s.Blsm.Policy_tree.gets;
    n_deletes = s.Blsm.Policy_tree.deletes;
    n_deltas = s.Blsm.Policy_tree.deltas;
    n_scans = s.Blsm.Policy_tree.scans;
    n_rmws = s.Blsm.Policy_tree.rmws;
    n_checked_inserts = s.Blsm.Policy_tree.checked_inserts;
  }

let policy_tree ~policy_name ~seed () =
  let store, faults = mk_store ~fault_seed:seed () in
  let policy =
    match Blsm.Compaction_policy.of_name policy_name with
    | Some p -> p
    | None -> invalid_arg ("Dst.Driver.policy_tree: unknown policy " ^ policy_name)
  in
  let pt =
    ref
      (Blsm.Policy_tree.create ~config:(small_config seed)
         ~pconfig:small_pconfig ~policy store)
  in
  {
    name = "policy-" ^ policy_name;
    caps = caps_policy;
    get = (fun k -> Blsm.Policy_tree.get !pt k);
    put = (fun k v -> Blsm.Policy_tree.put !pt k v);
    delete = (fun k -> Blsm.Policy_tree.delete !pt k);
    apply_delta = (fun k d -> Blsm.Policy_tree.apply_delta !pt k d);
    rmw =
      (fun k s -> Blsm.Policy_tree.read_modify_write !pt k (append_rmw s));
    insert_if_absent = (fun k v -> Blsm.Policy_tree.insert_if_absent !pt k v);
    scan = (fun start n -> Blsm.Policy_tree.scan !pt start n);
    write_batch = (fun ops -> Blsm.Policy_tree.write_batch !pt ops);
    maintenance = (fun () -> Blsm.Policy_tree.maintenance !pt);
    flush = Some (fun () -> Blsm.Policy_tree.flush !pt);
    crash_recover =
      Some
        (fun () -> pt := Blsm.Policy_tree.crash_and_recover ~verify:true !pt);
    begin_txn = None;
    catch_up = None;
    failover = None;
    follower_scan = None;
    follower_get = None;
    follower_stale = None;
    fenced_rejects = None;
    crash_follower = None;
    scrub = Some (fun () -> Blsm.Policy_tree.scrub !pt);
    counts = Some (fun () -> counts_of_pstats (Blsm.Policy_tree.stats !pt));
    mask_scans = false;
    last_stall = Some (fun () -> Blsm.Policy_tree.last_stall !pt);
    metrics_dump = (fun () -> Obs.Metrics.dump (Blsm.Policy_tree.metrics !pt));
    faults;
    follower_faults = None;
    net = None;
  }

(* DST shape for the replication supervisor: timeouts and backoff small
   against the per-step clock tick, staleness bound tight enough that a
   partitioned follower goes stale within a plan. *)
let small_repl =
  {
    Blsm.Config.req_timeout_us = 5_000;
    backoff_base_us = 1_000;
    backoff_cap_us = 8_000;
    backoff_jitter = 0.25;
    max_attempts = 6;
    batch_records = 16;
    chunk_rows = 64;
    max_lag_records = 48;
    staleness_lease_us = 50_000;
  }

let replicated ~seed () =
  let pstore, faults = mk_store ~fault_seed:seed () in
  let fstore, follower_faults = mk_store ~fault_seed:(seed + 7919) () in
  let config = { (small_config seed) with Blsm.Config.repl = small_repl } in
  let net =
    Simnet.create ~seed:(seed + 104729) ~base_latency_us:100 ~jitter_us:50 ()
  in
  let node_a = "node-a" and node_b = "node-b" in
  (* [ptree]/[fol] track the current primary tree / follower, wherever
     they live; [a_is_primary] says which node holds which role. Disk
     fault plans stay per-node: [faults] is node A's store,
     [follower_faults] node B's. *)
  let ptree = ref (Blsm.Tree.create ~config pstore) in
  let server = Blsm.Repl_server.create !ptree in
  Blsm.Repl_server.attach server (Simnet.endpoint net node_a);
  let fol =
    ref (Blsm.Replication.follower ~config ~net ~name:node_b ~peer:node_a fstore)
  in
  let a_is_primary = ref true in
  let recover_primary () =
    ptree := Blsm.Tree.crash_and_recover ~verify:true !ptree;
    Blsm.Repl_server.set_tree server !ptree
  in
  let failover () =
    let deposed_epoch = Blsm.Repl_server.epoch server in
    let old_primary = !ptree in
    let old_name = if !a_is_primary then node_a else node_b in
    let new_name = if !a_is_primary then node_b else node_a in
    let new_epoch = Blsm.Replication.epoch !fol + 1 in
    ptree := Blsm.Replication.promote !fol;
    Simnet.clear_handler (Simnet.endpoint net old_name);
    Blsm.Repl_server.set_tree server !ptree;
    Blsm.Repl_server.set_epoch server new_epoch;
    Blsm.Repl_server.attach server (Simnet.endpoint net new_name);
    fol :=
      Blsm.Replication.demote ~config ~net ~name:old_name ~peer:new_name
        ~epoch:deposed_epoch old_primary;
    a_is_primary := not !a_is_primary
  in
  (* One metrics registry for the pair's network-visible state; thunked
     reads survive follower/tree replacement. *)
  let netreg = Obs.Metrics.create () in
  Simnet.register_metrics netreg net;
  Blsm.Repl_server.register_metrics netreg server;
  Blsm.Replication.register_metrics netreg (fun () -> !fol);
  {
    name = "replicated";
    caps = caps_replicated;
    get = (fun k -> Blsm.Tree.get !ptree k);
    put = (fun k v -> Blsm.Tree.put !ptree k v);
    delete = (fun k -> Blsm.Tree.delete !ptree k);
    apply_delta = (fun k d -> Blsm.Tree.apply_delta !ptree k d);
    rmw = (fun k s -> Blsm.Tree.read_modify_write !ptree k (append_rmw s));
    insert_if_absent = (fun k v -> Blsm.Tree.insert_if_absent !ptree k v);
    scan =
      (* clamp to "\001": a promoted primary's tree carries its
         follower-era "\000…" bookkeeping keys, which must never
         surface in user scans *)
      (fun start n ->
        let from =
          if String.compare start "\001" < 0 then "\001" else start
        in
        Blsm.Tree.scan !ptree from n);
    write_batch = (fun ops -> Blsm.Tree.write_batch !ptree ops);
    maintenance = (fun () -> Blsm.Tree.maintenance !ptree);
    flush = Some (fun () -> Blsm.Tree.flush !ptree);
    (* Crash_recover always power-fails node A, whatever its current
       role (its store owns [faults], so injected crash points land
       there); Crash_follower is node B, symmetrically. *)
    crash_recover =
      Some
        (fun () ->
          if !a_is_primary then recover_primary ()
          else fol := Blsm.Replication.crash_and_recover !fol);
    begin_txn = Some (fun () -> tree_txn !ptree ());
    catch_up = Some (fun () -> Blsm.Replication.sync !fol);
    failover = Some failover;
    follower_scan =
      (* from "\001": skips the reserved "\000…" bookkeeping keys *)
      Some
        (fun () ->
          Blsm.Tree.scan (Blsm.Replication.tree !fol) "\001" 1_000_000);
    follower_get = Some (fun k -> Blsm.Replication.read !fol k);
    follower_stale = Some (fun () -> Blsm.Replication.is_stale !fol);
    fenced_rejects =
      Some (fun () -> (Blsm.Repl_server.counters server).fenced_rejects);
    crash_follower =
      Some
        (fun () ->
          if !a_is_primary then fol := Blsm.Replication.crash_and_recover !fol
          else recover_primary ());
    scrub =
      Some
        (fun () ->
          let r = Blsm.Tree.scrub !ptree in
          (List.length r.Blsm.Tree.scrub_errors, r.Blsm.Tree.scrub_clean));
    counts = Some (fun () -> counts_of_stats (Blsm.Tree.stats !ptree));
    (* resync scans the primary through a cursor; a follower crash midway
       leaves that bump untracked, so the scans counter is unreliable *)
    mask_scans = true;
    last_stall = Some (fun () -> Blsm.Tree.last_stall !ptree);
    metrics_dump =
      (fun () ->
        Obs.Metrics.dump (Blsm.Tree.metrics !ptree) ^ Obs.Metrics.dump netreg);
    faults;
    follower_faults = Some follower_faults;
    net = Some (net, node_a, node_b);
  }

(* ------------------------------------------------------------------ *)
(* Factory *)

let policy_names =
  [ "policy-tiered"; "policy-leveled"; "policy-lazy-leveled"; "policy-partial" ]

let all_names =
  [ "blsm"; "blsm-gear"; "blsm-naive"; "partitioned"; "btree"; "leveldb";
    "replicated" ]
  @ policy_names

let caps_of_name name =
  match name with
  | "blsm" | "blsm-gear" | "blsm-naive" -> Some caps_tree
  | "partitioned" -> Some caps_partitioned
  | "btree" | "leveldb" -> Some caps_baseline
  | "replicated" -> Some caps_replicated
  | _ -> if List.mem name policy_names then Some caps_policy else None

(** [make name ~seed] is a fresh-engine factory, or [None] for an
    unknown driver name. *)
let make name ~seed =
  match name with
  | "blsm" -> Some (fun () -> blsm ~name ~seed ())
  | "blsm-gear" ->
      Some (fun () -> blsm ~scheduler:Blsm.Config.Gear ~name ~seed ())
  | "blsm-naive" ->
      Some (fun () -> blsm ~scheduler:Blsm.Config.Naive ~name ~seed ())
  | "partitioned" -> Some (partitioned ~seed)
  | "btree" -> Some (btree ~seed)
  | "leveldb" -> Some (leveldb ~seed)
  | "replicated" -> Some (replicated ~seed)
  | _ when List.mem name policy_names ->
      let policy_name =
        String.sub name 7 (String.length name - 7) (* strip "policy-" *)
      in
      Some (policy_tree ~policy_name ~seed)
  | _ -> None

let make_exn name ~seed =
  match make name ~seed with
  | Some f -> f
  | None ->
      invalid_arg
        (Printf.sprintf "Dst.Driver: unknown driver %S (known: %s)" name
           (String.concat ", " all_names))
