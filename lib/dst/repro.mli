(** Plan (de)serialization: JSON seed files for failing-case replay.

    Invariant: [of_json (to_json p) = p] for every generated plan — the
    round-trip property the repro corpus in [test/repros/] depends on.
    The writer emits a stable field order and the reader is a tiny
    hand-rolled JSON parser (no external deps), so a checked-in repro
    replays byte-identically years later regardless of library drift. *)

val to_json : Plan.t -> string

(** [save path plan] writes [to_json plan] to [path]. *)
val save : string -> Plan.t -> unit

exception Parse_error of string

(** [of_json s] parses a plan; raises {!Parse_error} with a path-ish
    message on malformed input. *)
val of_json : string -> Plan.t

(** [load path] reads and parses a plan file. *)
val load : string -> Plan.t
