(** Repro files: JSON round-trip for {!Plan} traces.

    A failing plan — typically after {!Shrink} — is written as a
    self-contained JSON file ([{"dst_repro":1, ...}]) that
    [blsm_cli dst replay <file>] and the [test_dst] regression runner
    replay byte-for-byte. The format is a plain op/fault tree: no
    closures, no engine state, so a repro from one build replays on the
    next as long as the plan grammar is compatible.

    The writer escapes every non-printable byte as [\u00XX]; the reader
    is a small recursive-descent parser (no JSON dependency in the
    container) that decodes exactly what the writer emits plus ordinary
    hand-edits. *)

(* ------------------------------------------------------------------ *)
(* Writer *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""

let fault_json = function
  | Plan.F_lost_page after ->
      Printf.sprintf "{\"kind\":\"lost_page\",\"after\":%d}" after
  | Plan.F_flip_page after ->
      Printf.sprintf "{\"kind\":\"flip_page\",\"after\":%d}" after
  | Plan.F_crash_page { after; torn } ->
      Printf.sprintf "{\"kind\":\"crash_page\",\"after\":%d,\"torn\":%b}"
        after torn
  | Plan.F_crash_wal { after; torn } ->
      Printf.sprintf "{\"kind\":\"crash_wal\",\"after\":%d,\"torn\":%b}" after
        torn
  | Plan.F_follower_crash_wal { after; torn } ->
      Printf.sprintf
        "{\"kind\":\"follower_crash_wal\",\"after\":%d,\"torn\":%b}" after
        torn
  | Plan.F_net_drop after ->
      Printf.sprintf "{\"kind\":\"net_drop\",\"after\":%d}" after
  | Plan.F_net_dup after ->
      Printf.sprintf "{\"kind\":\"net_dup\",\"after\":%d}" after
  | Plan.F_net_delay { after; count; extra_us } ->
      Printf.sprintf
        "{\"kind\":\"net_delay\",\"after\":%d,\"count\":%d,\"extra_us\":%d}"
        after count extra_us
  | Plan.F_net_reorder after ->
      Printf.sprintf "{\"kind\":\"net_reorder\",\"after\":%d}" after
  | Plan.F_net_partition -> "{\"kind\":\"net_partition\"}"
  | Plan.F_net_heal -> "{\"kind\":\"net_heal\"}"

let item_json = function
  | Plan.B_put (k, v) ->
      Printf.sprintf "{\"kind\":\"b_put\",\"key\":%s,\"value\":%s}" (str k)
        (str v)
  | Plan.B_del k -> Printf.sprintf "{\"kind\":\"b_del\",\"key\":%s}" (str k)

let txn_op_json = function
  | Plan.T_get k -> Printf.sprintf "{\"kind\":\"t_get\",\"key\":%s}" (str k)
  | Plan.T_put (k, v) ->
      Printf.sprintf "{\"kind\":\"t_put\",\"key\":%s,\"value\":%s}" (str k)
        (str v)
  | Plan.T_delete k ->
      Printf.sprintf "{\"kind\":\"t_delete\",\"key\":%s}" (str k)
  | Plan.T_rmw (k, s) ->
      Printf.sprintf "{\"kind\":\"t_rmw\",\"key\":%s,\"suffix\":%s}" (str k)
        (str s)

let op_json = function
  | Plan.Put (k, v) ->
      Printf.sprintf "{\"kind\":\"put\",\"key\":%s,\"value\":%s}" (str k)
        (str v)
  | Plan.Get k -> Printf.sprintf "{\"kind\":\"get\",\"key\":%s}" (str k)
  | Plan.Delete k -> Printf.sprintf "{\"kind\":\"delete\",\"key\":%s}" (str k)
  | Plan.Delta (k, d) ->
      Printf.sprintf "{\"kind\":\"delta\",\"key\":%s,\"delta\":%s}" (str k)
        (str d)
  | Plan.Rmw (k, s) ->
      Printf.sprintf "{\"kind\":\"rmw\",\"key\":%s,\"suffix\":%s}" (str k)
        (str s)
  | Plan.Insert_if_absent (k, v) ->
      Printf.sprintf "{\"kind\":\"ifabsent\",\"key\":%s,\"value\":%s}" (str k)
        (str v)
  | Plan.Scan (k, n) ->
      Printf.sprintf "{\"kind\":\"scan\",\"key\":%s,\"n\":%d}" (str k) n
  | Plan.Write_batch items ->
      Printf.sprintf "{\"kind\":\"batch\",\"items\":[%s]}"
        (String.concat "," (List.map item_json items))
  | Plan.Txn { t_ops; t_interleave } ->
      let inter =
        match t_interleave with
        | None -> ""
        | Some (k, v) ->
            Printf.sprintf ",\"interleave\":{\"key\":%s,\"value\":%s}"
              (str k) (str v)
      in
      Printf.sprintf "{\"kind\":\"txn\",\"ops\":[%s]%s}"
        (String.concat "," (List.map txn_op_json t_ops))
        inter
  | Plan.Crash_recover -> "{\"kind\":\"crash_recover\"}"
  | Plan.Crash_follower -> "{\"kind\":\"crash_follower\"}"
  | Plan.Catch_up -> "{\"kind\":\"catch_up\"}"
  | Plan.Failover -> "{\"kind\":\"failover\"}"
  | Plan.Follower_get k ->
      Printf.sprintf "{\"kind\":\"follower_get\",\"key\":%s}" (str k)
  | Plan.Scrub -> "{\"kind\":\"scrub\"}"
  | Plan.Maintenance -> "{\"kind\":\"maintenance\"}"
  | Plan.Flush -> "{\"kind\":\"flush\"}"
  | Plan.Checkpoint -> "{\"kind\":\"checkpoint\"}"

let step_json (s : Plan.step) =
  Printf.sprintf "  {\"faults\":[%s],\n   \"op\":%s}"
    (String.concat "," (List.map fault_json s.Plan.faults))
    (op_json s.Plan.op)

let to_json (p : Plan.t) =
  Printf.sprintf
    "{\"dst_repro\":1,\n\
     \"driver\":%s,\n\
     \"seed\":%d,\n\
     \"note\":%s,\n\
     \"steps\":[\n\
     %s\n\
     ]}\n"
    (str p.Plan.driver) p.Plan.seed (str p.Plan.note)
    (String.concat ",\n" (List.map step_json p.Plan.steps))

let save path plan =
  let oc = open_out path in
  output_string oc (to_json plan);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Reader: minimal recursive-descent JSON, tolerant of whitespace *)

exception Parse_error of string

type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let err what = raise (Parse_error (Printf.sprintf "%s at %d" what !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> err (Printf.sprintf "expected %C" c)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> err "bad hex digit"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then err "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
          (if !pos >= len then err "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 't' -> Buffer.add_char b '\t'
           | 'r' -> Buffer.add_char b '\r'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'u' ->
               if !pos + 4 > len then err "short \\u escape";
               let code =
                 (hex s.[!pos] * 4096)
                 + (hex s.[!pos + 1] * 256)
                 + (hex s.[!pos + 2] * 16)
                 + hex s.[!pos + 3]
               in
               pos := !pos + 4;
               if code < 256 then Buffer.add_char b (Char.chr code)
               else
                 (* non-latin1 codepoints don't occur in plans we write;
                    keep a visible placeholder rather than losing bytes *)
                 Buffer.add_char b '?'
           | _ -> err "bad escape");
          go ()
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_string (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> err "expected , or }"
          in
          J_obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_list []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> err "expected , or ]"
          in
          J_list (elems [])
        end
    | Some 't' ->
        pos := !pos + 4;
        J_bool true
    | Some 'f' ->
        pos := !pos + 5;
        J_bool false
    | Some 'n' ->
        pos := !pos + 4;
        J_null
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        if peek () = Some '-' then advance ();
        while
          match peek () with Some '0' .. '9' -> true | _ -> false
        do
          advance ()
        done;
        J_int (int_of_string (String.sub s start (!pos - start)))
    | _ -> err "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  v

(* ------------------------------------------------------------------ *)
(* JSON -> Plan *)

let field obj name =
  match obj with
  | J_obj fields -> List.assoc_opt name fields
  | _ -> None

let need what = function
  | Some v -> v
  | None -> raise (Parse_error ("missing field " ^ what))

let as_string what = function
  | J_string s -> s
  | _ -> raise (Parse_error (what ^ ": expected string"))

let as_int what = function
  | J_int i -> i
  | _ -> raise (Parse_error (what ^ ": expected int"))

let as_bool what = function
  | J_bool b -> b
  | _ -> raise (Parse_error (what ^ ": expected bool"))

let as_list what = function
  | J_list l -> l
  | _ -> raise (Parse_error (what ^ ": expected list"))

let get_str obj name = as_string name (need name (field obj name))
let get_int obj name = as_int name (need name (field obj name))

let get_bool_opt obj name ~default =
  match field obj name with Some v -> as_bool name v | None -> default

let fault_of_json j =
  (* "after" only exists for ordinal-scheduled kinds; partition/heal
     fire immediately and carry no fields *)
  let after () = get_int j "after" in
  let torn () = get_bool_opt j "torn" ~default:false in
  match get_str j "kind" with
  | "lost_page" -> Plan.F_lost_page (after ())
  | "flip_page" -> Plan.F_flip_page (after ())
  | "crash_page" -> Plan.F_crash_page { after = after (); torn = torn () }
  | "crash_wal" -> Plan.F_crash_wal { after = after (); torn = torn () }
  | "follower_crash_wal" ->
      Plan.F_follower_crash_wal { after = after (); torn = torn () }
  | "net_drop" -> Plan.F_net_drop (after ())
  | "net_dup" -> Plan.F_net_dup (after ())
  | "net_delay" ->
      Plan.F_net_delay
        {
          after = after ();
          count = get_int j "count";
          extra_us = get_int j "extra_us";
        }
  | "net_reorder" -> Plan.F_net_reorder (after ())
  | "net_partition" -> Plan.F_net_partition
  | "net_heal" -> Plan.F_net_heal
  | k -> raise (Parse_error ("unknown fault kind " ^ k))

let item_of_json j =
  match get_str j "kind" with
  | "b_put" -> Plan.B_put (get_str j "key", get_str j "value")
  | "b_del" -> Plan.B_del (get_str j "key")
  | k -> raise (Parse_error ("unknown batch item kind " ^ k))

let txn_op_of_json j =
  match get_str j "kind" with
  | "t_get" -> Plan.T_get (get_str j "key")
  | "t_put" -> Plan.T_put (get_str j "key", get_str j "value")
  | "t_delete" -> Plan.T_delete (get_str j "key")
  | "t_rmw" -> Plan.T_rmw (get_str j "key", get_str j "suffix")
  | k -> raise (Parse_error ("unknown txn op kind " ^ k))

let op_of_json j =
  match get_str j "kind" with
  | "put" -> Plan.Put (get_str j "key", get_str j "value")
  | "get" -> Plan.Get (get_str j "key")
  | "delete" -> Plan.Delete (get_str j "key")
  | "delta" -> Plan.Delta (get_str j "key", get_str j "delta")
  | "rmw" -> Plan.Rmw (get_str j "key", get_str j "suffix")
  | "ifabsent" -> Plan.Insert_if_absent (get_str j "key", get_str j "value")
  | "scan" -> Plan.Scan (get_str j "key", get_int j "n")
  | "batch" ->
      Plan.Write_batch
        (List.map item_of_json (as_list "items" (need "items" (field j "items"))))
  | "txn" ->
      let t_ops =
        List.map txn_op_of_json
          (as_list "ops" (need "ops" (field j "ops")))
      in
      let t_interleave =
        match field j "interleave" with
        | None | Some J_null -> None
        | Some ij -> Some (get_str ij "key", get_str ij "value")
      in
      Plan.Txn { t_ops; t_interleave }
  | "crash_recover" -> Plan.Crash_recover
  | "crash_follower" -> Plan.Crash_follower
  | "catch_up" -> Plan.Catch_up
  | "failover" -> Plan.Failover
  | "follower_get" -> Plan.Follower_get (get_str j "key")
  | "scrub" -> Plan.Scrub
  | "maintenance" -> Plan.Maintenance
  | "flush" -> Plan.Flush
  | "checkpoint" -> Plan.Checkpoint
  | k -> raise (Parse_error ("unknown op kind " ^ k))

let step_of_json j =
  let faults =
    match field j "faults" with
    | None -> []
    | Some fj -> List.map fault_of_json (as_list "faults" fj)
  in
  { Plan.faults; op = op_of_json (need "op" (field j "op")) }

(** [of_json s] parses a repro file body back into a plan. Raises
    {!Parse_error} on malformed input. *)
let of_json (s : string) : Plan.t =
  let j = parse_json s in
  (match field j "dst_repro" with
  | Some (J_int 1) -> ()
  | _ -> raise (Parse_error "not a dst repro file (want \"dst_repro\":1)"));
  {
    Plan.driver = get_str j "driver";
    seed = get_int j "seed";
    note = (match field j "note" with Some n -> as_string "note" n | None -> "");
    steps =
      List.map step_of_json
        (as_list "steps" (need "steps" (field j "steps")));
  }

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let body = really_input_string ic n in
  close_in ic;
  of_json body
