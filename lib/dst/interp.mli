(** The DST interpreter: executes a plan against a driver in lock-step
    with the {!Oracle}, checking invariants as it goes.

    Per-op invariants: every read (get / scan / txn-get /
    insert-if-absent decision) must agree with the oracle, and every
    paced write's stall attribution must tile the pacing window
    (merge1 + merge2 + hard = total, the obs contract).  At
    [Checkpoint] steps and at plan end, the full battery runs:
    whole-state scan equivalence, sampled point reads, op-counter
    agreement between the engine's metrics and the interpreter's own
    mirror, and replication convergence after catch-up.

    Crash discipline: a {!Simdisk.Faults.Crash_point} escaping an
    operation means the machine died {e before the op was acked} (the
    WAL append is the last disk touch before the memtable write), so
    the oracle applies an op's effects only after it returns normally.

    Rot discipline: once a lost-write or bit-flip fault has fired, the
    run enters {e rot mode}: typed corruption raises become legitimate
    outcomes (counted, never ignored silently) and counter checks are
    masked — but value comparisons still hold, because detected
    corruption must surface as an exception, never as a wrong answer.
    Outside rot mode any corruption raise is a violation.

    Determinism contract: [run] is a pure function of
    [(driver factory state, plan)] — the {!outcome.report} of two runs
    of the same plan against same-seed drivers must be byte-identical.
    The smoke suite asserts exactly that. *)

exception Stop_run of string
(** Raised internally to truncate a run (e.g. unrecoverable store); the
    truncation is recorded in the report, never silently dropped. *)

type outcome = {
  ok : bool;  (** no invariant violations *)
  violations : string list;  (** in discovery order *)
  report : string;
      (** full deterministic run report: same plan, same bytes *)
  steps_run : int;
  crashes : int;  (** crash faults that fired and were recovered *)
  rot : bool;  (** run entered rot mode *)
}

(** [run driver plan] executes every step and returns the verdict.
    Never raises for engine misbehaviour — unhandled engine exceptions
    become violations; only harness bugs escape. *)
val run : Driver.t -> Plan.t -> outcome
