(** The in-memory oracle: a sorted map holding the logical state every
    engine must agree with.

    Semantics mirror the engines' shared contract: blind put/delete,
    append-resolver deltas ([base ^ delta], delta-as-base when missing —
    {!Kv.Entry.append_resolver}), inclusive-start bounded scans.  The
    differential tests and the DST interpreter both check engines
    against this module, so it is deliberately the dumbest possible
    implementation of the spec — any cleverness here would be a second
    implementation to doubt.

    Invariant: iteration ({!bindings}, {!scan}) is in key order
    ([String.compare]), matching the engines' one total order on keys —
    equality of [bindings] with an engine scan is the whole-state
    equivalence check. *)

module SMap : Map.S with type key = string

type t = { mutable m : string SMap.t }

val create : unit -> t

val get : t -> string -> string option
val put : t -> string -> string -> unit
val delete : t -> string -> unit

(** [delta o k d] applies the append resolver: [base ^ d], or [d] as
    base when [k] is absent. *)
val delta : t -> string -> string -> unit

val insert_if_absent : t -> string -> string -> bool
val read_modify_write : t -> string -> (string option -> string) -> unit

(** [scan o start n]: at most [n] bindings with key [>= start], in key
    order. *)
val scan : t -> string -> int -> (string * string) list

val bindings : t -> (string * string) list
val cardinal : t -> int

(** [apply_entry o k e] applies a typed {!Kv.Entry.t} (base, tombstone
    or delta list) — the write-batch path. *)
val apply_entry : t -> string -> Kv.Entry.t -> unit
