(** Engine drivers: the uniform record the DST interpreter executes
    plans against.

    A driver wraps one engine instance — bLSM {!Blsm.Tree} under any
    scheduler, {!Blsm.Partitioned}, the B-Tree and LevelDB baselines, or
    a replication primary/follower pair — behind first-class fields for
    the whole exercised surface, with optional hooks ([option] fields)
    for capabilities that vary by engine.

    Invariant: constructors are [unit -> t] factories, and {e all}
    nondeterminism is derived from the plan seed (store contents, tree
    config, fault PRNG).  The shrinker relies on this to rebuild a
    fresh, byte-identical engine for every candidate plan. *)

(** Mirror of the op counters an engine reports; the interpreter keeps
    its own copy and the two must agree at every checkpoint. *)
type counts = {
  n_puts : int;
  n_gets : int;
  n_deletes : int;
  n_deltas : int;
  n_scans : int;
  n_rmws : int;
  n_checked_inserts : int;
}

(** Handle for one open OCC transaction. *)
type txn_handle = {
  tx_get : string -> string option;
  tx_put : string -> string -> unit;
  tx_delete : string -> unit;
  tx_rmw : string -> string -> unit;
  tx_commit : unit -> [ `Committed | `Conflict ];
}

type t = {
  name : string;
  caps : Plan.caps;  (** which plan ops the generator may emit *)
  get : string -> string option;
  put : string -> string -> unit;
  delete : string -> unit;
  apply_delta : string -> string -> unit;
  rmw : string -> string -> unit;
  insert_if_absent : string -> string -> bool;
  scan : string -> int -> (string * string) list;
  write_batch : (string * Kv.Entry.t) list -> unit;
  maintenance : unit -> unit;
      (** advance background work (merges, pacing) one quantum *)
  flush : (unit -> unit) option;
  crash_recover : (unit -> unit) option;
      (** drop unsynced state and rebuild from the WAL, as a real crash
          would *)
  begin_txn : (unit -> txn_handle) option;
  catch_up : (unit -> [ `Applied of int | `Resynced | `Unreachable ]) option;
      (** [`Unreachable]: retry budget exhausted (e.g. partitioned) *)
  failover : (unit -> unit) option;
      (** promote the follower; demote the deposed primary at its old
          epoch *)
  follower_scan : (unit -> (string * string) list) option;
      (** omniscient harness view of the follower, bypasses staleness *)
  follower_get : (string -> [ `Ok of string option | `Too_stale ]) option;
      (** client-facing bounded-staleness read *)
  follower_stale : (unit -> bool) option;
  fenced_rejects : (unit -> int) option;
      (** primary-side stale-epoch rejections *)
  crash_follower : (unit -> unit) option;
  scrub : (unit -> int * bool) option;
      (** [(pages_checked, clean)] full-tree checksum sweep *)
  counts : (unit -> counts) option;
  mask_scans : bool;
      (** engine cannot serve consistent scans mid-merge; the
          interpreter skips scan equivalence for it *)
  last_stall : (unit -> Blsm.Tree.stall_breakdown) option;
  metrics_dump : unit -> string;
  faults : Simdisk.Faults.t;  (** fault plan armed on the primary store *)
  follower_faults : Simdisk.Faults.t option;
  net : (Simnet.t * string * string) option;
      (** simulated network plus the two node names (for link faults
          and clock ticks); [Some] only for replication pairs *)
}

(** [mk_store ~fault_seed ()] builds a seeded simulated store and the
    fault plan threaded through it. *)
val mk_store : fault_seed:int -> unit -> Pagestore.Store.t * Simdisk.Faults.t

(** Small-memtable config so short plans still exercise merges. *)
val small_config :
  ?scheduler:Blsm.Config.scheduler_kind -> int -> Blsm.Config.t

(** The RMW update function every driver and the oracle share:
    append-with-separator, so lost updates are visible in the value. *)
val append_rmw : string -> string option -> string

(** The engine factories exercised by the harness.  Only {!make_exn}'s
    string-keyed front end is called today; the typed factories below
    stay exported so an embedder (or a targeted test) can construct one
    engine without going through the name table. *)

[@@@lint.allow "U001"]

val blsm :
  ?scheduler:Blsm.Config.scheduler_kind -> name:string -> seed:int -> unit -> t

val partitioned : seed:int -> unit -> t
val leveldb : seed:int -> unit -> t
val btree : seed:int -> unit -> t
val replicated : seed:int -> unit -> t

(** The policy-tree shape shared by every [policy-*] driver. *)
val small_pconfig : Blsm.Policy_tree.pconfig

(** [policy_tree ~policy_name ~seed ()] wraps {!Blsm.Policy_tree} around
    the named {!Blsm.Compaction_policy} factory. *)
val policy_tree : policy_name:string -> seed:int -> unit -> t

(** The [policy-<name>] driver variants, one per compaction policy. *)
val policy_names : string list

(** All driver names the smoke/soak sweeps iterate, in a fixed order so
    reports are deterministic. *)
val all_names : string list

val caps_of_name : string -> Plan.caps option
val make : string -> seed:int -> (unit -> t) option

(** [make_exn name ~seed] — [Invalid_argument] on unknown names. *)
val make_exn : string -> seed:int -> unit -> t
