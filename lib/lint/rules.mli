(** The blsm-lint AST pass: parse one compilation unit (no typechecking)
    and report violations of the project rules.

    - [D001] nondeterminism sources ([Random.self_init], unseeded
      [Random.*] draws, [Unix.gettimeofday], [Sys.time],
      [Hashtbl.hash]): same-seed runs must be byte-identical or the DST
      harness and trace diffing are meaningless.
    - [D002] [Hashtbl.iter]/[fold]/[to_seq]: iteration order is
      nondeterministic; sort before the order can escape into output.
    - [C001] polymorphic [compare]/[min]/[max]/comparison operators in a
      comparator passed to the [List.sort]/[Array.sort] family: bLSM's
      merge and read-fanout arguments assume one monomorphic total order
      on keys.
    - [C002] catch-all [try ... with _ ->] (and
      [match ... with exception _ ->]): swallows [Assert_failure],
      [Out_of_memory] and injected-fault exceptions.  Binding the
      exception ([with e ->]) is permitted — it can be logged or
      re-raised.
    - [A001] module-access matrix ({!Config.access_rule}): references
      to restricted module paths (platter internals, [Unix]) outside
      their allowed directories.
    - [L000] malformed [[@lint.allow]] payload.
    - [P000] the file does not parse.

    Suppression: [[@lint.allow "RULE"]] on an expression, value binding
    or module binding silences the rule for that subtree;
    [[@@@lint.allow "RULE"]] silences it for the rest of the file.
    Several ids may be given in one string, separated by spaces or
    commas. *)

(** [lint_source ~config ~path source] lints one unit. [path] is the
    repo-relative path: its extension selects the implementation or
    interface grammar, and its directory drives rule A001.  Findings
    come back sorted by {!Finding.compare}. *)
val lint_source :
  config:Config.t -> path:string -> string -> Finding.t list
