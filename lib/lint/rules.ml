(* The blsm-lint AST pass.  Parses one compilation unit (never
   typechecks — fixtures and in-progress code must still lint) and walks
   the Parsetree with an [Ast_iterator], reporting violations of the
   project rules:

   D001  no nondeterminism sources (wall clocks, unseeded Random,
         Hashtbl.hash)
   D002  no Hashtbl iteration (order is nondeterministic across runs)
   C001  no polymorphic compare/min/max/(=) in comparator positions
   C002  no catch-all [try ... with _ ->]
   A001  module-access matrix: platter internals / Unix stay behind the
         Simdisk.Disk boundary
   A002  peer isolation: replication code reaches peer state only as
         Repl_msg frames through the Simnet endpoint (no direct
         Repl_server / Pagestore.Wal access outside lib/simnet)

   (S001, the .mli presence check, lives in {!Runner} — it is a property
   of the file set, not of one AST.)

   Suppression is scoped: a [[@lint.allow "RULE"]] attribute on an
   expression, value binding or module binding silences that rule for
   the whole subtree, and a floating [[@@@lint.allow "RULE"]] silences
   it for the rest of the file. *)

open Parsetree

type ctx = {
  file : string; (* repo-relative path, used for A001 and reports *)
  config : Config.t;
  mutable findings : Finding.t list;
  mutable scope : string list; (* rule ids currently allowed *)
  mutable in_comparator : int; (* > 0 inside a sort comparator argument *)
  mutable comparator_marks : expression list; (* physical identity marks *)
}

let report ctx (loc : Location.t) rule msg =
  if not (List.mem rule ctx.scope) then
    let p = loc.loc_start in
    ctx.findings <-
      Finding.make ~file:ctx.file ~line:p.pos_lnum
        ~col:(p.pos_cnum - p.pos_bol) ~rule msg
      :: ctx.findings

(* ---------------------------------------------------------------- *)
(* Suppression attributes *)

let split_rules s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun x -> x <> "")

let allows_of_attribute ctx (a : attribute) =
  if a.attr_name.txt <> "lint.allow" then []
  else
    match a.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
        split_rules s
    | _ ->
        report ctx a.attr_loc "L000"
          "malformed [@lint.allow] payload; expected a string literal of \
           rule ids, e.g. [@lint.allow \"D001\"]";
        []

let allows_of_attributes ctx attrs =
  List.concat_map (allows_of_attribute ctx) attrs

let with_allows ctx attrs f =
  let saved = ctx.scope in
  ctx.scope <- allows_of_attributes ctx attrs @ saved;
  f ();
  ctx.scope <- saved

(* ---------------------------------------------------------------- *)
(* Longident helpers *)

let rec flatten_lid = function
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (p, s) ->
      Option.map (fun l -> l @ [ s ]) (flatten_lid p)
  | Longident.Lapply _ -> None

(* [Stdlib.Random.int] and [Random.int] are the same source of trouble. *)
let normalize = function "Stdlib" :: rest -> rest | path -> path

let dotted path = String.concat "." path

let path_of_lid lid = Option.map normalize (flatten_lid lid)

(* ---------------------------------------------------------------- *)
(* D001: nondeterminism sources *)

(* The banned list lives in Config.nondet_sources — shared with the
   interprocedural nondet effect bit (rule D003), so the two rules can
   never drift apart. *)
let check_d001 ctx loc path =
  match List.assoc_opt (dotted path) ctx.config.nondet_sources with
  | Some why ->
      report ctx loc "D001"
        (Printf.sprintf
           "nondeterminism source %s %s; same-seed runs must be \
            byte-identical — use a seeded Repro_util.Prng (or the \
            simulated clock) instead"
           (dotted path) why)
  | None -> ()

(* ---------------------------------------------------------------- *)
(* D002: Hashtbl iteration order *)

let d002_banned =
  [
    "Hashtbl.iter";
    "Hashtbl.fold";
    "Hashtbl.to_seq";
    "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values";
  ]

let check_d002 ctx loc path =
  let d = dotted path in
  if List.mem d d002_banned then
    report ctx loc "D002"
      (Printf.sprintf
         "%s iterates in nondeterministic hash order; collect and sort \
          the keys before anything order-dependent escapes (or mark the \
          site [@lint.allow \"D002\"] if the result provably cannot \
          observe the order)"
         d)

(* ---------------------------------------------------------------- *)
(* C001: polymorphic comparison in comparator positions *)

let c001_sort_functions =
  [
    "List.sort";
    "List.stable_sort";
    "List.fast_sort";
    "List.sort_uniq";
    "List.merge";
    "Array.sort";
    "Array.stable_sort";
    "Array.fast_sort";
  ]

let c001_poly_idents = [ "compare"; "min"; "max" ]
let c001_poly_ops = [ "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!=" ]

let check_c001_ident ctx loc path =
  if ctx.in_comparator > 0 then
    match path with
    | [ x ] when List.mem x c001_poly_idents ->
        report ctx loc "C001"
          (Printf.sprintf
             "polymorphic %s in a comparator; bLSM assumes one \
              monomorphic total order on keys — use String.compare / \
              Int.compare (or a record-field comparator built from them)"
             x)
    | [ x ] when List.mem x c001_poly_ops ->
        report ctx loc "C001"
          (Printf.sprintf
             "polymorphic (%s) in a comparator; use the monomorphic \
              String.compare / Int.compare family instead"
             x)
    | _ -> ()

(* Mark the comparator argument of a sort-family application so the
   normal descent knows it has entered a comparator position. *)
let mark_comparators ctx fn args =
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match path_of_lid txt with
      | Some path when List.mem (dotted path) c001_sort_functions -> (
          match
            List.find_opt (fun (lbl, _) -> lbl = Asttypes.Nolabel) args
          with
          | Some (_, cmp) ->
              ctx.comparator_marks <- cmp :: ctx.comparator_marks
          | None -> ())
      | _ -> ())
  | _ -> ()

(* ---------------------------------------------------------------- *)
(* C002: catch-all exception handlers *)

let rec catches_everything pat =
  match pat.ppat_desc with
  | Ppat_any -> true
  | Ppat_or (a, b) -> catches_everything a || catches_everything b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> catches_everything p
  | _ -> false

let check_c002_cases ctx cases =
  List.iter
    (fun c ->
      let pat =
        match c.pc_lhs.ppat_desc with
        | Ppat_exception p -> Some p (* [match ... with exception _ ->] *)
        | _ -> Some c.pc_lhs
      in
      match pat with
      | Some p when catches_everything p ->
          report ctx p.ppat_loc "C002"
            "catch-all [with _ ->] swallows Assert_failure / \
             Out_of_memory / injected-fault exceptions; match the \
             exceptions you expect explicitly (binding [with e ->] and \
             re-raising is also acceptable)"
      | _ -> ())
    cases

let check_c002_match ctx cases =
  (* Only exception cases of a [match] are exception handlers. *)
  List.iter
    (fun c ->
      match c.pc_lhs.ppat_desc with
      | Ppat_exception p when catches_everything p ->
          report ctx p.ppat_loc "C002"
            "catch-all [with exception _ ->] swallows Assert_failure / \
             Out_of_memory / injected-fault exceptions; match the \
             exceptions you expect explicitly"
      | _ -> ())
    cases

(* ---------------------------------------------------------------- *)
(* A001: module-access matrix *)

let rec is_prefix prefix path =
  match (prefix, path) with
  | [], _ -> true
  | _, [] -> false
  | p :: ps, x :: xs -> String.equal p x && is_prefix ps xs

let dir_allowed file allowed_dirs =
  let dir = Filename.dirname file in
  List.exists
    (fun d ->
      String.equal dir d
      || String.length dir > String.length d
         && String.sub dir 0 (String.length d + 1) = d ^ "/")
    allowed_dirs

let check_a001 ctx loc path =
  List.iter
    (fun (rule : Config.access_rule) ->
      if
        List.exists
          (fun r -> is_prefix (String.split_on_char '.' r) path)
          rule.restricted
        && not (dir_allowed ctx.file rule.allowed_dirs)
      then
        report ctx loc "A001"
          (Printf.sprintf
             "reference to restricted module %s from %s: %s (allowed \
              from: %s)"
             (dotted path)
             (Filename.dirname ctx.file)
             rule.why
             (String.concat ", " rule.allowed_dirs)))
    ctx.config.access_matrix

(* ---------------------------------------------------------------- *)
(* A002: peer isolation for replication code *)

let contains_sub s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let check_a002 ctx loc path =
  List.iter
    (fun (rule : Config.peer_rule) ->
      let base = Filename.remove_extension (Filename.basename ctx.file) in
      if
        contains_sub base rule.peer_marker
        && (not (dir_allowed ctx.file rule.peer_exempt_dirs))
        && List.exists
             (fun r -> is_prefix (String.split_on_char '.' r) path)
             rule.peer_restricted
      then
        report ctx loc "A002"
          (Printf.sprintf "reference to %s from replication file %s: %s"
             (dotted path) ctx.file rule.peer_why))
    ctx.config.peer_rules

(* Every rule that looks at a dotted identifier path. *)
let check_path ctx loc path =
  check_d001 ctx loc path;
  check_d002 ctx loc path;
  check_c001_ident ctx loc path;
  check_a001 ctx loc path;
  check_a002 ctx loc path

let check_lid ctx loc lid =
  match path_of_lid lid with Some p -> check_path ctx loc p | None -> ()

(* ---------------------------------------------------------------- *)
(* The iterator *)

let make_iterator ctx =
  let default = Ast_iterator.default_iterator in
  let expr self e =
    with_allows ctx e.pexp_attributes (fun () ->
        (* Enter comparator scope before the checks so that a bare
           [List.sort compare] flags the [compare] node itself. *)
        let marked = List.memq e ctx.comparator_marks in
        if marked then begin
          ctx.comparator_marks <-
            List.filter (fun m -> m != e) ctx.comparator_marks;
          ctx.in_comparator <- ctx.in_comparator + 1
        end;
        (match e.pexp_desc with
        | Pexp_ident { txt; loc } -> check_lid ctx loc txt
        | Pexp_apply (fn, args) -> mark_comparators ctx fn args
        | Pexp_try (_, cases) -> check_c002_cases ctx cases
        | Pexp_match (_, cases) -> check_c002_match ctx cases
        | Pexp_construct ({ txt; loc }, _) -> check_lid ctx loc txt
        | _ -> ());
        default.expr self e;
        if marked then ctx.in_comparator <- ctx.in_comparator - 1)
  in
  let typ self t =
    (match t.ptyp_desc with
    | Ptyp_constr ({ txt; loc }, _) -> check_lid ctx loc txt
    | _ -> ());
    default.typ self t
  in
  let module_expr self m =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> check_lid ctx loc txt
    | _ -> ());
    default.module_expr self m
  in
  let value_binding self vb =
    with_allows ctx vb.pvb_attributes (fun () ->
        default.value_binding self vb)
  in
  let module_binding self mb =
    with_allows ctx mb.pmb_attributes (fun () ->
        default.module_binding self mb)
  in
  (* Floating [@@@lint.allow "..."] applies to the rest of the file. *)
  let structure self items =
    let saved = ctx.scope in
    List.iter
      (fun item ->
        (match item.pstr_desc with
        | Pstr_attribute a ->
            ctx.scope <- allows_of_attribute ctx a @ ctx.scope
        | _ -> ());
        self.Ast_iterator.structure_item self item)
      items;
    ctx.scope <- saved
  in
  let signature self items =
    let saved = ctx.scope in
    List.iter
      (fun item ->
        (match item.psig_desc with
        | Psig_attribute a ->
            ctx.scope <- allows_of_attribute ctx a @ ctx.scope
        | _ -> ());
        self.Ast_iterator.signature_item self item)
      items;
    ctx.scope <- saved
  in
  {
    default with
    Ast_iterator.expr;
    typ;
    module_expr;
    value_binding;
    module_binding;
    structure;
    signature;
  }

(* ---------------------------------------------------------------- *)
(* Entry point *)

let lint_source ~config ~path source =
  let ctx =
    {
      file = path;
      config;
      findings = [];
      scope = [];
      in_comparator = 0;
      comparator_marks = [];
    }
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  let iter = make_iterator ctx in
  (try
     if Filename.check_suffix path ".mli" then
       iter.Ast_iterator.signature iter (Parse.interface lexbuf)
     else iter.Ast_iterator.structure iter (Parse.implementation lexbuf)
   with
  | Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      report ctx loc "P000" "file does not parse (syntax error)"
  | Lexer.Error (_, loc) ->
      report ctx loc "P000" "file does not parse (lexer error)");
  List.sort Finding.compare ctx.findings
