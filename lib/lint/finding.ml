type t = { file : string; line : int; col : int; rule : string; msg : string }

let make ~file ~line ~col ~rule msg = { file; line; col; rule; msg }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let to_string f = Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.msg

(* Baseline entries deliberately omit the line number so that unrelated
   edits above a baselined finding do not churn the baseline file. *)
let baseline_key f = Printf.sprintf "%s: [%s] %s" f.file f.rule f.msg
