(** Phase 2 of blsm-lint v2, part 1: the project-wide call graph and
    the effect fixpoint over its Tarjan SCC condensation.

    Determinism contract: node keys, adjacency, SCC emission and the
    JSON dump are all totally ordered, so results are independent of
    file-visitation order and byte-identical across runs. *)

type edge = {
  e_target : string;  (** node key *)
  e_mask : Effects.mask;
      (** handlers between the call site and caller entry *)
  e_line : int;
}

type node = {
  n_key : string;  (** ["<unit path>#<Module.qualified.name>"] *)
  n_fn : Extract.fn;
  n_intrinsic : Effects.t;
  mutable n_edges : edge list;  (** resolved, deduplicated, sorted *)
  mutable n_eff : Effects.t;  (** inferred summary after [solve] *)
}

type t = {
  cg_nodes : (string, node) Hashtbl.t;
  cg_keys : string list;  (** sorted *)
  cg_units : Extract.unit_info list;  (** sorted by path *)
  cg_by_module : (string, Extract.unit_info list) Hashtbl.t;
  cg_by_qualified : (string, string list) Hashtbl.t;
  cg_config : Config.t;
}

val key_of : Extract.fn -> string
val qualified_of_key : string -> string
val unit_of_key : string -> string
val find_node : t -> string -> node option
val node_effect : t -> string -> Effects.t

(** All nodes whose qualified name is exactly the given
    ["Module.name"] (module-name collisions give several). *)
val nodes_by_qualified : t -> string -> node list

(** Resolve a dotted reference made from inside [caller_mods] (module
    path, unit module first) in [unit_info].  [None] = unresolved or
    ambiguous; the analysis never fabricates an edge. *)
val resolve :
  t ->
  unit_info:Extract.unit_info ->
  caller_mods:string list ->
  string list ->
  string option

(** Build the graph (nodes + resolved edges) from extracted units. *)
val build : config:Config.t -> Extract.unit_info list -> t

(** Run the effect fixpoint: callees-before-callers over SCCs,
    iterating within each SCC until stable. *)
val solve : t -> unit

(** Deterministic BFS from [start] to a node whose *intrinsic* facts
    satisfy [pred], over edges allowed by [passable].  Returns node
    keys, caller first. *)
val witness :
  t ->
  string ->
  pred:(node -> bool) ->
  passable:(Effects.mask -> bool) ->
  string list option

(** Render a witness key path as ["A.f -> B.g -> C.h"]. *)
val render_witness : string list -> string

(** Dump node summaries + resolved edges as byte-stable JSON. *)
val to_json : t -> string
