(** blsm-lint configuration: what to scan and the project-specific
    invariants the AST pass enforces.  The default value below is the
    checked-in policy for this repository; tests construct restricted
    configs of their own. *)

(** One row of the A001 module-access matrix. *)
type access_rule = {
  restricted : string list;
      (** dotted module paths, e.g. ["Pagestore.Platter"]; a reference
          matches when its leading components equal one of these *)
  allowed_dirs : string list;
      (** repo-relative directories whose files may reference the
          restricted modules *)
  why : string;  (** rendered in the finding message *)
}

type t = {
  scan_dirs : string list;  (** directories walked by default *)
  access_matrix : access_rule list;  (** rule A001 *)
  mli_required_dirs : string list;
      (** rule S001: every [.ml] under these roots needs a sibling
          [.mli] *)
  mli_exempt_suffixes : string list;
      (** module basename suffixes exempt from S001 (e.g. ["_intf"] for
          signature-only modules) *)
  mli_exempt_modules : string list;
      (** individual module basenames exempt from S001 *)
}

(** The policy for this repository: scan [lib/], [bin/], [bench/];
    platter internals restricted to [lib/pagestore] + [lib/simdisk];
    [Unix] restricted to [bench]/[bin]/[tools]; [.mli] required for
    every [lib/] module except [*_intf]. *)
val default : t
