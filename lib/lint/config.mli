(** blsm-lint configuration: what to scan and the project-specific
    invariants the AST pass enforces.  The default value below is the
    checked-in policy for this repository; tests construct restricted
    configs of their own. *)

(** One row of the A001 module-access matrix. *)
type access_rule = {
  restricted : string list;
      (** dotted module paths, e.g. ["Pagestore.Platter"]; a reference
          matches when its leading components equal one of these *)
  allowed_dirs : string list;
      (** repo-relative directories whose files may reference the
          restricted modules *)
  why : string;  (** rendered in the finding message *)
}

(** One row of the A002 peer-isolation rule: files whose basename
    contains [peer_marker] are replication logic and, outside
    [peer_exempt_dirs], may not reference [peer_restricted] modules —
    peer state must flow through the simnet endpoint. *)
type peer_rule = {
  peer_marker : string;  (** basename substring marking replication code *)
  peer_restricted : string list;
      (** dotted module paths such files may not reference *)
  peer_exempt_dirs : string list;
      (** directories exempt from the rule (the transport itself) *)
  peer_why : string;  (** rendered in the finding message *)
}

(** One E001 protocol boundary: a function (module-qualified name) whose
    inferred may-raise set must stay inside [bd_allowed] — anything else
    leaking across it is the PR 6 bug class. *)
type boundary = {
  bd_func : string;  (** e.g. ["Repl_server.attach"] *)
  bd_allowed : string list;  (** exception constructor names *)
  bd_why : string;  (** rendered in the finding message *)
}

type t = {
  scan_dirs : string list;  (** directories walked by default *)
  access_matrix : access_rule list;  (** rule A001 *)
  peer_rules : peer_rule list;  (** rule A002 *)
  mli_required_dirs : string list;
      (** rule S001: every [.ml] under these roots needs a sibling
          [.mli] *)
  mli_exempt_suffixes : string list;
      (** module basename suffixes exempt from S001 (e.g. ["_intf"] for
          signature-only modules) *)
  mli_exempt_modules : string list;
      (** individual module basenames exempt from S001 *)
  nondet_sources : (string * string) list;
      (** rule D001 / the nondet effect bit: banned dotted paths with a
          reason each *)
  io_sources : string list;
      (** the io effect bit: dotted module prefixes meaning raw platter
          or real-OS access *)
  stall_sources : string list;
      (** the stall effect bit: dotted paths of the pacing-quota
          producers (rule Y001's forbidden reach) *)
  library_wrappers : (string * string) list;
      (** dune wrapper module -> directory, used to resolve
          [Blsm.Tree.put] to lib/core's [Tree.put] and to break
          module-name ties between directories *)
  engine_surface_modules : string list;
      (** rule D003: modules whose .mli-exported values are engine ops *)
  boundaries : boundary list;  (** rule E001 *)
  critical_sections : (string * string) list;
      (** rule Y001: (module-qualified function, label) pairs that may
          not transitively reach a stall source *)
  dead_export_dirs : string list;
      (** rule U001: directories whose [.mli] exports must be referenced
          from outside their own module *)
  dead_export_ref_dirs : string list;
      (** directories scanned for references when deciding U001 (a
          superset of [scan_dirs]: tests and examples keep an export
          alive) *)
}

(** The policy for this repository: scan [lib/], [bin/], [bench/],
    [tools/]; platter internals restricted to [lib/pagestore] +
    [lib/simdisk]; [Unix] restricted to [bench]/[bin]/[tools]; [.mli]
    required for every [lib/] module except [*_intf]; engine surfaces,
    protocol boundaries and critical sections as documented in
    DESIGN.md §15. *)
val default : t
