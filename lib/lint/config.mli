(** blsm-lint configuration: what to scan and the project-specific
    invariants the AST pass enforces.  The default value below is the
    checked-in policy for this repository; tests construct restricted
    configs of their own. *)

(** One row of the A001 module-access matrix. *)
type access_rule = {
  restricted : string list;
      (** dotted module paths, e.g. ["Pagestore.Platter"]; a reference
          matches when its leading components equal one of these *)
  allowed_dirs : string list;
      (** repo-relative directories whose files may reference the
          restricted modules *)
  why : string;  (** rendered in the finding message *)
}

(** One row of the A002 peer-isolation rule: files whose basename
    contains [peer_marker] are replication logic and, outside
    [peer_exempt_dirs], may not reference [peer_restricted] modules —
    peer state must flow through the simnet endpoint. *)
type peer_rule = {
  peer_marker : string;  (** basename substring marking replication code *)
  peer_restricted : string list;
      (** dotted module paths such files may not reference *)
  peer_exempt_dirs : string list;
      (** directories exempt from the rule (the transport itself) *)
  peer_why : string;  (** rendered in the finding message *)
}

type t = {
  scan_dirs : string list;  (** directories walked by default *)
  access_matrix : access_rule list;  (** rule A001 *)
  peer_rules : peer_rule list;  (** rule A002 *)
  mli_required_dirs : string list;
      (** rule S001: every [.ml] under these roots needs a sibling
          [.mli] *)
  mli_exempt_suffixes : string list;
      (** module basename suffixes exempt from S001 (e.g. ["_intf"] for
          signature-only modules) *)
  mli_exempt_modules : string list;
      (** individual module basenames exempt from S001 *)
}

(** The policy for this repository: scan [lib/], [bin/], [bench/];
    platter internals restricted to [lib/pagestore] + [lib/simdisk];
    [Unix] restricted to [bench]/[bin]/[tools]; [.mli] required for
    every [lib/] module except [*_intf]. *)
val default : t
