(* Phase 1 of blsm-lint v2: walk one compilation unit and extract the
   facts the interprocedural pass needs — the functions it defines, the
   references (call edges) inside each, and per-function *intrinsic*
   effect facts:

   - nondet:  references a configured nondeterminism source (D001 list)
   - io:      references Platter internals or Unix
   - mutates: assigns to state whose head identifier is not a
              function-local allocation
   - stall:   references a pacing-quota producer (Scheduler.spring_quota
              family)
   - raises:  [raise (E ...)] sites plus a small table of stdlib
              raisers (failwith, List.hd, Hashtbl.find, ...), each
              filtered through the [try ... with] handlers between the
              site and the function entry

   Everything here is parsetree-level: no typing, no cmt files.  The
   soundness caveats that buys (and why they are acceptable for this
   codebase) are documented in DESIGN.md §15.

   Function identity is module-qualified: [lib/core/tree.ml]'s
   [let commit_root] is [Tree.commit_root]; a [let locate] inside
   [module Fence = struct ... end] of sst_format.ml is
   [Sst_format.Fence.locate].  Local [let]s inside a function body are
   attributed to the enclosing function — a closure's effects are its
   definer's effects, which is what makes record-of-closures surfaces
   like {!Dst.Driver} analyzable at all. *)

open Parsetree
module SS = Effects.SS

type call = {
  c_path : string list;  (* dotted reference as written, Stdlib-normalized *)
  c_mask : Effects.mask;  (* handlers between the call site and fn entry *)
  c_line : int;
}

type fn = {
  fn_unit : string;  (* repo-relative .ml path *)
  fn_module : string list;  (* module path, unit module first *)
  fn_name : string;
  fn_line : int;
  fn_allows : string list;  (* rules allowed in scope at the definition *)
  mutable fn_nondet : string option;  (* witness source path *)
  mutable fn_io : string option;
  mutable fn_mut : bool;
  mutable fn_stall : string option;
  mutable fn_raises : (string * string) list;  (* exn, origin note *)
  mutable fn_calls : call list;
}

type comparator_use = {
  cu_file : string;
  cu_line : int;
  cu_path : string list;  (* the named function passed as a comparator *)
  cu_allows : string list;
}

type export = {
  ex_unit : string;  (* repo-relative .mli path *)
  ex_module : string list;  (* module path, unit module first *)
  ex_name : string;
  ex_line : int;
  ex_allows : string list;
}

type unit_info = {
  u_path : string;
  u_module : string;
  u_is_mli : bool;
  u_fns : fn list;
  u_exports : export list;
  u_refs : string list list;  (* every dotted reference in the unit *)
  u_opens : string list list;
  u_aliases : (string * string list) list;  (* module X = Chain *)
  u_cuses : comparator_use list;
}

let qualified f = String.concat "." (f.fn_module @ [ f.fn_name ])

(* ---------------------------------------------------------------- *)
(* Longident helpers (same normalization as the per-expression pass) *)

let rec flatten_lid = function
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (p, s) -> Option.map (fun l -> l @ [ s ]) (flatten_lid p)
  | Longident.Lapply _ -> None

let normalize = function "Stdlib" :: rest -> rest | path -> path
let dotted path = String.concat "." path

(* Strip a known dune library wrapper so [Blsm.Scheduler.spring_quota]
   matches the configured [Scheduler.spring_quota]. *)
let strip_wrapper ~(config : Config.t) path =
  match path with
  | w :: (_ :: _ as rest) when List.mem_assoc w config.library_wrappers -> rest
  | path -> path

(* ---------------------------------------------------------------- *)
(* Suppression attributes (the same grammar as the per-expression
   pass, minus the L000 diagnostic — Rules reports malformed payloads) *)

let split_rules s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun x -> x <> "")

let allows_of_attribute (a : attribute) =
  if a.attr_name.txt <> "lint.allow" then []
  else
    match a.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
        split_rules s
    | _ -> []

let allows_of_attributes attrs = List.concat_map allows_of_attribute attrs

(* ---------------------------------------------------------------- *)
(* Small stdlib effect tables *)

(* Raising stdlib functions we model; out-of-bounds raisers
   (String.sub, Array.get, ...) are deliberately excluded — indexing
   bugs are not protocol exceptions, and modeling them would make every
   raise set [Invalid_argument]-saturated. *)
let stdlib_raisers =
  [
    ("failwith", "Failure");
    ("invalid_arg", "Invalid_argument");
    ("int_of_string", "Failure");
    ("float_of_string", "Failure");
    ("List.hd", "Failure");
    ("List.tl", "Failure");
    ("Option.get", "Invalid_argument");
    ("List.find", "Not_found");
    ("List.assoc", "Not_found");
    ("Hashtbl.find", "Not_found");
    ("Sys.getenv", "Not_found");
  ]

(* Stdlib mutators: dotted path -> index of the mutated positional
   argument. *)
let stdlib_mutators =
  [
    (":=", 0);
    ("incr", 0);
    ("decr", 0);
    ("Array.set", 0);
    ("Array.unsafe_set", 0);
    ("Array.fill", 0);
    ("Array.blit", 2);
    ("Bytes.set", 0);
    ("Bytes.unsafe_set", 0);
    ("Bytes.fill", 0);
    ("Bytes.blit", 2);
    ("Bytes.blit_string", 2);
    ("Hashtbl.add", 0);
    ("Hashtbl.replace", 0);
    ("Hashtbl.remove", 0);
    ("Hashtbl.reset", 0);
    ("Hashtbl.clear", 0);
    ("Buffer.add_string", 0);
    ("Buffer.add_char", 0);
    ("Buffer.add_bytes", 0);
    ("Buffer.add_buffer", 0);
    ("Buffer.add_substring", 0);
    ("Buffer.clear", 0);
    ("Buffer.reset", 0);
  ]

(* RHS heads that allocate fresh, function-local mutable state. *)
let local_allocators =
  [
    "ref";
    "Array.make";
    "Array.create_float";
    "Array.init";
    "Array.copy";
    "Array.of_list";
    "Bytes.create";
    "Bytes.make";
    "Bytes.of_string";
    "Buffer.create";
    "Hashtbl.create";
    "Queue.create";
  ]

let sort_functions =
  [
    "List.sort";
    "List.stable_sort";
    "List.fast_sort";
    "List.sort_uniq";
    "List.merge";
    "Array.sort";
    "Array.stable_sort";
    "Array.fast_sort";
  ]

(* ---------------------------------------------------------------- *)
(* Context *)

type ctx = {
  config : Config.t;
  path : string;
  unit_module : string;
  mutable mods : string list;  (* module path, unit module first *)
  mutable scope : string list;  (* rule ids currently allowed *)
  mutable mask : Effects.mask;  (* flattened handler stack *)
  mutable current : fn option;
  mutable locals : SS.t;  (* local mutable allocations in current fn *)
  mutable fns : fn list;  (* reversed *)
  mutable top_ord : int;
  mutable exports : export list;  (* reversed *)
  mutable refs : string list list;  (* reversed *)
  mutable opens : string list list;
  mutable aliases : (string * string list) list;
  mutable cuses : comparator_use list;  (* reversed *)
}

let with_allows ctx attrs f =
  let saved = ctx.scope in
  ctx.scope <- allows_of_attributes attrs @ saved;
  f ();
  ctx.scope <- saved

let with_mask ctx m f =
  let saved = ctx.mask in
  ctx.mask <- Effects.mask_union saved m;
  f ();
  ctx.mask <- saved

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

(* ---------------------------------------------------------------- *)
(* Handler masks *)

(* Does [rhs] syntactically re-raise the bound exception [v]?  If so the
   handler is transparent (observe-and-rethrow), not a mask. *)
let rethrows v rhs =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident r; _ }; _ },
                [ (_, { pexp_desc = Pexp_ident { txt = Longident.Lident x; _ }; _ }) ] )
            when (r = "raise" || r = "raise_notrace") && x = v ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it rhs;
  !found

let rec mask_of_pattern ~rhs pat =
  match pat.ppat_desc with
  | Ppat_any -> Effects.Catch_all
  | Ppat_var { txt = v; _ } ->
      if rethrows v rhs then Effects.mask_none else Effects.Catch_all
  | Ppat_alias (p, { txt = v; _ }) ->
      if rethrows v rhs then Effects.mask_none else mask_of_pattern ~rhs p
  | Ppat_or (a, b) ->
      Effects.mask_union (mask_of_pattern ~rhs a) (mask_of_pattern ~rhs b)
  | Ppat_construct ({ txt; _ }, _) -> (
      match flatten_lid txt with
      | Some path when path <> [] ->
          Effects.Catch (SS.singleton (List.nth path (List.length path - 1)))
      | _ -> Effects.mask_none)
  | Ppat_constraint (p, _) -> mask_of_pattern ~rhs p
  | _ -> Effects.mask_none (* conservative: does not mask *)

let is_exception_case c =
  match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false

(* Combined mask of a handler list.  [match]-cases only mask through
   their [exception] patterns; [try]-cases mask directly.  Guarded
   cases never mask (the guard may decline). *)
let mask_of_cases ~for_match cases =
  List.fold_left
    (fun m c ->
      if c.pc_guard <> None then m
      else
        let pat =
          match c.pc_lhs.ppat_desc with
          | Ppat_exception p -> Some p
          | _ -> if for_match then None else Some c.pc_lhs
        in
        match pat with
        | None -> m
        | Some p -> Effects.mask_union m (mask_of_pattern ~rhs:c.pc_rhs p))
    Effects.mask_none cases

(* ---------------------------------------------------------------- *)
(* Recording *)

let record_raise ctx exn ~origin =
  if not (Effects.mask_catches ctx.mask exn) then
    match ctx.current with
    | Some f ->
        if not (List.mem_assoc exn f.fn_raises) then
          f.fn_raises <- (exn, origin) :: f.fn_raises
    | None -> ()

let record_mutation ctx =
  match ctx.current with Some f -> f.fn_mut <- true | None -> ()

let record_ref ctx loc lid =
  match Option.map normalize (flatten_lid lid) with
  | None -> ()
  | Some path ->
      ctx.refs <- path :: ctx.refs;
      let stripped = strip_wrapper ~config:ctx.config path in
      let d = dotted stripped in
      (match ctx.current with
      | None -> ()
      | Some f ->
          f.fn_calls <-
            { c_path = path; c_mask = ctx.mask; c_line = line_of loc }
            :: f.fn_calls;
          (match List.assoc_opt d ctx.config.nondet_sources with
          | Some _ when f.fn_nondet = None -> f.fn_nondet <- Some d
          | _ -> ());
          if f.fn_stall = None && List.mem d ctx.config.stall_sources then
            f.fn_stall <- Some d;
          if f.fn_io = None then begin
            let io_hit =
              List.exists
                (fun src ->
                  let srcp = String.split_on_char '.' src in
                  let rec is_prefix p x =
                    match (p, x) with
                    | [], _ -> true
                    | _, [] -> false
                    | a :: ps, b :: xs -> String.equal a b && is_prefix ps xs
                  in
                  is_prefix srcp path || is_prefix srcp stripped)
                ctx.config.io_sources
            in
            if io_hit then f.fn_io <- Some d
          end);
      (* stdlib raisers fire whether or not we are inside a function —
         but only functions carry raise sets *)
      match List.assoc_opt d stdlib_raisers with
      | Some exn -> record_raise ctx exn ~origin:(d ^ " raises " ^ exn)
      | None -> ()

(* Head identifier of a mutation target: [t.c.field] -> [t];
   [a.(i).f] -> [a].  [None] means "could not tell" and is treated as
   escaping. *)
let rec head_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident s; _ } -> Some s
  | Pexp_ident _ -> None (* qualified: module-level state, escapes *)
  | Pexp_field (e, _) -> head_ident e
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (Asttypes.Nolabel, a) :: _)
    when match flatten_lid txt with
         | Some p ->
             List.mem (dotted (normalize p))
               [ "Array.get"; "Array.unsafe_get"; "String.get"; "Bytes.get" ]
         | None -> false ->
      head_ident a
  | _ -> None

let mutation_escapes ctx target =
  match head_ident target with
  | Some name -> not (SS.mem name ctx.locals)
  | None -> true

let nolabel_arg n args =
  let rec go n = function
    | [] -> None
    | (Asttypes.Nolabel, a) :: rest -> if n = 0 then Some a else go (n - 1) rest
    | _ :: rest -> go n rest
  in
  go n args

let record_local_allocs ctx vbs =
  if ctx.current <> None then
    List.iter
      (fun vb ->
        let rec var p =
          match p.ppat_desc with
          | Ppat_var { txt; _ } -> Some txt
          | Ppat_constraint (p, _) -> var p
          | _ -> None
        in
        match var vb.pvb_pat with
        | None -> ()
        | Some name ->
            let allocates =
              match vb.pvb_expr.pexp_desc with
              | Pexp_record _ | Pexp_array _ -> true
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
                  match flatten_lid txt with
                  | Some p -> List.mem (dotted (normalize p)) local_allocators
                  | None -> false)
              | _ -> false
            in
            if allocates then ctx.locals <- SS.add name ctx.locals)
      vbs

(* ---------------------------------------------------------------- *)
(* The iterator *)

let make_iterator ctx =
  let default = Ast_iterator.default_iterator in
  let expr self e =
    with_allows ctx e.pexp_attributes (fun () ->
        match e.pexp_desc with
        | Pexp_try (body, cases) ->
            with_mask ctx (mask_of_cases ~for_match:false cases) (fun () ->
                self.Ast_iterator.expr self body);
            List.iter (self.Ast_iterator.case self) cases
        | Pexp_match (scrut, cases) when List.exists is_exception_case cases ->
            with_mask ctx (mask_of_cases ~for_match:true cases) (fun () ->
                self.Ast_iterator.expr self scrut);
            List.iter (self.Ast_iterator.case self) cases
        | Pexp_ident { txt; loc } -> record_ref ctx loc txt
        | Pexp_setfield (lhs, _, _) ->
            if mutation_escapes ctx lhs then record_mutation ctx;
            default.expr self e
        | Pexp_setinstvar _ ->
            record_mutation ctx;
            default.expr self e
        | Pexp_let (_, vbs, _) ->
            record_local_allocs ctx vbs;
            default.expr self e
        | Pexp_letmodule (name, me, body) ->
            (match (name.txt, me.pmod_desc) with
            | Some n, Pmod_ident { txt; _ } -> (
                match Option.map normalize (flatten_lid txt) with
                | Some chain -> ctx.aliases <- (n, chain) :: ctx.aliases
                | None -> ())
            | _ -> ());
            self.Ast_iterator.module_expr self me;
            self.Ast_iterator.expr self body
        | Pexp_open
            ({ popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }, body)
          ->
            (match Option.map normalize (flatten_lid txt) with
            | Some chain -> ctx.opens <- chain :: ctx.opens
            | None -> ());
            self.Ast_iterator.expr self body
        | Pexp_apply (f, args) ->
            (match f.pexp_desc with
            | Pexp_ident { txt; _ } -> (
                match Option.map normalize (flatten_lid txt) with
                | None -> ()
                | Some fpath ->
                    let d = dotted fpath in
                    (* [raise (E ...)] *)
                    (if d = "raise" || d = "raise_notrace" then
                       match nolabel_arg 0 args with
                       | Some
                           {
                             pexp_desc = Pexp_construct ({ txt = exn_lid; _ }, _);
                             _;
                           } -> (
                           match flatten_lid exn_lid with
                           | Some ep when ep <> [] ->
                               let exn = List.nth ep (List.length ep - 1) in
                               record_raise ctx exn ~origin:("raise " ^ exn)
                           | _ -> ())
                       | _ -> () (* re-raise of a bound variable *));
                    (* stdlib mutators *)
                    (match List.assoc_opt d stdlib_mutators with
                    | Some idx -> (
                        match nolabel_arg idx args with
                        | Some target ->
                            if mutation_escapes ctx target then
                              record_mutation ctx
                        | None -> ())
                    | None -> ());
                    (* named comparator passed to a sort-family call *)
                    if List.mem d sort_functions then
                      match nolabel_arg 0 args with
                      | Some
                          {
                            pexp_desc = Pexp_ident { txt = cmp; _ };
                            pexp_loc;
                            pexp_attributes;
                            _;
                          } -> (
                          match Option.map normalize (flatten_lid cmp) with
                          | Some cpath when List.length cpath > 0 ->
                              ctx.cuses <-
                                {
                                  cu_file = ctx.path;
                                  cu_line = line_of pexp_loc;
                                  cu_path = cpath;
                                  cu_allows =
                                    allows_of_attributes pexp_attributes
                                    @ ctx.scope;
                                }
                                :: ctx.cuses
                          | _ -> ())
                      | _ -> ())
            | _ -> ());
            default.expr self e
        | _ -> default.expr self e)
  in
  (* A structure-level binding defines a function (or value) node unless
     we are already inside one, in which case it is a local definition
     and its effects belong to the enclosing function. *)
  let enter_fn ctx name line attrs walk =
    let key_mods = ctx.mods in
    let existing =
      List.find_opt
        (fun f -> f.fn_module = key_mods && f.fn_name = name)
        ctx.fns
    in
    let f =
      match existing with
      | Some f -> f
      | None ->
          let f =
            {
              fn_unit = ctx.path;
              fn_module = key_mods;
              fn_name = name;
              fn_line = line;
              fn_allows = allows_of_attributes attrs @ ctx.scope;
              fn_nondet = None;
              fn_io = None;
              fn_mut = false;
              fn_stall = None;
              fn_raises = [];
              fn_calls = [];
            }
          in
          ctx.fns <- f :: ctx.fns;
          f
    in
    ctx.current <- Some f;
    ctx.locals <- SS.empty;
    with_allows ctx attrs walk;
    ctx.current <- None;
    ctx.locals <- SS.empty
  in
  let rec walk_module_expr self me =
    match me.pmod_desc with
    | Pmod_structure str -> self.Ast_iterator.structure self str
    | Pmod_functor (_, body) -> walk_module_expr self body
    | Pmod_constraint (me, _) -> walk_module_expr self me
    | Pmod_ident _ | Pmod_apply _ -> () (* alias / opaque application *)
    | _ -> default.module_expr self me
  in
  let structure_item self item =
    match item.pstr_desc with
    | Pstr_value (_, vbs) when ctx.current = None ->
        List.iter
          (fun vb ->
            let rec var p =
              match p.ppat_desc with
              | Ppat_var { txt; _ } -> Some txt
              | Ppat_constraint (p, _) -> var p
              | _ -> None
            in
            let name =
              match var vb.pvb_pat with
              | Some n -> n
              | None ->
                  let n = Printf.sprintf "_top%d" ctx.top_ord in
                  ctx.top_ord <- ctx.top_ord + 1;
                  n
            in
            enter_fn ctx name
              (line_of vb.pvb_loc)
              vb.pvb_attributes
              (fun () -> self.Ast_iterator.expr self vb.pvb_expr))
          vbs
    | Pstr_eval (e, attrs) when ctx.current = None ->
        let name = Printf.sprintf "_top%d" ctx.top_ord in
        ctx.top_ord <- ctx.top_ord + 1;
        enter_fn ctx name (line_of item.pstr_loc) attrs (fun () ->
            self.Ast_iterator.expr self e)
    | Pstr_module mb ->
        (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
        | Some n, Pmod_ident { txt; _ } -> (
            match Option.map normalize (flatten_lid txt) with
            | Some chain -> ctx.aliases <- (n, chain) :: ctx.aliases
            | None -> ())
        | _ -> ());
        with_allows ctx mb.pmb_attributes (fun () ->
            match mb.pmb_name.txt with
            | Some n ->
                let saved = ctx.mods in
                ctx.mods <- ctx.mods @ [ n ];
                walk_module_expr self mb.pmb_expr;
                ctx.mods <- saved
            | None -> walk_module_expr self mb.pmb_expr)
    | Pstr_recmodule mbs ->
        List.iter
          (fun mb ->
            match mb.pmb_name.txt with
            | Some n ->
                let saved = ctx.mods in
                ctx.mods <- ctx.mods @ [ n ];
                walk_module_expr self mb.pmb_expr;
                ctx.mods <- saved
            | None -> walk_module_expr self mb.pmb_expr)
          mbs
    | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ } ->
        (match Option.map normalize (flatten_lid txt) with
        | Some chain -> ctx.opens <- chain :: ctx.opens
        | None -> ())
    | _ -> default.structure_item self item
  in
  (* Floating [@@@lint.allow] scopes to the rest of the enclosing
     structure/signature, restored when it ends. *)
  let structure self items =
    let saved = ctx.scope in
    List.iter
      (fun item ->
        (match item.pstr_desc with
        | Pstr_attribute a -> ctx.scope <- allows_of_attribute a @ ctx.scope
        | _ -> ());
        self.Ast_iterator.structure_item self item)
      items;
    ctx.scope <- saved
  in
  let signature_item self item =
    match item.psig_desc with
    | Psig_value vd ->
        ctx.exports <-
          {
            ex_unit = ctx.path;
            ex_module = ctx.mods;
            ex_name = vd.pval_name.txt;
            ex_line = line_of vd.pval_loc;
            ex_allows = allows_of_attributes vd.pval_attributes @ ctx.scope;
          }
          :: ctx.exports
    | Psig_module md -> (
        match (md.pmd_name.txt, md.pmd_type.pmty_desc) with
        | Some n, Pmty_signature sg ->
            let saved = ctx.mods in
            ctx.mods <- ctx.mods @ [ n ];
            self.Ast_iterator.signature self sg;
            ctx.mods <- saved
        | _ -> () (* module types / functors: specs, not exports *))
    | Psig_modtype _ -> () (* vals inside module types are not exports *)
    | _ -> default.signature_item self item
  in
  let signature self items =
    let saved = ctx.scope in
    List.iter
      (fun item ->
        (match item.psig_desc with
        | Psig_attribute a -> ctx.scope <- allows_of_attribute a @ ctx.scope
        | _ -> ());
        self.Ast_iterator.signature_item self item)
      items;
    ctx.scope <- saved
  in
  { default with Ast_iterator.expr; structure_item; structure; signature_item; signature }

(* ---------------------------------------------------------------- *)
(* Entry point *)

let module_name_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* Deduplicate a function's recorded references: one edge per
   (path, mask), keeping the lowest line. *)
let mask_repr = function
  | Effects.Catch_all -> [ "*" ]
  | Effects.Catch s -> SS.elements s

let rec cmp_strings a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs, y :: ys ->
      let c = String.compare x y in
      if c <> 0 then c else cmp_strings xs ys

let cmp_call a b =
  let c = cmp_strings a.c_path b.c_path in
  if c <> 0 then c
  else
    let c = cmp_strings (mask_repr a.c_mask) (mask_repr b.c_mask) in
    if c <> 0 then c else Int.compare a.c_line b.c_line

let dedup_calls calls =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let key = (c.c_path, mask_repr c.c_mask) in
      match Hashtbl.find_opt tbl key with
      | Some prev when prev.c_line <= c.c_line -> ()
      | _ -> Hashtbl.replace tbl key c)
    calls;
  (* iteration order never escapes: the result is fully sorted below *)
  let out = (Hashtbl.fold [@lint.allow "D002"]) (fun _ c acc -> c :: acc) tbl [] in
  List.sort cmp_call out

let extract ~config ~path source =
  let unit_module = module_name_of_path path in
  let ctx =
    {
      config;
      path;
      unit_module;
      mods = [ unit_module ];
      scope = [];
      mask = Effects.mask_none;
      current = None;
      locals = SS.empty;
      fns = [];
      top_ord = 0;
      exports = [];
      refs = [];
      opens = [];
      aliases = [];
      cuses = [];
    }
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  let iter = make_iterator ctx in
  let is_mli = Filename.check_suffix path ".mli" in
  (try
     if is_mli then iter.Ast_iterator.signature iter (Parse.interface lexbuf)
     else iter.Ast_iterator.structure iter (Parse.implementation lexbuf)
   with Syntaxerr.Error _ | Lexer.Error _ -> () (* Rules reports P000 *));
  let fns = List.rev ctx.fns in
  List.iter
    (fun f ->
      f.fn_calls <- dedup_calls f.fn_calls;
      f.fn_raises <-
        List.sort (fun (a, _) (b, _) -> String.compare a b) f.fn_raises)
    fns;
  {
    u_path = path;
    u_module = unit_module;
    u_is_mli = is_mli;
    u_fns = fns;
    u_exports = List.rev ctx.exports;
    u_refs = List.rev ctx.refs;
    u_opens = List.rev ctx.opens;
    u_aliases = List.rev ctx.aliases;
    u_cuses = List.rev ctx.cuses;
  }
