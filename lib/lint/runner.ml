(* Walks the source tree and runs both analysis phases on every
   .ml/.mli: the per-expression AST pass (Rules), the file-set rule
   S001, and the interprocedural effect analysis (Extract -> Callgraph
   -> Interproc).  All internal orders are total, so the result is
   independent of the order files are handed in. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

(* Skip dot-directories and _build so running from a dune sandbox (or a
   dirty checkout) never picks up generated files. *)
let skip_dir name =
  String.length name = 0 || name.[0] = '.' || String.equal name "_build"

let collect_files ~root dirs =
  let files = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.file_exists abs && Sys.is_directory abs then
      Array.iter
        (fun entry ->
          let rel' = Filename.concat rel entry in
          let abs' = Filename.concat abs entry in
          if Sys.is_directory abs' then begin
            if not (skip_dir entry) then walk rel'
          end
          else if is_source entry then files := rel' :: !files)
        (Sys.readdir abs)
  in
  List.iter walk dirs;
  List.sort String.compare !files

let under_dir dir file =
  String.equal (Filename.dirname file) dir
  || String.length file > String.length dir
     && String.sub file 0 (String.length dir + 1) = dir ^ "/"

let mli_findings ~(config : Config.t) files =
  let mli_present f = List.mem (f ^ "i") files in
  files
  |> List.filter (fun f ->
         Filename.check_suffix f ".ml"
         && List.exists (fun d -> under_dir d f) config.mli_required_dirs)
  |> List.filter_map (fun f ->
         let base = Filename.remove_extension (Filename.basename f) in
         let exempt =
           List.mem base config.mli_exempt_modules
           || List.exists
                (fun suf -> Filename.check_suffix base suf)
                config.mli_exempt_suffixes
         in
         if exempt || mli_present f then None
         else
           Some
             (Finding.make ~file:f ~line:1 ~col:0 ~rule:"S001"
                (Printf.sprintf
                   "module %s has no .mli; every lib/ module ships an \
                    interface documenting its invariants (signature-only \
                    *_intf modules are exempt)"
                   base)))

(* Build and solve the project call graph from in-memory sources. *)
let graph_of_sources ~config sources =
  let units =
    List.map (fun (path, src) -> Extract.extract ~config ~path src) sources
  in
  let g = Callgraph.build ~config units in
  Callgraph.solve g;
  g

(* Two-phase analysis over in-memory sources.  [ref_sources] are extra
   units (tests, examples) whose references keep U001 exports alive but
   which are not themselves analyzed or reported on. *)
let analyze ?(config = Config.default) ?(ref_sources = []) sources =
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) sources
  in
  let ast_findings =
    List.concat_map
      (fun (path, src) -> Rules.lint_source ~config ~path src)
      sorted
  in
  let graph = graph_of_sources ~config sorted in
  let ref_units =
    graph.Callgraph.cg_units
    @ List.map
        (fun (path, src) -> Extract.extract ~config ~path src)
        (List.sort (fun (a, _) (b, _) -> String.compare a b) ref_sources)
  in
  let inter = Interproc.run ~graph ~ref_units in
  let files = List.map fst sorted in
  let findings =
    List.sort Finding.compare
      (mli_findings ~config files @ ast_findings @ inter)
  in
  (findings, graph)

let read_sources ~root files =
  List.map (fun f -> (f, read_file (Filename.concat root f))) files

(* Files in [dead_export_ref_dirs] but outside the scanned set. *)
let ref_only_files ~(config : Config.t) ~root ~scanned =
  collect_files ~root config.dead_export_ref_dirs
  |> List.filter (fun f -> not (List.mem f scanned))

let run ?(config = Config.default) ~root dirs =
  let files = collect_files ~root dirs in
  let refs = ref_only_files ~config ~root ~scanned:files in
  let findings, _graph =
    analyze ~config
      ~ref_sources:(read_sources ~root refs)
      (read_sources ~root files)
  in
  findings

(* The byte-stable call-graph + inferred-effects dump behind
   [blsm_cli lint --effects]. *)
let effects_json ?(config = Config.default) ~root dirs =
  let files = collect_files ~root dirs in
  let g = graph_of_sources ~config (read_sources ~root files) in
  Callgraph.to_json g
