(* Walks the source tree, runs the AST pass on every .ml/.mli, and adds
   the file-set rule S001 (every lib/ module ships an interface). *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

(* Skip dot-directories and _build so running from a dune sandbox (or a
   dirty checkout) never picks up generated files. *)
let skip_dir name =
  String.length name = 0 || name.[0] = '.' || String.equal name "_build"

let collect_files ~root dirs =
  let files = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.file_exists abs && Sys.is_directory abs then
      Array.iter
        (fun entry ->
          let rel' = Filename.concat rel entry in
          let abs' = Filename.concat abs entry in
          if Sys.is_directory abs' then begin
            if not (skip_dir entry) then walk rel'
          end
          else if is_source entry then files := rel' :: !files)
        (Sys.readdir abs)
  in
  List.iter walk dirs;
  List.sort String.compare !files

let under_dir dir file =
  String.equal (Filename.dirname file) dir
  || String.length file > String.length dir
     && String.sub file 0 (String.length dir + 1) = dir ^ "/"

let mli_findings ~(config : Config.t) files =
  let mli_present f = List.mem (f ^ "i") files in
  files
  |> List.filter (fun f ->
         Filename.check_suffix f ".ml"
         && List.exists (fun d -> under_dir d f) config.mli_required_dirs)
  |> List.filter_map (fun f ->
         let base = Filename.remove_extension (Filename.basename f) in
         let exempt =
           List.mem base config.mli_exempt_modules
           || List.exists
                (fun suf -> Filename.check_suffix base suf)
                config.mli_exempt_suffixes
         in
         if exempt || mli_present f then None
         else
           Some
             (Finding.make ~file:f ~line:1 ~col:0 ~rule:"S001"
                (Printf.sprintf
                   "module %s has no .mli; every lib/ module ships an \
                    interface documenting its invariants (signature-only \
                    *_intf modules are exempt)"
                   base)))

let run ?(config = Config.default) ~root dirs =
  let files = collect_files ~root dirs in
  let ast_findings =
    List.concat_map
      (fun f ->
        Rules.lint_source ~config ~path:f
          (read_file (Filename.concat root f)))
      files
  in
  List.sort Finding.compare (mli_findings ~config files @ ast_findings)
