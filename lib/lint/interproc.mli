(** Phase 2 of blsm-lint v2, part 2: the interprocedural rule families
    evaluated over a solved {!Callgraph.t}.

    - D003: engine-surface ops may not transitively reach a
      nondeterminism source.
    - E001: a protocol boundary's inferred may-raise set must stay
      inside its declared allowance.
    - C003: named functions passed in comparator position must be
      transitively pure.
    - Y001: manifest-commit / WAL-append critical sections may not
      reach a pacing-quota producer.
    - U001: lib/ [.mli] exports referenced nowhere outside their own
      module are dead surface.

    Messages contain no line numbers (witness chains are function names
    only), so the line-free baseline key stays stable under unrelated
    edits. *)

(** [run ~graph ~ref_units] evaluates every rule family.  [ref_units]
    is a superset of the graph's units — it additionally includes the
    units extracted from [Config.dead_export_ref_dirs] (tests and
    examples keep an export alive for U001) — and is used only for
    textual reference matching. *)
val run :
  graph:Callgraph.t -> ref_units:Extract.unit_info list -> Finding.t list
