(* The effect lattice propagated over the call graph.  Four monotone
   booleans plus a may-raise set; join is pointwise or / union, so the
   SCC fixpoint terminates (the raise alphabet is the finite set of
   constructor names appearing in the scanned tree). *)

module SS = Set.Make (String)

type t = {
  nondet : bool;  (* transitively draws unseeded randomness / wall clock *)
  io : bool;  (* transitively touches Platter internals or Unix *)
  mutates : bool;  (* mutates state that escapes the function *)
  stall : bool;  (* can reach a pacing-quota producer *)
  raises : SS.t;  (* may-raise exception constructor names *)
}

let bottom =
  { nondet = false; io = false; mutates = false; stall = false; raises = SS.empty }

let join a b =
  {
    nondet = a.nondet || b.nondet;
    io = a.io || b.io;
    mutates = a.mutates || b.mutates;
    stall = a.stall || b.stall;
    raises = SS.union a.raises b.raises;
  }

let equal a b =
  a.nondet = b.nondet && a.io = b.io && a.mutates = b.mutates
  && a.stall = b.stall && SS.equal a.raises b.raises

(* Purity as rule C003 means it: a comparator may not observe or change
   anything outside its arguments.  Raising is judged separately (a
   raising comparator is a bug, but an exception-escape bug). *)
let pure e = not (e.nondet || e.io || e.mutates || e.stall)

let raises_list e = SS.elements e.raises

(* Handler masks: what a [try ... with] between a call site and its
   enclosing function's entry absorbs from the callee's may-raise set. *)
type mask = Catch_all | Catch of SS.t

let mask_none = Catch SS.empty

let mask_union a b =
  match (a, b) with
  | Catch_all, _ | _, Catch_all -> Catch_all
  | Catch x, Catch y -> Catch (SS.union x y)

let apply_mask mask raises =
  match mask with Catch_all -> SS.empty | Catch s -> SS.diff raises s

let mask_catches mask exn =
  match mask with Catch_all -> true | Catch s -> SS.mem exn s
