(** The effect lattice propagated over the project call graph (phase 2
    of blsm-lint v2).  Elements are finite and [join] is monotone, so
    the per-SCC fixpoint terminates. *)

module SS : Set.S with type elt = string

type t = {
  nondet : bool;
      (** transitively draws unseeded randomness / reads a wall clock *)
  io : bool;  (** transitively touches Platter internals or Unix *)
  mutates : bool;  (** mutates state that escapes the function *)
  stall : bool;  (** can reach a pacing-quota producer *)
  raises : SS.t;  (** may-raise exception constructor names *)
}

val bottom : t
val join : t -> t -> t
val equal : t -> t -> bool

(** [pure e]: no observation or mutation of the world — the C003
    comparator requirement.  Raising is judged separately (E001). *)
val pure : t -> bool

val raises_list : t -> string list

(** What the [try ... with] handlers between a call site and its
    enclosing function's entry absorb from the callee's raise set. *)
type mask = Catch_all | Catch of SS.t

val mask_none : mask
val mask_union : mask -> mask -> mask

(** [apply_mask m raises] is the part of [raises] surviving handler [m]. *)
val apply_mask : mask -> SS.t -> SS.t

val mask_catches : mask -> string -> bool
