(* Phase 2 of blsm-lint v2, part 1: the project call graph and the
   effect fixpoint over it.

   Nodes are structure-level value bindings keyed by
   ["<unit path>#<Module.qualified.name>"].  Edges come from resolving
   each recorded dotted reference against the scanned units — a
   parsetree-level approximation of OCaml's real scoping:

   - bare names resolve innermost-out through the caller's enclosing
     modules, then through recorded [open]s;
   - qualified names try the caller's enclosing modules, then a global
     lookup matching the head component against unit module names,
     expanding [module X = Y] aliases once and stripping dune library
     wrappers ([Blsm.Tree.put] = lib/core's [Tree.put]);
   - a module-name tie between directories is broken by preferring the
     referencing file's own directory, then the wrapper's directory;
     a still-ambiguous reference resolves to NO edge (documented
     soundness caveat — under-approximation, never a false edge);
   - functor applications and functor parameters never resolve, so a
     functor body cannot produce false edges into unrelated modules.

   The fixpoint runs over Tarjan SCCs in emission order (callees before
   callers), iterating inside each SCC until stable.  Everything the
   result depends on is totally ordered — node keys, adjacency, SCC
   emission — so analysis output is independent of file-visitation
   order and byte-identical across runs. *)

module SS = Effects.SS

type edge = { e_target : string; e_mask : Effects.mask; e_line : int }

type node = {
  n_key : string;
  n_fn : Extract.fn;
  n_intrinsic : Effects.t;
  mutable n_edges : edge list;  (* sorted by (target, mask) *)
  mutable n_eff : Effects.t;
}

type t = {
  cg_nodes : (string, node) Hashtbl.t;
  cg_keys : string list;  (* sorted *)
  cg_units : Extract.unit_info list;  (* sorted by path *)
  cg_by_module : (string, Extract.unit_info list) Hashtbl.t;  (* .ml units *)
  cg_by_qualified : (string, string list) Hashtbl.t;  (* qualified -> keys *)
  cg_config : Config.t;
}

let key_of (f : Extract.fn) = f.fn_unit ^ "#" ^ Extract.qualified f
let qualified_of_key key =
  match String.index_opt key '#' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

let unit_of_key key =
  match String.index_opt key '#' with
  | Some i -> String.sub key 0 i
  | None -> key

let intrinsic_of (f : Extract.fn) : Effects.t =
  {
    nondet = f.fn_nondet <> None;
    io = f.fn_io <> None;
    mutates = f.fn_mut;
    stall = f.fn_stall <> None;
    raises = SS.of_list (List.map fst f.fn_raises);
  }

let find_node t key = Hashtbl.find_opt t.cg_nodes key
let node_effect t key =
  match find_node t key with Some n -> n.n_eff | None -> Effects.bottom

let nodes_by_qualified t q =
  match Hashtbl.find_opt t.cg_by_qualified q with
  | Some keys -> List.filter_map (find_node t) keys
  | None -> []

(* ---------------------------------------------------------------- *)
(* Resolution *)

let rec butlast = function [] | [ _ ] -> [] | x :: rest -> x :: butlast rest
let last l = List.nth l (List.length l - 1)

let fn_in_unit (u : Extract.unit_info) ~mods ~name =
  List.find_opt
    (fun (f : Extract.fn) -> f.fn_name = name && f.fn_module = mods)
    u.u_fns

(* Enclosing-module prefixes of the caller, longest first:
   [A;B;C] -> [[A;B;C]; [A;B]; [A]]. *)
let enclosing_prefixes mods =
  let rec go acc = function
    | [] -> acc
    | m -> go (m :: acc) (butlast m)
  in
  List.rev (go [] mods)

let units_for_module t name =
  match Hashtbl.find_opt t.cg_by_module name with Some us -> us | None -> []

let dir_of path = Filename.dirname path

(* Global lookup: match [head] against unit module names; on a tie,
   prefer [from_dir], then the wrapper-derived [hint]. *)
let rec resolve_global t ?hint ~from_dir path =
  match path with
  | [] | [ _ ] -> None
  | head :: rest -> (
      let candidates = units_for_module t head in
      let pick (u : Extract.unit_info) =
        Option.map key_of
          (fn_in_unit u ~mods:(u.u_module :: butlast rest) ~name:(last rest))
      in
      let chosen =
        match candidates with
        | [] -> None
        | [ u ] -> Some u
        | many -> (
            match
              List.filter (fun u -> dir_of u.Extract.u_path = from_dir) many
            with
            | [ u ] -> Some u
            | _ -> (
                match hint with
                | Some h -> (
                    match
                      List.filter (fun u -> dir_of u.Extract.u_path = h) many
                    with
                    | [ u ] -> Some u
                    | _ -> None)
                | None -> None))
      in
      match chosen with
      | Some u -> pick u
      | None -> (
          (* no unit called [head]: maybe it is a dune library wrapper *)
          match List.assoc_opt head t.cg_config.library_wrappers with
          | Some dir when List.length rest >= 2 ->
              resolve_global t ~hint:dir ~from_dir rest
          | _ -> None))

let expand_alias (u : Extract.unit_info) path =
  match path with
  | head :: rest -> (
      match List.assoc_opt head u.u_aliases with
      | Some chain -> chain @ rest
      | None -> path)
  | [] -> path

(* Resolve one dotted reference made from [caller_mods] inside [unit_info]
   to a node key. *)
let resolve t ~(unit_info : Extract.unit_info) ~caller_mods path =
  let from_dir = dir_of unit_info.u_path in
  let via_opens path =
    List.fold_left
      (fun acc chain ->
        match acc with
        | Some _ -> acc
        | None ->
            resolve_global t ~from_dir (expand_alias unit_info (chain @ path)))
      None unit_info.u_opens
  in
  match path with
  | [] -> None
  | [ name ] ->
      (* bare: innermost enclosing module of the caller, then opens *)
      let local =
        List.fold_left
          (fun acc mods ->
            match acc with
            | Some _ -> acc
            | None ->
                Option.map key_of (fn_in_unit unit_info ~mods ~name))
          None
          (enclosing_prefixes caller_mods)
      in
      (match local with Some _ as r -> r | None -> via_opens path)
  | _ -> (
      let path = expand_alias unit_info path in
      match path with
      | [] | [ _ ] -> None
      | comps_and_name ->
          let comps = butlast comps_and_name and name = last comps_and_name in
          (* caller's enclosing modules first: [Fence.locate] from inside
             Sst_format resolves to [Sst_format.Fence.locate] *)
          let nested =
            List.fold_left
              (fun acc prefix ->
                match acc with
                | Some _ -> acc
                | None ->
                    Option.map key_of
                      (fn_in_unit unit_info ~mods:(prefix @ comps) ~name))
              None
              (enclosing_prefixes caller_mods)
          in
          (match nested with
          | Some _ as r -> r
          | None -> (
              match resolve_global t ~from_dir comps_and_name with
              | Some _ as r -> r
              | None -> via_opens comps_and_name)))

(* ---------------------------------------------------------------- *)
(* Build *)

let mask_repr = function
  | Effects.Catch_all -> [ "*" ]
  | Effects.Catch s -> SS.elements s

let cmp_edge a b =
  let c = String.compare a.e_target b.e_target in
  if c <> 0 then c
  else
    let c = Extract.cmp_strings (mask_repr a.e_mask) (mask_repr b.e_mask) in
    if c <> 0 then c else Int.compare a.e_line b.e_line

let dedup_edges edges =
  let sorted = List.sort cmp_edge edges in
  let rec go = function
    | a :: b :: rest
      when a.e_target = b.e_target && mask_repr a.e_mask = mask_repr b.e_mask
      ->
        go (a :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go sorted

let build ~config units =
  let units =
    List.sort
      (fun (a : Extract.unit_info) b -> String.compare a.u_path b.u_path)
      units
  in
  let by_module = Hashtbl.create 64 in
  List.iter
    (fun (u : Extract.unit_info) ->
      if not u.u_is_mli then
        let prev =
          match Hashtbl.find_opt by_module u.u_module with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace by_module u.u_module (prev @ [ u ]))
    units;
  let nodes = Hashtbl.create 256 in
  let keys = ref [] in
  List.iter
    (fun (u : Extract.unit_info) ->
      List.iter
        (fun (f : Extract.fn) ->
          let key = key_of f in
          if not (Hashtbl.mem nodes key) then begin
            Hashtbl.replace nodes key
              {
                n_key = key;
                n_fn = f;
                n_intrinsic = intrinsic_of f;
                n_edges = [];
                n_eff = intrinsic_of f;
              };
            keys := key :: !keys
          end)
        u.u_fns)
    units;
  let t =
    {
      cg_nodes = nodes;
      cg_keys = List.sort String.compare !keys;
      cg_units = units;
      cg_by_module = by_module;
      cg_by_qualified = Hashtbl.create 256;
      cg_config = config;
    }
  in
  (* qualified-name index *)
  List.iter
    (fun key ->
      let q = qualified_of_key key in
      let prev =
        match Hashtbl.find_opt t.cg_by_qualified q with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace t.cg_by_qualified q (prev @ [ key ]))
    t.cg_keys;
  (* edges *)
  List.iter
    (fun (u : Extract.unit_info) ->
      List.iter
        (fun (f : Extract.fn) ->
          let edges =
            List.filter_map
              (fun (c : Extract.call) ->
                match
                  resolve t ~unit_info:u ~caller_mods:f.fn_module c.c_path
                with
                | Some target ->
                    Some { e_target = target; e_mask = c.c_mask; e_line = c.c_line }
                | None -> None)
              f.fn_calls
          in
          match find_node t (key_of f) with
          | Some n -> n.n_edges <- dedup_edges edges
          | None -> ())
        u.u_fns)
    units;
  t

(* ---------------------------------------------------------------- *)
(* Tarjan SCCs, emitted callees-before-callers *)

let sccs t =
  let index = Hashtbl.create 256 in
  let lowlink = Hashtbl.create 256 in
  let on_stack = Hashtbl.create 256 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    (match find_node t v with
    | None -> ()
    | Some n ->
        List.iter
          (fun e ->
            let w = e.e_target in
            if Hashtbl.mem t.cg_nodes w then
              if not (Hashtbl.mem index w) then begin
                strongconnect w;
                Hashtbl.replace lowlink v
                  (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
              end
              else if Hashtbl.mem on_stack w then
                Hashtbl.replace lowlink v
                  (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
          n.n_edges);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      let scc = pop [] in
      out := List.sort String.compare scc :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) t.cg_keys;
  (* Tarjan pops callee SCCs before their callers; preserve that order *)
  List.rev !out

(* ---------------------------------------------------------------- *)
(* Effect fixpoint *)

let callee_contribution t e =
  match find_node t e.e_target with
  | None -> Effects.bottom
  | Some m ->
      { m.n_eff with raises = Effects.apply_mask e.e_mask m.n_eff.raises }

let solve t =
  List.iter
    (fun scc ->
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun key ->
            match find_node t key with
            | None -> ()
            | Some n ->
                let eff =
                  List.fold_left
                    (fun acc e -> Effects.join acc (callee_contribution t e))
                    n.n_intrinsic n.n_edges
                in
                if not (Effects.equal eff n.n_eff) then begin
                  n.n_eff <- eff;
                  changed := true
                end)
          scc
      done)
    (sccs t)

(* ---------------------------------------------------------------- *)
(* Witness paths: deterministic BFS from [start] to a node whose
   *intrinsic* facts satisfy [pred], over edges allowed by [passable].
   Returns qualified names, caller first. *)

let witness t start ~pred ~passable =
  match find_node t start with
  | None -> None
  | Some s when pred s -> Some [ qualified_of_key start ]
  | Some _ ->
      let visited = Hashtbl.create 64 in
      Hashtbl.replace visited start true;
      let q = Queue.create () in
      Queue.add (start, [ start ]) q;
      let result = ref None in
      while !result = None && not (Queue.is_empty q) do
        let key, path = Queue.take q in
        match find_node t key with
        | None -> ()
        | Some n ->
            List.iter
              (fun e ->
                if !result = None && passable e.e_mask
                   && not (Hashtbl.mem visited e.e_target)
                then
                  match find_node t e.e_target with
                  | None -> ()
                  | Some m ->
                      Hashtbl.replace visited e.e_target true;
                      let path' = e.e_target :: path in
                      if pred m then result := Some (List.rev path')
                      else Queue.add (e.e_target, path') q)
              n.n_edges
      done;
      !result

let render_witness keys = String.concat " -> " (List.map qualified_of_key keys)

(* ---------------------------------------------------------------- *)
(* JSON dump (own printer: dependency-free, byte-stable) *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_string b s =
  Buffer.add_char b '"';
  json_escape b s;
  Buffer.add_char b '"'

let json_string_list b l =
  Buffer.add_char b '[';
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      json_string b s)
    l;
  Buffer.add_char b ']'

let json_effect b (e : Effects.t) =
  Buffer.add_string b
    (Printf.sprintf "{\"nondet\":%b,\"io\":%b,\"mutates\":%b,\"stall\":%b,\"raises\":"
       e.nondet e.io e.mutates e.stall);
  json_string_list b (Effects.raises_list e);
  Buffer.add_char b '}'

let to_json t =
  let b = Buffer.create (64 * 1024) in
  Buffer.add_string b "{\n\"version\": 2,\n\"functions\": [\n";
  List.iteri
    (fun i key ->
      match find_node t key with
      | None -> ()
      | Some n ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b "{\"key\":";
          json_string b n.n_key;
          Buffer.add_string b ",\"intrinsic\":";
          json_effect b n.n_intrinsic;
          Buffer.add_string b ",\"effects\":";
          json_effect b n.n_eff;
          Buffer.add_string b ",\"calls\":[";
          List.iteri
            (fun j e ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b "{\"to\":";
              json_string b e.e_target;
              Buffer.add_string b ",\"catches\":";
              json_string_list b (mask_repr e.e_mask);
              Buffer.add_char b '}')
            n.n_edges;
          Buffer.add_string b "]}")
    t.cg_keys;
  Buffer.add_string b "\n]\n}\n";
  Buffer.contents b
