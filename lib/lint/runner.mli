(** Orchestration: walk the tree, run both analysis phases on every
    unit, apply the file-set rule S001.

    S001 exists because an [.mli] is where a module's invariants are
    stated — the DST oracle, the pacing maths, the on-disk format all
    promise things the implementation alone cannot document.  A module
    without an interface exports everything and promises nothing.

    The interprocedural phase (Extract -> Callgraph -> Interproc) runs
    on the same file set; every internal order is total, so results are
    independent of the order files are handed in. *)

(** [collect_files ~root dirs] returns the sorted repo-relative paths of
    every [.ml]/[.mli] under [dirs] (each relative to [root]),
    skipping dot-directories and [_build]. *)
val collect_files : root:string -> string list -> string list

(** [mli_findings ~config files] computes the S001 findings for a file
    set (paths relative to the repo root). Exposed for the fixture
    tests. *)
val mli_findings : config:Config.t -> string list -> Finding.t list

(** [analyze ?config ?ref_sources sources] runs both phases over
    in-memory [(path, source)] pairs and returns all findings sorted by
    {!Finding.compare} plus the solved call graph.  [ref_sources] are
    extra units (tests, examples) whose references keep U001 exports
    alive but which are not themselves analyzed or reported on.
    Exposed for the fixture tests and the order-invariance property. *)
val analyze :
  ?config:Config.t ->
  ?ref_sources:(string * string) list ->
  (string * string) list ->
  Finding.t list * Callgraph.t

(** [run ?config ~root dirs] lints every source file under [dirs] and
    returns all findings sorted by {!Finding.compare}.  Suppression
    attributes are already applied; baseline subtraction is the
    caller's job ({!Baseline.filter}). *)
val run : ?config:Config.t -> root:string -> string list -> Finding.t list

(** [effects_json ?config ~root dirs] builds and solves the call graph
    and dumps it as byte-stable JSON ([blsm_cli lint --effects]). *)
val effects_json : ?config:Config.t -> root:string -> string list -> string
