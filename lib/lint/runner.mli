(** Orchestration: walk the tree, lint every unit, apply the file-set
    rule S001.

    S001 exists because an [.mli] is where a module's invariants are
    stated — the DST oracle, the pacing maths, the on-disk format all
    promise things the implementation alone cannot document.  A module
    without an interface exports everything and promises nothing. *)

(** [collect_files ~root dirs] returns the sorted repo-relative paths of
    every [.ml]/[.mli] under [dirs] (each relative to [root]),
    skipping dot-directories and [_build]. *)
val collect_files : root:string -> string list -> string list

(** [mli_findings ~config files] computes the S001 findings for a file
    set (paths relative to the repo root). Exposed for the fixture
    tests. *)
val mli_findings : config:Config.t -> string list -> Finding.t list

(** [run ?config ~root dirs] lints every source file under [dirs] and
    returns all findings sorted by {!Finding.compare}.  Suppression
    attributes are already applied; baseline subtraction is the
    caller's job ({!Baseline.filter}). *)
val run : ?config:Config.t -> root:string -> string list -> Finding.t list
