type access_rule = {
  restricted : string list;
  allowed_dirs : string list;
  why : string;
}

type t = {
  scan_dirs : string list;
  access_matrix : access_rule list;
  mli_required_dirs : string list;
  mli_exempt_suffixes : string list;
  mli_exempt_modules : string list;
}

(* The module-access matrix behind rule A001.  Each entry names module
   paths that are implementation details of the simulated-I/O stack and
   the directories that may legitimately reference them; every byte of
   I/O outside those directories has to flow through the Simdisk.Disk
   API so the paper's seek/bandwidth accounting stays honest. *)
let default_access_matrix =
  [
    {
      restricted = [ "Platter"; "Pagestore.Platter" ];
      allowed_dirs = [ "lib/pagestore"; "lib/simdisk" ];
      why =
        "platter internals bypass Simdisk.Disk accounting; only the \
         pagestore/simdisk layers may touch them";
    };
    {
      restricted = [ "Unix" ];
      allowed_dirs = [ "bench"; "bin"; "tools" ];
      why =
        "real-OS syscalls bypass the simulated disk and clock; lib/ \
         must stay simulation-pure";
    };
  ]

let default =
  {
    scan_dirs = [ "lib"; "bin"; "bench" ];
    access_matrix = default_access_matrix;
    mli_required_dirs = [ "lib" ];
    mli_exempt_suffixes = [ "_intf" ];
    mli_exempt_modules = [];
  }
