type access_rule = {
  restricted : string list;
  allowed_dirs : string list;
  why : string;
}

type peer_rule = {
  peer_marker : string;
  peer_restricted : string list;
  peer_exempt_dirs : string list;
  peer_why : string;
}

type t = {
  scan_dirs : string list;
  access_matrix : access_rule list;
  peer_rules : peer_rule list;
  mli_required_dirs : string list;
  mli_exempt_suffixes : string list;
  mli_exempt_modules : string list;
}

(* The module-access matrix behind rule A001.  Each entry names module
   paths that are implementation details of the simulated-I/O stack and
   the directories that may legitimately reference them; every byte of
   I/O outside those directories has to flow through the Simdisk.Disk
   API so the paper's seek/bandwidth accounting stays honest. *)
let default_access_matrix =
  [
    {
      restricted = [ "Platter"; "Pagestore.Platter" ];
      allowed_dirs = [ "lib/pagestore"; "lib/simdisk" ];
      why =
        "platter internals bypass Simdisk.Disk accounting; only the \
         pagestore/simdisk layers may touch them";
    };
    {
      restricted = [ "Unix" ];
      allowed_dirs = [ "bench"; "bin"; "tools" ];
      why =
        "real-OS syscalls bypass the simulated disk and clock; lib/ \
         must stay simulation-pure";
    };
  ]

(* Rule A002: replication code must treat the peer as remote.  Any file
   whose basename contains the marker is replication logic; outside the
   exempt dirs it may not reference the primary-side service module or
   the WAL directly — peer state arrives only as Repl_msg frames through
   the Simnet endpoint.  This is what keeps the fault injection honest:
   a direct call would bypass every drop/delay/partition in the plan. *)
let default_peer_rules =
  [
    {
      peer_marker = "replication";
      peer_restricted = [ "Repl_server"; "Blsm.Repl_server"; "Pagestore.Wal" ];
      peer_exempt_dirs = [ "lib/simnet" ];
      peer_why =
        "replication reaches peer state only as Repl_msg frames through \
         the Simnet endpoint; direct server/WAL access bypasses the \
         injected network faults";
    };
  ]

let default =
  {
    scan_dirs = [ "lib"; "bin"; "bench" ];
    access_matrix = default_access_matrix;
    peer_rules = default_peer_rules;
    mli_required_dirs = [ "lib" ];
    mli_exempt_suffixes = [ "_intf" ];
    mli_exempt_modules = [];
  }
