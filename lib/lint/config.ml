type access_rule = {
  restricted : string list;
  allowed_dirs : string list;
  why : string;
}

type peer_rule = {
  peer_marker : string;
  peer_restricted : string list;
  peer_exempt_dirs : string list;
  peer_why : string;
}

type boundary = {
  bd_func : string;
  bd_allowed : string list;
  bd_why : string;
}

type t = {
  scan_dirs : string list;
  access_matrix : access_rule list;
  peer_rules : peer_rule list;
  mli_required_dirs : string list;
  mli_exempt_suffixes : string list;
  mli_exempt_modules : string list;
  (* --- interprocedural effect analysis (v2) --- *)
  nondet_sources : (string * string) list;
  io_sources : string list;
  stall_sources : string list;
  library_wrappers : (string * string) list;
  engine_surface_modules : string list;
  boundaries : boundary list;
  critical_sections : (string * string) list;
  dead_export_dirs : string list;
  dead_export_ref_dirs : string list;
}

(* The module-access matrix behind rule A001.  Each entry names module
   paths that are implementation details of the simulated-I/O stack and
   the directories that may legitimately reference them; every byte of
   I/O outside those directories has to flow through the Simdisk.Disk
   API so the paper's seek/bandwidth accounting stays honest. *)
let default_access_matrix =
  [
    {
      restricted = [ "Platter"; "Pagestore.Platter" ];
      allowed_dirs = [ "lib/pagestore"; "lib/simdisk" ];
      why =
        "platter internals bypass Simdisk.Disk accounting; only the \
         pagestore/simdisk layers may touch them";
    };
    {
      restricted = [ "Unix" ];
      allowed_dirs = [ "bench"; "bin"; "tools" ];
      why =
        "real-OS syscalls bypass the simulated disk and clock; lib/ \
         must stay simulation-pure";
    };
  ]

(* Rule A002: replication code must treat the peer as remote.  Any file
   whose basename contains the marker is replication logic; outside the
   exempt dirs it may not reference the primary-side service module or
   the WAL directly — peer state arrives only as Repl_msg frames through
   the Simnet endpoint.  This is what keeps the fault injection honest:
   a direct call would bypass every drop/delay/partition in the plan. *)
let default_peer_rules =
  [
    {
      peer_marker = "replication";
      peer_restricted = [ "Repl_server"; "Blsm.Repl_server"; "Pagestore.Wal" ];
      peer_exempt_dirs = [ "lib/simnet" ];
      peer_why =
        "replication reaches peer state only as Repl_msg frames through \
         the Simnet endpoint; direct server/WAL access bypasses the \
         injected network faults";
    };
  ]

(* Rule D001 (and the nondet effect bit of D003): same-seed runs must be
   byte-identical, so these may never be called — directly or, for
   D003, transitively from an engine op. *)
let default_nondet_sources =
  [
    ("Random.self_init", "seeds from the environment");
    ("Random.State.make_self_init", "seeds from the environment");
    ("Random.int", "draws from the hidden global PRNG state");
    ("Random.full_int", "draws from the hidden global PRNG state");
    ("Random.bits", "draws from the hidden global PRNG state");
    ("Random.bits32", "draws from the hidden global PRNG state");
    ("Random.bits64", "draws from the hidden global PRNG state");
    ("Random.int32", "draws from the hidden global PRNG state");
    ("Random.int64", "draws from the hidden global PRNG state");
    ("Random.nativeint", "draws from the hidden global PRNG state");
    ("Random.float", "draws from the hidden global PRNG state");
    ("Random.bool", "draws from the hidden global PRNG state");
    ("Unix.gettimeofday", "reads the wall clock");
    ("Unix.time", "reads the wall clock");
    ("Sys.time", "reads the process clock");
    ("Hashtbl.hash", "is seed- and layout-dependent; never hash keys with it");
    ("Hashtbl.seeded_hash", "is seed-dependent; never hash keys with it");
    ("Hashtbl.hash_param", "is seed- and layout-dependent");
  ]

(* The io effect bit: module prefixes whose use means "this function
   touches raw platter bytes or the real OS". *)
let default_io_sources = [ "Platter"; "Pagestore.Platter"; "Unix" ]

(* The stall effect bit: reaching any of these means the function can
   charge merge-work quanta to the caller (pacing).  Rule Y001 forbids
   that inside manifest-commit / WAL-append critical sections. *)
let default_stall_sources =
  [ "Scheduler.spring_quota"; "Scheduler.lag_quota"; "Scheduler.gear_lag" ]

(* dune library wrapper modules: a reference to [Blsm.Tree.put] is the
   same function as [Tree.put] seen from inside lib/core.  The directory
   disambiguates module-name collisions (two units may both be called
   Config). *)
let default_library_wrappers =
  [
    ("Blsm", "lib/core");
    ("Pagestore", "lib/pagestore");
    ("Simdisk", "lib/simdisk");
    ("Obs", "lib/obs");
    ("Repro_util", "lib/util");
    ("Dst", "lib/dst");
    ("Kv", "lib/kv");
    ("Bloom", "lib/bloom");
    ("Memtable", "lib/memtable");
    ("Sstable", "lib/sstable");
    ("Simnet", "lib/simnet");
    ("Btree_baseline", "lib/btree");
    ("Leveldb_sim", "lib/leveldb_sim");
    ("Ycsb", "lib/ycsb");
    ("Lint", "lib/lint");
  ]

(* Rule D003: every .mli-exported value of these modules is an engine op
   clients call; none may transitively reach a nondeterminism source. *)
let default_engine_surface_modules =
  [ "Tree"; "Partitioned"; "Policy_tree"; "Leveldb"; "Btree" ]

(* Rule E001: protocol boundaries and the exceptions allowed to cross
   them.  Everything else leaking is the PR 6 bug class — a failure
   crossing a protocol edge as an exception instead of a protocol
   answer. *)
let default_boundaries =
  [
    {
      bd_func = "Repl_server.attach";
      bd_allowed = [ "Crash_point"; "Failure"; "Invalid_argument" ];
      bd_why =
        "the simnet endpoint handler: an escaping exception crosses the \
         network instead of being a lost reply; only the simulated power \
         failure and defensive invariant crashes (failwith/invalid_arg \
         mean the node is wedged, and the harness recovers it) may \
         propagate — in particular every typed storage exception must \
         become a protocol answer";
    };
    {
      bd_func = "Driver.make_exn";
      bd_allowed =
        [
          "Crash_point";
          "Corruption";
          "Corrupt";
          "Write_fenced";
          "Invalid_argument";
          "Failure";
          "Not_found";
        ];
      bd_why =
        "DST driver ops may surface only the interpreter-contract \
         exceptions (simulated crash, typed corruption, fence, and the \
         stdlib defensive trio)";
    };
  ]

(* Rule Y001: critical sections that must never charge pacing quanta —
   the pre-condition for making merge a cooperating task (ROADMAP 2).
   A stall inside manifest-commit or WAL-append is unattributable
   blocking in exactly the place LSM tail latency dies. *)
let default_critical_sections =
  [
    ("Wal.append", "WAL-append critical section");
    ("Wal.sync", "WAL group-commit critical section");
    ("Tree.commit_root", "manifest-commit critical section");
    ("Store.commit_root", "root-commit critical section");
    ("Policy_tree.commit_manifest", "manifest-commit critical section");
  ]

let default =
  {
    scan_dirs = [ "lib"; "bin"; "bench"; "tools" ];
    access_matrix = default_access_matrix;
    peer_rules = default_peer_rules;
    mli_required_dirs = [ "lib" ];
    mli_exempt_suffixes = [ "_intf" ];
    mli_exempt_modules = [];
    nondet_sources = default_nondet_sources;
    io_sources = default_io_sources;
    stall_sources = default_stall_sources;
    library_wrappers = default_library_wrappers;
    engine_surface_modules = default_engine_surface_modules;
    boundaries = default_boundaries;
    critical_sections = default_critical_sections;
    dead_export_dirs = [ "lib" ];
    dead_export_ref_dirs = [ "lib"; "bin"; "bench"; "tools"; "test"; "examples" ];
  }
