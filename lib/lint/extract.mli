(** Phase 1 of blsm-lint v2: per-compilation-unit fact extraction.

    Walks one parsed unit and records the functions it defines (with
    their intrinsic effect facts and outgoing references), the values
    its [.mli] exports, and the raw material the resolver needs (every
    dotted reference, [open]s, module aliases).  Purely syntactic — the
    documented soundness caveats live in DESIGN.md §15. *)

type call = {
  c_path : string list;
      (** dotted reference as written, [Stdlib.] stripped *)
  c_mask : Effects.mask;
      (** handlers between the call site and the function entry *)
  c_line : int;
}

type fn = {
  fn_unit : string;  (** repo-relative [.ml] path *)
  fn_module : string list;  (** module path, unit module first *)
  fn_name : string;
  fn_line : int;
  fn_allows : string list;
      (** rules allowed in scope at the definition site *)
  mutable fn_nondet : string option;  (** witness nondeterminism source *)
  mutable fn_io : string option;  (** witness I/O reference *)
  mutable fn_mut : bool;  (** mutates escaping state *)
  mutable fn_stall : string option;  (** witness pacing-quota reference *)
  mutable fn_raises : (string * string) list;
      (** intrinsic may-raise: exception constructor, origin note *)
  mutable fn_calls : call list;  (** deduplicated, sorted *)
}

type comparator_use = {
  cu_file : string;
  cu_line : int;
  cu_path : string list;
      (** a *named* function passed in comparator position *)
  cu_allows : string list;
}

type export = {
  ex_unit : string;  (** repo-relative [.mli] path *)
  ex_module : string list;
  ex_name : string;
  ex_line : int;
  ex_allows : string list;
}

type unit_info = {
  u_path : string;
  u_module : string;  (** unit module name derived from the filename *)
  u_is_mli : bool;
  u_fns : fn list;
  u_exports : export list;
  u_refs : string list list;  (** every dotted reference in the unit *)
  u_opens : string list list;
  u_aliases : (string * string list) list;  (** [module X = Chain] *)
  u_cuses : comparator_use list;
}

(** [Module.Sub.name] identity used as the call-graph key suffix. *)
val qualified : fn -> string

val module_name_of_path : string -> string

(** Total order on string lists (monomorphic, C001-clean). *)
val cmp_strings : string list -> string list -> int

(** [extract ~config ~path source] parses and walks one unit.  Files
    that do not parse yield an empty [unit_info] (the per-expression
    pass reports P000 for them). *)
val extract : config:Config.t -> path:string -> string -> unit_info
