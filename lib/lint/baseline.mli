(** The checked-in lint baseline: pre-existing findings tolerated while
    the rule set grows, so a new rule never blocks unrelated merges.

    Format: one {!Finding.baseline_key} ("file: [RULE] message") per
    line; ['#'] comments and blank lines are ignored.  Keys carry no
    line numbers, so edits elsewhere in a file do not churn the
    baseline. *)

(** [load path] reads baseline keys; a missing file is an empty
    baseline. *)
val load : string -> string list

(** [filter ~baseline findings] removes findings absorbed by the
    baseline.  Matching is multiset subtraction: each baseline line
    absorbs exactly one identical finding, so introducing a second copy
    of a baselined violation still fails. *)
val filter : baseline:string list -> Finding.t list -> Finding.t list

(** [render findings] is the canonical baseline file content for the
    given findings (sorted, with the explanatory header). *)
val render : Finding.t list -> string

(** [save path findings] writes [render findings] to [path]
    ([--update-baseline]). *)
val save : string -> Finding.t list -> unit
