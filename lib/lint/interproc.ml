(* Phase 2 of blsm-lint v2, part 2: the interprocedural rule families
   evaluated over the solved call graph.

   D003  nondeterminism taint — no engine-surface op may transitively
         reach a D001 nondeterminism source.
   E001  exception escape — a protocol boundary's inferred may-raise
         set must stay inside its declared allowance (the PR 6 bug
         class: a failure crossing a protocol edge as an exception
         instead of a protocol answer).
   C003  transitive comparator purity — a *named* function passed in
         comparator position may not observe or mutate the world
         (inline comparators are C001's beat).
   Y001  stall-effect layering — manifest-commit / WAL-append critical
         sections may not reach a pacing-quota producer.
   U001  dead exports — a lib/ [.mli] value referenced nowhere outside
         its own module is dead surface.

   Messages deliberately contain no line numbers: the baseline key is
   (file, rule, message), and witness chains are function names only,
   so unrelated edits never churn the baseline. *)

module SS = Effects.SS

let find ~file ~line ~rule msg = Finding.make ~file ~line ~col:0 ~rule msg

let allowed rule allows = List.mem rule allows

(* ---------------------------------------------------------------- *)
(* D003: engine-surface nondeterminism taint *)

let d003 (g : Callgraph.t) =
  let config = g.cg_config in
  let out = ref [] in
  List.iter
    (fun (u : Extract.unit_info) ->
      if u.u_is_mli && List.mem u.u_module config.engine_surface_modules then
        List.iter
          (fun (ex : Extract.export) ->
            let ml_path = Filename.remove_extension ex.ex_unit ^ ".ml" in
            let q = String.concat "." (ex.ex_module @ [ ex.ex_name ]) in
            let key = ml_path ^ "#" ^ q in
            match Callgraph.find_node g key with
            | Some n
              when n.n_eff.nondet
                   && (not (allowed "D003" n.n_fn.fn_allows))
                   && not (allowed "D003" ex.ex_allows) ->
                let chain =
                  match
                    Callgraph.witness g key
                      ~pred:(fun m -> m.Callgraph.n_intrinsic.nondet)
                      ~passable:(fun _ -> true)
                  with
                  | Some keys ->
                      let source =
                        match
                          Callgraph.find_node g (List.nth keys (List.length keys - 1))
                        with
                        | Some sink -> (
                            match sink.n_fn.fn_nondet with
                            | Some s -> s
                            | None -> "a nondeterminism source")
                        | None -> "a nondeterminism source"
                      in
                      Printf.sprintf " (via %s, reaching %s)"
                        (Callgraph.render_witness keys)
                        source
                  | None -> ""
                in
                out :=
                  find ~file:ml_path ~line:n.n_fn.fn_line ~rule:"D003"
                    (Printf.sprintf
                       "engine op %s transitively reaches a nondeterminism \
                        source%s; same-seed runs must be byte-identical — \
                        thread a seeded Repro_util.Prng (or the simulated \
                        clock) through instead"
                       q chain)
                  :: !out
            | _ -> ())
          u.u_exports)
    g.cg_units;
  !out

(* ---------------------------------------------------------------- *)
(* E001: exception escape across protocol boundaries *)

let e001 (g : Callgraph.t) =
  let out = ref [] in
  List.iter
    (fun (bd : Config.boundary) ->
      List.iter
        (fun (n : Callgraph.node) ->
          if not (allowed "E001" n.n_fn.fn_allows) then
            let escaped =
              SS.filter
                (fun exn -> not (List.mem exn bd.bd_allowed))
                n.n_eff.raises
            in
            SS.iter
              (fun exn ->
                let chain =
                  match
                    Callgraph.witness g n.n_key
                      ~pred:(fun m -> SS.mem exn m.Callgraph.n_intrinsic.raises)
                      ~passable:(fun mask -> not (Effects.mask_catches mask exn))
                  with
                  | Some keys ->
                      Printf.sprintf " (via %s)" (Callgraph.render_witness keys)
                  | None -> ""
                in
                out :=
                  find ~file:n.n_fn.fn_unit ~line:n.n_fn.fn_line ~rule:"E001"
                    (Printf.sprintf
                       "exception %s may escape protocol boundary %s%s; %s — \
                        catch it at the boundary and turn it into a protocol \
                        answer (allowed to cross: %s)"
                       exn bd.bd_func chain bd.bd_why
                       (String.concat ", " bd.bd_allowed))
                  :: !out)
              escaped)
        (Callgraph.nodes_by_qualified g bd.bd_func))
    g.cg_config.boundaries;
  !out

(* ---------------------------------------------------------------- *)
(* C003: transitive comparator purity *)

let impure_bits (e : Effects.t) =
  List.filter_map
    (fun (set, label) -> if set then Some label else None)
    [
      (e.nondet, "draws nondeterminism");
      (e.io, "touches I/O");
      (e.mutates, "mutates escaping state");
      (e.stall, "reaches pacing quota");
    ]

let c003 (g : Callgraph.t) =
  let out = ref [] in
  List.iter
    (fun (u : Extract.unit_info) ->
      List.iter
        (fun (cu : Extract.comparator_use) ->
          if not (allowed "C003" cu.cu_allows) then
            match
              Callgraph.resolve g ~unit_info:u ~caller_mods:[ u.u_module ]
                cu.cu_path
            with
            | None -> ()
            | Some key -> (
                match Callgraph.find_node g key with
                | Some n
                  when (not (Effects.pure n.n_eff))
                       && not (allowed "C003" n.n_fn.fn_allows) ->
                    let bits = impure_bits n.n_eff in
                    let bit_pred =
                      if n.n_eff.nondet then fun (m : Callgraph.node) ->
                        m.n_intrinsic.nondet
                      else if n.n_eff.io then fun m -> m.n_intrinsic.io
                      else if n.n_eff.mutates then fun m -> m.n_intrinsic.mutates
                      else fun m -> m.n_intrinsic.stall
                    in
                    let chain =
                      match
                        Callgraph.witness g key ~pred:bit_pred
                          ~passable:(fun _ -> true)
                      with
                      | Some keys ->
                          Printf.sprintf " (via %s)"
                            (Callgraph.render_witness keys)
                      | None -> ""
                    in
                    out :=
                      find ~file:cu.cu_file ~line:cu.cu_line ~rule:"C003"
                        (Printf.sprintf
                           "comparator %s is impure: %s%s; a comparator must \
                            be a pure total order — sorting with it makes \
                            the sort order (and anything downstream) depend \
                            on hidden state"
                           (Callgraph.qualified_of_key key)
                           (String.concat ", " bits)
                           chain)
                      :: !out
                | _ -> ()))
        u.u_cuses)
    g.cg_units;
  !out

(* ---------------------------------------------------------------- *)
(* Y001: no pacing reach inside critical sections *)

let y001 (g : Callgraph.t) =
  let out = ref [] in
  List.iter
    (fun (func, label) ->
      List.iter
        (fun (n : Callgraph.node) ->
          if n.n_eff.stall && not (allowed "Y001" n.n_fn.fn_allows) then
            let chain, source =
              match
                Callgraph.witness g n.n_key
                  ~pred:(fun m -> m.Callgraph.n_intrinsic.stall)
                  ~passable:(fun _ -> true)
              with
              | Some keys ->
                  let src =
                    match
                      Callgraph.find_node g
                        (List.nth keys (List.length keys - 1))
                    with
                    | Some sink -> (
                        match sink.n_fn.fn_stall with
                        | Some s -> s
                        | None -> "a pacing-quota producer")
                    | None -> "a pacing-quota producer"
                  in
                  (Printf.sprintf " (via %s)" (Callgraph.render_witness keys), src)
              | None -> ("", "a pacing-quota producer")
            in
            out :=
              find ~file:n.n_fn.fn_unit ~line:n.n_fn.fn_line ~rule:"Y001"
                (Printf.sprintf
                   "%s (%s) can transitively reach %s%s; charging merge \
                    quanta inside a critical section is unattributable \
                    blocking — pace before entering, never inside"
                   func label source chain)
              :: !out)
        (Callgraph.nodes_by_qualified g func))
    g.cg_config.critical_sections;
  !out

(* ---------------------------------------------------------------- *)
(* U001: dead exports *)

(* Expand a reference's head through the unit's [module X = Y] aliases
   (one hop), as the resolver does. *)
let expand_head (u : Extract.unit_info) path =
  match path with
  | head :: rest -> (
      match List.assoc_opt head u.u_aliases with
      | Some chain -> chain @ rest
      | None -> path)
  | [] -> path

let under_dir dir file =
  String.equal (Filename.dirname file) dir
  || String.length file > String.length dir
     && String.sub file 0 (String.length dir + 1) = dir ^ "/"

let u001 (g : Callgraph.t) ~(ref_units : Extract.unit_info list) =
  let config = g.cg_config in
  let exports =
    List.concat_map
      (fun (u : Extract.unit_info) ->
        if
          u.u_is_mli
          && List.exists (fun d -> under_dir d u.u_path)
               config.dead_export_dirs
        then u.u_exports
        else [])
      g.cg_units
  in
  (* Uses via resolved call-graph edges: target key -> referencing units *)
  let edge_uses = Hashtbl.create 256 in
  List.iter
    (fun key ->
      match Callgraph.find_node g key with
      | None -> ()
      | Some n ->
          List.iter
            (fun (e : Callgraph.edge) ->
              let from_unit = Callgraph.unit_of_key key in
              let prev =
                match Hashtbl.find_opt edge_uses e.e_target with
                | Some l -> l
                | None -> []
              in
              Hashtbl.replace edge_uses e.e_target (from_unit :: prev))
            n.n_edges)
    g.cg_keys;
  List.filter_map
    (fun (ex : Extract.export) ->
      if allowed "U001" ex.ex_allows then None
      else
        let ml_path = Filename.remove_extension ex.ex_unit ^ ".ml" in
        let q = String.concat "." (ex.ex_module @ [ ex.ex_name ]) in
        let key = ml_path ^ "#" ^ q in
        let own u_path = u_path = ml_path || u_path = ex.ex_unit in
        let last_mod = List.nth ex.ex_module (List.length ex.ex_module - 1) in
        let used_by_edge =
          match Hashtbl.find_opt edge_uses key with
          | Some froms -> List.exists (fun f -> not (own f)) froms
          | None -> false
        in
        let textual_use (u : Extract.unit_info) =
          (not (own u.u_path))
          && (List.exists
                (fun path ->
                  let path = expand_head u path in
                  match List.rev path with
                  | name :: m :: _ -> name = ex.ex_name && m = last_mod
                  | _ -> false)
                u.u_refs
             ||
             (* bare use under [open ...Module] *)
             List.exists
               (fun chain ->
                 chain <> [] && List.nth chain (List.length chain - 1) = last_mod)
               u.u_opens
             && List.exists
                  (fun path ->
                    match path with [ n ] -> n = ex.ex_name | _ -> false)
                  u.u_refs)
        in
        if used_by_edge || List.exists textual_use ref_units then None
        else
          Some
            (find ~file:ex.ex_unit ~line:ex.ex_line ~rule:"U001"
               (Printf.sprintf
                  "export %s is referenced nowhere outside its own module; \
                   delete it or mark it [@@lint.allow \"U001\"] with a reason \
                   — dead surface area hides what is actually covered"
                  q)))
    exports

(* ---------------------------------------------------------------- *)

let run ~(graph : Callgraph.t) ~ref_units =
  List.sort Finding.compare
    (d003 graph @ e001 graph @ c003 graph @ y001 graph
    @ u001 graph ~ref_units)
