(* Baseline file: one suppressed finding per line, in
   [Finding.baseline_key] form ("file: [RULE] message"), '#' comments
   and blank lines ignored.  Matching is a multiset subtraction: a
   baseline line absorbs exactly one identical finding, so a second copy
   of a baselined violation still fails the build. *)

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    String.split_on_char '\n' content
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  end

let filter ~baseline findings =
  let table = ref [] in
  List.iter
    (fun k ->
      match List.assoc_opt k !table with
      | Some n -> incr n
      | None -> table := (k, ref 1) :: !table)
    baseline;
  List.filter
    (fun f ->
      let k = Finding.baseline_key f in
      match List.assoc_opt k !table with
      | Some n when !n > 0 ->
          decr n;
          false
      | _ -> true)
    findings

let render findings =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "# blsm-lint baseline: pre-existing findings tolerated by `dune \
     build @lint`.\n\
     # One `file: [RULE] message` per line (no line numbers, so edits \
     elsewhere\n\
     # in a file do not churn this list).  Remove lines as the debt is \
     paid down;\n\
     # regenerate with `blsm_lint --update-baseline`.\n";
  List.iter
    (fun f ->
      Buffer.add_string buf (Finding.baseline_key f);
      Buffer.add_char buf '\n')
    (List.sort Finding.compare findings);
  Buffer.contents buf

let save path findings =
  let oc = open_out_bin path in
  output_string oc (render findings);
  close_out oc
