(** A single lint finding: one rule violation at one source location. *)

type t = {
  file : string;  (** path relative to the repo root, as scanned *)
  line : int;  (** 1-based line of the offending node *)
  col : int;  (** 0-based column, kept for stable sorting *)
  rule : string;  (** rule id, e.g. ["C001"] *)
  msg : string;  (** human-readable explanation with the suggested fix *)
}

val make : file:string -> line:int -> col:int -> rule:string -> string -> t

(** Total order: file, then line, then column, then rule, then message —
    so reports are byte-identical across runs (the linter holds itself to
    rule D002). *)
val compare : t -> t -> int

(** [to_string f] renders ["file:line: [RULE] message"], the format every
    consumer (CLI, tests, editors) parses. *)
val to_string : t -> string

(** [baseline_key f] is the line-number-free form used in the baseline
    file, so edits above a baselined site do not invalidate it. *)
val baseline_key : t -> string
