(** On-disk format of a tree component.

    A component is a chain of contiguous extents holding, in order: data
    pages, index pages, and one footer page. Data pages use the paper's
    "simple append-only data page format that efficiently stores records
    that span multiple pages and bounds the fraction of space wasted by
    inconveniently sized records" (Appendix A.2).

    Data page layout:
    {v
      u16 @0  n_starts   records beginning in this page
      u32 @2  cont_len   leading payload bytes that belong to a record
                         begun on an earlier page
      u32 @6  crc32c     over header [0,6) ++ payload [10, page_size)
      payload [10, page_size)
    v}

    Every data page carries a CRC32C so that torn writes and bit rot are
    *detected* — the read path verifies before decoding, and a mismatch
    raises the typed {!Corrupt} instead of yielding garbage records.
    Index and Bloom pages are raw blob bytes; their integrity is covered
    by whole-blob CRCs stored in the footer, and the footer blob itself
    is sealed with a trailing CRC.

    A record on the wire is [varint body_len][body] where
    [body = varint key_len ++ key ++ varint lsn ++ entry] (see
    {!Kv.Entry.encode}). The LSN is the newest write-ahead-log sequence
    number folded into the record; recovery uses it to skip WAL records
    whose effect is already durable — without it, replaying a delta that
    a committed merge already applied would apply it twice (Rose, the
    paper's substrate, tracks LSNs for the same reason).
    Bodies flow across page boundaries without padding, so the waste per
    page is at most the final partial varint — a few bytes. *)

(** A checksum mismatch: the page (or blob, [page = -1]) does not contain
    what was written. Never decoded past — "no silent garbage". *)
exception Corrupt of { what : string; page : int }

let header_bytes = 10

let crc_offset = 6

let payload_capacity ~page_size = page_size - header_bytes

(* CRC32C over the page with the checksum field skipped: header [0,6)
   then payload [10, page_size). *)
let page_crc s =
  let c = Repro_util.Crc32c.update 0xFFFFFFFF s 0 crc_offset in
  let c = Repro_util.Crc32c.update c s header_bytes (String.length s - header_bytes) in
  c lxor 0xFFFFFFFF

(** [seal_page b] computes and stores the page checksum; the builder
    calls this once the header and payload are final. *)
let seal_page b =
  Pagestore.Page.set_u32 b crc_offset 0;
  Pagestore.Page.set_u32 b crc_offset (page_crc (Bytes.unsafe_to_string b))

let stored_page_crc s =
  Char.code s.[crc_offset]
  lor (Char.code s.[crc_offset + 1] lsl 8)
  lor (Char.code s.[crc_offset + 2] lsl 16)
  lor (Char.code s.[crc_offset + 3] lsl 24)

(** [page_ok s] checks a data page's checksum. *)
let page_ok s = page_crc s = stored_page_crc s

(** [verify_page s ~page] raises {!Corrupt} on checksum mismatch,
    reporting [page] (the platter page id). *)
let verify_page s ~page =
  if not (page_ok s) then raise (Corrupt { what = "data page checksum"; page })

(** [page_ok_bytes b] is {!page_ok} on a byte buffer without copying it
    out (the buffer is aliased only for the duration of the fold). *)
let page_ok_bytes b = page_ok (Bytes.unsafe_to_string b)

(** [verify_page_bytes b ~page] is {!verify_page} without the copy. *)
let verify_page_bytes b ~page =
  if not (page_ok_bytes b) then
    raise (Corrupt { what = "data page checksum"; page })

(** [record_starts b] derives the in-page restart points: the payload
    offset of each record that *begins* in this page, in key order. The
    read path binary-searches this array instead of decoding every record
    before the target (Appendix A.2's format stays byte-identical on
    disk; the array is cached per buffer-pool frame). Only the last entry
    may belong to a record that spills past the page end — its offset is
    still exact, the spill is the reader's problem. Call only on a
    CRC-verified page: the walk trusts the length varints. *)
let record_starts b =
  let s = Bytes.unsafe_to_string b in
  let psz = String.length s in
  let n = Char.code s.[0] lor (Char.code s.[1] lsl 8) in
  let cont =
    Char.code s.[2] lor (Char.code s.[3] lsl 8) lor (Char.code s.[4] lsl 16)
    lor (Char.code s.[5] lsl 24)
  in
  let starts = Array.make n 0 in
  let off = ref (header_bytes + cont) in
  for i = 0 to n - 1 do
    if !off >= psz then raise (Corrupt { what = "record start walk"; page = -1 });
    starts.(i) <- !off;
    (* Hop over [varint body_len][body]. The body-length varint itself can
       be split by the page boundary (the builder spills records byte by
       byte); a split varint or body just parks [off] past the end, which
       is legal only for the final start. *)
    let v = ref 0 and shift = ref 0 and p = ref !off and fits = ref true in
    let scanning = ref true in
    while !scanning do
      if !p >= psz then begin
        fits := false;
        scanning := false
      end
      else begin
        let byte = Char.code (String.unsafe_get s !p) in
        incr p;
        v := !v lor ((byte land 0x7F) lsl !shift);
        shift := !shift + 7;
        if byte < 0x80 then scanning := false
      end
    done;
    off := (if !fits then !p + !v else psz)
  done;
  starts

(** [encode_record buf key ~lsn entry] appends one framed record. *)
let encode_record buf key ~lsn entry =
  let body = Buffer.create (String.length key + 16) in
  Repro_util.Varint.write body (String.length key);
  Buffer.add_string body key;
  Repro_util.Varint.write body lsn;
  Kv.Entry.encode body entry;
  Repro_util.Varint.write buf (Buffer.length body);
  Buffer.add_buffer buf body

(** [decode_body s] parses a record body into [(key, entry, lsn)]. *)
let decode_body s =
  let key_len, pos = Repro_util.Varint.read s 0 in
  let key = String.sub s pos key_len in
  let lsn, pos = Repro_util.Varint.read s (pos + key_len) in
  let entry, _ = Kv.Entry.decode s pos in
  (key, entry, lsn)

(** {1 Footer}

    The footer describes the component: logical timestamp, record count,
    user-data bytes, LSN range, extents, where the index lives, and the
    blob checksums. It doubles as the metadata blob engines store in
    their commit root, sealed by a trailing CRC32C of its own. *)

type footer = {
  timestamp : int;  (** logical timestamp, bumped per merge (§4.4.1) *)
  record_count : int;
  tombstone_count : int;
  data_bytes : int;  (** sum of record body bytes (user data) *)
  min_lsn : int;  (** smallest WAL LSN folded into any record (0: none) *)
  max_lsn : int;  (** largest; [min_lsn >= wal.truncated_to] means the
                      component is still fully covered by the log and can
                      be rebuilt from replay if it rots *)
  min_key : string;
  max_key : string;
  extents : (int * int) list;  (** (start page id, length) in chain order *)
  data_pages : int;  (** pages [0, data_pages) of the chain hold records *)
  index_pages : int;  (** pages [data_pages, data_pages+index_pages) *)
  index_entries : int;
  index_bytes : int;  (** exact blob length before page padding *)
  index_crc : int;  (** CRC32C of the index blob *)
  bloom_pages : int;  (** optional persisted Bloom filter after the index *)
  bloom_bytes : int;
  bloom_crc : int;  (** CRC32C of the Bloom blob *)
}

let encode_footer f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "SSTF";
  let w = Repro_util.Varint.write buf in
  w f.timestamp;
  w f.record_count;
  w f.tombstone_count;
  w f.data_bytes;
  w f.min_lsn;
  w f.max_lsn;
  w (String.length f.min_key);
  Buffer.add_string buf f.min_key;
  w (String.length f.max_key);
  Buffer.add_string buf f.max_key;
  w (List.length f.extents);
  List.iter
    (fun (s, l) ->
      w s;
      w l)
    f.extents;
  w f.data_pages;
  w f.index_pages;
  w f.index_entries;
  w f.index_bytes;
  w f.index_crc;
  w f.bloom_pages;
  w f.bloom_bytes;
  w f.bloom_crc;
  (* seal: CRC32C of everything above, appended as a varint *)
  Repro_util.Varint.write buf (Repro_util.Crc32c.string (Buffer.contents buf));
  Buffer.contents buf

let decode_footer s =
  if String.length s < 4 || not (String.equal (String.sub s 0 4) "SSTF") then
    raise (Corrupt { what = "footer magic"; page = -1 });
  let pos = ref 4 in
  let r () =
    let v, p = Repro_util.Varint.read s !pos in
    pos := p;
    v
  in
  let rs () =
    let len = r () in
    let v = String.sub s !pos len in
    pos := !pos + len;
    v
  in
  match
    let timestamp = r () in
    let record_count = r () in
    let tombstone_count = r () in
    let data_bytes = r () in
    let min_lsn = r () in
    let max_lsn = r () in
    let min_key = rs () in
    let max_key = rs () in
    let n_extents = r () in
    let extents =
      let rec go n acc =
        if n = 0 then List.rev acc
        else
          let s = r () in
          let l = r () in
          go (n - 1) ((s, l) :: acc)
      in
      go n_extents []
    in
    let data_pages = r () in
    let index_pages = r () in
    let index_entries = r () in
    let index_bytes = r () in
    let index_crc = r () in
    let bloom_pages = r () in
    let bloom_bytes = r () in
    let bloom_crc = r () in
    let body_end = !pos in
    let stored_crc = r () in
    ( { timestamp; record_count; tombstone_count; data_bytes; min_lsn; max_lsn;
        min_key; max_key; extents; data_pages; index_pages; index_entries;
        index_bytes; index_crc; bloom_pages; bloom_bytes; bloom_crc },
      body_end, stored_crc )
  with
  | footer, body_end, stored_crc ->
      if Repro_util.Crc32c.string (String.sub s 0 body_end) <> stored_crc then
        raise (Corrupt { what = "footer checksum"; page = -1 });
      footer
  | exception Invalid_argument _ ->
      (* truncated or garbled varints: the blob is not a footer *)
      raise (Corrupt { what = "footer encoding"; page = -1 })
