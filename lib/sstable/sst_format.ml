(** On-disk format of a tree component.

    A component is a chain of contiguous extents holding, in order: data
    pages, index pages, and one footer page. Data pages use the paper's
    "simple append-only data page format that efficiently stores records
    that span multiple pages and bounds the fraction of space wasted by
    inconveniently sized records" (Appendix A.2).

    Data page layout:
    {v
      u16 @0  n_starts   records beginning in this page
      u32 @2  cont_len   leading payload bytes that belong to a record
                         begun on an earlier page
      u32 @6  crc32c     over header [0,6) ++ payload [10, page_size)
      payload [10, page_size)
    v}

    Every data page carries a CRC32C so that torn writes and bit rot are
    *detected* — the read path verifies before decoding, and a mismatch
    raises the typed {!Corrupt} instead of yielding garbage records.
    Index and Bloom pages are raw blob bytes; their integrity is covered
    by whole-blob CRCs stored in the footer, and the footer blob itself
    is sealed with a trailing CRC.

    A record on the wire is [varint body_len][body] where
    [body = varint key_len ++ key ++ varint lsn ++ entry] (see
    {!Kv.Entry.encode}). The LSN is the newest write-ahead-log sequence
    number folded into the record; recovery uses it to skip WAL records
    whose effect is already durable — without it, replaying a delta that
    a committed merge already applied would apply it twice (Rose, the
    paper's substrate, tracks LSNs for the same reason).
    Bodies flow across page boundaries without padding, so the waste per
    page is at most the final partial varint — a few bytes. *)

(** A checksum mismatch: the page (or blob, [page = -1]) does not contain
    what was written. Never decoded past — "no silent garbage". *)
exception Corrupt of { what : string; page : int }

let header_bytes = 10

let crc_offset = 6

let payload_capacity ~page_size = page_size - header_bytes

(* CRC32C over the page with the checksum field skipped: header [0,6)
   then payload [10, page_size). *)
let page_crc s =
  let c = Repro_util.Crc32c.update 0xFFFFFFFF s 0 crc_offset in
  let c = Repro_util.Crc32c.update c s header_bytes (String.length s - header_bytes) in
  c lxor 0xFFFFFFFF

(** [seal_page b] computes and stores the page checksum; the builder
    calls this once the header and payload are final. *)
let seal_page b =
  Pagestore.Page.set_u32 b crc_offset 0;
  Pagestore.Page.set_u32 b crc_offset (page_crc (Bytes.unsafe_to_string b))

let stored_page_crc s =
  Char.code s.[crc_offset]
  lor (Char.code s.[crc_offset + 1] lsl 8)
  lor (Char.code s.[crc_offset + 2] lsl 16)
  lor (Char.code s.[crc_offset + 3] lsl 24)

(** [page_ok s] checks a data page's checksum. *)
let page_ok s = page_crc s = stored_page_crc s

(** [verify_page s ~page] raises {!Corrupt} on checksum mismatch,
    reporting [page] (the platter page id). *)
let verify_page s ~page =
  if not (page_ok s) then raise (Corrupt { what = "data page checksum"; page })

(** [page_ok_bytes b] is {!page_ok} on a byte buffer without copying it
    out (the buffer is aliased only for the duration of the fold). *)
let page_ok_bytes b = page_ok (Bytes.unsafe_to_string b)

(** [verify_page_bytes b ~page] is {!verify_page} without the copy. *)
let verify_page_bytes b ~page =
  if not (page_ok_bytes b) then
    raise (Corrupt { what = "data page checksum"; page })

(** [record_starts b] derives the in-page restart points: the payload
    offset of each record that *begins* in this page, in key order. The
    read path binary-searches this array instead of decoding every record
    before the target (Appendix A.2's format stays byte-identical on
    disk; the array is cached per buffer-pool frame). Only the last entry
    may belong to a record that spills past the page end — its offset is
    still exact, the spill is the reader's problem. Call only on a
    CRC-verified page: the walk trusts the length varints. *)
let record_starts b =
  let s = Bytes.unsafe_to_string b in
  let psz = String.length s in
  let n = Char.code s.[0] lor (Char.code s.[1] lsl 8) in
  let cont =
    Char.code s.[2] lor (Char.code s.[3] lsl 8) lor (Char.code s.[4] lsl 16)
    lor (Char.code s.[5] lsl 24)
  in
  let starts = Array.make n 0 in
  let off = ref (header_bytes + cont) in
  for i = 0 to n - 1 do
    if !off >= psz then raise (Corrupt { what = "record start walk"; page = -1 });
    starts.(i) <- !off;
    (* Hop over [varint body_len][body]. The body-length varint itself can
       be split by the page boundary (the builder spills records byte by
       byte); a split varint or body just parks [off] past the end, which
       is legal only for the final start. *)
    let v = ref 0 and shift = ref 0 and p = ref !off and fits = ref true in
    let scanning = ref true in
    while !scanning do
      if !p >= psz then begin
        fits := false;
        scanning := false
      end
      else begin
        let byte = Char.code (String.unsafe_get s !p) in
        incr p;
        v := !v lor ((byte land 0x7F) lsl !shift);
        shift := !shift + 7;
        if byte < 0x80 then scanning := false
      end
    done;
    off := (if !fits then !p + !v else psz)
  done;
  starts

(** {1 Format versions}

    [V1] is the seed's layout: every record body carries its full key.
    [V2] prefix-compresses keys within a page (LevelDB-style): a body is
    [varint shared][varint suffix_len][suffix][varint lsn][entry], where
    [shared] counts bytes reused from the previous record's key. Every
    {!restart_interval}-th record starting in a page — and always the
    first — is a restart ([shared = 0]), so the reader can binary-search
    restarts and only forward-decode within one interval. The outer
    [varint body_len][body] framing is identical in both versions, so
    {!record_starts}, page spill, and CRC handling are version-blind.
    V2 components are stamped with the "SST2" footer magic; V1 bytes are
    unchanged, so existing components reopen as before. *)
type version = V1 | V2

(** Every [restart_interval]-th record starting in a page stores its full
    key (a restart point); the 15 in between store only their suffix. *)
let restart_interval = 16

(** Length of the longest common prefix of [a] and [b]. *)
let shared_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let i = ref 0 in
  while
    !i < n && Char.equal (String.unsafe_get a !i) (String.unsafe_get b !i)
  do
    incr i
  done;
  !i

(** [encode_record buf key ~lsn entry] appends one framed record. *)
let encode_record buf key ~lsn entry =
  let body = Buffer.create (String.length key + 16) in
  Repro_util.Varint.write body (String.length key);
  Buffer.add_string body key;
  Repro_util.Varint.write body lsn;
  Kv.Entry.encode body entry;
  Repro_util.Varint.write buf (Buffer.length body);
  Buffer.add_buffer buf body

(** [decode_body s] parses a record body into [(key, entry, lsn)]. *)
let decode_body s =
  let key_len, pos = Repro_util.Varint.read s 0 in
  let key = String.sub s pos key_len in
  let lsn, pos = Repro_util.Varint.read s (pos + key_len) in
  let entry, _ = Kv.Entry.decode s pos in
  (key, entry, lsn)

(** [encode_record_v2 buf ~prev key ~lsn entry] appends one framed V2
    record. [prev] is the key of the previous record starting in the same
    page — pass [""] to force a restart (full key stored). *)
let encode_record_v2 buf ~prev key ~lsn entry =
  let shared = shared_prefix_len prev key in
  let body = Buffer.create (String.length key + 16) in
  Repro_util.Varint.write body shared;
  Repro_util.Varint.write body (String.length key - shared);
  Buffer.add_substring body key shared (String.length key - shared);
  Repro_util.Varint.write body lsn;
  Kv.Entry.encode body entry;
  Repro_util.Varint.write buf (Buffer.length body);
  Buffer.add_buffer buf body

(** [decode_body_v2 ~prev s] parses a V2 record body, reconstructing the
    key from [prev]'s first [shared] bytes plus the stored suffix. *)
let decode_body_v2 ~prev s =
  let shared, pos = Repro_util.Varint.read s 0 in
  let suffix_len, pos = Repro_util.Varint.read s pos in
  let key =
    if shared = 0 then String.sub s pos suffix_len
    else begin
      if shared > String.length prev then
        raise (Corrupt { what = "shared prefix exceeds previous key"; page = -1 });
      let b = Bytes.create (shared + suffix_len) in
      Bytes.blit_string prev 0 b 0 shared;
      Bytes.blit_string s pos b shared suffix_len;
      Bytes.unsafe_to_string b
    end
  in
  let lsn, pos = Repro_util.Varint.read s (pos + suffix_len) in
  let entry, _ = Kv.Entry.decode s pos in
  (key, entry, lsn)

(** {1 Fence pointers}

    The per-table page index (first key starting in each data page, plus
    — for V2 — the last key starting in it, the page's zone map) held in
    RAM in Eytzinger (BFS) order: slot 1 is the median, slots [2k]/[2k+1]
    its children. The floor search then touches a root-to-leaf path whose
    prefix is shared by every lookup (top of the array stays in cache)
    and whose branch direction feeds straight into the next index —
    branch-predictable where sorted-order binary search is not. The
    linear in-order walk {!Fence.locate_linear} is kept as the reference
    the QCheck properties hold {!Fence.locate} to. *)
module Fence = struct
  type t = {
    keys : string array;  (** 1-indexed Eytzinger order; slot 0 unused *)
    pos : int array;  (** chain position of the slot's data page *)
    maxes : string array;  (** zone maps ([[||]] when absent: V1) *)
    n : int;
  }

  let length t = t.n
  let key t slot = t.keys.(slot)
  let page_pos t slot = t.pos.(slot)
  let has_zone_maps t = Array.length t.maxes > 0

  (** Zone map: the largest key of any record starting in the slot's
      page. [None] when the format carries no zone maps (V1). *)
  let zone_max t slot =
    if Array.length t.maxes = 0 then None else Some t.maxes.(slot)

  (** [of_sorted ?maxes ~keys ~pos ()] lays the sorted index out in
      Eytzinger order (in-order traversal of the implicit tree visits
      slots in sorted key order). *)
  let of_sorted ?maxes ~keys ~pos () =
    let n = Array.length keys in
    let ekeys = Array.make (n + 1) "" in
    let epos = Array.make (n + 1) 0 in
    let emax =
      match maxes with Some _ -> Array.make (n + 1) "" | None -> [||]
    in
    let rec fill k j =
      if k > n then j
      else begin
        let j = fill (2 * k) j in
        ekeys.(k) <- keys.(j);
        epos.(k) <- pos.(j);
        (match maxes with Some m -> emax.(k) <- m.(j) | None -> ());
        fill ((2 * k) + 1) (j + 1)
      end
    in
    ignore (fill 1 0 : int);
    { keys = ekeys; pos = epos; maxes = emax; n }

    (** Smallest slot in key order (the leftmost tree node). *)
  let first_slot t =
    if t.n = 0 then None
    else begin
      let j = ref 1 in
      while 2 * !j <= t.n do
        j := 2 * !j
      done;
      Some !j
    end

  (** In-order successor of [slot] ([None] at the maximum): right child's
      leftmost descendant, else the first ancestor entered from a left
      child. *)
  let succ_slot t slot =
    if (2 * slot) + 1 <= t.n then begin
      let j = ref ((2 * slot) + 1) in
      while 2 * !j <= t.n do
        j := 2 * !j
      done;
      Some !j
    end
    else begin
      let k = ref slot in
      while !k land 1 = 1 do
        k := !k lsr 1
      done;
      let p = !k lsr 1 in
      if p = 0 then None else Some p
    end

  (** [locate t key]: the slot of the rightmost fence key [<= key]
      ([None] if [key] precedes every fence key). Branch-free Eytzinger
      descent: each comparison appends one path bit; at the bottom, the
      floor is the node where the path last turned right — recovered by
      stripping the trailing left-turn zeros and that final one bit. *)
  let locate t key =
    if t.n = 0 then None
    else begin
      let k = ref 1 in
      while !k <= t.n do
        k :=
          (2 * !k)
          + (if String.compare (Array.unsafe_get t.keys !k) key <= 0 then 1
             else 0)
      done;
      let j = ref !k in
      while !j land 1 = 0 do
        j := !j lsr 1
      done;
      let j = !j lsr 1 in
      if j = 0 then None else Some j
    end

  (** Reference implementation of {!locate}: walk slots in key order,
      keeping the last one whose key is [<= key]. The QCheck oracle. *)
  let locate_linear t key =
    let rec go slot best =
      match slot with
      | None -> best
      | Some s ->
          if String.compare t.keys.(s) key <= 0 then
            go (succ_slot t s) (Some s)
          else best
    in
    go (first_slot t) None
end

(** {1 Footer}

    The footer describes the component: logical timestamp, record count,
    user-data bytes, LSN range, extents, where the index lives, and the
    blob checksums. It doubles as the metadata blob engines store in
    their commit root, sealed by a trailing CRC32C of its own. *)

type footer = {
  version : version;  (** page/record layout; encoded as the magic *)
  timestamp : int;  (** logical timestamp, bumped per merge (§4.4.1) *)
  record_count : int;
  tombstone_count : int;
  data_bytes : int;  (** sum of record body bytes (user data) *)
  min_lsn : int;  (** smallest WAL LSN folded into any record (0: none) *)
  max_lsn : int;  (** largest; [min_lsn >= wal.truncated_to] means the
                      component is still fully covered by the log and can
                      be rebuilt from replay if it rots *)
  min_key : string;
  max_key : string;
  extents : (int * int) list;  (** (start page id, length) in chain order *)
  data_pages : int;  (** pages [0, data_pages) of the chain hold records *)
  index_pages : int;  (** pages [data_pages, data_pages+index_pages) *)
  index_entries : int;
  index_bytes : int;  (** exact blob length before page padding *)
  index_crc : int;  (** CRC32C of the index blob *)
  bloom_pages : int;  (** optional persisted Bloom filter after the index *)
  bloom_bytes : int;
  bloom_crc : int;  (** CRC32C of the Bloom blob *)
}

let encode_footer f =
  let buf = Buffer.create 256 in
  (* The layout version rides in the magic: V1 footers stay byte-identical
     to the seed's, so pre-existing components reopen unchanged. *)
  Buffer.add_string buf (match f.version with V1 -> "SSTF" | V2 -> "SST2");
  let w = Repro_util.Varint.write buf in
  w f.timestamp;
  w f.record_count;
  w f.tombstone_count;
  w f.data_bytes;
  w f.min_lsn;
  w f.max_lsn;
  w (String.length f.min_key);
  Buffer.add_string buf f.min_key;
  w (String.length f.max_key);
  Buffer.add_string buf f.max_key;
  w (List.length f.extents);
  List.iter
    (fun (s, l) ->
      w s;
      w l)
    f.extents;
  w f.data_pages;
  w f.index_pages;
  w f.index_entries;
  w f.index_bytes;
  w f.index_crc;
  w f.bloom_pages;
  w f.bloom_bytes;
  w f.bloom_crc;
  (* seal: CRC32C of everything above, appended as a varint *)
  Repro_util.Varint.write buf (Repro_util.Crc32c.string (Buffer.contents buf));
  Buffer.contents buf

let decode_footer s =
  let version =
    if String.length s < 4 then
      raise (Corrupt { what = "footer magic"; page = -1 })
    else
      match String.sub s 0 4 with
      | "SSTF" -> V1
      | "SST2" -> V2
      | _ -> raise (Corrupt { what = "footer magic"; page = -1 })
  in
  let pos = ref 4 in
  let r () =
    let v, p = Repro_util.Varint.read s !pos in
    pos := p;
    v
  in
  let rs () =
    let len = r () in
    let v = String.sub s !pos len in
    pos := !pos + len;
    v
  in
  match
    let timestamp = r () in
    let record_count = r () in
    let tombstone_count = r () in
    let data_bytes = r () in
    let min_lsn = r () in
    let max_lsn = r () in
    let min_key = rs () in
    let max_key = rs () in
    let n_extents = r () in
    let extents =
      let rec go n acc =
        if n = 0 then List.rev acc
        else
          let s = r () in
          let l = r () in
          go (n - 1) ((s, l) :: acc)
      in
      go n_extents []
    in
    let data_pages = r () in
    let index_pages = r () in
    let index_entries = r () in
    let index_bytes = r () in
    let index_crc = r () in
    let bloom_pages = r () in
    let bloom_bytes = r () in
    let bloom_crc = r () in
    let body_end = !pos in
    let stored_crc = r () in
    ( { version; timestamp; record_count; tombstone_count; data_bytes;
        min_lsn; max_lsn; min_key; max_key; extents; data_pages; index_pages;
        index_entries; index_bytes; index_crc; bloom_pages; bloom_bytes;
        bloom_crc },
      body_end, stored_crc )
  with
  | footer, body_end, stored_crc ->
      if Repro_util.Crc32c.string (String.sub s 0 body_end) <> stored_crc then
        raise (Corrupt { what = "footer checksum"; page = -1 });
      footer
  | exception Invalid_argument _ ->
      (* truncated or garbled varints: the blob is not a footer *)
      raise (Corrupt { what = "footer encoding"; page = -1 })
