(** SSTable reader: point lookups, ordered iteration, recovery reopen.

    The page index (first key starting in each data page) lives in RAM, as
    the paper assumes for B-Tree and LSM index nodes alike (Appendix A.1);
    lookups therefore cost one page read — one seek when uncached. Point
    reads go through the buffer manager so hot pages are cached; scans and
    merges stream pages directly, leaving the pool to the read path. *)

type t = {
  store : Pagestore.Store.t;
  footer : Sst_format.footer;
  pages : int array;  (** page ids of the whole chain, in logical order *)
  fence : Sst_format.Fence.t;
      (** page-locating fence pointers in Eytzinger order (V2 fences also
          carry per-page zone maps) *)
}

let footer t = t.footer
let timestamp t = t.footer.Sst_format.timestamp
let record_count t = t.footer.Sst_format.record_count
let data_bytes t = t.footer.Sst_format.data_bytes
let min_key t = t.footer.Sst_format.min_key
let max_key t = t.footer.Sst_format.max_key
let is_empty t = t.footer.Sst_format.record_count = 0

let pages_of_extents extents ~take =
  let arr = Array.make take 0 in
  let i = ref 0 in
  List.iter
    (fun (start, length) ->
      for p = start to start + length - 1 do
        if !i < take then begin
          arr.(!i) <- p;
          incr i
        end
      done)
    extents;
  assert (!i = take);
  arr

(* Parse the index blob into the RAM fence: V1 entries are
   (first_key, pos); V2 entries append the page zone map. *)
let parse_index ~version blob n =
  let keys = Array.make n "" in
  let poss = Array.make n 0 in
  let maxes =
    match (version : Sst_format.version) with
    | V1 -> None
    | V2 -> Some (Array.make n "")
  in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    let klen, p = Repro_util.Varint.read blob !pos in
    let key = String.sub blob p klen in
    let ppos, p = Repro_util.Varint.read blob (p + klen) in
    keys.(i) <- key;
    poss.(i) <- ppos;
    pos := p;
    match maxes with
    | None -> ()
    | Some m ->
        let mlen, p = Repro_util.Varint.read blob !pos in
        m.(i) <- String.sub blob p mlen;
        pos := p + mlen
  done;
  Sst_format.Fence.of_sorted ?maxes ~keys ~pos:poss ()

(** [open_in_ram store footer ~index] builds a reader from a freshly built
    component whose index the builder still has in RAM (the common case:
    merge output is opened immediately). *)
let open_in_ram store (footer : Sst_format.footer) ~index =
  let take = footer.data_pages + footer.index_pages + footer.bloom_pages in
  let pages = pages_of_extents footer.extents ~take in
  let fence = parse_index ~version:footer.version index footer.index_entries in
  { store; footer; pages; fence }

(** [open_from_disk store footer] reopens a component after recovery,
    re-reading the index pages (charged as sequential I/O). The index
    blob is checksum-verified before parsing: parsing rotted varints
    would chase garbage page positions, so a mismatch raises
    {!Sst_format.Corrupt} instead. *)
(* Reassemble a blob stored across whole pages by blitting each cached
   page straight into one preallocated buffer — the seed built a string
   per page and then re-copied the concatenation (two copies per byte).
   Returns [None] when the footer claims more bytes than the pages can
   hold (a rotted footer field). *)
let read_blob store pages ~start ~npages ~bytes =
  let page_size = Pagestore.Store.page_size store in
  if bytes > npages * page_size then None
  else begin
    let out = Bytes.create bytes in
    for i = 0 to npages - 1 do
      let off = i * page_size in
      let n = min page_size (bytes - off) in
      if n > 0 then
        Pagestore.Store.with_page_seq store pages.(start + i) (fun b ->
            Bytes.blit b 0 out off n)
    done;
    Some (Bytes.unsafe_to_string out)
  end

let open_from_disk store (footer : Sst_format.footer) =
  let take = footer.data_pages + footer.index_pages + footer.bloom_pages in
  let pages = pages_of_extents footer.extents ~take in
  let blob =
    match
      read_blob store pages ~start:footer.data_pages
        ~npages:footer.index_pages ~bytes:footer.index_bytes
    with
    | Some b -> b
    | None -> ""
  in
  if String.length blob <> footer.index_bytes
     || Repro_util.Crc32c.string blob <> footer.index_crc
  then
    raise
      (Sst_format.Corrupt
         { what = "index blob checksum";
           page = (if footer.index_pages > 0 then pages.(footer.data_pages) else -1) });
  let fence = parse_index ~version:footer.version blob footer.index_entries in
  { store; footer; pages; fence }

(** [of_meta store blob] reopens from the engine's commit-root metadata. *)
let of_meta store blob = open_from_disk store (Sst_format.decode_footer blob)

let meta_blob t = Sst_format.encode_footer t.footer

(** [load_bloom_blob t] reads a persisted Bloom filter's bytes back from
    the component (sequential I/O, 1.25 B/key — far cheaper than the
    full-component scan a rebuild needs). [None] if none was persisted. *)
let load_bloom_blob t =
  let f = t.footer in
  if f.Sst_format.bloom_pages = 0 then None
  else
    match
      read_blob t.store t.pages
        ~start:(f.Sst_format.data_pages + f.Sst_format.index_pages)
        ~npages:f.Sst_format.bloom_pages ~bytes:f.Sst_format.bloom_bytes
    with
    | None -> None
    | Some blob ->
        (* A rotted Bloom filter is derived data: mask the corruption by
           pretending none was persisted, so the caller rebuilds it from a
           component scan (§4.4.3's other branch) instead of trusting
           garbage bits that could turn false negatives into lost reads. *)
        if Repro_util.Crc32c.string blob <> f.Sst_format.bloom_crc then None
        else Some blob

(** [free t] releases the component's extents (after a merge supersedes
    it). *)
let free t =
  List.iter
    (fun (start, length) ->
      Pagestore.Store.free_region t.store
        { Pagestore.Region_allocator.start; length })
    t.footer.Sst_format.extents

(* Rightmost fence slot whose first key <= [key]; None if key precedes
   everything. Eytzinger descent over the RAM fence (the seed binary-
   searched the sorted index arrays here). *)
let index_floor t key = Sst_format.Fence.locate t.fence key

(** [locate t key]: chain position of the data page a lookup for [key]
    must consult ([None]: key precedes the table, or — V2 — the page
    zone map already proves the key absent). Exposed for the fence
    property tests and the perf harness. *)
let locate t key =
  match Sst_format.Fence.locate t.fence key with
  | None -> None
  | Some slot -> (
      match Sst_format.Fence.zone_max t.fence slot with
      | Some zmax when String.compare key zmax > 0 -> None
      | _ -> Some (Sst_format.Fence.page_pos t.fence slot))

(** [locate_linear t key] mirrors {!locate} over the linear in-order
    fence walk — the reference the QCheck properties hold {!locate} to
    (as {!get_linear} is to {!get}). *)
let locate_linear t key =
  match Sst_format.Fence.locate_linear t.fence key with
  | None -> None
  | Some slot -> (
      match Sst_format.Fence.zone_max t.fence slot with
      | Some zmax when String.compare key zmax > 0 -> None
      | _ -> Some (Sst_format.Fence.page_pos t.fence slot))

(** {1 Page byte streams} *)

(* Where a stream's bytes come from. Cached streams pin buffer-pool
   frames and alias their bytes in place — zero copy, and the page CRC
   runs at most once per platter load (verified-once frames). Streaming
   access reads each page into a private reused buffer, bypassing the
   pool, and verifies every page: each read is a fresh platter copy, so
   there is no frame whose verification could be remembered. *)
type source =
  | Cached of { mutable pin : Pagestore.Store.pin option }
  | Streaming of { sbuf : Bytes.t; mutable slast : int (* last page id *) }

(* A pull stream of record bytes starting at chain position [bpos],
   concatenating page payloads. *)
type byte_stream = {
  reader : t;
  src : source;
  mutable bpos : int; (* next chain position to fetch *)
  mutable buf : string; (* current page; cached: alias of the pinned frame *)
  mutable off : int;
  mutable limit : int;
  mutable started : bool;
  (* V2 prefix-compression reference: key of the record decoded last.
     Streams starting at a page head need no seed (the first start of a
     page is always a restart); mid-page resumes seed it explicitly. *)
  mutable prev : string;
}

let page_size t = Pagestore.Store.page_size t.store

(* Release a cached stream's pin. Safe to call repeatedly; a no-op for
   streaming sources. Every stream must end up released, or the pinned
   frame is lost to the pool for good. *)
let release bs =
  match bs.src with
  | Cached c -> (
      match c.pin with
      | Some p ->
          Pagestore.Store.unpin p;
          c.pin <- None
      | None -> ())
  | Streaming _ -> ()

let fetch_page bs pos ~first =
  let t = bs.reader in
  let id = t.pages.(pos) in
  (match bs.src with
  | Cached c ->
      (* Unpin before pinning the successor so a lookup never holds two
         frames at once — point reads must work in arbitrarily small
         pools. The first access charges a seek on miss, continuation
         pages a sequential transfer. *)
      (match c.pin with
      | Some p ->
          Pagestore.Store.unpin p;
          c.pin <- None
      | None -> ());
      let pin =
        Pagestore.Store.pin_page t.store id ~seq:(not first)
          ~verify:(fun b -> Sst_format.verify_page_bytes b ~page:id)
      in
      c.pin <- Some pin;
      bs.buf <- Bytes.unsafe_to_string (Pagestore.Store.pinned_bytes pin)
  | Streaming s ->
      (* Track contiguity so physically consecutive pages cost bandwidth
         only, while extent jumps and initial positioning cost a seek. *)
      let disk = Pagestore.Store.disk t.store in
      Pagestore.Store.read_page_direct t.store id s.sbuf;
      if id = s.slast + 1 then Simdisk.Disk.seq_read disk ~bytes:(page_size t)
      else Simdisk.Disk.seek_read disk ~bytes:(page_size t);
      s.slast <- id;
      Sst_format.verify_page_bytes s.sbuf ~page:id;
      bs.buf <- Bytes.unsafe_to_string s.sbuf);
  bs.limit <- String.length bs.buf

(* Open a stream at chain position [pos]. *)
let stream_at t ~cached pos =
  let src =
    if cached then Cached { pin = None }
    else Streaming { sbuf = Bytes.create (page_size t); slast = -10 }
  in
  { reader = t; src; bpos = pos; buf = ""; off = 0; limit = 0;
    started = false; prev = "" }

exception End_of_component

let refill bs ~continuation =
  if bs.bpos >= bs.reader.footer.Sst_format.data_pages then begin
    release bs;
    raise End_of_component
  end;
  fetch_page bs bs.bpos ~first:(not bs.started);
  bs.started <- true;
  let page = bs.buf in
  let cont_len = Char.code page.[2] lor (Char.code page.[3] lsl 8)
                 lor (Char.code page.[4] lsl 16) lor (Char.code page.[5] lsl 24)
  in
  bs.off <-
    (if continuation then Sst_format.header_bytes
     else Sst_format.header_bytes + cont_len);
  bs.bpos <- bs.bpos + 1

let read_byte bs =
  if bs.off >= bs.limit then refill bs ~continuation:true;
  let c = bs.buf.[bs.off] in
  bs.off <- bs.off + 1;
  Char.code c

let read_varint bs =
  let rec go acc shift =
    let b = read_byte bs in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b < 0x80 then acc else go acc (shift + 7)
  in
  go 0 0

let read_string bs n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if bs.off >= bs.limit then refill bs ~continuation:true;
    let avail = bs.limit - bs.off in
    let take = min avail (n - !filled) in
    Bytes.blit_string bs.buf bs.off out !filled take;
    bs.off <- bs.off + take;
    filled := !filled + take
  done;
  Bytes.unsafe_to_string out

(* Zero padding at the tail of the final data page decodes as a 0-length
   varint; real records always have body_len >= 1, so 0 means "no more
   records" (padding only ever occurs on the last data page). A stream
   that reports no more records releases its pin. *)
let next_record bs =
  match read_varint bs with
  | exception End_of_component -> None (* refill already released *)
  | 0 ->
      release bs;
      None
  | body_len -> (
      (* The varint promised [body_len] more bytes; running out of data
         pages mid-record means the file is truncated.  Surface that as
         typed corruption — End_of_component is the internal
         record-boundary protocol and must never escape the reader
         (rule E001: it would cross the driver / replication boundaries
         as an unhandled exception instead of a corruption answer). *)
      let body =
        match read_string bs body_len with
        | exception End_of_component ->
            raise
              (Sst_format.Corrupt
                 {
                   what =
                     "sstable truncated mid-record (data pages end inside \
                      a record body)";
                   page = bs.bpos;
                 })
        | body -> body
      in
      match bs.reader.footer.Sst_format.version with
      | Sst_format.V1 -> Some (Sst_format.decode_body body)
      | Sst_format.V2 ->
          let ((k, _, _) as r) = Sst_format.decode_body_v2 ~prev:bs.prev body in
          bs.prev <- k;
          Some r)

(** {1 Iterators} *)

type iter = {
  mutable stream : byte_stream option;
  mutable pending : (string * Kv.Entry.t * int) option;
}

let make_iter t ~cached ?from () =
  if is_empty t then { stream = None; pending = None }
  else begin
    let start_pos, need_skip =
      match from with
      | None -> (Some 0, None)
      | Some key -> (
          match index_floor t key with
          | None -> (Some 0, None) (* key precedes component: start at 0 *)
          | Some slot -> (
              match Sst_format.Fence.zone_max t.fence slot with
              | Some zmax when String.compare key zmax > 0 -> (
                  (* Zone-map skip: every record starting in the floor
                     page precedes [key], so begin at the next fenced
                     page — whose first key is > [key] by the floor
                     property, so no record-skip loop is needed either.
                     The floor page's platter bytes are never read. *)
                  match Sst_format.Fence.succ_slot t.fence slot with
                  | None -> (None, None) (* key past the whole table *)
                  | Some s ->
                      (Some (Sst_format.Fence.page_pos t.fence s), None))
              | _ ->
                  (Some (Sst_format.Fence.page_pos t.fence slot), Some key)))
    in
    match start_pos with
    | None -> { stream = None; pending = None }
    | Some pos ->
        let bs = stream_at t ~cached pos in
        (try refill bs ~continuation:false with End_of_component -> ());
        let it = { stream = Some bs; pending = None } in
        (match need_skip with
        | None -> ()
        | Some key ->
            (* advance past records < key *)
            let rec skip () =
              match next_record bs with
              | None -> it.stream <- None
              | Some (k, _, _) as r when String.compare k key >= 0 ->
                  it.pending <- r
              | Some _ -> skip ()
            in
            skip ());
        it
  end

(** [iter_next_full it] pulls the next record with its stored LSN. *)
let iter_next_full it =
  match it.pending with
  | Some r ->
      it.pending <- None;
      Some r
  | None -> (
      match it.stream with
      | None -> None
      | Some bs -> (
          match next_record bs with
          | None ->
              it.stream <- None;
              None
          | some -> some))

(** [iter_next it] pulls the next record in key order. *)
let iter_next it =
  match iter_next_full it with Some (k, e, _) -> Some (k, e) | None -> None

(** [iterator t ?from ()] streams records (merges, scans): bypasses the
    buffer pool, first access costs a seek, the rest bandwidth. *)
let iterator ?from t = make_iter t ~cached:false ?from ()

(** [cached_iterator t ?from ()] iterates through the buffer pool (short
    scans that should benefit from caching). Call {!iter_close} if the
    iterator is abandoned before exhaustion, or its page stays pinned. *)
let cached_iterator ?from t = make_iter t ~cached:true ?from ()

(** [iter_close it] releases the iterator's resources (a cached
    iterator's pinned frame). Exhausted iterators release themselves;
    closing is idempotent. *)
let iter_close it =
  (match it.stream with Some bs -> release bs | None -> ());
  it.stream <- None;
  it.pending <- None

(** {1 Point lookup}

    [get] binary-searches the derived in-page restart points (cached per
    buffer-pool frame, see {!Sst_format.record_starts}) and compares
    candidate keys against the frame's bytes in place: no page copy, no
    per-record decode before the target, no re-CRC on pool hits. The
    linear decode survives as {!get_linear_with_lsn}, the reference the
    property tests hold the fast path to. *)

(* Compare the key stored at [pos, pos+len) of [s] with [key], without
   materializing it. *)
let cmp_key_at s pos len key =
  let klen = String.length key in
  let n = if len < klen then len else klen in
  let rec go i =
    if i = n then compare len klen
    else
      let c =
        Char.compare (String.unsafe_get s (pos + i)) (String.unsafe_get key i)
      in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* Probing a restart point within one page. Only the final restart can be
   [Unreadable]: its record spills past the page end before the key does. *)
type probe = Cmp of int | Unreadable

(* What the in-page search concluded. [Resume] means the linear scan
   must take over at payload offset [off]: the record there (or its
   successors) needs bytes from later pages. Settling those cases in any
   other way would touch a different set of pages than the seed's linear
   decode — the restart search must leave the simulated-I/O accounting
   byte-identical, so every page-crossing case defers to the same loop
   the seed ran. [prev] seeds the resumed stream's prefix-compression
   reference ("" under V1, which stores full keys). *)
type page_verdict =
  | Found of Kv.Entry.t * int
  | Absent
  | Resume of { off : int; prev : string }

let probe_key s psz start key =
  match Repro_util.Varint.read s start with
  | exception Invalid_argument _ -> Unreadable (* body-length varint split by the page end *)
  | body_len, p ->
      if p > psz then Unreadable
      else (
        match Repro_util.Varint.read s p with
        | exception Invalid_argument _ -> Unreadable
        | key_len, kp ->
            if kp + key_len > psz || kp + key_len > p + body_len then Unreadable
            else Cmp (cmp_key_at s kp key_len key))

(* Decode the record at [start] entirely from page bytes; the caller has
   checked it does not spill. *)
let decode_at s start =
  let body_len, p = Repro_util.Varint.read s start in
  ignore body_len;
  let key_len, kp = Repro_util.Varint.read s p in
  let lsn, lp = Repro_util.Varint.read s (kp + key_len) in
  let entry, _ = Kv.Entry.decode s lp in
  (entry, lsn)

let complete_at s psz start =
  match Repro_util.Varint.read s start with
  | exception Invalid_argument _ -> false
  | body_len, p -> p + body_len <= psz

(* Binary-search the restart array for [key]. The page was chosen by
   index floor, so the first restart's key is <= [key]; a miss whose
   stopping record sits whole in this page is a miss outright, because
   the next page's first key (the next index entry) is > [key]. An
   [Unreadable] probe sorts high; any verdict that the seed's linear
   scan would have crossed a page boundary to reach — a spilled match,
   a spilled stopping record, or all in-page keys < [key] (the linear
   scan walked on and fully decoded the next page's first record before
   giving up) — comes back as [Resume]. *)
let search_page page starts key =
  let s = Bytes.unsafe_to_string page in
  let psz = String.length s in
  let n = Array.length starts in
  if n = 0 then Absent
  else begin
    let probe i =
      match probe_key s psz starts.(i) key with
      | Unreadable -> 1 (* sort high; resolved via Resume below *)
      | Cmp c -> c
    in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if probe mid <= 0 then lo := mid else hi := mid - 1
    done;
    let i = !lo in
    match probe_key s psz starts.(i) key with
    | Unreadable -> Resume { off = starts.(i); prev = "" }
    | Cmp 0 ->
        if complete_at s psz starts.(i) then
          let e, lsn = decode_at s starts.(i) in
          Found (e, lsn)
        else Resume { off = starts.(i); prev = "" }
    | Cmp c when c < 0 ->
        (* All readable keys up to [i] are < key. The linear scan stops at
           record [i+1] if it exists, is whole, and its key settles the
           question; otherwise it crossed into later pages. *)
        if i + 1 >= n then Resume { off = starts.(i); prev = "" }
        else if
          complete_at s psz starts.(i + 1)
          && probe_key s psz starts.(i + 1) key <> Unreadable
        then Absent
        else Resume { off = starts.(i + 1); prev = "" }
    | Cmp _ ->
        (* key < first restart: the linear scan stops at record 0 — whole
           in this page, or it crossed. *)
        if complete_at s psz starts.(0) then Absent
        else Resume { off = starts.(0); prev = "" }
  end

(* Compare the composite key prev[0,shared) ++ s[pos, pos+suffix_len)
   against [key] without materializing it (the V2 walk's hot loop). *)
let cmp_composite prev shared s pos suffix_len key =
  let klen = String.length key in
  let total = shared + suffix_len in
  let n = if total < klen then total else klen in
  let rec go i =
    if i = n then Int.compare total klen
    else
      let ci =
        if i < shared then String.unsafe_get prev i
        else String.unsafe_get s (pos + i - shared)
      in
      let c = Char.compare ci (String.unsafe_get key i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* V2 in-page search: binary-search the restart points (every
   restart_interval-th start stores its full key, the first always),
   then forward-decode within one interval, reconstructing keys from
   shared prefixes. Unlike the V1 search there is no legacy I/O budget
   to match — a question settled by in-page bytes is answered in-page;
   only records whose key or entry bytes genuinely spill past the page
   end defer to the resumed stream, carrying the reconstruction
   reference in [prev]. *)
let search_page_v2 page starts key =
  let s = Bytes.unsafe_to_string page in
  let psz = String.length s in
  let n = Array.length starts in
  if n = 0 then Absent
  else begin
    let interval = Sst_format.restart_interval in
    (* (suffix offset, length) of the restart record r's full key
       ([shared = 0]); None when the bytes run past the page end. *)
    let restart_key r =
      let start = starts.(r * interval) in
      match Repro_util.Varint.read s start with
      | exception Invalid_argument _ -> None
      | _body_len, p -> (
          match Repro_util.Varint.read s p with
          | exception Invalid_argument _ -> None
          | _shared, p -> (
              match Repro_util.Varint.read s p with
              | exception Invalid_argument _ -> None
              | suffix_len, p ->
                  if p + suffix_len > psz then None else Some (p, suffix_len)))
    in
    let nr = (n + interval - 1) / interval in
    let probe_restart r =
      match restart_key r with
      | None -> 1 (* sorts high; settled by the walk's Resume *)
      | Some (kp, klen) -> cmp_key_at s kp klen key
    in
    let lo = ref 0 and hi = ref (nr - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if probe_restart mid <= 0 then lo := mid else hi := mid - 1
    done;
    if
      !lo = 0
      && (match restart_key 0 with
         | None -> false (* spills past the page: the walk must Resume *)
         | Some (kp, klen) -> cmp_key_at s kp klen key > 0)
    then
      (* key precedes the page's first key: readable and > key. *)
      Absent
    else begin
      (* Forward walk from the chosen restart. It self-terminates: the
         next restart's key is > [key] (binary-search invariant), and
         past the last start every later key lives in a later fenced
         page whose first key is > [key] (floor property). *)
      let rec walk i prev =
        if i >= n then Absent
        else begin
          let start = starts.(i) in
          match Repro_util.Varint.read s start with
          | exception Invalid_argument _ -> Resume { off = start; prev }
          | body_len, p -> (
              let body_end = p + body_len in
              match Repro_util.Varint.read s p with
              | exception Invalid_argument _ -> Resume { off = start; prev }
              | shared, p -> (
                  match Repro_util.Varint.read s p with
                  | exception Invalid_argument _ -> Resume { off = start; prev }
                  | suffix_len, p ->
                      if p + suffix_len > psz then Resume { off = start; prev }
                      else
                        let c = cmp_composite prev shared s p suffix_len key in
                        if c > 0 then Absent
                        else if c = 0 then begin
                          if body_end <= psz then
                            let lsn, lp =
                              Repro_util.Varint.read s (p + suffix_len)
                            in
                            let entry, _ = Kv.Entry.decode s lp in
                            Found (entry, lsn)
                          else Resume { off = start; prev }
                        end
                        else begin
                          let b = Bytes.create (shared + suffix_len) in
                          Bytes.blit_string prev 0 b 0 shared;
                          Bytes.blit_string s p b shared suffix_len;
                          walk (i + 1) (Bytes.unsafe_to_string b)
                        end))
        end
      in
      walk (!lo * interval) ""
    end
  end

(* Continue the seed's linear find loop at payload offset [off] of chain
   position [pos]: decode records (pulling continuation pages through the
   pool as sequential accesses, exactly as the seed charged them) until
   the key matches or passes by. [prev] seeds the V2 prefix-compression
   reference ("" under V1). *)
let linear_from t pos off ~prev key =
  let bs = stream_at t ~cached:true pos in
  Fun.protect
    ~finally:(fun () -> release bs)
    (fun () ->
      match refill bs ~continuation:true with
      | exception End_of_component -> None
      | () ->
          bs.off <- off;
          bs.prev <- prev;
          let rec find () =
            match next_record bs with
            | None -> None
            | Some (k, e, lsn) ->
                let c = String.compare k key in
                if c = 0 then Some (e, lsn)
                else if c > 0 then None
                else find ()
          in
          find ())

(** [get_with_lsn t key]: point lookup returning the record's stored LSN
    (recovery's replay filter). *)
let get_with_lsn t key =
  if is_empty t then None
  else if
    String.compare key t.footer.Sst_format.min_key < 0
    || String.compare key t.footer.Sst_format.max_key > 0
  then None
  else
    (* [locate] folds in the V2 zone-map check: a key past the floor
       page's last starting key is reported absent with zero I/O. *)
    match locate t key with
    | None -> None
    | Some pos ->
        let id = t.pages.(pos) in
        let search =
          match t.footer.Sst_format.version with
          | Sst_format.V1 -> search_page
          | Sst_format.V2 -> search_page_v2
        in
        let verdict =
          Pagestore.Store.with_page_starts t.store id ~seq:false
            ~verify:(fun b -> Sst_format.verify_page_bytes b ~page:id)
            ~derive:Sst_format.record_starts
            (fun page starts -> search page starts key)
        in
        (* Resolve page-crossing cases outside the pinned-page callback so
           the lookup never stacks pins (tiny pools stay workable). *)
        (match verdict with
        | Found (e, lsn) -> Some (e, lsn)
        | Absent -> None
        | Resume { off; prev } -> linear_from t pos off ~prev key)

(** [get_linear_with_lsn t key] is the seed's linear lookup — decode
    records from the page's first restart until the key passes by. Kept
    as the reference implementation the restart-point search is tested
    against (and as documentation of what the fast path must equal). *)
let get_linear_with_lsn t key =
  if is_empty t then None
  else if
    String.compare key t.footer.Sst_format.min_key < 0
    || String.compare key t.footer.Sst_format.max_key > 0
  then None
  else
    match locate_linear t key with
    | None -> None
    | Some pos ->
        let bs = stream_at t ~cached:true pos in
        Fun.protect
          ~finally:(fun () -> release bs)
          (fun () ->
            (try refill bs ~continuation:false
             with End_of_component -> ());
            let rec find () =
              match next_record bs with
              | None -> None
              | Some (k, e, lsn) ->
                  let c = String.compare k key in
                  if c = 0 then Some (e, lsn)
                  else if c > 0 then None
                  else find ()
            in
            find ())

let get_linear t key =
  match get_linear_with_lsn t key with Some (e, _) -> Some e | None -> None

(** [get t key] point lookup: one cached page read (one seek when the page
    is cold), plus continuation pages for records spanning pages. *)
let get t key =
  match get_with_lsn t key with Some (e, _) -> Some e | None -> None

(** {1 Scrubbing} *)

(** [verify t] walks the whole component — every data page, the index
    blob, the Bloom blob — verifying checksums, and returns the list of
    [(what, page)] mismatches (empty: component is clean). Reads stream
    directly from the platter with the same charge model as a merge scan:
    one seek per extent discontinuity, bandwidth otherwise. Never
    raises — scrubbing exists to report damage, not trip over it. *)
let verify t =
  let f = t.footer in
  let psz = page_size t in
  let disk = Pagestore.Store.disk t.store in
  let buf = Bytes.create psz in
  let last = ref (-10) in
  let read_raw pos =
    let id = t.pages.(pos) in
    Pagestore.Store.read_page_direct t.store id buf;
    if id = !last + 1 then Simdisk.Disk.seq_read disk ~bytes:psz
    else Simdisk.Disk.seek_read disk ~bytes:psz;
    last := id;
    Bytes.to_string buf
  in
  let errors = ref [] in
  for pos = 0 to f.Sst_format.data_pages - 1 do
    let page = read_raw pos in
    if not (Sst_format.page_ok page) then
      errors := ("data page checksum", t.pages.(pos)) :: !errors
  done;
  let check_blob ~what ~start ~pages ~bytes ~crc =
    if pages > 0 then begin
      let b = Buffer.create (pages * psz) in
      for pos = start to start + pages - 1 do
        Buffer.add_string b (read_raw pos)
      done;
      let ok =
        Buffer.length b >= bytes
        && Repro_util.Crc32c.string (Buffer.sub b 0 bytes) = crc
      in
      if not ok then errors := (what, t.pages.(start)) :: !errors
    end
  in
  check_blob ~what:"index blob checksum" ~start:f.Sst_format.data_pages
    ~pages:f.Sst_format.index_pages ~bytes:f.Sst_format.index_bytes
    ~crc:f.Sst_format.index_crc;
  check_blob ~what:"bloom blob checksum"
    ~start:(f.Sst_format.data_pages + f.Sst_format.index_pages)
    ~pages:f.Sst_format.bloom_pages ~bytes:f.Sst_format.bloom_bytes
    ~crc:f.Sst_format.bloom_crc;
  List.rev !errors
