(** SSTable reader: point lookups, ordered iteration, recovery reopen.

    The page index (first key starting in each data page) lives in RAM, as
    the paper assumes for B-Tree and LSM index nodes alike (Appendix A.1);
    lookups therefore cost one page read — one seek when uncached. Point
    reads go through the buffer manager so hot pages are cached; scans and
    merges stream pages directly, leaving the pool to the read path. *)

type t = {
  store : Pagestore.Store.t;
  footer : Sst_format.footer;
  pages : int array;  (** page ids of the whole chain, in logical order *)
  index_keys : string array;  (** first key starting in data page [pos] *)
  index_pos : int array;  (** the corresponding chain positions *)
}

let footer t = t.footer
let timestamp t = t.footer.Sst_format.timestamp
let record_count t = t.footer.Sst_format.record_count
let data_bytes t = t.footer.Sst_format.data_bytes
let min_key t = t.footer.Sst_format.min_key
let max_key t = t.footer.Sst_format.max_key
let is_empty t = t.footer.Sst_format.record_count = 0

let pages_of_extents extents ~take =
  let arr = Array.make take 0 in
  let i = ref 0 in
  List.iter
    (fun (start, length) ->
      for p = start to start + length - 1 do
        if !i < take then begin
          arr.(!i) <- p;
          incr i
        end
      done)
    extents;
  assert (!i = take);
  arr

let parse_index blob n =
  let keys = Array.make n "" in
  let poss = Array.make n 0 in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    let klen, p = Repro_util.Varint.read blob !pos in
    let key = String.sub blob p klen in
    let ppos, p = Repro_util.Varint.read blob (p + klen) in
    keys.(i) <- key;
    poss.(i) <- ppos;
    pos := p
  done;
  (keys, poss)

(** [open_in_ram store footer ~index] builds a reader from a freshly built
    component whose index the builder still has in RAM (the common case:
    merge output is opened immediately). *)
let open_in_ram store (footer : Sst_format.footer) ~index =
  let take = footer.data_pages + footer.index_pages + footer.bloom_pages in
  let pages = pages_of_extents footer.extents ~take in
  let index_keys, index_pos = parse_index index footer.index_entries in
  { store; footer; pages; index_keys; index_pos }

(** [open_from_disk store footer] reopens a component after recovery,
    re-reading the index pages (charged as sequential I/O). The index
    blob is checksum-verified before parsing: parsing rotted varints
    would chase garbage page positions, so a mismatch raises
    {!Sst_format.Corrupt} instead. *)
let open_from_disk store (footer : Sst_format.footer) =
  let take = footer.data_pages + footer.index_pages + footer.bloom_pages in
  let pages = pages_of_extents footer.extents ~take in
  let page_size = Pagestore.Store.page_size store in
  let buf = Buffer.create (footer.index_pages * page_size) in
  for i = footer.data_pages to footer.data_pages + footer.index_pages - 1 do
    Pagestore.Store.with_page_seq store pages.(i) (fun b ->
        Buffer.add_string buf (Bytes.to_string b))
  done;
  let blob = Buffer.sub buf 0 (min footer.index_bytes (Buffer.length buf)) in
  if String.length blob <> footer.index_bytes
     || Repro_util.Crc32c.string blob <> footer.index_crc
  then
    raise
      (Sst_format.Corrupt
         { what = "index blob checksum";
           page = (if footer.index_pages > 0 then pages.(footer.data_pages) else -1) });
  let index_keys, index_pos = parse_index blob footer.index_entries in
  { store; footer; pages; index_keys; index_pos }

(** [of_meta store blob] reopens from the engine's commit-root metadata. *)
let of_meta store blob = open_from_disk store (Sst_format.decode_footer blob)

let meta_blob t = Sst_format.encode_footer t.footer

(** [load_bloom_blob t] reads a persisted Bloom filter's bytes back from
    the component (sequential I/O, 1.25 B/key — far cheaper than the
    full-component scan a rebuild needs). [None] if none was persisted. *)
let load_bloom_blob t =
  let f = t.footer in
  if f.Sst_format.bloom_pages = 0 then None
  else begin
    let buf = Buffer.create f.Sst_format.bloom_bytes in
    let start = f.Sst_format.data_pages + f.Sst_format.index_pages in
    for i = start to start + f.Sst_format.bloom_pages - 1 do
      Pagestore.Store.with_page_seq t.store t.pages.(i) (fun b ->
          Buffer.add_string buf (Bytes.to_string b))
    done;
    if Buffer.length buf < f.Sst_format.bloom_bytes then None
    else
      let blob = Buffer.sub buf 0 f.Sst_format.bloom_bytes in
      (* A rotted Bloom filter is derived data: mask the corruption by
         pretending none was persisted, so the caller rebuilds it from a
         component scan (§4.4.3's other branch) instead of trusting
         garbage bits that could turn false negatives into lost reads. *)
      if Repro_util.Crc32c.string blob <> f.Sst_format.bloom_crc then None
      else Some blob
  end

(** [free t] releases the component's extents (after a merge supersedes
    it). *)
let free t =
  List.iter
    (fun (start, length) ->
      Pagestore.Store.free_region t.store
        { Pagestore.Region_allocator.start; length })
    t.footer.Sst_format.extents

(* Rightmost index slot whose first key <= [key]; None if key precedes
   everything. *)
let index_floor t key =
  let n = Array.length t.index_keys in
  if n = 0 || String.compare key t.index_keys.(0) < 0 then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if String.compare t.index_keys.(mid) key <= 0 then lo := mid
      else hi := mid - 1
    done;
    Some !lo
  end

(** {1 Page byte streams} *)

(* A pull stream of record bytes starting at chain position [pos],
   concatenating page payloads. [fetch] abstracts cached vs streaming
   access; [first] marks the positioning access (seek candidate). *)
type byte_stream = {
  reader : t;
  fetch : int -> first:bool -> string; (* whole page as string *)
  mutable bpos : int; (* next chain position to fetch *)
  mutable buf : string;
  mutable off : int;
  mutable limit : int;
  mutable started : bool;
}

let page_size t = Pagestore.Store.page_size t.store

let cached_fetch t pos ~first =
  Pagestore.Store.(
    if first then with_page t.store t.pages.(pos) Bytes.to_string
    else with_page_seq t.store t.pages.(pos) Bytes.to_string)

let streaming_fetch t =
  (* Track contiguity so that physically consecutive pages cost bandwidth
     only, while extent jumps and the initial positioning cost a seek. *)
  let last = ref (-10) in
  fun pos ~first:_ ->
    let id = t.pages.(pos) in
    let buf = Bytes.create (page_size t) in
    let disk = Pagestore.Store.disk t.store in
    (* Direct platter read: bypass the buffer pool. *)
    Pagestore.Store.read_page_direct t.store id buf;
    if id = !last + 1 then Simdisk.Disk.seq_read disk ~bytes:(page_size t)
    else Simdisk.Disk.seek_read disk ~bytes:(page_size t);
    last := id;
    Bytes.unsafe_to_string buf

(* Open a stream at chain position [pos]; [skip_cont] skips the leading
   continuation bytes (positioned start) vs consuming them (record
   continuation handled by read_bytes). *)
let stream_at t ~fetch pos =
  { reader = t; fetch; bpos = pos; buf = ""; off = 0; limit = 0; started = false }

exception End_of_component

let refill bs ~continuation =
  if bs.bpos >= bs.reader.footer.Sst_format.data_pages then
    raise End_of_component;
  let page = bs.fetch bs.bpos ~first:(not bs.started) in
  Sst_format.verify_page page ~page:bs.reader.pages.(bs.bpos);
  bs.started <- true;
  let cont_len = Char.code page.[2] lor (Char.code page.[3] lsl 8)
                 lor (Char.code page.[4] lsl 16) lor (Char.code page.[5] lsl 24)
  in
  bs.buf <- page;
  bs.limit <- String.length page;
  bs.off <-
    (if continuation then Sst_format.header_bytes
     else Sst_format.header_bytes + cont_len);
  bs.bpos <- bs.bpos + 1

let read_byte bs =
  if bs.off >= bs.limit then refill bs ~continuation:true;
  let c = bs.buf.[bs.off] in
  bs.off <- bs.off + 1;
  Char.code c

let read_varint bs =
  let rec go acc shift =
    let b = read_byte bs in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b < 0x80 then acc else go acc (shift + 7)
  in
  go 0 0

let read_string bs n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if bs.off >= bs.limit then refill bs ~continuation:true;
    let avail = bs.limit - bs.off in
    let take = min avail (n - !filled) in
    Bytes.blit_string bs.buf bs.off out !filled take;
    bs.off <- bs.off + take;
    filled := !filled + take
  done;
  Bytes.unsafe_to_string out

(* Zero padding at the tail of the final data page decodes as a 0-length
   varint; real records always have body_len >= 1, so 0 means "no more
   records" (padding only ever occurs on the last data page). *)
let next_record bs =
  match read_varint bs with
  | exception End_of_component -> None
  | 0 -> None
  | body_len ->
      let body = read_string bs body_len in
      Some (Sst_format.decode_body body)

(** {1 Iterators} *)

type iter = {
  mutable stream : byte_stream option;
  mutable pending : (string * Kv.Entry.t * int) option;
}

let make_iter t ~cached ?from () =
  let fetch = if cached then cached_fetch t else streaming_fetch t in
  if is_empty t then { stream = None; pending = None }
  else begin
    let start_pos, need_skip =
      match from with
      | None -> (Some 0, None)
      | Some key -> (
          match index_floor t key with
          | None -> (Some 0, None) (* key precedes component: start at 0 *)
          | Some slot -> (Some t.index_pos.(slot), Some key))
    in
    match start_pos with
    | None -> { stream = None; pending = None }
    | Some pos ->
        let bs = stream_at t ~fetch pos in
        (try refill bs ~continuation:false with End_of_component -> ());
        let it = { stream = Some bs; pending = None } in
        (match need_skip with
        | None -> ()
        | Some key ->
            (* advance past records < key *)
            let rec skip () =
              match next_record bs with
              | None -> it.stream <- None
              | Some (k, _, _) as r when String.compare k key >= 0 ->
                  it.pending <- r
              | Some _ -> skip ()
            in
            skip ());
        it
  end

(** [iter_next_full it] pulls the next record with its stored LSN. *)
let iter_next_full it =
  match it.pending with
  | Some r ->
      it.pending <- None;
      Some r
  | None -> (
      match it.stream with
      | None -> None
      | Some bs -> (
          match next_record bs with
          | None ->
              it.stream <- None;
              None
          | some -> some))

(** [iter_next it] pulls the next record in key order. *)
let iter_next it =
  match iter_next_full it with Some (k, e, _) -> Some (k, e) | None -> None

(** [iterator t ?from ()] streams records (merges, scans): bypasses the
    buffer pool, first access costs a seek, the rest bandwidth. *)
let iterator ?from t = make_iter t ~cached:false ?from ()

(** [cached_iterator t ?from ()] iterates through the buffer pool (short
    scans that should benefit from caching). *)
let cached_iterator ?from t = make_iter t ~cached:true ?from ()

(** [get_with_lsn t key]: point lookup returning the record's stored LSN
    (recovery's replay filter). *)
let get_with_lsn t key =
  if is_empty t then None
  else if
    String.compare key t.footer.Sst_format.min_key < 0
    || String.compare key t.footer.Sst_format.max_key > 0
  then None
  else
    match index_floor t key with
    | None -> None
    | Some slot ->
        let bs = stream_at t ~fetch:(cached_fetch t) t.index_pos.(slot) in
        (try refill bs ~continuation:false with End_of_component -> ());
        let rec find () =
          match next_record bs with
          | None -> None
          | Some (k, e, lsn) ->
              let c = String.compare k key in
              if c = 0 then Some (e, lsn) else if c > 0 then None else find ()
        in
        find ()

(** [get t key] point lookup: one cached page read (one seek when the page
    is cold), plus continuation pages for records spanning pages. *)
let get t key =
  match get_with_lsn t key with Some (e, _) -> Some e | None -> None

(** {1 Scrubbing} *)

(** [verify t] walks the whole component — every data page, the index
    blob, the Bloom blob — verifying checksums, and returns the list of
    [(what, page)] mismatches (empty: component is clean). Reads stream
    directly from the platter with the same charge model as a merge scan:
    one seek per extent discontinuity, bandwidth otherwise. Never
    raises — scrubbing exists to report damage, not trip over it. *)
let verify t =
  let f = t.footer in
  let psz = page_size t in
  let disk = Pagestore.Store.disk t.store in
  let buf = Bytes.create psz in
  let last = ref (-10) in
  let read_raw pos =
    let id = t.pages.(pos) in
    Pagestore.Store.read_page_direct t.store id buf;
    if id = !last + 1 then Simdisk.Disk.seq_read disk ~bytes:psz
    else Simdisk.Disk.seek_read disk ~bytes:psz;
    last := id;
    Bytes.to_string buf
  in
  let errors = ref [] in
  for pos = 0 to f.Sst_format.data_pages - 1 do
    let page = read_raw pos in
    if not (Sst_format.page_ok page) then
      errors := ("data page checksum", t.pages.(pos)) :: !errors
  done;
  let check_blob ~what ~start ~pages ~bytes ~crc =
    if pages > 0 then begin
      let b = Buffer.create (pages * psz) in
      for pos = start to start + pages - 1 do
        Buffer.add_string b (read_raw pos)
      done;
      let ok =
        Buffer.length b >= bytes
        && Repro_util.Crc32c.string (Buffer.sub b 0 bytes) = crc
      in
      if not ok then errors := (what, t.pages.(start)) :: !errors
    end
  in
  check_blob ~what:"index blob checksum" ~start:f.Sst_format.data_pages
    ~pages:f.Sst_format.index_pages ~bytes:f.Sst_format.index_bytes
    ~crc:f.Sst_format.index_crc;
  check_blob ~what:"bloom blob checksum"
    ~start:(f.Sst_format.data_pages + f.Sst_format.index_pages)
    ~pages:f.Sst_format.bloom_pages ~bytes:f.Sst_format.bloom_bytes
    ~crc:f.Sst_format.bloom_crc;
  List.rev !errors
