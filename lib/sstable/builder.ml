(** Incremental SSTable builder.

    Merges hand records to the builder one at a time (strictly increasing
    keys); pages stream to disk as they fill so that merge I/O costs accrue
    continuously — the property the merge schedulers' progress estimators
    rely on. Components grow by appending fixed-size extents from the
    region allocator, keeping each run of pages contiguous. *)

type t = {
  store : Pagestore.Store.t;
  format : Sst_format.version;
  extent_pages : int;
  page_size : int;
  payload : int;
  mutable extents : Pagestore.Region_allocator.region list; (* reverse order *)
  mutable stream : Pagestore.Store.write_stream option;
  mutable pages_in_extent : int;
  mutable chain : int list; (* all page ids written, reverse order *)
  (* current page under construction *)
  page_buf : Bytes.t;
  mutable page_off : int;
  mutable n_starts : int;
  mutable cont_len : int;
  (* stats *)
  mutable record_count : int;
  mutable tombstone_count : int;
  mutable data_bytes : int;
  mutable min_key : string option;
  mutable max_key : string option;
  mutable min_lsn : int;  (* over records with a real lsn; 0 when none *)
  mutable max_lsn : int;
  (* index under construction: first and last keys starting in each data
     page (the latter is the V2 zone map) plus the page position *)
  mutable index_rev : (string * int * string) list;
  mutable page_pos : int; (* position of the page under construction *)
  mutable current_page_first_key : string option;
  mutable current_page_last_key : string;
  (* previous key starting in the current page — the V2 prefix-compression
     reference; "" at a restart boundary *)
  mutable prev_key : string;
}

let create ?(format = Sst_format.V1) ?(extent_pages = 1024) store =
  let page_size = Pagestore.Store.page_size store in
  {
    store;
    format;
    extent_pages;
    page_size;
    payload = Sst_format.payload_capacity ~page_size;
    extents = [];
    stream = None;
    pages_in_extent = 0;
    chain = [];
    page_buf = Bytes.create page_size;
    page_off = Sst_format.header_bytes;
    n_starts = 0;
    cont_len = 0;
    record_count = 0;
    tombstone_count = 0;
    data_bytes = 0;
    min_key = None;
    max_key = None;
    min_lsn = 0;
    max_lsn = 0;
    index_rev = [];
    page_pos = 0;
    current_page_first_key = None;
    current_page_last_key = "";
    prev_key = "";
  }

let ensure_stream t =
  match t.stream with
  | Some ws when t.pages_in_extent < t.extent_pages -> ws
  | _ ->
      let region =
        Pagestore.Store.allocate_region t.store ~pages:t.extent_pages
      in
      t.extents <- region :: t.extents;
      t.pages_in_extent <- 0;
      let ws = Pagestore.Store.open_write_stream t.store region in
      t.stream <- Some ws;
      ws

(* Flush the page under construction to disk and start a fresh one.
   [upcoming_cont] is how many payload bytes at the start of the next page
   will belong to a record spilling over. *)
let flush_page t ~upcoming_cont =
  Pagestore.Page.set_u16 t.page_buf 0 t.n_starts;
  Pagestore.Page.set_u32 t.page_buf 2 t.cont_len;
  if t.page_off < t.page_size then
    Bytes.fill t.page_buf t.page_off (t.page_size - t.page_off) '\000';
  Sst_format.seal_page t.page_buf;
  let ws = ensure_stream t in
  let id = Pagestore.Store.stream_write ws t.page_buf in
  t.pages_in_extent <- t.pages_in_extent + 1;
  t.chain <- id :: t.chain;
  (match t.current_page_first_key with
  | Some k ->
      t.index_rev <- (k, t.page_pos, t.current_page_last_key) :: t.index_rev
  | None -> ());
  t.page_pos <- t.page_pos + 1;
  t.page_off <- Sst_format.header_bytes;
  t.n_starts <- 0;
  t.cont_len <- min upcoming_cont t.payload;
  t.current_page_first_key <- None;
  t.current_page_last_key <- "";
  t.prev_key <- ""

(** [add t ?lsn key entry] appends one record ([lsn]: newest WAL record
    folded into it; see {!Sst_format}). Keys must be strictly
    increasing. *)
let add ?(lsn = 0) t key entry =
  (match t.max_key with
  | Some last when String.compare key last <= 0 ->
      invalid_arg "Builder.add: keys must be strictly increasing"
  | _ -> ());
  if t.min_key = None then t.min_key <- Some key;
  t.max_key <- Some key;
  if lsn > 0 then begin
    if t.min_lsn = 0 || lsn < t.min_lsn then t.min_lsn <- lsn;
    if lsn > t.max_lsn then t.max_lsn <- lsn
  end;
  t.record_count <- t.record_count + 1;
  (match entry with
  | Kv.Entry.Tombstone -> t.tombstone_count <- t.tombstone_count + 1
  | _ -> ());
  (* The record starts in the current page (start a new page only if the
     current one has no room for even one byte). Decide this before
     encoding: V2 prefix compression is relative to the previous key of
     the page the record actually starts in. *)
  if t.page_off >= t.page_size then flush_page t ~upcoming_cont:0;
  let buf = Buffer.create 64 in
  (match t.format with
  | Sst_format.V1 -> Sst_format.encode_record buf key ~lsn entry
  | Sst_format.V2 ->
      (* Restart (full key) on the first record of each page and every
         restart_interval-th start after it. *)
      let prev =
        if t.n_starts mod Sst_format.restart_interval = 0 then ""
        else t.prev_key
      in
      Sst_format.encode_record_v2 buf ~prev key ~lsn entry);
  let record = Buffer.contents buf in
  t.data_bytes <- t.data_bytes + String.length record;
  t.n_starts <- t.n_starts + 1;
  if t.current_page_first_key = None then t.current_page_first_key <- Some key;
  t.current_page_last_key <- key;
  t.prev_key <- key;
  let len = String.length record in
  let off = ref 0 in
  while !off < len do
    let space = t.page_size - t.page_off in
    if space = 0 then flush_page t ~upcoming_cont:(len - !off)
    else begin
      let n = min space (len - !off) in
      Bytes.blit_string record !off t.page_buf t.page_off n;
      t.page_off <- t.page_off + n;
      off := !off + n
    end
  done

let record_count t = t.record_count

(** User-data bytes written so far (merge progress accounting). *)
let data_bytes t = t.data_bytes

(* Serialize the index as a raw byte stream packed across whole pages
   (no record framing needed: entries are self-delimiting varints). V1
   entries are (first_key, pos) — bytes unchanged from the seed; V2
   appends each page's zone map (last key starting in it). *)
let index_blob t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (key, pos, last) ->
      Repro_util.Varint.write buf (String.length key);
      Buffer.add_string buf key;
      Repro_util.Varint.write buf pos;
      match t.format with
      | Sst_format.V1 -> ()
      | Sst_format.V2 ->
          Repro_util.Varint.write buf (String.length last);
          Buffer.add_string buf last)
    (List.rev t.index_rev);
  Buffer.contents buf

(** [finish t ~timestamp ?bloom_blob] seals the component: flushes the
    last data page, writes index pages (and, optionally, a persisted
    Bloom filter — see §4.4.3's trade-off) and the footer, frees the
    unused tail of the final extent, and returns the footer. *)
let finish ?(bloom_blob = "") t ~timestamp =
  if t.page_off > Sst_format.header_bytes || t.n_starts > 0 || t.cont_len > 0
  then flush_page t ~upcoming_cont:0;
  let data_pages = t.page_pos in
  let index = index_blob t in
  let index_entries = List.length t.index_rev in
  (* Pack raw byte blobs (index, bloom) into whole pages. *)
  let page = Bytes.create t.page_size in
  let write_blob blob =
    let pages = (String.length blob + t.page_size - 1) / max 1 t.page_size in
    for i = 0 to pages - 1 do
      Bytes.fill page 0 t.page_size '\000';
      let off = i * t.page_size in
      let n = min t.page_size (String.length blob - off) in
      Bytes.blit_string blob off page 0 n;
      let ws = ensure_stream t in
      let id = Pagestore.Store.stream_write ws page in
      t.pages_in_extent <- t.pages_in_extent + 1;
      t.chain <- id :: t.chain;
      t.page_pos <- t.page_pos + 1
    done;
    pages
  in
  let index_pages = write_blob index in
  let bloom_pages = write_blob bloom_blob in
  (* Trim the final extent: free pages we never wrote. *)
  let extents_in_order = List.rev t.extents in
  let used_in_last = t.pages_in_extent in
  let extents_trimmed =
    match List.rev extents_in_order with
    | [] -> []
    | (last : Pagestore.Region_allocator.region) :: earlier ->
        let keep = max 1 used_in_last in
        if keep < last.length then begin
          Pagestore.Store.free_region t.store
            { start = last.start + keep; length = last.length - keep };
          List.rev ({ last with length = keep } :: earlier)
        end
        else extents_in_order
  in
  let footer =
    {
      Sst_format.version = t.format;
      timestamp;
      record_count = t.record_count;
      tombstone_count = t.tombstone_count;
      data_bytes = t.data_bytes;
      min_lsn = t.min_lsn;
      max_lsn = t.max_lsn;
      min_key = Option.value t.min_key ~default:"";
      max_key = Option.value t.max_key ~default:"";
      extents =
        List.map
          (fun (r : Pagestore.Region_allocator.region) -> (r.start, r.length))
          extents_trimmed;
      data_pages;
      index_pages;
      index_entries;
      index_bytes = String.length index;
      index_crc = Repro_util.Crc32c.string index;
      bloom_pages;
      bloom_bytes = String.length bloom_blob;
      bloom_crc = Repro_util.Crc32c.string bloom_blob;
    }
  in
  (* Footer page: belt-and-braces copy on disk (the engine also stores the
     blob in its commit root). Charged as one more streamed page. *)
  let blob = Sst_format.encode_footer footer in
  if String.length blob <= t.page_size then begin
    Bytes.fill page 0 t.page_size '\000';
    Bytes.blit_string blob 0 page 0 (String.length blob);
    Simdisk.Disk.seq_write (Pagestore.Store.disk t.store) ~bytes:t.page_size
  end;
  footer

(** [abandon t] frees everything written so far (merge cancelled). *)
let abandon t =
  List.iter (fun r -> Pagestore.Store.free_region t.store r) t.extents;
  t.extents <- []
