(** On-disk format of a tree component (see the .ml for the layout).

    A component is a chain of contiguous extents holding data pages, index
    pages, and one footer page. Data pages use the paper's append-only
    format with records spanning pages (Appendix A.2); each record stores
    the newest WAL LSN folded into it (recovery's replay filter). Every
    data page carries a CRC32C; index/Bloom blobs and the footer are
    sealed with whole-blob CRCs, so torn writes and bit rot are detected
    (typed {!Corrupt}) instead of decoded into garbage. *)

(** A checksum mismatch: the page (or blob, [page = -1]) does not contain
    what was written. *)
exception Corrupt of { what : string; page : int }

val header_bytes : int
val payload_capacity : page_size:int -> int

(** [seal_page b] computes and stores the page checksum (header and
    payload final). *)
val seal_page : Bytes.t -> unit

(** [page_ok s] checks a data page's checksum. *)
val page_ok : string -> bool

(** [verify_page s ~page] raises {!Corrupt} on mismatch, reporting
    [page]. *)
val verify_page : string -> page:int -> unit

(** {!page_ok} on a byte buffer without copying it out. *)
val page_ok_bytes : Bytes.t -> bool

(** {!verify_page} without the copy. *)
val verify_page_bytes : Bytes.t -> page:int -> unit

(** [record_starts b] derives the in-page restart points (payload offset
    of each record beginning in this page, key order) from a
    CRC-verified data page; the on-disk format is unchanged. Only the
    final offset may belong to a record spilling past the page end. *)
val record_starts : Bytes.t -> int array

(** [encode_record buf key ~lsn entry] appends one framed record. *)
val encode_record : Buffer.t -> string -> lsn:int -> Kv.Entry.t -> unit

(** [decode_body s] parses a record body: [(key, entry, lsn)]. *)
val decode_body : string -> string * Kv.Entry.t * int

(** Component descriptor: logical timestamp (§4.4.1), counts, LSN range,
    extents, index location, blob checksums. Doubles as the commit-root
    metadata blob; sealed by a trailing CRC of its own. *)
type footer = {
  timestamp : int;
  record_count : int;
  tombstone_count : int;
  data_bytes : int;  (** sum of record body bytes (user data) *)
  min_lsn : int;  (** smallest WAL LSN folded into any record (0: none) *)
  max_lsn : int;
  min_key : string;
  max_key : string;
  extents : (int * int) list;  (** (start page id, length), chain order *)
  data_pages : int;
  index_pages : int;
  index_entries : int;
  index_bytes : int;  (** exact blob length before page padding *)
  index_crc : int;  (** CRC32C of the index blob *)
  bloom_pages : int;  (** optional persisted Bloom filter after the index *)
  bloom_bytes : int;
  bloom_crc : int;  (** CRC32C of the Bloom blob *)
}

val encode_footer : footer -> string

(** Raises {!Corrupt} on bad magic, garbled encoding, or checksum
    mismatch. *)
val decode_footer : string -> footer
