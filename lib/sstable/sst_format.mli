(** On-disk format of a tree component (see the .ml for the layout).

    A component is a chain of contiguous extents holding data pages, index
    pages, and one footer page. Data pages use the paper's append-only
    format with records spanning pages (Appendix A.2); each record stores
    the newest WAL LSN folded into it (recovery's replay filter). Every
    data page carries a CRC32C; index/Bloom blobs and the footer are
    sealed with whole-blob CRCs, so torn writes and bit rot are detected
    (typed {!Corrupt}) instead of decoded into garbage. *)

(** A checksum mismatch: the page (or blob, [page = -1]) does not contain
    what was written. *)
exception Corrupt of { what : string; page : int }

val header_bytes : int
val payload_capacity : page_size:int -> int

(** [seal_page b] computes and stores the page checksum (header and
    payload final). *)
val seal_page : Bytes.t -> unit

(** [page_ok s] checks a data page's checksum. *)
val page_ok : string -> bool

(** [verify_page s ~page] raises {!Corrupt} on mismatch, reporting
    [page]. *)
val verify_page : string -> page:int -> unit
[@@lint.allow "U001"] (* copying variant kept beside [verify_page_bytes] *)

(** {!page_ok} on a byte buffer without copying it out. *)
val page_ok_bytes : Bytes.t -> bool

(** {!verify_page} without the copy. *)
val verify_page_bytes : Bytes.t -> page:int -> unit

(** [record_starts b] derives the in-page restart points (payload offset
    of each record beginning in this page, key order) from a
    CRC-verified data page; the on-disk format is unchanged. Only the
    final offset may belong to a record spilling past the page end. *)
val record_starts : Bytes.t -> int array

(** Page/record layout version. [V1]: full key per record (the seed's
    format, bytes unchanged). [V2]: keys prefix-compressed within a page
    (restart points every {!restart_interval} records) and a per-page
    zone map (last key starting in the page) in the index; stamped with
    the "SST2" footer magic. The outer record framing is identical, so
    {!record_starts} and spill handling are version-blind. *)
type version = V1 | V2

(** Every [restart_interval]-th record starting in a V2 page stores its
    full key; the ones between store only a suffix. *)
val restart_interval : int

(** Length of the longest common prefix. *)
val shared_prefix_len : string -> string -> int
[@@lint.allow "U001"] (* format-inspection helper for tooling *)

(** [encode_record buf key ~lsn entry] appends one framed record. *)
val encode_record : Buffer.t -> string -> lsn:int -> Kv.Entry.t -> unit

(** [decode_body s] parses a record body: [(key, entry, lsn)]. *)
val decode_body : string -> string * Kv.Entry.t * int

(** [encode_record_v2 buf ~prev key ~lsn entry] appends one framed V2
    record; [prev] is the previous key starting in the same page ([""]
    forces a restart). *)
val encode_record_v2 :
  Buffer.t -> prev:string -> string -> lsn:int -> Kv.Entry.t -> unit

(** [decode_body_v2 ~prev s] parses a V2 body, reconstructing the key
    from [prev]'s shared prefix plus the stored suffix. Raises
    {!Corrupt} if the shared length exceeds [prev] (rotted varint). *)
val decode_body_v2 : prev:string -> string -> string * Kv.Entry.t * int

(** Per-table fence pointers: the page index in RAM, laid out in
    Eytzinger (BFS) order so the page-locating floor search walks a
    cache-resident, branch-predictable root-to-leaf path. Slots are
    1-indexed Eytzinger positions; in-order traversal visits them in
    sorted key order. *)
module Fence : sig
  type t

  (** [of_sorted ?maxes ~keys ~pos ()] builds the fence from the sorted
      index arrays (first key starting in each page, its chain position,
      and optionally the page zone maps). *)
  val of_sorted :
    ?maxes:string array -> keys:string array -> pos:int array -> unit -> t

  (** Number of fenced pages. *)
  val length : t -> int

  (** First key starting in the slot's page. *)
  val key : t -> int -> string

  (** Chain position of the slot's data page. *)
  val page_pos : t -> int -> int

  (** Largest key starting in the slot's page; [None] when the format
      carries no zone maps (V1). *)
  val zone_max : t -> int -> string option

  val has_zone_maps : t -> bool
  [@@lint.allow "U001"] (* format-inspection probe *)

  (** Slot of the rightmost fence key [<= key] ([None]: key precedes the
      table). Branch-free Eytzinger descent. *)
  val locate : t -> string -> int option

  (** Reference linear in-order walk — the QCheck oracle {!locate} is
      held to. *)
  val locate_linear : t -> string -> int option

  (** Smallest slot in key order. *)
  val first_slot : t -> int option

  (** In-order successor slot ([None] at the maximum). *)
  val succ_slot : t -> int -> int option
end

(** Component descriptor: logical timestamp (§4.4.1), counts, LSN range,
    extents, index location, blob checksums. Doubles as the commit-root
    metadata blob; sealed by a trailing CRC of its own. *)
type footer = {
  version : version;  (** layout version, encoded as the footer magic *)
  timestamp : int;
  record_count : int;
  tombstone_count : int;
  data_bytes : int;  (** sum of record body bytes (user data) *)
  min_lsn : int;  (** smallest WAL LSN folded into any record (0: none) *)
  max_lsn : int;
  min_key : string;
  max_key : string;
  extents : (int * int) list;  (** (start page id, length), chain order *)
  data_pages : int;
  index_pages : int;
  index_entries : int;
  index_bytes : int;  (** exact blob length before page padding *)
  index_crc : int;  (** CRC32C of the index blob *)
  bloom_pages : int;  (** optional persisted Bloom filter after the index *)
  bloom_bytes : int;
  bloom_crc : int;  (** CRC32C of the Bloom blob *)
}

val encode_footer : footer -> string

(** Raises {!Corrupt} on bad magic, garbled encoding, or checksum
    mismatch. *)
val decode_footer : string -> footer
