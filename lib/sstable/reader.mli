(** SSTable reader: point lookups, ordered iteration, recovery reopen.

    The page index (first key starting in each data page) lives in RAM,
    as the paper assumes for index nodes (Appendix A.1); lookups cost one
    page read — one seek when uncached. Point reads go through the buffer
    manager so hot pages cache; scans and merges stream pages directly,
    leaving the pool to the read path. *)

type t

(** {1 Opening} *)

(** [open_in_ram store footer ~index] wraps a freshly built component
    whose index blob the builder still has in RAM. *)
val open_in_ram : Pagestore.Store.t -> Sst_format.footer -> index:string -> t

(** [open_from_disk store footer] reopens after recovery, re-reading the
    index pages (charged as sequential I/O). Raises {!Sst_format.Corrupt}
    if the index blob fails its checksum. *)
val open_from_disk : Pagestore.Store.t -> Sst_format.footer -> t

(** [of_meta store blob] reopens from a commit-root metadata blob. *)
val of_meta : Pagestore.Store.t -> string -> t

(** The metadata blob to store in a commit root. *)
val meta_blob : t -> string

(** Bytes of a persisted Bloom filter, read back sequentially; [None] if
    the component was built without one (§4.4.3) — or if the stored blob
    fails its checksum, masking the corruption so the caller rebuilds the
    filter from a scan. *)
val load_bloom_blob : t -> string option

(** [free t] releases the component's extents. *)
val free : t -> unit

(** {1 Metadata} *)

val footer : t -> Sst_format.footer
val timestamp : t -> int
val record_count : t -> int
val data_bytes : t -> int
val min_key : t -> string
val max_key : t -> string
val is_empty : t -> bool

(** {1 Reads} *)

(** [get t key]: point lookup through the buffer pool — one cached page
    read (one seek when cold), plus sequential continuation pages for
    records spanning page boundaries. Binary-searches the page's derived
    restart points and compares candidate keys against the pinned
    frame's bytes in place: no page copy-out, no re-CRC on pool hits
    (the frame is verified once, when loaded from the platter). *)
val get : t -> string -> Kv.Entry.t option

(** As {!get}, also yielding the record's stored LSN — recovery's replay
    filter (skip WAL records with lsn <= the durable one). *)
val get_with_lsn : t -> string -> (Kv.Entry.t * int) option

(** The seed's linear lookup (decode records from the page's first
    restart until the key passes by). Reference implementation the
    restart-point search is property-tested against. *)
val get_linear : t -> string -> Kv.Entry.t option

val get_linear_with_lsn : t -> string -> (Kv.Entry.t * int) option

(** [locate t key]: chain position of the data page a lookup for [key]
    must consult — Eytzinger fence descent plus (V2) the zone-map check;
    [None] means the key is provably absent without any I/O. *)
val locate : t -> string -> int option

(** Reference linear fence walk mirroring {!locate} (the QCheck
    oracle). *)
val locate_linear : t -> string -> int option

type iter

(** [iterator ?from t] streams records in key order (merges, scans):
    bypasses the buffer pool; the first access costs a seek, the rest
    bandwidth. *)
val iterator : ?from:string -> t -> iter

(** [cached_iterator ?from t] iterates through the buffer pool. The
    current page stays pinned between pulls; call {!iter_close} if the
    iterator is abandoned before exhaustion. *)
val cached_iterator : ?from:string -> t -> iter

(** Release an iterator's resources (a cached iterator's pinned frame).
    Exhausted iterators release themselves; closing is idempotent. *)
val iter_close : iter -> unit

val iter_next : iter -> (string * Kv.Entry.t) option

(** As {!iter_next}, also yielding the record's stored LSN. *)
val iter_next_full : iter -> (string * Kv.Entry.t * int) option

(** {1 Scrubbing} *)

(** [verify t] checksums every data page and the index/Bloom blobs,
    returning [(what, page)] mismatches (empty: clean). Streams directly
    from the platter with merge-scan charging; never raises. *)
val verify : t -> (string * int) list
