(** K-way merging iterator with age-based shadowing.

    Combines ordered record streams from multiple tree components. Lower
    priority = fresher component; when several components hold the same
    key, the fresher state shadows or composes with the older one exactly
    as the read path would ({!Kv.Entry.merge}). At the bottom level
    ([drop_tombstones]) tombstones are elided and orphan deltas are
    resolved into base records, so the largest component contains only
    base records — the invariant behind one-seek reads (§3.1.1). *)

type source = {
  priority : int;
  pull : unit -> (string * Kv.Entry.t * int) option;
  mutable cur : (string * Kv.Entry.t * int) option;
}

type t = {
  resolver : Kv.Entry.resolver;
  drop_tombstones : bool;
  sources : source list; (* sorted by priority, freshest first *)
}

let create ~resolver ~drop_tombstones inputs =
  let sources =
    inputs
    |> List.map (fun (priority, pull) -> { priority; pull; cur = pull () })
    |> List.sort (fun a b -> Int.compare a.priority b.priority)
  in
  { resolver; drop_tombstones; sources }

let min_key t =
  List.fold_left
    (fun acc s ->
      match (acc, s.cur) with
      | None, Some (k, _, _) -> Some k
      | Some m, Some (k, _, _) when String.compare k m < 0 -> Some k
      | _ -> acc)
    None t.sources

(** [next t] produces the next surviving record in key order. *)
let rec next t =
  match min_key t with
  | None -> None
  | Some key ->
      (* Fold all sources at [key], freshest first; the output record's
         LSN is the newest contributing one. *)
      let merged = ref None in
      let lsn = ref 0 in
      List.iter
        (fun s ->
          match s.cur with
          | Some (k, e, l) when String.equal k key ->
              lsn := max !lsn l;
              (merged :=
                 match !merged with
                 | None -> Some e
                 | Some newer -> Some (Kv.Entry.merge t.resolver ~newer ~older:e));
              s.cur <- s.pull ()
          | _ -> ())
        t.sources;
      let entry = Option.get !merged in
      if t.drop_tombstones then
        match entry with
        | Kv.Entry.Tombstone -> next t (* elide at the bottom level *)
        | Kv.Entry.Delta ds -> (
            (* No base below us: the delta stream resolves against nothing. *)
            match Kv.Entry.resolve t.resolver ~base:None ds with
            | Some v -> Some (key, Kv.Entry.Base v, !lsn)
            | None -> next t)
        | Kv.Entry.Base _ -> Some (key, entry, !lsn)
      else Some (key, entry, !lsn)

(** [drain t f] pulls every record through [f] (bulk builds, tests). *)
let drain t f =
  let rec go () =
    match next t with
    | None -> ()
    | Some (k, e, lsn) ->
        f k e lsn;
        go ()
  in
  go ()
