(** Incremental SSTable builder.

    Callers hand records one at a time in strictly increasing key order;
    pages stream to disk as they fill, so I/O costs accrue continuously —
    the property the merge schedulers' progress estimators rely on.
    Components grow by appending fixed-size extents from the region
    allocator, keeping every run of pages contiguous. *)

type t

(** [create ?format ?extent_pages store] starts an empty component.
    [format] selects the page/record layout (default {!Sst_format.V1},
    the seed's bytes; [V2] prefix-compresses keys and records per-page
    zone maps — see {!Sst_format.version}). [extent_pages] is the
    contiguous allocation unit (default 1024). *)
val create :
  ?format:Sst_format.version -> ?extent_pages:int -> Pagestore.Store.t -> t

(** [add t ?lsn key entry] appends one record; [lsn] (default 0) is the
    newest WAL sequence number folded into it, used by recovery to skip
    already-durable log records. Keys must be strictly increasing;
    raises [Invalid_argument] otherwise. *)
val add : ?lsn:int -> t -> string -> Kv.Entry.t -> unit

val record_count : t -> int

(** User-data bytes written so far (merge progress accounting). *)
val data_bytes : t -> int

(** [finish t ~timestamp ?bloom_blob] seals the component: flushes the
    final data page, writes index pages (plus an optionally persisted
    Bloom filter, §4.4.3's trade-off) and the footer, trims the unused
    extent tail, and returns the footer. Call {!index_blob} afterwards. *)
val finish : ?bloom_blob:string -> t -> timestamp:int -> Sst_format.footer

(** The serialized page index; complete only after {!finish}. *)
val index_blob : t -> string

(** [abandon t] frees everything written so far (merge cancelled). *)
val abandon : t -> unit
