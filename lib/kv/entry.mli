(** Record states flowing through every tree component.

    bLSM distinguishes *base records* from *deltas* so reads can stop at
    the first base record (§3.1.1), and uses tombstones for deletes in
    append-only components. Deltas compose until a base record (or the
    bottom of the tree) is reached, then resolve via the store's
    resolver. *)

type t =
  | Base of string  (** a full value; reads stop here *)
  | Delta of string list  (** pending patches, oldest first *)
  | Tombstone  (** deletion marker *)

(** [resolver ~base delta] applies one delta; [base = None] means the
    record did not exist. Must be insensitive to how the delta chain was
    batched (associativity of {!merge} relies on it). *)
type resolver = base:string option -> string -> string

(** The default resolver: deltas are string appends. *)
val append_resolver : resolver

(** [resolve r ~base deltas] folds [deltas] (oldest first) over [base]. *)
val resolve : resolver -> base:string option -> string list -> string option

(** [merge r ~newer ~older] combines two states of one record where
    [newer] shadows [older] — during merges the component closer to C0 is
    always [newer] (§3.1.1). Base/Tombstone absorb; Delta composes. *)
val merge : resolver -> newer:t -> older:t -> t

(** User-data size (memtable accounting, write-amp arithmetic). *)
val payload_bytes : t -> int

val is_base : t -> bool
[@@lint.allow "U001"] (* predicate completeness beside [payload_bytes] *)

(** {1 Wire format} — tag byte + varint-framed payloads. *)

val encode : Buffer.t -> t -> unit

(** [decode s pos] parses an entry at [pos]: [(entry, next_pos)]. *)
val decode : string -> int -> t * int

val encoded_size : t -> int

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
