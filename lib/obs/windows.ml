module H = Repro_util.Histogram

type win = { mutable w_ops : int; w_lat : H.t }

type t = {
  width_us : int;
  wins : (int, win) Hashtbl.t;
  mutable total : int;
}

let create ~width_us =
  if width_us <= 0 then invalid_arg "Obs.Windows.create: width_us <= 0";
  { width_us; wins = Hashtbl.create 64; total = 0 }

let width_us t = t.width_us

let win_of t idx =
  match Hashtbl.find_opt t.wins idx with
  | Some w -> w
  | None ->
      let w = { w_ops = 0; w_lat = H.create () } in
      Hashtbl.add t.wins idx w;
      w

let record t ~time_us ~latency_us =
  let idx = int_of_float time_us / t.width_us in
  let w = win_of t idx in
  w.w_ops <- w.w_ops + 1;
  H.add w.w_lat latency_us;
  t.total <- t.total + 1

let total_ops t = t.total

let merge ~into src =
  if into.width_us <> src.width_us then
    invalid_arg "Obs.Windows.merge: window widths differ";
  (* Only per-key accumulation: the iteration order cannot escape into
     any output (rows sorts by index). *)
  (Hashtbl.iter [@lint.allow "D002"])
    (fun idx (w : win) ->
      let dst = win_of into idx in
      dst.w_ops <- dst.w_ops + w.w_ops;
      H.merge ~into:dst.w_lat w.w_lat)
    src.wins;
  into.total <- into.total + src.total

type row = {
  r_window : int;
  r_t_sec : float;
  r_ops : int;
  r_ops_per_sec : float;
  r_mean_us : float;
  r_p50_us : int;
  r_p99_us : int;
  r_p999_us : int;
  r_max_us : int;
}

let rows t =
  if Hashtbl.length t.wins = 0 then []
  else begin
    (* Only the min/max of the collected indices are used below, so the
       hash order cannot escape into the rows. *)
    let indices =
      (Hashtbl.fold [@lint.allow "D002"]) (fun k _ acc -> k :: acc) t.wins []
    in
    let lo = List.fold_left min (List.hd indices) indices in
    let hi = List.fold_left max (List.hd indices) indices in
    let width_sec = float_of_int t.width_us /. 1e6 in
    let result = ref [] in
    for idx = hi downto lo do
      let t_sec = float_of_int idx *. width_sec in
      let row =
        match Hashtbl.find_opt t.wins idx with
        | None ->
            { r_window = idx; r_t_sec = t_sec; r_ops = 0; r_ops_per_sec = 0.0;
              r_mean_us = 0.0; r_p50_us = 0; r_p99_us = 0; r_p999_us = 0;
              r_max_us = 0 }
        | Some w ->
            {
              r_window = idx;
              r_t_sec = t_sec;
              r_ops = w.w_ops;
              r_ops_per_sec = float_of_int w.w_ops /. width_sec;
              r_mean_us = H.mean w.w_lat;
              r_p50_us = H.percentile w.w_lat 50.0;
              r_p99_us = H.percentile w.w_lat 99.0;
              r_p999_us = H.percentile w.w_lat 99.9;
              r_max_us = H.max_value w.w_lat;
            }
      in
      result := row :: !result
    done;
    !result
  end

type throughput_stats = {
  tv_windows : int;
  tv_mean_ops_per_sec : float;
  tv_stddev_ops_per_sec : float;
  tv_cv : float;
  tv_min_ops_per_sec : float;
  tv_max_ops_per_sec : float;
}

let throughput t =
  match rows t with
  | [] ->
      { tv_windows = 0; tv_mean_ops_per_sec = 0.0;
        tv_stddev_ops_per_sec = 0.0; tv_cv = 0.0;
        tv_min_ops_per_sec = 0.0; tv_max_ops_per_sec = 0.0 }
  | rows ->
      let n = List.length rows in
      let fn = float_of_int n in
      let tps = List.map (fun r -> r.r_ops_per_sec) rows in
      let mean = List.fold_left ( +. ) 0.0 tps /. fn in
      let var =
        List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 tps /. fn
      in
      let stddev = sqrt var in
      {
        tv_windows = n;
        tv_mean_ops_per_sec = mean;
        tv_stddev_ops_per_sec = stddev;
        tv_cv = (if mean > 0.0 then stddev /. mean else 0.0);
        tv_min_ops_per_sec = List.fold_left Float.min (List.hd tps) tps;
        tv_max_ops_per_sec = List.fold_left Float.max (List.hd tps) tps;
      }

let overall t =
  let h = H.create () in
  (* Accumulation into a histogram is order-independent. *)
  (Hashtbl.iter [@lint.allow "D002"])
    (fun _ (w : win) -> H.merge ~into:h w.w_lat)
    t.wins;
  h

let register t reg ~name =
  Metrics.counter reg (name ^ ".windows") ~help:"windows with data"
    (fun () -> Hashtbl.length t.wins);
  Metrics.counter reg (name ^ ".ops") ~help:"operations recorded"
    (fun () -> t.total);
  Metrics.gauge reg (name ^ ".p999_us.worst")
    ~help:"worst per-window p99.9 latency (simulated us)" (fun () ->
      List.fold_left (fun a r -> Float.max a (float_of_int r.r_p999_us)) 0.0
        (rows t));
  Metrics.gauge reg (name ^ ".ops_per_sec.cv")
    ~help:"coefficient of variation of per-window throughput" (fun () ->
      (throughput t).tv_cv)

let rows_csv t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "t_sec,ops,ops_per_sec,mean_us,p50_us,p99_us,p999_us,max_us\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%.3f,%d,%.1f,%.1f,%d,%d,%d,%d\n" r.r_t_sec r.r_ops
           r.r_ops_per_sec r.r_mean_us r.r_p50_us r.r_p99_us r.r_p999_us
           r.r_max_us))
    (rows t);
  Buffer.contents buf

let rows_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"t_sec\": %.3f, \"ops\": %d, \"ops_per_sec\": %.1f, \
            \"mean_us\": %.1f, \"p50_us\": %d, \"p99_us\": %d, \"p999_us\": \
            %d, \"max_us\": %d}"
           r.r_t_sec r.r_ops r.r_ops_per_sec r.r_mean_us r.r_p50_us r.r_p99_us
           r.r_p999_us r.r_max_us))
    (rows t);
  Buffer.add_string buf "]";
  Buffer.contents buf
