(** Deterministic event tracing keyed to the simulated clock.

    A tracer is created once per store with a clock closure and is a
    no-op until a sink is attached ({!enable_file} / {!enable_buffer}).
    Emission sites gate on {!enabled} so a disabled tracer costs one
    mutable-field load on the hot path and allocates nothing.

    Two wire formats:
    - [Chrome]: a Chrome [trace_event] document
      [{"traceEvents":[...]}] loadable in [chrome://tracing] / Perfetto;
      spans are "X" (complete) events, instants are "i" events.
    - [Jsonl]: one JSON object per line, no enclosing document —
      cheap to stream and to post-process with line-oriented tools.

    All timestamps come from the simulated clock (µs), and floats are
    printed with a fixed ["%.3f"] format, so two runs with the same seed
    produce byte-identical trace output. *)

type t

type format = Chrome | Jsonl

(** Event argument payload. *)
type arg = I of int | F of float | S of string | B of bool

(** [create ~now ()] makes a disabled tracer reading timestamps from
    [now] (simulated µs). *)
val create : ?now:(unit -> float) -> unit -> t

(** Current simulated time as seen by this tracer. *)
val now_us : t -> float

(** True when a sink is attached. Instrumentation sites check this
    before computing event arguments. *)
val enabled : t -> bool

(** Events written since [create] (across all sinks ever attached) —
    the perf harness asserts this stays 0 for disabled-tracer runs. *)
val events_emitted : t -> int

(** [enable_file t ~format path] starts writing events to [path],
    replacing any current sink (the old sink is finalised first). *)
val enable_file : t -> format:format -> string -> unit

(** [enable_buffer t ~format] collects output in memory; the returned
    closure finalises the document and returns its full contents
    (used for byte-identical determinism checks). *)
val enable_buffer : t -> format:format -> (unit -> string)

(** Detach and finalise the current sink (writes the Chrome document
    footer, flushes, closes the file). No-op when disabled. *)
val disable : t -> unit

(** [instant t ~cat ~name ~args] emits a point event stamped with the
    current simulated time. No-op when disabled. *)
val instant : t -> cat:string -> name:string -> args:(string * arg) list -> unit

(** [complete t ~cat ~name ~ts_us ~dur_us ~args] emits a span covering
    [\[ts_us, ts_us + dur_us\]]. No-op when disabled. *)
val complete :
  t ->
  cat:string ->
  name:string ->
  ts_us:float ->
  dur_us:float ->
  args:(string * arg) list ->
  unit

(** [counter t ~name ~ts_us ~args] emits a Chrome counter sample
    (["ph":"C"], category ["counter"]) at the explicit timestamp
    [ts_us]: each numeric argument renders as one stacked counter track
    in the viewer. Used for post-hoc series (stall-episode tracks) whose
    timestamps predate emission. No-op when disabled. *)
val counter :
  t -> name:string -> ts_us:float -> args:(string * arg) list -> unit
