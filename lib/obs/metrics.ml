module H = Repro_util.Histogram

type value =
  | Counter of (unit -> int)
  | Gauge of (unit -> float)
  | Hist of H.t

type metric = { m_name : string; m_help : string; m_value : value }

type t = { mutable metrics : metric list (* reverse registration order *) }

let create () = { metrics = [] }

let register t name ~help value =
  if List.exists (fun m -> m.m_name = name) t.metrics then
    invalid_arg (Printf.sprintf "Obs.Metrics: duplicate metric %S" name);
  t.metrics <- { m_name = name; m_help = help; m_value = value } :: t.metrics

let counter t name ~help f = register t name ~help (Counter f)
let gauge t name ~help f = register t name ~help (Gauge f)
let histogram t name ~help h = register t name ~help (Hist h)

let sorted ?(prefix = "") t =
  List.filter
    (fun m ->
      String.length m.m_name >= String.length prefix
      && String.sub m.m_name 0 (String.length prefix) = prefix)
    t.metrics
  |> List.sort (fun a b -> String.compare a.m_name b.m_name)

let names t = List.map (fun m -> m.m_name) (sorted t)

let fmt_float f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "0"
  | _ -> Printf.sprintf "%.3f" f

(* Histogram summary sampled at dump time, shared by both writers. *)
let hist_fields h =
  [
    ("count", `I (H.count h));
    ("mean", `F (H.mean h));
    ("p50", `I (H.percentile h 50.0));
    ("p99", `I (H.percentile h 99.0));
    ("p999", `I (H.percentile h 99.9));
    ("max", `I (H.max_value h));
  ]

let dump ?prefix t =
  let buf = Buffer.create 512 in
  List.iter
    (fun m ->
      match m.m_value with
      | Counter f -> Buffer.add_string buf (Printf.sprintf "%s %d\n" m.m_name (f ()))
      | Gauge f ->
          Buffer.add_string buf (Printf.sprintf "%s %s\n" m.m_name (fmt_float (f ())))
      | Hist h ->
          List.iter
            (fun (k, v) ->
              let s = match v with `I i -> string_of_int i | `F f -> fmt_float f in
              Buffer.add_string buf (Printf.sprintf "%s.%s %s\n" m.m_name k s))
            (hist_fields h))
    (sorted ?prefix t);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dump_json ?prefix t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (Printf.sprintf "\n  \"%s\": " (json_escape m.m_name));
      match m.m_value with
      | Counter f -> Buffer.add_string buf (string_of_int (f ()))
      | Gauge f -> Buffer.add_string buf (fmt_float (f ()))
      | Hist h ->
          Buffer.add_string buf "{";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_string buf ", ";
              let s = match v with `I i -> string_of_int i | `F f -> fmt_float f in
              Buffer.add_string buf (Printf.sprintf "\"%s\": %s" k s))
            (hist_fields h);
          Buffer.add_string buf "}")
    (sorted ?prefix t);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(* help strings are carried for future self-describing dumps; keep the
   field referenced so the compiler tracks it. *)
let _ = fun m -> m.m_help
