type format = Chrome | Jsonl

type arg = I of int | F of float | S of string | B of bool

type sink = {
  sk_format : format;
  sk_write : string -> unit;
  sk_finish : unit -> unit;
  mutable sk_count : int;  (* events written to this sink, for Chrome comma placement *)
}

type t = {
  now : unit -> float;
  mutable sink : sink option;
  mutable emitted : int;
}

let create ?(now = fun () -> 0.0) () = { now; sink = None; emitted = 0 }

let now_us t = t.now ()
let enabled t = t.sink <> None
let events_emitted t = t.emitted

(* Fixed-format floats keep trace bytes identical across runs: the
   simulated clock is exact in µs-with-fraction, and %.3f never prints
   locale- or platform-dependent digits. *)
let fmt_float f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "0.000"
  | _ -> Printf.sprintf "%.3f" f

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_arg buf (k, v) =
  Buffer.add_char buf '"';
  escape buf k;
  Buffer.add_string buf "\":";
  match v with
  | I i -> Buffer.add_string buf (string_of_int i)
  | F f -> Buffer.add_string buf (fmt_float f)
  | B b -> Buffer.add_string buf (if b then "true" else "false")
  | S s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'

let event_json ~ph ~cat ~name ~ts_us ?dur_us ~args () =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"name\":\"";
  escape buf name;
  Buffer.add_string buf "\",\"cat\":\"";
  escape buf cat;
  Buffer.add_string buf "\",\"ph\":\"";
  Buffer.add_string buf ph;
  Buffer.add_string buf "\",\"ts\":";
  Buffer.add_string buf (fmt_float ts_us);
  (match dur_us with
  | Some d ->
      Buffer.add_string buf ",\"dur\":";
      Buffer.add_string buf (fmt_float d)
  | None -> ());
  Buffer.add_string buf ",\"pid\":1,\"tid\":1";
  if ph = "i" then Buffer.add_string buf ",\"s\":\"t\"";
  (match args with
  | [] -> ()
  | args ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_char buf ',';
          add_arg buf a)
        args;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}';
  Buffer.contents buf

let chrome_header = "{\"traceEvents\":[\n"
let chrome_footer = "\n]}\n"

let finish_sink sk =
  (match sk.sk_format with
  | Chrome -> sk.sk_write chrome_footer
  | Jsonl -> ());
  sk.sk_finish ()

let disable t =
  match t.sink with
  | None -> ()
  | Some sk ->
      t.sink <- None;
      finish_sink sk

let attach t sk =
  disable t;
  (match sk.sk_format with
  | Chrome -> sk.sk_write chrome_header
  | Jsonl -> ());
  t.sink <- Some sk

let enable_file t ~format path =
  let oc = open_out path in
  attach t
    {
      sk_format = format;
      sk_write = (fun s -> output_string oc s);
      sk_finish = (fun () -> close_out oc);
      sk_count = 0;
    }

let enable_buffer t ~format =
  let buf = Buffer.create 4096 in
  let finished = ref None in
  let sk =
    {
      sk_format = format;
      sk_write = (fun s -> Buffer.add_string buf s);
      sk_finish = (fun () -> finished := Some (Buffer.contents buf));
      sk_count = 0;
    }
  in
  attach t sk;
  fun () ->
    (match t.sink with
    | Some cur when cur == sk -> disable t
    | _ -> ());
    match !finished with Some s -> s | None -> Buffer.contents buf

let emit t ~ph ~cat ~name ~ts_us ?dur_us ~args () =
  match t.sink with
  | None -> ()
  | Some sk ->
      let line = event_json ~ph ~cat ~name ~ts_us ?dur_us ~args () in
      (match sk.sk_format with
      | Chrome ->
          if sk.sk_count > 0 then sk.sk_write ",\n";
          sk.sk_write line
      | Jsonl ->
          sk.sk_write line;
          sk.sk_write "\n");
      sk.sk_count <- sk.sk_count + 1;
      t.emitted <- t.emitted + 1

let instant t ~cat ~name ~args =
  if t.sink <> None then emit t ~ph:"i" ~cat ~name ~ts_us:(t.now ()) ~args ()

let complete t ~cat ~name ~ts_us ~dur_us ~args =
  if t.sink <> None then emit t ~ph:"X" ~cat ~name ~ts_us ~dur_us ~args ()

let counter t ~name ~ts_us ~args =
  if t.sink <> None then emit t ~ph:"C" ~cat:"counter" ~name ~ts_us ~args ()
