(** Windowed tail-latency aggregation over simulated time.

    The Luo & Carey stability methodology ("On Performance Stability in
    LSM-based Storage Systems") reports per-epoch percentile timeseries
    and throughput variance rather than one end-of-run summary; this
    accumulator produces those series. Each window of simulated time owns
    a full HDR-style histogram ({!Repro_util.Histogram}), so any quantile
    can be expanded per window after the fact, and whole accumulators can
    be merged window-by-window for cross-shard / fleet rollup.

    All timestamps are simulated microseconds; every renderer uses fixed
    numeric formats, so same-seed runs emit byte-identical series. *)

type t

(** [create ~width_us] buckets completions into windows of [width_us]
    simulated microseconds. Raises [Invalid_argument] if
    [width_us <= 0]. *)
val create : width_us:int -> t

val width_us : t -> int
[@@lint.allow "U001"] (* constructor-argument accessor *)

(** [record t ~time_us ~latency_us] attributes one completed operation
    to the window containing its completion time. *)
val record : t -> time_us:float -> latency_us:int -> unit

(** Operations recorded so far (across all windows). *)
val total_ops : t -> int

(** [merge ~into src] accumulates [src] window-by-window into [into] —
    the cross-shard rollup: each window's histogram is merged with
    {!Repro_util.Histogram.merge}. Raises [Invalid_argument] when the
    widths differ (windows would not align). *)
val merge : into:t -> t -> unit

(** One window, percentiles pre-expanded. Latencies are simulated µs. *)
type row = {
  r_window : int;  (** window index: window covers [index * width_us, ..) *)
  r_t_sec : float;  (** window start in simulated seconds *)
  r_ops : int;
  r_ops_per_sec : float;
  r_mean_us : float;
  r_p50_us : int;
  r_p99_us : int;
  r_p999_us : int;
  r_max_us : int;
}

(** One row per window in time order, including empty interior windows
    (an empty window is a full stall — exactly the event the series
    exists to expose). Empty when nothing was recorded. *)
val rows : t -> row list

(** Throughput variability across the windows of {!rows} (empty interior
    windows count as zero-throughput windows). [tv_cv] is the coefficient
    of variation, Luo & Carey's headline instability number. *)
type throughput_stats = {
  tv_windows : int;
  tv_mean_ops_per_sec : float;
  tv_stddev_ops_per_sec : float;
  tv_cv : float;
  tv_min_ops_per_sec : float;
  tv_max_ops_per_sec : float;
}

val throughput : t -> throughput_stats

(** All windows merged into one histogram (whole-phase quantiles). *)
val overall : t -> Repro_util.Histogram.t
[@@lint.allow "U001"] (* whole-phase aggregation surface *)

(** [register t reg ~name] registers summary closures in [reg]:
    [name.windows], [name.ops], [name.p999_us.worst] (worst per-window
    p99.9), [name.ops_per_sec.cv] — sampled live at dump time. *)
val register : t -> Metrics.t -> name:string -> unit

(** CSV rendering of {!rows} with a header line; fixed formats
    ([%.3f] seconds, [%.1f] for float µs) keep output byte-stable. *)
val rows_csv : t -> string

(** JSON array of {!rows}, same fixed formats. *)
val rows_json : t -> string
